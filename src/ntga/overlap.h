#ifndef RAPIDA_NTGA_OVERLAP_H_
#define RAPIDA_NTGA_OVERLAP_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ntga/star_pattern.h"
#include "util/statusor.h"

namespace rapida::ntga {

/// Def. 3.1: two subject-rooted stars overlap when their property sets
/// intersect and their rdf:type restrictions agree (every type triple in
/// one has a matching type object in the other).
bool StarsOverlap(const StarPattern& a, const StarPattern& b);

/// Result of testing Def. 3.2 on two graph patterns.
struct OverlapResult {
  bool overlaps = false;
  /// mapping[i] = index of the GP2 star matched to GP1 star i.
  std::vector<int> mapping;
  /// Human-readable explanation (mirrors the Fig. 3 walkthrough), useful
  /// for the overlap_explorer example and diagnostics.
  std::string explanation;
};

/// Def. 3.2: graph patterns overlap when there is a 1:1 matching of their
/// stars such that matched stars overlap (Def. 3.1) and every join edge is
/// role-equivalent (same joining property, same variable roles).
OverlapResult FindOverlap(const StarGraph& gp1, const StarGraph& gp2);

/// One composite star pattern Stp' (§3 "Construction of a Composite Graph
/// Pattern"): P_prim = intersection, P_sec = symmetric difference.
struct CompositeStar {
  std::string subject_var;  // canonical variable (GP1's)
  std::vector<StarTriple> triples;
  std::set<PropKey> primary;
  std::set<PropKey> secondary;
};

/// The composite graph pattern GP' for two overlapping patterns, plus the
/// bookkeeping needed to interpret GP' results as answers to the original
/// patterns:
///  * per-pattern α condition — the secondary properties that must be
///    present for a composite match to contain a match of that pattern
///    (the planner emits presence-only conditions; see the Table 2 note in
///    DESIGN.md), and
///  * per-pattern variable renaming into the composite namespace, used to
///    translate each original pattern's grouping / aggregation / filter
///    variables.
struct CompositePattern {
  std::vector<CompositeStar> stars;
  std::vector<JoinEdge> joins;  // canonical join structure (GP1's)

  /// pattern_secondary[p] = secondary PropKeys pattern p requires, per
  /// star: map star index -> set of PropKeys. Pattern p's α condition is
  /// the conjunction "all of these are non-empty".
  std::vector<std::map<int, std::set<PropKey>>> pattern_secondary;

  /// var_map[p]: original variable name in pattern p -> composite variable.
  std::vector<std::map<std::string, std::string>> var_map;

  std::string ToString() const;
};

/// Builds GP' from two graph patterns known to overlap (`overlap` from
/// FindOverlap must have overlaps == true).
StatusOr<CompositePattern> BuildComposite(const StarGraph& gp1,
                                          const StarGraph& gp2,
                                          const OverlapResult& overlap);

/// Builds a trivial "composite" from a single pattern (used when a query
/// has one grouping, or as the per-pattern fallback when patterns do not
/// overlap): every property is primary and the α condition is empty.
CompositePattern SinglePatternComposite(const StarGraph& gp);

// ---------------------------------------------------------------------------
// N-ary extension (the paper's §6 future work: "more complex OLAP
// queries"). A ROLLUP-style analytical query has three or more *related*
// groupings — e.g. (feature, country) / (country) / () — whose graph
// patterns all overlap. Generalizing Def. 3.2 to a pattern family lets
// RAPIDAnalytics evaluate one composite pattern and all N aggregations in
// a single parallel Agg-Join cycle.
// ---------------------------------------------------------------------------

/// Result of matching a family of patterns: per pattern p, mapping[p][i]
/// is the star of pattern p matched to star i of the anchor (pattern 0).
struct FamilyOverlapResult {
  bool overlaps = false;
  std::vector<std::vector<int>> mapping;
  std::string explanation;
};

/// Generalized Def. 3.2: every pattern must overlap the anchor pattern
/// (pattern 0), and every *pair* of patterns must satisfy the star-overlap
/// and role-equivalence conditions under the composed mappings.
FamilyOverlapResult FindOverlapFamily(
    const std::vector<const StarGraph*>& patterns);

/// Generalized composite: per matched star group, P_prim is the
/// intersection of all patterns' property sets and P_sec the rest, with
/// pattern_secondary[p] holding what pattern p requires. Variables take
/// the lowest-indexed pattern's names; var_map has one entry per pattern.
StatusOr<CompositePattern> BuildCompositeFamily(
    const std::vector<const StarGraph*>& patterns,
    const FamilyOverlapResult& overlap);

}  // namespace rapida::ntga

#endif  // RAPIDA_NTGA_OVERLAP_H_
