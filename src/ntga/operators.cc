#include "ntga/operators.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "analytics/value.h"
#include "util/logging.h"

namespace rapida::ntga {

namespace {

DataPropKey KeyOfTriple(const rdf::Triple& t, rdf::TermId type_id) {
  DataPropKey key;
  key.property = t.p;
  if (t.p == type_id) key.type_object = t.o;
  return key;
}

}  // namespace

std::vector<TripleGroup> OptionalGroupFilter(
    const std::vector<TripleGroup>& input, const std::set<DataPropKey>& prim,
    const std::set<DataPropKey>& opt, rdf::TermId type_id) {
  std::vector<TripleGroup> out;
  for (const TripleGroup& tg : input) {
    TripleGroup projected;
    projected.subject = tg.subject;
    for (const rdf::Triple& t : tg.triples) {
      DataPropKey k = KeyOfTriple(t, type_id);
      if (prim.count(k) > 0 || opt.count(k) > 0) {
        projected.triples.push_back(t);
      }
    }
    std::set<DataPropKey> props = projected.Props(type_id);
    bool has_all_primary = std::includes(props.begin(), props.end(),
                                         prim.begin(), prim.end());
    if (has_all_primary) out.push_back(std::move(projected));
  }
  return out;
}

std::optional<TripleGroup> FilterStar(const TripleGroup& tg,
                                      const ResolvedStar& star,
                                      rdf::TermId type_id) {
  if (!star.satisfiable) return std::nullopt;
  // Primary constraints: every primary pattern triple needs a match
  // (property + type object + constant object where given).
  for (const ResolvedStarTriple& pt : star.triples) {
    if (star.primary.count(pt.key) == 0) continue;
    if (!tg.HasProp(pt.key, type_id, pt.const_object)) return std::nullopt;
  }
  // Projection: keep pattern-relevant triples only. For a constant-object
  // pattern triple only the matching triples are relevant.
  TripleGroup out;
  out.subject = tg.subject;
  for (const rdf::Triple& t : tg.triples) {
    DataPropKey k = KeyOfTriple(t, type_id);
    for (const ResolvedStarTriple& pt : star.triples) {
      if (pt.key == k &&
          (pt.const_object == rdf::kInvalidTermId || pt.const_object == t.o)) {
        out.triples.push_back(t);
        break;
      }
    }
  }
  return out;
}

std::vector<std::optional<TripleGroup>> NSplit(
    const TripleGroup& tg, const std::set<DataPropKey>& prim,
    const std::vector<std::set<DataPropKey>>& secs, rdf::TermId type_id) {
  std::set<DataPropKey> props = tg.Props(type_id);
  std::vector<std::optional<TripleGroup>> out;
  out.reserve(secs.size());
  for (const std::set<DataPropKey>& sec : secs) {
    bool has_all = std::includes(props.begin(), props.end(), sec.begin(),
                                 sec.end());
    if (!has_all) {
      out.push_back(std::nullopt);
      continue;
    }
    TripleGroup split;
    split.subject = tg.subject;
    for (const rdf::Triple& t : tg.triples) {
      DataPropKey k = KeyOfTriple(t, type_id);
      if (prim.count(k) > 0 || sec.count(k) > 0) split.triples.push_back(t);
    }
    out.push_back(std::move(split));
  }
  return out;
}

bool SatisfiesAlpha(const NestedTripleGroup& ntg, const AlphaCondition& cond,
                    rdf::TermId type_id) {
  for (const AlphaConstraint& c : cond) {
    bool present = ntg.IsFilled(c.star) &&
                   c.key.property != rdf::kInvalidTermId &&
                   ntg.stars[c.star].HasProp(c.key, type_id);
    if (present != c.present) return false;
  }
  return true;
}

bool SatisfiesAnyAlpha(const NestedTripleGroup& ntg,
                       const std::vector<AlphaCondition>& conds,
                       rdf::TermId type_id) {
  if (conds.empty()) return true;
  for (const AlphaCondition& cond : conds) {
    if (SatisfiesAlpha(ntg, cond, type_id)) return true;
  }
  return false;
}

std::vector<rdf::TermId> JoinKeys(const NestedTripleGroup& ntg, int star,
                                  JoinRole role, const DataPropKey& prop,
                                  rdf::TermId type_id) {
  if (!ntg.IsFilled(star)) return {};
  if (role == JoinRole::kSubject) return {ntg.stars[star].subject};
  return ntg.stars[star].ObjectsOf(prop, type_id);
}

std::vector<NestedTripleGroup> AlphaJoin(
    const std::vector<NestedTripleGroup>& left,
    const std::vector<NestedTripleGroup>& right, const ResolvedJoin& join,
    const std::vector<AlphaCondition>& alphas, rdf::TermId type_id) {
  // Hash the right side by its join keys.
  std::unordered_map<rdf::TermId, std::vector<size_t>> index;
  for (size_t r = 0; r < right.size(); ++r) {
    for (rdf::TermId key :
         JoinKeys(right[r], join.star_b, join.role_b, join.prop_b, type_id)) {
      index[key].push_back(r);
    }
  }

  std::vector<NestedTripleGroup> out;
  for (const NestedTripleGroup& l : left) {
    std::vector<rdf::TermId> keys =
        JoinKeys(l, join.star_a, join.role_a, join.prop_a, type_id);
    // A pair may share several keys (multi-valued join property on both
    // sides); emit it once — binding expansion recovers the per-key
    // solutions.
    std::set<size_t> matched;
    for (rdf::TermId key : keys) {
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (size_t r : it->second) matched.insert(r);
    }
    for (size_t r : matched) {
      NestedTripleGroup joined = l;
      size_t n = std::max(joined.stars.size(), right[r].stars.size());
      joined.stars.resize(n);
      for (size_t s = 0; s < right[r].stars.size(); ++s) {
        if (right[r].stars[s].subject != rdf::kInvalidTermId) {
          RAPIDA_DCHECK(joined.stars[s].subject == rdf::kInvalidTermId)
              << "α-join sides overlap on star " << s;
          joined.stars[s] = right[r].stars[s];
        }
      }
      if (SatisfiesAnyAlpha(joined, alphas, type_id)) {
        out.push_back(std::move(joined));
      }
    }
  }
  return out;
}

void ExpandBindingsInto(const NestedTripleGroup& ntg,
                        const ResolvedPattern& pattern,
                        const std::vector<std::string>& vars,
                        bool skip_unbound, BindingExpansion* out) {
  out->width = vars.size();
  out->num_rows = 0;
  out->rows.clear();
  if (out->candidates.size() < vars.size()) out->candidates.resize(vars.size());
  // Candidate values per variable: the intersection across every place the
  // variable occurs (subject positions pin it to one value; object
  // positions contribute their object lists).
  for (size_t vi = 0; vi < vars.size(); ++vi) {
    const std::string& var = vars[vi];
    std::vector<rdf::TermId>& values = out->candidates[vi];
    values.clear();
    std::vector<rdf::TermId>& vals = out->vals;
    bool first_source = true;
    for (size_t s = 0; s < pattern.stars.size(); ++s) {
      const ResolvedStar& star = pattern.stars[s];
      bool filled = ntg.IsFilled(static_cast<int>(s));
      if (star.subject_var == var) {
        vals.clear();
        if (filled) vals.push_back(ntg.stars[s].subject);
        if (first_source) {
          values.assign(vals.begin(), vals.end());
          first_source = false;
        } else {
          size_t w = 0;
          for (rdf::TermId v : values) {
            if (std::find(vals.begin(), vals.end(), v) != vals.end()) {
              values[w++] = v;
            }
          }
          values.resize(w);
        }
      }
      for (const ResolvedStarTriple& t : star.triples) {
        if (t.object_var != var) continue;
        vals.clear();
        if (filled) {
          ntg.stars[s].ObjectsOfInto(t.key, pattern.type_id, &vals);
        }
        if (first_source) {
          values.assign(vals.begin(), vals.end());
          first_source = false;
        } else {
          size_t w = 0;
          for (rdf::TermId v : values) {
            if (std::find(vals.begin(), vals.end(), v) != vals.end()) {
              values[w++] = v;
            }
          }
          values.resize(w);
        }
      }
    }
    if (values.empty()) {
      if (skip_unbound) return;  // num_rows == 0
      values.push_back(rdf::kInvalidTermId);
    }
    // Duplicate triples would inflate multiplicity; keep one per value.
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
  }

  if (vars.empty()) {
    out->num_rows = 1;  // one empty mapping
    return;
  }

  // Cross product, row-major into the flat buffer (idx[0] varies fastest —
  // same row order as the nested variant produced).
  out->idx.assign(vars.size(), 0);
  std::vector<size_t>& idx = out->idx;
  while (true) {
    for (size_t i = 0; i < vars.size(); ++i) {
      out->rows.push_back(out->candidates[i][idx[i]]);
    }
    ++out->num_rows;
    size_t i = 0;
    while (i < vars.size() && ++idx[i] == out->candidates[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == vars.size()) break;
  }
}

std::vector<std::vector<rdf::TermId>> ExpandBindings(
    const NestedTripleGroup& ntg, const ResolvedPattern& pattern,
    const std::vector<std::string>& vars, bool skip_unbound) {
  BindingExpansion exp;
  ExpandBindingsInto(ntg, pattern, vars, skip_unbound, &exp);
  std::vector<std::vector<rdf::TermId>> out;
  out.reserve(exp.num_rows);
  for (size_t r = 0; r < exp.num_rows; ++r) {
    out.emplace_back(exp.row(r), exp.row(r) + exp.width);
  }
  return out;
}

std::vector<AggregatedGroup> AggJoin(
    const std::vector<NestedTripleGroup>& detail,
    const ResolvedPattern& pattern, const AggJoinSpec& spec,
    const std::vector<std::vector<rdf::TermId>>* explicit_base,
    rdf::Dictionary* dict) {
  // Variables to expand: θ plus every aggregation variable.
  std::vector<std::string> vars = spec.group_vars;
  std::vector<int> agg_var_index(spec.aggs.size(), -1);
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    if (spec.aggs[a].count_star) continue;
    auto it = std::find(vars.begin(), vars.end(), spec.aggs[a].var);
    if (it == vars.end()) {
      agg_var_index[a] = static_cast<int>(vars.size());
      vars.push_back(spec.aggs[a].var);
    } else {
      agg_var_index[a] = static_cast<int>(it - vars.begin());
    }
  }
  const size_t n_group = spec.group_vars.size();

  std::map<std::vector<rdf::TermId>, std::vector<analytics::Aggregator>>
      groups;
  auto make_aggs = [&spec]() {
    std::vector<analytics::Aggregator> aggs;
    aggs.reserve(spec.aggs.size());
    for (const AggSpec& a : spec.aggs) {
      aggs.emplace_back(a.func, /*distinct=*/false, a.separator);
    }
    return aggs;
  };
  if (explicit_base != nullptr) {
    for (const auto& key : *explicit_base) groups.emplace(key, make_aggs());
  }
  if (n_group == 0) groups.emplace(std::vector<rdf::TermId>{}, make_aggs());

  for (const NestedTripleGroup& ntg : detail) {
    // RNG membership: the detail group must satisfy the α condition.
    if (!SatisfiesAlpha(ntg, spec.alpha, pattern.type_id)) continue;
    for (const std::vector<rdf::TermId>& mapping :
         ExpandBindings(ntg, pattern, vars, /*skip_unbound=*/true)) {
      std::vector<rdf::TermId> key(mapping.begin(),
                                   mapping.begin() + n_group);
      if (explicit_base != nullptr && groups.count(key) == 0) {
        continue;  // base-driven: unknown keys don't create groups
      }
      auto [it, inserted] = groups.emplace(std::move(key), make_aggs());
      for (size_t a = 0; a < spec.aggs.size(); ++a) {
        if (spec.aggs[a].count_star) {
          it->second[a].AddRow();
        } else {
          it->second[a].AddTerm(mapping[agg_var_index[a]], *dict);
        }
      }
    }
  }

  std::vector<AggregatedGroup> out;
  out.reserve(groups.size());
  for (auto& [key, aggs] : groups) {
    AggregatedGroup g;
    g.key = key;
    for (const analytics::Aggregator& a : aggs) {
      g.values.push_back(a.Finalize(dict));
    }
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace rapida::ntga
