#ifndef RAPIDA_NTGA_OPERATORS_H_
#define RAPIDA_NTGA_OPERATORS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analytics/aggregates.h"
#include "ntga/resolved_pattern.h"
#include "ntga/triplegroup.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"

namespace rapida::ntga {

// ---------------------------------------------------------------------------
// σ^γopt — Optional Group Filter (Def. 3.3)
// ---------------------------------------------------------------------------

/// Set-level operator exactly as defined: keeps triplegroups whose property
/// set contains all of P_prim and is contained in P_prim ∪ P_opt; member
/// triples outside those properties are projected away (the physical
/// operator's projection of irrelevant triples).
std::vector<TripleGroup> OptionalGroupFilter(
    const std::vector<TripleGroup>& input, const std::set<DataPropKey>& prim,
    const std::set<DataPropKey>& opt, rdf::TermId type_id);

/// Engine-level variant against a resolved star pattern: additionally
/// enforces constant objects (e.g. pub_type "News") and keeps only the
/// pattern-relevant triples. Returns nullopt when the group fails a
/// primary constraint.
std::optional<TripleGroup> FilterStar(const TripleGroup& tg,
                                      const ResolvedStar& star,
                                      rdf::TermId type_id);

// ---------------------------------------------------------------------------
// χ — n-split (Def. 3.4)
// ---------------------------------------------------------------------------

/// Extracts the n per-pattern subsets of a composite-star triplegroup.
/// Result i is present iff the group has matches for every property in
/// secs[i]; it contains the primary triples plus the secs[i] triples.
std::vector<std::optional<TripleGroup>> NSplit(
    const TripleGroup& tg, const std::set<DataPropKey>& prim,
    const std::vector<std::set<DataPropKey>>& secs, rdf::TermId type_id);

// ---------------------------------------------------------------------------
// ⋈^γ_α — α-Join (Def. 3.5, Table 2)
// ---------------------------------------------------------------------------

/// One conjunct of an α condition: the property `key` of star `star` must
/// be present (present=true) or absent (present=false). The planner emits
/// presence-only conditions (see DESIGN.md on Table 2); absence conditions
/// are supported for the operator's full generality.
struct AlphaConstraint {
  int star = 0;
  DataPropKey key;
  bool present = true;
};

/// A conjunction of constraints; a list of AlphaConditions is a
/// disjunction (one per original graph pattern).
using AlphaCondition = std::vector<AlphaConstraint>;

bool SatisfiesAlpha(const NestedTripleGroup& ntg, const AlphaCondition& cond,
                    rdf::TermId type_id);
bool SatisfiesAnyAlpha(const NestedTripleGroup& ntg,
                       const std::vector<AlphaCondition>& conds,
                       rdf::TermId type_id);

/// Join keys of a nested triplegroup at a join endpoint: the star's
/// subject (one key) or the objects of the joining property (possibly
/// several — multi-valued join properties fan out, as in Alg. 2's map).
std::vector<rdf::TermId> JoinKeys(const NestedTripleGroup& ntg, int star,
                                  JoinRole role, const DataPropKey& prop,
                                  rdf::TermId type_id);

/// In-memory α-Join of two classes of nested triplegroups along `join`.
/// A joined group is emitted only if it satisfies at least one of `alphas`
/// (empty `alphas` = no α filtering, used for intermediate joins of
/// 3+-star patterns where the condition is only decidable at the end).
std::vector<NestedTripleGroup> AlphaJoin(
    const std::vector<NestedTripleGroup>& left,
    const std::vector<NestedTripleGroup>& right, const ResolvedJoin& join,
    const std::vector<AlphaCondition>& alphas, rdf::TermId type_id);

// ---------------------------------------------------------------------------
// Binding expansion (shared by Agg-Join and result extraction)
// ---------------------------------------------------------------------------

/// Enumerates the solution mappings a pattern match induces for the given
/// composite variables: the cross product over multi-valued properties,
/// matching SPARQL multiplicity semantics. A variable bound to a star the
/// match did not fill (or to an absent optional property) yields
/// kInvalidTermId in that position; if `skip_unbound` is true such
/// mappings are dropped instead.
std::vector<std::vector<rdf::TermId>> ExpandBindings(
    const NestedTripleGroup& ntg, const ResolvedPattern& pattern,
    const std::vector<std::string>& vars, bool skip_unbound);

/// Flat, scratch-reusing form of ExpandBindings for per-record loops: rows
/// are written row-major into `rows` (num_rows x width) and every internal
/// buffer is reused across calls, so a warm expansion allocates nothing.
/// Row order is identical to ExpandBindings'.
struct BindingExpansion {
  std::vector<rdf::TermId> rows;
  size_t width = 0;
  size_t num_rows = 0;

  const rdf::TermId* row(size_t r) const { return rows.data() + r * width; }

  // Internal scratch (candidate pools, odometer, per-source values).
  std::vector<std::vector<rdf::TermId>> candidates;
  std::vector<size_t> idx;
  std::vector<rdf::TermId> vals;
};

void ExpandBindingsInto(const NestedTripleGroup& ntg,
                        const ResolvedPattern& pattern,
                        const std::vector<std::string>& vars,
                        bool skip_unbound, BindingExpansion* out);

// ---------------------------------------------------------------------------
// γ^AgJ — TG Agg-Join (Def. 3.6, Alg. 3)
// ---------------------------------------------------------------------------

/// One aggregation f_k(a_k) with its output column name.
struct AggSpec {
  sparql::AggFunc func = sparql::AggFunc::kCount;
  std::string var;          // aggregation variable (composite namespace)
  bool count_star = false;  // COUNT(*) over solution mappings
  std::string output_name;
  std::string separator = " ";  // GROUP_CONCAT only
};

/// One decoupled grouping-aggregation over the composite pattern: θ is the
/// grouping variable list (empty = GROUP BY ALL), l the aggregate list,
/// α the pattern's secondary-presence condition.
struct AggJoinSpec {
  std::vector<std::string> group_vars;  // θ
  std::vector<AggSpec> aggs;            // l
  AlphaCondition alpha;                 // α
};

/// An aggregated triplegroup: the grouping key (bindings of θ, in order)
/// and the aggregate values (aligned with spec.aggs).
struct AggregatedGroup {
  std::vector<rdf::TermId> key;
  std::vector<rdf::TermId> values;

  friend bool operator==(const AggregatedGroup& a, const AggregatedGroup& b) {
    return a.key == b.key && a.values == b.values;
  }
};

/// In-memory TG Agg-Join: groups the α-qualifying detail matches by θ and
/// aggregates. When `explicit_base` is non-null, one output group is
/// produced per base key (keys whose RNG is empty get default aggregate
/// values — Def. 3.6's btg with empty RNG); otherwise groups are derived
/// from the detail side, and with empty θ the single ALL-group is always
/// produced.
std::vector<AggregatedGroup> AggJoin(
    const std::vector<NestedTripleGroup>& detail,
    const ResolvedPattern& pattern, const AggJoinSpec& spec,
    const std::vector<std::vector<rdf::TermId>>* explicit_base,
    rdf::Dictionary* dict);

}  // namespace rapida::ntga

#endif  // RAPIDA_NTGA_OPERATORS_H_
