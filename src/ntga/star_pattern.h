#ifndef RAPIDA_NTGA_STAR_PATTERN_H_
#define RAPIDA_NTGA_STAR_PATTERN_H_

#include <set>
#include <string>
#include <vector>

#include "ntga/prop_key.h"
#include "sparql/ast.h"
#include "util/statusor.h"

namespace rapida::ntga {

/// One triple pattern inside a subject-rooted star.
struct StarTriple {
  PropKey prop;            // property identity (plain or typed)
  sparql::TermOrVar object;  // the object position (ignored for type triples
                             // — the type constant lives in prop.type_object)

  /// Object variable name, or empty if the object is a constant / this is
  /// a type triple.
  std::string ObjectVar() const {
    return (!prop.is_type() && object.is_var) ? object.var : std::string();
  }
};

/// A subject-rooted star subpattern Stp: all triple patterns sharing one
/// subject variable.
struct StarPattern {
  std::string subject_var;
  std::vector<StarTriple> triples;

  /// props(Stp) per Table 1.
  std::set<PropKey> Props() const;

  /// Index of the triple with property `key`, or -1.
  int FindProp(const PropKey& key) const;

  std::string ToString() const;
};

/// Role a join variable plays inside a triple pattern (Table 1: role(?v)).
enum class JoinRole { kSubject, kObject };

const char* JoinRoleName(JoinRole role);

/// One join edge between two stars of a graph pattern: the shared variable,
/// which stars it connects and in which roles, and the property of the
/// joining triple pattern on the object side(s).
struct JoinEdge {
  int star_a = 0;
  JoinRole role_a = JoinRole::kSubject;
  PropKey prop_a;  // property of the joining tp in star_a (if role kObject)

  int star_b = 0;
  JoinRole role_b = JoinRole::kObject;
  PropKey prop_b;  // property of the joining tp in star_b (if role kObject)

  std::string var;

  std::string ToString() const;
};

/// A graph pattern decomposed into subject-rooted stars plus the join
/// edges connecting them — the structure overlap detection (Def. 3.2) and
/// both NTGA engines plan from.
struct StarGraph {
  std::vector<StarPattern> stars;
  std::vector<JoinEdge> joins;

  int StarOfSubject(const std::string& var) const;
  std::string ToString() const;
};

/// Decomposes a BGP into a StarGraph. Requirements for the analytical
/// subset: subjects are variables, properties are bound (IRIs), and the
/// stars form a connected pattern. Violations return InvalidArgument.
StatusOr<StarGraph> DecomposeToStars(
    const std::vector<sparql::TriplePattern>& triples);

}  // namespace rapida::ntga

#endif  // RAPIDA_NTGA_STAR_PATTERN_H_
