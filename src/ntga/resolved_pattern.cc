#include "ntga/resolved_pattern.h"

#include "rdf/term.h"

namespace rapida::ntga {

ResolvedPattern::VarSource ResolvedPattern::SourceOf(
    const std::string& var) const {
  VarSource src;
  for (size_t i = 0; i < stars.size(); ++i) {
    if (stars[i].subject_var == var) {
      src.star = static_cast<int>(i);
      src.is_subject = true;
      return src;
    }
    for (const ResolvedStarTriple& t : stars[i].triples) {
      if (t.object_var == var) {
        src.star = static_cast<int>(i);
        src.is_subject = false;
        src.key = t.key;
        return src;
      }
    }
  }
  return src;
}

ResolvedPattern ResolvePattern(const CompositePattern& pattern,
                               const rdf::Dictionary& dict) {
  ResolvedPattern out;
  out.pattern_secondary.resize(pattern.pattern_secondary.size());
  out.var_map = pattern.var_map;
  out.type_id = dict.LookupIri(rdf::kRdfType);

  // PropKey -> DataPropKey resolution shared by stars and join edges.
  auto resolve_key = [&dict](const PropKey& key, bool* ok) {
    DataPropKey dk;
    dk.property = dict.LookupIri(key.property);
    if (dk.property == rdf::kInvalidTermId) *ok = false;
    if (key.is_type()) {
      dk.type_object = dict.LookupIri(key.type_object);
      if (dk.type_object == rdf::kInvalidTermId) *ok = false;
    }
    return dk;
  };

  for (const CompositeStar& cs : pattern.stars) {
    ResolvedStar rs;
    rs.subject_var = cs.subject_var;
    for (const StarTriple& t : cs.triples) {
      bool ok = true;
      ResolvedStarTriple rt;
      rt.key = resolve_key(t.prop, &ok);
      if (!t.prop.is_type() && !t.object.is_var) {
        rt.const_object = dict.Lookup(t.object.term);
        if (rt.const_object == rdf::kInvalidTermId) ok = false;
      }
      if (!t.prop.is_type() && t.object.is_var) rt.object_var = t.object.var;
      bool is_primary = cs.primary.count(t.prop) > 0;
      if (!ok && is_primary) rs.satisfiable = false;
      (is_primary ? rs.primary : rs.secondary).insert(rt.key);
      rs.triples.push_back(std::move(rt));
    }
    if (!rs.satisfiable) out.satisfiable = false;
    out.stars.push_back(std::move(rs));
  }

  for (const JoinEdge& e : pattern.joins) {
    bool ok = true;
    ResolvedJoin rj;
    rj.star_a = e.star_a;
    rj.role_a = e.role_a;
    if (e.role_a == JoinRole::kObject) rj.prop_a = resolve_key(e.prop_a, &ok);
    rj.star_b = e.star_b;
    rj.role_b = e.role_b;
    if (e.role_b == JoinRole::kObject) rj.prop_b = resolve_key(e.prop_b, &ok);
    if (!ok) out.satisfiable = false;
    out.joins.push_back(rj);
  }

  for (size_t p = 0; p < pattern.pattern_secondary.size(); ++p) {
    for (const auto& [star, keys] : pattern.pattern_secondary[p]) {
      for (const PropKey& k : keys) {
        bool ok = true;
        DataPropKey dk = resolve_key(k, &ok);
        // A secondary property absent from the data simply never matches;
        // record it with an invalid id so the α check fails for it.
        out.pattern_secondary[p][star].insert(dk);
        (void)ok;
      }
    }
  }
  return out;
}

}  // namespace rapida::ntga
