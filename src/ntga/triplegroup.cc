#include "ntga/triplegroup.h"

#include <cstdio>

#include "util/string_util.h"

namespace rapida::ntga {

namespace {

DataPropKey KeyOfTriple(const rdf::Triple& t, rdf::TermId type_id) {
  DataPropKey key;
  key.property = t.p;
  if (t.p == type_id) key.type_object = t.o;
  return key;
}

}  // namespace

std::set<DataPropKey> TripleGroup::Props(rdf::TermId type_id) const {
  std::set<DataPropKey> out;
  for (const rdf::Triple& t : triples) out.insert(KeyOfTriple(t, type_id));
  return out;
}

std::vector<rdf::TermId> TripleGroup::ObjectsOf(const DataPropKey& key,
                                                rdf::TermId type_id) const {
  std::vector<rdf::TermId> out;
  for (const rdf::Triple& t : triples) {
    if (KeyOfTriple(t, type_id) == key) out.push_back(t.o);
  }
  return out;
}

bool TripleGroup::HasProp(const DataPropKey& key, rdf::TermId type_id,
                          rdf::TermId required_object) const {
  for (const rdf::Triple& t : triples) {
    if (KeyOfTriple(t, type_id) == key &&
        (required_object == rdf::kInvalidTermId || t.o == required_object)) {
      return true;
    }
  }
  return false;
}

std::string SerializeTripleGroup(const TripleGroup& tg) {
  std::string out = std::to_string(tg.subject);
  for (const rdf::Triple& t : tg.triples) {
    out += ';';
    out += std::to_string(t.p);
    out += ',';
    out += std::to_string(t.o);
  }
  return out;
}

StatusOr<TripleGroup> ParseTripleGroup(std::string_view data) {
  TripleGroup tg;
  FieldTokenizer fields(data, ';');
  std::string_view part;
  fields.Next(&part);  // always yields at least the (possibly empty) subject
  int64_t subj = 0;
  if (!ParseInt64(part, &subj)) {
    return Status::ParseError("bad triplegroup subject: " +
                              std::string(data));
  }
  tg.subject = static_cast<rdf::TermId>(subj);
  while (fields.Next(&part)) {
    size_t comma = part.find(',');
    if (comma == std::string_view::npos) {
      return Status::ParseError("bad triplegroup triple: " +
                                std::string(part));
    }
    int64_t p = 0, o = 0;
    if (!ParseInt64(part.substr(0, comma), &p) ||
        !ParseInt64(part.substr(comma + 1), &o)) {
      return Status::ParseError("bad triplegroup triple: " +
                                std::string(part));
    }
    tg.triples.push_back(rdf::Triple{tg.subject, static_cast<rdf::TermId>(p),
                                     static_cast<rdf::TermId>(o)});
  }
  return tg;
}

std::string SerializeNested(const NestedTripleGroup& ntg) {
  std::string out;
  for (size_t i = 0; i < ntg.stars.size(); ++i) {
    if (ntg.stars[i].subject == rdf::kInvalidTermId) continue;
    if (!out.empty()) out += '#';
    out += std::to_string(i);
    out += ':';
    out += SerializeTripleGroup(ntg.stars[i]);
  }
  return out;
}

StatusOr<NestedTripleGroup> ParseNested(std::string_view data,
                                        int num_stars) {
  NestedTripleGroup ntg;
  ntg.stars.resize(num_stars);
  if (data.empty()) return ntg;
  FieldTokenizer parts(data, '#');
  std::string_view part;
  while (parts.Next(&part)) {
    size_t colon = part.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("bad nested triplegroup part: " +
                                std::string(part));
    }
    int64_t star = 0;
    if (!ParseInt64(part.substr(0, colon), &star) || star < 0 ||
        star >= num_stars) {
      return Status::ParseError("bad star index in: " + std::string(part));
    }
    RAPIDA_ASSIGN_OR_RETURN(TripleGroup tg,
                            ParseTripleGroup(part.substr(colon + 1)));
    ntg.stars[star] = std::move(tg);
  }
  return ntg;
}

}  // namespace rapida::ntga
