#include "ntga/triplegroup.h"

#include <cstdio>

#include "mapreduce/kernels.h"
#include "util/string_util.h"

namespace rapida::ntga {

namespace {

DataPropKey KeyOfTriple(const rdf::Triple& t, rdf::TermId type_id) {
  DataPropKey key;
  key.property = t.p;
  if (t.p == type_id) key.type_object = t.o;
  return key;
}

}  // namespace

std::set<DataPropKey> TripleGroup::Props(rdf::TermId type_id) const {
  std::set<DataPropKey> out;
  for (const rdf::Triple& t : triples) out.insert(KeyOfTriple(t, type_id));
  return out;
}

std::vector<rdf::TermId> TripleGroup::ObjectsOf(const DataPropKey& key,
                                                rdf::TermId type_id) const {
  std::vector<rdf::TermId> out;
  ObjectsOfInto(key, type_id, &out);
  return out;
}

void TripleGroup::ObjectsOfInto(const DataPropKey& key, rdf::TermId type_id,
                                std::vector<rdf::TermId>* out) const {
  for (const rdf::Triple& t : triples) {
    if (KeyOfTriple(t, type_id) == key) out->push_back(t.o);
  }
}

bool TripleGroup::HasProp(const DataPropKey& key, rdf::TermId type_id,
                          rdf::TermId required_object) const {
  for (const rdf::Triple& t : triples) {
    if (KeyOfTriple(t, type_id) == key &&
        (required_object == rdf::kInvalidTermId || t.o == required_object)) {
      return true;
    }
  }
  return false;
}

void SerializeTripleGroupTo(const TripleGroup& tg, std::string* out) {
  mr::kernels::AppendDecimal(out, tg.subject);
  for (const rdf::Triple& t : tg.triples) {
    *out += ';';
    mr::kernels::AppendDecimal(out, t.p);
    *out += ',';
    mr::kernels::AppendDecimal(out, t.o);
  }
}

std::string SerializeTripleGroup(const TripleGroup& tg) {
  std::string out;
  SerializeTripleGroupTo(tg, &out);
  return out;
}

Status ParseTripleGroupInto(std::string_view data, TripleGroup* out) {
  out->subject = rdf::kInvalidTermId;
  out->triples.clear();
  FieldTokenizer fields(data, ';');
  std::string_view part;
  fields.Next(&part);  // always yields at least the (possibly empty) subject
  int64_t subj = 0;
  if (!ParseDigits(part, &subj)) {
    return Status::ParseError("bad triplegroup subject: " +
                              std::string(data));
  }
  out->subject = static_cast<rdf::TermId>(subj);
  while (fields.Next(&part)) {
    size_t comma = part.find(',');
    if (comma == std::string_view::npos) {
      return Status::ParseError("bad triplegroup triple: " +
                                std::string(part));
    }
    int64_t p = 0, o = 0;
    if (!ParseDigits(part.substr(0, comma), &p) ||
        !ParseDigits(part.substr(comma + 1), &o)) {
      return Status::ParseError("bad triplegroup triple: " +
                                std::string(part));
    }
    out->triples.push_back(rdf::Triple{out->subject,
                                       static_cast<rdf::TermId>(p),
                                       static_cast<rdf::TermId>(o)});
  }
  return Status::OK();
}

StatusOr<TripleGroup> ParseTripleGroup(std::string_view data) {
  TripleGroup tg;
  RAPIDA_RETURN_IF_ERROR(ParseTripleGroupInto(data, &tg));
  return tg;
}

void SerializeNestedTo(const NestedTripleGroup& ntg, std::string* out) {
  size_t start = out->size();
  for (size_t i = 0; i < ntg.stars.size(); ++i) {
    if (ntg.stars[i].subject == rdf::kInvalidTermId) continue;
    if (out->size() > start) *out += '#';
    mr::kernels::AppendDecimal(out, i);
    *out += ':';
    SerializeTripleGroupTo(ntg.stars[i], out);
  }
}

std::string SerializeNested(const NestedTripleGroup& ntg) {
  std::string out;
  SerializeNestedTo(ntg, &out);
  return out;
}

Status ParseNestedInto(std::string_view data, int num_stars,
                       NestedTripleGroup* out) {
  // Reset in place: keep each star's triples capacity across records.
  out->stars.resize(num_stars);
  for (TripleGroup& star : out->stars) {
    star.subject = rdf::kInvalidTermId;
    star.triples.clear();
  }
  if (data.empty()) return Status::OK();
  FieldTokenizer parts(data, '#');
  std::string_view part;
  while (parts.Next(&part)) {
    size_t colon = part.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("bad nested triplegroup part: " +
                                std::string(part));
    }
    int64_t star = 0;
    if (!ParseInt64(part.substr(0, colon), &star) || star < 0 ||
        star >= num_stars) {
      return Status::ParseError("bad star index in: " + std::string(part));
    }
    RAPIDA_RETURN_IF_ERROR(
        ParseTripleGroupInto(part.substr(colon + 1), &out->stars[star]));
  }
  return Status::OK();
}

StatusOr<NestedTripleGroup> ParseNested(std::string_view data,
                                        int num_stars) {
  NestedTripleGroup ntg;
  RAPIDA_RETURN_IF_ERROR(ParseNestedInto(data, num_stars, &ntg));
  return ntg;
}

}  // namespace rapida::ntga
