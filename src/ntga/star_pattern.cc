#include "ntga/star_pattern.h"

#include <map>

#include "rdf/term.h"

namespace rapida::ntga {

std::set<PropKey> StarPattern::Props() const {
  std::set<PropKey> out;
  for (const StarTriple& t : triples) out.insert(t.prop);
  return out;
}

int StarPattern::FindProp(const PropKey& key) const {
  for (size_t i = 0; i < triples.size(); ++i) {
    if (triples[i].prop == key) return static_cast<int>(i);
  }
  return -1;
}

std::string StarPattern::ToString() const {
  std::string out = "?" + subject_var + "{";
  bool first = true;
  for (const StarTriple& t : triples) {
    if (!first) out += ", ";
    first = false;
    out += t.prop.ToString();
    std::string ov = t.ObjectVar();
    if (!ov.empty()) out += "->?" + ov;
  }
  out += "}";
  return out;
}

const char* JoinRoleName(JoinRole role) {
  return role == JoinRole::kSubject ? "subject" : "object";
}

std::string JoinEdge::ToString() const {
  return "?" + var + ": star" + std::to_string(star_a) + "/" +
         JoinRoleName(role_a) +
         (role_a == JoinRole::kObject ? "(" + prop_a.ToString() + ")" : "") +
         " -- star" + std::to_string(star_b) + "/" + JoinRoleName(role_b) +
         (role_b == JoinRole::kObject ? "(" + prop_b.ToString() + ")" : "");
}

int StarGraph::StarOfSubject(const std::string& var) const {
  for (size_t i = 0; i < stars.size(); ++i) {
    if (stars[i].subject_var == var) return static_cast<int>(i);
  }
  return -1;
}

std::string StarGraph::ToString() const {
  std::string out;
  for (size_t i = 0; i < stars.size(); ++i) {
    out += "Stp" + std::to_string(i) + " = " + stars[i].ToString() + "\n";
  }
  for (const JoinEdge& j : joins) out += "join " + j.ToString() + "\n";
  return out;
}

StatusOr<StarGraph> DecomposeToStars(
    const std::vector<sparql::TriplePattern>& triples) {
  StarGraph graph;
  std::map<std::string, int> star_of_subject;

  for (const sparql::TriplePattern& tp : triples) {
    if (!tp.s.is_var) {
      return Status::InvalidArgument(
          "analytical subset requires variable subjects: " + tp.ToString());
    }
    if (tp.p.is_var) {
      return Status::InvalidArgument(
          "analytical subset requires bound properties: " + tp.ToString());
    }
    auto [it, inserted] =
        star_of_subject.emplace(tp.s.var, static_cast<int>(graph.stars.size()));
    if (inserted) {
      graph.stars.push_back(StarPattern{tp.s.var, {}});
    }
    StarTriple st;
    st.prop.property = tp.p.term.text;
    if (tp.p.term.text == rdf::kRdfType) {
      // Type objects are part of the triple-group property key, so a
      // variable there has no key to match — no engine can evaluate it.
      if (tp.o.is_var) {
        return Status::InvalidArgument(
            "rdf:type with a variable object is outside the analytical "
            "subset (type objects are part of the triple-group key; use "
            "the reference evaluator): " + tp.ToString());
      }
      st.prop.type_object = tp.o.term.text;
    }
    st.object = tp.o;
    graph.stars[it->second].triples.push_back(std::move(st));
  }

  // Join edges: a variable that is the subject of star B and an object in
  // star A (subject-object join), or an object in two different stars
  // (object-object join). Subject-subject can't happen (same var = same
  // star).
  for (size_t a = 0; a < graph.stars.size(); ++a) {
    for (const StarTriple& t : graph.stars[a].triples) {
      std::string ov = t.ObjectVar();
      if (ov.empty()) continue;
      // subject-object join.
      int b = graph.StarOfSubject(ov);
      if (b >= 0 && b != static_cast<int>(a)) {
        JoinEdge e;
        e.star_a = static_cast<int>(a);
        e.role_a = JoinRole::kObject;
        e.prop_a = t.prop;
        e.star_b = b;
        e.role_b = JoinRole::kSubject;
        e.var = ov;
        graph.joins.push_back(std::move(e));
      }
      // object-object joins with later stars (each unordered pair once).
      for (size_t b2 = a + 1; b2 < graph.stars.size(); ++b2) {
        for (const StarTriple& t2 : graph.stars[b2].triples) {
          if (t2.ObjectVar() == ov) {
            JoinEdge e;
            e.star_a = static_cast<int>(a);
            e.role_a = JoinRole::kObject;
            e.prop_a = t.prop;
            e.star_b = static_cast<int>(b2);
            e.role_b = JoinRole::kObject;
            e.prop_b = t2.prop;
            e.var = ov;
            graph.joins.push_back(std::move(e));
          }
        }
      }
    }
  }
  return graph;
}

}  // namespace rapida::ntga
