#ifndef RAPIDA_NTGA_RESOLVED_PATTERN_H_
#define RAPIDA_NTGA_RESOLVED_PATTERN_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ntga/overlap.h"
#include "ntga/triplegroup.h"
#include "rdf/dictionary.h"

namespace rapida::ntga {

/// A star-pattern triple resolved against a concrete dictionary.
struct ResolvedStarTriple {
  DataPropKey key;
  std::string object_var;  // empty when the object is constant / type
  rdf::TermId const_object = rdf::kInvalidTermId;  // non-type constant
};

/// A (composite) star pattern with all constants resolved to term ids.
struct ResolvedStar {
  std::string subject_var;
  std::vector<ResolvedStarTriple> triples;
  std::set<DataPropKey> primary;
  std::set<DataPropKey> secondary;
  /// False when a constant in a *primary* position is absent from the
  /// dictionary — the star can never match.
  bool satisfiable = true;
};

struct ResolvedJoin {
  int star_a = 0;
  JoinRole role_a = JoinRole::kSubject;
  DataPropKey prop_a;
  int star_b = 0;
  JoinRole role_b = JoinRole::kObject;
  DataPropKey prop_b;
};

/// A composite pattern bound to a dataset's dictionary: what the NTGA
/// physical operators execute against.
struct ResolvedPattern {
  std::vector<ResolvedStar> stars;
  std::vector<ResolvedJoin> joins;
  /// Per original pattern: star index -> secondary props that must be
  /// present (the pattern's α condition).
  std::vector<std::map<int, std::set<DataPropKey>>> pattern_secondary;
  /// Per original pattern: original var -> composite var.
  std::vector<std::map<std::string, std::string>> var_map;
  rdf::TermId type_id = rdf::kInvalidTermId;
  bool satisfiable = true;

  /// Where a composite variable is bound: the subject of a star, or the
  /// object of a property within a star.
  struct VarSource {
    int star = -1;
    bool is_subject = false;
    DataPropKey key;  // valid when !is_subject
  };
  /// Source of `var`, or star = -1 if the pattern does not bind it.
  VarSource SourceOf(const std::string& var) const;
};

/// Binds a CompositePattern's IRIs/constants to dictionary ids. Constants
/// missing from the dictionary make the affected star (and the whole
/// pattern, if primary) unsatisfiable rather than erroring — an absent
/// constant just means zero matches.
ResolvedPattern ResolvePattern(const CompositePattern& pattern,
                               const rdf::Dictionary& dict);

}  // namespace rapida::ntga

#endif  // RAPIDA_NTGA_RESOLVED_PATTERN_H_
