#ifndef RAPIDA_NTGA_PROP_KEY_H_
#define RAPIDA_NTGA_PROP_KEY_H_

#include <cstdint>
#include <string>

namespace rapida::ntga {

/// Identity of one "property" in the NTGA sense. The paper treats a typed
/// rdf:type triple as a distinct property (ty18 = "rdf:type PT18"), because
/// two stars only overlap when their type restrictions agree (Def. 3.1).
/// So a PropKey is either a plain property IRI or (rdf:type, object IRI).
struct PropKey {
  std::string property;     // property IRI
  std::string type_object;  // non-empty only for rdf:type triples

  bool is_type() const { return !type_object.empty(); }

  friend bool operator==(const PropKey& a, const PropKey& b) {
    return a.property == b.property && a.type_object == b.type_object;
  }
  friend bool operator<(const PropKey& a, const PropKey& b) {
    if (a.property != b.property) return a.property < b.property;
    return a.type_object < b.type_object;
  }

  std::string ToString() const {
    return is_type() ? "type=" + type_object : property;
  }
};

}  // namespace rapida::ntga

#endif  // RAPIDA_NTGA_PROP_KEY_H_
