#ifndef RAPIDA_NTGA_TRIPLEGROUP_H_
#define RAPIDA_NTGA_TRIPLEGROUP_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ntga/prop_key.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "util/statusor.h"

namespace rapida::ntga {

/// Data-level property identity: a property id, plus the type object id
/// when the property is rdf:type (mirrors PropKey at the string level).
struct DataPropKey {
  rdf::TermId property = rdf::kInvalidTermId;
  rdf::TermId type_object = rdf::kInvalidTermId;

  bool is_type() const { return type_object != rdf::kInvalidTermId; }

  friend bool operator==(const DataPropKey& a, const DataPropKey& b) {
    return a.property == b.property && a.type_object == b.type_object;
  }
  friend bool operator<(const DataPropKey& a, const DataPropKey& b) {
    if (a.property != b.property) return a.property < b.property;
    return a.type_object < b.type_object;
  }
};

/// A triplegroup tg: triples sharing one subject (the NTGA unit of data).
struct TripleGroup {
  rdf::TermId subject = rdf::kInvalidTermId;
  std::vector<rdf::Triple> triples;

  /// props(tg): the set of DataPropKeys of the member triples.
  /// `type_id` is the dictionary id of rdf:type (kInvalidTermId if the
  /// graph has no type triples).
  std::set<DataPropKey> Props(rdf::TermId type_id) const;

  /// All objects of triples with the given property key (for a type key,
  /// the type object itself when present).
  std::vector<rdf::TermId> ObjectsOf(const DataPropKey& key,
                                     rdf::TermId type_id) const;

  /// Appends the same objects to `out` without allocating a fresh vector
  /// (callers clear; the hot expansion loops reuse one scratch vector).
  void ObjectsOfInto(const DataPropKey& key, rdf::TermId type_id,
                     std::vector<rdf::TermId>* out) const;

  /// True if a triple with this key exists (and, if `required_object` is
  /// valid, with that exact object).
  bool HasProp(const DataPropKey& key, rdf::TermId type_id,
               rdf::TermId required_object = rdf::kInvalidTermId) const;

  friend bool operator==(const TripleGroup& a, const TripleGroup& b) {
    return a.subject == b.subject && a.triples == b.triples;
  }
};

/// A match of a (composite) graph pattern: one triplegroup per star,
/// indexed by star position. Unfilled stars have subject == kInvalidTermId.
/// This is NTGA's "nested" representation — the join result holds the
/// joined groups side by side instead of flattening into wide tuples.
struct NestedTripleGroup {
  std::vector<TripleGroup> stars;

  bool IsFilled(int star) const {
    return star >= 0 && star < static_cast<int>(stars.size()) &&
           stars[star].subject != rdf::kInvalidTermId;
  }

  friend bool operator==(const NestedTripleGroup& a,
                         const NestedTripleGroup& b) {
    return a.stars == b.stars;
  }
};

/// Serialization for MapReduce records. Format (all ids decimal):
///   TripleGroup:        "subj;p,o;p,o;..."
///   NestedTripleGroup:  "star:subj;p,o;...#star:subj;..."  (filled stars)
std::string SerializeTripleGroup(const TripleGroup& tg);
StatusOr<TripleGroup> ParseTripleGroup(std::string_view data);

std::string SerializeNested(const NestedTripleGroup& ntg);
StatusOr<NestedTripleGroup> ParseNested(std::string_view data,
                                        int num_stars);

/// Scratch-reusing variants for the batch kernels: the *To serializers
/// append to `out` (same bytes as their std::string counterparts), the
/// *Into parsers overwrite `out` in place, reusing its vector/string
/// capacity so per-record parse loops stop allocating once warm.
void SerializeTripleGroupTo(const TripleGroup& tg, std::string* out);
Status ParseTripleGroupInto(std::string_view data, TripleGroup* out);

void SerializeNestedTo(const NestedTripleGroup& ntg, std::string* out);
Status ParseNestedInto(std::string_view data, int num_stars,
                       NestedTripleGroup* out);

}  // namespace rapida::ntga

#endif  // RAPIDA_NTGA_TRIPLEGROUP_H_
