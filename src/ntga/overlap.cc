#include "ntga/overlap.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace rapida::ntga {

namespace {

/// True when the objects of a shared (primary) property are compatible for
/// shared execution: both variables, or equal constants. A constant on one
/// side only (or differing constants) means the two stars ask different
/// questions about that property, so we refuse the overlap conservatively.
bool SharedPropObjectsCompatible(const StarPattern& a, const StarPattern& b,
                                 const PropKey& key) {
  if (key.is_type()) return true;  // type object identity is in the key
  const StarTriple& ta = a.triples[a.FindProp(key)];
  const StarTriple& tb = b.triples[b.FindProp(key)];
  if (ta.object.is_var && tb.object.is_var) return true;
  if (!ta.object.is_var && !tb.object.is_var) {
    return ta.object.term == tb.object.term;
  }
  return false;
}

/// Checks role-equivalence of the join structures of gp1 and gp2 under the
/// star mapping m (gp1 star i <-> gp2 star m[i]). Every edge must have a
/// role-equivalent counterpart and vice versa.
bool JoinsRoleEquivalent(const StarGraph& gp1, const StarGraph& gp2,
                         const std::vector<int>& m, std::string* why) {
  if (gp1.joins.size() != gp2.joins.size()) {
    *why = "different number of join edges";
    return false;
  }
  // Endpoint signature: (mapped star, role, joining property if object).
  struct Endpoint {
    int star;
    JoinRole role;
    PropKey prop;
    bool operator==(const Endpoint& o) const {
      return star == o.star && role == o.role &&
             (role == JoinRole::kSubject || prop == o.prop);
    }
  };
  auto edge_matches = [](const Endpoint& a1, const Endpoint& a2,
                         const Endpoint& b1, const Endpoint& b2) {
    return (a1 == b1 && a2 == b2) || (a1 == b2 && a2 == b1);
  };

  std::vector<bool> used(gp2.joins.size(), false);
  for (const JoinEdge& e1 : gp1.joins) {
    Endpoint a1{m[e1.star_a], e1.role_a, e1.prop_a};
    Endpoint a2{m[e1.star_b], e1.role_b, e1.prop_b};
    bool found = false;
    for (size_t j = 0; j < gp2.joins.size(); ++j) {
      if (used[j]) continue;
      const JoinEdge& e2 = gp2.joins[j];
      Endpoint b1{e2.star_a, e2.role_a, e2.prop_a};
      Endpoint b2{e2.star_b, e2.role_b, e2.prop_b};
      if (edge_matches(a1, a2, b1, b2)) {
        used[j] = true;
        found = true;
        break;
      }
    }
    if (!found) {
      *why = "join on ?" + e1.var +
             " has no role-equivalent counterpart (subject/object roles or "
             "joining property differ)";
      return false;
    }
  }
  return true;
}

}  // namespace

bool StarsOverlap(const StarPattern& a, const StarPattern& b) {
  std::set<PropKey> pa = a.Props();
  std::set<PropKey> pb = b.Props();
  std::vector<PropKey> shared;
  std::set_intersection(pa.begin(), pa.end(), pb.begin(), pb.end(),
                        std::back_inserter(shared));
  if (shared.empty()) return false;
  // rdf:type restrictions must agree in both directions.
  for (const PropKey& k : pa) {
    if (k.is_type() && pb.count(k) == 0) return false;
  }
  for (const PropKey& k : pb) {
    if (k.is_type() && pa.count(k) == 0) return false;
  }
  for (const PropKey& k : shared) {
    if (!SharedPropObjectsCompatible(a, b, k)) return false;
  }
  return true;
}

OverlapResult FindOverlap(const StarGraph& gp1, const StarGraph& gp2) {
  OverlapResult result;
  if (gp1.stars.size() != gp2.stars.size()) {
    result.explanation = "different number of star patterns (" +
                         std::to_string(gp1.stars.size()) + " vs " +
                         std::to_string(gp2.stars.size()) + ")";
    return result;
  }
  const size_t n = gp1.stars.size();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::string last_reason = "no star-to-star matching overlaps";
  do {
    bool stars_ok = true;
    for (size_t i = 0; i < n; ++i) {
      if (!StarsOverlap(gp1.stars[i], gp2.stars[perm[i]])) {
        stars_ok = false;
        break;
      }
    }
    if (!stars_ok) continue;
    std::string why;
    if (!JoinsRoleEquivalent(gp1, gp2, perm, &why)) {
      last_reason = why;
      continue;
    }
    result.overlaps = true;
    result.mapping = perm;
    std::ostringstream os;
    for (size_t i = 0; i < n; ++i) {
      os << "Stp" << i << " (GP1) overlaps Stp" << perm[i] << " (GP2); ";
    }
    os << "join structures are role-equivalent; hence GP1 overlaps GP2";
    result.explanation = os.str();
    return result;
  } while (std::next_permutation(perm.begin(), perm.end()));
  result.explanation = last_reason;
  return result;
}

std::string CompositePattern::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < stars.size(); ++i) {
    os << "Stp'" << i << " = ?" << stars[i].subject_var << "{";
    bool first = true;
    for (const StarTriple& t : stars[i].triples) {
      if (!first) os << ", ";
      first = false;
      os << t.prop.ToString();
      if (stars[i].secondary.count(t.prop) > 0) os << " (sec)";
    }
    os << "}\n";
  }
  for (size_t p = 0; p < pattern_secondary.size(); ++p) {
    os << "alpha[" << p << "]: ";
    bool any = false;
    for (const auto& [star, keys] : pattern_secondary[p]) {
      for (const PropKey& k : keys) {
        if (any) os << " && ";
        any = true;
        os << "Stp'" << star << "." << k.ToString() << " != {}";
      }
    }
    if (!any) os << "true";
    os << "\n";
  }
  return os.str();
}

StatusOr<CompositePattern> BuildComposite(const StarGraph& gp1,
                                          const StarGraph& gp2,
                                          const OverlapResult& overlap) {
  if (!overlap.overlaps) {
    return Status::InvalidArgument(
        "BuildComposite called on non-overlapping patterns: " +
        overlap.explanation);
  }
  CompositePattern out;
  out.pattern_secondary.resize(2);
  out.var_map.resize(2);

  // Collect every composite variable name to detect collisions when
  // importing GP2-only variables.
  std::set<std::string> taken;
  for (const StarPattern& s : gp1.stars) {
    taken.insert(s.subject_var);
    for (const StarTriple& t : s.triples) {
      std::string v = t.ObjectVar();
      if (!v.empty()) taken.insert(v);
    }
  }
  auto fresh_name = [&taken](const std::string& base) {
    std::string name = base;
    while (taken.count(name) > 0) name += "_g2";
    taken.insert(name);
    return name;
  };

  for (size_t i = 0; i < gp1.stars.size(); ++i) {
    const StarPattern& s1 = gp1.stars[i];
    const StarPattern& s2 = gp2.stars[overlap.mapping[i]];
    CompositeStar cs;
    cs.subject_var = s1.subject_var;
    out.var_map[0][s1.subject_var] = s1.subject_var;
    out.var_map[1][s2.subject_var] = s1.subject_var;

    std::set<PropKey> p1 = s1.Props();
    std::set<PropKey> p2 = s2.Props();

    // Primary properties: GP1's triple is canonical; GP2's object variable
    // (if any) maps onto GP1's.
    for (const StarTriple& t : s1.triples) {
      if (p2.count(t.prop) == 0) continue;
      cs.primary.insert(t.prop);
      cs.triples.push_back(t);
      std::string v1 = t.ObjectVar();
      const StarTriple& t2 = s2.triples[s2.FindProp(t.prop)];
      std::string v2 = t2.ObjectVar();
      if (!v1.empty()) out.var_map[0][v1] = v1;
      if (!v2.empty() && !v1.empty()) out.var_map[1][v2] = v1;
    }
    // GP1-only secondary properties.
    for (const StarTriple& t : s1.triples) {
      if (p2.count(t.prop) > 0) continue;
      cs.secondary.insert(t.prop);
      cs.triples.push_back(t);
      out.pattern_secondary[0][static_cast<int>(i)].insert(t.prop);
      std::string v = t.ObjectVar();
      if (!v.empty()) out.var_map[0][v] = v;
    }
    // GP2-only secondary properties, renamed into the composite namespace
    // if they collide with GP1 names.
    for (const StarTriple& t : s2.triples) {
      if (p1.count(t.prop) > 0) continue;
      StarTriple imported = t;
      std::string v = t.ObjectVar();
      if (!v.empty()) {
        std::string renamed = fresh_name(v);
        out.var_map[1][v] = renamed;
        imported.object = sparql::TermOrVar::Var(renamed);
      }
      cs.secondary.insert(imported.prop);
      cs.triples.push_back(std::move(imported));
      out.pattern_secondary[1][static_cast<int>(i)].insert(t.prop);
    }
    out.stars.push_back(std::move(cs));
  }
  out.joins = gp1.joins;
  return out;
}

FamilyOverlapResult FindOverlapFamily(
    const std::vector<const StarGraph*>& patterns) {
  FamilyOverlapResult result;
  if (patterns.size() < 2) {
    result.explanation = "a pattern family needs at least two patterns";
    return result;
  }
  const size_t n_stars = patterns[0]->stars.size();
  result.mapping.resize(patterns.size());
  result.mapping[0].resize(n_stars);
  for (size_t i = 0; i < n_stars; ++i) {
    result.mapping[0][i] = static_cast<int>(i);
  }

  // Match every pattern against the anchor.
  for (size_t p = 1; p < patterns.size(); ++p) {
    OverlapResult pair = FindOverlap(*patterns[0], *patterns[p]);
    if (!pair.overlaps) {
      result.explanation = "pattern " + std::to_string(p) +
                           " does not overlap the anchor: " +
                           pair.explanation;
      return result;
    }
    result.mapping[p] = pair.mapping;
  }

  // Pairwise verification under the composed mappings.
  for (size_t p = 1; p < patterns.size(); ++p) {
    for (size_t q = p + 1; q < patterns.size(); ++q) {
      std::vector<int> composed(n_stars);  // star of p -> star of q
      for (size_t a = 0; a < n_stars; ++a) {
        composed[result.mapping[p][a]] = result.mapping[q][a];
      }
      for (size_t a = 0; a < n_stars; ++a) {
        const StarPattern& sp = patterns[p]->stars[result.mapping[p][a]];
        const StarPattern& sq = patterns[q]->stars[result.mapping[q][a]];
        if (!StarsOverlap(sp, sq)) {
          result.explanation = "patterns " + std::to_string(p) + " and " +
                               std::to_string(q) +
                               " have non-overlapping stars";
          return result;
        }
      }
      std::string why;
      if (!JoinsRoleEquivalent(*patterns[p], *patterns[q], composed, &why)) {
        result.explanation = "patterns " + std::to_string(p) + " and " +
                             std::to_string(q) + ": " + why;
        return result;
      }
    }
  }
  result.overlaps = true;
  result.explanation = "all " + std::to_string(patterns.size()) +
                       " patterns pairwise overlap with role-equivalent "
                       "join structures";
  return result;
}

StatusOr<CompositePattern> BuildCompositeFamily(
    const std::vector<const StarGraph*>& patterns,
    const FamilyOverlapResult& overlap) {
  if (!overlap.overlaps) {
    return Status::InvalidArgument(
        "BuildCompositeFamily called on a non-overlapping family: " +
        overlap.explanation);
  }
  const size_t n_patterns = patterns.size();
  const size_t n_stars = patterns[0]->stars.size();
  CompositePattern out;
  out.pattern_secondary.resize(n_patterns);
  out.var_map.resize(n_patterns);

  // Names already claimed by the anchor pattern.
  std::set<std::string> taken;
  for (const StarPattern& s : patterns[0]->stars) {
    taken.insert(s.subject_var);
    for (const StarTriple& t : s.triples) {
      std::string v = t.ObjectVar();
      if (!v.empty()) taken.insert(v);
    }
  }
  auto fresh_name = [&taken](const std::string& base) {
    std::string name = base;
    int suffix = 2;
    while (taken.count(name) > 0) {
      name = base + "_g" + std::to_string(suffix++);
    }
    taken.insert(name);
    return name;
  };

  for (size_t i = 0; i < n_stars; ++i) {
    // The matched stars, one per pattern.
    std::vector<const StarPattern*> stars;
    stars.reserve(n_patterns);
    for (size_t p = 0; p < n_patterns; ++p) {
      stars.push_back(&patterns[p]->stars[overlap.mapping[p][i]]);
    }
    CompositeStar cs;
    cs.subject_var = stars[0]->subject_var;
    for (size_t p = 0; p < n_patterns; ++p) {
      out.var_map[p][stars[p]->subject_var] = cs.subject_var;
    }

    // Primary = intersection of all property sets.
    std::set<PropKey> prim = stars[0]->Props();
    for (size_t p = 1; p < n_patterns; ++p) {
      std::set<PropKey> sp = stars[p]->Props();
      std::set<PropKey> kept;
      std::set_intersection(prim.begin(), prim.end(), sp.begin(), sp.end(),
                            std::inserter(kept, kept.begin()));
      prim = std::move(kept);
    }

    // Emit composite triples property by property, lowest-indexed owner
    // first so canonical variable names are deterministic.
    std::set<PropKey> emitted;
    for (size_t owner = 0; owner < n_patterns; ++owner) {
      for (const StarTriple& t : stars[owner]->triples) {
        if (emitted.count(t.prop) > 0) continue;
        emitted.insert(t.prop);
        bool is_primary = prim.count(t.prop) > 0;

        StarTriple canonical = t;
        std::string canonical_var = t.ObjectVar();
        if (!canonical_var.empty() && owner > 0) {
          canonical_var = fresh_name(canonical_var);
          canonical.object = sparql::TermOrVar::Var(canonical_var);
        }
        if (is_primary) {
          cs.primary.insert(t.prop);
        } else {
          cs.secondary.insert(t.prop);
        }
        cs.triples.push_back(canonical);

        // Map every pattern that carries this property onto the
        // canonical variable; record α requirements for secondary ones.
        for (size_t p = owner; p < n_patterns; ++p) {
          int idx = stars[p]->FindProp(t.prop);
          if (idx < 0) continue;
          std::string pv = stars[p]->triples[idx].ObjectVar();
          if (!pv.empty() && !canonical_var.empty()) {
            out.var_map[p][pv] = canonical_var;
          }
          if (!is_primary) {
            out.pattern_secondary[p][static_cast<int>(i)].insert(t.prop);
          }
        }
      }
    }
    out.stars.push_back(std::move(cs));
  }
  out.joins = patterns[0]->joins;
  return out;
}

CompositePattern SinglePatternComposite(const StarGraph& gp) {
  CompositePattern out;
  out.pattern_secondary.resize(1);
  out.var_map.resize(1);
  for (const StarPattern& s : gp.stars) {
    CompositeStar cs;
    cs.subject_var = s.subject_var;
    out.var_map[0][s.subject_var] = s.subject_var;
    for (const StarTriple& t : s.triples) {
      cs.primary.insert(t.prop);
      cs.triples.push_back(t);
      std::string v = t.ObjectVar();
      if (!v.empty()) out.var_map[0][v] = v;
    }
    out.stars.push_back(std::move(cs));
  }
  out.joins = gp.joins;
  return out;
}

}  // namespace rapida::ntga
