#ifndef RAPIDA_SPARQL_LEXER_H_
#define RAPIDA_SPARQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace rapida::sparql {

enum class TokenType {
  kEof,
  kIriRef,    // <http://...>   (text without brackets)
  kPName,     // prefixed name "bsbm:Product" or bare "type" / keyword-ish
  kVar,       // ?x             (text without '?')
  kString,    // "..."          (unescaped text)
  kInteger,   // 123
  kDecimal,   // 1.5 / 1e3
  kKeyword,   // upper-cased reserved word (SELECT, WHERE, FILTER, ...)
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kDot,
  kSemicolon,
  kComma,
  kStar,
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,    // &&
  kOr,     // ||
  kBang,   // !
  kPlus,
  kMinus,
  kSlash,
  kA,      // the 'a' keyword (rdf:type)
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;   // payload (IRI body, name, literal value, keyword)
  int line = 0;
};

/// Tokenizes SPARQL text. Keywords are recognized case-insensitively and
/// reported upper-cased in Token::text; anything identifier-like that is not
/// a keyword becomes a kPName token.
StatusOr<std::vector<Token>> Tokenize(std::string_view text);

/// Printable token description for error messages.
std::string TokenToString(const Token& t);

}  // namespace rapida::sparql

#endif  // RAPIDA_SPARQL_LEXER_H_
