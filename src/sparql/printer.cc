// SelectQuery::ToString and structural AST equality. The printer is the
// inverse of parser.cc over the supported subset: ParseQuery(q.ToString())
// must yield a query Equals() to q (robustness_test's round-trip property,
// and the basis of the fuzz shrinker's clone-via-reparse).
#include <string>

#include "rdf/term.h"
#include "sparql/ast.h"

namespace rapida::sparql {

namespace {

std::string RenderTermOrVar(const TermOrVar& tv) {
  return tv.is_var ? "?" + tv.var : ToSparqlText(tv.term);
}

void PrintSelect(const SelectQuery& q, const std::string& indent,
                 std::string* out);

void PrintGroupGraphPattern(const GroupGraphPattern& ggp,
                            const std::string& indent, std::string* out) {
  for (const TriplePattern& tp : ggp.triples) {
    *out += indent + RenderTermOrVar(tp.s) + " ";
    if (!tp.p.is_var && tp.p.term.is_iri() && tp.p.term.text == rdf::kRdfType) {
      *out += "a";
    } else {
      *out += RenderTermOrVar(tp.p);
    }
    *out += " " + RenderTermOrVar(tp.o) + " .\n";
  }
  for (const ExprPtr& f : ggp.filters) {
    *out += indent + "FILTER " + f->ToString() + "\n";
  }
  for (const GroupGraphPattern& opt : ggp.optionals) {
    *out += indent + "OPTIONAL {\n";
    PrintGroupGraphPattern(opt, indent + "  ", out);
    *out += indent + "}\n";
  }
  for (size_t i = 0; i < ggp.unions.size(); ++i) {
    *out += i == 0 ? indent + "{\n" : indent + "UNION {\n";
    PrintGroupGraphPattern(ggp.unions[i], indent + "  ", out);
    *out += indent + "}\n";
  }
  for (const auto& sub : ggp.subqueries) {
    *out += indent + "{\n";
    PrintSelect(*sub, indent + "  ", out);
    *out += "\n" + indent + "}\n";
  }
}

void PrintSelect(const SelectQuery& q, const std::string& indent,
                 std::string* out) {
  *out += indent + "SELECT";
  if (q.distinct) *out += " DISTINCT";
  if (q.select_all) {
    *out += " *";
  } else {
    for (const SelectItem& item : q.items) {
      if (item.expr == nullptr) {
        *out += " ?" + item.name;
      } else {
        *out += " (" + item.expr->ToString() + " AS ?" + item.name + ")";
      }
    }
  }
  *out += " {\n";
  PrintGroupGraphPattern(q.where, indent + "  ", out);
  *out += indent + "}";
  if (!q.group_by.empty()) {
    *out += " GROUP BY";
    for (const std::string& v : q.group_by) *out += " ?" + v;
  }
  if (q.having != nullptr) *out += " HAVING " + q.having->ToString();
  if (!q.order_by.empty()) {
    *out += " ORDER BY";
    for (const OrderKey& k : q.order_by) {
      *out += k.descending ? " DESC(?" + k.var + ")" : " ?" + k.var;
    }
  }
  if (q.limit >= 0) *out += " LIMIT " + std::to_string(q.limit);
  if (q.offset > 0) *out += " OFFSET " + std::to_string(q.offset);
}

}  // namespace

std::string SelectQuery::ToString() const {
  std::string out;
  PrintSelect(*this, "", &out);
  return out;
}

bool Equals(const Expr* a, const Expr* b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->kind != b->kind || a->var != b->var || a->op != b->op ||
      !(a->literal == b->literal) || a->agg_func != b->agg_func ||
      a->agg_distinct != b->agg_distinct || a->count_star != b->count_star ||
      a->regex_pattern != b->regex_pattern ||
      a->regex_flags != b->regex_flags ||
      a->children.size() != b->children.size()) {
    return false;
  }
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!Equals(a->children[i].get(), b->children[i].get())) return false;
  }
  return true;
}

bool Equals(const GroupGraphPattern& a, const GroupGraphPattern& b) {
  if (a.triples.size() != b.triples.size() ||
      a.filters.size() != b.filters.size() ||
      a.optionals.size() != b.optionals.size() ||
      a.unions.size() != b.unions.size() ||
      a.subqueries.size() != b.subqueries.size()) {
    return false;
  }
  for (size_t i = 0; i < a.triples.size(); ++i) {
    if (!(a.triples[i].s == b.triples[i].s &&
          a.triples[i].p == b.triples[i].p &&
          a.triples[i].o == b.triples[i].o)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.filters.size(); ++i) {
    if (!Equals(a.filters[i].get(), b.filters[i].get())) return false;
  }
  for (size_t i = 0; i < a.optionals.size(); ++i) {
    if (!Equals(a.optionals[i], b.optionals[i])) return false;
  }
  for (size_t i = 0; i < a.unions.size(); ++i) {
    if (!Equals(a.unions[i], b.unions[i])) return false;
  }
  for (size_t i = 0; i < a.subqueries.size(); ++i) {
    if (!Equals(*a.subqueries[i], *b.subqueries[i])) return false;
  }
  return true;
}

bool Equals(const SelectQuery& a, const SelectQuery& b) {
  if (a.distinct != b.distinct || a.select_all != b.select_all ||
      a.items.size() != b.items.size() || a.group_by != b.group_by ||
      a.order_by.size() != b.order_by.size() || a.limit != b.limit ||
      a.offset != b.offset) {
    return false;
  }
  for (size_t i = 0; i < a.items.size(); ++i) {
    if (a.items[i].name != b.items[i].name ||
        !Equals(a.items[i].expr.get(), b.items[i].expr.get())) {
      return false;
    }
  }
  if (!Equals(a.having.get(), b.having.get())) return false;
  for (size_t i = 0; i < a.order_by.size(); ++i) {
    if (a.order_by[i].var != b.order_by[i].var ||
        a.order_by[i].descending != b.order_by[i].descending) {
      return false;
    }
  }
  return Equals(a.where, b.where);
}

}  // namespace rapida::sparql
