#include "sparql/ast.h"

#include <algorithm>

namespace rapida::sparql {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kSample:
      return "SAMPLE";
    case AggFunc::kGroupConcat:
      return "GROUP_CONCAT";
  }
  return "?";
}

std::string ToSparqlText(const rdf::Term& term) {
  if (term.is_iri()) return "<" + term.text + ">";
  if (term.is_blank()) return "_:" + term.text;
  if (term.datatype == rdf::kXsdInteger) return term.text;
  if (term.datatype == rdf::kXsdDouble) {
    // The lexer only reads a decimal if it sees '.' or an exponent.
    if (term.text.find_first_of(".eE") == std::string::npos) {
      return term.text + ".0";
    }
    return term.text;
  }
  std::string out = "\"";
  for (char c : term.text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string TriplePattern::ToString() const {
  auto one = [](const TermOrVar& tv) {
    return tv.is_var ? "?" + tv.var : ToSparqlText(tv.term);
  };
  return one(s) + " " + one(p) + " " + one(o);
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->var = var;
  out->literal = literal;
  out->op = op;
  out->agg_func = agg_func;
  out->agg_distinct = agg_distinct;
  out->count_star = count_star;
  out->regex_pattern = regex_pattern;
  out->regex_flags = regex_flags;
  for (const ExprPtr& c : children) out->children.push_back(c->Clone());
  return out;
}

void Expr::CollectVars(std::vector<std::string>* out) const {
  if (kind == Kind::kVar) {
    if (std::find(out->begin(), out->end(), var) == out->end()) {
      out->push_back(var);
    }
  }
  for (const ExprPtr& c : children) c->CollectVars(out);
}

bool Expr::HasAggregate() const {
  if (kind == Kind::kAggregate) return true;
  for (const ExprPtr& c : children) {
    if (c->HasAggregate()) return true;
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return "?" + var;
    case Kind::kLiteral:
      return ToSparqlText(literal);
    case Kind::kCompare:
    case Kind::kArith:
      return "(" + children[0]->ToString() + " " + op + " " +
             children[1]->ToString() + ")";
    case Kind::kAnd:
      return "(" + children[0]->ToString() + " && " +
             children[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children[0]->ToString() + " || " +
             children[1]->ToString() + ")";
    case Kind::kNot:
      return "!(" + children[0]->ToString() + ")";
    case Kind::kRegex:
      return "regex(" + children[0]->ToString() + ", " +
             ToSparqlText(rdf::Term::Literal(regex_pattern)) + ", " +
             ToSparqlText(rdf::Term::Literal(regex_flags)) + ")";
    case Kind::kBound:
      return "bound(" + children[0]->ToString() + ")";
    case Kind::kAggregate: {
      std::string arg = count_star ? "*" : children[0]->ToString();
      std::string d = agg_distinct ? "DISTINCT " : "";
      std::string sep;  // regex_pattern doubles as the GROUP_CONCAT separator
      if (agg_func == AggFunc::kGroupConcat && regex_pattern != " ") {
        sep = "; SEPARATOR = " +
              ToSparqlText(rdf::Term::Literal(regex_pattern));
      }
      return std::string(AggFuncName(agg_func)) + "(" + d + arg + sep + ")";
    }
  }
  return "?expr?";
}

ExprPtr Expr::MakeVar(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::MakeLiteral(rdf::Term t) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(t);
  return e;
}

ExprPtr Expr::MakeCompare(std::string op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCompare;
  e->op = std::move(op);
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ExprPtr Expr::MakeBinary(Kind kind, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ExprPtr Expr::MakeArith(std::string op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kArith;
  e->op = std::move(op);
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ExprPtr Expr::MakeAggregate(AggFunc f, ExprPtr arg, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggregate;
  e->agg_func = f;
  e->agg_distinct = distinct;
  if (arg == nullptr) {
    e->count_star = true;
  } else {
    e->children.push_back(std::move(arg));
  }
  return e;
}

void GroupGraphPattern::CollectBoundVars(std::vector<std::string>* out) const {
  auto add = [out](const std::string& v) {
    if (std::find(out->begin(), out->end(), v) == out->end()) {
      out->push_back(v);
    }
  };
  for (const TriplePattern& tp : triples) {
    if (tp.s.is_var) add(tp.s.var);
    if (tp.p.is_var) add(tp.p.var);
    if (tp.o.is_var) add(tp.o.var);
  }
  for (const GroupGraphPattern& opt : optionals) opt.CollectBoundVars(out);
  for (const GroupGraphPattern& arm : unions) arm.CollectBoundVars(out);
  for (const auto& sq : subqueries) {
    for (const std::string& name : sq->ColumnNames()) add(name);
  }
}

bool SelectQuery::HasAggregates() const {
  for (const SelectItem& item : items) {
    if (item.expr && item.expr->HasAggregate()) return true;
  }
  return false;
}

std::vector<std::string> SelectQuery::ColumnNames() const {
  std::vector<std::string> out;
  if (select_all) {
    where.CollectBoundVars(&out);
    return out;
  }
  out.reserve(items.size());
  for (const SelectItem& item : items) out.push_back(item.name);
  return out;
}

}  // namespace rapida::sparql
