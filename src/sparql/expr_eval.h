#ifndef RAPIDA_SPARQL_EXPR_EVAL_H_
#define RAPIDA_SPARQL_EXPR_EVAL_H_

#include <functional>
#include <optional>
#include <string>

#include "rdf/dictionary.h"
#include "sparql/ast.h"

namespace rapida::sparql {

/// Result of evaluating a (non-aggregate) expression over one solution
/// mapping. kError models SPARQL's error value: filters treat it as false.
struct EvalValue {
  enum class Kind { kError, kBool, kNum, kTerm };

  Kind kind = Kind::kError;
  bool b = false;
  double num = 0;
  rdf::TermId term = rdf::kInvalidTermId;  // valid when kTerm & interned
  const rdf::Term* term_ptr = nullptr;     // valid when kTerm & from query text

  static EvalValue Error() { return EvalValue{}; }
  static EvalValue Bool(bool v) {
    EvalValue e;
    e.kind = Kind::kBool;
    e.b = v;
    return e;
  }
  static EvalValue Number(double v) {
    EvalValue e;
    e.kind = Kind::kNum;
    e.num = v;
    return e;
  }
  static EvalValue TermRef(rdf::TermId id) {
    EvalValue e;
    e.kind = Kind::kTerm;
    e.term = id;
    return e;
  }
  static EvalValue QueryTerm(const rdf::Term* t) {
    EvalValue e;
    e.kind = Kind::kTerm;
    e.term_ptr = t;
    return e;
  }

  bool is_error() const { return kind == Kind::kError; }
};

/// Variable resolver: returns the binding of a variable or kInvalidTermId.
using VarResolver = std::function<rdf::TermId(const std::string&)>;

/// Evaluates `expr` over one solution mapping. Aggregate nodes are an error
/// here (the grouping layers evaluate those); kBound of an unbound var is
/// false, everything else follows SPARQL 1.1 operator semantics on the
/// supported subset.
EvalValue EvaluateExpr(const Expr& expr, const VarResolver& resolve,
                       const rdf::Dictionary& dict);

/// SPARQL effective boolean value; errors are false.
bool EffectiveBool(const EvalValue& v);

/// Numeric view of a value: numbers as-is, numeric literals parsed,
/// booleans/IRIs/plain strings → nullopt.
std::optional<double> ToNumber(const EvalValue& v,
                               const rdf::Dictionary& dict);

/// The term a kTerm value denotes (dict-interned or query-literal).
const rdf::Term* GetTerm(const EvalValue& v, const rdf::Dictionary& dict);

}  // namespace rapida::sparql

#endif  // RAPIDA_SPARQL_EXPR_EVAL_H_
