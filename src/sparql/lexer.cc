#include "sparql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "util/string_util.h"

namespace rapida::sparql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "WHERE",  "FILTER", "OPTIONAL", "GROUP",  "BY",
      "AS",     "PREFIX", "DISTINCT", "COUNT",  "SUM",    "AVG",
      "MIN",    "MAX",    "REGEX",  "BOUND",    "UNION",  "ORDER",
      "LIMIT",  "OFFSET", "ASC",    "DESC",     "HAVING", "BASE",
      "SAMPLE", "GROUP_CONCAT", "SEPARATOR",
  };
  return *kKeywords;
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  auto error = [&line](const std::string& what) {
    return Status::ParseError("SPARQL lex error at line " +
                              std::to_string(line) + ": " + what);
  };
  auto push = [&out, &line](TokenType type, std::string payload = {}) {
    out.push_back(Token{type, std::move(payload), line});
  };

  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '<') {
      // Either an IRIREF or a comparison. IRIREF has no spaces before '>'.
      size_t end = i + 1;
      bool iri = false;
      while (end < text.size() && text[end] != '\n') {
        if (text[end] == '>') {
          iri = true;
          break;
        }
        if (text[end] == ' ' || text[end] == '<') break;
        ++end;
      }
      if (iri && end > i + 1) {
        push(TokenType::kIriRef, std::string(text.substr(i + 1, end - i - 1)));
        i = end + 1;
        continue;
      }
      if (i + 1 < text.size() && text[i + 1] == '=') {
        push(TokenType::kLe);
        i += 2;
      } else {
        push(TokenType::kLt);
        ++i;
      }
      continue;
    }
    if (c == '?' || c == '$') {
      size_t start = ++i;
      while (i < text.size() && IsNameChar(text[i])) ++i;
      if (i == start) return error("empty variable name");
      push(TokenType::kVar, std::string(text.substr(start, i - start)));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string value;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\') {
          if (i + 1 >= text.size()) return error("dangling escape");
          char e = text[i + 1];
          switch (e) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            case '"': value += '"'; break;
            case '\\': value += '\\'; break;
            default: return error("unsupported escape in string");
          }
          i += 2;
        } else {
          if (text[i] == '\n') ++line;
          value += text[i++];
        }
      }
      if (i >= text.size()) return error("unterminated string literal");
      ++i;  // closing quote
      push(TokenType::kString, std::move(value));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      bool is_decimal = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              text[i] == '.' || text[i] == 'e' || text[i] == 'E' ||
              ((text[i] == '+' || text[i] == '-') && i > start &&
               (text[i - 1] == 'e' || text[i - 1] == 'E')))) {
        if (text[i] == '.' || text[i] == 'e' || text[i] == 'E') {
          // "12." followed by non-digit is INTEGER then DOT (triple end).
          if (text[i] == '.' &&
              (i + 1 >= text.size() ||
               !std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
            break;
          }
          is_decimal = true;
        }
        ++i;
      }
      push(is_decimal ? TokenType::kDecimal : TokenType::kInteger,
           std::string(text.substr(start, i - start)));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() && (IsNameChar(text[i]) || text[i] == ':' ||
                                 text[i] == '.')) {
        // A trailing '.' is a triple terminator, not part of the name.
        if (text[i] == '.' &&
            (i + 1 >= text.size() || !IsNameChar(text[i + 1]))) {
          break;
        }
        ++i;
      }
      std::string word(text.substr(start, i - start));
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (word == "a") {
        push(TokenType::kA);
      } else if (Keywords().count(upper) > 0 &&
                 word.find(':') == std::string::npos) {
        push(TokenType::kKeyword, upper);
      } else {
        push(TokenType::kPName, word);
      }
      continue;
    }
    if (c == ':') {
      // Prefixed name with empty prefix, e.g. ":Product".
      size_t start = i;
      ++i;
      while (i < text.size() && IsNameChar(text[i])) ++i;
      push(TokenType::kPName, std::string(text.substr(start, i - start)));
      continue;
    }
    switch (c) {
      case '{': push(TokenType::kLBrace); ++i; break;
      case '}': push(TokenType::kRBrace); ++i; break;
      case '(': push(TokenType::kLParen); ++i; break;
      case ')': push(TokenType::kRParen); ++i; break;
      case '.': push(TokenType::kDot); ++i; break;
      case ';': push(TokenType::kSemicolon); ++i; break;
      case ',': push(TokenType::kComma); ++i; break;
      case '*': push(TokenType::kStar); ++i; break;
      case '+': push(TokenType::kPlus); ++i; break;
      case '-': push(TokenType::kMinus); ++i; break;
      case '/': push(TokenType::kSlash); ++i; break;
      case '=': push(TokenType::kEq); ++i; break;
      case '>':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenType::kGe);
          i += 2;
        } else {
          push(TokenType::kGt);
          ++i;
        }
        break;
      case '!':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenType::kNeq);
          i += 2;
        } else {
          push(TokenType::kBang);
          ++i;
        }
        break;
      case '&':
        if (i + 1 < text.size() && text[i + 1] == '&') {
          push(TokenType::kAnd);
          i += 2;
        } else {
          return error("single '&'");
        }
        break;
      case '|':
        if (i + 1 < text.size() && text[i + 1] == '|') {
          push(TokenType::kOr);
          i += 2;
        } else {
          return error("single '|'");
        }
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  out.push_back(Token{TokenType::kEof, "", line});
  return out;
}

std::string TokenToString(const Token& t) {
  switch (t.type) {
    case TokenType::kEof: return "<eof>";
    case TokenType::kIriRef: return "<" + t.text + ">";
    case TokenType::kVar: return "?" + t.text;
    case TokenType::kString: return "\"" + t.text + "\"";
    default:
      return t.text.empty() ? std::string("token") : t.text;
  }
}

}  // namespace rapida::sparql
