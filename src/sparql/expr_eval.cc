#include "sparql/expr_eval.h"

#include "util/string_util.h"

namespace rapida::sparql {

namespace {

/// Three-way comparison; nullopt when incomparable (type error).
std::optional<int> Compare(const EvalValue& a, const EvalValue& b,
                           const rdf::Dictionary& dict) {
  // Numeric comparison dominates when both sides coerce.
  auto na = ToNumber(a, dict);
  auto nb = ToNumber(b, dict);
  if (na.has_value() && nb.has_value()) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  if (a.kind == EvalValue::Kind::kBool && b.kind == EvalValue::Kind::kBool) {
    return (a.b ? 1 : 0) - (b.b ? 1 : 0);
  }
  const rdf::Term* ta = GetTerm(a, dict);
  const rdf::Term* tb = GetTerm(b, dict);
  if (ta == nullptr || tb == nullptr) return std::nullopt;
  // Different term kinds are incomparable (SPARQL type error); callers
  // resolve '=' to false and '!=' to true.
  if (ta->kind != tb->kind) return std::nullopt;
  int c = ta->text.compare(tb->text);
  if (c != 0) return c < 0 ? -1 : 1;
  // Plain literals and typed string-ish literals with the same text are
  // treated as equal: the paper's queries compare plain strings only.
  return 0;
}

}  // namespace

const rdf::Term* GetTerm(const EvalValue& v, const rdf::Dictionary& dict) {
  if (v.kind != EvalValue::Kind::kTerm) return nullptr;
  if (v.term_ptr != nullptr) return v.term_ptr;
  if (v.term == rdf::kInvalidTermId) return nullptr;
  return &dict.Get(v.term);
}

std::optional<double> ToNumber(const EvalValue& v,
                               const rdf::Dictionary& dict) {
  switch (v.kind) {
    case EvalValue::Kind::kNum:
      return v.num;
    case EvalValue::Kind::kTerm: {
      const rdf::Term* t = GetTerm(v, dict);
      if (t == nullptr || !t->is_literal()) return std::nullopt;
      double d = 0;
      if (!ParseDouble(t->text, &d)) return std::nullopt;
      return d;
    }
    default:
      return std::nullopt;
  }
}

bool EffectiveBool(const EvalValue& v) {
  switch (v.kind) {
    case EvalValue::Kind::kError:
      return false;
    case EvalValue::Kind::kBool:
      return v.b;
    case EvalValue::Kind::kNum:
      return v.num != 0;
    case EvalValue::Kind::kTerm: {
      return true;  // bound RDF terms are truthy in our subset
    }
  }
  return false;
}

EvalValue EvaluateExpr(const Expr& expr, const VarResolver& resolve,
                       const rdf::Dictionary& dict) {
  switch (expr.kind) {
    case Expr::Kind::kVar: {
      rdf::TermId id = resolve(expr.var);
      if (id == rdf::kInvalidTermId) return EvalValue::Error();
      return EvalValue::TermRef(id);
    }
    case Expr::Kind::kLiteral:
      return EvalValue::QueryTerm(&expr.literal);
    case Expr::Kind::kCompare: {
      EvalValue l = EvaluateExpr(*expr.children[0], resolve, dict);
      EvalValue r = EvaluateExpr(*expr.children[1], resolve, dict);
      if (l.is_error() || r.is_error()) return EvalValue::Error();
      std::optional<int> c = Compare(l, r, dict);
      if (!c.has_value()) {
        // Incomparable values: equality is decidable (false), ordering is
        // a type error.
        if (expr.op == "=") return EvalValue::Bool(false);
        if (expr.op == "!=") return EvalValue::Bool(true);
        return EvalValue::Error();
      }
      if (expr.op == "=") return EvalValue::Bool(*c == 0);
      if (expr.op == "!=") return EvalValue::Bool(*c != 0);
      if (expr.op == "<") return EvalValue::Bool(*c < 0);
      if (expr.op == "<=") return EvalValue::Bool(*c <= 0);
      if (expr.op == ">") return EvalValue::Bool(*c > 0);
      if (expr.op == ">=") return EvalValue::Bool(*c >= 0);
      return EvalValue::Error();
    }
    case Expr::Kind::kAnd: {
      // SPARQL 3-valued logic: error && false = false.
      EvalValue l = EvaluateExpr(*expr.children[0], resolve, dict);
      EvalValue r = EvaluateExpr(*expr.children[1], resolve, dict);
      bool lb = EffectiveBool(l);
      bool rb = EffectiveBool(r);
      if (l.is_error() && r.is_error()) return EvalValue::Error();
      if (l.is_error()) return rb ? EvalValue::Error() : EvalValue::Bool(false);
      if (r.is_error()) return lb ? EvalValue::Error() : EvalValue::Bool(false);
      return EvalValue::Bool(lb && rb);
    }
    case Expr::Kind::kOr: {
      EvalValue l = EvaluateExpr(*expr.children[0], resolve, dict);
      EvalValue r = EvaluateExpr(*expr.children[1], resolve, dict);
      bool lb = EffectiveBool(l);
      bool rb = EffectiveBool(r);
      if (l.is_error() && r.is_error()) return EvalValue::Error();
      if (l.is_error()) return rb ? EvalValue::Bool(true) : EvalValue::Error();
      if (r.is_error()) return lb ? EvalValue::Bool(true) : EvalValue::Error();
      return EvalValue::Bool(lb || rb);
    }
    case Expr::Kind::kNot: {
      EvalValue v = EvaluateExpr(*expr.children[0], resolve, dict);
      if (v.is_error()) return EvalValue::Error();
      return EvalValue::Bool(!EffectiveBool(v));
    }
    case Expr::Kind::kArith: {
      EvalValue l = EvaluateExpr(*expr.children[0], resolve, dict);
      EvalValue r = EvaluateExpr(*expr.children[1], resolve, dict);
      auto nl = ToNumber(l, dict);
      auto nr = ToNumber(r, dict);
      if (!nl.has_value() || !nr.has_value()) return EvalValue::Error();
      if (expr.op == "+") return EvalValue::Number(*nl + *nr);
      if (expr.op == "-") return EvalValue::Number(*nl - *nr);
      if (expr.op == "*") return EvalValue::Number(*nl * *nr);
      if (expr.op == "/") {
        if (*nr == 0) return EvalValue::Error();
        return EvalValue::Number(*nl / *nr);
      }
      return EvalValue::Error();
    }
    case Expr::Kind::kRegex: {
      EvalValue v = EvaluateExpr(*expr.children[0], resolve, dict);
      const rdf::Term* t = GetTerm(v, dict);
      if (t == nullptr) return EvalValue::Error();
      // The catalog (and the paper's queries) only uses substring regexes,
      // optionally case-insensitive.
      bool ci = expr.regex_flags.find('i') != std::string::npos;
      bool match = ci ? ContainsIgnoreCase(t->text, expr.regex_pattern)
                      : t->text.find(expr.regex_pattern) != std::string::npos;
      return EvalValue::Bool(match);
    }
    case Expr::Kind::kBound: {
      const Expr& v = *expr.children[0];
      if (v.kind != Expr::Kind::kVar) return EvalValue::Error();
      return EvalValue::Bool(resolve(v.var) != rdf::kInvalidTermId);
    }
    case Expr::Kind::kAggregate:
      // Aggregates are evaluated by the grouping layer, never here.
      return EvalValue::Error();
  }
  return EvalValue::Error();
}

}  // namespace rapida::sparql
