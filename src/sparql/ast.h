#ifndef RAPIDA_SPARQL_AST_H_
#define RAPIDA_SPARQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace rapida::sparql {

/// Renders a constant term the way the SPARQL lexer can read it back:
/// IRIs as <...>, xsd numeric literals bare, other literals quoted (with
/// \" \\ \n \t escapes). Datatypes beyond the numeric ones have no surface
/// syntax in this subset and print as plain quoted strings.
std::string ToSparqlText(const rdf::Term& term);

/// A node in a triple pattern: either a variable ("?x") or a constant term.
struct TermOrVar {
  bool is_var = false;
  std::string var;   // without '?', valid when is_var
  rdf::Term term;    // valid when !is_var

  static TermOrVar Var(std::string name) {
    TermOrVar tv;
    tv.is_var = true;
    tv.var = std::move(name);
    return tv;
  }
  static TermOrVar Const(rdf::Term t) {
    TermOrVar tv;
    tv.term = std::move(t);
    return tv;
  }

  friend bool operator==(const TermOrVar& a, const TermOrVar& b) {
    if (a.is_var != b.is_var) return false;
    return a.is_var ? a.var == b.var : a.term == b.term;
  }
};

/// One triple pattern (tp) — an RDF triple with >= 1 variable positions.
struct TriplePattern {
  TermOrVar s;
  TermOrVar p;
  TermOrVar o;

  std::string ToString() const;
};

/// Aggregate functions supported by the analytical subset (SPARQL 1.1 §18.5).
enum class AggFunc {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  /// SPARQL 1.1 SAMPLE: any value from the group. We pick the smallest
  /// term id so every engine returns the same witness deterministically.
  kSample,
  /// SPARQL 1.1 GROUP_CONCAT. Order is implementation-defined in the
  /// standard; we canonicalize by sorting values lexically, which keeps
  /// the operator algebraic (mergeable partials) and engine-independent.
  kGroupConcat,
};

const char* AggFuncName(AggFunc f);

/// Expression tree for FILTERs, SELECT expressions, and aggregates.
struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kVar,        // ?x
    kLiteral,    // constant term
    kCompare,    // op in {=, !=, <, <=, >, >=}; children: [lhs, rhs]
    kAnd,        // children: [lhs, rhs]
    kOr,         // children: [lhs, rhs]
    kNot,        // children: [operand]
    kArith,      // op in {+, -, *, /}; children: [lhs, rhs]
    kRegex,      // children: [text]; pattern/flags in regex_* fields
    kBound,      // children: [var expr]
    kAggregate,  // agg over children[0] (or COUNT(*) with no child)
  };

  Kind kind;
  std::string var;          // kVar
  rdf::Term literal;        // kLiteral
  std::string op;           // kCompare / kArith
  AggFunc agg_func = AggFunc::kCount;
  bool agg_distinct = false;
  bool count_star = false;  // COUNT(*)
  std::string regex_pattern;
  std::string regex_flags;
  std::vector<ExprPtr> children;

  /// Deep copy.
  ExprPtr Clone() const;
  /// Collects variable names referenced anywhere in the tree.
  void CollectVars(std::vector<std::string>* out) const;
  /// True if any node in the tree is an aggregate.
  bool HasAggregate() const;
  std::string ToString() const;

  static ExprPtr MakeVar(std::string name);
  static ExprPtr MakeLiteral(rdf::Term t);
  static ExprPtr MakeCompare(std::string op, ExprPtr l, ExprPtr r);
  static ExprPtr MakeBinary(Kind kind, ExprPtr l, ExprPtr r);
  static ExprPtr MakeArith(std::string op, ExprPtr l, ExprPtr r);
  static ExprPtr MakeAggregate(AggFunc f, ExprPtr arg, bool distinct);
};

/// One item in a SELECT clause: a plain variable or "(expr AS ?name)".
struct SelectItem {
  std::string name;  // output variable name (without '?')
  ExprPtr expr;      // null => plain variable projection of `name`

  SelectItem() = default;
  SelectItem(std::string n, ExprPtr e) : name(std::move(n)),
                                         expr(std::move(e)) {}
  SelectItem(const SelectItem& other)
      : name(other.name), expr(other.expr ? other.expr->Clone() : nullptr) {}
  SelectItem& operator=(const SelectItem& other) {
    name = other.name;
    expr = other.expr ? other.expr->Clone() : nullptr;
    return *this;
  }
  SelectItem(SelectItem&&) = default;
  SelectItem& operator=(SelectItem&&) = default;
};

struct SelectQuery;

/// A group graph pattern: the contents of one `{ ... }` block.
struct GroupGraphPattern {
  std::vector<TriplePattern> triples;
  std::vector<ExprPtr> filters;
  std::vector<GroupGraphPattern> optionals;
  /// Arms of the group's UNION, in textual order: `{A} UNION {B} ...`
  /// parses to two-or-more entries here. Empty when the group has no
  /// UNION; a group holds at most one UNION chain (the parser rejects a
  /// second one — arms of a single chain is the only supported shape).
  std::vector<GroupGraphPattern> unions;
  std::vector<std::unique_ptr<SelectQuery>> subqueries;

  GroupGraphPattern() = default;
  GroupGraphPattern(GroupGraphPattern&&) = default;
  GroupGraphPattern& operator=(GroupGraphPattern&&) = default;

  /// All variables bound by triple patterns (recursively, incl. OPTIONAL
  /// and subquery projections).
  void CollectBoundVars(std::vector<std::string>* out) const;
};

/// One ORDER BY key: a variable with a direction.
struct OrderKey {
  std::string var;
  bool descending = false;
};

/// A parsed SELECT query (possibly nested as a subquery).
struct SelectQuery {
  bool distinct = false;
  bool select_all = false;  // SELECT *
  std::vector<SelectItem> items;
  GroupGraphPattern where;
  std::vector<std::string> group_by;  // empty with aggregates => GROUP BY ALL
  /// HAVING condition, evaluated over the query's output columns
  /// (grouping variables and aggregate aliases). Null if absent.
  ExprPtr having;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;   // -1 = no limit
  int64_t offset = 0;

  SelectQuery() = default;
  SelectQuery(SelectQuery&&) = default;
  SelectQuery& operator=(SelectQuery&&) = default;

  /// True if any select item contains an aggregate.
  bool HasAggregates() const;
  /// Output column names in order.
  std::vector<std::string> ColumnNames() const;

  /// Renders the query as parseable SPARQL text: for every query in the
  /// supported subset, ParseQuery(q.ToString()) yields a query that is
  /// Equals() to q (the round-trip property robustness_test enforces).
  /// IRIs print in full <...> form; typed numeric literals print bare.
  std::string ToString() const;
};

/// Structural AST equality (order-sensitive, null-aware for optional
/// expressions). Used by the printer round-trip property and the fuzz
/// shrinker's clone-via-reparse.
bool Equals(const Expr* a, const Expr* b);
bool Equals(const GroupGraphPattern& a, const GroupGraphPattern& b);
bool Equals(const SelectQuery& a, const SelectQuery& b);

}  // namespace rapida::sparql

#endif  // RAPIDA_SPARQL_AST_H_
