#include "sparql/parser.h"

#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "sparql/lexer.h"
#include "util/string_util.h"

namespace rapida::sparql {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, const ParseOptions& options)
      : tokens_(std::move(tokens)), options_(options) {}

  StatusOr<std::unique_ptr<SelectQuery>> Parse() {
    RAPIDA_RETURN_IF_ERROR(ParsePrologue());
    auto query = std::make_unique<SelectQuery>();
    RAPIDA_RETURN_IF_ERROR(ParseSelectQuery(query.get()));
    if (!Check(TokenType::kEof)) {
      return Error("trailing tokens after query");
    }
    return query;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool CheckKeyword(const char* kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenType t) {
    if (!Check(t)) return false;
    Advance();
    return true;
  }
  bool MatchKeyword(const char* kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status Error(const std::string& what) const {
    return Status::ParseError("SPARQL parse error at line " +
                              std::to_string(Peek().line) + " near '" +
                              TokenToString(Peek()) + "': " + what);
  }
  Status Expect(TokenType t, const char* what) {
    if (Match(t)) return Status::OK();
    return Error(std::string("expected ") + what);
  }

  // --- prologue ---

  Status ParsePrologue() {
    while (MatchKeyword("PREFIX")) {
      if (!Check(TokenType::kPName)) return Error("expected prefix name");
      std::string prefix = Advance().text;
      if (!prefix.empty() && prefix.back() == ':') prefix.pop_back();
      if (!Check(TokenType::kIriRef)) return Error("expected namespace IRI");
      prefixes_[prefix] = Advance().text;
    }
    return Status::OK();
  }

  StatusOr<rdf::Term> ResolvePName(const std::string& pname) {
    size_t colon = pname.find(':');
    if (colon == std::string::npos) {
      if (!options_.default_namespace.empty()) {
        return rdf::Term::Iri(options_.default_namespace + pname);
      }
      auto it = prefixes_.find("");
      if (it != prefixes_.end()) return rdf::Term::Iri(it->second + pname);
      // Bare name with no declared namespace: treat as a relative IRI.
      return rdf::Term::Iri(pname);
    }
    std::string prefix = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Status::ParseError("undeclared prefix '" + prefix + ":'");
    }
    return rdf::Term::Iri(it->second + local);
  }

  // --- SELECT ---

  Status ParseSelectQuery(SelectQuery* out) {
    if (!MatchKeyword("SELECT")) return Error("expected SELECT");
    out->distinct = MatchKeyword("DISTINCT");
    RAPIDA_RETURN_IF_ERROR(ParseSelectItems(out));
    MatchKeyword("WHERE");  // WHERE keyword is optional in SPARQL
    RAPIDA_RETURN_IF_ERROR(ParseGroupGraphPattern(&out->where));
    if (MatchKeyword("GROUP")) {
      if (!MatchKeyword("BY")) return Error("expected BY after GROUP");
      while (Check(TokenType::kVar)) {
        out->group_by.push_back(Advance().text);
      }
      if (out->group_by.empty()) {
        return Error("expected grouping variables after GROUP BY");
      }
    }
    if (MatchKeyword("HAVING")) {
      bool parens = Match(TokenType::kLParen);
      RAPIDA_RETURN_IF_ERROR(ParseExpr(&out->having));
      if (parens) RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    if (MatchKeyword("ORDER")) {
      if (!MatchKeyword("BY")) return Error("expected BY after ORDER");
      while (true) {
        OrderKey key;
        if (MatchKeyword("ASC")) {
          RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
          if (!Check(TokenType::kVar)) return Error("expected variable");
          key.var = Advance().text;
          RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        } else if (MatchKeyword("DESC")) {
          RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
          if (!Check(TokenType::kVar)) return Error("expected variable");
          key.var = Advance().text;
          key.descending = true;
          RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        } else if (Check(TokenType::kVar)) {
          key.var = Advance().text;
        } else {
          break;
        }
        out->order_by.push_back(std::move(key));
      }
      if (out->order_by.empty()) {
        return Error("expected sort keys after ORDER BY");
      }
    }
    // LIMIT and OFFSET in either order.
    for (int i = 0; i < 2; ++i) {
      if (MatchKeyword("LIMIT")) {
        if (!Check(TokenType::kInteger)) return Error("expected LIMIT count");
        out->limit = std::stoll(Advance().text);
      } else if (MatchKeyword("OFFSET")) {
        if (!Check(TokenType::kInteger)) {
          return Error("expected OFFSET count");
        }
        out->offset = std::stoll(Advance().text);
      }
    }
    return Status::OK();
  }

  Status ParseSelectItems(SelectQuery* out) {
    if (Match(TokenType::kStar)) {
      out->select_all = true;
      return Status::OK();
    }
    while (true) {
      if (Check(TokenType::kVar)) {
        std::string name = Advance().text;
        out->items.emplace_back(name, nullptr);
      } else if (Check(TokenType::kLParen)) {
        Advance();
        ExprPtr expr;
        RAPIDA_RETURN_IF_ERROR(ParseExpr(&expr));
        MatchKeyword("AS");  // the paper's appendix sometimes omits AS
        if (!Check(TokenType::kVar)) {
          return Error("expected output variable in (expr AS ?v)");
        }
        std::string name = Advance().text;
        RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        out->items.emplace_back(std::move(name), std::move(expr));
      } else {
        break;
      }
    }
    if (out->items.empty()) return Error("empty SELECT clause");
    return Status::OK();
  }

  // --- group graph pattern ---

  Status ParseGroupGraphPattern(GroupGraphPattern* out) {
    RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kLBrace, "'{'"));
    while (!Check(TokenType::kRBrace)) {
      if (Check(TokenType::kEof)) return Error("unterminated '{'");
      if (MatchKeyword("FILTER")) {
        ExprPtr expr;
        bool parens = Match(TokenType::kLParen);
        if (parens) {
          RAPIDA_RETURN_IF_ERROR(ParseExpr(&expr));
          RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        } else {
          // FILTER regex(...) without outer parens.
          RAPIDA_RETURN_IF_ERROR(ParseExpr(&expr));
        }
        out->filters.push_back(std::move(expr));
        Match(TokenType::kDot);
        continue;
      }
      if (MatchKeyword("OPTIONAL")) {
        GroupGraphPattern opt;
        RAPIDA_RETURN_IF_ERROR(ParseGroupGraphPattern(&opt));
        out->optionals.push_back(std::move(opt));
        Match(TokenType::kDot);
        continue;
      }
      if (Check(TokenType::kLBrace)) {
        // Either a nested sub-SELECT or a plain grouping block.
        if (Peek(1).type == TokenType::kKeyword && Peek(1).text == "SELECT") {
          Advance();  // '{'
          auto sub = std::make_unique<SelectQuery>();
          RAPIDA_RETURN_IF_ERROR(ParseSelectQuery(sub.get()));
          RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kRBrace, "'}'"));
          out->subqueries.push_back(std::move(sub));
        } else {
          GroupGraphPattern inner;
          RAPIDA_RETURN_IF_ERROR(ParseGroupGraphPattern(&inner));
          if (CheckKeyword("UNION")) {
            // `{A} UNION {B} [UNION {C} ...]`: collect the arms. A group
            // holds at most one UNION chain; a second chain has no single
            // natural join order in this subset, so it is a parse error.
            if (!out->unions.empty()) {
              return Error("only one UNION group per graph pattern "
                           "is supported");
            }
            out->unions.push_back(std::move(inner));
            while (MatchKeyword("UNION")) {
              GroupGraphPattern arm;
              RAPIDA_RETURN_IF_ERROR(ParseGroupGraphPattern(&arm));
              out->unions.push_back(std::move(arm));
            }
          } else {
            RAPIDA_RETURN_IF_ERROR(MergeInto(out, std::move(inner)));
          }
        }
        Match(TokenType::kDot);
        continue;
      }
      RAPIDA_RETURN_IF_ERROR(ParseTriplesBlock(out));
    }
    Advance();  // '}'
    return Status::OK();
  }

  Status MergeInto(GroupGraphPattern* dst, GroupGraphPattern src) {
    for (auto& tp : src.triples) dst->triples.push_back(std::move(tp));
    for (auto& f : src.filters) dst->filters.push_back(std::move(f));
    for (auto& o : src.optionals) dst->optionals.push_back(std::move(o));
    if (!src.unions.empty()) {
      if (!dst->unions.empty()) {
        return Error("only one UNION group per graph pattern is supported");
      }
      dst->unions = std::move(src.unions);
    }
    for (auto& sq : src.subqueries) dst->subqueries.push_back(std::move(sq));
    return Status::OK();
  }

  Status ParseTriplesBlock(GroupGraphPattern* out) {
    TermOrVar subject;
    RAPIDA_RETURN_IF_ERROR(ParseVarOrTerm(&subject, /*allow_literal=*/false));
    while (true) {
      TermOrVar verb;
      RAPIDA_RETURN_IF_ERROR(ParseVerb(&verb));
      // Object list: o1, o2, ...
      while (true) {
        TermOrVar object;
        RAPIDA_RETURN_IF_ERROR(ParseVarOrTerm(&object,
                                              /*allow_literal=*/true));
        out->triples.push_back(TriplePattern{subject, verb, object});
        if (!Match(TokenType::kComma)) break;
      }
      if (Match(TokenType::kSemicolon)) {
        // Allow a dangling ';' before '.' or '}'.
        if (Check(TokenType::kDot) || Check(TokenType::kRBrace)) break;
        continue;
      }
      break;
    }
    Match(TokenType::kDot);
    return Status::OK();
  }

  Status ParseVerb(TermOrVar* out) {
    if (Match(TokenType::kA)) {
      *out = TermOrVar::Const(rdf::Term::Iri(rdf::kRdfType));
      return Status::OK();
    }
    return ParseVarOrTerm(out, /*allow_literal=*/false);
  }

  Status ParseVarOrTerm(TermOrVar* out, bool allow_literal) {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kVar:
        *out = TermOrVar::Var(Advance().text);
        return Status::OK();
      case TokenType::kIriRef:
        *out = TermOrVar::Const(rdf::Term::Iri(Advance().text));
        return Status::OK();
      case TokenType::kPName: {
        RAPIDA_ASSIGN_OR_RETURN(rdf::Term term, ResolvePName(Advance().text));
        *out = TermOrVar::Const(std::move(term));
        return Status::OK();
      }
      case TokenType::kString:
        if (!allow_literal) return Error("literal not allowed here");
        *out = TermOrVar::Const(rdf::Term::Literal(Advance().text));
        return Status::OK();
      case TokenType::kInteger:
        if (!allow_literal) return Error("literal not allowed here");
        *out = TermOrVar::Const(
            rdf::Term::Literal(Advance().text, rdf::kXsdInteger));
        return Status::OK();
      case TokenType::kDecimal:
        if (!allow_literal) return Error("literal not allowed here");
        *out = TermOrVar::Const(
            rdf::Term::Literal(Advance().text, rdf::kXsdDouble));
        return Status::OK();
      default:
        return Error("expected variable, IRI, or literal");
    }
  }

  // --- expressions ---

  Status ParseExpr(ExprPtr* out) { return ParseOrExpr(out); }

  Status ParseOrExpr(ExprPtr* out) {
    ExprPtr lhs;
    RAPIDA_RETURN_IF_ERROR(ParseAndExpr(&lhs));
    while (Match(TokenType::kOr)) {
      ExprPtr rhs;
      RAPIDA_RETURN_IF_ERROR(ParseAndExpr(&rhs));
      lhs = Expr::MakeBinary(Expr::Kind::kOr, std::move(lhs), std::move(rhs));
    }
    *out = std::move(lhs);
    return Status::OK();
  }

  Status ParseAndExpr(ExprPtr* out) {
    ExprPtr lhs;
    RAPIDA_RETURN_IF_ERROR(ParseRelExpr(&lhs));
    while (Match(TokenType::kAnd)) {
      ExprPtr rhs;
      RAPIDA_RETURN_IF_ERROR(ParseRelExpr(&rhs));
      lhs = Expr::MakeBinary(Expr::Kind::kAnd, std::move(lhs),
                             std::move(rhs));
    }
    *out = std::move(lhs);
    return Status::OK();
  }

  Status ParseRelExpr(ExprPtr* out) {
    ExprPtr lhs;
    RAPIDA_RETURN_IF_ERROR(ParseAddExpr(&lhs));
    std::string op;
    switch (Peek().type) {
      case TokenType::kEq: op = "="; break;
      case TokenType::kNeq: op = "!="; break;
      case TokenType::kLt: op = "<"; break;
      case TokenType::kLe: op = "<="; break;
      case TokenType::kGt: op = ">"; break;
      case TokenType::kGe: op = ">="; break;
      default:
        *out = std::move(lhs);
        return Status::OK();
    }
    Advance();
    ExprPtr rhs;
    RAPIDA_RETURN_IF_ERROR(ParseAddExpr(&rhs));
    *out = Expr::MakeCompare(op, std::move(lhs), std::move(rhs));
    return Status::OK();
  }

  Status ParseAddExpr(ExprPtr* out) {
    ExprPtr lhs;
    RAPIDA_RETURN_IF_ERROR(ParseMulExpr(&lhs));
    while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
      std::string op = Check(TokenType::kPlus) ? "+" : "-";
      Advance();
      ExprPtr rhs;
      RAPIDA_RETURN_IF_ERROR(ParseMulExpr(&rhs));
      lhs = Expr::MakeArith(op, std::move(lhs), std::move(rhs));
    }
    *out = std::move(lhs);
    return Status::OK();
  }

  Status ParseMulExpr(ExprPtr* out) {
    ExprPtr lhs;
    RAPIDA_RETURN_IF_ERROR(ParseUnary(&lhs));
    while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
      std::string op = Check(TokenType::kStar) ? "*" : "/";
      Advance();
      ExprPtr rhs;
      RAPIDA_RETURN_IF_ERROR(ParseUnary(&rhs));
      lhs = Expr::MakeArith(op, std::move(lhs), std::move(rhs));
    }
    *out = std::move(lhs);
    return Status::OK();
  }

  Status ParseUnary(ExprPtr* out) {
    if (Match(TokenType::kMinus)) {
      // Unary minus: fold literals, otherwise compile 0 - operand.
      ExprPtr operand;
      RAPIDA_RETURN_IF_ERROR(ParseUnary(&operand));
      if (operand->kind == Expr::Kind::kLiteral &&
          operand->literal.is_literal()) {
        operand->literal.text = "-" + operand->literal.text;
        *out = std::move(operand);
        return Status::OK();
      }
      *out = Expr::MakeArith(
          "-", Expr::MakeLiteral(rdf::Term::Literal("0", rdf::kXsdInteger)),
          std::move(operand));
      return Status::OK();
    }
    if (Match(TokenType::kBang)) {
      ExprPtr operand;
      RAPIDA_RETURN_IF_ERROR(ParseUnary(&operand));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kNot;
      e->children.push_back(std::move(operand));
      *out = std::move(e);
      return Status::OK();
    }
    return ParsePrimary(out);
  }

  Status ParsePrimary(ExprPtr* out) {
    const Token& t = Peek();
    if (t.type == TokenType::kLParen) {
      Advance();
      RAPIDA_RETURN_IF_ERROR(ParseExpr(out));
      return Expect(TokenType::kRParen, "')'");
    }
    if (t.type == TokenType::kVar) {
      *out = Expr::MakeVar(Advance().text);
      return Status::OK();
    }
    if (t.type == TokenType::kString) {
      *out = Expr::MakeLiteral(rdf::Term::Literal(Advance().text));
      return Status::OK();
    }
    if (t.type == TokenType::kInteger) {
      *out = Expr::MakeLiteral(
          rdf::Term::Literal(Advance().text, rdf::kXsdInteger));
      return Status::OK();
    }
    if (t.type == TokenType::kDecimal) {
      *out = Expr::MakeLiteral(
          rdf::Term::Literal(Advance().text, rdf::kXsdDouble));
      return Status::OK();
    }
    if (t.type == TokenType::kIriRef) {
      *out = Expr::MakeLiteral(rdf::Term::Iri(Advance().text));
      return Status::OK();
    }
    if (t.type == TokenType::kPName) {
      RAPIDA_ASSIGN_OR_RETURN(rdf::Term term, ResolvePName(Advance().text));
      *out = Expr::MakeLiteral(std::move(term));
      return Status::OK();
    }
    if (t.type == TokenType::kKeyword) {
      if (t.text == "REGEX") return ParseRegex(out);
      if (t.text == "BOUND") return ParseBound(out);
      AggFunc func;
      if (t.text == "COUNT") func = AggFunc::kCount;
      else if (t.text == "SUM") func = AggFunc::kSum;
      else if (t.text == "AVG") func = AggFunc::kAvg;
      else if (t.text == "MIN") func = AggFunc::kMin;
      else if (t.text == "MAX") func = AggFunc::kMax;
      else if (t.text == "SAMPLE") func = AggFunc::kSample;
      else if (t.text == "GROUP_CONCAT") func = AggFunc::kGroupConcat;
      else return Error("unexpected keyword in expression");
      Advance();
      RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      bool distinct = MatchKeyword("DISTINCT");
      ExprPtr arg;
      if (Match(TokenType::kStar)) {
        arg = nullptr;  // COUNT(*)
      } else {
        RAPIDA_RETURN_IF_ERROR(ParseExpr(&arg));
      }
      std::string separator = " ";
      if (Match(TokenType::kSemicolon)) {
        if (!MatchKeyword("SEPARATOR")) return Error("expected SEPARATOR");
        RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
        if (!Check(TokenType::kString)) {
          return Error("SEPARATOR value must be a string");
        }
        separator = Advance().text;
      }
      RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      ExprPtr agg = Expr::MakeAggregate(func, std::move(arg), distinct);
      agg->regex_pattern = separator;  // reused slot: GROUP_CONCAT separator
      *out = std::move(agg);
      return Status::OK();
    }
    return Error("expected expression");
  }

  Status ParseRegex(ExprPtr* out) {
    Advance();  // REGEX
    RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    ExprPtr text;
    RAPIDA_RETURN_IF_ERROR(ParseExpr(&text));
    RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
    if (!Check(TokenType::kString)) return Error("regex pattern must be a string");
    std::string pattern = Advance().text;
    std::string flags;
    if (Match(TokenType::kComma)) {
      if (!Check(TokenType::kString)) return Error("regex flags must be a string");
      flags = Advance().text;
    }
    RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kRegex;
    e->regex_pattern = std::move(pattern);
    e->regex_flags = std::move(flags);
    e->children.push_back(std::move(text));
    *out = std::move(e);
    return Status::OK();
  }

  Status ParseBound(ExprPtr* out) {
    Advance();  // BOUND
    RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    if (!Check(TokenType::kVar)) return Error("bound() takes a variable");
    ExprPtr v = Expr::MakeVar(Advance().text);
    RAPIDA_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBound;
    e->children.push_back(std::move(v));
    *out = std::move(e);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  ParseOptions options_;
  std::unordered_map<std::string, std::string> prefixes_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<SelectQuery>> ParseQuery(
    std::string_view text, const ParseOptions& options) {
  RAPIDA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), options);
  return parser.Parse();
}

}  // namespace rapida::sparql
