#ifndef RAPIDA_SPARQL_PARSER_H_
#define RAPIDA_SPARQL_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "sparql/ast.h"
#include "util/statusor.h"

namespace rapida::sparql {

struct ParseOptions {
  /// Namespace used to expand bare (prefix-less) names such as `type` or
  /// `price` when the query does not declare `PREFIX :`. The paper's
  /// appendix queries use bare property names; catalogs set this to the
  /// workload namespace.
  std::string default_namespace;
};

/// Parses the SPARQL 1.1 analytical subset used by the paper's query
/// catalog: PREFIX, SELECT (with aggregate expressions and optional AS),
/// basic graph patterns with ';' / ',' abbreviations, FILTER (comparisons,
/// boolean connectives, regex, bound), OPTIONAL, nested sub-SELECTs, and
/// GROUP BY.
StatusOr<std::unique_ptr<SelectQuery>> ParseQuery(
    std::string_view text, const ParseOptions& options = {});

}  // namespace rapida::sparql

#endif  // RAPIDA_SPARQL_PARSER_H_
