#ifndef RAPIDA_STORAGE_IVM_H_
#define RAPIDA_STORAGE_IVM_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "analytics/analytical_query.h"
#include "analytics/binding.h"
#include "rdf/graph_index.h"
#include "rdf/triple.h"
#include "util/statusor.h"

namespace rapida::storage {

/// How a materialized result can be maintained under an insert-only delta.
///
///   kGroupAgg  — COUNT/SUM/MIN/MAX group-aggregates: delta matches are
///                aggregated and merged algebraically into the stored
///                groups (COUNT/SUM add, MIN/MAX compare; all idempotent
///                or additive under insert-only deltas).
///   kDistinct  — DISTINCT extractions: delta rows union in, dedup.
///   kAppend    — plain projections (union-able composite-pattern
///                results): delta rows append with multiplicity.
///   kNone      — the algebra does not admit patching (AVG and friends,
///                HAVING, solution modifiers, multi-grouping final joins,
///                OPTIONAL/UNION patterns); fall back to recompute.
enum class IvmClass { kNone, kAppend, kDistinct, kGroupAgg };

const char* IvmClassName(IvmClass cls);
IvmClass IvmClassFromName(const std::string& name);

struct IvmDecision {
  IvmClass cls = IvmClass::kNone;
  /// For kNone: the construct that defeats maintenance; otherwise a short
  /// description of the patch strategy. Surfaced in EXPLAIN.
  std::string detail;
};

/// Decides whether (and how) a query's materialized result can be patched
/// from an insert-only delta instead of recomputed. Conservative: anything
/// outside the provably-patchable algebra classifies kNone.
IvmDecision ClassifyMaintainability(const analytics::AnalyticalQuery& query);

/// An insert-only mutation delta in dictionary-encoded form: the triples
/// that were actually added (duplicates of existing triples excluded) plus
/// derived lookup sets.
struct DeltaPartition {
  std::vector<rdf::Triple> added;
  std::unordered_set<rdf::Triple, rdf::TripleHash> triples;
  std::unordered_set<rdf::TermId> subjects;

  bool empty() const { return added.empty(); }

  static DeltaPartition FromAdded(std::vector<rdf::Triple> added_triples) {
    DeltaPartition d;
    d.added = std::move(added_triples);
    for (const rdf::Triple& t : d.added) {
      d.triples.insert(t);
      d.subjects.insert(t.s);
    }
    return d;
  }
};

/// Patches `base` — the query's materialized result against the
/// pre-mutation graph — into the post-mutation result, using the
/// *post-mutation* graph index and the delta partition.
///
/// Delta matches are enumerated without double counting by pivot
/// partitioning over the pattern's stars: a full match is new iff at least
/// one star binding uses a delta triple, and every new match is counted
/// exactly once under its first star (in pattern order) with a new
/// binding — stars before the pivot bind old-only, the pivot binds
/// new-only (rooted at delta subjects), stars after bind anything.
///
/// `cls` must be a patchable class for `query` (the caller stores the
/// classification with the artifact). Structural mismatches (e.g. a stored
/// schema that no longer matches the query) return Internal; the caller
/// treats any failure as "recompute".
StatusOr<analytics::BindingTable> PatchResult(
    const analytics::AnalyticalQuery& query, IvmClass cls,
    const analytics::BindingTable& base, const DeltaPartition& delta,
    const rdf::GraphIndex& index, rdf::Dictionary* dict);

}  // namespace rapida::storage

#endif  // RAPIDA_STORAGE_IVM_H_
