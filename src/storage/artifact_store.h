#ifndef RAPIDA_STORAGE_ARTIFACT_STORE_H_
#define RAPIDA_STORAGE_ARTIFACT_STORE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analytics/binding.h"
#include "mapreduce/record.h"
#include "rdf/dictionary.h"
#include "util/statusor.h"

namespace rapida::storage {

/// Identity and provenance of one materialized artifact.
///
/// The key is (plan_fingerprint, content_hash): the *structural* plan
/// fingerprint (canonical under variable renaming) and the order-independent
/// content hash of the dataset the result was computed against. Everything
/// else is payload: `dataset` and `canonical_query` make the artifact
/// self-describing after a restart (the canonical text is re-parseable
/// SPARQL — the printer round-trips — so the service can re-analyze it for
/// incremental maintenance without the original session), `ivm_class` is
/// the maintainability classification frozen at publish time, and `columns`
/// are the canonical result column names in SELECT order (queries sharing
/// the plan fingerprint differ only in variable names, so serving renames
/// positionally).
struct ArtifactMeta {
  std::string plan_fingerprint;
  uint64_t content_hash = 0;
  std::string dataset;
  std::string canonical_query;
  std::string ivm_class;  // IvmClassName() of the classification
  std::vector<std::string> columns;
  /// Layout of the rows section. Empty = flat (one record per result row,
  /// SerializeTable encoding). Non-empty = d-representation: a spec like
  /// "b:0|f:1|f:2" naming which output columns are group-base cells vs
  /// per-group factor vectors; the rows section then holds one "g" record
  /// (base cells) per group followed by one "f<j>" record per factor-j
  /// value. DeserializeArtifact re-enumerates the cross product, so
  /// readers always see flat rows — only the bytes on disk shrink.
  std::string factorization;
};

/// One artifact: meta + the result rows as a columnar record batch (one
/// record per row; the value holds the self-describing cell encoding
/// produced by SerializeTable).
struct Artifact {
  ArtifactMeta meta;
  mr::RecordBatch rows;
};

/// Serializes a binding table into a record batch of explicit terms
/// (kind / text / datatype per cell) — TermId-free, so the payload is
/// meaningful in any process. Unbound cells round-trip.
mr::RecordBatch SerializeTable(const analytics::BindingTable& table,
                               const rdf::Dictionary& dict);

/// Inverse of SerializeTable: decodes rows against `columns` (the output
/// schema), re-interning every term into `dict`. Malformed cell encodings
/// return DataLoss.
StatusOr<analytics::BindingTable> DeserializeTable(
    const mr::RecordBatch& rows, const std::vector<std::string>& columns,
    rdf::Dictionary* dict);

/// Attempts to re-encode `table` as d-representation groups: maximal runs
/// of equal column-0 values whose remaining columns form an exact cross
/// product (the shape factorized star-join results decompress to). On
/// success fills `rows` + `spec` (ArtifactMeta::factorization) and returns
/// true — but only when the factorized serialization is strictly smaller
/// than the flat one, so group-of-1 aggregate results never bloat. On any
/// non-product run (or no byte win) returns false and leaves the outputs
/// untouched; callers fall back to SerializeTable.
bool FactorizeTable(const analytics::BindingTable& table,
                    const rdf::Dictionary& dict, mr::RecordBatch* rows,
                    std::string* spec);

/// Decodes an artifact's rows section against its meta, dispatching on
/// meta.factorization: flat artifacts go through DeserializeTable, and
/// factorized ones re-enumerate every group's cross product (factor 0
/// outermost) back into flat rows. Malformed specs or group records
/// return DataLoss.
StatusOr<analytics::BindingTable> DeserializeArtifact(const Artifact& artifact,
                                                      rdf::Dictionary* dict);

/// Disk-backed, content-addressed store of materialized query results.
///
/// One file per artifact under `dir`, named by the artifact key. On-disk
/// format (integers little-endian):
///
///   bytes 0-7    magic "RAPSTOR1" (trailing digit = container version)
///   u32          format_version (payload schema version, currently 1)
///   u32 meta_len   u32 meta_crc    (CRC-32C of the meta section)
///   u32 rows_len   u32 rows_crc    (CRC-32C of the rows section)
///   meta section   (ArtifactMeta, length-prefixed fields)
///   rows section   (mr::AppendRecordBatch payload)
///
/// Durability: Put serializes to `<name>.tmp` and atomically renames into
/// place, so readers (and crashes) only ever observe complete files.
/// Integrity: every section is CRC-checked on read; a truncated or
/// bit-flipped artifact returns DataLoss and is quarantined (renamed to
/// `<name>.quarantine`) so it stops being offered. A magic/format version
/// from the future returns Unimplemented and leaves the file alone.
/// Capacity: an optional byte budget, LRU-evicted on Put (access order is
/// in-memory; a restart seeds recency from file mtimes).
///
/// Thread-safe.
class ArtifactStore {
 public:
  struct Options {
    std::string dir;
    /// 0 = unlimited.
    uint64_t byte_budget = 256ull * 1024 * 1024;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t puts = 0;
    uint64_t evictions = 0;
    uint64_t corrupt = 0;       // artifacts quarantined (open or read time)
    uint64_t bytes_read = 0;    // artifact file bytes read on hits
    uint64_t bytes_written = 0; // artifact file bytes written by Put
    uint64_t artifacts = 0;     // currently indexed
    uint64_t bytes_used = 0;    // sum of indexed file sizes
    /// Currently indexed artifacts stored in d-representation. Their
    /// `bytes_used` contribution (and LRU charge) is the factorized file
    /// size, not the flat row count they decompress to.
    uint64_t factorized = 0;
  };

  /// Opens (creating `dir` if needed) and indexes every artifact in it.
  /// Corrupt files are quarantined and counted, never fatal.
  static StatusOr<std::unique_ptr<ArtifactStore>> Open(const Options& options);

  /// "store/<plan_fingerprint>-<content_hash hex>.rapart" basename.
  static std::string ArtifactName(const std::string& plan_fingerprint,
                                  uint64_t content_hash);

  /// Loads an artifact. NotFound on miss; DataLoss (and quarantine) on
  /// corruption; Unimplemented on format version skew.
  StatusOr<Artifact> Get(const std::string& plan_fingerprint,
                         uint64_t content_hash);

  /// Publishes (or replaces) an artifact atomically, then enforces the
  /// byte budget by evicting least-recently-used artifacts.
  Status Put(const Artifact& artifact);

  /// Deletes an artifact if present (idempotent).
  void Remove(const std::string& plan_fingerprint, uint64_t content_hash);

  /// Metas of every artifact recorded for `dataset` at `content_hash` —
  /// the scan set incremental maintenance walks after a mutation.
  std::vector<ArtifactMeta> ListForDataset(const std::string& dataset,
                                           uint64_t content_hash) const;

  Stats stats() const;
  std::string StatsJson() const;
  const Options& options() const { return options_; }

 private:
  struct Indexed {
    std::string path;
    uint64_t file_bytes = 0;
    ArtifactMeta meta;
  };

  explicit ArtifactStore(const Options& options) : options_(options) {}

  Status IndexDirLocked();
  void TouchLocked(const std::string& name);
  void EvictToFitLocked(const std::string& keep);
  void QuarantineLocked(const std::string& name);

  const Options options_;
  mutable std::mutex mu_;
  /// name (ArtifactName) -> index entry.
  std::map<std::string, Indexed> index_;
  /// Front = most recently used artifact name.
  std::list<std::string> lru_;
  Stats stats_;
};

}  // namespace rapida::storage

#endif  // RAPIDA_STORAGE_ARTIFACT_STORE_H_
