#include "storage/artifact_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>

#include "mapreduce/record_io.h"
#include "rdf/term.h"
#include "util/crc32c.h"

namespace rapida::storage {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'R', 'A', 'P', 'S', 'T', 'O', 'R', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 4 * 4;

void AppendStr(std::string_view s, std::string* out) {
  mr::AppendU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

bool ReadStr(std::string_view data, size_t* offset, std::string* s) {
  uint32_t len = 0;
  if (!mr::ReadU32(data, offset, &len)) return false;
  if (data.size() - *offset < len) return false;
  s->assign(data.substr(*offset, len));
  *offset += len;
  return true;
}

std::string EncodeMeta(const ArtifactMeta& meta) {
  std::string out;
  AppendStr(meta.plan_fingerprint, &out);
  mr::AppendU64(meta.content_hash, &out);
  AppendStr(meta.dataset, &out);
  AppendStr(meta.canonical_query, &out);
  AppendStr(meta.ivm_class, &out);
  mr::AppendU32(static_cast<uint32_t>(meta.columns.size()), &out);
  for (const std::string& c : meta.columns) AppendStr(c, &out);
  AppendStr(meta.factorization, &out);
  return out;
}

Status DecodeMeta(std::string_view data, ArtifactMeta* meta) {
  size_t offset = 0;
  uint32_t ncols = 0;
  if (!ReadStr(data, &offset, &meta->plan_fingerprint) ||
      !mr::ReadU64(data, &offset, &meta->content_hash) ||
      !ReadStr(data, &offset, &meta->dataset) ||
      !ReadStr(data, &offset, &meta->canonical_query) ||
      !ReadStr(data, &offset, &meta->ivm_class) ||
      !mr::ReadU32(data, &offset, &ncols)) {
    return Status::DataLoss("artifact meta section truncated");
  }
  meta->columns.clear();
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string c;
    if (!ReadStr(data, &offset, &c)) {
      return Status::DataLoss("artifact meta column list truncated");
    }
    meta->columns.push_back(std::move(c));
  }
  // Factorization spec: absent in pre-d-representation files (which then
  // decode as flat), mandatory once any bytes follow the column list.
  meta->factorization.clear();
  if (offset < data.size() &&
      !ReadStr(data, &offset, &meta->factorization)) {
    return Status::DataLoss("artifact factorization spec truncated");
  }
  if (offset != data.size()) {
    return Status::DataLoss("artifact meta section has trailing bytes");
  }
  return Status::OK();
}

std::string EncodeFile(const Artifact& artifact) {
  std::string meta = EncodeMeta(artifact.meta);
  std::string rows;
  mr::AppendRecordBatch(artifact.rows, &rows);
  std::string out(kMagic, sizeof(kMagic));
  mr::AppendU32(kFormatVersion, &out);
  mr::AppendU32(static_cast<uint32_t>(meta.size()), &out);
  mr::AppendU32(util::Crc32c(meta), &out);
  mr::AppendU32(static_cast<uint32_t>(rows.size()), &out);
  mr::AppendU32(util::Crc32c(rows), &out);
  out += meta;
  out += rows;
  return out;
}

/// Validates the container (magic, version, section framing, CRCs) and
/// decodes the meta; rows are decoded only when `rows` is non-null.
Status DecodeFile(std::string_view data, ArtifactMeta* meta,
                  mr::RecordBatch* rows) {
  if (data.size() < kHeaderBytes) {
    return Status::DataLoss("artifact shorter than its header (" +
                            std::to_string(data.size()) + " bytes)");
  }
  if (data.compare(0, 7, kMagic, 7) != 0) {
    return Status::DataLoss("artifact magic mismatch");
  }
  if (data[7] != kMagic[7]) {
    return Status::Unimplemented(
        "artifact container version skew: file is 'RAPSTOR" +
        std::string(1, data[7]) + "', this build reads 'RAPSTOR1'");
  }
  size_t offset = 8;
  uint32_t version = 0, meta_len = 0, meta_crc = 0, rows_len = 0,
           rows_crc = 0;
  mr::ReadU32(data, &offset, &version);
  mr::ReadU32(data, &offset, &meta_len);
  mr::ReadU32(data, &offset, &meta_crc);
  mr::ReadU32(data, &offset, &rows_len);
  mr::ReadU32(data, &offset, &rows_crc);
  if (version != kFormatVersion) {
    return Status::Unimplemented("artifact format version skew: file v" +
                                 std::to_string(version) +
                                 ", this build reads v" +
                                 std::to_string(kFormatVersion));
  }
  if (data.size() - offset != static_cast<uint64_t>(meta_len) + rows_len) {
    return Status::DataLoss(
        "artifact truncated: header declares " +
        std::to_string(static_cast<uint64_t>(meta_len) + rows_len) +
        " section bytes, file has " + std::to_string(data.size() - offset));
  }
  std::string_view meta_bytes = data.substr(offset, meta_len);
  std::string_view rows_bytes = data.substr(offset + meta_len, rows_len);
  if (util::Crc32c(meta_bytes) != meta_crc) {
    return Status::DataLoss("artifact meta checksum mismatch");
  }
  if (util::Crc32c(rows_bytes) != rows_crc) {
    return Status::DataLoss("artifact rows checksum mismatch");
  }
  RAPIDA_RETURN_IF_ERROR(DecodeMeta(meta_bytes, meta));
  if (rows != nullptr) {
    RAPIDA_RETURN_IF_ERROR(mr::ParseRecordBatch(rows_bytes, rows));
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::DataLoss("read error on " + path);
  return data;
}

// Cell kind tags of the row encoding.
constexpr char kCellUnbound = 0;
constexpr char kCellIri = 1;
constexpr char kCellLiteral = 2;
constexpr char kCellBlank = 3;

void AppendCell(rdf::TermId id, const rdf::Dictionary& dict,
                std::string* value) {
  if (id == rdf::kInvalidTermId) {
    value->push_back(kCellUnbound);
    return;
  }
  const rdf::Term& term = dict.Get(id);
  switch (term.kind) {
    case rdf::TermKind::kIri:
      value->push_back(kCellIri);
      AppendStr(term.text, value);
      break;
    case rdf::TermKind::kLiteral:
      value->push_back(kCellLiteral);
      AppendStr(term.text, value);
      AppendStr(term.datatype, value);
      break;
    case rdf::TermKind::kBlank:
      value->push_back(kCellBlank);
      AppendStr(term.text, value);
      break;
  }
}

Status DecodeCell(std::string_view value, size_t* offset,
                  rdf::Dictionary* dict, rdf::TermId* out) {
  if (*offset >= value.size()) {
    return Status::DataLoss("artifact row cell truncated");
  }
  char kind = value[(*offset)++];
  if (kind == kCellUnbound) {
    *out = rdf::kInvalidTermId;
    return Status::OK();
  }
  std::string text;
  if (!ReadStr(value, offset, &text)) {
    return Status::DataLoss("artifact row cell truncated");
  }
  rdf::Term term;
  switch (kind) {
    case kCellIri:
      term = rdf::Term::Iri(std::move(text));
      break;
    case kCellBlank:
      term = rdf::Term::Blank(std::move(text));
      break;
    case kCellLiteral: {
      std::string datatype;
      if (!ReadStr(value, offset, &datatype)) {
        return Status::DataLoss("artifact row datatype truncated");
      }
      term = rdf::Term::Literal(std::move(text), std::move(datatype));
      break;
    }
    default:
      return Status::DataLoss("artifact row has unknown cell kind " +
                              std::to_string(static_cast<int>(kind)));
  }
  *out = dict->Intern(term);
  return Status::OK();
}

}  // namespace

mr::RecordBatch SerializeTable(const analytics::BindingTable& table,
                               const rdf::Dictionary& dict) {
  mr::RecordBatch batch;
  std::string value;
  for (const std::vector<rdf::TermId>& row : table.rows()) {
    value.clear();
    for (rdf::TermId id : row) AppendCell(id, dict, &value);
    batch.Add(/*key=*/{}, value);
  }
  return batch;
}

StatusOr<analytics::BindingTable> DeserializeTable(
    const mr::RecordBatch& rows, const std::vector<std::string>& columns,
    rdf::Dictionary* dict) {
  analytics::BindingTable table(columns);
  for (const auto& store : rows.columns) {
    for (size_t r = 0; r < store->size(); ++r) {
      std::string_view value = store->value(r);
      size_t offset = 0;
      std::vector<rdf::TermId> row;
      row.reserve(columns.size());
      while (offset < value.size()) {
        rdf::TermId id = rdf::kInvalidTermId;
        RAPIDA_RETURN_IF_ERROR(DecodeCell(value, &offset, dict, &id));
        row.push_back(id);
      }
      if (row.size() != columns.size()) {
        return Status::DataLoss(
            "artifact row has " + std::to_string(row.size()) +
            " cells for " + std::to_string(columns.size()) + " columns");
      }
      table.AddRow(std::move(row));
    }
  }
  return table;
}

bool FactorizeTable(const analytics::BindingTable& table,
                    const rdf::Dictionary& dict, mr::RecordBatch* rows,
                    std::string* spec) {
  const auto& data = table.rows();
  const size_t ncols = table.NumCols();
  if (ncols < 2 || data.empty()) return false;

  // Cell-encoded byte length per distinct TermId, memoized — needed both
  // to size the flat baseline and to cost the factor vectors.
  std::map<rdf::TermId, uint64_t> cell_len;
  std::string scratch;
  auto len_of = [&](rdf::TermId id) {
    auto it = cell_len.find(id);
    if (it != cell_len.end()) return it->second;
    scratch.clear();
    AppendCell(id, dict, &scratch);
    return cell_len.emplace(id, scratch.size()).first->second;
  };

  struct Group {
    rdf::TermId base;
    std::vector<std::vector<rdf::TermId>> factors;  // one per column 1..n-1
  };
  // Record::Bytes() = key + value + 2; flat rows have empty keys, group
  // records carry "g" / "f<j>" keys.
  uint64_t flat_bytes = 0, fact_bytes = 0;

  for (size_t begin = 0; begin < data.size();) {
    size_t end = begin;
    while (end < data.size() && data[end][0] == data[begin][0]) ++end;
    Group g;
    g.base = data[begin][0];
    g.factors.assign(ncols - 1, {});
    uint64_t row_len = 0;
    for (size_t c = 1; c < ncols; ++c) {
      std::vector<rdf::TermId>& vals = g.factors[c - 1];
      for (size_t r = begin; r < end; ++r) {
        rdf::TermId id = data[r][c];
        bool seen = false;
        for (rdf::TermId v : vals) {
          if (v == id) { seen = true; break; }
        }
        if (!seen) vals.push_back(id);
      }
    }
    // The run must be the exact cross product of its factor vectors, in
    // odometer order (last column innermost) — the order a factorized
    // star-join output decompresses to. Anything else stays flat.
    size_t product = 1;
    for (const auto& vals : g.factors) product *= vals.size();
    if (product != end - begin) return false;
    for (size_t r = begin; r < end; ++r) {
      size_t rel = r - begin, stride = product;
      for (size_t c = 1; c < ncols; ++c) {
        const std::vector<rdf::TermId>& vals = g.factors[c - 1];
        stride /= vals.size();
        if (data[r][c] != vals[(rel / stride) % vals.size()]) return false;
      }
      row_len = 0;
      for (size_t c = 0; c < ncols; ++c) row_len += len_of(data[r][c]);
      flat_bytes += row_len + 2;
    }
    fact_bytes += len_of(g.base) + 1 + 2;  // "g" record
    for (size_t c = 1; c < ncols; ++c) {
      uint64_t key = 1 + std::to_string(c - 1).size();  // "f<j>"
      for (rdf::TermId v : g.factors[c - 1]) {
        fact_bytes += len_of(v) + key + 2;
      }
    }
    begin = end;
  }
  if (fact_bytes >= flat_bytes) return false;

  mr::RecordBatch batch;
  std::string value;
  // Second pass emits the records (the first pass proved the shape and
  // the byte win without holding every factor vector alive at once).
  for (size_t begin = 0; begin < data.size();) {
    size_t end = begin;
    while (end < data.size() && data[end][0] == data[begin][0]) ++end;
    value.clear();
    AppendCell(data[begin][0], dict, &value);
    batch.Add("g", value);
    for (size_t c = 1; c < ncols; ++c) {
      std::string key = "f" + std::to_string(c - 1);
      std::vector<rdf::TermId> vals;
      for (size_t r = begin; r < end; ++r) {
        rdf::TermId id = data[r][c];
        bool seen = false;
        for (rdf::TermId v : vals) {
          if (v == id) { seen = true; break; }
        }
        if (!seen) vals.push_back(id);
      }
      for (rdf::TermId v : vals) {
        value.clear();
        AppendCell(v, dict, &value);
        batch.Add(key, value);
      }
    }
    begin = end;
  }
  std::string out_spec = "b:0";
  for (size_t c = 1; c < ncols; ++c) {
    out_spec += "|f:" + std::to_string(c);
  }
  *rows = std::move(batch);
  *spec = std::move(out_spec);
  return true;
}

namespace {

/// Parses "b:<col>|f:<col>|..." into the base column and one output-column
/// index per factor. The spec must cover every output column exactly once.
Status ParseFactorizationSpec(const std::string& spec, size_t ncols,
                              size_t* base_col, std::vector<size_t>* factors) {
  factors->clear();
  std::vector<bool> covered(ncols, false);
  bool have_base = false;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t bar = spec.find('|', pos);
    std::string seg = spec.substr(pos, bar == std::string::npos
                                           ? std::string::npos
                                           : bar - pos);
    pos = bar == std::string::npos ? spec.size() : bar + 1;
    bool is_base = seg.rfind("b:", 0) == 0;
    bool is_factor = seg.rfind("f:", 0) == 0;
    if (!is_base && !is_factor) {
      return Status::DataLoss("artifact factorization spec segment '" + seg +
                              "' is neither b:<col> nor f:<col>");
    }
    char* endp = nullptr;
    unsigned long col = std::strtoul(seg.c_str() + 2, &endp, 10);
    if (endp == seg.c_str() + 2 || *endp != '\0' || col >= ncols ||
        covered[col]) {
      return Status::DataLoss("artifact factorization spec names column '" +
                              seg + "' outside the result schema");
    }
    covered[col] = true;
    if (is_base) {
      if (have_base) {
        return Status::DataLoss("artifact factorization spec has two bases");
      }
      have_base = true;
      *base_col = col;
    } else {
      factors->push_back(col);
    }
  }
  if (!have_base || factors->empty()) {
    return Status::DataLoss(
        "artifact factorization spec needs a base and >= 1 factor");
  }
  for (size_t c = 0; c < ncols; ++c) {
    if (!covered[c]) {
      return Status::DataLoss("artifact factorization spec misses column " +
                              std::to_string(c));
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<analytics::BindingTable> DeserializeArtifact(const Artifact& artifact,
                                                      rdf::Dictionary* dict) {
  if (artifact.meta.factorization.empty()) {
    return DeserializeTable(artifact.rows, artifact.meta.columns, dict);
  }
  const size_t ncols = artifact.meta.columns.size();
  size_t base_col = 0;
  std::vector<size_t> factor_cols;
  RAPIDA_RETURN_IF_ERROR(ParseFactorizationSpec(artifact.meta.factorization,
                                                ncols, &base_col,
                                                &factor_cols));
  analytics::BindingTable table(artifact.meta.columns);

  rdf::TermId base = rdf::kInvalidTermId;
  std::vector<std::vector<rdf::TermId>> factors(factor_cols.size());
  bool open = false;
  auto flush = [&]() -> Status {
    if (!open) return Status::OK();
    size_t product = 1;
    for (const auto& vals : factors) {
      if (vals.empty()) {
        return Status::DataLoss("factorized artifact group has an empty "
                                "factor vector");
      }
      product *= vals.size();
    }
    // Odometer enumeration, factor 0 outermost — the encoder's order.
    for (size_t rel = 0; rel < product; ++rel) {
      std::vector<rdf::TermId> row(ncols, rdf::kInvalidTermId);
      row[base_col] = base;
      size_t stride = product;
      for (size_t j = 0; j < factors.size(); ++j) {
        stride /= factors[j].size();
        row[factor_cols[j]] = factors[j][(rel / stride) % factors[j].size()];
      }
      table.AddRow(std::move(row));
    }
    for (auto& vals : factors) vals.clear();
    return Status::OK();
  };

  for (const auto& store : artifact.rows.columns) {
    for (size_t r = 0; r < store->size(); ++r) {
      std::string_view key = store->key(r);
      std::string_view value = store->value(r);
      size_t offset = 0;
      rdf::TermId id = rdf::kInvalidTermId;
      RAPIDA_RETURN_IF_ERROR(DecodeCell(value, &offset, dict, &id));
      if (offset != value.size()) {
        return Status::DataLoss("factorized artifact record has trailing "
                                "bytes after its cell");
      }
      if (key == "g") {
        RAPIDA_RETURN_IF_ERROR(flush());
        base = id;
        open = true;
        continue;
      }
      if (key.size() < 2 || key[0] != 'f' || !open) {
        return Status::DataLoss("factorized artifact has record key '" +
                                std::string(key) + "' outside any group");
      }
      char* endp = nullptr;
      std::string idx(key.substr(1));
      unsigned long j = std::strtoul(idx.c_str(), &endp, 10);
      if (*endp != '\0' || j >= factors.size()) {
        return Status::DataLoss("factorized artifact factor key '" +
                                std::string(key) + "' out of range");
      }
      factors[j].push_back(id);
    }
  }
  RAPIDA_RETURN_IF_ERROR(flush());
  return table;
}

std::string ArtifactStore::ArtifactName(const std::string& plan_fingerprint,
                                        uint64_t content_hash) {
  std::string name;
  name.reserve(plan_fingerprint.size() + 24);
  for (char c : plan_fingerprint) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9');
    name.push_back(safe ? c : '_');
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-%016llx.rapart",
                static_cast<unsigned long long>(content_hash));
  name += buf;
  return name;
}

StatusOr<std::unique_ptr<ArtifactStore>> ArtifactStore::Open(
    const Options& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("artifact store needs a directory");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("cannot create store dir " + options.dir + ": " +
                            ec.message());
  }
  std::unique_ptr<ArtifactStore> store(new ArtifactStore(options));
  std::lock_guard<std::mutex> lock(store->mu_);
  RAPIDA_RETURN_IF_ERROR(store->IndexDirLocked());
  return store;
}

Status ArtifactStore::IndexDirLocked() {
  struct Found {
    fs::file_time_type mtime;
    std::string name;
  };
  std::vector<Found> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() < 7 || name.substr(name.size() - 7) != ".rapart") {
      continue;
    }
    StatusOr<std::string> data = ReadFileBytes(entry.path().string());
    if (!data.ok()) {
      stats_.corrupt++;
      QuarantineLocked(name);
      continue;
    }
    ArtifactMeta meta;
    Status decoded = DecodeFile(*data, &meta, /*rows=*/nullptr);
    if (!decoded.ok()) {
      if (decoded.code() == Code::kUnimplemented) continue;  // future file
      stats_.corrupt++;
      QuarantineLocked(name);
      continue;
    }
    Indexed indexed;
    indexed.path = entry.path().string();
    indexed.file_bytes = data->size();
    indexed.meta = std::move(meta);
    stats_.bytes_used += indexed.file_bytes;
    stats_.artifacts++;
    if (!indexed.meta.factorization.empty()) stats_.factorized++;
    index_[name] = std::move(indexed);
    found.push_back({entry.last_write_time(ec), name});
  }
  if (ec) {
    return Status::Internal("cannot scan store dir " + options_.dir + ": " +
                            ec.message());
  }
  // Seed recency from file mtimes: oldest to the back of the LRU.
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.name < b.name;
            });
  for (const Found& f : found) lru_.push_front(f.name);
  return Status::OK();
}

void ArtifactStore::TouchLocked(const std::string& name) {
  lru_.remove(name);
  lru_.push_front(name);
}

void ArtifactStore::QuarantineLocked(const std::string& name) {
  std::error_code ec;
  fs::rename(fs::path(options_.dir) / name,
             fs::path(options_.dir) / (name + ".quarantine"), ec);
  // A rename failure (e.g. the file vanished) is fine: either way the
  // artifact stops being offered.
  auto it = index_.find(name);
  if (it != index_.end()) {
    stats_.bytes_used -= it->second.file_bytes;
    stats_.artifacts--;
    if (!it->second.meta.factorization.empty()) stats_.factorized--;
    index_.erase(it);
  }
  lru_.remove(name);
}

StatusOr<Artifact> ArtifactStore::Get(const std::string& plan_fingerprint,
                                      uint64_t content_hash) {
  std::string name = ArtifactName(plan_fingerprint, content_hash);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) {
    stats_.misses++;
    return Status::NotFound("no artifact " + name);
  }
  StatusOr<std::string> data = ReadFileBytes(it->second.path);
  if (!data.ok()) {
    stats_.misses++;
    stats_.corrupt++;
    QuarantineLocked(name);
    return Status::DataLoss("artifact " + name +
                            " unreadable: " + data.status().message());
  }
  Artifact artifact;
  Status decoded = DecodeFile(*data, &artifact.meta, &artifact.rows);
  if (!decoded.ok()) {
    stats_.misses++;
    if (decoded.code() != Code::kUnimplemented) {
      stats_.corrupt++;
      QuarantineLocked(name);
    }
    return decoded;
  }
  stats_.hits++;
  stats_.bytes_read += data->size();
  TouchLocked(name);
  return artifact;
}

Status ArtifactStore::Put(const Artifact& artifact) {
  std::string name = ArtifactName(artifact.meta.plan_fingerprint,
                                  artifact.meta.content_hash);
  std::string bytes = EncodeFile(artifact);

  std::lock_guard<std::mutex> lock(mu_);
  fs::path path = fs::path(options_.dir) / name;
  fs::path tmp = fs::path(options_.dir) / (name + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot write " + tmp.string());
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      return Status::Internal("short write to " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::Internal("cannot publish " + path.string());
  }

  auto it = index_.find(name);
  if (it != index_.end()) {
    stats_.bytes_used -= it->second.file_bytes;
    if (!it->second.meta.factorization.empty()) stats_.factorized--;
  } else {
    stats_.artifacts++;
    it = index_.emplace(name, Indexed{}).first;
  }
  it->second.path = path.string();
  it->second.file_bytes = bytes.size();
  it->second.meta = artifact.meta;
  if (!it->second.meta.factorization.empty()) stats_.factorized++;
  stats_.bytes_used += bytes.size();
  stats_.puts++;
  stats_.bytes_written += bytes.size();
  TouchLocked(name);
  EvictToFitLocked(name);
  return Status::OK();
}

void ArtifactStore::EvictToFitLocked(const std::string& keep) {
  if (options_.byte_budget == 0) return;
  // Evict from the cold end, sparing the fresh artifact until it is the
  // only one left (an artifact larger than the whole budget does not get
  // to wedge the store).
  while (stats_.bytes_used > options_.byte_budget && !lru_.empty()) {
    std::string victim = lru_.back();
    if (victim == keep) {
      if (lru_.size() == 1) break;  // over budget, but never empty-handed
      // keep is at the back only when everything else was already evicted
      // this round; rotate it forward and take the true cold end.
      lru_.pop_back();
      lru_.push_front(victim);
      victim = lru_.back();
    }
    auto it = index_.find(victim);
    if (it != index_.end()) {
      std::error_code ec;
      fs::remove(it->second.path, ec);
      stats_.bytes_used -= it->second.file_bytes;
      stats_.artifacts--;
      if (!it->second.meta.factorization.empty()) stats_.factorized--;
      index_.erase(it);
    }
    lru_.remove(victim);
    stats_.evictions++;
  }
}

void ArtifactStore::Remove(const std::string& plan_fingerprint,
                           uint64_t content_hash) {
  std::string name = ArtifactName(plan_fingerprint, content_hash);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return;
  std::error_code ec;
  fs::remove(it->second.path, ec);
  stats_.bytes_used -= it->second.file_bytes;
  stats_.artifacts--;
  if (!it->second.meta.factorization.empty()) stats_.factorized--;
  index_.erase(it);
  lru_.remove(name);
}

std::vector<ArtifactMeta> ArtifactStore::ListForDataset(
    const std::string& dataset, uint64_t content_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ArtifactMeta> out;
  for (const auto& [name, indexed] : index_) {
    if (indexed.meta.dataset == dataset &&
        indexed.meta.content_hash == content_hash) {
      out.push_back(indexed.meta);
    }
  }
  return out;
}

ArtifactStore::Stats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string ArtifactStore::StatsJson() const {
  Stats s = stats();
  return "{\"hits\":" + std::to_string(s.hits) +
         ",\"misses\":" + std::to_string(s.misses) +
         ",\"puts\":" + std::to_string(s.puts) +
         ",\"evictions\":" + std::to_string(s.evictions) +
         ",\"corrupt\":" + std::to_string(s.corrupt) +
         ",\"bytes_read\":" + std::to_string(s.bytes_read) +
         ",\"bytes_written\":" + std::to_string(s.bytes_written) +
         ",\"artifacts\":" + std::to_string(s.artifacts) +
         ",\"factorized_artifacts\":" + std::to_string(s.factorized) +
         ",\"bytes_used\":" + std::to_string(s.bytes_used) +
         ",\"byte_budget\":" + std::to_string(options_.byte_budget) + "}";
}

}  // namespace rapida::storage
