#include "storage/ivm.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>

#include "analytics/aggregates.h"
#include "analytics/value.h"
#include "rdf/term.h"
#include "sparql/expr_eval.h"

namespace rapida::storage {

const char* IvmClassName(IvmClass cls) {
  switch (cls) {
    case IvmClass::kNone:
      return "none";
    case IvmClass::kAppend:
      return "append";
    case IvmClass::kDistinct:
      return "distinct";
    case IvmClass::kGroupAgg:
      return "group-agg";
  }
  return "none";
}

IvmClass IvmClassFromName(const std::string& name) {
  if (name == "append") return IvmClass::kAppend;
  if (name == "distinct") return IvmClass::kDistinct;
  if (name == "group-agg") return IvmClass::kGroupAgg;
  return IvmClass::kNone;
}

namespace {

const char* AggFuncLabel(sparql::AggFunc func) {
  switch (func) {
    case sparql::AggFunc::kCount:
      return "COUNT";
    case sparql::AggFunc::kSum:
      return "SUM";
    case sparql::AggFunc::kAvg:
      return "AVG";
    case sparql::AggFunc::kMin:
      return "MIN";
    case sparql::AggFunc::kMax:
      return "MAX";
    case sparql::AggFunc::kSample:
      return "SAMPLE";
    case sparql::AggFunc::kGroupConcat:
      return "GROUP_CONCAT";
  }
  return "?";
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

IvmDecision ClassifyMaintainability(const analytics::AnalyticalQuery& query) {
  if (query.groupings.size() != 1) {
    return {IvmClass::kNone, "multi-grouping final join"};
  }
  const analytics::GroupingSubquery& g = query.groupings[0];
  if (!g.IsConjunctive()) {
    return {IvmClass::kNone, "non-conjunctive pattern (OPTIONAL/UNION)"};
  }
  if (g.pattern.stars.empty()) {
    return {IvmClass::kNone, "empty pattern"};
  }
  if (g.having) {
    return {IvmClass::kNone, "HAVING re-filters groups"};
  }
  if (!query.order_by.empty() || query.limit != -1 || query.offset > 0) {
    return {IvmClass::kNone, "ORDER/LIMIT/OFFSET over final rows"};
  }
  // The stored table must be exactly the grouping's output: any top-level
  // reshaping (expressions, reordering) would have to be replayed.
  if (query.top_items.size() != g.columns.size()) {
    return {IvmClass::kNone, "top-level projection reshapes grouping output"};
  }
  for (size_t i = 0; i < query.top_items.size(); ++i) {
    if (query.top_items[i].expr != nullptr ||
        query.top_items[i].name != g.columns[i]) {
      return {IvmClass::kNone, "top-level projection reshapes grouping output"};
    }
  }
  if (g.aggs.empty()) {
    if (!g.group_by.empty()) {
      // A zero-aggregate grouping's rows are its distinct keys (the form
      // SELECT DISTINCT desugars to), so patching is union + dedup — but
      // only if the keys are exactly the projected columns; otherwise the
      // stored rows are not the grouping output.
      for (const std::string& gv : g.group_by) {
        if (!Contains(g.columns, gv)) {
          return {IvmClass::kNone, "group key not projected"};
        }
      }
      return {IvmClass::kDistinct, "union delta rows, dedup"};
    }
    if (query.top_distinct) {
      return {IvmClass::kDistinct, "union delta rows, dedup"};
    }
    return {IvmClass::kAppend, "append delta rows"};
  }
  if (query.top_distinct) {
    return {IvmClass::kNone, "DISTINCT over aggregate rows"};
  }
  for (const ntga::AggSpec& spec : g.aggs) {
    switch (spec.func) {
      case sparql::AggFunc::kCount:
      case sparql::AggFunc::kSum:
      case sparql::AggFunc::kMin:
      case sparql::AggFunc::kMax:
        break;
      default:
        return {IvmClass::kNone,
                std::string("non-incremental aggregate ") +
                    AggFuncLabel(spec.func)};
    }
  }
  for (const std::string& gv : g.group_by) {
    if (!Contains(g.columns, gv)) {
      return {IvmClass::kNone, "group key not projected"};
    }
  }
  return {IvmClass::kGroupAgg, "merge COUNT/SUM adds, MIN/MAX compares"};
}

namespace {

using Assignment = std::unordered_map<std::string, rdf::TermId>;

/// One star triple with every constant resolved to the mutated graph's
/// dictionary ids.
struct ResolvedTriple {
  bool is_presence = false;       // type or constant-object: (s, prop, obj)
  rdf::TermId prop = rdf::kInvalidTermId;
  rdf::TermId obj = rdf::kInvalidTermId;  // presence only
  std::string var;                        // object var otherwise
};

struct ResolvedStar {
  std::string subject_var;
  std::vector<ResolvedTriple> triples;
};

enum class BindMode { kOldOnly, kNewOnly, kAny };

/// Enumerates the *delta* matches of a conjunctive star graph against the
/// post-mutation index: full assignments that use at least one delta
/// triple, each exactly once (pivot partitioning; see ivm.h).
class DeltaEnumerator {
 public:
  DeltaEnumerator(const analytics::GroupingSubquery& grouping,
                  const DeltaPartition& delta, const rdf::GraphIndex& index,
                  const rdf::Dictionary& dict)
      : g_(grouping), delta_(delta), index_(index), dict_(dict) {}

  /// False when some constant of the pattern is not even in the
  /// dictionary — then the pattern has no matches at all, delta included.
  bool Resolve() {
    type_id_ = index_.graph().TypeIdOrInvalid();
    for (const ntga::StarPattern& sp : g_.pattern.stars) {
      ResolvedStar star;
      star.subject_var = sp.subject_var;
      for (const ntga::StarTriple& st : sp.triples) {
        ResolvedTriple t;
        if (st.prop.is_type()) {
          t.is_presence = true;
          t.prop = type_id_;
          t.obj = dict_.Lookup(rdf::Term::Iri(st.prop.type_object));
        } else {
          t.prop = dict_.LookupIri(st.prop.property);
          if (st.object.is_var) {
            t.var = st.object.var;
          } else {
            t.is_presence = true;
            t.obj = dict_.Lookup(st.object.term);
          }
        }
        if (t.prop == rdf::kInvalidTermId ||
            (t.is_presence && t.obj == rdf::kInvalidTermId)) {
          return false;
        }
        star.triples.push_back(std::move(t));
      }
      stars_.push_back(std::move(star));
    }
    // Sorted delta subjects: a deterministic enumeration order makes the
    // patched row order reproducible run to run.
    delta_subjects_.assign(delta_.subjects.begin(), delta_.subjects.end());
    std::sort(delta_subjects_.begin(), delta_subjects_.end());
    return true;
  }

  void Enumerate(const std::function<void(const Assignment&)>& fn) {
    size_t n = stars_.size();
    for (pivot_ = 0; pivot_ < n; ++pivot_) {
      // BFS star order from the pivot (the pattern is connected, so every
      // star is reached through a join edge whose variable is bound by the
      // time the star is expanded).
      order_.clear();
      order_.push_back(pivot_);
      std::vector<bool> seen(n, false);
      seen[pivot_] = true;
      for (size_t head = 0; head < order_.size(); ++head) {
        size_t cur = order_[head];
        for (const ntga::JoinEdge& e : g_.pattern.joins) {
          size_t a = static_cast<size_t>(e.star_a);
          size_t b = static_cast<size_t>(e.star_b);
          if (a == cur && !seen[b]) {
            seen[b] = true;
            order_.push_back(b);
          } else if (b == cur && !seen[a]) {
            seen[a] = true;
            order_.push_back(a);
          }
        }
      }
      if (order_.size() != n) continue;  // disconnected: analyzer rejects
      Assignment a;
      ExtendStar(0, &a, fn);
    }
  }

 private:
  BindMode ModeOf(size_t star_idx) const {
    if (star_idx < pivot_) return BindMode::kOldOnly;
    if (star_idx == pivot_) return BindMode::kNewOnly;
    return BindMode::kAny;
  }

  bool IsDelta(rdf::TermId s, rdf::TermId p, rdf::TermId o) const {
    return delta_.triples.count(rdf::Triple{s, p, o}) > 0;
  }

  /// Candidate subjects for the star at order_[oi], derived from the
  /// already-bound assignment (the pivot seeds from the delta subjects).
  std::vector<rdf::TermId> CandidateSubjects(size_t star_idx,
                                             const Assignment& a) const {
    const ResolvedStar& star = stars_[star_idx];
    auto it = a.find(star.subject_var);
    if (it != a.end()) return {it->second};
    for (const ntga::JoinEdge& e : g_.pattern.joins) {
      ntga::JoinRole role;
      const ntga::PropKey* prop = nullptr;
      if (static_cast<size_t>(e.star_a) == star_idx) {
        role = e.role_a;
        prop = &e.prop_a;
      } else if (static_cast<size_t>(e.star_b) == star_idx) {
        role = e.role_b;
        prop = &e.prop_b;
      } else {
        continue;
      }
      auto bound = a.find(e.var);
      if (bound == a.end()) continue;
      if (role == ntga::JoinRole::kSubject) return {bound->second};
      if (prop->is_type()) continue;  // type objects are constants
      rdf::TermId pid = dict_.LookupIri(prop->property);
      if (pid == rdf::kInvalidTermId) return {};
      return index_.Subjects(pid, bound->second);
    }
    return {};
  }

  void ExtendStar(size_t oi, Assignment* a,
                  const std::function<void(const Assignment&)>& fn) {
    if (oi == order_.size()) {
      if (PassesFilters(*a)) fn(*a);
      return;
    }
    size_t star_idx = order_[oi];
    BindMode mode = ModeOf(star_idx);
    std::vector<rdf::TermId> candidates;
    if (oi == 0) {
      // The pivot binds new-only, and a new binding's triples all share
      // the binding's subject, so it must be a delta subject.
      candidates = delta_subjects_;
    } else {
      candidates = CandidateSubjects(star_idx, *a);
    }
    for (rdf::TermId s : candidates) {
      BindStar(star_idx, s, mode, a, [&] { ExtendStar(oi + 1, a, fn); });
    }
  }

  /// Enumerates bindings of one star rooted at `s`, consistent with `a`,
  /// respecting `mode` (old-only skips delta triples; new-only requires at
  /// least one). Calls `k` with the bindings applied; backtracks after.
  void BindStar(size_t star_idx, rdf::TermId s, BindMode mode, Assignment* a,
                const std::function<void()>& k) {
    const ResolvedStar& star = stars_[star_idx];
    auto it = a->find(star.subject_var);
    if (it != a->end() && it->second != s) return;
    bool bound_subject = (it == a->end());
    if (bound_subject) (*a)[star.subject_var] = s;
    BindTriples(star, 0, s, mode, /*used_delta=*/false, a, k);
    if (bound_subject) a->erase(star.subject_var);
  }

  void BindTriples(const ResolvedStar& star, size_t ti, rdf::TermId s,
                   BindMode mode, bool used_delta, Assignment* a,
                   const std::function<void()>& k) {
    if (ti == star.triples.size()) {
      if (mode == BindMode::kNewOnly && !used_delta) return;
      k();
      return;
    }
    const ResolvedTriple& t = star.triples[ti];
    auto step = [&](rdf::TermId o) {
      bool d = IsDelta(s, t.prop, o);
      if (mode == BindMode::kOldOnly && d) return;
      BindTriples(star, ti + 1, s, mode, used_delta || d, a, k);
    };
    if (t.is_presence) {
      if (index_.Contains(s, t.prop, t.obj)) step(t.obj);
      return;
    }
    auto bound = a->find(t.var);
    if (bound != a->end()) {
      if (index_.Contains(s, t.prop, bound->second)) step(bound->second);
      return;
    }
    for (rdf::TermId o : index_.Objects(t.prop, s)) {
      (*a)[t.var] = o;
      step(o);
      a->erase(t.var);
    }
  }

  bool PassesFilters(const Assignment& a) const {
    if (g_.filters.empty()) return true;
    sparql::VarResolver resolve = [&a](const std::string& var) {
      auto it = a.find(var);
      return it == a.end() ? rdf::kInvalidTermId : it->second;
    };
    for (const sparql::ExprPtr& f : g_.filters) {
      if (!sparql::EffectiveBool(sparql::EvaluateExpr(*f, resolve, dict_))) {
        return false;
      }
    }
    return true;
  }

  const analytics::GroupingSubquery& g_;
  const DeltaPartition& delta_;
  const rdf::GraphIndex& index_;
  const rdf::Dictionary& dict_;
  rdf::TermId type_id_ = rdf::kInvalidTermId;
  std::vector<ResolvedStar> stars_;
  std::vector<rdf::TermId> delta_subjects_;
  size_t pivot_ = 0;
  std::vector<size_t> order_;
};

/// Projects one delta assignment onto the grouping's output columns
/// (append/distinct classes: every column is a pattern variable).
Status ProjectRow(const Assignment& a, const std::vector<std::string>& columns,
                  std::vector<rdf::TermId>* row) {
  row->clear();
  row->reserve(columns.size());
  for (const std::string& c : columns) {
    auto it = a.find(c);
    if (it == a.end()) {
      return Status::Internal("delta match does not bind column '" + c + "'");
    }
    row->push_back(it->second);
  }
  return Status::OK();
}

StatusOr<analytics::BindingTable> PatchGroupAgg(
    const analytics::GroupingSubquery& g, const analytics::BindingTable& base,
    DeltaEnumerator* enumerator, rdf::Dictionary* dict) {
  // Bind each output column to its source: a group variable or an
  // aggregate slot.
  struct ColRef {
    bool is_agg = false;
    size_t idx = 0;  // into g.aggs or g.group_by
  };
  std::vector<ColRef> cols(g.columns.size());
  for (size_t i = 0; i < g.columns.size(); ++i) {
    const std::string& c = g.columns[i];
    bool found = false;
    for (size_t j = 0; j < g.aggs.size() && !found; ++j) {
      if (g.aggs[j].output_name == c) {
        cols[i] = {true, j};
        found = true;
      }
    }
    for (size_t k = 0; k < g.group_by.size() && !found; ++k) {
      if (g.group_by[k] == c) {
        cols[i] = {false, k};
        found = true;
      }
    }
    if (!found) {
      return Status::Internal("column '" + c +
                              "' is neither group key nor aggregate");
    }
  }

  // Aggregate the delta matches per group key (std::map: deterministic
  // appended-row order).
  std::map<std::vector<rdf::TermId>, std::vector<analytics::Aggregator>>
      dgroups;
  Status err = Status::OK();
  enumerator->Enumerate([&](const Assignment& a) {
    if (!err.ok()) return;
    std::vector<rdf::TermId> key;
    key.reserve(g.group_by.size());
    for (const std::string& gv : g.group_by) {
      auto it = a.find(gv);
      if (it == a.end()) {
        err = Status::Internal("delta match does not bind group var '" + gv +
                               "'");
        return;
      }
      key.push_back(it->second);
    }
    auto [git, inserted] = dgroups.try_emplace(key);
    if (inserted) {
      for (const ntga::AggSpec& spec : g.aggs) {
        git->second.emplace_back(spec.func, /*distinct=*/false,
                                 spec.separator);
      }
    }
    for (size_t j = 0; j < g.aggs.size(); ++j) {
      const ntga::AggSpec& spec = g.aggs[j];
      if (spec.count_star) {
        git->second[j].AddRow();
      } else {
        auto it = a.find(spec.var);
        git->second[j].AddTerm(
            it == a.end() ? rdf::kInvalidTermId : it->second, *dict);
      }
    }
  });
  RAPIDA_RETURN_IF_ERROR(err);

  analytics::BindingTable out = base;
  if (dgroups.empty()) return out;

  // Index the stored rows by group key.
  std::vector<size_t> key_cols(g.group_by.size());
  for (size_t k = 0; k < g.group_by.size(); ++k) {
    bool found = false;
    for (size_t i = 0; i < cols.size() && !found; ++i) {
      if (!cols[i].is_agg && cols[i].idx == k) {
        key_cols[k] = i;
        found = true;
      }
    }
    if (!found) {
      return Status::Internal("group var '" + g.group_by[k] +
                              "' has no output column");
    }
  }
  std::map<std::vector<rdf::TermId>, size_t> base_index;
  for (size_t r = 0; r < out.NumRows(); ++r) {
    std::vector<rdf::TermId> key;
    key.reserve(key_cols.size());
    for (size_t i : key_cols) key.push_back(out.rows()[r][i]);
    base_index.emplace(std::move(key), r);
  }

  for (auto& [key, delta_aggs] : dgroups) {
    auto found = base_index.find(key);
    if (found == base_index.end()) {
      // A group born in the delta: its delta-only aggregate IS its value.
      std::vector<rdf::TermId> row(cols.size(), rdf::kInvalidTermId);
      for (size_t i = 0; i < cols.size(); ++i) {
        row[i] = cols[i].is_agg ? delta_aggs[cols[i].idx].Finalize(dict)
                                : key[cols[i].idx];
      }
      out.AddRow(std::move(row));
      continue;
    }
    std::vector<rdf::TermId>& row = out.mutable_rows()[found->second];
    for (size_t i = 0; i < cols.size(); ++i) {
      if (!cols[i].is_agg) continue;
      const ntga::AggSpec& spec = g.aggs[cols[i].idx];
      const analytics::Aggregator& da = delta_aggs[cols[i].idx];
      switch (spec.func) {
        case sparql::AggFunc::kCount:
        case sparql::AggFunc::kSum: {
          std::optional<double> old = dict->AsNumber(row[i]);
          if (!old.has_value()) {
            return Status::Internal("stored aggregate cell is not numeric");
          }
          double add = spec.func == sparql::AggFunc::kCount
                           ? static_cast<double>(da.count())
                           : da.sum();
          row[i] = analytics::InternNumber(dict, *old + add);
          break;
        }
        case sparql::AggFunc::kMin:
        case sparql::AggFunc::kMax: {
          rdf::TermId dv = da.Finalize(dict);
          if (dv == rdf::kInvalidTermId) break;  // no bound delta values
          if (row[i] == rdf::kInvalidTermId) {
            row[i] = dv;  // empty-group MIN/MAX was unbound
            break;
          }
          int cmp = analytics::CompareTerms(*dict, dv, row[i]);
          bool take = spec.func == sparql::AggFunc::kMin ? cmp < 0 : cmp > 0;
          if (take) row[i] = dv;
          break;
        }
        default:
          return Status::Internal("unpatchable aggregate in group-agg class");
      }
    }
  }
  return out;
}

}  // namespace

StatusOr<analytics::BindingTable> PatchResult(
    const analytics::AnalyticalQuery& query, IvmClass cls,
    const analytics::BindingTable& base, const DeltaPartition& delta,
    const rdf::GraphIndex& index, rdf::Dictionary* dict) {
  if (cls == IvmClass::kNone) {
    return Status::InvalidArgument("query result is not maintainable");
  }
  if (query.groupings.size() != 1) {
    return Status::Internal("maintainable artifact with multiple groupings");
  }
  const analytics::GroupingSubquery& g = query.groupings[0];
  if (base.vars() != g.columns) {
    return Status::Internal("stored schema does not match the query");
  }
  if (delta.empty()) return base;

  DeltaEnumerator enumerator(g, delta, index, *dict);
  if (!enumerator.Resolve()) return base;  // pattern matches nothing at all

  if (cls == IvmClass::kGroupAgg) {
    return PatchGroupAgg(g, base, &enumerator, dict);
  }

  analytics::BindingTable out = base;
  Status err = Status::OK();
  if (cls == IvmClass::kAppend) {
    enumerator.Enumerate([&](const Assignment& a) {
      if (!err.ok()) return;
      std::vector<rdf::TermId> row;
      Status s = ProjectRow(a, g.columns, &row);
      if (!s.ok()) {
        err = s;
        return;
      }
      out.AddRow(std::move(row));
    });
  } else {  // kDistinct
    std::set<std::vector<rdf::TermId>> seen(out.rows().begin(),
                                            out.rows().end());
    enumerator.Enumerate([&](const Assignment& a) {
      if (!err.ok()) return;
      std::vector<rdf::TermId> row;
      Status s = ProjectRow(a, g.columns, &row);
      if (!s.ok()) {
        err = s;
        return;
      }
      if (seen.insert(row).second) out.AddRow(std::move(row));
    });
  }
  RAPIDA_RETURN_IF_ERROR(err);
  return out;
}

}  // namespace rapida::storage
