#ifndef RAPIDA_ENGINES_ENGINE_H_
#define RAPIDA_ENGINES_ENGINE_H_

#include <cstdint>
#include <string>

#include "analytics/analytical_query.h"
#include "analytics/binding.h"
#include "engines/dataset.h"
#include "mapreduce/cluster.h"
#include "util/statusor.h"

namespace rapida::engine {

/// Execution report for one engine run: the MapReduce workflow (cycle
/// count, bytes, simulated time) plus the host wall time of the in-process
/// execution.
struct ExecStats {
  std::string engine;
  mr::WorkflowStats workflow;
  double wall_seconds = 0;
};

/// Per-engine tuning knobs (the ablation benches flip these).
struct EngineOptions {
  /// Tables at or below this stored size can be broadcast for map-joins
  /// (Hive's hive.mapjoin.smalltable.filesize analogue).
  uint64_t map_join_threshold_bytes = 256 * 1024;
  /// Enable map-joins at all (Hive engines).
  bool enable_map_joins = true;
  /// Map-side partial aggregation (Hive engines) / hash-based pre-
  /// aggregation in TG_AggJoin (NTGA engines, Alg. 3).
  bool partial_aggregation = true;
  /// RAPIDAnalytics only: evaluate independent Agg-Joins in one parallel
  /// cycle (Fig. 6b) vs sequentially (Fig. 6a).
  bool parallel_agg_join = true;
  /// Execute operators through the vectorized batch kernels (columnar
  /// split dispatch, open-addressing hash tables on the stamped key
  /// hashes, scratch-reusing codecs). Byte-identical to the scalar
  /// operators by contract — flipping this may only move wall time, never
  /// results, counters, or sim_seconds. Logged per node by the
  /// vectorized-kernels pass in EXPLAIN.
  bool vectorized_kernels = true;
  /// Factorized (d-representation) intermediates: star-join and inter-star
  /// join outputs stay compressed as group records (engines/factorized.h)
  /// whenever every downstream consumer up to an order-insensitive sink
  /// (GroupBy without SUM/AVG, DISTINCT projection) can consume them;
  /// Decompress happens only at those boundaries. Final results are
  /// byte-identical to the flat path; shuffled/materialized bytes shrink
  /// on multi-valued (MG-class) patterns. Surfaced per node as
  /// `factorize=` in EXPLAIN and as factorization_factor in metrics.
  bool factorized_intermediates = true;
  /// Greedy size-based join ordering: start the inter-star join chain at
  /// the smallest star and always join the smallest available neighbor
  /// next, instead of the query's textual order. Cycle counts are
  /// unchanged; intermediate sizes shrink on chain-shaped patterns.
  bool greedy_join_order = false;
  /// Partial-evaluation planning: classify each plan node as shard-local
  /// (fully evaluable on each shard without communication — map-only
  /// stages, and star joins over base VP/triplegroup inputs whose keys
  /// co-locate under the locality scheme) or residual (needs a cross-
  /// shard phase), and annotate est_shuffle_bytes accordingly. The
  /// executor enforces the local class: under the locality scheme a
  /// `peval=local` node that shuffles a byte across shards fails the run.
  bool partial_evaluation = true;
  /// Shards of the data plane the plan is prepared for. Must match the
  /// cluster's ClusterConfig::num_shards; 0/1 = unsharded. When > 1 the
  /// engine runs the scalar operator path (vectorized_kernels is
  /// ignored) because sharded shuffle accounting needs per-record
  /// attribution.
  int num_shards = 0;
  /// Placement scheme (must match ClusterConfig::sharding when sharded).
  mr::ShardingScheme sharding_scheme = mr::ShardingScheme::kHashSubject;
  /// Prefix prepended to every intermediate DFS file name the engine
  /// creates ("" for exclusive-cluster runs). Concurrent queries sharing
  /// one Dfs must each get a unique namespace (e.g. "q17:") so their
  /// intermediates never collide — the serving layer sets this per query.
  std::string tmp_namespace;
};

/// Common interface of the four compared systems. Execute runs the full
/// workflow on the dataset's DFS through `cluster`, returns the final
/// result table, and reports per-job statistics in `stats`.
///
/// Engines delete their intermediate DFS files before returning (also on
/// error, best effort), so consecutive runs see a clean DFS.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  virtual StatusOr<analytics::BindingTable> Execute(
      const analytics::AnalyticalQuery& query, Dataset* dataset,
      mr::Cluster* cluster, ExecStats* stats) = 0;
};

/// Runs `fallback` on behalf of an optimizing engine whose rewriting does
/// not apply to `query`, relabeling the stats with the outer engine's name
/// on success (the workflow genuinely ran, just under the fallback plan).
inline StatusOr<analytics::BindingTable> ExecuteFallback(
    Engine* fallback, const std::string& outer_name,
    const analytics::AnalyticalQuery& query, Dataset* dataset,
    mr::Cluster* cluster, ExecStats* stats) {
  auto result = fallback->Execute(query, dataset, cluster, stats);
  if (result.ok() && stats != nullptr) stats->engine = outer_name;
  return result;
}

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_ENGINE_H_
