#include "engines/ntga_exec.h"

#include <algorithm>
#include <atomic>
#include <set>

#include "analytics/aggregates.h"
#include "mapreduce/kernels.h"
#include "sparql/expr_eval.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rapida::engine {

using analytics::Aggregator;
using ntga::NestedTripleGroup;
using ntga::ResolvedPattern;
using ntga::ResolvedStar;
using ntga::TripleGroup;

namespace {

/// TG_OptGrpFilter with triple-level filter pushdown: after the star
/// projection, triples whose object fails a pushed single-variable filter
/// are removed; losing every triple of a *primary* property rejects the
/// whole group (secondary properties just end up absent — exactly the
/// per-pattern semantics the α conditions test later).
std::optional<TripleGroup> FilterStarWithFilters(
    const TripleGroup& tg, const ResolvedStar& star, rdf::TermId type_id,
    const PushedFilters& pushed, const rdf::Dictionary& dict) {
  std::optional<TripleGroup> base = ntga::FilterStar(tg, star, type_id);
  if (!base.has_value()) return std::nullopt;
  for (const ntga::ResolvedStarTriple& pt : star.triples) {
    if (pt.object_var.empty()) continue;
    auto it = pushed.find(pt.object_var);
    if (it == pushed.end() || it->second.empty()) continue;
    auto fails = [&](const rdf::Triple& t) {
      if (!(ntga::DataPropKey{t.p, t.p == type_id ? t.o : rdf::kInvalidTermId} ==
            pt.key)) {
        return false;  // triple belongs to another property
      }
      auto resolve = [&pt, &t](const std::string& v) {
        return v == pt.object_var ? t.o : rdf::kInvalidTermId;
      };
      for (const sparql::Expr* f : it->second) {
        if (!sparql::EffectiveBool(sparql::EvaluateExpr(*f, resolve, dict))) {
          return true;
        }
      }
      return false;
    };
    auto& triples = base->triples;
    triples.erase(std::remove_if(triples.begin(), triples.end(), fails),
                  triples.end());
    if (star.primary.count(pt.key) > 0 &&
        !base->HasProp(pt.key, type_id, pt.const_object)) {
      return std::nullopt;
    }
  }
  return base;
}

/// Per-input-tag role in a TG_AlphaJoin cycle.
struct TagRole {
  bool is_nested = false;  // accumulated nested input vs raw star file
  int star = -1;           // star to filter (raw inputs)
  bool left_side = true;
  ntga::JoinRole role = ntga::JoinRole::kSubject;
  ntga::DataPropKey prop;
};

/// Per-reduce-task scratch of the batch TG_AlphaJoin reduce: pools of
/// parsed nested groups per side (element capacity reused across key
/// groups), the merge target, and the emit buffer.
struct AlphaReduceScratch {
  std::vector<NestedTripleGroup> left, right;
  NestedTripleGroup merged;
  std::string buf;
};

/// Insertion-ordered multiAggMap replacement for the batch TG_AggJoin map:
/// HashIndex over the encoded "gid#grpkey" string, dense side tables.
struct MultiAggTable {
  mr::kernels::HashIndex index;
  std::vector<std::string> keys;
  std::vector<std::vector<Aggregator>> agg_rows;
};

}  // namespace

NtgaExec::NtgaExec(mr::Cluster* cluster, Dataset* dataset,
                   const EngineOptions& options, std::string tmp_prefix)
    : cluster_(cluster),
      dataset_(dataset),
      options_(options),
      tmp_prefix_(std::move(tmp_prefix)) {}

std::string NtgaExec::NextTmp(const std::string& hint) {
  std::string name =
      tmp_prefix_ + ":" + std::to_string(counter_++) + ":" + hint;
  temp_files_.push_back(name);
  return name;
}

void NtgaExec::Cleanup() {
  for (const std::string& f : temp_files_) {
    if (dataset_->dfs().Exists(f)) (void)dataset_->dfs().Delete(f);
  }
  temp_files_.clear();
}

StatusOr<PatternMatches> NtgaExec::ComputePatternMatches(
    const ResolvedPattern& pattern,
    const std::vector<ntga::AlphaCondition>& final_alphas,
    const PushedFilters& pushed_filters, const std::string& label) {
  RAPIDA_RETURN_IF_ERROR(dataset_->EnsureTripleGroups());
  const int num_stars = static_cast<int>(pattern.stars.size());

  auto star_files = [this, &pattern](int star) {
    std::set<rdf::TermId> props;
    for (const ntga::DataPropKey& k : pattern.stars[star].primary) {
      props.insert(k.property);
    }
    return dataset_->TgFilesCovering(props);
  };

  if (num_stars == 1) {
    PatternMatches out;
    out.star_files = star_files(0);
    return out;
  }

  auto shared_pattern = std::make_shared<ResolvedPattern>(pattern);
  auto shared_filters = std::make_shared<PushedFilters>(pushed_filters);
  const rdf::Dictionary* dict = &dataset_->dict();
  rdf::TermId type_id = pattern.type_id;

  std::vector<bool> joined(num_stars, false);
  std::vector<bool> edge_done(pattern.joins.size(), false);
  std::string acc_file;  // empty until the first cycle completes
  int acc_anchor = -1;   // star the accumulated side started from
  int cycle = 0;
  int remaining = num_stars;

  // Greedy size-based ordering: estimate each star's input volume as the
  // stored bytes of its covering triplegroup files.
  const bool greedy = options_.greedy_join_order;
  std::vector<uint64_t> star_bytes(num_stars, 0);
  if (greedy) {
    for (int s = 0; s < num_stars; ++s) {
      for (const std::string& f : star_files(s)) {
        auto file = dataset_->dfs().Open(f);
        if (file.ok()) star_bytes[s] += (*file)->stored_bytes;
      }
    }
  }

  while (remaining > 0 || acc_file.empty()) {
    // Pick the next edge: one endpoint joined (or, for the first cycle,
    // any edge). Greedy mode minimizes the estimated size of the stars
    // the cycle pulls in.
    int pick = -1;
    bool first_cycle = acc_file.empty();
    uint64_t best_cost = 0;
    for (size_t e = 0; e < pattern.joins.size(); ++e) {
      if (edge_done[e]) continue;
      const ntga::ResolvedJoin& edge = pattern.joins[e];
      bool eligible =
          first_cycle || joined[edge.star_a] != joined[edge.star_b];
      if (!eligible) continue;
      if (!greedy) {
        pick = static_cast<int>(e);
        break;
      }
      uint64_t cost = 0;
      if (first_cycle) {
        cost = star_bytes[edge.star_a] + star_bytes[edge.star_b];
      } else {
        cost = star_bytes[joined[edge.star_a] ? edge.star_b : edge.star_a];
      }
      if (pick < 0 || cost < best_cost) {
        pick = static_cast<int>(e);
        best_cost = cost;
      }
    }
    if (pick < 0) {
      return Status::InvalidArgument(
          "graph pattern is not connected by join variables");
    }
    edge_done[pick] = true;
    const ntga::ResolvedJoin& edge = pattern.joins[pick];

    // Which endpoint is already in the accumulated side?
    int left_star, right_star;
    ntga::JoinRole left_role, right_role;
    ntga::DataPropKey left_prop, right_prop;
    if (first_cycle || joined[edge.star_a]) {
      left_star = edge.star_a;
      left_role = edge.role_a;
      left_prop = edge.prop_a;
      right_star = edge.star_b;
      right_role = edge.role_b;
      right_prop = edge.prop_b;
    } else {
      left_star = edge.star_b;
      left_role = edge.role_b;
      left_prop = edge.prop_b;
      right_star = edge.star_a;
      right_role = edge.role_a;
      right_prop = edge.prop_a;
    }

    mr::JobConfig job;
    job.name = label + ":alphajoin" + std::to_string(cycle);
    std::vector<TagRole> roles;
    if (first_cycle) {
      for (const std::string& f : star_files(left_star)) {
        job.inputs.push_back(f);
        roles.push_back(TagRole{false, left_star, true, left_role, left_prop});
      }
      joined[left_star] = true;
      acc_anchor = left_star;
      --remaining;  // the anchor star joins the accumulated set
    } else {
      job.inputs.push_back(acc_file);
      roles.push_back(TagRole{true, -1, true, left_role, left_prop});
    }
    for (const std::string& f : star_files(right_star)) {
      job.inputs.push_back(f);
      roles.push_back(
          TagRole{false, right_star, false, right_role, right_prop});
    }
    joined[right_star] = true;
    --remaining;
    bool last_cycle = remaining == 0;

    std::string out_file = NextTmp(label + ":aj" + std::to_string(cycle));
    job.output = out_file;

    auto shared_roles = std::make_shared<std::vector<TagRole>>(roles);
    // The accumulated (nested) side's join endpoint is the left star of
    // the current edge.
    int nested_endpoint_star = left_star;
    if (options_.vectorized_kernels) {
      // Batch kernel: one dispatch per split, parse/serialize through the
      // scratch-reusing codec variants, emit the same records in the same
      // order as the scalar map below.
      job.map_batch = [shared_roles, shared_pattern, shared_filters, dict,
                       type_id, num_stars, nested_endpoint_star](
                          const mr::TaggedRecord* recs, size_t n,
                          mr::MapContext* ctx) {
        TripleGroup tg;
        NestedTripleGroup ntg;
        std::string key_buf, val_buf;
        for (size_t i = 0; i < n; ++i) {
          const TagRole& role = (*shared_roles)[recs[i].tag];
          const mr::Record& r = *recs[i].record;
          if (role.is_nested) {
            if (!ntga::ParseNestedInto(r.value, num_stars, &ntg).ok()) {
              continue;
            }
          } else {
            if (!ntga::ParseTripleGroupInto(r.value, &tg).ok()) continue;
            auto filtered =
                FilterStarWithFilters(tg, shared_pattern->stars[role.star],
                                      type_id, *shared_filters, *dict);
            if (!filtered.has_value()) continue;
            ntg.stars.resize(num_stars);
            for (int s = 0; s < num_stars; ++s) {
              if (s == role.star) continue;
              ntg.stars[s].subject = rdf::kInvalidTermId;
              ntg.stars[s].triples.clear();
            }
            ntg.stars[role.star] = std::move(*filtered);
          }
          int endpoint_star =
              role.is_nested ? nested_endpoint_star : role.star;
          std::vector<rdf::TermId> keys = ntga::JoinKeys(
              ntg, endpoint_star, role.role, role.prop, type_id);
          val_buf.assign(role.left_side ? "L|" : "R|");
          ntga::SerializeNestedTo(ntg, &val_buf);
          for (rdf::TermId key : keys) {
            key_buf.clear();
            mr::kernels::AppendDecimal(&key_buf, key);
            ctx->Emit(key_buf, val_buf);
          }
        }
      };
    } else {
      job.map = [shared_roles, shared_pattern, shared_filters, dict, type_id,
                 num_stars, nested_endpoint_star](
                    const mr::Record& r, int tag, mr::MapContext* ctx) {
        const TagRole& role = (*shared_roles)[tag];
        NestedTripleGroup ntg;
        if (role.is_nested) {
          auto parsed = ntga::ParseNested(r.value, num_stars);
          if (!parsed.ok()) return;
          ntg = std::move(*parsed);
        } else {
          auto tg = ntga::ParseTripleGroup(r.value);
          if (!tg.ok()) return;
          auto filtered =
              FilterStarWithFilters(*tg, shared_pattern->stars[role.star],
                                    type_id, *shared_filters, *dict);
          if (!filtered.has_value()) return;
          ntg.stars.resize(num_stars);
          ntg.stars[role.star] = std::move(*filtered);
        }
        int endpoint_star = role.is_nested ? nested_endpoint_star : role.star;
        std::vector<rdf::TermId> keys =
            ntga::JoinKeys(ntg, endpoint_star, role.role, role.prop, type_id);
        std::string serialized = ntga::SerializeNested(ntg);
        for (rdf::TermId key : keys) {
          ctx->Emit(std::to_string(key),
                    (role.left_side ? "L|" : "R|") + serialized);
        }
      };
    }

    auto alphas = std::make_shared<std::vector<ntga::AlphaCondition>>(
        last_cycle ? final_alphas : std::vector<ntga::AlphaCondition>{});
    if (options_.vectorized_kernels) {
      job.reduce = [alphas, type_id, num_stars](
                       std::string_view /*key*/, const mr::ValueSpan& values,
                       mr::ReduceContext* ctx) {
        AlphaReduceScratch* s = ctx->TaskState<AlphaReduceScratch>();
        size_t nleft = 0, nright = 0;
        for (std::string_view v : values) {
          if (v.size() < 2) continue;
          const bool is_left = v[0] == 'L';
          std::vector<NestedTripleGroup>& pool = is_left ? s->left : s->right;
          size_t& count = is_left ? nleft : nright;
          if (count == pool.size()) pool.emplace_back();
          if (!ntga::ParseNestedInto(v.substr(2), num_stars, &pool[count])
                   .ok()) {
            continue;
          }
          ++count;
        }
        for (size_t li = 0; li < nleft; ++li) {
          for (size_t ri = 0; ri < nright; ++ri) {
            const NestedTripleGroup& r = s->right[ri];
            s->merged = s->left[li];  // copy-assign reuses capacity
            for (int st = 0; st < num_stars; ++st) {
              if (r.IsFilled(st)) s->merged.stars[st] = r.stars[st];
            }
            if (!ntga::SatisfiesAnyAlpha(s->merged, *alphas, type_id)) {
              continue;
            }
            s->buf.clear();
            ntga::SerializeNestedTo(s->merged, &s->buf);
            ctx->Emit("", s->buf);
          }
        }
      };
    } else {
      job.reduce = [alphas, type_id, num_stars](
                       std::string_view /*key*/, const mr::ValueSpan& values,
                       mr::ReduceContext* ctx) {
        std::vector<NestedTripleGroup> left, right;
        for (std::string_view v : values) {
          if (v.size() < 2) continue;
          auto parsed = ntga::ParseNested(v.substr(2), num_stars);
          if (!parsed.ok()) continue;
          (v[0] == 'L' ? left : right).push_back(std::move(*parsed));
        }
        for (const NestedTripleGroup& l : left) {
          for (const NestedTripleGroup& r : right) {
            NestedTripleGroup merged = l;
            for (int s = 0; s < num_stars; ++s) {
              if (r.IsFilled(s)) merged.stars[s] = r.stars[s];
            }
            if (!ntga::SatisfiesAnyAlpha(merged, *alphas, type_id)) continue;
            ctx->Emit("", ntga::SerializeNested(merged));
          }
        }
      };
    }
    // Pure function of (key, values): reducers may run concurrently.
    job.reduce_parallel_safe = true;

    RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
    (void)stats;
    acc_file = out_file;
    ++cycle;
    (void)acc_anchor;
  }

  PatternMatches out;
  out.nested_file = acc_file;
  return out;
}

StatusOr<std::vector<analytics::BindingTable>> NtgaExec::RunAggJoins(
    const ResolvedPattern& pattern, const PatternMatches& matches,
    const PushedFilters& pushed_filters,
    const std::vector<NtgaGrouping>& groupings, bool parallel,
    const std::string& label, std::vector<std::string>* out_files) {
  const int num_stars = static_cast<int>(pattern.stars.size());
  const bool star_mode = matches.nested_file.empty();
  rdf::Dictionary* dict = &dataset_->dict();
  rdf::TermId type_id = pattern.type_id;
  auto shared_pattern = std::make_shared<ResolvedPattern>(pattern);
  auto shared_filters = std::make_shared<PushedFilters>(pushed_filters);

  // Job batches: all groupings in one cycle (parallel Agg-Join, Fig. 6b)
  // or one cycle each (Fig. 6a).
  std::vector<std::vector<int>> batches;
  if (parallel) {
    std::vector<int> all(groupings.size());
    for (size_t i = 0; i < groupings.size(); ++i) all[i] = static_cast<int>(i);
    batches.push_back(all);
  } else {
    for (size_t i = 0; i < groupings.size(); ++i) {
      batches.push_back({static_cast<int>(i)});
    }
  }

  std::vector<std::string> out_file_of(groupings.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    mr::JobConfig job;
    job.name = label + ":aggjoin" + (parallel ? "(parallel)" : "") +
               (batches.size() > 1 ? std::to_string(b) : "");
    if (star_mode) {
      job.inputs = matches.star_files;
    } else {
      job.inputs = {matches.nested_file};
    }
    std::string out_file =
        NextTmp(label + ":agg" + std::to_string(b));
    job.output = out_file;
    for (int g : batches[b]) out_file_of[g] = out_file;

    auto batch = std::make_shared<std::vector<int>>(batches[b]);
    auto shared_groupings =
        std::make_shared<std::vector<NtgaGrouping>>();
    for (const NtgaGrouping& g : groupings) {
      NtgaGrouping copy;
      copy.spec = g.spec;
      copy.pattern_vars = g.pattern_vars;
      copy.output_columns = g.output_columns;
      copy.mapping_predicate = g.mapping_predicate;
      copy.having = g.having;
      shared_groupings->push_back(std::move(copy));
    }

    // Per-mapper multiAggMap (Alg. 3): key "gid#grpkey" -> aggregators.
    // Lives in MapContext::TaskState so concurrent map tasks accumulate
    // into independent tables (flushed by map_finish below).
    using MultiAggMap = std::map<std::string, std::vector<Aggregator>>;
    bool partial = options_.partial_aggregation;

    auto process = [shared_groupings, batch, shared_pattern, dict, type_id,
                    partial](const NestedTripleGroup& ntg,
                             mr::MapContext* ctx) {
      MultiAggMap* multi_agg_map =
          partial ? ctx->TaskState<MultiAggMap>() : nullptr;
      for (int g : *batch) {
        const NtgaGrouping& grouping = (*shared_groupings)[g];
        if (!ntga::SatisfiesAlpha(ntg, grouping.spec.alpha, type_id)) {
          continue;
        }
        const size_t n_group = grouping.spec.group_vars.size();
        // Positions of group / agg vars within pattern_vars.
        // (Recomputed per call; pattern_vars is tiny.)
        auto pos_of = [&grouping](const std::string& v) {
          for (size_t i = 0; i < grouping.pattern_vars.size(); ++i) {
            if (grouping.pattern_vars[i] == v) return static_cast<int>(i);
          }
          return -1;
        };
        for (const std::vector<rdf::TermId>& mapping : ntga::ExpandBindings(
                 ntg, *shared_pattern, grouping.pattern_vars,
                 /*skip_unbound=*/true)) {
          if (grouping.mapping_predicate &&
              !grouping.mapping_predicate(mapping)) {
            continue;
          }
          std::vector<rdf::TermId> key;
          key.reserve(n_group);
          for (const std::string& v : grouping.spec.group_vars) {
            int i = pos_of(v);
            key.push_back(i < 0 ? rdf::kInvalidTermId : mapping[i]);
          }
          std::string map_key =
              std::to_string(g) + "#" + EncodeRow(key);
          if (partial) {
            auto [it, inserted] = multi_agg_map->emplace(
                map_key, std::vector<Aggregator>());
            if (inserted) {
              for (const ntga::AggSpec& a : grouping.spec.aggs) {
                it->second.emplace_back(a.func, false, a.separator);
              }
            }
            for (size_t a = 0; a < grouping.spec.aggs.size(); ++a) {
              const ntga::AggSpec& spec = grouping.spec.aggs[a];
              if (spec.count_star) {
                it->second[a].AddRow();
              } else {
                int i = pos_of(spec.var);
                it->second[a].AddTerm(
                    i < 0 ? rdf::kInvalidTermId : mapping[i], *dict);
              }
            }
          } else {
            std::vector<rdf::TermId> args;
            for (const ntga::AggSpec& spec : grouping.spec.aggs) {
              int i = pos_of(spec.var);
              args.push_back(spec.count_star || i < 0 ? rdf::kInvalidTermId
                                                      : mapping[i]);
            }
            ctx->Emit(map_key, "R|" + EncodeRow(args));
          }
        }
      }
    };

    // Batch variant of `process`: same per-mapping logic, but the partial
    // table is an insertion-ordered MultiAggTable and the key/value bytes
    // are built in reused buffers. Flush order differs from the scalar
    // std::map's sorted order; keys are unique per task and the shuffle
    // sorts by key, so the post-shuffle stream is identical.
    auto process_batch = [shared_groupings, batch, shared_pattern, dict,
                          type_id, partial](const NestedTripleGroup& ntg,
                                            MultiAggTable* table,
                                            std::string* key_buf,
                                            std::string* val_buf,
                                            ntga::BindingExpansion* exp,
                                            std::vector<rdf::TermId>* row_buf,
                                            mr::MapContext* ctx) {
      for (int g : *batch) {
        const NtgaGrouping& grouping = (*shared_groupings)[g];
        if (!ntga::SatisfiesAlpha(ntg, grouping.spec.alpha, type_id)) {
          continue;
        }
        auto pos_of = [&grouping](const std::string& v) {
          for (size_t i = 0; i < grouping.pattern_vars.size(); ++i) {
            if (grouping.pattern_vars[i] == v) return static_cast<int>(i);
          }
          return -1;
        };
        ntga::ExpandBindingsInto(ntg, *shared_pattern, grouping.pattern_vars,
                                 /*skip_unbound=*/true, exp);
        for (size_t r = 0; r < exp->num_rows; ++r) {
          const rdf::TermId* mapping = exp->row(r);
          if (grouping.mapping_predicate) {
            row_buf->assign(mapping, mapping + exp->width);
            if (!grouping.mapping_predicate(*row_buf)) continue;
          }
          key_buf->clear();
          mr::kernels::AppendDecimal(key_buf, static_cast<uint64_t>(g));
          *key_buf += '#';
          bool first = true;
          for (const std::string& v : grouping.spec.group_vars) {
            if (!first) *key_buf += ',';
            first = false;
            int i = pos_of(v);
            mr::kernels::AppendDecimal(
                key_buf, i < 0 ? rdf::kInvalidTermId : mapping[i]);
          }
          if (partial) {
            auto [id, inserted] = table->index.FindOrInsert(
                mr::HashKey(*key_buf),
                static_cast<uint32_t>(table->keys.size()),
                [&](uint32_t cand) { return table->keys[cand] == *key_buf; });
            if (inserted) {
              table->keys.push_back(*key_buf);
              table->agg_rows.emplace_back();
              for (const ntga::AggSpec& a : grouping.spec.aggs) {
                table->agg_rows.back().emplace_back(a.func, false,
                                                    a.separator);
              }
            }
            std::vector<Aggregator>& aggs = table->agg_rows[id];
            for (size_t a = 0; a < grouping.spec.aggs.size(); ++a) {
              const ntga::AggSpec& spec = grouping.spec.aggs[a];
              if (spec.count_star) {
                aggs[a].AddRow();
              } else {
                int i = pos_of(spec.var);
                aggs[a].AddTerm(i < 0 ? rdf::kInvalidTermId : mapping[i],
                                *dict);
              }
            }
          } else {
            val_buf->assign("R|");
            bool farg = true;
            for (const ntga::AggSpec& spec : grouping.spec.aggs) {
              if (!farg) *val_buf += ',';
              farg = false;
              int i = pos_of(spec.var);
              mr::kernels::AppendDecimal(
                  val_buf, spec.count_star || i < 0 ? rdf::kInvalidTermId
                                                    : mapping[i]);
            }
            ctx->Emit(*key_buf, *val_buf);
          }
        }
      }
    };
    auto flush_table = [](MultiAggTable* table, mr::MapContext* ctx) {
      for (size_t id = 0; id < table->keys.size(); ++id) {
        std::string value = "P";
        for (const Aggregator& a : table->agg_rows[id]) {
          value += '|';
          value += a.SerializePartial();
        }
        ctx->Emit(table->keys[id], value);
      }
    };

    if (options_.vectorized_kernels && star_mode) {
      job.map_batch = [shared_pattern, shared_filters, dict, type_id,
                       num_stars, process_batch, flush_table, partial](
                          const mr::TaggedRecord* recs, size_t n,
                          mr::MapContext* ctx) {
        MultiAggTable table;
        TripleGroup tg;
        NestedTripleGroup ntg;
        ntg.stars.resize(num_stars);
        std::string key_buf, val_buf;
        ntga::BindingExpansion exp;
        std::vector<rdf::TermId> row_buf;
        for (size_t i = 0; i < n; ++i) {
          if (!ntga::ParseTripleGroupInto(recs[i].record->value, &tg).ok()) {
            continue;
          }
          auto filtered = FilterStarWithFilters(
              tg, shared_pattern->stars[0], type_id, *shared_filters, *dict);
          if (!filtered.has_value()) continue;
          for (int s = 1; s < num_stars; ++s) {
            ntg.stars[s].subject = rdf::kInvalidTermId;
            ntg.stars[s].triples.clear();
          }
          ntg.stars[0] = std::move(*filtered);
          process_batch(ntg, &table, &key_buf, &val_buf, &exp, &row_buf, ctx);
        }
        if (partial) flush_table(&table, ctx);
      };
    } else if (options_.vectorized_kernels) {
      job.map_batch = [num_stars, process_batch, flush_table, partial](
                          const mr::TaggedRecord* recs, size_t n,
                          mr::MapContext* ctx) {
        MultiAggTable table;
        NestedTripleGroup ntg;
        std::string key_buf, val_buf;
        ntga::BindingExpansion exp;
        std::vector<rdf::TermId> row_buf;
        for (size_t i = 0; i < n; ++i) {
          if (!ntga::ParseNestedInto(recs[i].record->value, num_stars, &ntg)
                   .ok()) {
            continue;
          }
          process_batch(ntg, &table, &key_buf, &val_buf, &exp, &row_buf, ctx);
        }
        if (partial) flush_table(&table, ctx);
      };
    } else if (star_mode) {
      job.map = [shared_pattern, shared_filters, dict, type_id, num_stars,
                 process](const mr::Record& r, int, mr::MapContext* ctx) {
        auto tg = ntga::ParseTripleGroup(r.value);
        if (!tg.ok()) return;
        auto filtered = FilterStarWithFilters(
            *tg, shared_pattern->stars[0], type_id, *shared_filters, *dict);
        if (!filtered.has_value()) return;
        NestedTripleGroup ntg;
        ntg.stars.resize(num_stars);
        ntg.stars[0] = std::move(*filtered);
        process(ntg, ctx);
      };
    } else {
      job.map = [num_stars, process](const mr::Record& r, int,
                                     mr::MapContext* ctx) {
        auto parsed = ntga::ParseNested(r.value, num_stars);
        if (!parsed.ok()) return;
        process(*parsed, ctx);
      };
    }
    if (partial && !options_.vectorized_kernels) {
      job.map_finish = [](mr::MapContext* ctx) {
        MultiAggMap* multi_agg_map = ctx->TaskState<MultiAggMap>();
        for (auto& [key, aggs] : *multi_agg_map) {
          std::string value = "P";
          for (const Aggregator& a : aggs) {
            value += '|';
            value += a.SerializePartial();
          }
          ctx->Emit(key, value);
        }
        multi_agg_map->clear();
      };
    }

    const bool batch_reduce = options_.vectorized_kernels;
    job.reduce = [shared_groupings, dict, batch_reduce](
                     std::string_view key, const mr::ValueSpan& values,
                     mr::ReduceContext* ctx) {
      // Batch mode reuses per-task scratch across key groups; the
      // aggregator list itself must reset per group either way.
      struct Scratch {
        std::vector<rdf::TermId> args, row;
        std::string val_buf;
      };
      Scratch local;
      Scratch* s = batch_reduce ? ctx->TaskState<Scratch>() : &local;
      size_t hash_pos = key.find('#');
      if (hash_pos == std::string_view::npos) return;
      int64_t gid = 0;
      ParseInt64(key.substr(0, hash_pos), &gid);
      const NtgaGrouping& grouping = (*shared_groupings)[gid];
      std::vector<Aggregator> aggs;
      for (const ntga::AggSpec& a : grouping.spec.aggs) {
        aggs.emplace_back(a.func, false, a.separator);
      }
      for (std::string_view v : values) {
        if (v.empty()) continue;
        if (v[0] == 'P') {
          FieldTokenizer parts(v, '|');
          std::string_view part;
          parts.Next(&part);  // the "P" marker
          for (size_t a = 0; a < aggs.size() && parts.Next(&part); ++a) {
            auto partial = Aggregator::DeserializePartial(
                grouping.spec.aggs[a].func, part,
                grouping.spec.aggs[a].separator);
            if (partial.ok()) aggs[a].Merge(*partial, *dict);
          }
        } else if (v[0] == 'R') {
          DecodeRowInto(v.substr(2), &s->args);
          for (size_t a = 0; a < aggs.size(); ++a) {
            if (grouping.spec.aggs[a].count_star) {
              aggs[a].AddRow();
            } else if (a < s->args.size()) {
              aggs[a].AddTerm(s->args[a], *dict);
            }
          }
        }
      }
      DecodeRowInto(key.substr(hash_pos + 1), &s->row);
      for (Aggregator& a : aggs) s->row.push_back(a.Finalize(dict));
      s->val_buf.clear();
      AppendRow(&s->val_buf, s->row);
      ctx->Emit(key.substr(0, hash_pos), s->val_buf);
    };

    RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
    (void)stats;
  }

  // Collect per-grouping tables.
  std::vector<analytics::BindingTable> out;
  for (size_t g = 0; g < groupings.size(); ++g) {
    analytics::BindingTable table(groupings[g].output_columns);
    RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* f,
                            dataset_->dfs().Open(out_file_of[g]));
    std::string gid = std::to_string(g);
    for (const mr::Record& r : f->records) {
      if (r.key != gid) continue;
      std::vector<rdf::TermId> row = DecodeRow(r.value);
      row.resize(groupings[g].output_columns.size(), rdf::kInvalidTermId);
      table.AddRow(std::move(row));
    }
    // GROUP BY ALL over no qualifying detail still yields the default row.
    if (groupings[g].spec.group_vars.empty() && table.NumRows() == 0) {
      std::vector<rdf::TermId> row;
      for (const ntga::AggSpec& a : groupings[g].spec.aggs) {
        Aggregator empty(a.func, false, a.separator);
        row.push_back(empty.Finalize(dict));
      }
      table.AddRow(std::move(row));
    }
    if (groupings[g].having != nullptr) {
      analytics::FilterRowsByExpr(&table, *groupings[g].having, *dict);
    }
    out.push_back(std::move(table));
  }
  if (out_files != nullptr) *out_files = out_file_of;
  return out;
}

StatusOr<TableRef> NtgaExec::ExpandToTable(
    const ResolvedPattern& pattern, const PatternMatches& matches,
    const PushedFilters& pushed_filters,
    const std::vector<std::string>& columns, RowPredicate mapping_predicate,
    const std::string& label) {
  const int num_stars = static_cast<int>(pattern.stars.size());
  const bool star_mode = matches.nested_file.empty();
  rdf::Dictionary* dict = &dataset_->dict();
  rdf::TermId type_id = pattern.type_id;
  auto shared_pattern = std::make_shared<ResolvedPattern>(pattern);
  auto shared_filters = std::make_shared<PushedFilters>(pushed_filters);
  auto shared_vars = std::make_shared<std::vector<std::string>>(columns);

  mr::JobConfig job;
  job.name = label + ":expand (map-only)";
  if (star_mode) {
    job.inputs = matches.star_files;
  } else {
    job.inputs = {matches.nested_file};
  }
  std::string out_file = NextTmp(label + ":rows");
  job.output = out_file;

  auto process = [shared_pattern, shared_vars, mapping_predicate](
                     const NestedTripleGroup& ntg, mr::MapContext* ctx) {
    // skip_unbound=false: a star the match did not fill (never the case
    // for all-primary patterns) or an absent optional property stays NULL
    // in the row, matching the relational NULL convention downstream.
    uint64_t emitted = 0;
    for (const std::vector<rdf::TermId>& mapping : ntga::ExpandBindings(
             ntg, *shared_pattern, *shared_vars, /*skip_unbound=*/false)) {
      if (mapping_predicate && !mapping_predicate(mapping)) continue;
      ctx->Emit("", EncodeRow(mapping));
      ++emitted;
    }
    // The triplegroup is the NTGA engines' native factorized form: this
    // expansion is the decompress boundary, so each group that produced
    // rows books itself against the flat rows it stood for.
    if (emitted > 0) ctx->NoteFactorizedGroup(emitted);
  };

  if (options_.vectorized_kernels) {
    job.map_batch = [shared_pattern, shared_filters, shared_vars, dict,
                     type_id, num_stars, star_mode, mapping_predicate](
                        const mr::TaggedRecord* recs, size_t n,
                        mr::MapContext* ctx) {
      TripleGroup tg;
      NestedTripleGroup ntg;
      ntg.stars.resize(num_stars);
      ntga::BindingExpansion exp;
      std::vector<rdf::TermId> row_buf;
      std::string val_buf;
      for (size_t i = 0; i < n; ++i) {
        if (star_mode) {
          if (!ntga::ParseTripleGroupInto(recs[i].record->value, &tg).ok()) {
            continue;
          }
          auto filtered = FilterStarWithFilters(
              tg, shared_pattern->stars[0], type_id, *shared_filters, *dict);
          if (!filtered.has_value()) continue;
          for (int s = 1; s < num_stars; ++s) {
            ntg.stars[s].subject = rdf::kInvalidTermId;
            ntg.stars[s].triples.clear();
          }
          ntg.stars[0] = std::move(*filtered);
        } else if (!ntga::ParseNestedInto(recs[i].record->value, num_stars,
                                          &ntg)
                        .ok()) {
          continue;
        }
        ntga::ExpandBindingsInto(ntg, *shared_pattern, *shared_vars,
                                 /*skip_unbound=*/false, &exp);
        uint64_t emitted = 0;
        for (size_t r = 0; r < exp.num_rows; ++r) {
          const rdf::TermId* mapping = exp.row(r);
          if (mapping_predicate) {
            row_buf.assign(mapping, mapping + exp.width);
            if (!mapping_predicate(row_buf)) continue;
          }
          val_buf.clear();
          AppendRow(&val_buf, mapping, exp.width);
          ctx->Emit("", val_buf);
          ++emitted;
        }
        if (emitted > 0) ctx->NoteFactorizedGroup(emitted);
      }
    };
  } else if (star_mode) {
    job.map = [shared_pattern, shared_filters, dict, type_id, num_stars,
               process](const mr::Record& r, int, mr::MapContext* ctx) {
      auto tg = ntga::ParseTripleGroup(r.value);
      if (!tg.ok()) return;
      auto filtered = FilterStarWithFilters(
          *tg, shared_pattern->stars[0], type_id, *shared_filters, *dict);
      if (!filtered.has_value()) return;
      NestedTripleGroup ntg;
      ntg.stars.resize(num_stars);
      ntg.stars[0] = std::move(*filtered);
      process(ntg, ctx);
    };
  } else {
    job.map = [num_stars, process](const mr::Record& r, int,
                                   mr::MapContext* ctx) {
      auto parsed = ntga::ParseNested(r.value, num_stars);
      if (!parsed.ok()) return;
      process(*parsed, ctx);
    };
  }
  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
  (void)stats;
  return TableRef{out_file, columns};
}

StatusOr<analytics::BindingTable> NtgaExec::FinalJoinProject(
    std::vector<analytics::BindingTable> agg_tables,
    const std::vector<sparql::SelectItem>& items,
    const std::vector<std::string>& agg_files, const std::string& label) {
  rdf::Dictionary* dict = &dataset_->dict();
  ProjectedResult projected =
      JoinAndProject(std::move(agg_tables), items, dict);

  // One map-only cycle: scan the aggregated outputs, emit the joined
  // projection once.
  mr::JobConfig job;
  job.name = label + ":finaljoin (map-only)";
  std::set<std::string> distinct_inputs(agg_files.begin(), agg_files.end());
  job.inputs.assign(distinct_inputs.begin(), distinct_inputs.end());
  std::string out_file = NextTmp(label + ":result");
  job.output = out_file;
  auto rows = std::make_shared<std::vector<std::string>>(projected.rows);
  // Exactly one of the (possibly concurrent) mappers emits the rows.
  auto emitted = std::make_shared<std::atomic<bool>>(false);
  job.map = [](const mr::Record&, int, mr::MapContext*) {};
  job.map_finish = [rows, emitted](mr::MapContext* ctx) {
    if (emitted->exchange(true)) return;
    for (const std::string& r : *rows) ctx->Emit("", r);
  };
  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
  (void)stats;

  analytics::BindingTable result(projected.columns);
  for (const std::string& r : projected.rows) {
    std::vector<rdf::TermId> row = DecodeRow(r);
    row.resize(projected.columns.size(), rdf::kInvalidTermId);
    result.AddRow(std::move(row));
  }
  return result;
}

}  // namespace rapida::engine
