#include "engines/hive_mqo.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "engines/var_translate.h"
#include "ntga/overlap.h"
#include "util/logging.h"

namespace rapida::engine {

namespace {

/// Converts a CompositePattern into a StarGraph the relational compiler
/// understands (composite stars are ordinary star patterns whose secondary
/// triples will be outer-joined). Secondary triples with a CONSTANT object
/// are rewritten to fresh marker variables: compiled as-is, the equality
/// would fold into the VP scan and a value mismatch would look exactly
/// like the property being absent — unobservable by the extraction step,
/// which would then over-match (found by differential fuzzing). The
/// equality itself is returned in `sec_const_filters` as an extraction
/// filter for the owning pattern.
ntga::StarGraph CompositeToStarGraph(
    const ntga::CompositePattern& comp,
    std::vector<std::vector<sparql::ExprPtr>>* sec_const_filters) {
  ntga::StarGraph out;
  int marker = 0;
  for (size_t s = 0; s < comp.stars.size(); ++s) {
    const ntga::CompositeStar& cs = comp.stars[s];
    ntga::StarPattern sp;
    sp.subject_var = cs.subject_var;
    for (ntga::StarTriple t : cs.triples) {
      if (cs.secondary.count(t.prop) > 0 && !t.prop.is_type() &&
          !t.object.is_var) {
        std::string var = "_sec" + std::to_string(marker++);
        for (size_t p = 0; p < comp.pattern_secondary.size(); ++p) {
          auto it = comp.pattern_secondary[p].find(static_cast<int>(s));
          if (it != comp.pattern_secondary[p].end() &&
              it->second.count(t.prop) > 0) {
            (*sec_const_filters)[p].push_back(sparql::Expr::MakeCompare(
                "=", sparql::Expr::MakeVar(var),
                sparql::Expr::MakeLiteral(t.object.term)));
          }
        }
        t.object = sparql::TermOrVar::Var(var);
      }
      sp.triples.push_back(std::move(t));
    }
    out.stars.push_back(std::move(sp));
  }
  out.joins = comp.joins;
  return out;
}

/// Object variables of secondary triples, per pattern, read off the
/// rewritten composite graph so constant-object markers are included.
std::set<std::string> SecondaryVars(const ntga::CompositePattern& comp,
                                    const ntga::StarGraph& graph,
                                    size_t pattern_index) {
  std::set<std::string> out;
  for (size_t s = 0; s < graph.stars.size(); ++s) {
    auto it = comp.pattern_secondary[pattern_index].find(static_cast<int>(s));
    if (it == comp.pattern_secondary[pattern_index].end()) continue;
    for (const ntga::StarTriple& t : graph.stars[s].triples) {
      if (it->second.count(t.prop) == 0) continue;
      std::string v = t.ObjectVar();
      if (!v.empty()) out.insert(v);
    }
  }
  return out;
}

}  // namespace

StatusOr<analytics::BindingTable> HiveMqoEngine::Execute(
    const analytics::AnalyticalQuery& query, Dataset* dataset,
    mr::Cluster* cluster, ExecStats* stats) {
  // MQO rewriting applies to exactly two overlapping graph patterns.
  if (query.groupings.size() != 2) {
    auto result = fallback_.Execute(query, dataset, cluster, stats);
    if (result.ok() && stats != nullptr) stats->engine = name();
    return result;
  }
  ntga::OverlapResult overlap = ntga::FindOverlap(query.groupings[0].pattern,
                                                  query.groupings[1].pattern);
  if (!overlap.overlaps) {
    RAPIDA_LOG(Info) << "MQO fallback (no overlap): " << overlap.explanation;
    auto result = fallback_.Execute(query, dataset, cluster, stats);
    if (result.ok() && stats != nullptr) stats->engine = name();
    return result;
  }

  auto start = std::chrono::steady_clock::now();
  RAPIDA_ASSIGN_OR_RETURN(
      ntga::CompositePattern comp,
      ntga::BuildComposite(query.groupings[0].pattern,
                           query.groupings[1].pattern, overlap));

  RAPIDA_RETURN_IF_ERROR(dataset->EnsureVpTables());
  cluster->ResetHistory();
  RelationalOps ops(cluster, dataset, options_, options_.tmp_namespace + "tmp:mqo");
  const rdf::Dictionary& dict = dataset->graph().dict();

  // ---- step 1: composite pattern with LEFT OUTER secondary joins ----
  std::vector<std::vector<sparql::ExprPtr>> sec_const_filters(2);
  ntga::StarGraph composite_graph =
      CompositeToStarGraph(comp, &sec_const_filters);
  std::set<ntga::PropKey> outer_props;
  for (const ntga::CompositeStar& cs : comp.stars) {
    outer_props.insert(cs.secondary.begin(), cs.secondary.end());
  }

  // A filter may only be evaluated on the composite when BOTH patterns
  // carry the identical (translated) filter — then dropping the composite
  // row is what each pattern would have done anyway, and it is evaluated
  // once. Everything else (secondary-variable filters, and filters only
  // one pattern has, even over shared variables) must wait for that
  // pattern's extraction: dropping a composite row would wrongly remove it
  // from the *other* pattern too.
  std::vector<std::set<std::string>> pattern_sec_vars = {
      SecondaryVars(comp, composite_graph, 0),
      SecondaryVars(comp, composite_graph, 1)};
  std::vector<std::vector<sparql::ExprPtr>> translated_filters(2);
  std::vector<std::set<std::string>> filter_sigs(2);
  for (size_t p = 0; p < 2; ++p) {
    for (const auto& f : query.groupings[p].filters) {
      sparql::ExprPtr translated = MapExprVars(*f, comp.var_map[p]);
      filter_sigs[p].insert(translated->ToString());
      translated_filters[p].push_back(std::move(translated));
    }
  }
  std::vector<sparql::ExprPtr> composite_filters;
  std::vector<std::vector<sparql::ExprPtr>> extraction_filters(2);
  std::set<std::string> seen_composite;
  for (size_t p = 0; p < 2; ++p) {
    for (sparql::ExprPtr& translated : translated_filters[p]) {
      std::vector<std::string> vars;
      translated->CollectVars(&vars);
      bool touches_secondary = false;
      for (const std::string& v : vars) {
        if (pattern_sec_vars[p].count(v) > 0) touches_secondary = true;
      }
      std::string sig = translated->ToString();
      if (!touches_secondary && filter_sigs[1 - p].count(sig) > 0) {
        if (seen_composite.insert(sig).second) {
          composite_filters.push_back(std::move(translated));
        }
        continue;  // the other pattern's copy is deduped by seen_composite
      }
      extraction_filters[p].push_back(std::move(translated));
    }
    // Constant-object secondary triples: the marker variable must carry
    // the pattern's constant (presence alone is checked via sec_idx).
    for (sparql::ExprPtr& eq : sec_const_filters[p]) {
      extraction_filters[p].push_back(std::move(eq));
    }
  }
  std::vector<const sparql::Expr*> composite_filter_ptrs;
  for (const auto& f : composite_filters) {
    composite_filter_ptrs.push_back(f.get());
  }

  auto q_opt = CompileHivePattern(&ops, dataset, composite_graph,
                                  composite_filter_ptrs, &outer_props,
                                  "qopt");
  if (!q_opt.ok()) {
    ops.Cleanup();
    return q_opt.status();
  }

  // ---- steps 2+3 per original pattern ----
  std::vector<TableRef> grouping_tables;
  for (size_t p = 0; p < 2; ++p) {
    const analytics::GroupingSubquery& grouping = query.groupings[p];
    // Extraction: rows where every pattern-p secondary variable is bound,
    // plus the pattern's secondary filters; DISTINCT over the pattern's
    // full (translated) variable set restores the pattern's multiplicity.
    std::vector<std::string> pattern_vars;
    for (const auto& [orig, composite_var] : comp.var_map[p]) {
      if (std::find(pattern_vars.begin(), pattern_vars.end(),
                    composite_var) == pattern_vars.end()) {
        pattern_vars.push_back(composite_var);
      }
    }
    std::vector<std::string> sec_vars(pattern_sec_vars[p].begin(),
                                      pattern_sec_vars[p].end());
    std::vector<const sparql::Expr*> extr_filters;
    for (const auto& f : extraction_filters[p]) extr_filters.push_back(f.get());
    RowPredicate filter_pred =
        CompilePredicate(extr_filters, q_opt->columns, &dict);
    std::vector<int> sec_idx;
    for (const std::string& v : sec_vars) {
      int i = q_opt->ColumnIndex(v);
      if (i >= 0) sec_idx.push_back(i);
    }
    RowPredicate keep = [sec_idx, filter_pred](
                            const std::vector<rdf::TermId>& row) {
      for (int i : sec_idx) {
        if (row[i] == rdf::kInvalidTermId) return false;
      }
      return filter_pred == nullptr || filter_pred(row);
    };
    std::string label = "p" + std::to_string(p);
    auto extracted = ops.DistinctProject(label + ":extract", *q_opt,
                                         pattern_vars, keep);
    if (!extracted.ok()) {
      ops.Cleanup();
      return extracted.status();
    }

    // Aggregation on the extracted pattern table (translated variables),
    // then rename the output columns back to the subquery's names.
    std::vector<std::string> translated_keys =
        MapVars(grouping.group_by, comp.var_map[p]);
    std::vector<RelationalOps::AggColumn> aggs;
    for (const ntga::AggSpec& a : grouping.aggs) {
      aggs.push_back(RelationalOps::AggColumn{
          a.func, MapVar(a.var, comp.var_map[p]), a.count_star,
          a.output_name, a.separator});
    }
    std::vector<std::string> grouped_columns = translated_keys;
    for (const ntga::AggSpec& a : grouping.aggs) {
      grouped_columns.push_back(a.output_name);
    }
    RowPredicate having;
    sparql::ExprPtr translated_having;
    if (grouping.having != nullptr) {
      translated_having = MapExprVars(*grouping.having, comp.var_map[p]);
      having = CompilePredicate({translated_having.get()}, grouped_columns,
                                &dict);
    }
    auto grouped = ops.GroupBy(label + ":groupby", *extracted,
                               translated_keys, aggs, having);
    if (!grouped.ok()) {
      ops.Cleanup();
      return grouped.status();
    }
    TableRef renamed = *grouped;
    for (size_t k = 0; k < grouping.group_by.size(); ++k) {
      renamed.columns[k] = grouping.group_by[k];
    }
    grouping_tables.push_back(std::move(renamed));
  }

  auto final_table =
      ops.FinalJoinProject("final", grouping_tables, query.top_items);
  if (!final_table.ok()) {
    ops.Cleanup();
    return final_table.status();
  }
  auto result = ops.ReadTable(*final_table);
  ops.Cleanup();
  if (result.ok()) {
    analytics::ApplySolutionModifiers(query, dataset->dict(), &*result);
  }
  if (stats != nullptr) {
    stats->engine = name();
    stats->workflow.jobs = cluster->history();
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return result;
}

}  // namespace rapida::engine
