#include "engines/hive_mqo.h"

#include <set>

#include "plan/executor.h"
#include "plan/planner.h"
#include "util/logging.h"

namespace rapida::engine {

// Secondary constant-object triples are rewritten to fresh marker
// variables: compiled as-is, the equality would fold into the VP scan and
// a value mismatch would look exactly like the property being absent —
// unobservable by the extraction step, which would then over-match (found
// by differential fuzzing).
ntga::StarGraph CompositeToStarGraph(
    const ntga::CompositePattern& comp,
    std::vector<std::vector<sparql::ExprPtr>>* sec_const_filters) {
  ntga::StarGraph out;
  int marker = 0;
  for (size_t s = 0; s < comp.stars.size(); ++s) {
    const ntga::CompositeStar& cs = comp.stars[s];
    ntga::StarPattern sp;
    sp.subject_var = cs.subject_var;
    for (ntga::StarTriple t : cs.triples) {
      if (cs.secondary.count(t.prop) > 0 && !t.prop.is_type() &&
          !t.object.is_var) {
        std::string var = "_sec" + std::to_string(marker++);
        for (size_t p = 0; p < comp.pattern_secondary.size(); ++p) {
          auto it = comp.pattern_secondary[p].find(static_cast<int>(s));
          if (it != comp.pattern_secondary[p].end() &&
              it->second.count(t.prop) > 0) {
            (*sec_const_filters)[p].push_back(sparql::Expr::MakeCompare(
                "=", sparql::Expr::MakeVar(var),
                sparql::Expr::MakeLiteral(t.object.term)));
          }
        }
        t.object = sparql::TermOrVar::Var(var);
      }
      sp.triples.push_back(std::move(t));
    }
    out.stars.push_back(std::move(sp));
  }
  out.joins = comp.joins;
  return out;
}

std::set<std::string> SecondaryVars(const ntga::CompositePattern& comp,
                                    const ntga::StarGraph& graph,
                                    size_t pattern_index) {
  std::set<std::string> out;
  for (size_t s = 0; s < graph.stars.size(); ++s) {
    auto it = comp.pattern_secondary[pattern_index].find(static_cast<int>(s));
    if (it == comp.pattern_secondary[pattern_index].end()) continue;
    for (const ntga::StarTriple& t : graph.stars[s].triples) {
      if (it->second.count(t.prop) == 0) continue;
      std::string v = t.ObjectVar();
      if (!v.empty()) out.insert(v);
    }
  }
  return out;
}

StatusOr<analytics::BindingTable> HiveMqoEngine::Execute(
    const analytics::AnalyticalQuery& query, Dataset* dataset,
    mr::Cluster* cluster, ExecStats* stats) {
  // MQO rewriting applies to exactly two overlapping graph patterns.
  if (query.groupings.size() != 2) {
    return ExecuteFallback(&fallback_, name(), query, dataset, cluster,
                           stats);
  }
  // The rewriting itself (filter classification, Q_OPT compilation, the
  // per-pattern extraction + GROUP BY pipeline) lives in plan::PlanHiveMqo.
  RAPIDA_ASSIGN_OR_RETURN(plan::PhysicalPlan physical,
                          plan::PlanHiveMqo(query, dataset, options_));
  if (!physical.fallback_reason.empty()) {
    RAPIDA_LOG(Info) << "MQO fallback (no overlap): "
                     << physical.fallback_reason;
    return ExecuteFallback(&fallback_, name(), query, dataset, cluster,
                           stats);
  }
  return plan::RunPlanAsEngine(physical, dataset, cluster, options_, stats);
}

}  // namespace rapida::engine
