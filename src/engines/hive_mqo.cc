#include "engines/hive_mqo.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "engines/var_translate.h"
#include "ntga/overlap.h"
#include "util/logging.h"

namespace rapida::engine {

namespace {

/// Converts a CompositePattern into a StarGraph the relational compiler
/// understands (composite stars are ordinary star patterns whose secondary
/// triples will be outer-joined).
ntga::StarGraph CompositeToStarGraph(const ntga::CompositePattern& comp) {
  ntga::StarGraph out;
  for (const ntga::CompositeStar& cs : comp.stars) {
    ntga::StarPattern sp;
    sp.subject_var = cs.subject_var;
    sp.triples = cs.triples;
    out.stars.push_back(std::move(sp));
  }
  out.joins = comp.joins;
  return out;
}

/// Object variables of secondary triples, per pattern.
std::set<std::string> SecondaryVars(const ntga::CompositePattern& comp,
                                    size_t pattern_index) {
  std::set<std::string> out;
  for (size_t s = 0; s < comp.stars.size(); ++s) {
    const ntga::CompositeStar& cs = comp.stars[s];
    auto it = comp.pattern_secondary[pattern_index].find(static_cast<int>(s));
    if (it == comp.pattern_secondary[pattern_index].end()) continue;
    for (const ntga::StarTriple& t : cs.triples) {
      if (it->second.count(t.prop) == 0) continue;
      std::string v = t.ObjectVar();
      if (!v.empty()) out.insert(v);
    }
  }
  return out;
}

}  // namespace

StatusOr<analytics::BindingTable> HiveMqoEngine::Execute(
    const analytics::AnalyticalQuery& query, Dataset* dataset,
    mr::Cluster* cluster, ExecStats* stats) {
  // MQO rewriting applies to exactly two overlapping graph patterns.
  if (query.groupings.size() != 2) {
    auto result = fallback_.Execute(query, dataset, cluster, stats);
    if (result.ok() && stats != nullptr) stats->engine = name();
    return result;
  }
  ntga::OverlapResult overlap = ntga::FindOverlap(query.groupings[0].pattern,
                                                  query.groupings[1].pattern);
  if (!overlap.overlaps) {
    RAPIDA_LOG(Info) << "MQO fallback (no overlap): " << overlap.explanation;
    auto result = fallback_.Execute(query, dataset, cluster, stats);
    if (result.ok() && stats != nullptr) stats->engine = name();
    return result;
  }

  auto start = std::chrono::steady_clock::now();
  RAPIDA_ASSIGN_OR_RETURN(
      ntga::CompositePattern comp,
      ntga::BuildComposite(query.groupings[0].pattern,
                           query.groupings[1].pattern, overlap));

  RAPIDA_RETURN_IF_ERROR(dataset->EnsureVpTables());
  cluster->ResetHistory();
  RelationalOps ops(cluster, dataset, options_, "tmp:mqo");
  const rdf::Dictionary& dict = dataset->graph().dict();

  // ---- step 1: composite pattern with LEFT OUTER secondary joins ----
  ntga::StarGraph composite_graph = CompositeToStarGraph(comp);
  std::set<ntga::PropKey> outer_props;
  for (const ntga::CompositeStar& cs : comp.stars) {
    outer_props.insert(cs.secondary.begin(), cs.secondary.end());
  }

  // Shared (primary-variable) filters can be evaluated on the composite;
  // per-pattern secondary filters must wait for extraction (dropping a
  // composite row would wrongly remove it from the *other* pattern too).
  std::vector<std::set<std::string>> pattern_sec_vars = {
      SecondaryVars(comp, 0), SecondaryVars(comp, 1)};
  std::vector<sparql::ExprPtr> composite_filters;
  std::vector<std::vector<sparql::ExprPtr>> extraction_filters(2);
  std::set<std::string> seen_composite;
  for (size_t p = 0; p < 2; ++p) {
    for (const auto& f : query.groupings[p].filters) {
      sparql::ExprPtr translated = MapExprVars(*f, comp.var_map[p]);
      std::vector<std::string> vars;
      translated->CollectVars(&vars);
      bool touches_secondary = false;
      for (const std::string& v : vars) {
        if (pattern_sec_vars[p].count(v) > 0) touches_secondary = true;
      }
      if (touches_secondary) {
        extraction_filters[p].push_back(std::move(translated));
      } else {
        // Shared filter: both patterns carry it (same-filter scope);
        // evaluate once.
        std::string sig = translated->ToString();
        if (seen_composite.insert(sig).second) {
          composite_filters.push_back(std::move(translated));
        }
      }
    }
  }
  std::vector<const sparql::Expr*> composite_filter_ptrs;
  for (const auto& f : composite_filters) {
    composite_filter_ptrs.push_back(f.get());
  }

  auto q_opt = CompileHivePattern(&ops, dataset, composite_graph,
                                  composite_filter_ptrs, &outer_props,
                                  "qopt");
  if (!q_opt.ok()) {
    ops.Cleanup();
    return q_opt.status();
  }

  // ---- steps 2+3 per original pattern ----
  std::vector<TableRef> grouping_tables;
  for (size_t p = 0; p < 2; ++p) {
    const analytics::GroupingSubquery& grouping = query.groupings[p];
    // Extraction: rows where every pattern-p secondary variable is bound,
    // plus the pattern's secondary filters; DISTINCT over the pattern's
    // full (translated) variable set restores the pattern's multiplicity.
    std::vector<std::string> pattern_vars;
    for (const auto& [orig, composite_var] : comp.var_map[p]) {
      if (std::find(pattern_vars.begin(), pattern_vars.end(),
                    composite_var) == pattern_vars.end()) {
        pattern_vars.push_back(composite_var);
      }
    }
    std::vector<std::string> sec_vars(pattern_sec_vars[p].begin(),
                                      pattern_sec_vars[p].end());
    std::vector<const sparql::Expr*> extr_filters;
    for (const auto& f : extraction_filters[p]) extr_filters.push_back(f.get());
    RowPredicate filter_pred =
        CompilePredicate(extr_filters, q_opt->columns, &dict);
    std::vector<int> sec_idx;
    for (const std::string& v : sec_vars) {
      int i = q_opt->ColumnIndex(v);
      if (i >= 0) sec_idx.push_back(i);
    }
    RowPredicate keep = [sec_idx, filter_pred](
                            const std::vector<rdf::TermId>& row) {
      for (int i : sec_idx) {
        if (row[i] == rdf::kInvalidTermId) return false;
      }
      return filter_pred == nullptr || filter_pred(row);
    };
    std::string label = "p" + std::to_string(p);
    auto extracted = ops.DistinctProject(label + ":extract", *q_opt,
                                         pattern_vars, keep);
    if (!extracted.ok()) {
      ops.Cleanup();
      return extracted.status();
    }

    // Aggregation on the extracted pattern table (translated variables),
    // then rename the output columns back to the subquery's names.
    std::vector<std::string> translated_keys =
        MapVars(grouping.group_by, comp.var_map[p]);
    std::vector<RelationalOps::AggColumn> aggs;
    for (const ntga::AggSpec& a : grouping.aggs) {
      aggs.push_back(RelationalOps::AggColumn{
          a.func, MapVar(a.var, comp.var_map[p]), a.count_star,
          a.output_name, a.separator});
    }
    std::vector<std::string> grouped_columns = translated_keys;
    for (const ntga::AggSpec& a : grouping.aggs) {
      grouped_columns.push_back(a.output_name);
    }
    RowPredicate having;
    sparql::ExprPtr translated_having;
    if (grouping.having != nullptr) {
      translated_having = MapExprVars(*grouping.having, comp.var_map[p]);
      having = CompilePredicate({translated_having.get()}, grouped_columns,
                                &dict);
    }
    auto grouped = ops.GroupBy(label + ":groupby", *extracted,
                               translated_keys, aggs, having);
    if (!grouped.ok()) {
      ops.Cleanup();
      return grouped.status();
    }
    TableRef renamed = *grouped;
    for (size_t k = 0; k < grouping.group_by.size(); ++k) {
      renamed.columns[k] = grouping.group_by[k];
    }
    grouping_tables.push_back(std::move(renamed));
  }

  auto final_table =
      ops.FinalJoinProject("final", grouping_tables, query.top_items);
  if (!final_table.ok()) {
    ops.Cleanup();
    return final_table.status();
  }
  auto result = ops.ReadTable(*final_table);
  ops.Cleanup();
  if (result.ok()) {
    analytics::ApplySolutionModifiers(query, dataset->dict(), &*result);
  }
  if (stats != nullptr) {
    stats->engine = name();
    stats->workflow.jobs = cluster->history();
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return result;
}

}  // namespace rapida::engine
