#ifndef RAPIDA_ENGINES_DATASET_H_
#define RAPIDA_ENGINES_DATASET_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <utility>

#include "mapreduce/dfs.h"
#include "ntga/triplegroup.h"
#include "rdf/graph.h"
#include "util/status.h"

namespace rapida::engine {

/// A loaded dataset plus its DFS materializations — the shared context the
/// four engines execute against. Pre-processing mirrors the paper (§5.1):
///
///  * Hive engines read vertically-partitioned two-column tables, one per
///    property, with per-object partitions for rdf:type, stored ORC-style
///    compressed ("vp:p:<id>", "vp:t:<id>").
///  * NTGA engines read subject triplegroups partitioned by equivalence
///    class — the set of properties of the subject ("tg:ec:<n>").
///
/// Both layouts are derived lazily from the same Graph, so all engines see
/// identical data.
///
/// Concurrency: materialization (EnsureVpTables / EnsureTripleGroups) and
/// layout lookups are mutex-protected, so many queries can share one
/// Dataset. Mutation (AddTriples) is NOT safe while queries execute — the
/// serving layer serializes it behind an exclusive dataset lock.
class Dataset {
 public:
  struct Options {
    /// ORC-style compression ratio for Hive VP tables (0 < r <= 1).
    double orc_ratio = 0.15;
    /// Store VP tables compressed. Turning this off is the bench_ablation
    /// knob for the paper's ORC discussion.
    bool vp_compressed = true;
    /// DFS capacity in bytes (0 = unlimited) — reproduces the paper's
    /// MG13 disk-space failure when set.
    uint64_t dfs_capacity = 0;
    /// Partition subject triplegroups into one file per equivalence class
    /// (the paper's §5.1 pre-processing). When false, all triplegroups
    /// land in one file and every NTGA star scan reads the whole dataset
    /// — the ablation knob for this design choice.
    bool tg_partition_by_ec = true;
  };

  explicit Dataset(rdf::Graph graph) : Dataset(std::move(graph), Options()) {}
  Dataset(rdf::Graph graph, const Options& options);

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  rdf::Graph& graph() { return graph_; }
  const rdf::Graph& graph() const { return graph_; }
  rdf::Dictionary& dict() { return graph_.dict(); }
  mr::Dfs& dfs() { return dfs_; }
  const Options& options() const { return options_; }
  rdf::TermId type_id() const { return type_id_; }

  /// Materializes the VP layout (idempotent).
  Status EnsureVpTables();
  /// Materializes the triplegroup layout (idempotent).
  Status EnsureTripleGroups();

  /// Monotonic dataset epoch, bumped by every mutation. Result caches key
  /// on (query fingerprint, dataset, version): a bump is what makes every
  /// previously cached answer unreachable — principled invalidation
  /// instead of pointer identity.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Order-independent 64-bit hash of the graph's triple *set*, folded
  /// over rendered terms (not TermIds), so two processes loading the same
  /// data agree — the dataset half of a materialization-store artifact
  /// key. Unlike version(), which is a process-local epoch, the content
  /// hash survives restarts. Computed lazily, then maintained
  /// incrementally by AddTriples (XOR-fold: each actually-added triple
  /// folds in; duplicate inserts change nothing).
  uint64_t ContentHash() const;

  /// One triple of a mutation batch (decoded form, like the loaders take).
  struct TripleUpdate {
    rdf::Term s, p, o;
  };

  /// Appends triples to the graph, bumps version() and drops both
  /// materialized layouts (they are rebuilt lazily on the next query).
  /// Callers must ensure no query is executing against this dataset.
  /// When `added` is non-null it receives the dictionary-encoded triples
  /// that were actually new (the graph is a set — duplicates of existing
  /// triples are excluded), i.e. the delta partition of this mutation.
  Status AddTriples(const std::vector<TripleUpdate>& triples,
                    std::vector<rdf::Triple>* added = nullptr);

  /// DFS file for a property / type partition ("" when the partition is
  /// empty — no subject has it).
  std::string VpFile(rdf::TermId property) const;
  std::string VpTypeFile(rdf::TermId type_object) const;
  /// Stored size of a VP file (0 when absent) — map-join decisions.
  uint64_t VpFileBytes(const std::string& file) const;

  /// Triplegroup files whose equivalence class contains all of the given
  /// properties (property-level; the type object is checked at scan time).
  std::vector<std::string> TgFilesCovering(
      const std::set<rdf::TermId>& properties) const;
  /// All triplegroup files.
  std::vector<std::string> AllTgFiles() const;

 private:
  rdf::Graph graph_;
  Options options_;
  mr::Dfs dfs_;
  rdf::TermId type_id_ = rdf::kInvalidTermId;
  std::atomic<uint64_t> version_{0};

  /// Guards the lazily-built layout state below (concurrent queries may
  /// race to materialize / look up layout files).
  mutable std::mutex layout_mu_;
  mutable bool content_hash_valid_ = false;
  mutable uint64_t content_hash_ = 0;
  bool vp_loaded_ = false;
  bool tg_loaded_ = false;
  std::map<rdf::TermId, std::string> vp_files_;
  std::map<rdf::TermId, std::string> vp_type_files_;
  /// EC file name -> property set of that class.
  std::map<std::string, std::set<rdf::TermId>> tg_files_;
};

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_DATASET_H_
