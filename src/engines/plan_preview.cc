// Compatibility shim: PlanPreview predates the physical-plan IR and is
// kept for the CLI's --plan flag and older callers. A preview is now just
// a dataset-free plan from plan::PlanForEngine projected down to "one line
// per MR cycle"; the cycle count is the plan's estimate, which the plan
// tests weld to the executed cycle count for the whole catalog. New code
// should use plan::PlanForEngine / PhysicalPlan::ExplainText directly.
#include "engines/plan_preview.h"

#include <sstream>
#include <utility>

#include "plan/plan.h"
#include "plan/planner.h"

namespace rapida::engine {

namespace {

using analytics::AnalyticalQuery;

PlanPreview FromPhysical(const plan::PhysicalPlan& physical) {
  PlanPreview preview;
  preview.engine = physical.engine;
  preview.cycles = physical.EstimatedCycles();
  for (const plan::PlanNode& n : physical.nodes) {
    for (int c = 0; c < n.est_cycles; ++c) preview.steps.push_back(n.describe);
  }
  return preview;
}

}  // namespace

std::string PlanPreview::ToString() const {
  std::ostringstream os;
  os << engine << ": " << cycles << " MR cycles\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    os << "  MR" << (i + 1) << "  " << steps[i] << "\n";
  }
  return os.str();
}

PlanPreview PreviewPlan(const std::string& engine_name,
                        const AnalyticalQuery& query) {
  EngineOptions options;
  StatusOr<plan::PhysicalPlan> physical =
      plan::PlanForEngine(engine_name, query, /*dataset=*/nullptr, options);
  if (!physical.ok()) {
    // The optimizing planners propagate composite-construction errors; the
    // engines answer those queries with their fallback pipeline, so the
    // preview does too.
    if (engine_name == "Hive (MQO)") {
      physical = plan::PlanHiveNaive(query, nullptr, options);
    } else if (engine_name == "RAPIDAnalytics") {
      physical = plan::PlanRapidPlus(query, nullptr, options);
    }
  }
  if (!physical.ok()) {
    PlanPreview preview;
    preview.engine = engine_name;
    return preview;
  }
  physical->engine = engine_name;
  return FromPhysical(*physical);
}

std::vector<PlanPreview> PreviewAllPlans(const AnalyticalQuery& query) {
  return {PreviewPlan("Hive (Naive)", query),
          PreviewPlan("Hive (MQO)", query),
          PreviewPlan("RAPID+ (Naive)", query),
          PreviewPlan("RAPIDAnalytics", query)};
}

}  // namespace rapida::engine
