#include "engines/plan_preview.h"

#include <sstream>

#include "ntga/overlap.h"

namespace rapida::engine {

namespace {

using analytics::AnalyticalQuery;

void Step(PlanPreview* plan, const std::string& text) {
  plan->steps.push_back(text);
  ++plan->cycles;
}

/// Hive star-pattern compilation: one MR cycle per star with >= 2 triple
/// patterns, one per inter-star join; a one-triple single-star pattern
/// still needs one scan cycle to materialize a table.
void PreviewHivePattern(const ntga::StarGraph& pattern,
                        const std::string& label, PlanPreview* plan) {
  int multi_tp_stars = 0;
  for (size_t s = 0; s < pattern.stars.size(); ++s) {
    if (pattern.stars[s].triples.size() >= 2) {
      ++multi_tp_stars;
      Step(plan, label + ": star-join (" +
                     std::to_string(pattern.stars[s].triples.size()) +
                     " VP tables, same subject key)");
    }
  }
  if (pattern.stars.size() == 1) {
    if (multi_tp_stars == 0) {
      Step(plan, label + ": VP scan (single triple pattern)");
    }
    return;
  }
  for (size_t j = 1; j < pattern.stars.size(); ++j) {
    Step(plan, label + ": inter-star join");
  }
}

/// Composite star pattern for MQO / RAPIDAnalytics previews, or nullopt
/// when the rewriting does not apply (fall back).
std::optional<ntga::CompositePattern> CompositeOf(
    const AnalyticalQuery& query) {
  if (query.groupings.size() == 1) {
    return ntga::SinglePatternComposite(query.groupings[0].pattern);
  }
  if (query.groupings.size() == 2) {
    ntga::OverlapResult overlap = ntga::FindOverlap(
        query.groupings[0].pattern, query.groupings[1].pattern);
    if (!overlap.overlaps) return std::nullopt;
    auto comp = ntga::BuildComposite(query.groupings[0].pattern,
                                     query.groupings[1].pattern, overlap);
    if (!comp.ok()) return std::nullopt;
    return std::move(*comp);
  }
  std::vector<const ntga::StarGraph*> family;
  for (const auto& g : query.groupings) family.push_back(&g.pattern);
  ntga::FamilyOverlapResult overlap = ntga::FindOverlapFamily(family);
  if (!overlap.overlaps) return std::nullopt;
  auto comp = ntga::BuildCompositeFamily(family, overlap);
  if (!comp.ok()) return std::nullopt;
  return std::move(*comp);
}

PlanPreview PreviewHiveNaive(const AnalyticalQuery& query) {
  PlanPreview plan;
  plan.engine = "Hive (Naive)";
  for (size_t g = 0; g < query.groupings.size(); ++g) {
    std::string label = "g" + std::to_string(g);
    PreviewHivePattern(query.groupings[g].pattern, label, &plan);
    Step(&plan, label + ": GROUP BY" +
                    (query.groupings[g].group_by.empty() ? " ALL" : ""));
  }
  if (query.groupings.size() > 1) {
    Step(&plan, "final: map-only join of grouping results");
  }
  return plan;
}

PlanPreview PreviewRapidPlus(const AnalyticalQuery& query) {
  PlanPreview plan;
  plan.engine = "RAPID+ (Naive)";
  for (size_t g = 0; g < query.groupings.size(); ++g) {
    std::string label = "g" + std::to_string(g);
    size_t k = query.groupings[g].pattern.stars.size();
    for (size_t j = 1; j < k; ++j) {
      Step(&plan, label + ": TG star-filter + join");
    }
    Step(&plan, label + ": TG Agg-Join" +
                    (k == 1 ? " (star matching folded into map)" : ""));
  }
  if (query.groupings.size() > 1) {
    Step(&plan, "final: map-only join of aggregated triplegroups");
  }
  return plan;
}

PlanPreview PreviewHiveMqo(const AnalyticalQuery& query) {
  if (query.groupings.size() != 2) {
    PlanPreview plan = PreviewHiveNaive(query);
    plan.engine = "Hive (MQO)";
    return plan;
  }
  ntga::OverlapResult overlap = ntga::FindOverlap(
      query.groupings[0].pattern, query.groupings[1].pattern);
  if (!overlap.overlaps) {
    PlanPreview plan = PreviewHiveNaive(query);
    plan.engine = "Hive (MQO)";
    return plan;
  }
  auto comp = ntga::BuildComposite(query.groupings[0].pattern,
                                   query.groupings[1].pattern, overlap);
  PlanPreview plan;
  plan.engine = "Hive (MQO)";
  if (!comp.ok()) {
    plan = PreviewHiveNaive(query);
    plan.engine = "Hive (MQO)";
    return plan;
  }
  // The composite is compiled like a Hive pattern (secondary tables are
  // LEFT OUTER inputs of the same cycles).
  ntga::StarGraph composite_graph;
  for (const ntga::CompositeStar& cs : comp->stars) {
    ntga::StarPattern sp;
    sp.subject_var = cs.subject_var;
    sp.triples = cs.triples;
    composite_graph.stars.push_back(std::move(sp));
  }
  composite_graph.joins = comp->joins;
  PreviewHivePattern(composite_graph, "qopt", &plan);
  for (int p = 0; p < 2; ++p) {
    std::string label = "p" + std::to_string(p);
    Step(&plan, label + ": DISTINCT extraction from materialized Q_OPT");
    Step(&plan, label + ": GROUP BY");
  }
  Step(&plan, "final: map-only join of grouping results");
  return plan;
}

PlanPreview PreviewRapidAnalytics(const AnalyticalQuery& query) {
  std::optional<ntga::CompositePattern> comp = CompositeOf(query);
  if (!comp.has_value()) {
    PlanPreview plan = PreviewRapidPlus(query);
    plan.engine = "RAPIDAnalytics";
    return plan;
  }
  PlanPreview plan;
  plan.engine = "RAPIDAnalytics";
  size_t k = comp->stars.size();
  for (size_t j = 1; j < k; ++j) {
    Step(&plan, std::string("gp: TG_OptGrpFilter + TG_AlphaJoin") +
                    (j == k - 1 ? " (α filtering)" : ""));
  }
  Step(&plan, "agg: parallel TG Agg-Join (" +
                  std::to_string(query.groupings.size()) +
                  " grouping-aggregations in one cycle)" +
                  (k == 1 ? " with star matching folded into map" : ""));
  if (query.groupings.size() > 1) {
    Step(&plan, "final: map-only join of aggregated triplegroups");
  }
  return plan;
}

}  // namespace

std::string PlanPreview::ToString() const {
  std::ostringstream os;
  os << engine << ": " << cycles << " MR cycles\n";
  for (size_t i = 0; i < steps.size(); ++i) {
    os << "  MR" << (i + 1) << "  " << steps[i] << "\n";
  }
  return os.str();
}

PlanPreview PreviewPlan(const std::string& engine_name,
                        const AnalyticalQuery& query) {
  if (engine_name == "Hive (Naive)") return PreviewHiveNaive(query);
  if (engine_name == "Hive (MQO)") return PreviewHiveMqo(query);
  if (engine_name == "RAPID+ (Naive)") return PreviewRapidPlus(query);
  return PreviewRapidAnalytics(query);
}

std::vector<PlanPreview> PreviewAllPlans(const AnalyticalQuery& query) {
  return {PreviewPlan("Hive (Naive)", query),
          PreviewPlan("Hive (MQO)", query),
          PreviewPlan("RAPID+ (Naive)", query),
          PreviewPlan("RAPIDAnalytics", query)};
}

}  // namespace rapida::engine
