#ifndef RAPIDA_ENGINES_VAR_TRANSLATE_H_
#define RAPIDA_ENGINES_VAR_TRANSLATE_H_

#include <map>
#include <string>
#include <vector>

#include "sparql/ast.h"

namespace rapida::engine {

/// Renames variables through a composite-pattern var_map. Names absent
/// from the map pass through unchanged.
std::vector<std::string> MapVars(
    const std::vector<std::string>& vars,
    const std::map<std::string, std::string>& var_map);

std::string MapVar(const std::string& var,
                   const std::map<std::string, std::string>& var_map);

/// Deep-copies an expression with every variable renamed through the map.
sparql::ExprPtr MapExprVars(const sparql::Expr& expr,
                            const std::map<std::string, std::string>& var_map);

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_VAR_TRANSLATE_H_
