#include "engines/dataset.h"

#include <algorithm>

#include "mapreduce/record.h"

namespace rapida::engine {

Dataset::Dataset(rdf::Graph graph, const Options& options)
    : graph_(std::move(graph)), options_(options) {
  type_id_ = graph_.TypeIdOrInvalid();
  if (options_.dfs_capacity > 0) dfs_.SetCapacityLimit(options_.dfs_capacity);
}

Status Dataset::EnsureVpTables() {
  std::lock_guard<std::mutex> lock(layout_mu_);
  if (vp_loaded_) return Status::OK();

  std::map<rdf::TermId, mr::RecordBatch> tables;
  std::map<rdf::TermId, mr::RecordBatch> type_tables;
  for (const rdf::Triple& t : graph_.triples()) {
    // Rows are dictionary-encoded (subject id, object id) — the same
    // uniform encoding the triplegroup layout uses, so byte accounting
    // compares layouts, not term-encoding choices.
    mr::RecordBatch& batch =
        t.p == type_id_ ? type_tables[t.o] : tables[t.p];
    batch.Add(std::to_string(t.s), std::to_string(t.o));
  }

  mr::FileOptions fo;
  fo.compressed = options_.vp_compressed;
  fo.compression_ratio = options_.orc_ratio;
  for (auto& [p, rows] : tables) {
    std::string name = "vp:p:" + std::to_string(p);
    RAPIDA_RETURN_IF_ERROR(dfs_.Write(name, std::move(rows), fo));
    vp_files_[p] = name;
  }
  for (auto& [o, rows] : type_tables) {
    std::string name = "vp:t:" + std::to_string(o);
    RAPIDA_RETURN_IF_ERROR(dfs_.Write(name, std::move(rows), fo));
    vp_type_files_[o] = name;
  }
  vp_loaded_ = true;
  return Status::OK();
}

Status Dataset::EnsureTripleGroups() {
  std::lock_guard<std::mutex> lock(layout_mu_);
  if (tg_loaded_) return Status::OK();

  // Group subjects by equivalence class (their property set). With the
  // ablation knob off, everything shares one catch-all class (its EC is
  // empty, so it "covers" only empty requirements — TgFilesCovering then
  // must return it for every request, handled below).
  std::map<std::set<rdf::TermId>, mr::RecordBatch> classes;
  std::set<rdf::TermId> all_props;
  for (const rdf::Graph::SubjectGroup& sg : graph_.SubjectGroups()) {
    std::set<rdf::TermId> ec;
    ntga::TripleGroup tg;
    tg.subject = sg.subject;
    for (const rdf::Triple& t : sg.triples) {
      ec.insert(t.p);
      all_props.insert(t.p);
      tg.triples.push_back(t);
    }
    if (!options_.tg_partition_by_ec) ec.clear();
    classes[std::move(ec)].Add(std::to_string(sg.subject),
                               ntga::SerializeTripleGroup(tg));
  }
  if (!options_.tg_partition_by_ec && !classes.empty()) {
    // The single file must cover every property request.
    mr::RecordBatch records = std::move(classes.begin()->second);
    classes.clear();
    classes[all_props] = std::move(records);
  }

  int n = 0;
  for (auto& [ec, rows] : classes) {
    std::string name = "tg:ec:" + std::to_string(n++);
    RAPIDA_RETURN_IF_ERROR(dfs_.Write(name, std::move(rows)));
    tg_files_[name] = ec;
  }
  tg_loaded_ = true;
  return Status::OK();
}

namespace {

/// FNV-1a over the triple's N-Triples rendering, strengthened with a
/// splitmix64 finalizer so the XOR-fold across triples doesn't inherit
/// FNV's weak high bits. Term-rendering-based (not TermId-based) so two
/// processes loading the same data compute the same hash.
uint64_t TripleContentHash(const rdf::Dictionary& dict,
                           const rdf::Triple& t) {
  std::string rendered = dict.Get(t.s).ToNTriples();
  rendered += ' ';
  rendered += dict.Get(t.p).ToNTriples();
  rendered += ' ';
  rendered += dict.Get(t.o).ToNTriples();
  uint64_t h = 14695981039346656037ull;
  for (char c : rendered) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace

uint64_t Dataset::ContentHash() const {
  std::lock_guard<std::mutex> lock(layout_mu_);
  if (!content_hash_valid_) {
    uint64_t h = 0x5eed0fc0417ac75full;  // empty-graph sentinel
    for (const rdf::Triple& t : graph_.triples()) {
      h ^= TripleContentHash(graph_.dict(), t);
    }
    content_hash_ = h;
    content_hash_valid_ = true;
  }
  return content_hash_;
}

Status Dataset::AddTriples(const std::vector<TripleUpdate>& triples,
                           std::vector<rdf::Triple>* added) {
  std::lock_guard<std::mutex> lock(layout_mu_);
  if (added != nullptr) added->clear();
  for (const TripleUpdate& t : triples) {
    size_t before = graph_.size();
    graph_.Add(t.s, t.p, t.o);
    if (graph_.size() == before) continue;  // duplicate of an existing triple
    const rdf::Triple& fresh = graph_.triples().back();
    if (added != nullptr) added->push_back(fresh);
    if (content_hash_valid_) {
      content_hash_ ^= TripleContentHash(graph_.dict(), fresh);
    }
  }
  // rdf:type may have been interned by this batch.
  type_id_ = graph_.TypeIdOrInvalid();

  // Drop both materialized layouts; the next query rebuilds them from the
  // updated graph.
  for (const auto& [p, name] : vp_files_) (void)dfs_.Delete(name);
  for (const auto& [o, name] : vp_type_files_) (void)dfs_.Delete(name);
  for (const auto& [name, ec] : tg_files_) (void)dfs_.Delete(name);
  vp_files_.clear();
  vp_type_files_.clear();
  tg_files_.clear();
  vp_loaded_ = false;
  tg_loaded_ = false;

  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

std::string Dataset::VpFile(rdf::TermId property) const {
  std::lock_guard<std::mutex> lock(layout_mu_);
  auto it = vp_files_.find(property);
  return it == vp_files_.end() ? std::string() : it->second;
}

std::string Dataset::VpTypeFile(rdf::TermId type_object) const {
  std::lock_guard<std::mutex> lock(layout_mu_);
  auto it = vp_type_files_.find(type_object);
  return it == vp_type_files_.end() ? std::string() : it->second;
}

uint64_t Dataset::VpFileBytes(const std::string& file) const {
  if (file.empty()) return 0;
  auto f = dfs_.Open(file);
  return f.ok() ? (*f)->stored_bytes : 0;
}

std::vector<std::string> Dataset::TgFilesCovering(
    const std::set<rdf::TermId>& properties) const {
  std::lock_guard<std::mutex> lock(layout_mu_);
  std::vector<std::string> out;
  for (const auto& [name, ec] : tg_files_) {
    if (std::includes(ec.begin(), ec.end(), properties.begin(),
                      properties.end())) {
      out.push_back(name);
    }
  }
  return out;
}

std::vector<std::string> Dataset::AllTgFiles() const {
  std::lock_guard<std::mutex> lock(layout_mu_);
  std::vector<std::string> out;
  out.reserve(tg_files_.size());
  for (const auto& [name, ec] : tg_files_) out.push_back(name);
  return out;
}

}  // namespace rapida::engine
