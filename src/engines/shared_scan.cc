#include "engines/shared_scan.h"

#include <algorithm>
#include <set>
#include <utility>

#include "engines/ntga_exec.h"
#include "engines/relational_ops.h"
#include "engines/var_translate.h"
#include "util/logging.h"

namespace rapida::engine {

namespace {

/// Flattened view of every grouping across the batch, with its owning
/// query.
struct FlatGrouping {
  const analytics::GroupingSubquery* grouping;
  size_t query_index;
};

std::vector<FlatGrouping> Flatten(
    const std::vector<const analytics::AnalyticalQuery*>& queries) {
  std::vector<FlatGrouping> flat;
  for (size_t q = 0; q < queries.size(); ++q) {
    for (const analytics::GroupingSubquery& g : queries[q]->groupings) {
      flat.push_back(FlatGrouping{&g, q});
    }
  }
  return flat;
}

}  // namespace

StatusOr<SharedScanPlan> PlanSharedScan(
    const std::vector<const analytics::AnalyticalQuery*>& queries) {
  std::vector<FlatGrouping> flat = Flatten(queries);
  RAPIDA_CHECK(!flat.empty()) << "shared scan over zero groupings";

  SharedScanPlan plan;
  if (flat.size() == 1) {
    plan.sharable = true;
    plan.comp = ntga::SinglePatternComposite(flat[0].grouping->pattern);
    return plan;
  }
  if (flat.size() == 2) {
    ntga::OverlapResult overlap = ntga::FindOverlap(
        flat[0].grouping->pattern, flat[1].grouping->pattern);
    if (!overlap.overlaps) {
      plan.why = overlap.explanation;
      return plan;
    }
    RAPIDA_ASSIGN_OR_RETURN(
        plan.comp, ntga::BuildComposite(flat[0].grouping->pattern,
                                        flat[1].grouping->pattern, overlap));
    plan.sharable = true;
    return plan;
  }
  // Three or more groupings (ROLLUP-style families, and any multi-query
  // batch): generalize the composite to the whole pattern family so all
  // aggregations still run in one parallel Agg-Join cycle.
  std::vector<const ntga::StarGraph*> family;
  family.reserve(flat.size());
  for (const FlatGrouping& fg : flat) family.push_back(&fg.grouping->pattern);
  ntga::FamilyOverlapResult overlap = ntga::FindOverlapFamily(family);
  if (!overlap.overlaps) {
    plan.why = overlap.explanation;
    return plan;
  }
  RAPIDA_ASSIGN_OR_RETURN(plan.comp,
                          ntga::BuildCompositeFamily(family, overlap));
  plan.sharable = true;
  return plan;
}

Status ExecuteCompositeBatch(
    const SharedScanPlan& plan,
    const std::vector<const analytics::AnalyticalQuery*>& queries,
    Dataset* dataset, mr::Cluster* cluster, const EngineOptions& options,
    std::vector<StatusOr<analytics::BindingTable>>* results) {
  RAPIDA_CHECK(plan.sharable) << "ExecuteCompositeBatch on unsharable plan";
  const ntga::CompositePattern& comp = plan.comp;
  std::vector<FlatGrouping> flat = Flatten(queries);

  results->clear();
  for (size_t q = 0; q < queries.size(); ++q) {
    results->push_back(Status::Internal("unset"));
  }

  RAPIDA_RETURN_IF_ERROR(dataset->EnsureTripleGroups());
  NtgaExec exec(cluster, dataset, options, options.tmp_namespace + "tmp:ra");
  const rdf::Dictionary& dict = dataset->graph().dict();

  ntga::ResolvedPattern resolved = ntga::ResolvePattern(comp, dict);

  // Per-grouping α conditions (presence of the grouping pattern's
  // secondary props); their disjunction prunes composite matches in the
  // last α-join cycle.
  std::vector<ntga::AlphaCondition> alphas;
  for (size_t p = 0; p < resolved.pattern_secondary.size(); ++p) {
    ntga::AlphaCondition cond;
    for (const auto& [star, keys] : resolved.pattern_secondary[p]) {
      for (const ntga::DataPropKey& k : keys) {
        cond.push_back(ntga::AlphaConstraint{star, k, true});
      }
    }
    alphas.push_back(std::move(cond));
  }

  // Filters: a single-variable filter may be pushed into the shared
  // composite scan only when the identical translated filter appears in
  // EVERY grouping of EVERY batched query — then dropping the triple at
  // match time is what each pattern would have done anyway, and it is
  // evaluated once. A filter only some groupings carry (and any
  // multi-variable filter) must stay a per-grouping mapping predicate:
  // pushing it into the shared scan would wrongly starve the groupings
  // that do not have it.
  struct TranslatedFilter {
    std::string var;  // set iff single-variable
    std::string sig;  // var + "|" + ToString(), for cross-grouping matching
    const sparql::Expr* raw = nullptr;
  };
  std::vector<sparql::ExprPtr> owned_filters;
  std::vector<std::vector<TranslatedFilter>> grouping_filters(flat.size());
  std::vector<std::set<std::string>> grouping_sigs(flat.size());
  for (size_t g = 0; g < flat.size(); ++g) {
    for (const auto& f : flat[g].grouping->filters) {
      sparql::ExprPtr translated = MapExprVars(*f, comp.var_map[g]);
      std::vector<std::string> vars;
      translated->CollectVars(&vars);
      TranslatedFilter tf;
      tf.raw = translated.get();
      if (vars.size() == 1) {
        tf.var = vars[0];
        tf.sig = tf.var + "|" + translated->ToString();
        grouping_sigs[g].insert(tf.sig);
      }
      owned_filters.push_back(std::move(translated));
      grouping_filters[g].push_back(std::move(tf));
    }
  }

  PushedFilters pushed;
  std::vector<NtgaGrouping> work(flat.size());
  std::set<std::string> pushed_signatures;
  for (size_t g = 0; g < flat.size(); ++g) {
    const analytics::GroupingSubquery& grouping = *flat[g].grouping;
    const auto& var_map = comp.var_map[g];

    std::vector<std::string> pattern_vars;
    for (const auto& [orig, composite_var] : var_map) {
      if (std::find(pattern_vars.begin(), pattern_vars.end(),
                    composite_var) == pattern_vars.end()) {
        pattern_vars.push_back(composite_var);
      }
    }

    std::vector<const sparql::Expr*> residual;
    for (const TranslatedFilter& tf : grouping_filters[g]) {
      bool shared_by_all = !tf.var.empty();
      for (size_t o = 0; shared_by_all && o < grouping_sigs.size(); ++o) {
        if (grouping_sigs[o].count(tf.sig) == 0) shared_by_all = false;
      }
      if (shared_by_all) {
        if (pushed_signatures.insert(tf.sig).second) {
          pushed[tf.var].push_back(tf.raw);
        }
      } else {
        residual.push_back(tf.raw);
      }
    }
    RowPredicate mapping_pred =
        residual.empty() ? nullptr
                         : CompilePredicate(residual, pattern_vars, &dict);

    NtgaGrouping& w = work[g];
    w.spec.group_vars = MapVars(grouping.group_by, var_map);
    for (const ntga::AggSpec& a : grouping.aggs) {
      ntga::AggSpec translated = a;
      translated.var = MapVar(a.var, var_map);
      w.spec.aggs.push_back(std::move(translated));
    }
    w.spec.alpha = alphas.size() > g ? alphas[g] : ntga::AlphaCondition{};
    w.pattern_vars = pattern_vars;
    w.output_columns = grouping.group_by;  // original names
    for (const ntga::AggSpec& a : grouping.aggs) {
      w.output_columns.push_back(a.output_name);
    }
    w.mapping_predicate = mapping_pred;
    w.having = grouping.having.get();
  }

  auto matches = exec.ComputePatternMatches(resolved, alphas, pushed, "gp");
  if (!matches.ok()) {
    exec.Cleanup();
    return matches.status();
  }

  std::vector<std::string> agg_files;
  auto tables =
      exec.RunAggJoins(resolved, *matches, pushed, work,
                       options.parallel_agg_join, "agg", &agg_files);
  if (!tables.ok()) {
    exec.Cleanup();
    return tables.status();
  }

  // Fan out: each query gets its own final join / projection over its
  // slice of the aggregated tables. A failure here is that query's alone.
  size_t offset = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    const analytics::AnalyticalQuery& query = *queries[q];
    size_t n = query.groupings.size();
    std::vector<analytics::BindingTable> q_tables;
    q_tables.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      q_tables.push_back(std::move((*tables)[offset + i]));
    }
    std::vector<std::string> q_files(
        agg_files.begin() + static_cast<long>(offset),
        agg_files.begin() +
            static_cast<long>(std::min(offset + n, agg_files.size())));
    offset += n;

    StatusOr<analytics::BindingTable> result = Status::Internal("unset");
    if (n == 1) {
      rdf::Dictionary* mdict = &dataset->dict();
      ProjectedResult projected =
          JoinAndProject(std::move(q_tables), query.top_items, mdict);
      analytics::BindingTable table(projected.columns);
      for (const mr::Record& r : projected.rows) {
        std::vector<rdf::TermId> row = DecodeRow(r.value);
        row.resize(projected.columns.size(), rdf::kInvalidTermId);
        table.AddRow(std::move(row));
      }
      result = std::move(table);
    } else {
      result = exec.FinalJoinProject(
          std::move(q_tables), query.top_items, q_files,
          queries.size() == 1 ? "final" : "final" + std::to_string(q));
    }
    if (result.ok()) {
      analytics::ApplySolutionModifiers(query, dataset->dict(), &*result);
    }
    (*results)[q] = std::move(result);
  }
  exec.Cleanup();
  return Status::OK();
}

}  // namespace rapida::engine
