#include "engines/shared_scan.h"

#include <utility>

#include "plan/executor.h"
#include "plan/planner.h"
#include "util/logging.h"

namespace rapida::engine {

namespace {

/// Flattened view of every grouping across the batch, with its owning
/// query.
struct FlatGrouping {
  const analytics::GroupingSubquery* grouping;
  size_t query_index;
};

std::vector<FlatGrouping> Flatten(
    const std::vector<const analytics::AnalyticalQuery*>& queries) {
  std::vector<FlatGrouping> flat;
  for (size_t q = 0; q < queries.size(); ++q) {
    for (const analytics::GroupingSubquery& g : queries[q]->groupings) {
      flat.push_back(FlatGrouping{&g, q});
    }
  }
  return flat;
}

}  // namespace

StatusOr<SharedScanPlan> PlanSharedScan(
    const std::vector<const analytics::AnalyticalQuery*>& queries) {
  std::vector<FlatGrouping> flat = Flatten(queries);
  RAPIDA_CHECK(!flat.empty()) << "shared scan over zero groupings";

  SharedScanPlan plan;
  // The composite rewrite merges conjunctive star patterns; OPTIONAL and
  // UNION groupings fall back to the naive per-grouping pipeline (which
  // lowers them through the relational left-join/union tail).
  for (const FlatGrouping& fg : flat) {
    if (!fg.grouping->IsConjunctive()) {
      plan.why =
          "grouping uses OPTIONAL/UNION: composite star rewriting covers "
          "conjunctive star patterns only";
      return plan;
    }
  }
  if (flat.size() == 1) {
    plan.sharable = true;
    plan.comp = ntga::SinglePatternComposite(flat[0].grouping->pattern);
    return plan;
  }
  if (flat.size() == 2) {
    ntga::OverlapResult overlap = ntga::FindOverlap(
        flat[0].grouping->pattern, flat[1].grouping->pattern);
    if (!overlap.overlaps) {
      plan.why = overlap.explanation;
      return plan;
    }
    RAPIDA_ASSIGN_OR_RETURN(
        plan.comp, ntga::BuildComposite(flat[0].grouping->pattern,
                                        flat[1].grouping->pattern, overlap));
    plan.sharable = true;
    return plan;
  }
  // Three or more groupings (ROLLUP-style families, and any multi-query
  // batch): generalize the composite to the whole pattern family so all
  // aggregations still run in one parallel Agg-Join cycle.
  std::vector<const ntga::StarGraph*> family;
  family.reserve(flat.size());
  for (const FlatGrouping& fg : flat) family.push_back(&fg.grouping->pattern);
  ntga::FamilyOverlapResult overlap = ntga::FindOverlapFamily(family);
  if (!overlap.overlaps) {
    plan.why = overlap.explanation;
    return plan;
  }
  RAPIDA_ASSIGN_OR_RETURN(plan.comp,
                          ntga::BuildCompositeFamily(family, overlap));
  plan.sharable = true;
  return plan;
}

StatusOr<CompositeApplicability> CheckCompositeRewrite(
    const analytics::AnalyticalQuery& query, bool allow_family) {
  CompositeApplicability out;
  if (!allow_family && query.groupings.size() != 2) {
    out.why = "MQO rewriting applies to exactly two grouping patterns";
    return out;
  }
  std::vector<const analytics::AnalyticalQuery*> batch{&query};
  RAPIDA_ASSIGN_OR_RETURN(SharedScanPlan plan, PlanSharedScan(batch));
  out.applies = plan.sharable;
  out.why = plan.why;
  out.comp = std::move(plan.comp);
  return out;
}

Status ExecuteCompositeBatch(
    const SharedScanPlan& shared,
    const std::vector<const analytics::AnalyticalQuery*>& queries,
    Dataset* dataset, mr::Cluster* cluster, const EngineOptions& options,
    std::vector<StatusOr<analytics::BindingTable>>* results) {
  RAPIDA_CHECK(shared.sharable) << "ExecuteCompositeBatch on unsharable plan";
  // The whole pipeline — composite resolution, α conditions, the shared
  // filter-pushdown rule, the parallel Agg-Join and the per-query final
  // joins — is emitted as an operator DAG by plan::PlanCompositeBatch; the
  // generic executor walks it. Callers keep the Reset-then-Execute
  // protocol, so a cold triplegroup build stays part of the measured
  // workflow, exactly as before.
  RAPIDA_ASSIGN_OR_RETURN(
      plan::PhysicalPlan physical,
      plan::PlanCompositeBatch(shared, queries, dataset, options));
  results->clear();
  for (size_t q = 0; q < queries.size(); ++q) {
    results->push_back(Status::Internal("unset"));
  }
  return plan::ExecutePlanMulti(physical, dataset, cluster, options,
                                results);
}

}  // namespace rapida::engine
