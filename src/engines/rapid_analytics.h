#ifndef RAPIDA_ENGINES_RAPID_ANALYTICS_H_
#define RAPIDA_ENGINES_RAPID_ANALYTICS_H_

#include <string>

#include "engines/engine.h"
#include "engines/ntga_exec.h"
#include "engines/rapid_plus.h"

namespace rapida::engine {

/// The paper's contribution: overlapping graph patterns are rewritten into
/// one composite graph pattern evaluated once with TG_OptGrpFilter +
/// TG_AlphaJoin ((k−1) cycles for k composite stars, α-filtering in the
/// last cycle), followed by ONE parallel TG Agg-Join cycle computing every
/// independent grouping-aggregation (Fig. 6b), and a final map-only join.
///
/// MG1-shaped queries run in 3 cycles vs 5 (RAPID+), 7–8 (Hive MQO) and 9
/// (naive Hive). Non-overlapping or 3+-grouping queries fall back to the
/// RAPID+ plan.
class RapidAnalyticsEngine : public Engine {
 public:
  explicit RapidAnalyticsEngine(
      const EngineOptions& options = EngineOptions())
      : options_(options), fallback_(options) {}

  std::string name() const override { return "RAPIDAnalytics"; }

  StatusOr<analytics::BindingTable> Execute(
      const analytics::AnalyticalQuery& query, Dataset* dataset,
      mr::Cluster* cluster, ExecStats* stats) override;

 private:
  EngineOptions options_;
  RapidPlusEngine fallback_;
};

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_RAPID_ANALYTICS_H_
