#include "engines/factorized.h"

#include "mapreduce/kernels.h"
#include "util/string_util.h"

namespace rapida::engine {

uint64_t GroupView::FlatRows() const {
  uint64_t n = 1;
  for (size_t f = 0; f < factor_end.size(); ++f) n *= FactorRows(f);
  return n;
}

bool ParseGroup(std::string_view value, size_t num_factors, GroupView* out) {
  out->rows.clear();
  out->factor_end.clear();
  size_t bar = value.find('|');
  if (bar == std::string_view::npos) {
    if (num_factors != 0) return false;
    out->base = value;
    return true;
  }
  out->base = value.substr(0, bar);
  size_t start = bar + 1;
  size_t factors = 0;
  for (;;) {
    size_t end = value.find('|', start);
    std::string_view seg = value.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start);
    // Rows joined by ';'. An empty segment is one row of zero cells.
    size_t rstart = 0;
    for (;;) {
      size_t semi = seg.find(';', rstart);
      out->rows.push_back(seg.substr(
          rstart, semi == std::string_view::npos ? std::string_view::npos
                                                 : semi - rstart));
      if (semi == std::string_view::npos) break;
      rstart = semi + 1;
    }
    out->factor_end.push_back(static_cast<uint32_t>(out->rows.size()));
    ++factors;
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return factors == num_factors;
}

namespace {

/// Sum of decimal digit counts over a comma-separated cell list, padded
/// with NULL ("0", 1 digit each) up to `cols` cells.
uint64_t CellListDigits(std::string_view cells, size_t cols) {
  if (cols == 0) return 0;
  uint64_t digits = 0;
  size_t seen = 0;
  if (!cells.empty()) {
    size_t start = 0;
    for (;;) {
      size_t comma = cells.find(',', start);
      size_t end = comma == std::string_view::npos ? cells.size() : comma;
      if (seen < cols) digits += end - start;  // decimal digits == bytes
      ++seen;
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
  }
  if (seen < cols) digits += cols - seen;  // missing cells read as NULL "0"
  return digits;
}

}  // namespace

uint64_t FlatRecordBytes(const Factorization& spec, const GroupView& g) {
  const uint64_t flat_rows = g.FlatRows();
  if (flat_rows == 0) return 0;
  // Every flat record: "" key + (width-1) commas + 2 accounting bytes, plus
  // the digits of each cell. Positions covered by neither base nor factors
  // are NULL ("0").
  size_t covered = spec.base_cols.size();
  for (const auto& f : spec.factors) covered += f.size();
  const uint64_t uncovered =
      static_cast<uint64_t>(spec.width) - static_cast<uint64_t>(covered);
  uint64_t bytes =
      flat_rows * (static_cast<uint64_t>(spec.width > 0 ? spec.width - 1 : 0) +
                   2 + uncovered +
                   CellListDigits(g.base, spec.base_cols.size()));
  for (size_t f = 0; f < spec.factors.size(); ++f) {
    uint64_t factor_digits = 0;
    for (size_t r = g.FactorBegin(f); r < g.factor_end[f]; ++r) {
      factor_digits += CellListDigits(g.rows[r], spec.factors[f].size());
    }
    // Each of this factor's rows appears in flat_rows / FactorRows(f)
    // enumerated records.
    bytes += (flat_rows / g.FactorRows(f)) * factor_digits;
  }
  return bytes;
}

void DecodeCellsInto(std::string_view encoded, const std::vector<int>& cols,
                     std::vector<rdf::TermId>* row) {
  size_t c = 0;
  if (!encoded.empty()) {
    size_t start = 0;
    for (;;) {
      size_t comma = encoded.find(',', start);
      std::string_view part = encoded.substr(
          start, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - start);
      if (c < cols.size()) {
        int64_t v = 0;
        ParseDigits(part, &v);
        (*row)[static_cast<size_t>(cols[c])] = static_cast<rdf::TermId>(v);
      }
      ++c;
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
  }
  for (; c < cols.size(); ++c) {
    (*row)[static_cast<size_t>(cols[c])] = rdf::kInvalidTermId;
  }
}

void GroupEncoder::AddBaseCell(rdf::TermId v) {
  if (base_cells_) buf_ += ',';
  base_cells_ = true;
  mr::kernels::AppendDecimal(&buf_, v);
}

void GroupEncoder::AddRawBase(std::string_view encoded) {
  if (encoded.empty()) return;
  if (base_cells_) buf_ += ',';
  base_cells_ = true;
  buf_ += encoded;
}

void GroupEncoder::CloseFactor() {
  if (in_factor_) flat_rows_ *= rows_in_factor_;
}

void GroupEncoder::StartFactor() {
  CloseFactor();
  buf_ += '|';
  rows_in_factor_ = 0;
  in_factor_ = true;
}

void GroupEncoder::AddFactorRow(const rdf::TermId* cells, size_t n) {
  if (rows_in_factor_ > 0) buf_ += ';';
  ++rows_in_factor_;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) buf_ += ',';
    mr::kernels::AppendDecimal(&buf_, cells[i]);
  }
}

void GroupEncoder::AddRawFactorRow(std::string_view encoded) {
  if (rows_in_factor_ > 0) buf_ += ';';
  ++rows_in_factor_;
  buf_ += encoded;
}

void GroupEncoder::AddRawFactor(std::string_view segment, uint64_t rows) {
  StartFactor();
  buf_ += segment;
  rows_in_factor_ = rows;
}

}  // namespace rapida::engine
