#include "engines/hive_naive.h"

#include <algorithm>
#include <set>

#include "plan/executor.h"
#include "plan/planner.h"
#include "util/logging.h"

namespace rapida::engine {

namespace {

/// A star's compiled form: either a materialized table (>= 2 triple
/// patterns -> one star-join cycle) or a direct VP input (single triple
/// pattern — Hive folds the scan into the next join).
struct StarOut {
  JoinInput input;  // how the next join consumes this star
};

/// Collects the variables of an expression.
std::vector<std::string> VarsOf(const sparql::Expr& e) {
  std::vector<std::string> vars;
  e.CollectVars(&vars);
  return vars;
}

}  // namespace

StatusOr<TableRef> CompileHivePattern(
    RelationalOps* ops, Dataset* dataset, const ntga::StarGraph& pattern,
    const std::vector<const sparql::Expr*>& filters,
    const std::set<ntga::PropKey>* outer_secondary,
    const std::string& label, bool factorize) {
  const rdf::Dictionary& dict = dataset->graph().dict();

  // Filter assignment: single-variable filters are pushed to the VP input
  // binding that variable; the rest run after the joins.
  std::vector<bool> filter_used(filters.size(), false);

  auto single_var_filters_for = [&](const std::string& var) {
    std::vector<const sparql::Expr*> out;
    for (size_t i = 0; i < filters.size(); ++i) {
      if (filter_used[i]) continue;
      std::vector<std::string> vars = VarsOf(*filters[i]);
      if (vars.size() == 1 && vars[0] == var) {
        out.push_back(filters[i]);
        filter_used[i] = true;
      }
    }
    return out;
  };

  // ---- compile each star ----
  std::vector<StarOut> stars;
  int synth = 0;
  for (size_t s = 0; s < pattern.stars.size(); ++s) {
    const ntga::StarPattern& star = pattern.stars[s];
    std::vector<JoinInput> inputs;
    for (const ntga::StarTriple& t : star.triples) {
      JoinInput in;
      in.is_vp = true;
      in.join_column = star.subject_var;
      bool outer = outer_secondary != nullptr &&
                   outer_secondary->count(t.prop) > 0;
      in.outer = outer;
      if (t.prop.is_type()) {
        rdf::TermId obj = dict.LookupIri(t.prop.type_object);
        in.file = dataset->VpTypeFile(obj);
        in.columns = {star.subject_var};
      } else {
        rdf::TermId p = dict.LookupIri(t.prop.property);
        in.file = dataset->VpFile(p);
        std::string ov = t.ObjectVar();
        if (ov.empty()) ov = "_c" + std::to_string(synth++);
        in.columns = {star.subject_var, ov};
        std::vector<const sparql::Expr*> pushed;
        if (t.object.is_var) {
          pushed = single_var_filters_for(t.object.var);
          in.predicate = CompilePredicate(pushed, in.columns, &dict);
        } else {
          // Constant object: compile an equality check.
          rdf::TermId c = dict.Lookup(t.object.term);
          in.predicate = [c](const std::vector<rdf::TermId>& row) {
            return row.size() > 1 && row[1] == c &&
                   c != rdf::kInvalidTermId;
          };
        }
      }
      if (in.file.empty()) {
        if (outer) continue;  // absent optional partition: all-NULL column
        // An absent required partition means zero matches; short-circuit
        // to an empty pattern table with the full schema (no cycles run —
        // Hive's metastore prunes empty partitions similarly).
        std::vector<std::string> cols;
        for (const ntga::StarPattern& sp : pattern.stars) {
          cols.push_back(sp.subject_var);
          for (const ntga::StarTriple& st : sp.triples) {
            std::string ov = st.ObjectVar();
            if (!ov.empty() &&
                std::find(cols.begin(), cols.end(), ov) == cols.end()) {
              cols.push_back(ov);
            }
          }
        }
        std::string empty_file = ops->NextTmp(label + ":empty");
        RAPIDA_RETURN_IF_ERROR(
            dataset->dfs().Write(empty_file, {}));
        return TableRef{empty_file, cols};
      }
      inputs.push_back(std::move(in));
    }
    // Order: inner (primary) inputs first; the first input must be inner.
    std::stable_sort(inputs.begin(), inputs.end(),
                     [](const JoinInput& a, const JoinInput& b) {
                       return !a.outer && b.outer;
                     });

    StarOut out;
    if (inputs.size() == 1) {
      out.input = inputs[0];  // scan folds into the next join cycle
    } else {
      RAPIDA_ASSIGN_OR_RETURN(
          TableRef t, ops->Join(label + ":star" + std::to_string(s), inputs,
                                nullptr, factorize));
      out.input.file = t.file;
      out.input.columns = t.columns;
      out.input.is_vp = false;
      out.input.join_column = star.subject_var;
      out.input.factor = t.factor;
      out.input.flat_bytes = t.flat_bytes;
    }
    stars.push_back(std::move(out));
  }

  if (pattern.stars.size() == 1) {
    // No inter-star joins. A single-input star was never materialized;
    // run one projection cycle so downstream stages have a table.
    if (stars[0].input.is_vp) {
      RAPIDA_ASSIGN_OR_RETURN(
          TableRef t,
          ops->Join(label + ":scan", {stars[0].input}, nullptr));
      return t;
    }
    return TableRef{stars[0].input.file, stars[0].input.columns,
                    stars[0].input.factor, stars[0].input.flat_bytes};
  }

  // ---- inter-star joins along the edges ----
  // Default: BFS from star 0, query order. With greedy_join_order, start
  // at the smallest star (by stored input bytes) and always pull in the
  // smallest available neighbor — chain patterns shrink intermediates.
  const bool greedy = ops->options().greedy_join_order;
  std::vector<uint64_t> star_bytes(pattern.stars.size(), 0);
  if (greedy) {
    for (size_t s = 0; s < pattern.stars.size(); ++s) {
      // Flat-equivalent bytes for factorized stars, so the greedy order
      // matches the flat compilation edge for edge.
      star_bytes[s] = stars[s].input.flat_bytes != 0
                          ? stars[s].input.flat_bytes
                          : dataset->VpFileBytes(stars[s].input.file);
    }
  }
  std::vector<bool> joined(pattern.stars.size(), false);
  std::vector<bool> edge_done(pattern.joins.size(), false);
  size_t anchor = 0;
  if (greedy) {
    for (size_t s = 1; s < pattern.stars.size(); ++s) {
      if (star_bytes[s] < star_bytes[anchor]) anchor = s;
    }
  }
  JoinInput acc = stars[anchor].input;
  joined[anchor] = true;
  size_t remaining = pattern.stars.size() - 1;
  int cycle = 0;
  while (remaining > 0) {
    // Find an edge connecting the joined set to a new star (the smallest
    // such star, when greedy).
    int pick = -1;
    int new_star = -1;
    for (size_t e = 0; e < pattern.joins.size(); ++e) {
      if (edge_done[e]) continue;
      const ntga::JoinEdge& edge = pattern.joins[e];
      int candidate = -1;
      if (joined[edge.star_a] && !joined[edge.star_b]) {
        candidate = edge.star_b;
      } else if (joined[edge.star_b] && !joined[edge.star_a]) {
        candidate = edge.star_a;
      }
      if (candidate < 0) continue;
      if (pick < 0 ||
          (greedy && star_bytes[candidate] < star_bytes[new_star])) {
        pick = static_cast<int>(e);
        new_star = candidate;
      }
      if (!greedy) break;
    }
    if (pick < 0) {
      return Status::InvalidArgument(
          "graph pattern is not connected by join variables");
    }
    edge_done[pick] = true;
    const ntga::JoinEdge& edge = pattern.joins[pick];

    JoinInput left = acc;
    left.join_column = edge.var;
    JoinInput right = stars[new_star].input;
    right.join_column = edge.var;

    // Is this the last join? If so, attach the residual filters.
    RowPredicate post;
    bool last = remaining == 1;
    std::vector<std::string> post_cols;
    if (last) {
      std::vector<const sparql::Expr*> residual;
      for (size_t i = 0; i < filters.size(); ++i) {
        if (!filter_used[i]) residual.push_back(filters[i]);
      }
      if (!residual.empty()) {
        post_cols = left.columns;
        for (const std::string& c : right.columns) {
          if (std::find(post_cols.begin(), post_cols.end(), c) ==
              post_cols.end()) {
            post_cols.push_back(c);
          }
        }
        post = CompilePredicate(residual, post_cols, &dict);
      }
    }

    RAPIDA_ASSIGN_OR_RETURN(
        TableRef t, ops->Join(label + ":join" + std::to_string(cycle++),
                              {left, right}, post, factorize));
    acc.file = t.file;
    acc.columns = t.columns;
    acc.is_vp = false;
    acc.factor = t.factor;
    acc.flat_bytes = t.flat_bytes;
    joined[new_star] = true;
    --remaining;
  }
  return TableRef{acc.file, acc.columns, acc.factor, acc.flat_bytes};
}

StatusOr<analytics::BindingTable> HiveNaiveEngine::Execute(
    const analytics::AnalyticalQuery& query, Dataset* dataset,
    mr::Cluster* cluster, ExecStats* stats) {
  // The relational compiler lives in plan::PlanHiveNaive now: it emits the
  // explicit operator DAG (star-joins, inter-star joins, GROUP BYs, final
  // join) with exec closures calling CompileHivePattern & co below.
  RAPIDA_ASSIGN_OR_RETURN(plan::PhysicalPlan physical,
                          plan::PlanHiveNaive(query, dataset, options_));
  return plan::RunPlanAsEngine(physical, dataset, cluster, options_, stats);
}

}  // namespace rapida::engine
