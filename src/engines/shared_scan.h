#ifndef RAPIDA_ENGINES_SHARED_SCAN_H_
#define RAPIDA_ENGINES_SHARED_SCAN_H_

#include <string>
#include <vector>

#include "analytics/analytical_query.h"
#include "analytics/binding.h"
#include "engines/dataset.h"
#include "engines/engine.h"
#include "mapreduce/cluster.h"
#include "ntga/overlap.h"
#include "util/statusor.h"

namespace rapida::engine {

/// The composite-pattern pipeline of RAPIDAnalytics, factored out so it
/// can serve a *batch* of queries: the paper's intra-query MQO (one
/// composite graph pattern, decoupled aggregations evaluated in one
/// parallel Agg-Join cycle) applied across query boundaries. Queries
/// admitted together whose grouping patterns all overlap share the
/// composite graph-pattern cycles — each pattern's α condition already
/// restricts every grouping to the matches of its own original pattern,
/// so sharing never changes results.

/// Outcome of planning one shared composite scan over the flattened
/// grouping list of one or more analytical queries.
struct SharedScanPlan {
  /// False: the grouping patterns do not overlap (Def. 3.1/3.2 or the
  /// family generalization); callers fall back to per-query execution.
  bool sharable = false;
  std::string why;  // overlap explanation when !sharable
  /// Valid when sharable. var_map / pattern_secondary are indexed by the
  /// flattened grouping order: query 0's groupings first, then query 1's,
  /// and so on.
  ntga::CompositePattern comp;
};

/// Plans a composite over the flattened groupings of `queries`: trivial
/// composite for a single grouping, the paper's pairwise construction for
/// two, and the §6 family generalization beyond that. An error means the
/// composite construction itself failed (not merely "no overlap").
StatusOr<SharedScanPlan> PlanSharedScan(
    const std::vector<const analytics::AnalyticalQuery*>& queries);

/// Applicability probe for the composite rewriting of a single query,
/// shared by the Hive (MQO) and RAPIDAnalytics planners. With
/// `allow_family = false` only the paper's two-pattern construction is
/// considered (the MQO baseline's scope); with it, any grouping count is
/// accepted (single grouping → trivial composite, 3+ → §6 family
/// generalization). `applies == false` means "no overlap" (`why`
/// explains); an error means the composite construction itself failed.
struct CompositeApplicability {
  bool applies = false;
  std::string why;
  ntga::CompositePattern comp;  // valid when applies
};

StatusOr<CompositeApplicability> CheckCompositeRewrite(
    const analytics::AnalyticalQuery& query, bool allow_family);

/// Evaluates the planned composite once ((k−1) α-join cycles), runs every
/// flattened grouping's aggregation in a single parallel TG Agg-Join
/// cycle, then answers each query with its own final join / projection and
/// solution modifiers. On success `results` has one entry per query (a
/// query-local failure is recorded in its slot); a non-OK return means a
/// shared phase failed and no query was answered.
Status ExecuteCompositeBatch(
    const SharedScanPlan& shared,
    const std::vector<const analytics::AnalyticalQuery*>& queries,
    Dataset* dataset, mr::Cluster* cluster, const EngineOptions& options,
    std::vector<StatusOr<analytics::BindingTable>>* results);

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_SHARED_SCAN_H_
