#ifndef RAPIDA_ENGINES_HIVE_NAIVE_H_
#define RAPIDA_ENGINES_HIVE_NAIVE_H_

#include <string>
#include <vector>

#include "engines/engine.h"
#include "engines/relational_ops.h"

namespace rapida::engine {

/// The paper's "Hive (Naive)" baseline: each grouping subquery is compiled
/// independently to a relational plan over the vertically-partitioned
/// tables —
///   one multi-way same-subject join cycle per star pattern (>= 2 triple
///   patterns), one join cycle per inter-star edge, one GROUP BY cycle per
///   grouping — then a final map-only cycle joins the per-grouping results
/// (AQ1's plan in Fig. 2). Hive optimizations are modeled: map-joins when
/// all but one input is small, predicate pushdown into the star cycles,
/// early projection, and map-side partial aggregation.
class HiveNaiveEngine : public Engine {
 public:
  explicit HiveNaiveEngine(const EngineOptions& options = EngineOptions())
      : options_(options) {}

  std::string name() const override { return "Hive (Naive)"; }

  StatusOr<analytics::BindingTable> Execute(
      const analytics::AnalyticalQuery& query, Dataset* dataset,
      mr::Cluster* cluster, ExecStats* stats) override;

 private:
  EngineOptions options_;
};

/// Shared by HiveNaive and HiveMqo: compiles one grouping subquery's graph
/// pattern into star-join + inter-star-join cycles and returns the
/// pattern table. `outer_secondary` (MQO) joins the given secondary
/// PropKeys with LEFT OUTER semantics instead of inner.
///
/// With `factorize` set the star and inter-star joins keep their outputs
/// in d-representation (RelationalOps::Join's factorize_output): the
/// returned TableRef then carries the factorization spec and flat-
/// equivalent byte size, and every size-based decision inside (greedy
/// join order) uses flat-equivalent bytes so the join tree is identical
/// to the flat compilation. Joins with post-predicates and single-input
/// scans stay flat exactly as RelationalOps::Join would leave them.
StatusOr<TableRef> CompileHivePattern(
    RelationalOps* ops, Dataset* dataset,
    const ntga::StarGraph& pattern,
    const std::vector<const sparql::Expr*>& filters,
    const std::set<ntga::PropKey>* outer_secondary,
    const std::string& label, bool factorize = false);

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_HIVE_NAIVE_H_
