#include "engines/rapid_plus.h"

#include <chrono>

#include "engines/var_translate.h"
#include "ntga/overlap.h"
#include "util/logging.h"

namespace rapida::engine {

void SplitNtgaFilters(
    const analytics::GroupingSubquery& grouping,
    const std::map<std::string, std::string>& var_map,
    const std::vector<std::string>& pattern_vars,
    const rdf::Dictionary* dict,
    std::vector<sparql::ExprPtr>* owned, PushedFilters* pushed,
    RowPredicate* mapping_predicate) {
  std::vector<const sparql::Expr*> residual;
  for (const auto& f : grouping.filters) {
    sparql::ExprPtr translated = MapExprVars(*f, var_map);
    std::vector<std::string> vars;
    translated->CollectVars(&vars);
    sparql::Expr* raw = translated.get();
    owned->push_back(std::move(translated));
    if (vars.size() == 1) {
      (*pushed)[vars[0]].push_back(raw);
    } else {
      residual.push_back(raw);
    }
  }
  *mapping_predicate =
      residual.empty() ? nullptr
                       : CompilePredicate(residual, pattern_vars, dict);
}

StatusOr<analytics::BindingTable> RapidPlusEngine::Execute(
    const analytics::AnalyticalQuery& query, Dataset* dataset,
    mr::Cluster* cluster, ExecStats* stats) {
  auto start = std::chrono::steady_clock::now();
  RAPIDA_RETURN_IF_ERROR(dataset->EnsureTripleGroups());
  cluster->ResetHistory();
  NtgaExec exec(cluster, dataset, options_, options_.tmp_namespace + "tmp:rplus");
  const rdf::Dictionary& dict = dataset->graph().dict();

  std::vector<analytics::BindingTable> agg_tables;
  std::vector<std::string> agg_files;
  std::vector<sparql::ExprPtr> owned_filters;

  for (size_t g = 0; g < query.groupings.size(); ++g) {
    const analytics::GroupingSubquery& grouping = query.groupings[g];
    std::string label = "g" + std::to_string(g);

    ntga::CompositePattern comp =
        ntga::SinglePatternComposite(grouping.pattern);
    ntga::ResolvedPattern resolved = ntga::ResolvePattern(comp, dict);

    // Pattern variables: everything the pattern binds (identity map).
    std::vector<std::string> pattern_vars;
    for (const auto& [orig, composite_var] : comp.var_map[0]) {
      pattern_vars.push_back(composite_var);
    }

    PushedFilters pushed;
    RowPredicate mapping_pred;
    SplitNtgaFilters(grouping, comp.var_map[0], pattern_vars, &dict,
                     &owned_filters, &pushed, &mapping_pred);

    auto matches =
        exec.ComputePatternMatches(resolved, {}, pushed, label);
    if (!matches.ok()) {
      exec.Cleanup();
      return matches.status();
    }

    NtgaGrouping work;
    work.spec.group_vars = grouping.group_by;  // identity namespace
    work.spec.aggs = grouping.aggs;
    work.pattern_vars = pattern_vars;
    work.output_columns = grouping.group_by;
    for (const ntga::AggSpec& a : grouping.aggs) {
      work.output_columns.push_back(a.output_name);
    }
    work.mapping_predicate = mapping_pred;
    work.having = grouping.having.get();

    std::vector<std::string> files;
    auto tables = exec.RunAggJoins(resolved, *matches, pushed, {work},
                                   /*parallel=*/false, label, &files);
    if (!tables.ok()) {
      exec.Cleanup();
      return tables.status();
    }
    agg_tables.push_back(std::move((*tables)[0]));
    agg_files.push_back(files[0]);
  }

  // Single grouping: the Agg-Join output already is the answer (2-cycle
  // plans of Table 3); multi-grouping: one map-only join cycle.
  StatusOr<analytics::BindingTable> result = Status::Internal("unset");
  if (query.groupings.size() == 1) {
    rdf::Dictionary* mdict = &dataset->dict();
    ProjectedResult projected =
        JoinAndProject(std::move(agg_tables), query.top_items, mdict);
    analytics::BindingTable table(projected.columns);
    for (const mr::Record& r : projected.rows) {
      std::vector<rdf::TermId> row = DecodeRow(r.value);
      row.resize(projected.columns.size(), rdf::kInvalidTermId);
      table.AddRow(std::move(row));
    }
    result = std::move(table);
  } else {
    result = exec.FinalJoinProject(std::move(agg_tables), query.top_items,
                                   agg_files, "final");
  }
  exec.Cleanup();
  if (result.ok()) {
    analytics::ApplySolutionModifiers(query, dataset->dict(), &*result);
  }
  if (result.ok() && stats != nullptr) {
    stats->engine = name();
    stats->workflow.jobs = cluster->history();
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return result;
}

}  // namespace rapida::engine
