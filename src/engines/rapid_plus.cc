#include "engines/rapid_plus.h"

#include "engines/var_translate.h"
#include "plan/executor.h"
#include "plan/planner.h"

namespace rapida::engine {

void SplitNtgaFilters(
    const std::vector<sparql::ExprPtr>& filters,
    const std::map<std::string, std::string>& var_map,
    const std::vector<std::string>& pattern_vars,
    const rdf::Dictionary* dict,
    std::vector<sparql::ExprPtr>* owned, PushedFilters* pushed,
    RowPredicate* mapping_predicate) {
  std::vector<const sparql::Expr*> residual;
  for (const auto& f : filters) {
    sparql::ExprPtr translated = MapExprVars(*f, var_map);
    std::vector<std::string> vars;
    translated->CollectVars(&vars);
    sparql::Expr* raw = translated.get();
    owned->push_back(std::move(translated));
    if (vars.size() == 1) {
      (*pushed)[vars[0]].push_back(raw);
    } else {
      residual.push_back(raw);
    }
  }
  *mapping_predicate =
      residual.empty() ? nullptr
                       : CompilePredicate(residual, pattern_vars, dict);
}

StatusOr<analytics::BindingTable> RapidPlusEngine::Execute(
    const analytics::AnalyticalQuery& query, Dataset* dataset,
    mr::Cluster* cluster, ExecStats* stats) {
  // The sequential NTGA pipeline (per grouping: pattern matching, then one
  // TG Agg-Join cycle; final join) is emitted by plan::PlanRapidPlus.
  RAPIDA_ASSIGN_OR_RETURN(plan::PhysicalPlan physical,
                          plan::PlanRapidPlus(query, dataset, options_));
  return plan::RunPlanAsEngine(physical, dataset, cluster, options_, stats);
}

}  // namespace rapida::engine
