#ifndef RAPIDA_ENGINES_RAPID_PLUS_H_
#define RAPIDA_ENGINES_RAPID_PLUS_H_

#include <string>

#include "engines/engine.h"
#include "engines/ntga_exec.h"

namespace rapida::engine {

/// The paper's "RAPID+ (Naive)" baseline: NTGA evaluation of each graph
/// pattern *sequentially* — per grouping subquery, (k−1) α-join cycles for
/// its k stars (one-star patterns fold matching into the aggregation map)
/// followed by one TG Agg-Join cycle; then a map-only cycle joins the
/// aggregated triplegroups. No composite pattern, no shared execution
/// across groupings.
class RapidPlusEngine : public Engine {
 public:
  explicit RapidPlusEngine(const EngineOptions& options = EngineOptions())
      : options_(options) {}

  std::string name() const override { return "RAPID+ (Naive)"; }

  StatusOr<analytics::BindingTable> Execute(
      const analytics::AnalyticalQuery& query, Dataset* dataset,
      mr::Cluster* cluster, ExecStats* stats) override;

 private:
  EngineOptions options_;
};

/// Splits a filter list into map-side pushable single-variable filters
/// (keyed by composite variable) and a residual mapping-level predicate
/// over `pattern_vars`. `owned` receives the translated expression clones
/// (must outlive the returned structures).
void SplitNtgaFilters(
    const std::vector<sparql::ExprPtr>& filters,
    const std::map<std::string, std::string>& var_map,
    const std::vector<std::string>& pattern_vars,
    const rdf::Dictionary* dict,
    std::vector<sparql::ExprPtr>* owned, PushedFilters* pushed,
    RowPredicate* mapping_predicate);

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_RAPID_PLUS_H_
