#include "engines/relational_ops.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <unordered_map>

#include "analytics/aggregates.h"
#include "analytics/value.h"
#include "mapreduce/kernels.h"
#include "sparql/expr_eval.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rapida::engine {

using analytics::Aggregator;

void AppendRow(std::string* out, const rdf::TermId* row, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) *out += ',';
    mr::kernels::AppendDecimal(out, row[i]);
  }
}

void AppendRow(std::string* out, const std::vector<rdf::TermId>& row) {
  AppendRow(out, row.data(), row.size());
}

void DecodeRowInto(std::string_view data, std::vector<rdf::TermId>* out) {
  out->clear();
  if (data.empty()) return;
  size_t start = 0;
  while (true) {
    size_t pos = data.find(',', start);
    std::string_view part = data.substr(
        start, pos == std::string_view::npos ? std::string_view::npos
                                             : pos - start);
    int64_t v = 0;
    ParseDigits(part, &v);
    out->push_back(static_cast<rdf::TermId>(v));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
}

std::string EncodeRow(const std::vector<rdf::TermId>& row) {
  std::string out;
  AppendRow(&out, row);
  return out;
}

std::vector<rdf::TermId> DecodeRow(std::string_view data) {
  std::vector<rdf::TermId> out;
  DecodeRowInto(data, &out);
  return out;
}

int TableRef::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return static_cast<int>(i);
  }
  return -1;
}

RowPredicate CompilePredicate(
    const std::vector<const sparql::Expr*>& filters,
    const std::vector<std::string>& columns, const rdf::Dictionary* dict) {
  if (filters.empty()) return nullptr;
  std::vector<sparql::ExprPtr> cloned;
  cloned.reserve(filters.size());
  for (const sparql::Expr* f : filters) cloned.push_back(f->Clone());
  auto shared =
      std::make_shared<std::vector<sparql::ExprPtr>>(std::move(cloned));
  std::vector<std::string> cols = columns;
  return [shared, cols, dict](const std::vector<rdf::TermId>& row) {
    auto resolve = [&cols, &row](const std::string& v) -> rdf::TermId {
      for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i] == v) return i < row.size() ? row[i] : rdf::kInvalidTermId;
      }
      return rdf::kInvalidTermId;
    };
    for (const sparql::ExprPtr& f : *shared) {
      if (!sparql::EffectiveBool(sparql::EvaluateExpr(*f, resolve, *dict))) {
        return false;
      }
    }
    return true;
  };
}

RelationalOps::RelationalOps(mr::Cluster* cluster, Dataset* dataset,
                             const EngineOptions& options,
                             std::string tmp_prefix)
    : cluster_(cluster),
      dataset_(dataset),
      options_(options),
      tmp_prefix_(std::move(tmp_prefix)) {}

std::string RelationalOps::NextTmp(const std::string& hint) {
  std::string name =
      tmp_prefix_ + ":" + std::to_string(counter_++) + ":" + hint;
  temp_files_.push_back(name);
  return name;
}

void RelationalOps::Cleanup() {
  for (const std::string& f : temp_files_) {
    if (dataset_->dfs().Exists(f)) {
      (void)dataset_->dfs().Delete(f);
    }
  }
  temp_files_.clear();
}

namespace {

/// Decodes an input record according to its JoinInput layout, reusing
/// `out`'s capacity (the batch kernels call this per record in a loop).
void DecodeInputRowInto(const JoinInput& input, const mr::Record& r,
                        std::vector<rdf::TermId>* out) {
  if (!input.is_vp) {
    DecodeRowInto(r.value, out);
    return;
  }
  out->clear();
  int64_t s = 0;
  ParseDigits(r.key, &s);
  out->push_back(static_cast<rdf::TermId>(s));
  if (input.columns.size() == 1) return;
  int64_t o = 0;
  ParseDigits(r.value, &o);
  out->push_back(static_cast<rdf::TermId>(o));
}

std::vector<rdf::TermId> DecodeInputRow(const JoinInput& input,
                                        const mr::Record& r) {
  std::vector<rdf::TermId> out;
  DecodeInputRowInto(input, r, &out);
  return out;
}

/// Broadcast side table for the batch map-join kernel: one flat cell pool
/// plus two CSR layers — rows over cells, and per-distinct-key groups over
/// rows — probed through a HashIndex on the mixed key id. Rows keep file
/// order within each group, matching the vector-of-vectors the scalar path
/// builds.
struct BroadcastTable {
  mr::kernels::HashIndex index;
  std::vector<rdf::TermId> keys;    // distinct join key per dense id
  std::vector<uint32_t> group_end;  // CSR: rows of key id g are
                                    //   row_of[group_end[g-1]..group_end[g])
  std::vector<uint32_t> row_of;     // row indices grouped by key id
  std::vector<uint32_t> row_end;    // CSR: cells of row r
  std::vector<rdf::TermId> cells;   // row payloads in arrival order

  uint32_t GroupBegin(uint32_t id) const {
    return id == 0 ? 0 : group_end[id - 1];
  }
  uint32_t RowBegin(uint32_t r) const { return r == 0 ? 0 : row_end[r - 1]; }
};

void BuildBroadcast(const JoinInput& input,
                    const std::vector<mr::Record>& records, int key_col,
                    BroadcastTable* t) {
  std::vector<uint32_t> key_id_of_row;
  std::vector<uint32_t> counts;
  std::vector<rdf::TermId> row;
  t->index.Reserve(records.size());
  for (const mr::Record& r : records) {
    DecodeInputRowInto(input, r, &row);
    if (input.predicate && !input.predicate(row)) continue;
    rdf::TermId k = row[key_col];
    auto [id, inserted] = t->index.FindOrInsert(
        mr::kernels::MixId(k), static_cast<uint32_t>(t->keys.size()),
        [&](uint32_t cand) { return t->keys[cand] == k; });
    if (inserted) {
      t->keys.push_back(k);
      counts.push_back(0);
    }
    ++counts[id];
    key_id_of_row.push_back(id);
    t->cells.insert(t->cells.end(), row.begin(), row.end());
    t->row_end.push_back(static_cast<uint32_t>(t->cells.size()));
  }
  // Counting-sort scatter: group rows by key id, file order within a group.
  t->group_end.resize(counts.size());
  uint32_t total = 0;
  for (size_t g = 0; g < counts.size(); ++g) {
    total += counts[g];
    t->group_end[g] = total;
  }
  t->row_of.resize(key_id_of_row.size());
  std::vector<uint32_t> cursor(counts.size());
  for (size_t g = 0; g < counts.size(); ++g) cursor[g] = t->GroupBegin(g);
  for (size_t r = 0; r < key_id_of_row.size(); ++r) {
    t->row_of[cursor[key_id_of_row[r]]++] = static_cast<uint32_t>(r);
  }
}

/// Per-reduce-task scratch of the batch repartition-join reduce: each
/// side's rows in a flat cell pool + CSR row bounds, the current/next
/// cross-product buffers (width-strided), and the emit buffer.
struct JoinReduceScratch {
  std::vector<std::vector<rdf::TermId>> side_cells;
  std::vector<std::vector<uint32_t>> side_end;
  std::vector<rdf::TermId> row, cur, next, pred_row;
  std::string val_buf;
};

}  // namespace

StatusOr<TableRef> RelationalOps::Join(const std::string& name_hint,
                                       const std::vector<JoinInput>& inputs,
                                       RowPredicate post_predicate) {
  RAPIDA_CHECK(!inputs.empty());
  // Output layout: first input's columns, then the unseen columns of each
  // later input. Per input: mapping from its columns to output positions,
  // and the index of its join column.
  std::vector<std::string> out_columns = inputs[0].columns;
  std::vector<std::vector<int>> out_pos(inputs.size());
  std::vector<int> join_idx(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    join_idx[i] = -1;
    for (size_t c = 0; c < inputs[i].columns.size(); ++c) {
      const std::string& name = inputs[i].columns[c];
      if (name == inputs[i].join_column) join_idx[i] = static_cast<int>(c);
      auto it = std::find(out_columns.begin(), out_columns.end(), name);
      int pos;
      if (it == out_columns.end()) {
        pos = static_cast<int>(out_columns.size());
        out_columns.push_back(name);
      } else {
        pos = static_cast<int>(it - out_columns.begin());
      }
      out_pos[i].push_back(pos);
    }
    if (join_idx[i] < 0) {
      return Status::InvalidArgument("join column '" + inputs[i].join_column +
                                     "' not among input columns");
    }
    if (i == 0 && inputs[i].outer) {
      return Status::InvalidArgument("first join input cannot be outer");
    }
  }
  const size_t width = out_columns.size();

  // Map-join eligibility: every input but the largest fits the threshold,
  // and the largest is not an outer input.
  int big = 0;
  uint64_t big_bytes = 0;
  std::vector<uint64_t> sizes(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    sizes[i] = dataset_->VpFileBytes(inputs[i].file);
    if (sizes[i] > big_bytes) {
      big_bytes = sizes[i];
      big = static_cast<int>(i);
    }
  }
  bool map_join = options_.enable_map_joins && inputs.size() > 1;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (static_cast<int>(i) == big) continue;
    if (sizes[i] > options_.map_join_threshold_bytes) map_join = false;
  }
  if (inputs[big].outer) map_join = false;

  TableRef out;
  out.file = NextTmp(name_hint);
  out.columns = out_columns;

  mr::JobConfig job;
  job.name = name_hint + (map_join ? " (map-join)" : "");
  for (const JoinInput& in : inputs) job.inputs.push_back(in.file);
  job.output = out.file;

  // Shared copies for the closures.
  auto ins = std::make_shared<std::vector<JoinInput>>(inputs);

  if (map_join && options_.vectorized_kernels) {
    // Batch kernel: CSR broadcast tables probed through HashIndex, flat
    // width-strided cross-product buffers, one dispatch per split. Emits
    // the exact records of the scalar map below, in the same order.
    auto tables =
        std::make_shared<std::vector<BroadcastTable>>(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (static_cast<int>(i) == big) continue;
      RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* f,
                              dataset_->dfs().Open(inputs[i].file));
      BuildBroadcast(inputs[i], f->records, join_idx[i], &(*tables)[i]);
    }
    job.map_batch = [ins, tables, big, out_pos, join_idx, width,
                     post_predicate](const mr::TaggedRecord* recs, size_t n,
                                     mr::MapContext* ctx) {
      const JoinInput& input = (*ins)[big];
      std::vector<rdf::TermId> row, cur, next, pred_row;
      std::string val_buf;
      for (size_t ri = 0; ri < n; ++ri) {
        if (recs[ri].tag != big) continue;  // broadcast copies: scan only
        DecodeInputRowInto(input, *recs[ri].record, &row);
        if (input.predicate && !input.predicate(row)) continue;
        rdf::TermId key = row[join_idx[big]];
        // Start from the big row, fold in each small side.
        cur.assign(width, rdf::kInvalidTermId);
        for (size_t c = 0; c < row.size(); ++c) {
          cur[out_pos[big][c]] = row[c];
        }
        bool dead = false;
        for (size_t i = 0; i < ins->size() && !dead; ++i) {
          if (i == static_cast<size_t>(big)) continue;
          const BroadcastTable& t = (*tables)[i];
          uint32_t id =
              t.index.Find(mr::kernels::MixId(key), [&](uint32_t cand) {
                return t.keys[cand] == key;
              });
          if (id == mr::kernels::HashIndex::kNotFound) {
            if (!(*ins)[i].outer) dead = true;  // inner miss: no output
            continue;                           // outer: leave columns NULL
          }
          next.clear();
          for (size_t p = 0; p < cur.size() / width; ++p) {
            for (uint32_t g = t.GroupBegin(id); g < t.group_end[id]; ++g) {
              uint32_t r2 = t.row_of[g];
              size_t base = next.size();
              next.insert(next.end(), cur.begin() + p * width,
                          cur.begin() + (p + 1) * width);
              uint32_t cb = t.RowBegin(r2);
              for (uint32_t c = cb; c < t.row_end[r2]; ++c) {
                next[base + out_pos[i][c - cb]] = t.cells[c];
              }
            }
          }
          cur.swap(next);
        }
        if (dead) continue;
        for (size_t p = 0; p < cur.size() / width; ++p) {
          if (post_predicate) {
            pred_row.assign(cur.begin() + p * width,
                            cur.begin() + (p + 1) * width);
            if (!post_predicate(pred_row)) continue;
          }
          val_buf.clear();
          AppendRow(&val_buf, cur.data() + p * width, width);
          ctx->Emit("", val_buf);
        }
      }
    };
  } else if (map_join) {
    // Broadcast hash tables for every small input.
    auto hashes = std::make_shared<
        std::vector<std::unordered_map<rdf::TermId,
                                       std::vector<std::vector<rdf::TermId>>>>>();
    hashes->resize(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (static_cast<int>(i) == big) continue;
      RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* f,
                              dataset_->dfs().Open(inputs[i].file));
      for (const mr::Record& r : f->records) {
        std::vector<rdf::TermId> row = DecodeInputRow(inputs[i], r);
        if (inputs[i].predicate && !inputs[i].predicate(row)) continue;
        (*hashes)[i][row[join_idx[i]]].push_back(std::move(row));
      }
    }
    job.map = [ins, hashes, big, out_pos, join_idx, width, post_predicate](
                  const mr::Record& r, int tag, mr::MapContext* ctx) {
      if (tag != big) return;  // broadcast copies: scanned, not re-emitted
      const JoinInput& input = (*ins)[tag];
      std::vector<rdf::TermId> row = DecodeInputRow(input, r);
      if (input.predicate && !input.predicate(row)) return;
      rdf::TermId key = row[join_idx[tag]];
      // Start from the big row, fold in each small side.
      std::vector<std::vector<rdf::TermId>> results;
      {
        std::vector<rdf::TermId> base(width, rdf::kInvalidTermId);
        for (size_t c = 0; c < row.size(); ++c) base[out_pos[tag][c]] = row[c];
        results.push_back(std::move(base));
      }
      for (size_t i = 0; i < ins->size(); ++i) {
        if (i == static_cast<size_t>(big)) continue;
        auto it = (*hashes)[i].find(key);
        bool empty = it == (*hashes)[i].end() || it->second.empty();
        if (empty) {
          if (!(*ins)[i].outer) return;  // inner input missing: no output
          continue;                      // outer: leave columns NULL
        }
        std::vector<std::vector<rdf::TermId>> next;
        for (const auto& partial : results) {
          for (const auto& srow : it->second) {
            std::vector<rdf::TermId> merged = partial;
            for (size_t c = 0; c < srow.size(); ++c) {
              merged[out_pos[i][c]] = srow[c];
            }
            next.push_back(std::move(merged));
          }
        }
        results = std::move(next);
      }
      for (const auto& merged : results) {
        if (post_predicate && !post_predicate(merged)) continue;
        ctx->Emit("", EncodeRow(merged));
      }
    };
  } else if (options_.vectorized_kernels) {
    // Batch repartition join: one dispatch per split with all scratch in
    // reused buffers, and a per-reduce-task scratch that keeps each side
    // as a flat CSR pool instead of vector-of-vector rows.
    job.map_batch = [ins, join_idx](const mr::TaggedRecord* recs, size_t n,
                                    mr::MapContext* ctx) {
      std::vector<rdf::TermId> row;
      std::string key_buf, val_buf;
      for (size_t i = 0; i < n; ++i) {
        const int tag = recs[i].tag;
        const JoinInput& input = (*ins)[tag];
        DecodeInputRowInto(input, *recs[i].record, &row);
        if (input.predicate && !input.predicate(row)) continue;
        key_buf.clear();
        mr::kernels::AppendDecimal(&key_buf, row[join_idx[tag]]);
        val_buf.clear();
        mr::kernels::AppendDecimal(&val_buf, static_cast<uint64_t>(tag));
        val_buf += '|';
        AppendRow(&val_buf, row.data(), row.size());
        ctx->Emit(key_buf, val_buf);
      }
    };
    job.reduce = [ins, out_pos, width, post_predicate](
                     std::string_view /*key*/, const mr::ValueSpan& values,
                     mr::ReduceContext* ctx) {
      JoinReduceScratch* s = ctx->TaskState<JoinReduceScratch>();
      s->side_cells.resize(ins->size());
      s->side_end.resize(ins->size());
      for (size_t i = 0; i < ins->size(); ++i) {
        s->side_cells[i].clear();
        s->side_end[i].clear();
      }
      for (std::string_view v : values) {
        size_t bar = v.find('|');
        if (bar == std::string_view::npos) continue;
        int64_t tag = 0;
        ParseInt64(v.substr(0, bar), &tag);
        DecodeRowInto(v.substr(bar + 1), &s->row);
        auto& cells = s->side_cells[tag];
        cells.insert(cells.end(), s->row.begin(), s->row.end());
        s->side_end[tag].push_back(static_cast<uint32_t>(cells.size()));
      }
      if (s->side_end[0].empty()) return;
      s->cur.clear();
      for (size_t r = 0; r < s->side_end[0].size(); ++r) {
        size_t base = s->cur.size();
        s->cur.resize(base + width, rdf::kInvalidTermId);
        uint32_t cb = r == 0 ? 0 : s->side_end[0][r - 1];
        for (uint32_t c = cb; c < s->side_end[0][r]; ++c) {
          s->cur[base + out_pos[0][c - cb]] = s->side_cells[0][c];
        }
      }
      for (size_t i = 1; i < ins->size(); ++i) {
        if (s->side_end[i].empty()) {
          if (!(*ins)[i].outer) return;
          continue;
        }
        s->next.clear();
        for (size_t p = 0; p < s->cur.size() / width; ++p) {
          for (size_t r = 0; r < s->side_end[i].size(); ++r) {
            size_t base = s->next.size();
            s->next.insert(s->next.end(), s->cur.begin() + p * width,
                           s->cur.begin() + (p + 1) * width);
            uint32_t cb = r == 0 ? 0 : s->side_end[i][r - 1];
            for (uint32_t c = cb; c < s->side_end[i][r]; ++c) {
              s->next[base + out_pos[i][c - cb]] = s->side_cells[i][c];
            }
          }
        }
        s->cur.swap(s->next);
      }
      for (size_t p = 0; p < s->cur.size() / width; ++p) {
        if (post_predicate) {
          s->pred_row.assign(s->cur.begin() + p * width,
                             s->cur.begin() + (p + 1) * width);
          if (!post_predicate(s->pred_row)) continue;
        }
        s->val_buf.clear();
        AppendRow(&s->val_buf, s->cur.data() + p * width, width);
        ctx->Emit("", s->val_buf);
      }
    };
    // Pure function of (key, values): reducers may run concurrently.
    job.reduce_parallel_safe = true;
  } else {
    // Repartition join.
    job.map = [ins, join_idx](const mr::Record& r, int tag,
                              mr::MapContext* ctx) {
      const JoinInput& input = (*ins)[tag];
      std::vector<rdf::TermId> row = DecodeInputRow(input, r);
      if (input.predicate && !input.predicate(row)) return;
      rdf::TermId key = row[join_idx[tag]];
      ctx->Emit(std::to_string(key),
                std::to_string(tag) + "|" + EncodeRow(row));
    };
    job.reduce = [ins, out_pos, width, post_predicate](
                     std::string_view /*key*/, const mr::ValueSpan& values,
                     mr::ReduceContext* ctx) {
      std::vector<std::vector<std::vector<rdf::TermId>>> sides(ins->size());
      for (std::string_view v : values) {
        size_t bar = v.find('|');
        if (bar == std::string_view::npos) continue;
        int64_t tag = 0;
        ParseInt64(v.substr(0, bar), &tag);
        sides[tag].push_back(DecodeRow(v.substr(bar + 1)));
      }
      if (sides[0].empty()) return;
      std::vector<std::vector<rdf::TermId>> results;
      for (const auto& row : sides[0]) {
        std::vector<rdf::TermId> base(width, rdf::kInvalidTermId);
        for (size_t c = 0; c < row.size(); ++c) base[out_pos[0][c]] = row[c];
        results.push_back(std::move(base));
      }
      for (size_t i = 1; i < ins->size(); ++i) {
        if (sides[i].empty()) {
          if (!(*ins)[i].outer) return;
          continue;
        }
        std::vector<std::vector<rdf::TermId>> next;
        for (const auto& partial : results) {
          for (const auto& srow : sides[i]) {
            std::vector<rdf::TermId> merged = partial;
            for (size_t c = 0; c < srow.size(); ++c) {
              merged[out_pos[i][c]] = srow[c];
            }
            next.push_back(std::move(merged));
          }
        }
        results = std::move(next);
      }
      for (const auto& merged : results) {
        if (post_predicate && !post_predicate(merged)) continue;
        ctx->Emit("", EncodeRow(merged));
      }
    };
    // Pure function of (key, values): reducers may run concurrently.
    job.reduce_parallel_safe = true;
  }

  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats ignored, cluster_->Run(job));
  (void)ignored;
  return out;
}

StatusOr<TableRef> RelationalOps::UnionAll(
    const std::string& name_hint, const std::vector<TableRef>& inputs) {
  RAPIDA_CHECK(!inputs.empty());
  // Unified layout plus, per input, the mapping from its columns to
  // output positions (same scheme as Join's layout).
  std::vector<std::string> out_columns = inputs[0].columns;
  std::vector<std::vector<int>> out_pos(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (const std::string& name : inputs[i].columns) {
      auto it = std::find(out_columns.begin(), out_columns.end(), name);
      int pos;
      if (it == out_columns.end()) {
        pos = static_cast<int>(out_columns.size());
        out_columns.push_back(name);
      } else {
        pos = static_cast<int>(it - out_columns.begin());
      }
      out_pos[i].push_back(pos);
    }
  }
  const size_t width = out_columns.size();

  TableRef out;
  out.file = NextTmp(name_hint);
  out.columns = out_columns;

  mr::JobConfig job;
  job.name = name_hint + " (map-only)";
  for (const TableRef& t : inputs) job.inputs.push_back(t.file);
  job.output = out.file;

  if (options_.vectorized_kernels) {
    job.map_batch = [out_pos, width](const mr::TaggedRecord* recs, size_t n,
                                     mr::MapContext* ctx) {
      std::vector<rdf::TermId> row, padded;
      std::string val_buf;
      for (size_t i = 0; i < n; ++i) {
        DecodeRowInto(recs[i].record->value, &row);
        const std::vector<int>& pos = out_pos[recs[i].tag];
        padded.assign(width, rdf::kInvalidTermId);
        for (size_t c = 0; c < row.size() && c < pos.size(); ++c) {
          padded[pos[c]] = row[c];
        }
        val_buf.clear();
        AppendRow(&val_buf, padded);
        ctx->Emit("", val_buf);
      }
    };
  } else {
    job.map = [out_pos, width](const mr::Record& r, int tag,
                               mr::MapContext* ctx) {
      std::vector<rdf::TermId> row = DecodeRow(r.value);
      const std::vector<int>& pos = out_pos[tag];
      std::vector<rdf::TermId> padded(width, rdf::kInvalidTermId);
      for (size_t c = 0; c < row.size() && c < pos.size(); ++c) {
        padded[pos[c]] = row[c];
      }
      ctx->Emit("", EncodeRow(padded));
    };
  }

  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
  (void)stats;
  return out;
}

StatusOr<TableRef> RelationalOps::GroupBy(
    const std::string& name_hint, const TableRef& input,
    const std::vector<std::string>& key_columns,
    const std::vector<AggColumn>& aggs, RowPredicate having) {
  std::vector<int> key_idx;
  for (const std::string& k : key_columns) {
    int i = input.ColumnIndex(k);
    if (i < 0) {
      return Status::InvalidArgument("group key column '" + k +
                                     "' not in input");
    }
    key_idx.push_back(i);
  }
  std::vector<int> agg_idx;
  for (const AggColumn& a : aggs) {
    if (a.count_star) {
      agg_idx.push_back(-1);
      continue;
    }
    int i = input.ColumnIndex(a.column);
    if (i < 0) {
      return Status::InvalidArgument("aggregate column '" + a.column +
                                     "' not in input");
    }
    agg_idx.push_back(i);
  }

  TableRef out;
  out.file = NextTmp(name_hint);
  out.columns = key_columns;
  for (const AggColumn& a : aggs) out.columns.push_back(a.output_name);

  rdf::Dictionary* dict = &dataset_->dict();
  auto agg_specs = std::make_shared<std::vector<AggColumn>>(aggs);

  mr::JobConfig job;
  job.name = name_hint;
  job.inputs = {input.file};
  job.output = out.file;

  auto make_aggs = [agg_specs]() {
    std::vector<Aggregator> out_aggs;
    for (const AggColumn& a : *agg_specs) {
      out_aggs.emplace_back(a.func, /*distinct=*/false, a.separator);
    }
    return out_aggs;
  };

  if (options_.partial_aggregation && options_.vectorized_kernels) {
    // Batch kernel for map-side pre-aggregation: an insertion-ordered
    // open-addressing table (HashIndex over the encoded group key) built
    // in one dispatch per split, flushed at the end of the same call.
    // Flush order differs from the scalar std::map's sorted order, but
    // group keys are unique within a task and the shuffle sorts by key, so
    // the post-shuffle stream — and every counter — is identical.
    job.map_batch = [key_idx, agg_idx, dict, make_aggs](
                        const mr::TaggedRecord* recs, size_t n,
                        mr::MapContext* ctx) {
      mr::kernels::HashIndex index;
      std::vector<std::string> keys;
      std::vector<std::vector<Aggregator>> agg_rows;
      std::vector<rdf::TermId> row;
      std::string key_buf;
      for (size_t i = 0; i < n; ++i) {
        DecodeRowInto(recs[i].record->value, &row);
        key_buf.clear();
        for (size_t k = 0; k < key_idx.size(); ++k) {
          if (k > 0) key_buf += ',';
          mr::kernels::AppendDecimal(&key_buf, row[key_idx[k]]);
        }
        auto [id, inserted] = index.FindOrInsert(
            mr::HashKey(key_buf), static_cast<uint32_t>(keys.size()),
            [&](uint32_t cand) { return keys[cand] == key_buf; });
        if (inserted) {
          keys.push_back(key_buf);
          agg_rows.push_back(make_aggs());
        }
        std::vector<Aggregator>& agg_list = agg_rows[id];
        for (size_t a = 0; a < agg_idx.size(); ++a) {
          if (agg_idx[a] < 0) {
            agg_list[a].AddRow();
          } else {
            agg_list[a].AddTerm(row[agg_idx[a]], *dict);
          }
        }
      }
      for (size_t id = 0; id < keys.size(); ++id) {
        std::string value = "P";
        for (const Aggregator& a : agg_rows[id]) {
          value += '|';
          value += a.SerializePartial();
        }
        ctx->Emit(keys[id], value);
      }
    };
  } else if (options_.partial_aggregation) {
    // Hash-based map-side pre-aggregation (the relational analogue of
    // Alg. 3's multiAggMap). The table lives in per-task state so
    // concurrent map tasks accumulate independently.
    using PartialMap = std::map<std::string, std::vector<Aggregator>>;
    job.map = [key_idx, agg_idx, dict, make_aggs](
                  const mr::Record& r, int, mr::MapContext* ctx) {
      PartialMap* partials = ctx->TaskState<PartialMap>();
      std::vector<rdf::TermId> row = DecodeRow(r.value);
      std::vector<rdf::TermId> key;
      for (int i : key_idx) key.push_back(row[i]);
      auto [it, inserted] = partials->emplace(EncodeRow(key), make_aggs());
      for (size_t a = 0; a < agg_idx.size(); ++a) {
        if (agg_idx[a] < 0) {
          it->second[a].AddRow();
        } else {
          it->second[a].AddTerm(row[agg_idx[a]], *dict);
        }
      }
    };
    job.map_finish = [](mr::MapContext* ctx) {
      PartialMap* partials = ctx->TaskState<PartialMap>();
      for (auto& [key, agg_list] : *partials) {
        std::string value = "P";
        for (const Aggregator& a : agg_list) {
          value += '|';
          value += a.SerializePartial();
        }
        ctx->Emit(key, value);
      }
      partials->clear();
    };
  } else if (options_.vectorized_kernels) {
    job.map_batch = [key_idx, agg_idx](const mr::TaggedRecord* recs,
                                       size_t n, mr::MapContext* ctx) {
      std::vector<rdf::TermId> row;
      std::string key_buf, val_buf;
      for (size_t i = 0; i < n; ++i) {
        DecodeRowInto(recs[i].record->value, &row);
        key_buf.clear();
        for (size_t k = 0; k < key_idx.size(); ++k) {
          if (k > 0) key_buf += ',';
          mr::kernels::AppendDecimal(&key_buf, row[key_idx[k]]);
        }
        val_buf.assign("R|");
        for (size_t a = 0; a < agg_idx.size(); ++a) {
          if (a > 0) val_buf += ',';
          mr::kernels::AppendDecimal(
              &val_buf, agg_idx[a] < 0 ? rdf::kInvalidTermId
                                       : row[agg_idx[a]]);
        }
        ctx->Emit(key_buf, val_buf);
      }
    };
  } else {
    job.map = [key_idx, agg_idx](const mr::Record& r, int,
                                 mr::MapContext* ctx) {
      std::vector<rdf::TermId> row = DecodeRow(r.value);
      std::vector<rdf::TermId> key;
      for (int i : key_idx) key.push_back(row[i]);
      std::vector<rdf::TermId> args;
      for (int i : agg_idx) {
        args.push_back(i < 0 ? rdf::kInvalidTermId : row[i]);
      }
      ctx->Emit(EncodeRow(key), "R|" + EncodeRow(args));
    };
  }

  const bool batch_reduce = options_.vectorized_kernels;
  job.reduce = [agg_specs, dict, make_aggs, having, batch_reduce](
                   std::string_view key, const mr::ValueSpan& values,
                   mr::ReduceContext* ctx) {
    // Batch mode reuses per-task scratch (args/out_row/val_buf) across key
    // groups; the aggregator list itself must reset per group either way.
    struct Scratch {
      std::vector<rdf::TermId> args, out_row;
      std::string val_buf;
    };
    Scratch local;
    Scratch* s = batch_reduce ? ctx->TaskState<Scratch>() : &local;
    std::vector<Aggregator> agg_list = make_aggs();
    for (std::string_view v : values) {
      if (v.empty()) continue;
      if (v[0] == 'P') {
        FieldTokenizer parts(v, '|');
        std::string_view part;
        parts.Next(&part);  // the "P" marker
        for (size_t a = 0; a < agg_list.size() && parts.Next(&part); ++a) {
          auto partial = Aggregator::DeserializePartial(
              (*agg_specs)[a].func, part, (*agg_specs)[a].separator);
          if (partial.ok()) agg_list[a].Merge(*partial, *dict);
        }
      } else if (v[0] == 'R') {
        DecodeRowInto(v.substr(2), &s->args);
        for (size_t a = 0; a < agg_list.size() && a < s->args.size(); ++a) {
          if ((*agg_specs)[a].count_star) {
            agg_list[a].AddRow();
          } else {
            agg_list[a].AddTerm(s->args[a], *dict);
          }
        }
      }
    }
    DecodeRowInto(key, &s->out_row);
    for (Aggregator& a : agg_list) s->out_row.push_back(a.Finalize(dict));
    if (having != nullptr && !having(s->out_row)) return;
    s->val_buf.clear();
    AppendRow(&s->val_buf, s->out_row);
    ctx->Emit("", s->val_buf);
  };

  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
  (void)stats;

  // GROUP BY ALL over an empty input still produces one default row
  // (SPARQL: COUNT over the empty group is 0). Only when the *input* was
  // empty — an empty output over non-empty input means HAVING filtered
  // the single ALL-group, which must stay filtered.
  if (key_columns.empty()) {
    RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* in_f,
                            dataset_->dfs().Open(input.file));
    RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* f,
                            dataset_->dfs().Open(out.file));
    if (f->records.empty() && in_f->records.empty()) {
      std::vector<rdf::TermId> row;
      for (const AggColumn& a : aggs) {
        Aggregator empty(a.func, false, a.separator);
        row.push_back(empty.Finalize(dict));
      }
      if (having == nullptr || having(row)) {
        mr::RecordBatch batch;
        batch.Add("", EncodeRow(row));
        RAPIDA_RETURN_IF_ERROR(
            dataset_->dfs().Write(out.file, std::move(batch)));
      }
    }
  }
  return out;
}

StatusOr<TableRef> RelationalOps::DistinctProject(
    const std::string& name_hint, const TableRef& input,
    const std::vector<std::string>& columns, RowPredicate keep_predicate) {
  std::vector<int> idx;
  for (const std::string& c : columns) {
    int i = input.ColumnIndex(c);
    if (i < 0) {
      return Status::InvalidArgument("projection column '" + c +
                                     "' not in input");
    }
    idx.push_back(i);
  }
  TableRef out;
  out.file = NextTmp(name_hint);
  out.columns = columns;

  mr::JobConfig job;
  job.name = name_hint;
  job.inputs = {input.file};
  job.output = out.file;
  if (options_.vectorized_kernels) {
    job.map_batch = [idx, keep_predicate](const mr::TaggedRecord* recs,
                                          size_t n, mr::MapContext* ctx) {
      std::vector<rdf::TermId> row;
      std::string key_buf;
      for (size_t r = 0; r < n; ++r) {
        DecodeRowInto(recs[r].record->value, &row);
        if (keep_predicate && !keep_predicate(row)) continue;
        key_buf.clear();
        for (size_t k = 0; k < idx.size(); ++k) {
          if (k > 0) key_buf += ',';
          mr::kernels::AppendDecimal(&key_buf, row[idx[k]]);
        }
        ctx->Emit(key_buf, "");
      }
    };
  } else {
    job.map = [idx, keep_predicate](const mr::Record& r, int,
                                    mr::MapContext* ctx) {
      std::vector<rdf::TermId> row = DecodeRow(r.value);
      if (keep_predicate && !keep_predicate(row)) return;
      std::vector<rdf::TermId> projected;
      for (int i : idx) projected.push_back(row[i]);
      ctx->Emit(EncodeRow(projected), "");
    };
  }
  // Combiner dedups map-side; reduce emits one row per distinct key.
  job.combine = [](std::string_view key, const mr::ValueSpan&,
                   mr::ReduceContext* ctx) { ctx->Emit(key, ""); };
  job.reduce = [](std::string_view key, const mr::ValueSpan&,
                  mr::ReduceContext* ctx) { ctx->Emit("", key); };
  job.reduce_parallel_safe = true;

  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
  (void)stats;
  return out;
}

ProjectedResult JoinAndProject(std::vector<analytics::BindingTable> tables,
                               const std::vector<sparql::SelectItem>& items,
                               rdf::Dictionary* dict) {
  RAPIDA_CHECK(!tables.empty());
  analytics::BindingTable joined = std::move(tables[0]);
  for (size_t i = 1; i < tables.size(); ++i) joined = joined.Join(tables[i]);

  ProjectedResult out;
  for (const sparql::SelectItem& item : items) out.columns.push_back(item.name);
  for (const auto& row : joined.rows()) {
    auto resolve = [&joined, &row](const std::string& v) {
      int i = joined.VarIndex(v);
      return i < 0 ? rdf::kInvalidTermId : row[i];
    };
    std::vector<rdf::TermId> out_row;
    for (const sparql::SelectItem& item : items) {
      if (item.expr == nullptr) {
        out_row.push_back(resolve(item.name));
        continue;
      }
      sparql::EvalValue v = sparql::EvaluateExpr(*item.expr, resolve, *dict);
      switch (v.kind) {
        case sparql::EvalValue::Kind::kNum:
          out_row.push_back(analytics::InternNumber(dict, v.num));
          break;
        case sparql::EvalValue::Kind::kTerm:
          out_row.push_back(v.term != rdf::kInvalidTermId
                                ? v.term
                                : dict->Intern(*v.term_ptr));
          break;
        case sparql::EvalValue::Kind::kBool:
          out_row.push_back(dict->InternLiteral(v.b ? "true" : "false"));
          break;
        default:
          out_row.push_back(rdf::kInvalidTermId);
      }
    }
    out.rows.push_back(EncodeRow(out_row));
  }
  return out;
}

StatusOr<TableRef> RelationalOps::FinalJoinProject(
    const std::string& name_hint, const std::vector<TableRef>& inputs,
    const std::vector<sparql::SelectItem>& items) {
  RAPIDA_CHECK(!inputs.empty());
  rdf::Dictionary* dict = &dataset_->dict();

  // Load every input locally (they are small aggregated tables) and join
  // them with the well-tested BindingTable logic.
  std::vector<analytics::BindingTable> tables;
  for (const TableRef& in : inputs) {
    RAPIDA_ASSIGN_OR_RETURN(analytics::BindingTable t, ReadTable(in));
    tables.push_back(std::move(t));
  }
  ProjectedResult projected = JoinAndProject(std::move(tables), items, dict);
  std::vector<std::string> result_rows = std::move(projected.rows);

  // Model the work as one map-only broadcast-join cycle: the job scans all
  // inputs (honest byte accounting) and one mapper emits the result.
  TableRef out;
  out.file = NextTmp(name_hint);
  out.columns = std::move(projected.columns);

  mr::JobConfig job;
  job.name = name_hint + " (map-only)";
  for (const TableRef& t : inputs) job.inputs.push_back(t.file);
  job.output = out.file;
  auto rows = std::make_shared<std::vector<std::string>>(
      std::move(result_rows));
  // Exactly one of the (possibly concurrent) mappers emits the rows.
  auto emitted = std::make_shared<std::atomic<bool>>(false);
  job.map = [](const mr::Record&, int, mr::MapContext*) {};
  job.map_finish = [rows, emitted](mr::MapContext* ctx) {
    if (emitted->exchange(true)) return;
    for (const std::string& r : *rows) ctx->Emit("", r);
  };
  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
  (void)stats;
  return out;
}

StatusOr<analytics::BindingTable> RelationalOps::ReadTable(
    const TableRef& table) {
  RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* f,
                          dataset_->dfs().Open(table.file));
  analytics::BindingTable out(table.columns);
  for (const mr::Record& r : f->records) {
    std::vector<rdf::TermId> row = DecodeRow(r.value);
    row.resize(table.columns.size(), rdf::kInvalidTermId);
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace rapida::engine
