#include "engines/relational_ops.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <unordered_map>

#include "analytics/aggregates.h"
#include "analytics/value.h"
#include "mapreduce/kernels.h"
#include "sparql/expr_eval.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace rapida::engine {

using analytics::Aggregator;

void AppendRow(std::string* out, const rdf::TermId* row, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) *out += ',';
    mr::kernels::AppendDecimal(out, row[i]);
  }
}

void AppendRow(std::string* out, const std::vector<rdf::TermId>& row) {
  AppendRow(out, row.data(), row.size());
}

void DecodeRowInto(std::string_view data, std::vector<rdf::TermId>* out) {
  out->clear();
  if (data.empty()) return;
  size_t start = 0;
  while (true) {
    size_t pos = data.find(',', start);
    std::string_view part = data.substr(
        start, pos == std::string_view::npos ? std::string_view::npos
                                             : pos - start);
    int64_t v = 0;
    ParseDigits(part, &v);
    out->push_back(static_cast<rdf::TermId>(v));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
}

std::string EncodeRow(const std::vector<rdf::TermId>& row) {
  std::string out;
  AppendRow(&out, row);
  return out;
}

std::vector<rdf::TermId> DecodeRow(std::string_view data) {
  std::vector<rdf::TermId> out;
  DecodeRowInto(data, &out);
  return out;
}

int TableRef::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return static_cast<int>(i);
  }
  return -1;
}

RowPredicate CompilePredicate(
    const std::vector<const sparql::Expr*>& filters,
    const std::vector<std::string>& columns, const rdf::Dictionary* dict) {
  if (filters.empty()) return nullptr;
  std::vector<sparql::ExprPtr> cloned;
  cloned.reserve(filters.size());
  for (const sparql::Expr* f : filters) cloned.push_back(f->Clone());
  auto shared =
      std::make_shared<std::vector<sparql::ExprPtr>>(std::move(cloned));
  std::vector<std::string> cols = columns;
  return [shared, cols, dict](const std::vector<rdf::TermId>& row) {
    auto resolve = [&cols, &row](const std::string& v) -> rdf::TermId {
      for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i] == v) return i < row.size() ? row[i] : rdf::kInvalidTermId;
      }
      return rdf::kInvalidTermId;
    };
    for (const sparql::ExprPtr& f : *shared) {
      if (!sparql::EffectiveBool(sparql::EvaluateExpr(*f, resolve, *dict))) {
        return false;
      }
    }
    return true;
  };
}

RelationalOps::RelationalOps(mr::Cluster* cluster, Dataset* dataset,
                             const EngineOptions& options,
                             std::string tmp_prefix)
    : cluster_(cluster),
      dataset_(dataset),
      options_(options),
      tmp_prefix_(std::move(tmp_prefix)) {}

std::string RelationalOps::NextTmp(const std::string& hint) {
  std::string name =
      tmp_prefix_ + ":" + std::to_string(counter_++) + ":" + hint;
  temp_files_.push_back(name);
  return name;
}

void RelationalOps::Cleanup() {
  for (const std::string& f : temp_files_) {
    if (dataset_->dfs().Exists(f)) {
      (void)dataset_->dfs().Delete(f);
    }
  }
  temp_files_.clear();
}

namespace {

/// Decodes an input record according to its JoinInput layout, reusing
/// `out`'s capacity (the batch kernels call this per record in a loop).
void DecodeInputRowInto(const JoinInput& input, const mr::Record& r,
                        std::vector<rdf::TermId>* out) {
  if (!input.is_vp) {
    DecodeRowInto(r.value, out);
    return;
  }
  out->clear();
  int64_t s = 0;
  ParseDigits(r.key, &s);
  out->push_back(static_cast<rdf::TermId>(s));
  if (input.columns.size() == 1) return;
  int64_t o = 0;
  ParseDigits(r.value, &o);
  out->push_back(static_cast<rdf::TermId>(o));
}

std::vector<rdf::TermId> DecodeInputRow(const JoinInput& input,
                                        const mr::Record& r) {
  std::vector<rdf::TermId> out;
  DecodeInputRowInto(input, r, &out);
  return out;
}

/// Broadcast side table for the batch map-join kernel: one flat cell pool
/// plus two CSR layers — rows over cells, and per-distinct-key groups over
/// rows — probed through a HashIndex on the mixed key id. Rows keep file
/// order within each group, matching the vector-of-vectors the scalar path
/// builds.
struct BroadcastTable {
  mr::kernels::HashIndex index;
  std::vector<rdf::TermId> keys;    // distinct join key per dense id
  std::vector<uint32_t> group_end;  // CSR: rows of key id g are
                                    //   row_of[group_end[g-1]..group_end[g])
  std::vector<uint32_t> row_of;     // row indices grouped by key id
  std::vector<uint32_t> row_end;    // CSR: cells of row r
  std::vector<rdf::TermId> cells;   // row payloads in arrival order

  uint32_t GroupBegin(uint32_t id) const {
    return id == 0 ? 0 : group_end[id - 1];
  }
  uint32_t RowBegin(uint32_t r) const { return r == 0 ? 0 : row_end[r - 1]; }
};

void BuildBroadcast(const JoinInput& input,
                    const std::vector<mr::Record>& records, int key_col,
                    BroadcastTable* t) {
  std::vector<uint32_t> key_id_of_row;
  std::vector<uint32_t> counts;
  std::vector<rdf::TermId> row;
  t->index.Reserve(records.size());
  for (const mr::Record& r : records) {
    DecodeInputRowInto(input, r, &row);
    if (input.predicate && !input.predicate(row)) continue;
    rdf::TermId k = row[key_col];
    auto [id, inserted] = t->index.FindOrInsert(
        mr::kernels::MixId(k), static_cast<uint32_t>(t->keys.size()),
        [&](uint32_t cand) { return t->keys[cand] == k; });
    if (inserted) {
      t->keys.push_back(k);
      counts.push_back(0);
    }
    ++counts[id];
    key_id_of_row.push_back(id);
    t->cells.insert(t->cells.end(), row.begin(), row.end());
    t->row_end.push_back(static_cast<uint32_t>(t->cells.size()));
  }
  // Counting-sort scatter: group rows by key id, file order within a group.
  t->group_end.resize(counts.size());
  uint32_t total = 0;
  for (size_t g = 0; g < counts.size(); ++g) {
    total += counts[g];
    t->group_end[g] = total;
  }
  t->row_of.resize(key_id_of_row.size());
  std::vector<uint32_t> cursor(counts.size());
  for (size_t g = 0; g < counts.size(); ++g) cursor[g] = t->GroupBegin(g);
  for (size_t r = 0; r < key_id_of_row.size(); ++r) {
    t->row_of[cursor[key_id_of_row[r]]++] = static_cast<uint32_t>(r);
  }
}

/// Per-reduce-task scratch of the batch repartition-join reduce: each
/// side's rows in a flat cell pool + CSR row bounds, the current/next
/// cross-product buffers (width-strided), and the emit buffer.
struct JoinReduceScratch {
  std::vector<std::vector<rdf::TermId>> side_cells;
  std::vector<std::vector<uint32_t>> side_end;
  std::vector<rdf::TermId> row, cur, next, pred_row;
  std::string val_buf;
};

// ---------------------------------------------------------------------------
// Factorized (d-representation) join machinery — see engines/factorized.h
// and DESIGN.md §16. A join runs in "fact mode" when any input is
// factorized or a factorized output was requested; the flat paths above
// stay byte-for-byte untouched otherwise.
// ---------------------------------------------------------------------------

/// Where a column position lives inside a Factorization.
struct CellLoc {
  enum Kind { kUncovered, kBase, kFactor };
  Kind kind = kUncovered;
  int factor = -1;  // index into factors (kFactor only)
  int slot = -1;    // index within base_cols / factors[factor]
};

std::vector<CellLoc> LocateCells(const Factorization& spec) {
  std::vector<CellLoc> loc(static_cast<size_t>(spec.width));
  for (size_t s = 0; s < spec.base_cols.size(); ++s) {
    loc[static_cast<size_t>(spec.base_cols[s])] =
        CellLoc{CellLoc::kBase, -1, static_cast<int>(s)};
  }
  for (size_t f = 0; f < spec.factors.size(); ++f) {
    for (size_t c = 0; c < spec.factors[f].size(); ++c) {
      loc[static_cast<size_t>(spec.factors[f][c])] =
          CellLoc{CellLoc::kFactor, static_cast<int>(f), static_cast<int>(c)};
    }
  }
  return loc;
}

/// Decodes a factor row's cells into `out` (factor-col order), padding
/// missing cells with NULL up to `cols`.
void DecodeFactorRowInto(std::string_view row, size_t cols,
                         std::vector<rdf::TermId>* out) {
  DecodeRowInto(row, out);
  out->resize(cols, rdf::kInvalidTermId);
}

/// The contiguous encoded bytes of factor `f` inside the record value the
/// GroupView was parsed from (row views are slices of one segment).
std::string_view FactorSegment(const GroupView& g, size_t f) {
  size_t b = g.FactorBegin(f);
  size_t e = g.factor_end[f];
  if (b == e) return std::string_view();
  const char* lo = g.rows[b].data();
  const char* hi = g.rows[e - 1].data() + g.rows[e - 1].size();
  return std::string_view(lo, static_cast<size_t>(hi - lo));
}

/// How the fact-mode map handles one join input.
struct FactInputPlan {
  FactorizationPtr spec;     // null: flat side (emits "F" rows)
  /// Layout of the partial groups this side emits ("G" payloads), in the
  /// INPUT table's coordinates. Equal to `spec` when the join column sits
  /// in the base; base extended by the join factor otherwise.
  FactorizationPtr partial;
  int join_factor = -1;  // >= 0: partially decompress this factor
  int join_slot = -1;    // slot in base_cols / cell idx in factors[join_factor]
  bool stream = false;   // decompress in the map (input predicate present)

  bool grouped() const { return spec != nullptr && !stream; }
};

/// One collected partial group on the reduce side.
struct FactEntry {
  std::vector<rdf::TermId> base;   // decoded partial-base cells
  std::vector<std::string> fsegs;  // owned factor segments
  std::vector<uint64_t> frows;     // rows per factor
};

/// Synthesizes the outer-miss entry: NULL base cells + one all-NULL row
/// per factor.
FactEntry NullEntry(const Factorization& partial) {
  FactEntry e;
  e.base.assign(partial.base_cols.size(), rdf::kInvalidTermId);
  for (const auto& cols : partial.factors) {
    std::string seg;
    for (size_t c = 0; c < cols.size(); ++c) {
      if (c > 0) seg += ',';
      seg += '0';
    }
    e.fsegs.push_back(std::move(seg));
    e.frows.push_back(1);
  }
  return e;
}

/// Computes each input's fact-mode map plan.
std::vector<FactInputPlan> BuildFactInputPlans(
    const std::vector<JoinInput>& inputs, const std::vector<int>& join_idx) {
  std::vector<FactInputPlan> plans(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].factor == nullptr) continue;
    FactInputPlan& p = plans[i];
    p.spec = inputs[i].factor;
    if (inputs[i].predicate != nullptr) {
      p.stream = true;  // predicates see flat rows: stream-decompress
      continue;
    }
    std::vector<CellLoc> loc = LocateCells(*p.spec);
    const CellLoc jl = loc[static_cast<size_t>(join_idx[i])];
    if (jl.kind == CellLoc::kFactor) {
      p.join_factor = jl.factor;
      p.join_slot = jl.slot;
      auto partial = std::make_shared<Factorization>();
      partial->width = p.spec->width;
      partial->base_cols = p.spec->base_cols;
      const auto& jcols = p.spec->factors[static_cast<size_t>(jl.factor)];
      partial->base_cols.insert(partial->base_cols.end(), jcols.begin(),
                                jcols.end());
      for (size_t f = 0; f < p.spec->factors.size(); ++f) {
        if (static_cast<int>(f) == jl.factor) continue;
        partial->factors.push_back(p.spec->factors[f]);
      }
      p.partial = std::move(partial);
    } else {
      // Join column in the base (or uncovered: every flat row joins NULL).
      p.join_slot = jl.kind == CellLoc::kBase ? jl.slot : -1;
      p.partial = p.spec;
    }
  }
  return plans;
}

/// Per-side assembly of the factorized OUTPUT spec of a repartition join:
/// base = [join position] ++ each grouped side's kept partial-base slots;
/// factors = sides in order (flat side -> one factor of its non-join
/// columns; grouped side -> its partial factors). Returns null when any
/// output position would be claimed twice (the flat fold's overwrite
/// semantics cannot be represented) — callers then emit flat.
struct FactOutAssembly {
  FactorizationPtr spec;
  /// Per side: partial-base slots appended to the output base (grouped
  /// sides), or input column indices encoded as factor rows (flat sides).
  std::vector<std::vector<int>> base_keep;
  std::vector<std::vector<int>> flat_cols;
};

FactOutAssembly BuildFactOutput(const std::vector<JoinInput>& inputs,
                                const std::vector<FactInputPlan>& plans,
                                const std::vector<std::vector<int>>& out_pos,
                                const std::vector<int>& join_idx,
                                size_t width) {
  FactOutAssembly out;
  out.base_keep.resize(inputs.size());
  out.flat_cols.resize(inputs.size());
  auto spec = std::make_shared<Factorization>();
  spec->width = static_cast<int>(width);
  std::vector<bool> covered(width, false);
  const int join_out = out_pos[0][static_cast<size_t>(join_idx[0])];
  covered[static_cast<size_t>(join_out)] = true;
  spec->base_cols.push_back(join_out);
  auto claim = [&covered](int pos) {
    if (covered[static_cast<size_t>(pos)]) return false;
    covered[static_cast<size_t>(pos)] = true;
    return true;
  };
  // Base: join key first, then each grouped side's kept partial-base slots.
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (!plans[i].grouped()) continue;
    const Factorization& partial = *plans[i].partial;
    for (size_t s = 0; s < partial.base_cols.size(); ++s) {
      const int in_col = partial.base_cols[s];
      if (in_col == join_idx[i]) continue;  // == the key; emitted once
      const int pos = out_pos[i][static_cast<size_t>(in_col)];
      if (pos == join_out) continue;  // same column name as the key
      if (!claim(pos)) return out;    // conflict: stay flat
      spec->base_cols.push_back(pos);
      out.base_keep[i].push_back(static_cast<int>(s));
    }
  }
  // Factors: sides in order.
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (plans[i].grouped()) {
      const Factorization& partial = *plans[i].partial;
      for (const auto& cols : partial.factors) {
        std::vector<int> f;
        for (int in_col : cols) {
          const int pos = out_pos[i][static_cast<size_t>(in_col)];
          if (!claim(pos)) return out;
          f.push_back(pos);
        }
        spec->factors.push_back(std::move(f));
      }
    } else {
      std::vector<int> f;
      std::vector<int> keep;
      for (size_t c = 0; c < inputs[i].columns.size(); ++c) {
        if (static_cast<int>(c) == join_idx[i]) continue;
        const int pos = out_pos[i][static_cast<size_t>(c)];
        if (pos == join_out) continue;  // duplicate of the key column
        if (!claim(pos)) return out;
        f.push_back(pos);
        keep.push_back(static_cast<int>(c));
      }
      spec->factors.push_back(std::move(f));
      out.flat_cols[i] = std::move(keep);
    }
  }
  out.spec = std::move(spec);
  return out;
}

/// Factorized-output spec of a map-join (big side -> base + its factors,
/// one factor per small side) plus each small side's kept column indices.
/// Null spec = the output stays flat.
struct MapJoinFactSpec {
  FactorizationPtr spec;
  std::vector<std::vector<int>> small_keep;
};

/// Fact-mode jobs always install the scalar map (sharded execution needs
/// per-record attribution); when the kernel path is on, the batch variant
/// is this pure per-record loop — emission-identical by construction.
void InstallBatchLoop(mr::JobConfig* job) {
  mr::MapFn scalar = job->map;
  job->map_batch = [scalar](const mr::TaggedRecord* recs, size_t n,
                            mr::MapContext* ctx) {
    for (size_t i = 0; i < n; ++i) scalar(*recs[i].record, recs[i].tag, ctx);
  };
}

}  // namespace

StatusOr<TableRef> RelationalOps::Join(const std::string& name_hint,
                                       const std::vector<JoinInput>& inputs,
                                       RowPredicate post_predicate,
                                       bool factorize_output) {
  RAPIDA_CHECK(!inputs.empty());
  // Output layout: first input's columns, then the unseen columns of each
  // later input. Per input: mapping from its columns to output positions,
  // and the index of its join column.
  std::vector<std::string> out_columns = inputs[0].columns;
  std::vector<std::vector<int>> out_pos(inputs.size());
  std::vector<int> join_idx(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    join_idx[i] = -1;
    for (size_t c = 0; c < inputs[i].columns.size(); ++c) {
      const std::string& name = inputs[i].columns[c];
      if (name == inputs[i].join_column) join_idx[i] = static_cast<int>(c);
      auto it = std::find(out_columns.begin(), out_columns.end(), name);
      int pos;
      if (it == out_columns.end()) {
        pos = static_cast<int>(out_columns.size());
        out_columns.push_back(name);
      } else {
        pos = static_cast<int>(it - out_columns.begin());
      }
      out_pos[i].push_back(pos);
    }
    if (join_idx[i] < 0) {
      return Status::InvalidArgument("join column '" + inputs[i].join_column +
                                     "' not among input columns");
    }
    if (i == 0 && inputs[i].outer) {
      return Status::InvalidArgument("first join input cannot be outer");
    }
  }
  const size_t width = out_columns.size();

  // Map-join eligibility: every input but the largest fits the threshold,
  // and the largest is not an outer input. Factorized inputs are sized by
  // their FLAT equivalent so the strategy choice matches the flat path
  // exactly (a factorized file is smaller; deciding on its stored size
  // could flip the join strategy and with it the output row order).
  int big = 0;
  uint64_t big_bytes = 0;
  std::vector<uint64_t> sizes(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    sizes[i] = inputs[i].flat_bytes != 0 ? inputs[i].flat_bytes
                                         : dataset_->VpFileBytes(inputs[i].file);
    if (sizes[i] > big_bytes) {
      big_bytes = sizes[i];
      big = static_cast<int>(i);
    }
  }
  bool map_join = options_.enable_map_joins && inputs.size() > 1;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (static_cast<int>(i) == big) continue;
    if (sizes[i] > options_.map_join_threshold_bytes) map_join = false;
  }
  if (inputs[big].outer) map_join = false;

  bool any_factorized = false;
  for (const JoinInput& in : inputs) {
    if (in.factor != nullptr) any_factorized = true;
  }
  if (any_factorized || factorize_output) {
    return FactJoin(name_hint, inputs, post_predicate, factorize_output,
                    map_join, big, out_columns, out_pos, join_idx);
  }

  TableRef out;
  out.file = NextTmp(name_hint);
  out.columns = out_columns;

  mr::JobConfig job;
  job.name = name_hint + (map_join ? " (map-join)" : "");
  for (const JoinInput& in : inputs) job.inputs.push_back(in.file);
  job.output = out.file;

  // Shared copies for the closures.
  auto ins = std::make_shared<std::vector<JoinInput>>(inputs);

  if (map_join && options_.vectorized_kernels) {
    // Batch kernel: CSR broadcast tables probed through HashIndex, flat
    // width-strided cross-product buffers, one dispatch per split. Emits
    // the exact records of the scalar map below, in the same order.
    auto tables =
        std::make_shared<std::vector<BroadcastTable>>(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (static_cast<int>(i) == big) continue;
      RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* f,
                              dataset_->dfs().Open(inputs[i].file));
      BuildBroadcast(inputs[i], f->records, join_idx[i], &(*tables)[i]);
    }
    job.map_batch = [ins, tables, big, out_pos, join_idx, width,
                     post_predicate](const mr::TaggedRecord* recs, size_t n,
                                     mr::MapContext* ctx) {
      const JoinInput& input = (*ins)[big];
      std::vector<rdf::TermId> row, cur, next, pred_row;
      std::string val_buf;
      for (size_t ri = 0; ri < n; ++ri) {
        if (recs[ri].tag != big) continue;  // broadcast copies: scan only
        DecodeInputRowInto(input, *recs[ri].record, &row);
        if (input.predicate && !input.predicate(row)) continue;
        rdf::TermId key = row[join_idx[big]];
        // Start from the big row, fold in each small side.
        cur.assign(width, rdf::kInvalidTermId);
        for (size_t c = 0; c < row.size(); ++c) {
          cur[out_pos[big][c]] = row[c];
        }
        bool dead = false;
        for (size_t i = 0; i < ins->size() && !dead; ++i) {
          if (i == static_cast<size_t>(big)) continue;
          const BroadcastTable& t = (*tables)[i];
          uint32_t id =
              t.index.Find(mr::kernels::MixId(key), [&](uint32_t cand) {
                return t.keys[cand] == key;
              });
          if (id == mr::kernels::HashIndex::kNotFound) {
            if (!(*ins)[i].outer) dead = true;  // inner miss: no output
            continue;                           // outer: leave columns NULL
          }
          next.clear();
          for (size_t p = 0; p < cur.size() / width; ++p) {
            for (uint32_t g = t.GroupBegin(id); g < t.group_end[id]; ++g) {
              uint32_t r2 = t.row_of[g];
              size_t base = next.size();
              next.insert(next.end(), cur.begin() + p * width,
                          cur.begin() + (p + 1) * width);
              uint32_t cb = t.RowBegin(r2);
              for (uint32_t c = cb; c < t.row_end[r2]; ++c) {
                next[base + out_pos[i][c - cb]] = t.cells[c];
              }
            }
          }
          cur.swap(next);
        }
        if (dead) continue;
        for (size_t p = 0; p < cur.size() / width; ++p) {
          if (post_predicate) {
            pred_row.assign(cur.begin() + p * width,
                            cur.begin() + (p + 1) * width);
            if (!post_predicate(pred_row)) continue;
          }
          val_buf.clear();
          AppendRow(&val_buf, cur.data() + p * width, width);
          ctx->Emit("", val_buf);
        }
      }
    };
  } else if (map_join) {
    // Broadcast hash tables for every small input.
    auto hashes = std::make_shared<
        std::vector<std::unordered_map<rdf::TermId,
                                       std::vector<std::vector<rdf::TermId>>>>>();
    hashes->resize(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (static_cast<int>(i) == big) continue;
      RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* f,
                              dataset_->dfs().Open(inputs[i].file));
      for (const mr::Record& r : f->records) {
        std::vector<rdf::TermId> row = DecodeInputRow(inputs[i], r);
        if (inputs[i].predicate && !inputs[i].predicate(row)) continue;
        (*hashes)[i][row[join_idx[i]]].push_back(std::move(row));
      }
    }
    job.map = [ins, hashes, big, out_pos, join_idx, width, post_predicate](
                  const mr::Record& r, int tag, mr::MapContext* ctx) {
      if (tag != big) return;  // broadcast copies: scanned, not re-emitted
      const JoinInput& input = (*ins)[tag];
      std::vector<rdf::TermId> row = DecodeInputRow(input, r);
      if (input.predicate && !input.predicate(row)) return;
      rdf::TermId key = row[join_idx[tag]];
      // Start from the big row, fold in each small side.
      std::vector<std::vector<rdf::TermId>> results;
      {
        std::vector<rdf::TermId> base(width, rdf::kInvalidTermId);
        for (size_t c = 0; c < row.size(); ++c) base[out_pos[tag][c]] = row[c];
        results.push_back(std::move(base));
      }
      for (size_t i = 0; i < ins->size(); ++i) {
        if (i == static_cast<size_t>(big)) continue;
        auto it = (*hashes)[i].find(key);
        bool empty = it == (*hashes)[i].end() || it->second.empty();
        if (empty) {
          if (!(*ins)[i].outer) return;  // inner input missing: no output
          continue;                      // outer: leave columns NULL
        }
        std::vector<std::vector<rdf::TermId>> next;
        for (const auto& partial : results) {
          for (const auto& srow : it->second) {
            std::vector<rdf::TermId> merged = partial;
            for (size_t c = 0; c < srow.size(); ++c) {
              merged[out_pos[i][c]] = srow[c];
            }
            next.push_back(std::move(merged));
          }
        }
        results = std::move(next);
      }
      for (const auto& merged : results) {
        if (post_predicate && !post_predicate(merged)) continue;
        ctx->Emit("", EncodeRow(merged));
      }
    };
  } else if (options_.vectorized_kernels) {
    // Batch repartition join: one dispatch per split with all scratch in
    // reused buffers, and a per-reduce-task scratch that keeps each side
    // as a flat CSR pool instead of vector-of-vector rows.
    job.map_batch = [ins, join_idx](const mr::TaggedRecord* recs, size_t n,
                                    mr::MapContext* ctx) {
      std::vector<rdf::TermId> row;
      std::string key_buf, val_buf;
      for (size_t i = 0; i < n; ++i) {
        const int tag = recs[i].tag;
        const JoinInput& input = (*ins)[tag];
        DecodeInputRowInto(input, *recs[i].record, &row);
        if (input.predicate && !input.predicate(row)) continue;
        key_buf.clear();
        mr::kernels::AppendDecimal(&key_buf, row[join_idx[tag]]);
        val_buf.clear();
        mr::kernels::AppendDecimal(&val_buf, static_cast<uint64_t>(tag));
        val_buf += '|';
        AppendRow(&val_buf, row.data(), row.size());
        ctx->Emit(key_buf, val_buf);
      }
    };
    job.reduce = [ins, out_pos, width, post_predicate](
                     std::string_view /*key*/, const mr::ValueSpan& values,
                     mr::ReduceContext* ctx) {
      JoinReduceScratch* s = ctx->TaskState<JoinReduceScratch>();
      s->side_cells.resize(ins->size());
      s->side_end.resize(ins->size());
      for (size_t i = 0; i < ins->size(); ++i) {
        s->side_cells[i].clear();
        s->side_end[i].clear();
      }
      for (std::string_view v : values) {
        size_t bar = v.find('|');
        if (bar == std::string_view::npos) continue;
        int64_t tag = 0;
        ParseInt64(v.substr(0, bar), &tag);
        DecodeRowInto(v.substr(bar + 1), &s->row);
        auto& cells = s->side_cells[tag];
        cells.insert(cells.end(), s->row.begin(), s->row.end());
        s->side_end[tag].push_back(static_cast<uint32_t>(cells.size()));
      }
      if (s->side_end[0].empty()) return;
      s->cur.clear();
      for (size_t r = 0; r < s->side_end[0].size(); ++r) {
        size_t base = s->cur.size();
        s->cur.resize(base + width, rdf::kInvalidTermId);
        uint32_t cb = r == 0 ? 0 : s->side_end[0][r - 1];
        for (uint32_t c = cb; c < s->side_end[0][r]; ++c) {
          s->cur[base + out_pos[0][c - cb]] = s->side_cells[0][c];
        }
      }
      for (size_t i = 1; i < ins->size(); ++i) {
        if (s->side_end[i].empty()) {
          if (!(*ins)[i].outer) return;
          continue;
        }
        s->next.clear();
        for (size_t p = 0; p < s->cur.size() / width; ++p) {
          for (size_t r = 0; r < s->side_end[i].size(); ++r) {
            size_t base = s->next.size();
            s->next.insert(s->next.end(), s->cur.begin() + p * width,
                           s->cur.begin() + (p + 1) * width);
            uint32_t cb = r == 0 ? 0 : s->side_end[i][r - 1];
            for (uint32_t c = cb; c < s->side_end[i][r]; ++c) {
              s->next[base + out_pos[i][c - cb]] = s->side_cells[i][c];
            }
          }
        }
        s->cur.swap(s->next);
      }
      for (size_t p = 0; p < s->cur.size() / width; ++p) {
        if (post_predicate) {
          s->pred_row.assign(s->cur.begin() + p * width,
                             s->cur.begin() + (p + 1) * width);
          if (!post_predicate(s->pred_row)) continue;
        }
        s->val_buf.clear();
        AppendRow(&s->val_buf, s->cur.data() + p * width, width);
        ctx->Emit("", s->val_buf);
      }
    };
    // Pure function of (key, values): reducers may run concurrently.
    job.reduce_parallel_safe = true;
  } else {
    // Repartition join.
    job.map = [ins, join_idx](const mr::Record& r, int tag,
                              mr::MapContext* ctx) {
      const JoinInput& input = (*ins)[tag];
      std::vector<rdf::TermId> row = DecodeInputRow(input, r);
      if (input.predicate && !input.predicate(row)) return;
      rdf::TermId key = row[join_idx[tag]];
      ctx->Emit(std::to_string(key),
                std::to_string(tag) + "|" + EncodeRow(row));
    };
    job.reduce = [ins, out_pos, width, post_predicate](
                     std::string_view /*key*/, const mr::ValueSpan& values,
                     mr::ReduceContext* ctx) {
      std::vector<std::vector<std::vector<rdf::TermId>>> sides(ins->size());
      for (std::string_view v : values) {
        size_t bar = v.find('|');
        if (bar == std::string_view::npos) continue;
        int64_t tag = 0;
        ParseInt64(v.substr(0, bar), &tag);
        sides[tag].push_back(DecodeRow(v.substr(bar + 1)));
      }
      if (sides[0].empty()) return;
      std::vector<std::vector<rdf::TermId>> results;
      for (const auto& row : sides[0]) {
        std::vector<rdf::TermId> base(width, rdf::kInvalidTermId);
        for (size_t c = 0; c < row.size(); ++c) base[out_pos[0][c]] = row[c];
        results.push_back(std::move(base));
      }
      for (size_t i = 1; i < ins->size(); ++i) {
        if (sides[i].empty()) {
          if (!(*ins)[i].outer) return;
          continue;
        }
        std::vector<std::vector<rdf::TermId>> next;
        for (const auto& partial : results) {
          for (const auto& srow : sides[i]) {
            std::vector<rdf::TermId> merged = partial;
            for (size_t c = 0; c < srow.size(); ++c) {
              merged[out_pos[i][c]] = srow[c];
            }
            next.push_back(std::move(merged));
          }
        }
        results = std::move(next);
      }
      for (const auto& merged : results) {
        if (post_predicate && !post_predicate(merged)) continue;
        ctx->Emit("", EncodeRow(merged));
      }
    };
    // Pure function of (key, values): reducers may run concurrently.
    job.reduce_parallel_safe = true;
  }

  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats ignored, cluster_->Run(job));
  (void)ignored;
  return out;
}

StatusOr<TableRef> RelationalOps::FactJoin(
    const std::string& name_hint, const std::vector<JoinInput>& inputs,
    RowPredicate post_predicate, bool factorize_output, bool map_join,
    int big, const std::vector<std::string>& out_columns,
    const std::vector<std::vector<int>>& out_pos,
    const std::vector<int>& join_idx) {
  const size_t width = out_columns.size();
  auto ins = std::make_shared<std::vector<JoinInput>>(inputs);
  auto plans = std::make_shared<std::vector<FactInputPlan>>(
      BuildFactInputPlans(inputs, join_idx));

  TableRef out;
  out.file = NextTmp(name_hint);
  out.columns = out_columns;

  mr::JobConfig job;
  job.name = name_hint + (map_join ? " (map-join)" : "");
  for (const JoinInput& in : inputs) job.inputs.push_back(in.file);
  job.output = out.file;

  FactorizationPtr out_spec;

  if (map_join) {
    // ---- map-only path: broadcast every small side (factorized smalls
    // are decompressed at build time), stream the big side. Factorized
    // output: one group record per big row (or per big partial group)
    // instead of the enumerated cross product. ----
    auto hashes = std::make_shared<std::vector<
        std::unordered_map<rdf::TermId,
                           std::vector<std::vector<rdf::TermId>>>>>();
    hashes->resize(inputs.size());
    {
      GroupView gv;
      std::vector<rdf::TermId> tmp_row;
      for (size_t i = 0; i < inputs.size(); ++i) {
        if (static_cast<int>(i) == big) continue;
        RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* f,
                                dataset_->dfs().Open(inputs[i].file));
        for (const mr::Record& r : f->records) {
          if ((*plans)[i].spec != nullptr) {
            if (!ParseGroup(r.value, (*plans)[i].spec->factors.size(), &gv)) {
              continue;
            }
            ForEachFlatRow(*(*plans)[i].spec, gv, &tmp_row,
                           [&](const std::vector<rdf::TermId>& fr) {
                             if (inputs[i].predicate &&
                                 !inputs[i].predicate(fr)) {
                               return;
                             }
                             (*hashes)[i][fr[static_cast<size_t>(
                                               join_idx[i])]]
                                 .push_back(fr);
                           });
          } else {
            std::vector<rdf::TermId> row = DecodeInputRow(inputs[i], r);
            if (inputs[i].predicate && !inputs[i].predicate(row)) continue;
            (*hashes)[i][row[static_cast<size_t>(join_idx[i])]].push_back(
                std::move(row));
          }
        }
      }
    }

    // Output spec: big side -> base (+ its factors when grouped), one
    // factor per small side. Any double-claimed position => stay flat.
    auto mjf = std::make_shared<MapJoinFactSpec>();
    if (factorize_output && post_predicate == nullptr) {
      auto spec = std::make_shared<Factorization>();
      spec->width = static_cast<int>(width);
      std::vector<bool> covered(width, false);
      bool ok = true;
      auto claim = [&covered, &ok](int pos) {
        if (covered[static_cast<size_t>(pos)]) {
          ok = false;
          return;
        }
        covered[static_cast<size_t>(pos)] = true;
      };
      const FactInputPlan& bp = (*plans)[static_cast<size_t>(big)];
      if (bp.grouped()) {
        for (int c : bp.partial->base_cols) {
          const int pos = out_pos[static_cast<size_t>(big)]
                                 [static_cast<size_t>(c)];
          claim(pos);
          spec->base_cols.push_back(pos);
        }
        for (const auto& cols : bp.partial->factors) {
          std::vector<int> f;
          for (int c : cols) {
            const int pos = out_pos[static_cast<size_t>(big)]
                                   [static_cast<size_t>(c)];
            claim(pos);
            f.push_back(pos);
          }
          spec->factors.push_back(std::move(f));
        }
      } else {
        for (size_t c = 0; c < inputs[static_cast<size_t>(big)].columns.size();
             ++c) {
          const int pos = out_pos[static_cast<size_t>(big)][c];
          claim(pos);
          spec->base_cols.push_back(pos);
        }
      }
      mjf->small_keep.resize(inputs.size());
      for (size_t i = 0; i < inputs.size(); ++i) {
        if (static_cast<int>(i) == big) continue;
        std::vector<int> f;
        std::vector<int> keep;
        for (size_t c = 0; c < inputs[i].columns.size(); ++c) {
          if (static_cast<int>(c) == join_idx[i]) continue;
          const int pos = out_pos[i][c];
          claim(pos);
          f.push_back(pos);
          keep.push_back(static_cast<int>(c));
        }
        spec->factors.push_back(std::move(f));
        mjf->small_keep[i] = std::move(keep);
      }
      if (ok) {
        mjf->spec = spec;
        out_spec = spec;
      }
    }

    job.map = [ins, plans, hashes, big, out_pos, join_idx, width,
               post_predicate, mjf](const mr::Record& r, int tag,
                                    mr::MapContext* ctx) {
      if (tag != big) return;  // broadcast copies: scanned, not re-emitted
      const JoinInput& input = (*ins)[static_cast<size_t>(big)];
      const FactInputPlan& bp = (*plans)[static_cast<size_t>(big)];
      const bool fact_out = mjf->spec != nullptr;

      // Flat fold of one big row (flat output) — the scalar map-join body.
      auto fold_row = [&](const std::vector<rdf::TermId>& row) {
        rdf::TermId key = row[static_cast<size_t>(join_idx[big])];
        std::vector<std::vector<rdf::TermId>> results;
        {
          std::vector<rdf::TermId> base(width, rdf::kInvalidTermId);
          for (size_t c = 0; c < row.size(); ++c) {
            base[static_cast<size_t>(out_pos[static_cast<size_t>(big)][c])] =
                row[c];
          }
          results.push_back(std::move(base));
        }
        for (size_t i = 0; i < ins->size(); ++i) {
          if (i == static_cast<size_t>(big)) continue;
          auto it = (*hashes)[i].find(key);
          bool empty = it == (*hashes)[i].end() || it->second.empty();
          if (empty) {
            if (!(*ins)[i].outer) return;
            continue;
          }
          std::vector<std::vector<rdf::TermId>> next;
          for (const auto& partial : results) {
            for (const auto& srow : it->second) {
              std::vector<rdf::TermId> merged = partial;
              for (size_t c = 0; c < srow.size(); ++c) {
                merged[static_cast<size_t>(out_pos[i][c])] = srow[c];
              }
              next.push_back(std::move(merged));
            }
          }
          results = std::move(next);
        }
        for (const auto& merged : results) {
          if (post_predicate && !post_predicate(merged)) continue;
          ctx->Emit("", EncodeRow(merged));
        }
      };

      // One output group per big row (factorized output, flat big side).
      auto group_row = [&](const std::vector<rdf::TermId>& row) {
        rdf::TermId key = row[static_cast<size_t>(join_idx[big])];
        std::vector<const std::vector<std::vector<rdf::TermId>>*> matches(
            ins->size(), nullptr);
        for (size_t i = 0; i < ins->size(); ++i) {
          if (i == static_cast<size_t>(big)) continue;
          auto it = (*hashes)[i].find(key);
          bool empty = it == (*hashes)[i].end() || it->second.empty();
          if (empty) {
            if (!(*ins)[i].outer) return;  // inner miss: no output
            continue;                      // outer: NULL factor row below
          }
          matches[i] = &it->second;
        }
        GroupEncoder enc;
        enc.Start();
        for (size_t c = 0; c < row.size(); ++c) enc.AddBaseCell(row[c]);
        std::vector<rdf::TermId> cells;
        for (size_t i = 0; i < ins->size(); ++i) {
          if (i == static_cast<size_t>(big)) continue;
          const auto& keep = mjf->small_keep[i];
          enc.StartFactor();
          if (matches[i] == nullptr) {
            cells.assign(keep.size(), rdf::kInvalidTermId);
            enc.AddFactorRow(cells.data(), cells.size());
          } else {
            for (const auto& srow : *matches[i]) {
              cells.clear();
              for (int c : keep) {
                cells.push_back(srow[static_cast<size_t>(c)]);
              }
              enc.AddFactorRow(cells.data(), cells.size());
            }
          }
        }
        ctx->Emit("", enc.Finish());
        ctx->NoteFactorizedGroup(enc.flat_rows());
      };

      if (bp.spec == nullptr) {
        std::vector<rdf::TermId> row = DecodeInputRow(input, r);
        if (input.predicate && !input.predicate(row)) return;
        if (fact_out) {
          group_row(row);
        } else {
          fold_row(row);
        }
        return;
      }
      GroupView view;
      if (!ParseGroup(r.value, bp.spec->factors.size(), &view)) return;
      if (bp.stream || (!fact_out && bp.grouped())) {
        // Stream-decompress the big side (predicate present, or the output
        // must be flat anyway).
        std::vector<rdf::TermId> row;
        ForEachFlatRow(*bp.spec, view, &row,
                       [&](const std::vector<rdf::TermId>& fr) {
                         if (input.predicate && !input.predicate(fr)) return;
                         if (fact_out) {
                           group_row(fr);
                         } else {
                           fold_row(fr);
                         }
                       });
        return;
      }

      // Grouped big side, factorized output: pass the group through,
      // appending one matched factor per small side.
      auto append_smalls = [&](GroupEncoder* enc, rdf::TermId key) {
        std::vector<rdf::TermId> cells;
        for (size_t i = 0; i < ins->size(); ++i) {
          if (i == static_cast<size_t>(big)) continue;
          const auto& keep = mjf->small_keep[i];
          auto it = (*hashes)[i].find(key);
          bool empty = it == (*hashes)[i].end() || it->second.empty();
          enc->StartFactor();
          if (empty) {
            cells.assign(keep.size(), rdf::kInvalidTermId);
            enc->AddFactorRow(cells.data(), cells.size());
          } else {
            for (const auto& srow : it->second) {
              cells.clear();
              for (int c : keep) cells.push_back(srow[static_cast<size_t>(c)]);
              enc->AddFactorRow(cells.data(), cells.size());
            }
          }
        }
      };
      auto probe_all = [&](rdf::TermId key) {
        for (size_t i = 0; i < ins->size(); ++i) {
          if (i == static_cast<size_t>(big) || (*ins)[i].outer) continue;
          auto it = (*hashes)[i].find(key);
          if (it == (*hashes)[i].end() || it->second.empty()) return false;
        }
        return true;
      };

      GroupEncoder enc;
      if (bp.join_factor < 0) {
        rdf::TermId key = rdf::kInvalidTermId;
        if (bp.join_slot >= 0) {
          std::vector<rdf::TermId> base;
          DecodeFactorRowInto(view.base, bp.spec->base_cols.size(), &base);
          key = base[static_cast<size_t>(bp.join_slot)];
        }
        if (!probe_all(key)) return;
        enc.Start();
        enc.AddRawBase(view.base);
        for (size_t g = 0; g < bp.spec->factors.size(); ++g) {
          enc.AddRawFactor(FactorSegment(view, g), view.FactorRows(g));
        }
        append_smalls(&enc, key);
        ctx->Emit("", enc.Finish());
        ctx->NoteFactorizedGroup(enc.flat_rows());
        return;
      }
      // Join column inside a factor: bind one of its rows per emission.
      const size_t j = static_cast<size_t>(bp.join_factor);
      const auto& jcols = bp.spec->factors[j];
      std::vector<rdf::TermId> cells;
      for (size_t t = view.FactorBegin(j); t < view.factor_end[j]; ++t) {
        DecodeFactorRowInto(view.rows[t], jcols.size(), &cells);
        rdf::TermId key = cells[static_cast<size_t>(bp.join_slot)];
        if (!probe_all(key)) continue;
        enc.Start();
        enc.AddRawBase(view.base);
        for (rdf::TermId c : cells) enc.AddBaseCell(c);
        for (size_t g = 0; g < bp.spec->factors.size(); ++g) {
          if (g == j) continue;
          enc.AddRawFactor(FactorSegment(view, g), view.FactorRows(g));
        }
        append_smalls(&enc, key);
        ctx->Emit("", enc.Finish());
        ctx->NoteFactorizedGroup(enc.flat_rows());
      }
    };
  } else {
    // ---- repartition path ----
    std::shared_ptr<FactOutAssembly> asmbl;
    if (factorize_output && post_predicate == nullptr && inputs.size() >= 2) {
      asmbl = std::make_shared<FactOutAssembly>(
          BuildFactOutput(inputs, *plans, out_pos, join_idx, width));
      out_spec = asmbl->spec;
    }

    job.map = [ins, plans, join_idx](const mr::Record& r, int tag,
                                     mr::MapContext* ctx) {
      const JoinInput& input = (*ins)[static_cast<size_t>(tag)];
      const FactInputPlan& p = (*plans)[static_cast<size_t>(tag)];
      if (p.spec == nullptr) {
        std::vector<rdf::TermId> row = DecodeInputRow(input, r);
        if (input.predicate && !input.predicate(row)) return;
        ctx->Emit(std::to_string(row[static_cast<size_t>(join_idx[tag])]),
                  std::to_string(tag) + "|" + EncodeRow(row));
        return;
      }
      GroupView view;
      if (!ParseGroup(r.value, p.spec->factors.size(), &view)) return;
      if (p.stream) {
        std::vector<rdf::TermId> row;
        ForEachFlatRow(
            *p.spec, view, &row, [&](const std::vector<rdf::TermId>& fr) {
              if (input.predicate && !input.predicate(fr)) return;
              ctx->Emit(
                  std::to_string(fr[static_cast<size_t>(join_idx[tag])]),
                  std::to_string(tag) + "|" + EncodeRow(fr));
            });
        return;
      }
      if (p.join_factor < 0) {
        // Join column in the base (or uncovered: NULL): ship the whole
        // group through the shuffle untouched.
        rdf::TermId key = rdf::kInvalidTermId;
        if (p.join_slot >= 0) {
          std::vector<rdf::TermId> base;
          DecodeFactorRowInto(view.base, p.spec->base_cols.size(), &base);
          key = base[static_cast<size_t>(p.join_slot)];
        }
        std::string val = std::to_string(tag) + "#";
        val.append(r.value.data(), r.value.size());
        ctx->Emit(std::to_string(key), val);
        return;
      }
      // Partial decompression: consume the join factor into the partial
      // base, one emission per join-factor row; every other factor stays
      // compressed across the shuffle.
      const size_t j = static_cast<size_t>(p.join_factor);
      const auto& jcols = p.spec->factors[j];
      std::vector<rdf::TermId> cells;
      for (size_t t = view.FactorBegin(j); t < view.factor_end[j]; ++t) {
        DecodeFactorRowInto(view.rows[t], jcols.size(), &cells);
        std::string val = std::to_string(tag) + "#";
        val.append(view.base.data(), view.base.size());
        if (!p.spec->base_cols.empty()) val += ',';
        AppendRow(&val, cells);
        for (size_t g = 0; g < p.spec->factors.size(); ++g) {
          if (g == j) continue;
          val += '|';
          std::string_view seg = FactorSegment(view, g);
          val.append(seg.data(), seg.size());
        }
        ctx->Emit(std::to_string(cells[static_cast<size_t>(p.join_slot)]),
                  val);
      }
    };

    if (out_spec != nullptr) {
      // Factorized output: cross the sides' partial groups per key; flat
      // sides contribute one shared factor each.
      job.reduce = [ins, plans, asmbl](std::string_view key,
                                       const mr::ValueSpan& values,
                                       mr::ReduceContext* ctx) {
        const size_t n = ins->size();
        std::vector<std::vector<std::vector<rdf::TermId>>> rows(n);
        std::vector<std::vector<FactEntry>> entries(n);
        GroupView gv;
        for (std::string_view v : values) {
          size_t bar = v.find_first_of("|#");
          if (bar == std::string_view::npos || bar + 1 >= v.size()) continue;
          int64_t tag = 0;
          ParseInt64(v.substr(0, bar), &tag);
          const char kind = v[bar] == '|' ? 'F' : 'G';
          std::string_view payload = v.substr(bar + 1);
          if (kind == 'F') {
            rows[static_cast<size_t>(tag)].push_back(DecodeRow(payload));
            continue;
          }
          const Factorization& partial =
              *(*plans)[static_cast<size_t>(tag)].partial;
          if (!ParseGroup(payload, partial.factors.size(), &gv)) continue;
          FactEntry e;
          DecodeFactorRowInto(gv.base, partial.base_cols.size(), &e.base);
          for (size_t g = 0; g < partial.factors.size(); ++g) {
            e.fsegs.emplace_back(FactorSegment(gv, g));
            e.frows.push_back(gv.FactorRows(g));
          }
          entries[static_cast<size_t>(tag)].push_back(std::move(e));
        }
        for (size_t i = 0; i < n; ++i) {
          const bool grouped = (*plans)[i].grouped();
          const bool present = grouped ? !entries[i].empty() : !rows[i].empty();
          if (present) continue;
          if (i == 0 || !(*ins)[i].outer) return;  // inner miss
          if (grouped) {
            entries[i].push_back(NullEntry(*(*plans)[i].partial));
          } else {
            rows[i].emplace_back((*ins)[i].columns.size(),
                                 rdf::kInvalidTermId);
          }
        }
        int64_t kv = 0;
        ParseDigits(key, &kv);
        // Flat sides' factor segments are shared by every emitted group.
        std::vector<std::string> flat_seg(n);
        std::vector<uint64_t> flat_count(n);
        for (size_t i = 0; i < n; ++i) {
          if ((*plans)[i].grouped()) continue;
          const auto& keep = asmbl->flat_cols[i];
          std::string& seg = flat_seg[i];
          for (const auto& row : rows[i]) {
            if (flat_count[i] > 0) seg += ';';
            ++flat_count[i];
            bool first = true;
            for (int c : keep) {
              if (!first) seg += ',';
              first = false;
              mr::kernels::AppendDecimal(&seg, row[static_cast<size_t>(c)]);
            }
          }
        }
        std::vector<size_t> gsides;
        for (size_t i = 0; i < n; ++i) {
          if ((*plans)[i].grouped()) gsides.push_back(i);
        }
        std::vector<size_t> idx(gsides.size(), 0);
        GroupEncoder enc;
        for (;;) {
          enc.Start();
          enc.AddBaseCell(static_cast<rdf::TermId>(kv));
          for (size_t gi = 0; gi < gsides.size(); ++gi) {
            const FactEntry& e = entries[gsides[gi]][idx[gi]];
            for (int slot : asmbl->base_keep[gsides[gi]]) {
              enc.AddBaseCell(e.base[static_cast<size_t>(slot)]);
            }
          }
          for (size_t i = 0, gi = 0; i < n; ++i) {
            if ((*plans)[i].grouped()) {
              const FactEntry& e = entries[i][idx[gi]];
              for (size_t g = 0; g < e.fsegs.size(); ++g) {
                enc.AddRawFactor(e.fsegs[g], e.frows[g]);
              }
              ++gi;
            } else {
              enc.AddRawFactor(flat_seg[i], flat_count[i]);
            }
          }
          ctx->Emit("", enc.Finish());
          ctx->NoteFactorizedGroup(enc.flat_rows());
          size_t g = gsides.size();
          for (;;) {
            if (g == 0) return;
            --g;
            if (++idx[g] < entries[gsides[g]].size()) break;
            idx[g] = 0;
          }
        }
      };
    } else {
      // Flat output: decompress every side, then the standard fold.
      const size_t w = width;
      job.reduce = [ins, plans, out_pos, w, post_predicate](
                       std::string_view /*key*/, const mr::ValueSpan& values,
                       mr::ReduceContext* ctx) {
        std::vector<std::vector<std::vector<rdf::TermId>>> sides(ins->size());
        GroupView gv;
        std::vector<rdf::TermId> scratch;
        for (std::string_view v : values) {
          size_t bar = v.find_first_of("|#");
          if (bar == std::string_view::npos || bar + 1 >= v.size()) continue;
          int64_t tag = 0;
          ParseInt64(v.substr(0, bar), &tag);
          const char kind = v[bar] == '|' ? 'F' : 'G';
          std::string_view payload = v.substr(bar + 1);
          auto& side = sides[static_cast<size_t>(tag)];
          if (kind == 'F') {
            side.push_back(DecodeRow(payload));
            continue;
          }
          const Factorization& partial =
              *(*plans)[static_cast<size_t>(tag)].partial;
          if (!ParseGroup(payload, partial.factors.size(), &gv)) continue;
          ForEachFlatRow(partial, gv, &scratch,
                         [&side](const std::vector<rdf::TermId>& fr) {
                           side.push_back(fr);
                         });
        }
        if (sides[0].empty()) return;
        std::vector<std::vector<rdf::TermId>> results;
        for (const auto& row : sides[0]) {
          std::vector<rdf::TermId> base(w, rdf::kInvalidTermId);
          for (size_t c = 0; c < row.size(); ++c) {
            base[static_cast<size_t>(out_pos[0][c])] = row[c];
          }
          results.push_back(std::move(base));
        }
        for (size_t i = 1; i < ins->size(); ++i) {
          if (sides[i].empty()) {
            if (!(*ins)[i].outer) return;
            continue;
          }
          std::vector<std::vector<rdf::TermId>> next;
          for (const auto& partial : results) {
            for (const auto& srow : sides[i]) {
              std::vector<rdf::TermId> merged = partial;
              for (size_t c = 0; c < srow.size(); ++c) {
                merged[static_cast<size_t>(out_pos[i][c])] = srow[c];
              }
              next.push_back(std::move(merged));
            }
          }
          results = std::move(next);
        }
        for (const auto& merged : results) {
          if (post_predicate && !post_predicate(merged)) continue;
          ctx->Emit("", EncodeRow(merged));
        }
      };
    }
    job.reduce_parallel_safe = true;
  }

  if (options_.vectorized_kernels) InstallBatchLoop(&job);

  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats ignored, cluster_->Run(job));
  (void)ignored;
  if (out_spec != nullptr) {
    out.factor = out_spec;
    RAPIDA_ASSIGN_OR_RETURN(out.flat_bytes, FlatStoredBytes(out));
  }
  return out;
}

StatusOr<TableRef> RelationalOps::UnionAll(
    const std::string& name_hint, const std::vector<TableRef>& inputs) {
  RAPIDA_CHECK(!inputs.empty());
  // Unified layout plus, per input, the mapping from its columns to
  // output positions (same scheme as Join's layout).
  std::vector<std::string> out_columns = inputs[0].columns;
  std::vector<std::vector<int>> out_pos(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (const std::string& name : inputs[i].columns) {
      auto it = std::find(out_columns.begin(), out_columns.end(), name);
      int pos;
      if (it == out_columns.end()) {
        pos = static_cast<int>(out_columns.size());
        out_columns.push_back(name);
      } else {
        pos = static_cast<int>(it - out_columns.begin());
      }
      out_pos[i].push_back(pos);
    }
  }
  const size_t width = out_columns.size();

  TableRef out;
  out.file = NextTmp(name_hint);
  out.columns = out_columns;

  mr::JobConfig job;
  job.name = name_hint + " (map-only)";
  for (const TableRef& t : inputs) job.inputs.push_back(t.file);
  job.output = out.file;

  bool any_factorized = false;
  for (const TableRef& t : inputs) any_factorized |= t.factorized();

  if (any_factorized) {
    // Stream-decompress factorized branches: UNION output must be flat
    // (branch layouts differ) and rows enumerate in exact flat order.
    auto factors = std::make_shared<std::vector<FactorizationPtr>>();
    for (const TableRef& t : inputs) factors->push_back(t.factor);
    job.map = [factors, out_pos, width](const mr::Record& r, int tag,
                                        mr::MapContext* ctx) {
      const std::vector<int>& pos = out_pos[static_cast<size_t>(tag)];
      std::vector<rdf::TermId> padded(width, rdf::kInvalidTermId);
      auto emit = [&](const std::vector<rdf::TermId>& row) {
        padded.assign(width, rdf::kInvalidTermId);
        for (size_t c = 0; c < row.size() && c < pos.size(); ++c) {
          padded[static_cast<size_t>(pos[c])] = row[c];
        }
        ctx->Emit("", EncodeRow(padded));
      };
      const FactorizationPtr& spec = (*factors)[static_cast<size_t>(tag)];
      if (spec == nullptr) {
        emit(DecodeRow(r.value));
        return;
      }
      GroupView view;
      if (!ParseGroup(r.value, spec->factors.size(), &view)) return;
      std::vector<rdf::TermId> row;
      ForEachFlatRow(*spec, view, &row, emit);
    };
    if (options_.vectorized_kernels) InstallBatchLoop(&job);
  } else if (options_.vectorized_kernels) {
    job.map_batch = [out_pos, width](const mr::TaggedRecord* recs, size_t n,
                                     mr::MapContext* ctx) {
      std::vector<rdf::TermId> row, padded;
      std::string val_buf;
      for (size_t i = 0; i < n; ++i) {
        DecodeRowInto(recs[i].record->value, &row);
        const std::vector<int>& pos = out_pos[recs[i].tag];
        padded.assign(width, rdf::kInvalidTermId);
        for (size_t c = 0; c < row.size() && c < pos.size(); ++c) {
          padded[pos[c]] = row[c];
        }
        val_buf.clear();
        AppendRow(&val_buf, padded);
        ctx->Emit("", val_buf);
      }
    };
  } else {
    job.map = [out_pos, width](const mr::Record& r, int tag,
                               mr::MapContext* ctx) {
      std::vector<rdf::TermId> row = DecodeRow(r.value);
      const std::vector<int>& pos = out_pos[tag];
      std::vector<rdf::TermId> padded(width, rdf::kInvalidTermId);
      for (size_t c = 0; c < row.size() && c < pos.size(); ++c) {
        padded[pos[c]] = row[c];
      }
      ctx->Emit("", EncodeRow(padded));
    };
  }

  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
  (void)stats;
  return out;
}

StatusOr<TableRef> RelationalOps::GroupBy(
    const std::string& name_hint, const TableRef& input,
    const std::vector<std::string>& key_columns,
    const std::vector<AggColumn>& aggs, RowPredicate having) {
  std::vector<int> key_idx;
  for (const std::string& k : key_columns) {
    int i = input.ColumnIndex(k);
    if (i < 0) {
      return Status::InvalidArgument("group key column '" + k +
                                     "' not in input");
    }
    key_idx.push_back(i);
  }
  std::vector<int> agg_idx;
  for (const AggColumn& a : aggs) {
    if (a.count_star) {
      agg_idx.push_back(-1);
      continue;
    }
    int i = input.ColumnIndex(a.column);
    if (i < 0) {
      return Status::InvalidArgument("aggregate column '" + a.column +
                                     "' not in input");
    }
    agg_idx.push_back(i);
  }

  TableRef out;
  out.file = NextTmp(name_hint);
  out.columns = key_columns;
  for (const AggColumn& a : aggs) out.columns.push_back(a.output_name);

  rdf::Dictionary* dict = &dataset_->dict();
  auto agg_specs = std::make_shared<std::vector<AggColumn>>(aggs);

  mr::JobConfig job;
  job.name = name_hint;
  job.inputs = {input.file};
  job.output = out.file;

  auto make_aggs = [agg_specs]() {
    std::vector<Aggregator> out_aggs;
    for (const AggColumn& a : *agg_specs) {
      out_aggs.emplace_back(a.func, /*distinct=*/false, a.separator);
    }
    return out_aggs;
  };

  using PartialMap = std::map<std::string, std::vector<Aggregator>>;
  auto flush_partials = [](mr::MapContext* ctx) {
    PartialMap* partials = ctx->TaskState<PartialMap>();
    for (auto& [key, agg_list] : *partials) {
      std::string value = "P";
      for (const Aggregator& a : agg_list) {
        value += '|';
        value += a.SerializePartial();
      }
      ctx->Emit(key, value);
    }
    partials->clear();
  };

  bool weighted_safe = options_.partial_aggregation;
  for (const AggColumn& a : aggs) {
    // Float addition is grouping-sensitive: SUM/AVG pipelines must see the
    // same add order as the flat path, so they are never aggregated by
    // weight (the planner also keeps them flat upstream).
    if (a.func == sparql::AggFunc::kSum || a.func == sparql::AggFunc::kAvg) {
      weighted_safe = false;
    }
  }

  if (input.factorized() && weighted_safe) {
    // Weighted direct path: aggregate group records WITHOUT enumerating
    // their flat rows — the multiplicity of every cell is a product of the
    // other factors' row counts. This is where the factorization factor
    // turns into saved work.
    FactorizationPtr spec = input.factor;
    auto loc = std::make_shared<std::vector<CellLoc>>(LocateCells(*spec));
    auto is_e = std::make_shared<std::vector<bool>>(spec->factors.size(),
                                                    false);
    for (int k : key_idx) {
      if ((*loc)[static_cast<size_t>(k)].kind == CellLoc::kFactor) {
        (*is_e)[static_cast<size_t>((*loc)[static_cast<size_t>(k)].factor)] =
            true;
      }
    }
    job.map = [spec, loc, is_e, key_idx, agg_idx, dict, make_aggs](
                  const mr::Record& r, int, mr::MapContext* ctx) {
      GroupView view;
      if (!ParseGroup(r.value, spec->factors.size(), &view)) return;
      PartialMap* partials = ctx->TaskState<PartialMap>();
      const size_t nf = spec->factors.size();
      std::vector<rdf::TermId> base(static_cast<size_t>(spec->width),
                                    rdf::kInvalidTermId);
      DecodeCellsInto(view.base, spec->base_cols, &base);
      // Decode every factor's rows; key-bearing factors are enumerated
      // (their rows split the group across keys), the rest contribute
      // multiplicity only.
      std::vector<std::vector<std::vector<rdf::TermId>>> cells(nf);
      std::vector<size_t> efactors;
      uint64_t mult = 1;
      for (size_t f = 0; f < nf; ++f) {
        const size_t rows = view.FactorRows(f);
        if (rows == 0) return;  // empty factor: zero flat rows
        cells[f].resize(rows);
        for (size_t t = 0; t < rows; ++t) {
          DecodeFactorRowInto(view.rows[view.FactorBegin(f) + t],
                              spec->factors[f].size(), &cells[f][t]);
        }
        if ((*is_e)[f]) {
          efactors.push_back(f);
        } else {
          mult *= rows;
        }
      }
      std::vector<size_t> idx(efactors.size(), 0);
      std::vector<rdf::TermId> key;
      auto cell_at = [&](int pos) -> rdf::TermId {
        const CellLoc& l = (*loc)[static_cast<size_t>(pos)];
        if (l.kind != CellLoc::kFactor) {
          return base[static_cast<size_t>(pos)];  // base cell or NULL
        }
        const size_t f = static_cast<size_t>(l.factor);
        size_t which = 0;
        while (efactors[which] != f) ++which;
        return cells[f][idx[which]][static_cast<size_t>(l.slot)];
      };
      for (;;) {
        key.clear();
        for (int k : key_idx) key.push_back(cell_at(k));
        auto [it, inserted] = partials->emplace(EncodeRow(key), make_aggs());
        std::vector<Aggregator>& agg_list = it->second;
        for (size_t a = 0; a < agg_idx.size(); ++a) {
          if (agg_idx[a] < 0) {
            agg_list[a].AddRowWeighted(mult);
            continue;
          }
          const CellLoc& l = (*loc)[static_cast<size_t>(agg_idx[a])];
          if (l.kind == CellLoc::kFactor &&
              !(*is_e)[static_cast<size_t>(l.factor)]) {
            // Aggregated column varies within a multiplicity factor: each
            // of its rows appears in mult / rows-of-factor flat rows.
            const size_t f = static_cast<size_t>(l.factor);
            const uint64_t w = mult / cells[f].size();
            for (const auto& frow : cells[f]) {
              agg_list[a].AddTermWeighted(frow[static_cast<size_t>(l.slot)],
                                          *dict, w);
            }
          } else {
            agg_list[a].AddTermWeighted(cell_at(agg_idx[a]), *dict, mult);
          }
        }
        size_t e = efactors.size();
        for (;;) {
          if (e == 0) return;
          --e;
          if (++idx[e] < cells[efactors[e]].size()) break;
          idx[e] = 0;
        }
      }
    };
    job.map_finish = flush_partials;
    if (options_.vectorized_kernels) InstallBatchLoop(&job);
  } else if (input.factorized()) {
    // Stream-decompress, then the flat scalar behavior per flat row (raw
    // mode, or an order-sensitive aggregate slipped through).
    FactorizationPtr spec = input.factor;
    const bool partial = options_.partial_aggregation;
    job.map = [spec, key_idx, agg_idx, dict, make_aggs, partial](
                  const mr::Record& r, int, mr::MapContext* ctx) {
      GroupView view;
      if (!ParseGroup(r.value, spec->factors.size(), &view)) return;
      std::vector<rdf::TermId> row;
      ForEachFlatRow(
          *spec, view, &row, [&](const std::vector<rdf::TermId>& fr) {
            std::vector<rdf::TermId> key;
            for (int i : key_idx) key.push_back(fr[static_cast<size_t>(i)]);
            if (partial) {
              PartialMap* partials = ctx->TaskState<PartialMap>();
              auto [it, inserted] =
                  partials->emplace(EncodeRow(key), make_aggs());
              for (size_t a = 0; a < agg_idx.size(); ++a) {
                if (agg_idx[a] < 0) {
                  it->second[a].AddRow();
                } else {
                  it->second[a].AddTerm(fr[static_cast<size_t>(agg_idx[a])],
                                        *dict);
                }
              }
              return;
            }
            std::vector<rdf::TermId> args;
            for (int i : agg_idx) {
              args.push_back(i < 0 ? rdf::kInvalidTermId
                                   : fr[static_cast<size_t>(i)]);
            }
            ctx->Emit(EncodeRow(key), "R|" + EncodeRow(args));
          });
    };
    if (options_.partial_aggregation) job.map_finish = flush_partials;
    if (options_.vectorized_kernels) InstallBatchLoop(&job);
  } else if (options_.partial_aggregation && options_.vectorized_kernels) {
    // Batch kernel for map-side pre-aggregation: an insertion-ordered
    // open-addressing table (HashIndex over the encoded group key) built
    // in one dispatch per split, flushed at the end of the same call.
    // Flush order differs from the scalar std::map's sorted order, but
    // group keys are unique within a task and the shuffle sorts by key, so
    // the post-shuffle stream — and every counter — is identical.
    job.map_batch = [key_idx, agg_idx, dict, make_aggs](
                        const mr::TaggedRecord* recs, size_t n,
                        mr::MapContext* ctx) {
      mr::kernels::HashIndex index;
      std::vector<std::string> keys;
      std::vector<std::vector<Aggregator>> agg_rows;
      std::vector<rdf::TermId> row;
      std::string key_buf;
      for (size_t i = 0; i < n; ++i) {
        DecodeRowInto(recs[i].record->value, &row);
        key_buf.clear();
        for (size_t k = 0; k < key_idx.size(); ++k) {
          if (k > 0) key_buf += ',';
          mr::kernels::AppendDecimal(&key_buf, row[key_idx[k]]);
        }
        auto [id, inserted] = index.FindOrInsert(
            mr::HashKey(key_buf), static_cast<uint32_t>(keys.size()),
            [&](uint32_t cand) { return keys[cand] == key_buf; });
        if (inserted) {
          keys.push_back(key_buf);
          agg_rows.push_back(make_aggs());
        }
        std::vector<Aggregator>& agg_list = agg_rows[id];
        for (size_t a = 0; a < agg_idx.size(); ++a) {
          if (agg_idx[a] < 0) {
            agg_list[a].AddRow();
          } else {
            agg_list[a].AddTerm(row[agg_idx[a]], *dict);
          }
        }
      }
      for (size_t id = 0; id < keys.size(); ++id) {
        std::string value = "P";
        for (const Aggregator& a : agg_rows[id]) {
          value += '|';
          value += a.SerializePartial();
        }
        ctx->Emit(keys[id], value);
      }
    };
  } else if (options_.partial_aggregation) {
    // Hash-based map-side pre-aggregation (the relational analogue of
    // Alg. 3's multiAggMap). The table lives in per-task state so
    // concurrent map tasks accumulate independently.
    using PartialMap = std::map<std::string, std::vector<Aggregator>>;
    job.map = [key_idx, agg_idx, dict, make_aggs](
                  const mr::Record& r, int, mr::MapContext* ctx) {
      PartialMap* partials = ctx->TaskState<PartialMap>();
      std::vector<rdf::TermId> row = DecodeRow(r.value);
      std::vector<rdf::TermId> key;
      for (int i : key_idx) key.push_back(row[i]);
      auto [it, inserted] = partials->emplace(EncodeRow(key), make_aggs());
      for (size_t a = 0; a < agg_idx.size(); ++a) {
        if (agg_idx[a] < 0) {
          it->second[a].AddRow();
        } else {
          it->second[a].AddTerm(row[agg_idx[a]], *dict);
        }
      }
    };
    job.map_finish = [](mr::MapContext* ctx) {
      PartialMap* partials = ctx->TaskState<PartialMap>();
      for (auto& [key, agg_list] : *partials) {
        std::string value = "P";
        for (const Aggregator& a : agg_list) {
          value += '|';
          value += a.SerializePartial();
        }
        ctx->Emit(key, value);
      }
      partials->clear();
    };
  } else if (options_.vectorized_kernels) {
    job.map_batch = [key_idx, agg_idx](const mr::TaggedRecord* recs,
                                       size_t n, mr::MapContext* ctx) {
      std::vector<rdf::TermId> row;
      std::string key_buf, val_buf;
      for (size_t i = 0; i < n; ++i) {
        DecodeRowInto(recs[i].record->value, &row);
        key_buf.clear();
        for (size_t k = 0; k < key_idx.size(); ++k) {
          if (k > 0) key_buf += ',';
          mr::kernels::AppendDecimal(&key_buf, row[key_idx[k]]);
        }
        val_buf.assign("R|");
        for (size_t a = 0; a < agg_idx.size(); ++a) {
          if (a > 0) val_buf += ',';
          mr::kernels::AppendDecimal(
              &val_buf, agg_idx[a] < 0 ? rdf::kInvalidTermId
                                       : row[agg_idx[a]]);
        }
        ctx->Emit(key_buf, val_buf);
      }
    };
  } else {
    job.map = [key_idx, agg_idx](const mr::Record& r, int,
                                 mr::MapContext* ctx) {
      std::vector<rdf::TermId> row = DecodeRow(r.value);
      std::vector<rdf::TermId> key;
      for (int i : key_idx) key.push_back(row[i]);
      std::vector<rdf::TermId> args;
      for (int i : agg_idx) {
        args.push_back(i < 0 ? rdf::kInvalidTermId : row[i]);
      }
      ctx->Emit(EncodeRow(key), "R|" + EncodeRow(args));
    };
  }

  const bool batch_reduce = options_.vectorized_kernels;
  job.reduce = [agg_specs, dict, make_aggs, having, batch_reduce](
                   std::string_view key, const mr::ValueSpan& values,
                   mr::ReduceContext* ctx) {
    // Batch mode reuses per-task scratch (args/out_row/val_buf) across key
    // groups; the aggregator list itself must reset per group either way.
    struct Scratch {
      std::vector<rdf::TermId> args, out_row;
      std::string val_buf;
    };
    Scratch local;
    Scratch* s = batch_reduce ? ctx->TaskState<Scratch>() : &local;
    std::vector<Aggregator> agg_list = make_aggs();
    for (std::string_view v : values) {
      if (v.empty()) continue;
      if (v[0] == 'P') {
        FieldTokenizer parts(v, '|');
        std::string_view part;
        parts.Next(&part);  // the "P" marker
        for (size_t a = 0; a < agg_list.size() && parts.Next(&part); ++a) {
          auto partial = Aggregator::DeserializePartial(
              (*agg_specs)[a].func, part, (*agg_specs)[a].separator);
          if (partial.ok()) agg_list[a].Merge(*partial, *dict);
        }
      } else if (v[0] == 'R') {
        DecodeRowInto(v.substr(2), &s->args);
        for (size_t a = 0; a < agg_list.size() && a < s->args.size(); ++a) {
          if ((*agg_specs)[a].count_star) {
            agg_list[a].AddRow();
          } else {
            agg_list[a].AddTerm(s->args[a], *dict);
          }
        }
      }
    }
    DecodeRowInto(key, &s->out_row);
    for (Aggregator& a : agg_list) s->out_row.push_back(a.Finalize(dict));
    if (having != nullptr && !having(s->out_row)) return;
    s->val_buf.clear();
    AppendRow(&s->val_buf, s->out_row);
    ctx->Emit("", s->val_buf);
  };

  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
  (void)stats;

  // GROUP BY ALL over an empty input still produces one default row
  // (SPARQL: COUNT over the empty group is 0). Only when the *input* was
  // empty — an empty output over non-empty input means HAVING filtered
  // the single ALL-group, which must stay filtered.
  if (key_columns.empty()) {
    RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* in_f,
                            dataset_->dfs().Open(input.file));
    RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* f,
                            dataset_->dfs().Open(out.file));
    if (f->records.empty() && in_f->records.empty()) {
      std::vector<rdf::TermId> row;
      for (const AggColumn& a : aggs) {
        Aggregator empty(a.func, false, a.separator);
        row.push_back(empty.Finalize(dict));
      }
      if (having == nullptr || having(row)) {
        mr::RecordBatch batch;
        batch.Add("", EncodeRow(row));
        RAPIDA_RETURN_IF_ERROR(
            dataset_->dfs().Write(out.file, std::move(batch)));
      }
    }
  }
  return out;
}

StatusOr<TableRef> RelationalOps::DistinctProject(
    const std::string& name_hint, const TableRef& input,
    const std::vector<std::string>& columns, RowPredicate keep_predicate) {
  std::vector<int> idx;
  for (const std::string& c : columns) {
    int i = input.ColumnIndex(c);
    if (i < 0) {
      return Status::InvalidArgument("projection column '" + c +
                                     "' not in input");
    }
    idx.push_back(i);
  }
  TableRef out;
  out.file = NextTmp(name_hint);
  out.columns = columns;

  mr::JobConfig job;
  job.name = name_hint;
  job.inputs = {input.file};
  job.output = out.file;
  if (input.factorized()) {
    // Stream-decompress group records; the reduce-side dedup makes the
    // enumeration order immaterial (DISTINCT is order-insensitive), which
    // is exactly why the planner may factorize up to this sink.
    FactorizationPtr spec = input.factor;
    job.map = [spec, idx, keep_predicate](const mr::Record& r, int,
                                          mr::MapContext* ctx) {
      GroupView view;
      if (!ParseGroup(r.value, spec->factors.size(), &view)) return;
      std::vector<rdf::TermId> row;
      std::vector<rdf::TermId> projected;
      ForEachFlatRow(*spec, view, &row,
                     [&](const std::vector<rdf::TermId>& fr) {
                       if (keep_predicate && !keep_predicate(fr)) return;
                       projected.clear();
                       for (int i : idx) {
                         projected.push_back(fr[static_cast<size_t>(i)]);
                       }
                       ctx->Emit(EncodeRow(projected), "");
                     });
    };
    if (options_.vectorized_kernels) InstallBatchLoop(&job);
  } else if (options_.vectorized_kernels) {
    job.map_batch = [idx, keep_predicate](const mr::TaggedRecord* recs,
                                          size_t n, mr::MapContext* ctx) {
      std::vector<rdf::TermId> row;
      std::string key_buf;
      for (size_t r = 0; r < n; ++r) {
        DecodeRowInto(recs[r].record->value, &row);
        if (keep_predicate && !keep_predicate(row)) continue;
        key_buf.clear();
        for (size_t k = 0; k < idx.size(); ++k) {
          if (k > 0) key_buf += ',';
          mr::kernels::AppendDecimal(&key_buf, row[idx[k]]);
        }
        ctx->Emit(key_buf, "");
      }
    };
  } else {
    job.map = [idx, keep_predicate](const mr::Record& r, int,
                                    mr::MapContext* ctx) {
      std::vector<rdf::TermId> row = DecodeRow(r.value);
      if (keep_predicate && !keep_predicate(row)) return;
      std::vector<rdf::TermId> projected;
      for (int i : idx) projected.push_back(row[i]);
      ctx->Emit(EncodeRow(projected), "");
    };
  }
  // Combiner dedups map-side; reduce emits one row per distinct key.
  job.combine = [](std::string_view key, const mr::ValueSpan&,
                   mr::ReduceContext* ctx) { ctx->Emit(key, ""); };
  job.reduce = [](std::string_view key, const mr::ValueSpan&,
                  mr::ReduceContext* ctx) { ctx->Emit("", key); };
  job.reduce_parallel_safe = true;

  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
  (void)stats;
  return out;
}

ProjectedResult JoinAndProject(std::vector<analytics::BindingTable> tables,
                               const std::vector<sparql::SelectItem>& items,
                               rdf::Dictionary* dict) {
  RAPIDA_CHECK(!tables.empty());
  analytics::BindingTable joined = std::move(tables[0]);
  for (size_t i = 1; i < tables.size(); ++i) joined = joined.Join(tables[i]);

  ProjectedResult out;
  for (const sparql::SelectItem& item : items) out.columns.push_back(item.name);
  for (const auto& row : joined.rows()) {
    auto resolve = [&joined, &row](const std::string& v) {
      int i = joined.VarIndex(v);
      return i < 0 ? rdf::kInvalidTermId : row[i];
    };
    std::vector<rdf::TermId> out_row;
    for (const sparql::SelectItem& item : items) {
      if (item.expr == nullptr) {
        out_row.push_back(resolve(item.name));
        continue;
      }
      sparql::EvalValue v = sparql::EvaluateExpr(*item.expr, resolve, *dict);
      switch (v.kind) {
        case sparql::EvalValue::Kind::kNum:
          out_row.push_back(analytics::InternNumber(dict, v.num));
          break;
        case sparql::EvalValue::Kind::kTerm:
          out_row.push_back(v.term != rdf::kInvalidTermId
                                ? v.term
                                : dict->Intern(*v.term_ptr));
          break;
        case sparql::EvalValue::Kind::kBool:
          out_row.push_back(dict->InternLiteral(v.b ? "true" : "false"));
          break;
        default:
          out_row.push_back(rdf::kInvalidTermId);
      }
    }
    out.rows.push_back(EncodeRow(out_row));
  }
  return out;
}

StatusOr<TableRef> RelationalOps::FinalJoinProject(
    const std::string& name_hint, const std::vector<TableRef>& inputs,
    const std::vector<sparql::SelectItem>& items) {
  RAPIDA_CHECK(!inputs.empty());
  rdf::Dictionary* dict = &dataset_->dict();

  // Load every input locally (they are small aggregated tables) and join
  // them with the well-tested BindingTable logic.
  std::vector<analytics::BindingTable> tables;
  for (const TableRef& in : inputs) {
    RAPIDA_ASSIGN_OR_RETURN(analytics::BindingTable t, ReadTable(in));
    tables.push_back(std::move(t));
  }
  ProjectedResult projected = JoinAndProject(std::move(tables), items, dict);
  std::vector<std::string> result_rows = std::move(projected.rows);

  // Model the work as one map-only broadcast-join cycle: the job scans all
  // inputs (honest byte accounting) and one mapper emits the result.
  TableRef out;
  out.file = NextTmp(name_hint);
  out.columns = std::move(projected.columns);

  mr::JobConfig job;
  job.name = name_hint + " (map-only)";
  for (const TableRef& t : inputs) job.inputs.push_back(t.file);
  job.output = out.file;
  auto rows = std::make_shared<std::vector<std::string>>(
      std::move(result_rows));
  // Exactly one of the (possibly concurrent) mappers emits the rows.
  auto emitted = std::make_shared<std::atomic<bool>>(false);
  job.map = [](const mr::Record&, int, mr::MapContext*) {};
  job.map_finish = [rows, emitted](mr::MapContext* ctx) {
    if (emitted->exchange(true)) return;
    for (const std::string& r : *rows) ctx->Emit("", r);
  };
  RAPIDA_ASSIGN_OR_RETURN(mr::JobStats stats, cluster_->Run(job));
  (void)stats;
  return out;
}

StatusOr<analytics::BindingTable> RelationalOps::ReadTable(
    const TableRef& table) {
  RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* f,
                          dataset_->dfs().Open(table.file));
  analytics::BindingTable out(table.columns);
  if (table.factorized()) {
    GroupView view;
    std::vector<rdf::TermId> row;
    for (const mr::Record& r : f->records) {
      if (!ParseGroup(r.value, table.factor->factors.size(), &view)) continue;
      ForEachFlatRow(*table.factor, view, &row,
                     [&out, &table](const std::vector<rdf::TermId>& fr) {
                       std::vector<rdf::TermId> flat = fr;
                       flat.resize(table.columns.size(), rdf::kInvalidTermId);
                       out.AddRow(std::move(flat));
                     });
    }
    return out;
  }
  for (const mr::Record& r : f->records) {
    std::vector<rdf::TermId> row = DecodeRow(r.value);
    row.resize(table.columns.size(), rdf::kInvalidTermId);
    out.AddRow(std::move(row));
  }
  return out;
}

StatusOr<uint64_t> RelationalOps::FlatStoredBytes(const TableRef& table) const {
  if (!table.factorized()) return dataset_->VpFileBytes(table.file);
  // Join intermediates are written with default (uncompressed) FileOptions,
  // so the flat equivalent's stored bytes are its raw record bytes.
  RAPIDA_ASSIGN_OR_RETURN(const mr::Dfs::File* f,
                          dataset_->dfs().Open(table.file));
  uint64_t bytes = 0;
  GroupView view;
  for (const mr::Record& r : f->records) {
    if (!ParseGroup(r.value, table.factor->factors.size(), &view)) continue;
    bytes += FlatRecordBytes(*table.factor, view);
  }
  return bytes;
}

}  // namespace rapida::engine
