#ifndef RAPIDA_ENGINES_ENGINES_H_
#define RAPIDA_ENGINES_ENGINES_H_

#include <memory>
#include <vector>

#include "engines/engine.h"
#include "engines/hive_mqo.h"
#include "engines/hive_naive.h"
#include "engines/rapid_analytics.h"
#include "engines/rapid_plus.h"

namespace rapida::engine {

/// The four systems of the paper's evaluation, in its presentation order.
inline std::vector<std::unique_ptr<Engine>> MakeAllEngines(
    const EngineOptions& options = EngineOptions()) {
  std::vector<std::unique_ptr<Engine>> out;
  out.push_back(std::make_unique<HiveNaiveEngine>(options));
  out.push_back(std::make_unique<HiveMqoEngine>(options));
  out.push_back(std::make_unique<RapidPlusEngine>(options));
  out.push_back(std::make_unique<RapidAnalyticsEngine>(options));
  return out;
}

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_ENGINES_H_
