#ifndef RAPIDA_ENGINES_NTGA_EXEC_H_
#define RAPIDA_ENGINES_NTGA_EXEC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analytics/binding.h"
#include "engines/dataset.h"
#include "engines/engine.h"
#include "engines/relational_ops.h"
#include "mapreduce/cluster.h"
#include "ntga/operators.h"
#include "ntga/resolved_pattern.h"
#include "util/statusor.h"

namespace rapida::engine {

/// Map of composite variable name -> single-variable filters pushed into
/// star matching (evaluated per candidate triple).
using PushedFilters = std::map<std::string, std::vector<const sparql::Expr*>>;

/// Per-grouping work item for the TG Agg-Join cycle.
struct NtgaGrouping {
  ntga::AggJoinSpec spec;                  // θ / l / α (composite namespace)
  std::vector<std::string> pattern_vars;   // expansion variable set
  std::vector<std::string> output_columns; // original-namespace names:
                                           // group_by names then agg names
  /// Residual (multi-variable) filters evaluated per solution mapping,
  /// over pattern_vars order. May be null.
  RowPredicate mapping_predicate;
  /// HAVING condition over output_columns (applied to the aggregated
  /// table, after the GROUP-BY-ALL default-row rule). Not owned.
  const sparql::Expr* having = nullptr;
};

/// Matches of a pattern: either a DFS file of serialized
/// NestedTripleGroups (multi-star patterns), or — for one-star patterns —
/// the raw triplegroup files plus the star to filter in the Agg-Join map
/// (pattern matching folds into the aggregation cycle, giving the 2-cycle
/// plans of Table 3).
struct PatternMatches {
  std::string nested_file;
  std::vector<std::string> star_files;
};

/// Physical NTGA plan builder shared by RAPID+ and RAPIDAnalytics: the MR
/// renditions of TG_OptGrpFilter, TG_AlphaJoin (Alg. 2) and TG_AgJ
/// (Alg. 3 with map-side multiAggMap pre-aggregation).
class NtgaExec {
 public:
  NtgaExec(mr::Cluster* cluster, Dataset* dataset,
           const EngineOptions& options, std::string tmp_prefix);

  /// Evaluates a resolved (composite) pattern: (k−1) α-join cycles for a
  /// k-star pattern. `final_alphas` (disjunction; may be empty) filters
  /// joined groups in the last cycle. `pushed_filters` are applied at
  /// triple level during star matching.
  StatusOr<PatternMatches> ComputePatternMatches(
      const ntga::ResolvedPattern& pattern,
      const std::vector<ntga::AlphaCondition>& final_alphas,
      const PushedFilters& pushed_filters, const std::string& label);

  /// Runs the TG Agg-Join(s). `parallel` evaluates all groupings in one
  /// MR cycle (Fig. 6b); otherwise one cycle per grouping (Fig. 6a /
  /// RAPID+). Returns one table per grouping (all backed by shared agg
  /// output files; rows are EncodeRow'd group keys + aggregate values).
  /// `out_files` (optional) receives the backing DFS file per grouping.
  StatusOr<std::vector<analytics::BindingTable>> RunAggJoins(
      const ntga::ResolvedPattern& pattern, const PatternMatches& matches,
      const PushedFilters& pushed_filters,
      const std::vector<NtgaGrouping>& groupings, bool parallel,
      const std::string& label, std::vector<std::string>* out_files = nullptr);

  /// One map-only cycle turning pattern matches into a relational table
  /// over `columns` (pattern variables): parses each nested group (or raw
  /// triplegroup for one-star matches — star filtering folds into the
  /// map), expands the solution mappings (unbound slots stay NULL),
  /// applies the residual `mapping_predicate`, and writes EncodeRow'd
  /// rows. The bridge from NTGA pattern matching to the relational
  /// left-join/union/group-by tail of OPTIONAL/UNION groupings.
  StatusOr<TableRef> ExpandToTable(const ntga::ResolvedPattern& pattern,
                                   const PatternMatches& matches,
                                   const PushedFilters& pushed_filters,
                                   const std::vector<std::string>& columns,
                                   RowPredicate mapping_predicate,
                                   const std::string& label);

  /// Final map-only cycle: joins the aggregated tables and evaluates the
  /// top-level items; returns the result.
  StatusOr<analytics::BindingTable> FinalJoinProject(
      std::vector<analytics::BindingTable> agg_tables,
      const std::vector<sparql::SelectItem>& items,
      const std::vector<std::string>& agg_files, const std::string& label);

  void Cleanup();

 private:
  std::string NextTmp(const std::string& hint);

  mr::Cluster* cluster_;
  Dataset* dataset_;
  EngineOptions options_;
  std::string tmp_prefix_;
  int counter_ = 0;
  std::vector<std::string> temp_files_;
};

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_NTGA_EXEC_H_
