#ifndef RAPIDA_ENGINES_FACTORIZED_H_
#define RAPIDA_ENGINES_FACTORIZED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/term.h"

namespace rapida::engine {

/// Factorized (d-representation) layout of a relational intermediate
/// (DESIGN.md §16). Each DFS record holds one *group*: a base row — one
/// value per base column — plus one value vector per multi-valued factor.
/// The group stands for the cross product of its factor rows; enumerating
/// factor 0 outermost and the last factor innermost reproduces the flat
/// table's rows of that group in their exact flat order.
///
/// Wire format of a group record's value ('|' joins segments):
///
///   base-cells '|' factor-0 '|' factor-1 ...
///
/// `base-cells` is the EncodeRow of the base values (ordered by
/// `base_cols`); factor f is its rows joined by ';', each row the
/// EncodeRow of its cells (ordered by `factors[f]`). A factor with zero
/// columns encodes every row as the empty string — pure multiplicity
/// (e.g. a type-table side that matched k times). Positions covered by
/// neither the base nor any factor read as NULL in every flat row.
struct Factorization {
  /// Column positions (indices into the table layout) bound once per group.
  std::vector<int> base_cols;
  /// Per-factor column positions.
  std::vector<std::vector<int>> factors;
  /// Total columns of the table layout.
  int width = 0;
};

using FactorizationPtr = std::shared_ptr<const Factorization>;

/// Parsed view of one group record; all views point into the record value
/// and stay valid only as long as it does.
struct GroupView {
  std::string_view base;
  /// Every factor's rows, flattened; factor f owns
  /// rows[FactorBegin(f) .. factor_end[f]).
  std::vector<std::string_view> rows;
  std::vector<uint32_t> factor_end;

  size_t FactorBegin(size_t f) const { return f == 0 ? 0 : factor_end[f - 1]; }
  size_t FactorRows(size_t f) const { return factor_end[f] - FactorBegin(f); }
  /// Product of the factor row counts == flat rows this group stands for.
  uint64_t FlatRows() const;
};

/// Splits `value` into base + per-factor row views. Returns false when the
/// segment count does not match `num_factors` (malformed record). Reuses
/// `out`'s capacity.
bool ParseGroup(std::string_view value, size_t num_factors, GroupView* out);

/// Exact serialized size the group's flat rows would occupy as records
/// ("" keys, EncodeRow values): for each enumerated row,
/// width-1 separators + the digits of every cell + the 2 accounting bytes
/// of mr::Record::Bytes. Computed arithmetically — no enumeration.
uint64_t FlatRecordBytes(const Factorization& spec, const GroupView& g);

/// Decimal digit count of a TermId (NULL = "0" = 1 digit).
inline uint64_t DigitCount(rdf::TermId v) {
  uint64_t d = 1;
  while (v >= 10) {
    v /= 10;
    ++d;
  }
  return d;
}

/// Decodes a comma-separated cell list into `row` at the given positions.
/// Cells beyond `cols.size()` are ignored; missing cells leave NULL.
void DecodeCellsInto(std::string_view encoded, const std::vector<int>& cols,
                     std::vector<rdf::TermId>* row);

/// Reusable scratch for flat enumeration of parsed groups.
struct FlatScratch {
  GroupView view;
  std::vector<rdf::TermId> row;
};

/// Enumerates the flat rows of one parsed group in canonical order
/// (factor 0 outermost, last factor innermost) and calls `fn(row)` with a
/// width-sized row for each. The row reference stays valid only during the
/// callback.
template <typename Fn>
void ForEachFlatRow(const Factorization& spec, const GroupView& g,
                    std::vector<rdf::TermId>* row, Fn&& fn) {
  row->assign(static_cast<size_t>(spec.width), rdf::kInvalidTermId);
  DecodeCellsInto(g.base, spec.base_cols, row);
  // Iterative odometer, last factor fastest: factor 0 outermost.
  const size_t nf = spec.factors.size();
  if (nf == 0) {
    fn(*row);
    return;
  }
  for (size_t f = 0; f < nf; ++f) {
    if (g.FactorRows(f) == 0) return;  // empty factor: zero flat rows
  }
  std::vector<size_t> idx(nf, 0);
  for (size_t f = 0; f < nf; ++f) {
    DecodeCellsInto(g.rows[g.FactorBegin(f)], spec.factors[f], row);
  }
  for (;;) {
    fn(*row);
    size_t f = nf;
    for (;;) {
      if (f == 0) return;  // every factor wrapped: enumeration complete
      --f;
      if (++idx[f] < g.FactorRows(f)) {
        DecodeCellsInto(g.rows[g.FactorBegin(f) + idx[f]], spec.factors[f],
                        row);
        break;
      }
      idx[f] = 0;
      DecodeCellsInto(g.rows[g.FactorBegin(f)], spec.factors[f], row);
    }
  }
}

/// Streaming encoder for group records; reusable across groups. Usage:
///   enc.Start(); enc.AddBaseCell(id)...;
///   enc.StartFactor(); enc.AddFactorRow(...) / AddRawFactorRow(...);
///   ... enc.Finish();
/// Finish() returns the record value; flat_rows() feeds the factorization
/// counters (flat rows the emitted group stands for).
class GroupEncoder {
 public:
  void Start() {
    buf_.clear();
    flat_rows_ = 1;
    rows_in_factor_ = 0;
    base_cells_ = false;
    in_factor_ = false;
  }
  void AddBaseCell(rdf::TermId v);
  /// Appends pre-encoded base cells (comma-joined decimals) — pass-through
  /// of an upstream group's base segment. No-op for an empty segment.
  void AddRawBase(std::string_view encoded);
  void StartFactor();
  /// One factor row from decoded cells.
  void AddFactorRow(const rdf::TermId* cells, size_t n);
  /// One factor row whose encoded bytes are already available (pass-through
  /// of an upstream segment's row; no re-encode).
  void AddRawFactorRow(std::string_view encoded);
  /// Appends a whole pre-encoded factor segment of `rows` rows. The caller
  /// vouches the segment matches the output spec's factor layout.
  void AddRawFactor(std::string_view segment, uint64_t rows);
  /// Closes the record: returns the value. At least one factor row per
  /// factor must have been added (callers synthesize NULL rows for outer
  /// misses).
  const std::string& Finish() {
    CloseFactor();
    in_factor_ = false;
    return buf_;
  }
  uint64_t flat_rows() const { return flat_rows_; }

 private:
  void CloseFactor();
  std::string buf_;
  uint64_t flat_rows_ = 1;
  uint64_t rows_in_factor_ = 0;
  bool base_cells_ = false;
  bool in_factor_ = false;
};

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_FACTORIZED_H_
