#ifndef RAPIDA_ENGINES_PLAN_PREVIEW_H_
#define RAPIDA_ENGINES_PLAN_PREVIEW_H_

#include <string>
#include <vector>

#include "analytics/analytical_query.h"

namespace rapida::engine {

/// A predicted execution plan: the MR cycle count an engine will compile
/// the query to, with a per-cycle description. Computed purely from the
/// query's shape (star counts, overlap structure) — no dataset needed.
///
/// PreviewPlan mirrors each engine's plan compiler; the invariant
/// "preview cycles == executed cycles" is enforced by tests for the whole
/// catalog, so the preview is trustworthy for capacity planning and for
/// the CLI's --plan flag.
struct PlanPreview {
  std::string engine;
  int cycles = 0;
  std::vector<std::string> steps;  // one line per cycle

  std::string ToString() const;
};

/// Engine display names as accepted by MakeAllEngines()/benches:
/// "Hive (Naive)", "Hive (MQO)", "RAPID+ (Naive)", "RAPIDAnalytics".
PlanPreview PreviewPlan(const std::string& engine_name,
                        const analytics::AnalyticalQuery& query);

/// Previews for all four systems.
std::vector<PlanPreview> PreviewAllPlans(
    const analytics::AnalyticalQuery& query);

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_PLAN_PREVIEW_H_
