#ifndef RAPIDA_ENGINES_RELATIONAL_OPS_H_
#define RAPIDA_ENGINES_RELATIONAL_OPS_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analytics/binding.h"
#include "engines/dataset.h"
#include "engines/engine.h"
#include "engines/factorized.h"
#include "mapreduce/cluster.h"
#include "sparql/ast.h"
#include "util/statusor.h"

namespace rapida::engine {

/// Row codec for relational intermediates: TermIds joined by ','
/// (kInvalidTermId encodes SQL NULL).
std::string EncodeRow(const std::vector<rdf::TermId>& row);
std::vector<rdf::TermId> DecodeRow(std::string_view data);

/// Scratch-reusing codec variants for the batch kernels: AppendRow appends
/// EncodeRow's exact bytes to `out`; DecodeRowInto overwrites `out` in
/// place, reusing its capacity so per-record loops stop allocating once
/// warm.
void AppendRow(std::string* out, const rdf::TermId* row, size_t n);
void AppendRow(std::string* out, const std::vector<rdf::TermId>& row);
void DecodeRowInto(std::string_view data, std::vector<rdf::TermId>* out);

/// A named intermediate table: a DFS file whose records hold EncodeRow'd
/// values, plus its column names. When `factor` is set the file instead
/// holds factorized group records (engines/factorized.h) — one record per
/// group, standing for the cross product of its factor rows.
struct TableRef {
  std::string file;
  std::vector<std::string> columns;
  /// Factorized layout of the file's records; null = flat EncodeRow rows.
  FactorizationPtr factor;
  /// Exact stored bytes the equivalent *flat* file would occupy — what
  /// size-based decisions (map-join threshold, greedy join order) must use
  /// so the factorized path picks the same strategies as the flat path.
  /// 0 for flat tables (use the file's stored bytes directly).
  uint64_t flat_bytes = 0;

  int ColumnIndex(const std::string& name) const;
  bool factorized() const { return factor != nullptr; }
};

/// Predicate over a decoded row (compiled FILTER).
using RowPredicate = std::function<bool(const std::vector<rdf::TermId>&)>;

/// Compiles a conjunction of FILTER expressions into a RowPredicate over
/// the given column layout. Expressions referencing columns outside the
/// layout evaluate to error (row rejected). `dict` must outlive the
/// predicate.
RowPredicate CompilePredicate(
    const std::vector<const sparql::Expr*>& filters,
    const std::vector<std::string>& columns, const rdf::Dictionary* dict);

/// Joins the given (small, in-memory) tables on shared column names and
/// evaluates the top-level select items per joined row. Shared by the
/// final map-only cycle of every engine.
struct ProjectedResult {
  std::vector<std::string> columns;
  std::vector<std::string> rows;  // EncodeRow'd values (record keys are "")
};
ProjectedResult JoinAndProject(std::vector<analytics::BindingTable> tables,
                               const std::vector<sparql::SelectItem>& items,
                               rdf::Dictionary* dict);

/// One input of a relational join.
struct JoinInput {
  std::string file;
  /// Column names this input provides. For a VP input: 1 name (type
  /// tables — subject only) or 2 names (subject, object).
  std::vector<std::string> columns;
  /// VP record layout (key=subject id, value=object id) vs intermediate
  /// layout (value=EncodeRow).
  bool is_vp = false;
  /// Column to join on (must be in `columns`).
  std::string join_column;
  /// LEFT OUTER semantics for this input (never the first input).
  bool outer = false;
  /// Optional map-side filter on this input's rows.
  RowPredicate predicate;
  /// Factorized layout of the input file (copied from its TableRef); null
  /// for flat files. A factorized input with a predicate is stream-
  /// decompressed in the map (predicates see flat rows).
  FactorizationPtr factor;
  /// Flat-equivalent stored bytes (TableRef::flat_bytes) for size-based
  /// join-strategy decisions. 0 = use the file's stored bytes.
  uint64_t flat_bytes = 0;
};

/// Builder for the Hive-style relational MR plans. Tracks the temp files
/// it creates so the engine can clean up.
class RelationalOps {
 public:
  RelationalOps(mr::Cluster* cluster, Dataset* dataset,
                const EngineOptions& options, std::string tmp_prefix);

  /// Equi-joins any number of inputs on their join columns in ONE MR cycle
  /// (Hive merges same-key multi-way joins). Becomes a map-only map-join
  /// cycle when every input but the largest is under the threshold and
  /// map-joins are enabled. `post_predicate` filters joined rows before
  /// the output is written.
  ///
  /// `factorize_output` requests a factorized (d-representation) output:
  /// one group record per join match instead of the enumerated cross
  /// product. Honoured only when the join has >= 2 inputs, no
  /// post-predicate, and no output column is claimed by two sides (the
  /// flat fold's overwrite semantics cannot be represented); otherwise the
  /// output silently stays flat. Decompressing the factorized output
  /// reproduces the flat output's rows (star joins and map-joins: in the
  /// exact flat order; repartition joins over factorized inputs: as the
  /// same multiset — callers must sit upstream of an order-insensitive
  /// sink such as GroupBy or DISTINCT, which the planner guarantees).
  StatusOr<TableRef> Join(const std::string& name_hint,
                          const std::vector<JoinInput>& inputs,
                          RowPredicate post_predicate = nullptr,
                          bool factorize_output = false);

  /// UNION ALL cycle: one map-only job that scans every input table and
  /// re-emits each row remapped to the unified layout (first input's
  /// columns, then the unseen columns of later inputs). Columns an input
  /// lacks read as NULL — the relational form of SPARQL UNION's unbound
  /// padding.
  StatusOr<TableRef> UnionAll(const std::string& name_hint,
                              const std::vector<TableRef>& inputs);

  /// GROUP BY cycle with optional map-side partial aggregation.
  struct AggColumn {
    sparql::AggFunc func = sparql::AggFunc::kCount;
    std::string column;  // empty for COUNT(*)
    bool count_star = false;
    std::string output_name;
    std::string separator = " ";  // GROUP_CONCAT only
  };
  /// `having` (optional) filters aggregated rows in the reduce phase; it
  /// sees the output layout (key columns then aggregate columns).
  StatusOr<TableRef> GroupBy(const std::string& name_hint,
                             const TableRef& input,
                             const std::vector<std::string>& key_columns,
                             const std::vector<AggColumn>& aggs,
                             RowPredicate having = nullptr);

  /// DISTINCT projection cycle (reduce-side dedup) — the MQO extraction
  /// step. `keep_predicate` selects qualifying rows in the map phase.
  StatusOr<TableRef> DistinctProject(const std::string& name_hint,
                                     const TableRef& input,
                                     const std::vector<std::string>& columns,
                                     RowPredicate keep_predicate);

  /// Final map-only cycle: joins the (small) grouping outputs on shared
  /// column names via broadcast hash joins, evaluates the top-level select
  /// items, and writes the result table.
  StatusOr<TableRef> FinalJoinProject(
      const std::string& name_hint, const std::vector<TableRef>& inputs,
      const std::vector<sparql::SelectItem>& items);

  /// Reads a result table into a BindingTable.
  StatusOr<analytics::BindingTable> ReadTable(const TableRef& table);

  /// Deletes every temp file created so far (best effort).
  void Cleanup();

  mr::Cluster* cluster() { return cluster_; }
  Dataset* dataset() { return dataset_; }
  const EngineOptions& options() const { return options_; }

  /// Reserves a fresh temp file name (cleaned up by Cleanup()).
  std::string NextTmp(const std::string& hint);

  /// Exact stored bytes `table`'s flat equivalent would occupy (flat
  /// tables: the file's stored bytes; factorized tables: arithmetic over
  /// the group records — no enumeration). Driver-side scan, no MR jobs.
  StatusOr<uint64_t> FlatStoredBytes(const TableRef& table) const;

 private:
  /// Join in fact mode: at least one factorized input, or a factorized
  /// output requested. Receives the layout and strategy Join computed.
  StatusOr<TableRef> FactJoin(const std::string& name_hint,
                              const std::vector<JoinInput>& inputs,
                              RowPredicate post_predicate,
                              bool factorize_output, bool map_join, int big,
                              const std::vector<std::string>& out_columns,
                              const std::vector<std::vector<int>>& out_pos,
                              const std::vector<int>& join_idx);

  mr::Cluster* cluster_;
  Dataset* dataset_;
  EngineOptions options_;
  std::string tmp_prefix_;
  int counter_ = 0;
  std::vector<std::string> temp_files_;
};

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_RELATIONAL_OPS_H_
