#include "engines/rapid_analytics.h"

#include "plan/executor.h"
#include "plan/planner.h"
#include "util/logging.h"

namespace rapida::engine {

StatusOr<analytics::BindingTable> RapidAnalyticsEngine::Execute(
    const analytics::AnalyticalQuery& query, Dataset* dataset,
    mr::Cluster* cluster, ExecStats* stats) {
  // The composite rewriting lives in plan::PlanRapidAnalytics (shared with
  // the serving layer's batch path via plan::PlanCompositeBatch); a
  // non-overlapping query comes back as the RAPID+ fallback shape.
  RAPIDA_ASSIGN_OR_RETURN(plan::PhysicalPlan physical,
                          plan::PlanRapidAnalytics(query, dataset, options_));
  if (!physical.fallback_reason.empty()) {
    RAPIDA_LOG(Info) << "RAPIDAnalytics fallback (no overlap): "
                     << physical.fallback_reason;
    return ExecuteFallback(&fallback_, name(), query, dataset, cluster,
                           stats);
  }
  return plan::RunPlanAsEngine(physical, dataset, cluster, options_, stats);
}

}  // namespace rapida::engine
