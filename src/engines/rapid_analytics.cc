#include "engines/rapid_analytics.h"

#include <chrono>
#include <utility>
#include <vector>

#include "engines/shared_scan.h"
#include "util/logging.h"

namespace rapida::engine {

StatusOr<analytics::BindingTable> RapidAnalyticsEngine::Execute(
    const analytics::AnalyticalQuery& query, Dataset* dataset,
    mr::Cluster* cluster, ExecStats* stats) {
  // The composite rewriting and its evaluation live in shared_scan.cc so
  // the serving layer can run the same pipeline over a whole batch of
  // queries; a single query is the batch of one.
  std::vector<const analytics::AnalyticalQuery*> batch{&query};
  RAPIDA_ASSIGN_OR_RETURN(SharedScanPlan plan, PlanSharedScan(batch));
  if (!plan.sharable) {
    RAPIDA_LOG(Info) << "RAPIDAnalytics fallback (no overlap): " << plan.why;
    auto result = fallback_.Execute(query, dataset, cluster, stats);
    if (result.ok() && stats != nullptr) stats->engine = name();
    return result;
  }

  auto start = std::chrono::steady_clock::now();
  cluster->ResetHistory();
  std::vector<StatusOr<analytics::BindingTable>> results;
  RAPIDA_RETURN_IF_ERROR(ExecuteCompositeBatch(plan, batch, dataset, cluster,
                                               options_, &results));
  if (!results[0].ok()) return results[0].status();
  if (stats != nullptr) {
    stats->engine = name();
    stats->workflow.jobs = cluster->history();
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return std::move(results[0]);
}

}  // namespace rapida::engine
