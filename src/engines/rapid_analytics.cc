#include "engines/rapid_analytics.h"

#include <chrono>
#include <set>

#include "engines/var_translate.h"
#include "ntga/overlap.h"
#include "util/logging.h"

namespace rapida::engine {

StatusOr<analytics::BindingTable> RapidAnalyticsEngine::Execute(
    const analytics::AnalyticalQuery& query, Dataset* dataset,
    mr::Cluster* cluster, ExecStats* stats) {
  // The composite rewriting applies to a single grouping (trivially: the
  // plan is already minimal) or to two overlapping patterns.
  ntga::CompositePattern comp;
  if (query.groupings.size() == 1) {
    comp = ntga::SinglePatternComposite(query.groupings[0].pattern);
  } else if (query.groupings.size() == 2) {
    ntga::OverlapResult overlap = ntga::FindOverlap(
        query.groupings[0].pattern, query.groupings[1].pattern);
    if (!overlap.overlaps) {
      RAPIDA_LOG(Info) << "RAPIDAnalytics fallback (no overlap): "
                       << overlap.explanation;
      auto result = fallback_.Execute(query, dataset, cluster, stats);
      if (result.ok() && stats != nullptr) stats->engine = name();
      return result;
    }
    RAPIDA_ASSIGN_OR_RETURN(
        comp, ntga::BuildComposite(query.groupings[0].pattern,
                                   query.groupings[1].pattern, overlap));
  } else {
    // N >= 3 related groupings (ROLLUP-style, the paper's §6 extension):
    // generalize the composite to the whole pattern family so all N
    // aggregations still run in one parallel Agg-Join cycle.
    std::vector<const ntga::StarGraph*> family;
    family.reserve(query.groupings.size());
    for (const auto& g : query.groupings) family.push_back(&g.pattern);
    ntga::FamilyOverlapResult overlap = ntga::FindOverlapFamily(family);
    if (!overlap.overlaps) {
      RAPIDA_LOG(Info) << "RAPIDAnalytics fallback (family does not "
                          "overlap): " << overlap.explanation;
      auto result = fallback_.Execute(query, dataset, cluster, stats);
      if (result.ok() && stats != nullptr) stats->engine = name();
      return result;
    }
    RAPIDA_ASSIGN_OR_RETURN(comp,
                            ntga::BuildCompositeFamily(family, overlap));
  }

  auto start = std::chrono::steady_clock::now();
  RAPIDA_RETURN_IF_ERROR(dataset->EnsureTripleGroups());
  cluster->ResetHistory();
  NtgaExec exec(cluster, dataset, options_, "tmp:ra");
  const rdf::Dictionary& dict = dataset->graph().dict();

  ntga::ResolvedPattern resolved = ntga::ResolvePattern(comp, dict);

  // Per-pattern α conditions (presence of the pattern's secondary props);
  // their disjunction prunes composite matches in the last α-join cycle.
  std::vector<ntga::AlphaCondition> alphas;
  for (size_t p = 0; p < resolved.pattern_secondary.size(); ++p) {
    ntga::AlphaCondition cond;
    for (const auto& [star, keys] : resolved.pattern_secondary[p]) {
      for (const ntga::DataPropKey& k : keys) {
        cond.push_back(ntga::AlphaConstraint{star, k, true});
      }
    }
    alphas.push_back(std::move(cond));
  }

  // Filters: a single-variable filter may be pushed into the shared
  // composite scan only when the identical translated filter appears in
  // EVERY grouping — then dropping the triple at match time is what each
  // pattern would have done anyway, and it is evaluated once. A filter
  // only some groupings carry (and any multi-variable filter) must stay a
  // per-grouping mapping predicate: pushing it into the shared scan would
  // wrongly starve the groupings that do not have it.
  struct TranslatedFilter {
    std::string var;  // set iff single-variable
    std::string sig;  // var + "|" + ToString(), for cross-grouping matching
    const sparql::Expr* raw = nullptr;
  };
  std::vector<sparql::ExprPtr> owned_filters;
  std::vector<std::vector<TranslatedFilter>> grouping_filters(
      query.groupings.size());
  std::vector<std::set<std::string>> grouping_sigs(query.groupings.size());
  for (size_t g = 0; g < query.groupings.size(); ++g) {
    for (const auto& f : query.groupings[g].filters) {
      sparql::ExprPtr translated = MapExprVars(*f, comp.var_map[g]);
      std::vector<std::string> vars;
      translated->CollectVars(&vars);
      TranslatedFilter tf;
      tf.raw = translated.get();
      if (vars.size() == 1) {
        tf.var = vars[0];
        tf.sig = tf.var + "|" + translated->ToString();
        grouping_sigs[g].insert(tf.sig);
      }
      owned_filters.push_back(std::move(translated));
      grouping_filters[g].push_back(std::move(tf));
    }
  }

  PushedFilters pushed;
  std::vector<NtgaGrouping> work(query.groupings.size());
  std::set<std::string> pushed_signatures;
  for (size_t g = 0; g < query.groupings.size(); ++g) {
    const analytics::GroupingSubquery& grouping = query.groupings[g];
    const auto& var_map = comp.var_map[g];

    std::vector<std::string> pattern_vars;
    for (const auto& [orig, composite_var] : var_map) {
      if (std::find(pattern_vars.begin(), pattern_vars.end(),
                    composite_var) == pattern_vars.end()) {
        pattern_vars.push_back(composite_var);
      }
    }

    std::vector<const sparql::Expr*> residual;
    for (const TranslatedFilter& tf : grouping_filters[g]) {
      bool shared_by_all = !tf.var.empty();
      for (size_t o = 0; shared_by_all && o < grouping_sigs.size(); ++o) {
        if (grouping_sigs[o].count(tf.sig) == 0) shared_by_all = false;
      }
      if (shared_by_all) {
        if (pushed_signatures.insert(tf.sig).second) {
          pushed[tf.var].push_back(tf.raw);
        }
      } else {
        residual.push_back(tf.raw);
      }
    }
    RowPredicate mapping_pred =
        residual.empty() ? nullptr
                         : CompilePredicate(residual, pattern_vars, &dict);

    NtgaGrouping& w = work[g];
    w.spec.group_vars = MapVars(grouping.group_by, var_map);
    for (const ntga::AggSpec& a : grouping.aggs) {
      ntga::AggSpec translated = a;
      translated.var = MapVar(a.var, var_map);
      w.spec.aggs.push_back(std::move(translated));
    }
    w.spec.alpha = alphas.size() > g ? alphas[g] : ntga::AlphaCondition{};
    w.pattern_vars = pattern_vars;
    w.output_columns = grouping.group_by;  // original names
    for (const ntga::AggSpec& a : grouping.aggs) {
      w.output_columns.push_back(a.output_name);
    }
    w.mapping_predicate = mapping_pred;
    w.having = grouping.having.get();
  }

  auto matches = exec.ComputePatternMatches(resolved, alphas, pushed, "gp");
  if (!matches.ok()) {
    exec.Cleanup();
    return matches.status();
  }

  std::vector<std::string> agg_files;
  auto tables =
      exec.RunAggJoins(resolved, *matches, pushed, work,
                       options_.parallel_agg_join, "agg", &agg_files);
  if (!tables.ok()) {
    exec.Cleanup();
    return tables.status();
  }

  StatusOr<analytics::BindingTable> result = Status::Internal("unset");
  if (query.groupings.size() == 1) {
    rdf::Dictionary* mdict = &dataset->dict();
    ProjectedResult projected =
        JoinAndProject(std::move(*tables), query.top_items, mdict);
    analytics::BindingTable table(projected.columns);
    for (const mr::Record& r : projected.rows) {
      std::vector<rdf::TermId> row = DecodeRow(r.value);
      row.resize(projected.columns.size(), rdf::kInvalidTermId);
      table.AddRow(std::move(row));
    }
    result = std::move(table);
  } else {
    result = exec.FinalJoinProject(std::move(*tables), query.top_items,
                                   agg_files, "final");
  }
  exec.Cleanup();
  if (result.ok()) {
    analytics::ApplySolutionModifiers(query, dataset->dict(), &*result);
  }
  if (result.ok() && stats != nullptr) {
    stats->engine = name();
    stats->workflow.jobs = cluster->history();
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return result;
}

}  // namespace rapida::engine
