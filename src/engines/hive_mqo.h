#ifndef RAPIDA_ENGINES_HIVE_MQO_H_
#define RAPIDA_ENGINES_HIVE_MQO_H_

#include <set>
#include <string>
#include <vector>

#include "engines/engine.h"
#include "engines/hive_naive.h"
#include "ntga/overlap.h"

namespace rapida::engine {

/// Converts a CompositePattern into a StarGraph the relational compiler
/// understands (composite stars are ordinary star patterns whose secondary
/// triples will be outer-joined). Secondary triples with a CONSTANT object
/// are rewritten to fresh marker variables; the equality is returned in
/// `sec_const_filters` (one slot per pattern) as an extraction filter for
/// each owning pattern. Shared with the MQO planner (src/plan/), which must
/// see the exact graph the engine compiles.
ntga::StarGraph CompositeToStarGraph(
    const ntga::CompositePattern& comp,
    std::vector<std::vector<sparql::ExprPtr>>* sec_const_filters);

/// Object variables of `pattern_index`'s secondary triples, read off the
/// rewritten composite graph so constant-object markers are included.
std::set<std::string> SecondaryVars(const ntga::CompositePattern& comp,
                                    const ntga::StarGraph& graph,
                                    size_t pattern_index);

/// The paper's "Hive (MQO)" baseline — the multi-query-optimization
/// rewriting of Le et al. (ICDE'12) applied before a relational plan:
///
///  1. the two overlapping graph patterns are rewritten into one composite
///     query whose non-shared (secondary) properties are LEFT OUTER
///     joined (the relational rendering of OPTIONAL), evaluated with the
///     same star/join cycles as naive Hive, and **materialized** as an
///     intermediate table (Hive has no materialized views, §2.2);
///  2. per original pattern, one DISTINCT-extraction cycle selects the
///     rows whose pattern-specific columns are non-NULL and projects the
///     pattern's variables;
///  3. one GROUP BY cycle per pattern, then the final map-only join.
///
/// Because of the materialization boundary, early projection and partial
/// aggregation cannot cross step 1→2 — the weakness the paper observes.
/// Queries whose patterns do not overlap (or that have a single grouping)
/// fall back to the naive plan.
class HiveMqoEngine : public Engine {
 public:
  explicit HiveMqoEngine(const EngineOptions& options = EngineOptions())
      : options_(options), fallback_(options) {}

  std::string name() const override { return "Hive (MQO)"; }

  StatusOr<analytics::BindingTable> Execute(
      const analytics::AnalyticalQuery& query, Dataset* dataset,
      mr::Cluster* cluster, ExecStats* stats) override;

 private:
  EngineOptions options_;
  HiveNaiveEngine fallback_;
};

}  // namespace rapida::engine

#endif  // RAPIDA_ENGINES_HIVE_MQO_H_
