#include "engines/var_translate.h"

namespace rapida::engine {

std::string MapVar(const std::string& var,
                   const std::map<std::string, std::string>& var_map) {
  auto it = var_map.find(var);
  return it == var_map.end() ? var : it->second;
}

std::vector<std::string> MapVars(
    const std::vector<std::string>& vars,
    const std::map<std::string, std::string>& var_map) {
  std::vector<std::string> out;
  out.reserve(vars.size());
  for (const std::string& v : vars) out.push_back(MapVar(v, var_map));
  return out;
}

sparql::ExprPtr MapExprVars(
    const sparql::Expr& expr,
    const std::map<std::string, std::string>& var_map) {
  sparql::ExprPtr out = expr.Clone();
  // Walk the cloned tree in place.
  std::vector<sparql::Expr*> stack = {out.get()};
  while (!stack.empty()) {
    sparql::Expr* e = stack.back();
    stack.pop_back();
    if (e->kind == sparql::Expr::Kind::kVar) {
      e->var = MapVar(e->var, var_map);
    }
    for (const sparql::ExprPtr& c : e->children) stack.push_back(c.get());
  }
  return out;
}

}  // namespace rapida::engine
