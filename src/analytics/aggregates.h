#ifndef RAPIDA_ANALYTICS_AGGREGATES_H_
#define RAPIDA_ANALYTICS_AGGREGATES_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "util/statusor.h"

namespace rapida::analytics {

/// Incremental state for one aggregate function over one group.
///
/// The state is *algebraic* for COUNT/SUM/AVG/MIN/MAX without DISTINCT:
/// partial states can be merged, which is what the MapReduce engines'
/// map-side pre-aggregation (paper Alg. 3, `multiAggMap`) relies on.
/// DISTINCT aggregates keep the seen-set and are only supported by the
/// reference evaluator.
class Aggregator {
 public:
  /// `separator` is only meaningful for GROUP_CONCAT.
  Aggregator(sparql::AggFunc func, bool distinct,
             std::string separator = " ")
      : func_(func), distinct_(distinct),
        separator_(std::move(separator)) {}

  /// Adds one bound term (skips kInvalidTermId, matching SPARQL semantics
  /// where unbound values do not contribute).
  void AddTerm(rdf::TermId value, const rdf::Dictionary& dict);

  /// Adds one COUNT(*) row.
  void AddRow();

  /// Adds `w` COUNT(*) rows at once (the factorized engines' weighted
  /// aggregation: w = product of the other factors' row counts).
  void AddRowWeighted(uint64_t w) { count_ += w; }

  /// Exactly equivalent to `w` AddTerm calls for every order- and
  /// partition-insensitive aggregate (COUNT, MIN/MAX, SAMPLE,
  /// GROUP_CONCAT). SUM/AVG accumulate value*w, whose floating-point
  /// rounding can differ from w sequential adds — the planners keep
  /// SUM/AVG pipelines flat, so they never take this path.
  void AddTermWeighted(rdf::TermId value, const rdf::Dictionary& dict,
                       uint64_t w);

  /// Merges another partial state (same func; no DISTINCT).
  void Merge(const Aggregator& other, const rdf::Dictionary& dict);

  /// Final value as a canonical interned term (numbers via InternNumber,
  /// MIN/MAX as the winning term id). Empty-group results follow SPARQL:
  /// COUNT -> 0, SUM -> 0, AVG -> 0, MIN/MAX -> unbound.
  rdf::TermId Finalize(rdf::Dictionary* dict) const;

  /// Serialized partial state for shuffle
  /// ("count,sum,has,min,max,sample,concat-ids").
  std::string SerializePartial() const;
  static StatusOr<Aggregator> DeserializePartial(sparql::AggFunc func,
                                                 std::string_view data,
                                                 std::string separator = " ");

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  sparql::AggFunc func_;
  bool distinct_;
  uint64_t count_ = 0;
  double sum_ = 0;
  bool has_minmax_ = false;
  rdf::TermId min_term_ = rdf::kInvalidTermId;
  rdf::TermId max_term_ = rdf::kInvalidTermId;
  /// SAMPLE witness: the smallest term id seen (deterministic across
  /// engines and partitionings).
  rdf::TermId sample_ = rdf::kInvalidTermId;
  /// GROUP_CONCAT values (term ids; sorted lexically at Finalize).
  std::vector<rdf::TermId> concat_values_;
  std::string separator_;
  std::set<rdf::TermId> seen_;  // DISTINCT only
};

}  // namespace rapida::analytics

#endif  // RAPIDA_ANALYTICS_AGGREGATES_H_
