#ifndef RAPIDA_ANALYTICS_VALUE_H_
#define RAPIDA_ANALYTICS_VALUE_H_

#include <string>

#include "rdf/dictionary.h"

namespace rapida::analytics {

/// Interns a computed numeric value (aggregate result, arithmetic result)
/// as a canonical literal so that every engine produces bit-identical
/// result cells: integral values become xsd:integer literals, others
/// xsd:double with a fixed "%.10g" rendering.
rdf::TermId InternNumber(rdf::Dictionary* dict, double value);

/// Three-way comparison of two terms with SPARQL-ish semantics: if both are
/// numeric literals compare numerically, otherwise compare (kind, text).
/// Returns <0, 0, >0.
int CompareTerms(const rdf::Dictionary& dict, rdf::TermId a, rdf::TermId b);

/// Display form of a term for result printing: IRIs shortened to their
/// local name, literals as their lexical value.
std::string DisplayTerm(const rdf::Dictionary& dict, rdf::TermId id);

}  // namespace rapida::analytics

#endif  // RAPIDA_ANALYTICS_VALUE_H_
