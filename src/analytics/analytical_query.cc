#include "analytics/analytical_query.h"

#include <algorithm>

namespace rapida::analytics {

using sparql::Expr;
using sparql::SelectItem;
using sparql::SelectQuery;

namespace {

/// Converts one single-grouping SELECT (the whole query or one subquery)
/// into a GroupingSubquery. `nested` marks true subqueries, where ORDER
/// BY / LIMIT are rejected (the engines cannot honor per-subquery
/// solution orderings inside a join).
StatusOr<GroupingSubquery> AnalyzeGrouping(const SelectQuery& q,
                                           bool nested) {
  if (nested && (!q.order_by.empty() || q.limit >= 0 || q.offset > 0)) {
    return Status::Unimplemented(
        "ORDER BY / LIMIT / OFFSET inside grouping subqueries is not "
        "supported by the MapReduce engines");
  }
  if (!q.where.subqueries.empty()) {
    return Status::InvalidArgument(
        "grouping subqueries must not nest further subqueries");
  }
  if (!q.where.optionals.empty()) {
    return Status::InvalidArgument(
        "OPTIONAL is outside the analytical subset (use the reference "
        "evaluator)");
  }
  if (q.select_all) {
    return Status::InvalidArgument(
        "SELECT * is not a grouping subquery shape");
  }

  GroupingSubquery out;
  RAPIDA_ASSIGN_OR_RETURN(out.pattern,
                          ntga::DecomposeToStars(q.where.triples));
  // Disconnected patterns would need a cross product no engine implements;
  // rejecting here keeps all engines (and the reference) consistent instead
  // of some erroring at runtime while others shortcut to empty results.
  if (out.pattern.stars.size() > 1) {
    std::vector<bool> reach(out.pattern.stars.size(), false);
    reach[0] = true;
    for (bool grew = true; grew;) {
      grew = false;
      for (const ntga::JoinEdge& e : out.pattern.joins) {
        if (reach[e.star_a] != reach[e.star_b]) {
          reach[e.star_a] = reach[e.star_b] = true;
          grew = true;
        }
      }
    }
    for (bool r : reach) {
      if (!r) {
        return Status::InvalidArgument(
            "graph pattern is not connected by join variables");
      }
    }
  }
  std::vector<std::string> bound;
  q.where.CollectBoundVars(&bound);
  auto is_bound = [&bound](const std::string& v) {
    return std::find(bound.begin(), bound.end(), v) != bound.end();
  };
  for (const auto& f : q.where.filters) {
    std::vector<std::string> vars;
    f->CollectVars(&vars);
    for (const std::string& v : vars) {
      if (!is_bound(v)) {
        return Status::InvalidArgument(
            "FILTER variable ?" + v + " is not bound by the graph pattern");
      }
    }
    out.filters.push_back(f->Clone());
  }
  out.group_by = q.group_by;
  if (q.having != nullptr) {
    if (q.having->HasAggregate()) {
      return Status::Unimplemented(
          "HAVING must reference aggregate aliases, not aggregate "
          "expressions (write HAVING(?cnt > 3) with (COUNT(?x) AS ?cnt))");
    }
    out.having = q.having->Clone();
  }

  for (const SelectItem& item : q.items) {
    out.columns.push_back(item.name);
    if (item.expr == nullptr) {
      if (std::find(q.group_by.begin(), q.group_by.end(), item.name) ==
          q.group_by.end()) {
        return Status::InvalidArgument("projected variable ?" + item.name +
                                       " is not in GROUP BY");
      }
      continue;
    }
    if (item.expr->kind != Expr::Kind::kAggregate) {
      return Status::InvalidArgument(
          "grouping subquery select expressions must be simple aggregates, "
          "got: " + item.expr->ToString());
    }
    ntga::AggSpec agg;
    agg.func = item.expr->agg_func;
    agg.output_name = item.name;
    if (!item.expr->regex_pattern.empty()) {
      agg.separator = item.expr->regex_pattern;
    }
    if (item.expr->agg_distinct) {
      return Status::Unimplemented(
          "DISTINCT aggregates are not supported by the MapReduce engines "
          "(non-algebraic); use the reference evaluator");
    }
    if (item.expr->count_star) {
      agg.count_star = true;
    } else {
      const Expr& arg = *item.expr->children[0];
      if (arg.kind != Expr::Kind::kVar) {
        return Status::InvalidArgument(
            "aggregate arguments must be variables, got: " + arg.ToString());
      }
      if (!is_bound(arg.var)) {
        return Status::InvalidArgument(
            "aggregate argument ?" + arg.var +
            " is not bound by the graph pattern");
      }
      agg.var = arg.var;
    }
    out.aggs.push_back(std::move(agg));
  }
  if (out.aggs.empty()) {
    return Status::InvalidArgument(
        "a grouping subquery needs at least one aggregate");
  }
  // Grouping variables must be bound by the pattern.
  for (const std::string& v : q.group_by) {
    bool bound = false;
    for (const ntga::StarPattern& s : out.pattern.stars) {
      if (s.subject_var == v) bound = true;
      for (const ntga::StarTriple& t : s.triples) {
        if (t.ObjectVar() == v) bound = true;
      }
    }
    if (!bound) {
      return Status::InvalidArgument("GROUP BY variable ?" + v +
                                     " is not bound by the graph pattern");
    }
  }
  return out;
}

}  // namespace

void ApplySolutionModifiers(const AnalyticalQuery& query,
                            const rdf::Dictionary& dict,
                            BindingTable* table) {
  if (query.top_distinct) table->Distinct();
  ApplyOrderLimit(table, query.order_by, query.limit, query.offset, dict);
}

std::vector<std::string> AnalyticalQuery::TopColumnNames() const {
  std::vector<std::string> out;
  out.reserve(top_items.size());
  for (const SelectItem& item : top_items) out.push_back(item.name);
  return out;
}

StatusOr<AnalyticalQuery> AnalyzeQuery(const SelectQuery& query) {
  AnalyticalQuery out;
  out.top_distinct = query.distinct;

  out.order_by = query.order_by;
  out.limit = query.limit;
  out.offset = query.offset;

  if (query.where.subqueries.empty()) {
    // Single-grouping query: the query itself is the one grouping and the
    // top level is the identity projection of its columns.
    RAPIDA_ASSIGN_OR_RETURN(GroupingSubquery g,
                            AnalyzeGrouping(query, /*nested=*/false));
    for (const std::string& col : g.columns) {
      out.top_items.emplace_back(col, nullptr);
    }
    out.groupings.push_back(std::move(g));
    return out;
  }

  // Multi-grouping query.
  if (!query.where.triples.empty() || !query.where.optionals.empty()) {
    return Status::InvalidArgument(
        "multi-grouping analytical queries must contain only sub-SELECTs at "
        "the top level");
  }
  if (query.having != nullptr) {
    return Status::Unimplemented(
        "top-level HAVING over joined groupings is not supported; attach "
        "HAVING to the grouping subqueries");
  }
  for (const auto& sub : query.where.subqueries) {
    RAPIDA_ASSIGN_OR_RETURN(GroupingSubquery g,
                            AnalyzeGrouping(*sub, /*nested=*/true));
    out.groupings.push_back(std::move(g));
  }
  if (query.select_all) {
    return Status::InvalidArgument(
        "SELECT * at the top level of an analytical query is not supported");
  }
  // Validate top items reference grouping columns only.
  auto column_exists = [&out](const std::string& name) {
    for (const GroupingSubquery& g : out.groupings) {
      if (std::find(g.columns.begin(), g.columns.end(), name) !=
          g.columns.end()) {
        return true;
      }
    }
    return false;
  };
  for (const SelectItem& item : query.items) {
    if (item.expr == nullptr) {
      if (!column_exists(item.name)) {
        return Status::InvalidArgument("top-level variable ?" + item.name +
                                       " is not produced by any grouping");
      }
    } else {
      if (item.expr->HasAggregate()) {
        return Status::InvalidArgument(
            "top-level expressions must not aggregate (aggregates belong in "
            "the grouping subqueries)");
      }
      std::vector<std::string> vars;
      item.expr->CollectVars(&vars);
      for (const std::string& v : vars) {
        if (!column_exists(v)) {
          return Status::InvalidArgument(
              "top-level expression references unknown column ?" + v);
        }
      }
    }
    out.top_items.emplace_back(item.name,
                               item.expr ? item.expr->Clone() : nullptr);
  }
  return out;
}

}  // namespace rapida::analytics
