#include "analytics/analytical_query.h"

#include <algorithm>

namespace rapida::analytics {

using sparql::Expr;
using sparql::SelectItem;
using sparql::SelectQuery;

namespace {

bool Contains(const std::vector<std::string>& vec, const std::string& v) {
  return std::find(vec.begin(), vec.end(), v) != vec.end();
}

void AddVar(std::vector<std::string>* out, const std::string& v) {
  if (!Contains(*out, v)) out->push_back(v);
}

/// Validates one OPTIONAL block and converts it to an OptionalTail.
/// `required` holds the branch's required-pattern variables (the join
/// variable must come from there — no optional-on-optional chains);
/// `bound` additionally holds earlier tails' object variables and
/// accumulates this tail's (fresh-variable requirement).
StatusOr<OptionalTail> AnalyzeOptional(const sparql::GroupGraphPattern& opt,
                                       const std::vector<std::string>& required,
                                       std::vector<std::string>* bound) {
  if (!opt.optionals.empty()) {
    return Status::InvalidArgument(
        "OPTIONAL nested inside OPTIONAL is outside the analytical subset "
        "(use the reference evaluator)");
  }
  if (!opt.unions.empty()) {
    return Status::InvalidArgument(
        "UNION nested inside OPTIONAL is outside the analytical subset "
        "(use the reference evaluator)");
  }
  if (!opt.subqueries.empty()) {
    return Status::InvalidArgument(
        "subqueries inside OPTIONAL are outside the analytical subset "
        "(use the reference evaluator)");
  }
  if (opt.triples.empty()) {
    return Status::InvalidArgument(
        "an OPTIONAL block needs at least one triple pattern");
  }
  RAPIDA_ASSIGN_OR_RETURN(ntga::StarGraph sg,
                          ntga::DecomposeToStars(opt.triples));
  if (sg.stars.size() != 1) {
    return Status::InvalidArgument(
        "an OPTIONAL block must be a single subject-rooted star (the left "
        "star-join form); got " + std::to_string(sg.stars.size()) +
        " stars");
  }
  OptionalTail tail;
  tail.star = std::move(sg.stars[0]);
  tail.join_var = tail.star.subject_var;
  if (!Contains(required, tail.join_var)) {
    return Status::InvalidArgument(
        "OPTIONAL subject ?" + tail.join_var +
        " must be bound by the required graph pattern (it is the left "
        "star-join variable)");
  }
  std::vector<std::string> local{tail.join_var};
  for (const ntga::StarTriple& t : tail.star.triples) {
    std::string ov = t.ObjectVar();
    if (ov.empty()) continue;
    if (Contains(*bound, ov)) {
      return Status::InvalidArgument(
          "OPTIONAL variable ?" + ov + " is already bound outside its "
          "OPTIONAL block (optional object variables must be fresh)");
    }
    AddVar(&local, ov);
    AddVar(bound, ov);
  }
  for (const auto& f : opt.filters) {
    std::vector<std::string> vars;
    f->CollectVars(&vars);
    for (const std::string& v : vars) {
      if (!Contains(local, v)) {
        return Status::InvalidArgument(
            "OPTIONAL FILTER variable ?" + v +
            " is not bound inside the OPTIONAL block");
      }
    }
    tail.filters.push_back(f->Clone());
  }
  return tail;
}

/// Analyzes one pattern branch (the whole grouping pattern, or the
/// required pattern merged with one UNION arm): star decomposition,
/// connectivity, OPTIONAL tails, and the pushable/post filter split.
/// `all_vars_out` receives every variable the branch can bind (required
/// plus optional).
StatusOr<PatternBranch> AnalyzeBranch(
    const std::vector<sparql::TriplePattern>& triples,
    const std::vector<const Expr*>& filters,
    const std::vector<const sparql::GroupGraphPattern*>& optionals,
    bool in_union, std::vector<std::string>* all_vars_out) {
  PatternBranch out;
  if (in_union && triples.empty()) {
    return Status::InvalidArgument(
        "a UNION arm (together with the required pattern) needs at least "
        "one triple pattern");
  }
  RAPIDA_ASSIGN_OR_RETURN(out.pattern, ntga::DecomposeToStars(triples));
  // Disconnected patterns would need a cross product no engine implements;
  // rejecting here keeps all engines (and the reference) consistent instead
  // of some erroring at runtime while others shortcut to empty results.
  if (out.pattern.stars.size() > 1) {
    std::vector<bool> reach(out.pattern.stars.size(), false);
    reach[0] = true;
    for (bool grew = true; grew;) {
      grew = false;
      for (const ntga::JoinEdge& e : out.pattern.joins) {
        if (reach[e.star_a] != reach[e.star_b]) {
          reach[e.star_a] = reach[e.star_b] = true;
          grew = true;
        }
      }
    }
    for (bool r : reach) {
      if (!r) {
        return Status::InvalidArgument(
            "graph pattern is not connected by join variables");
      }
    }
  }
  std::vector<std::string> required;
  for (const sparql::TriplePattern& tp : triples) {
    if (tp.s.is_var) AddVar(&required, tp.s.var);
    if (tp.p.is_var) AddVar(&required, tp.p.var);
    if (tp.o.is_var) AddVar(&required, tp.o.var);
  }
  std::vector<std::string> bound = required;
  for (const sparql::GroupGraphPattern* opt : optionals) {
    RAPIDA_ASSIGN_OR_RETURN(OptionalTail tail,
                            AnalyzeOptional(*opt, required, &bound));
    out.optionals.push_back(std::move(tail));
  }
  for (const Expr* f : filters) {
    std::vector<std::string> vars;
    f->CollectVars(&vars);
    bool uses_optional = false;
    for (const std::string& v : vars) {
      if (Contains(required, v)) continue;
      if (Contains(bound, v)) {
        uses_optional = true;
        continue;
      }
      return Status::InvalidArgument(
          "FILTER variable ?" + v + " is not bound by the graph pattern");
    }
    (uses_optional ? out.post_filters : out.filters).push_back(f->Clone());
  }
  *all_vars_out = std::move(bound);
  return out;
}

/// Converts one single-grouping SELECT (the whole query or one subquery)
/// into a GroupingSubquery. `nested` marks true subqueries, where ORDER
/// BY / LIMIT are rejected (the engines cannot honor per-subquery
/// solution orderings inside a join).
StatusOr<GroupingSubquery> AnalyzeGrouping(const SelectQuery& q,
                                           bool nested) {
  if (nested && (!q.order_by.empty() || q.limit >= 0 || q.offset > 0)) {
    return Status::Unimplemented(
        "ORDER BY / LIMIT / OFFSET inside grouping subqueries is not "
        "supported by the MapReduce engines");
  }
  if (!q.where.subqueries.empty()) {
    return Status::InvalidArgument(
        "grouping subqueries must not nest further subqueries");
  }
  if (q.select_all) {
    return Status::InvalidArgument(
        "SELECT * is not a grouping subquery shape");
  }

  GroupingSubquery out;
  std::vector<const Expr*> filter_ptrs;
  filter_ptrs.reserve(q.where.filters.size());
  for (const auto& f : q.where.filters) filter_ptrs.push_back(f.get());
  std::vector<const sparql::GroupGraphPattern*> opt_ptrs;
  opt_ptrs.reserve(q.where.optionals.size());
  for (const auto& o : q.where.optionals) opt_ptrs.push_back(&o);

  // Per-branch variable scopes, for GROUP BY / aggregate bound checks
  // below (a variable is usable only if every branch can bind it).
  std::vector<std::vector<std::string>> branch_vars;
  if (q.where.unions.empty()) {
    std::vector<std::string> vars;
    RAPIDA_ASSIGN_OR_RETURN(
        PatternBranch b, AnalyzeBranch(q.where.triples, filter_ptrs,
                                       opt_ptrs, /*in_union=*/false, &vars));
    branch_vars.push_back(std::move(vars));
    out.pattern = std::move(b.pattern);
    out.filters = std::move(b.filters);
    out.optionals = std::move(b.optionals);
    out.post_filters = std::move(b.post_filters);
  } else {
    if (q.where.unions.size() < 2) {
      return Status::InvalidArgument("a UNION needs at least two arms");
    }
    for (const sparql::GroupGraphPattern& arm : q.where.unions) {
      if (!arm.unions.empty()) {
        return Status::InvalidArgument(
            "UNION nested inside a UNION arm is outside the analytical "
            "subset (one UNION level per grouping; use the reference "
            "evaluator)");
      }
      if (!arm.subqueries.empty()) {
        return Status::InvalidArgument(
            "subqueries inside UNION arms are outside the analytical "
            "subset (use the reference evaluator)");
      }
      // Join distribution over union: each branch is the required pattern
      // plus the arm's triples, with the grouping's filters and OPTIONALs
      // replicated (left-join distributes over its left input).
      std::vector<sparql::TriplePattern> triples = q.where.triples;
      triples.insert(triples.end(), arm.triples.begin(), arm.triples.end());
      std::vector<const Expr*> fps = filter_ptrs;
      for (const auto& f : arm.filters) fps.push_back(f.get());
      std::vector<const sparql::GroupGraphPattern*> ops = opt_ptrs;
      for (const auto& o : arm.optionals) ops.push_back(&o);
      std::vector<std::string> vars;
      RAPIDA_ASSIGN_OR_RETURN(
          PatternBranch b,
          AnalyzeBranch(triples, fps, ops, /*in_union=*/true, &vars));
      branch_vars.push_back(std::move(vars));
      out.union_branches.push_back(std::move(b));
    }
  }
  bool has_union = !out.union_branches.empty();
  auto is_bound = [&branch_vars](const std::string& v) {
    for (const auto& bv : branch_vars) {
      if (!Contains(bv, v)) return false;
    }
    return true;
  };
  auto bound_somewhere = [&branch_vars](const std::string& v) {
    for (const auto& bv : branch_vars) {
      if (Contains(bv, v)) return true;
    }
    return false;
  };
  out.group_by = q.group_by;
  if (q.having != nullptr) {
    if (q.having->HasAggregate()) {
      return Status::Unimplemented(
          "HAVING must reference aggregate aliases, not aggregate "
          "expressions (write HAVING(?cnt > 3) with (COUNT(?x) AS ?cnt))");
    }
    out.having = q.having->Clone();
  }

  // Aggregate-free DISTINCT projections are groupings in disguise:
  // SELECT DISTINCT ?a ?b { P } is exactly GROUP BY ?a ?b with an empty
  // aggregation list, so it desugars here and runs on the same group-by
  // machinery every engine already has.
  bool has_agg_items = false;
  for (const SelectItem& item : q.items) {
    if (item.expr != nullptr) has_agg_items = true;
  }
  if (!has_agg_items && out.group_by.empty() && q.distinct) {
    for (const SelectItem& item : q.items) {
      out.group_by.push_back(item.name);
    }
  }

  for (const SelectItem& item : q.items) {
    out.columns.push_back(item.name);
    if (item.expr == nullptr) {
      if (std::find(out.group_by.begin(), out.group_by.end(), item.name) ==
          out.group_by.end()) {
        return Status::InvalidArgument("projected variable ?" + item.name +
                                       " is not in GROUP BY");
      }
      continue;
    }
    if (item.expr->kind != Expr::Kind::kAggregate) {
      return Status::InvalidArgument(
          "grouping subquery select expressions must be simple aggregates, "
          "got: " + item.expr->ToString());
    }
    ntga::AggSpec agg;
    agg.func = item.expr->agg_func;
    agg.output_name = item.name;
    if (!item.expr->regex_pattern.empty()) {
      agg.separator = item.expr->regex_pattern;
    }
    if (item.expr->agg_distinct) {
      return Status::Unimplemented(
          "DISTINCT aggregates are not supported by the MapReduce engines "
          "(non-algebraic); use the reference evaluator");
    }
    if (item.expr->count_star) {
      agg.count_star = true;
    } else {
      const Expr& arg = *item.expr->children[0];
      if (arg.kind != Expr::Kind::kVar) {
        return Status::InvalidArgument(
            "aggregate arguments must be variables, got: " + arg.ToString());
      }
      if (!is_bound(arg.var)) {
        if (has_union && bound_somewhere(arg.var)) {
          return Status::InvalidArgument("aggregate argument ?" + arg.var +
                                         " is not bound in every UNION arm");
        }
        return Status::InvalidArgument(
            "aggregate argument ?" + arg.var +
            " is not bound by the graph pattern");
      }
      agg.var = arg.var;
    }
    out.aggs.push_back(std::move(agg));
  }
  if (out.aggs.empty()) {
    if (out.group_by.empty()) {
      return Status::InvalidArgument(
          "a grouping subquery needs at least one aggregate (or DISTINCT / "
          "GROUP BY over the projected variables; multiplicity-preserving "
          "projections are outside the MapReduce subset — use the "
          "reference evaluator)");
    }
    // A zero-aggregate grouping's rows ARE its group keys, so every group
    // key must be projected or the engine output schema would not match
    // the SELECT columns.
    for (const std::string& v : out.group_by) {
      if (std::find(out.columns.begin(), out.columns.end(), v) ==
          out.columns.end()) {
        return Status::InvalidArgument(
            "aggregate-free GROUP BY variable ?" + v +
            " must be projected (the grouping's rows are its keys)");
      }
    }
  }
  // Grouping variables (explicit or desugared from DISTINCT) must be bound
  // by the pattern (in every branch, so group keys never read as unbound in
  // just one UNION arm).
  for (const std::string& v : out.group_by) {
    if (!is_bound(v)) {
      if (has_union && bound_somewhere(v)) {
        return Status::InvalidArgument("GROUP BY variable ?" + v +
                                       " is not bound in every UNION arm");
      }
      return Status::InvalidArgument("GROUP BY variable ?" + v +
                                     " is not bound by the graph pattern");
    }
  }
  return out;
}

}  // namespace

void ApplySolutionModifiers(const AnalyticalQuery& query,
                            const rdf::Dictionary& dict,
                            BindingTable* table) {
  if (query.top_distinct) table->Distinct();
  ApplyOrderLimit(table, query.order_by, query.limit, query.offset, dict);
}

std::vector<std::string> AnalyticalQuery::TopColumnNames() const {
  std::vector<std::string> out;
  out.reserve(top_items.size());
  for (const SelectItem& item : top_items) out.push_back(item.name);
  return out;
}

StatusOr<AnalyticalQuery> AnalyzeQuery(const SelectQuery& query) {
  AnalyticalQuery out;
  out.top_distinct = query.distinct;

  out.order_by = query.order_by;
  out.limit = query.limit;
  out.offset = query.offset;

  if (query.where.subqueries.empty()) {
    // Single-grouping query: the query itself is the one grouping and the
    // top level is the identity projection of its columns.
    RAPIDA_ASSIGN_OR_RETURN(GroupingSubquery g,
                            AnalyzeGrouping(query, /*nested=*/false));
    for (const std::string& col : g.columns) {
      out.top_items.emplace_back(col, nullptr);
    }
    out.groupings.push_back(std::move(g));
    return out;
  }

  // Multi-grouping query.
  if (!query.where.triples.empty() || !query.where.optionals.empty() ||
      !query.where.unions.empty()) {
    return Status::InvalidArgument(
        "multi-grouping analytical queries must contain only sub-SELECTs at "
        "the top level");
  }
  if (query.having != nullptr) {
    return Status::Unimplemented(
        "top-level HAVING over joined groupings is not supported; attach "
        "HAVING to the grouping subqueries");
  }
  for (const auto& sub : query.where.subqueries) {
    RAPIDA_ASSIGN_OR_RETURN(GroupingSubquery g,
                            AnalyzeGrouping(*sub, /*nested=*/true));
    out.groupings.push_back(std::move(g));
  }
  if (query.select_all) {
    return Status::InvalidArgument(
        "SELECT * at the top level of an analytical query is not supported");
  }
  // Validate top items reference grouping columns only.
  auto column_exists = [&out](const std::string& name) {
    for (const GroupingSubquery& g : out.groupings) {
      if (std::find(g.columns.begin(), g.columns.end(), name) !=
          g.columns.end()) {
        return true;
      }
    }
    return false;
  };
  for (const SelectItem& item : query.items) {
    if (item.expr == nullptr) {
      if (!column_exists(item.name)) {
        return Status::InvalidArgument("top-level variable ?" + item.name +
                                       " is not produced by any grouping");
      }
    } else {
      if (item.expr->HasAggregate()) {
        return Status::InvalidArgument(
            "top-level expressions must not aggregate (aggregates belong in "
            "the grouping subqueries)");
      }
      std::vector<std::string> vars;
      item.expr->CollectVars(&vars);
      for (const std::string& v : vars) {
        if (!column_exists(v)) {
          return Status::InvalidArgument(
              "top-level expression references unknown column ?" + v);
        }
      }
    }
    out.top_items.emplace_back(item.name,
                               item.expr ? item.expr->Clone() : nullptr);
  }
  return out;
}

}  // namespace rapida::analytics
