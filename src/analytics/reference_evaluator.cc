#include "analytics/reference_evaluator.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "analytics/aggregates.h"
#include "analytics/value.h"
#include "sparql/expr_eval.h"
#include "util/logging.h"

namespace rapida::analytics {

using sparql::EvalValue;
using sparql::Expr;
using sparql::GroupGraphPattern;
using sparql::SelectItem;
using sparql::SelectQuery;
using sparql::TriplePattern;

namespace {

/// Counts how many positions of `tp` are resolvable (constant or already a
/// column of `table`) — used for greedy join ordering.
int BoundPositions(const TriplePattern& tp, const BindingTable& table) {
  auto bound = [&table](const sparql::TermOrVar& tv) {
    return !tv.is_var || table.VarIndex(tv.var) >= 0;
  };
  return (bound(tp.s) ? 1 : 0) + (bound(tp.p) ? 1 : 0) + (bound(tp.o) ? 1 : 0);
}

/// Evaluates an expression tree that may contain aggregate nodes over the
/// rows of one group. Non-aggregate leaves resolve against the group's
/// first row (they are grouping expressions, constant within the group).
EvalValue EvalWithAggregates(const Expr& expr, const BindingTable& table,
                             const std::vector<size_t>& group_rows,
                             rdf::Dictionary* dict) {
  if (expr.kind == Expr::Kind::kAggregate) {
    Aggregator agg(expr.agg_func, expr.agg_distinct,
                   expr.regex_pattern.empty() ? " " : expr.regex_pattern);
    for (size_t r : group_rows) {
      if (expr.count_star) {
        agg.AddRow();
        continue;
      }
      const Expr& arg = *expr.children[0];
      auto resolve = [&table, r](const std::string& v) {
        int i = table.VarIndex(v);
        return i < 0 ? rdf::kInvalidTermId : table.rows()[r][i];
      };
      if (arg.kind == Expr::Kind::kVar) {
        agg.AddTerm(resolve(arg.var), *dict);
      } else {
        EvalValue v = sparql::EvaluateExpr(arg, resolve, *dict);
        if (v.is_error()) continue;
        if (v.kind == EvalValue::Kind::kNum) {
          agg.AddTerm(InternNumber(dict, v.num), *dict);
        } else if (v.kind == EvalValue::Kind::kTerm) {
          rdf::TermId id = v.term != rdf::kInvalidTermId
                               ? v.term
                               : dict->Intern(*v.term_ptr);
          agg.AddTerm(id, *dict);
        }
      }
    }
    rdf::TermId result = agg.Finalize(dict);
    if (result == rdf::kInvalidTermId) return EvalValue::Error();
    return EvalValue::TermRef(result);
  }

  // Non-aggregate node: recurse if any child aggregates; otherwise
  // evaluate over the first row of the group.
  if (expr.HasAggregate()) {
    // Rebuild a small evaluation by materializing child values. Supported
    // combinators over aggregates: arithmetic and comparisons.
    EvalValue l = EvalWithAggregates(*expr.children[0], table, group_rows,
                                     dict);
    EvalValue r = expr.children.size() > 1
                      ? EvalWithAggregates(*expr.children[1], table,
                                           group_rows, dict)
                      : EvalValue::Error();
    auto nl = sparql::ToNumber(l, *dict);
    auto nr = sparql::ToNumber(r, *dict);
    if (expr.kind == Expr::Kind::kArith) {
      if (!nl.has_value() || !nr.has_value()) return EvalValue::Error();
      if (expr.op == "+") return EvalValue::Number(*nl + *nr);
      if (expr.op == "-") return EvalValue::Number(*nl - *nr);
      if (expr.op == "*") return EvalValue::Number(*nl * *nr);
      if (expr.op == "/") {
        if (*nr == 0) return EvalValue::Error();
        return EvalValue::Number(*nl / *nr);
      }
    }
    return EvalValue::Error();
  }

  RAPIDA_CHECK(!group_rows.empty());
  size_t r0 = group_rows[0];
  auto resolve = [&table, r0](const std::string& v) {
    int i = table.VarIndex(v);
    return i < 0 ? rdf::kInvalidTermId : table.rows()[r0][i];
  };
  return sparql::EvaluateExpr(expr, resolve, *dict);
}

/// Interns the result of an expression evaluation as a term id
/// (kInvalidTermId for errors — rendered as unbound).
rdf::TermId ValueToTermId(const EvalValue& v, rdf::Dictionary* dict) {
  switch (v.kind) {
    case EvalValue::Kind::kError:
      return rdf::kInvalidTermId;
    case EvalValue::Kind::kBool:
      return dict->InternLiteral(v.b ? "true" : "false");
    case EvalValue::Kind::kNum:
      return InternNumber(dict, v.num);
    case EvalValue::Kind::kTerm:
      return v.term != rdf::kInvalidTermId ? v.term
                                           : dict->Intern(*v.term_ptr);
  }
  return rdf::kInvalidTermId;
}

}  // namespace

ReferenceEvaluator::ReferenceEvaluator(rdf::Graph* graph)
    : graph_(graph), index_(*graph) {}

rdf::TermId ReferenceEvaluator::ResolveConst(const rdf::Term& term) const {
  return graph_->dict().Lookup(term);
}

StatusOr<BindingTable> ReferenceEvaluator::Evaluate(const SelectQuery& query) {
  RAPIDA_ASSIGN_OR_RETURN(BindingTable table, EvaluatePattern(query.where));
  RAPIDA_ASSIGN_OR_RETURN(BindingTable result,
                          ApplyGroupingAndSelect(query, table));
  if (query.having != nullptr) {
    FilterRowsByExpr(&result, *query.having, graph_->dict());
  }
  ApplyOrderLimit(&result, query.order_by, query.limit, query.offset,
                  graph_->dict());
  return result;
}

StatusOr<BindingTable> ReferenceEvaluator::EvaluatePattern(
    const GroupGraphPattern& pattern) {
  RAPIDA_ASSIGN_OR_RETURN(BindingTable table, EvaluateBgp(pattern.triples));

  // Join in subquery results (SPARQL bottom-up semantics).
  for (const auto& sub : pattern.subqueries) {
    RAPIDA_ASSIGN_OR_RETURN(BindingTable sub_result, Evaluate(*sub));
    table = table.Join(sub_result);
  }

  // UNION: each arm joins the surrounding conjunctive part independently
  // (join distributes over union), then the branches concatenate with
  // column alignment — absent columns read as unbound. This mirrors the
  // engines' union-distribution lowering, and OPTIONAL below distributes
  // over the union because left-join distributes over its left input.
  if (!pattern.unions.empty()) {
    BindingTable unioned;
    for (size_t i = 0; i < pattern.unions.size(); ++i) {
      RAPIDA_ASSIGN_OR_RETURN(BindingTable arm,
                              EvaluatePattern(pattern.unions[i]));
      BindingTable branch = table.Join(arm);
      if (i == 0) {
        unioned = std::move(branch);
      } else {
        unioned.UnionAll(branch);
      }
    }
    table = std::move(unioned);
  }

  // Left-join OPTIONAL blocks.
  for (const GroupGraphPattern& opt : pattern.optionals) {
    RAPIDA_ASSIGN_OR_RETURN(BindingTable opt_result, EvaluatePattern(opt));
    table = table.LeftJoin(opt_result);
  }

  // FILTERs.
  if (!pattern.filters.empty()) {
    BindingTable filtered(table.vars());
    for (const auto& row : table.rows()) {
      bool keep = true;
      auto resolve = [&table, &row](const std::string& v) {
        int i = table.VarIndex(v);
        return i < 0 ? rdf::kInvalidTermId : row[i];
      };
      for (const auto& f : pattern.filters) {
        if (!sparql::EffectiveBool(
                sparql::EvaluateExpr(*f, resolve, graph_->dict()))) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.AddRow(row);
    }
    table = std::move(filtered);
  }
  return table;
}

StatusOr<BindingTable> ReferenceEvaluator::EvaluateBgp(
    const std::vector<TriplePattern>& triples) {
  // Start with the unit table (one empty row) and extend greedily by the
  // most-bound triple pattern.
  BindingTable table{std::vector<std::string>{}};
  table.AddRow({});
  std::vector<bool> used(triples.size(), false);
  for (size_t step = 0; step < triples.size(); ++step) {
    int best = -1;
    int best_bound = -1;
    for (size_t i = 0; i < triples.size(); ++i) {
      if (used[i]) continue;
      int b = BoundPositions(triples[i], table);
      if (b > best_bound) {
        best_bound = b;
        best = static_cast<int>(i);
      }
    }
    used[best] = true;
    RAPIDA_RETURN_IF_ERROR(ExtendByTriplePattern(triples[best], &table));
    // No early exit on an empty intermediate: the remaining patterns must
    // still contribute their columns (a GROUP BY over a variable they bind
    // needs the column to exist even when there are zero solutions), and
    // extending an empty table is free — the row loop never runs.
  }
  return table;
}

Status ReferenceEvaluator::ExtendByTriplePattern(const TriplePattern& tp,
                                                 BindingTable* table) {
  // Resolve each position: constant id, existing column index, or new var.
  struct Pos {
    bool is_const = false;
    rdf::TermId const_id = rdf::kInvalidTermId;
    int col = -1;           // existing column
    std::string new_var;    // non-empty if this introduces a variable
  };
  auto classify = [&](const sparql::TermOrVar& tv) {
    Pos p;
    if (!tv.is_var) {
      p.is_const = true;
      p.const_id = ResolveConst(tv.term);
      return p;
    }
    p.col = table->VarIndex(tv.var);
    if (p.col < 0) p.new_var = tv.var;
    return p;
  };
  Pos sp = classify(tp.s);
  Pos pp = classify(tp.p);
  Pos op = classify(tp.o);

  // A constant that is absent from the dictionary can never match.
  bool dead = (sp.is_const && sp.const_id == rdf::kInvalidTermId) ||
              (pp.is_const && pp.const_id == rdf::kInvalidTermId) ||
              (op.is_const && op.const_id == rdf::kInvalidTermId);

  std::vector<std::string> out_vars = table->vars();
  // Track duplicate new variables within this pattern (?x p ?x).
  bool s_eq_o_new = !sp.new_var.empty() && sp.new_var == op.new_var;
  if (!sp.new_var.empty()) out_vars.push_back(sp.new_var);
  if (!pp.new_var.empty()) out_vars.push_back(pp.new_var);
  if (!op.new_var.empty() && !s_eq_o_new) out_vars.push_back(op.new_var);
  BindingTable out(out_vars);
  if (dead) {
    *table = std::move(out);
    return Status::OK();
  }

  for (const auto& row : table->rows()) {
    auto id_of = [&row](const Pos& p) {
      if (p.is_const) return p.const_id;
      if (p.col >= 0) return row[p.col];
      return rdf::kInvalidTermId;  // new variable
    };
    rdf::TermId s_id = id_of(sp);
    rdf::TermId p_id = id_of(pp);
    rdf::TermId o_id = id_of(op);

    auto emit = [&](rdf::TermId s, rdf::TermId p, rdf::TermId o) {
      if (s_eq_o_new && s != o) return;
      std::vector<rdf::TermId> new_row = row;
      if (!sp.new_var.empty()) new_row.push_back(s);
      if (!pp.new_var.empty()) new_row.push_back(p);
      if (!op.new_var.empty() && !s_eq_o_new) new_row.push_back(o);
      out.AddRow(std::move(new_row));
    };

    if (p_id != rdf::kInvalidTermId) {
      if (s_id != rdf::kInvalidTermId && o_id != rdf::kInvalidTermId) {
        if (index_.Contains(s_id, p_id, o_id)) emit(s_id, p_id, o_id);
      } else if (s_id != rdf::kInvalidTermId) {
        for (rdf::TermId o : index_.Objects(p_id, s_id)) emit(s_id, p_id, o);
      } else if (o_id != rdf::kInvalidTermId) {
        for (rdf::TermId s : index_.Subjects(p_id, o_id)) emit(s, p_id, o_id);
      } else {
        for (const auto& [s, o] : index_.ByProperty(p_id)) emit(s, p_id, o);
      }
    } else {
      // Unbound property: full scan (rare; unbound-property patterns are
      // out of the paper's optimization scope but supported for
      // completeness).
      for (const rdf::Triple& t : graph_->triples()) {
        if (s_id != rdf::kInvalidTermId && t.s != s_id) continue;
        if (o_id != rdf::kInvalidTermId && t.o != o_id) continue;
        emit(t.s, t.p, t.o);
      }
    }
  }
  *table = std::move(out);
  return Status::OK();
}

StatusOr<BindingTable> ReferenceEvaluator::ApplyGroupingAndSelect(
    const SelectQuery& query, const BindingTable& input) {
  rdf::Dictionary* dict = &graph_->dict();

  if (query.select_all) {
    BindingTable out = input;
    if (query.distinct) out.Distinct();
    return out;
  }

  bool grouped = query.HasAggregates() || !query.group_by.empty();
  if (!grouped) {
    // Row-wise projection with optional computed expressions.
    std::vector<std::string> names = query.ColumnNames();
    BindingTable out(names);
    for (const auto& row : input.rows()) {
      auto resolve = [&input, &row](const std::string& v) {
        int i = input.VarIndex(v);
        return i < 0 ? rdf::kInvalidTermId : row[i];
      };
      std::vector<rdf::TermId> out_row;
      out_row.reserve(query.items.size());
      for (const SelectItem& item : query.items) {
        if (item.expr == nullptr) {
          out_row.push_back(resolve(item.name));
        } else {
          EvalValue v = sparql::EvaluateExpr(*item.expr, resolve, *dict);
          out_row.push_back(ValueToTermId(v, dict));
        }
      }
      out.AddRow(std::move(out_row));
    }
    if (query.distinct) out.Distinct();
    return out;
  }

  // Grouped evaluation. GROUP BY ALL (empty group_by with aggregates)
  // produces exactly one group — even over zero input rows (SPARQL
  // semantics: aggregates over the empty group, COUNT = 0).
  std::vector<int> key_cols;
  key_cols.reserve(query.group_by.size());
  for (const std::string& v : query.group_by) {
    int i = input.VarIndex(v);
    if (i < 0) {
      return Status::InvalidArgument("GROUP BY variable ?" + v +
                                     " not bound by pattern");
    }
    key_cols.push_back(i);
  }

  std::map<std::vector<rdf::TermId>, std::vector<size_t>> groups;
  for (size_t r = 0; r < input.NumRows(); ++r) {
    std::vector<rdf::TermId> key;
    key.reserve(key_cols.size());
    for (int c : key_cols) key.push_back(input.rows()[r][c]);
    groups[std::move(key)].push_back(r);
  }
  if (query.group_by.empty() && groups.empty()) {
    groups[{}] = {};  // the single empty ALL-group
  }

  std::vector<std::string> names = query.ColumnNames();
  BindingTable out(names);
  for (const auto& [key, rows] : groups) {
    std::vector<rdf::TermId> out_row;
    out_row.reserve(query.items.size());
    for (const SelectItem& item : query.items) {
      if (item.expr == nullptr) {
        // Plain variable: must be one of the grouping variables.
        int gi = -1;
        for (size_t k = 0; k < query.group_by.size(); ++k) {
          if (query.group_by[k] == item.name) {
            gi = static_cast<int>(k);
            break;
          }
        }
        if (gi < 0) {
          return Status::InvalidArgument(
              "projected variable ?" + item.name +
              " is neither aggregated nor in GROUP BY");
        }
        out_row.push_back(key[gi]);
      } else if (rows.empty()) {
        // Empty ALL-group: aggregates over no rows.
        Aggregator agg(item.expr->agg_func, false,
                       item.expr->regex_pattern.empty()
                           ? " "
                           : item.expr->regex_pattern);
        out_row.push_back(item.expr->kind == Expr::Kind::kAggregate
                              ? agg.Finalize(dict)
                              : rdf::kInvalidTermId);
      } else {
        EvalValue v = EvalWithAggregates(*item.expr, input, rows, dict);
        out_row.push_back(ValueToTermId(v, dict));
      }
    }
    out.AddRow(std::move(out_row));
  }
  if (query.distinct) out.Distinct();
  return out;
}

}  // namespace rapida::analytics
