#include "analytics/aggregates.h"

#include <algorithm>
#include <cstdio>

#include "analytics/value.h"
#include "util/string_util.h"

namespace rapida::analytics {

using sparql::AggFunc;

void Aggregator::AddTerm(rdf::TermId value, const rdf::Dictionary& dict) {
  if (value == rdf::kInvalidTermId) return;
  if (distinct_) {
    if (!seen_.insert(value).second) return;
  }
  ++count_;
  auto num = dict.AsNumber(value);
  if (num.has_value()) sum_ += *num;
  if (!has_minmax_) {
    has_minmax_ = true;
    min_term_ = value;
    max_term_ = value;
  } else {
    if (CompareTerms(dict, value, min_term_) < 0) min_term_ = value;
    if (CompareTerms(dict, value, max_term_) > 0) max_term_ = value;
  }
  if (sample_ == rdf::kInvalidTermId || value < sample_) sample_ = value;
  if (func_ == AggFunc::kGroupConcat) concat_values_.push_back(value);
}

void Aggregator::AddRow() { ++count_; }

void Aggregator::AddTermWeighted(rdf::TermId value,
                                 const rdf::Dictionary& dict, uint64_t w) {
  if (w == 0 || value == rdf::kInvalidTermId) return;
  if (distinct_) {
    // Duplicates beyond the first are ignored anyway.
    AddTerm(value, dict);
    return;
  }
  AddTerm(value, dict);  // min/max/sample/concat see the value once...
  count_ += w - 1;       // ...count and sum carry the multiplicity
  auto num = dict.AsNumber(value);
  if (num.has_value()) sum_ += *num * static_cast<double>(w - 1);
  if (func_ == AggFunc::kGroupConcat) {
    for (uint64_t i = 1; i < w; ++i) concat_values_.push_back(value);
  }
}

void Aggregator::Merge(const Aggregator& other, const rdf::Dictionary& dict) {
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.has_minmax_) {
    if (!has_minmax_) {
      has_minmax_ = true;
      min_term_ = other.min_term_;
      max_term_ = other.max_term_;
    } else {
      if (CompareTerms(dict, other.min_term_, min_term_) < 0) {
        min_term_ = other.min_term_;
      }
      if (CompareTerms(dict, other.max_term_, max_term_) > 0) {
        max_term_ = other.max_term_;
      }
    }
  }
  if (other.sample_ != rdf::kInvalidTermId &&
      (sample_ == rdf::kInvalidTermId || other.sample_ < sample_)) {
    sample_ = other.sample_;
  }
  concat_values_.insert(concat_values_.end(), other.concat_values_.begin(),
                        other.concat_values_.end());
}

rdf::TermId Aggregator::Finalize(rdf::Dictionary* dict) const {
  switch (func_) {
    case AggFunc::kCount:
      return InternNumber(dict, static_cast<double>(count_));
    case AggFunc::kSum:
      return InternNumber(dict, sum_);
    case AggFunc::kAvg:
      return InternNumber(dict,
                          count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_));
    case AggFunc::kMin:
      return min_term_;
    case AggFunc::kMax:
      return max_term_;
    case AggFunc::kSample:
      return sample_;
    case AggFunc::kGroupConcat: {
      // Canonical order: sort values lexically (implementation-defined in
      // SPARQL; this choice keeps partials mergeable in any order).
      std::vector<std::string> texts;
      texts.reserve(concat_values_.size());
      for (rdf::TermId id : concat_values_) {
        texts.push_back(dict->Get(id).text);
      }
      std::sort(texts.begin(), texts.end());
      return dict->InternLiteral(JoinStrings(texts, separator_));
    }
  }
  return rdf::kInvalidTermId;
}

std::string Aggregator::SerializePartial() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%llu,%.17g,%d,%u,%u,%u",
                static_cast<unsigned long long>(count_), sum_,
                has_minmax_ ? 1 : 0, min_term_, max_term_, sample_);
  std::string out = buf;
  out += ',';
  for (size_t i = 0; i < concat_values_.size(); ++i) {
    if (i > 0) out += ':';
    out += std::to_string(concat_values_[i]);
  }
  return out;
}

StatusOr<Aggregator> Aggregator::DeserializePartial(AggFunc func,
                                                    std::string_view data,
                                                    std::string separator) {
  std::string_view parts[7];
  FieldTokenizer fields(data, ',');
  size_t n = 0;
  std::string_view f;
  while (fields.Next(&f)) {
    if (n == 7) return Status::ParseError("bad partial aggregate: " +
                                          std::string(data));
    parts[n++] = f;
  }
  if (n != 7) {
    return Status::ParseError("bad partial aggregate: " + std::string(data));
  }
  Aggregator agg(func, /*distinct=*/false, std::move(separator));
  int64_t count = 0, has = 0, mn = 0, mx = 0, smp = 0;
  double sum = 0;
  if (!ParseInt64(parts[0], &count) || !ParseDouble(parts[1], &sum) ||
      !ParseInt64(parts[2], &has) || !ParseInt64(parts[3], &mn) ||
      !ParseInt64(parts[4], &mx) || !ParseInt64(parts[5], &smp)) {
    return Status::ParseError("bad partial aggregate: " + std::string(data));
  }
  agg.count_ = static_cast<uint64_t>(count);
  agg.sum_ = sum;
  agg.has_minmax_ = has != 0;
  agg.min_term_ = static_cast<rdf::TermId>(mn);
  agg.max_term_ = static_cast<rdf::TermId>(mx);
  agg.sample_ = static_cast<rdf::TermId>(smp);
  if (!parts[6].empty()) {
    FieldTokenizer ids(parts[6], ':');
    std::string_view id_text;
    while (ids.Next(&id_text)) {
      int64_t id = 0;
      if (!ParseInt64(id_text, &id)) {
        return Status::ParseError("bad partial aggregate: " +
                                  std::string(data));
      }
      agg.concat_values_.push_back(static_cast<rdf::TermId>(id));
    }
  }
  return agg;
}

}  // namespace rapida::analytics
