#include "analytics/binding.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "analytics/value.h"
#include "sparql/expr_eval.h"
#include "util/logging.h"

namespace rapida::analytics {

namespace {

/// Hash for a vector of join-key term ids.
struct KeyHash {
  size_t operator()(const std::vector<rdf::TermId>& key) const {
    uint64_t h = 1469598103934665603ULL;
    for (rdf::TermId id : key) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

int BindingTable::VarIndex(const std::string& var) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

void BindingTable::AddRow(std::vector<rdf::TermId> row) {
  RAPIDA_DCHECK(row.size() == vars_.size());
  rows_.push_back(std::move(row));
}

BindingTable BindingTable::Join(const BindingTable& right) const {
  // Shared variables and the right-only columns to append.
  std::vector<std::pair<int, int>> shared;  // (left idx, right idx)
  std::vector<int> right_only;
  for (size_t j = 0; j < right.vars_.size(); ++j) {
    int li = VarIndex(right.vars_[j]);
    if (li >= 0) {
      shared.emplace_back(li, static_cast<int>(j));
    } else {
      right_only.push_back(static_cast<int>(j));
    }
  }

  std::vector<std::string> out_vars = vars_;
  for (int j : right_only) out_vars.push_back(right.vars_[j]);
  BindingTable out(std::move(out_vars));

  // Hash the right side on the shared key.
  std::unordered_map<std::vector<rdf::TermId>, std::vector<size_t>, KeyHash>
      index;
  for (size_t r = 0; r < right.rows_.size(); ++r) {
    std::vector<rdf::TermId> key;
    key.reserve(shared.size());
    for (const auto& [li, rj] : shared) key.push_back(right.rows_[r][rj]);
    index[std::move(key)].push_back(r);
  }

  for (const auto& lrow : rows_) {
    std::vector<rdf::TermId> key;
    key.reserve(shared.size());
    for (const auto& [li, rj] : shared) key.push_back(lrow[li]);
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (size_t r : it->second) {
      std::vector<rdf::TermId> row = lrow;
      for (int j : right_only) row.push_back(right.rows_[r][j]);
      out.rows_.push_back(std::move(row));
    }
  }
  return out;
}

BindingTable BindingTable::LeftJoin(const BindingTable& right) const {
  std::vector<std::pair<int, int>> shared;
  std::vector<int> right_only;
  for (size_t j = 0; j < right.vars_.size(); ++j) {
    int li = VarIndex(right.vars_[j]);
    if (li >= 0) {
      shared.emplace_back(li, static_cast<int>(j));
    } else {
      right_only.push_back(static_cast<int>(j));
    }
  }

  std::vector<std::string> out_vars = vars_;
  for (int j : right_only) out_vars.push_back(right.vars_[j]);
  BindingTable out(std::move(out_vars));

  for (const auto& lrow : rows_) {
    bool matched = false;
    for (const auto& rrow : right.rows_) {
      bool compatible = true;
      for (const auto& [li, rj] : shared) {
        // SPARQL compatibility: unbound on either side is compatible.
        if (lrow[li] != rdf::kInvalidTermId &&
            rrow[rj] != rdf::kInvalidTermId && lrow[li] != rrow[rj]) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;
      matched = true;
      std::vector<rdf::TermId> row = lrow;
      // Fill any unbound shared cells from the right side.
      for (const auto& [li, rj] : shared) {
        if (row[li] == rdf::kInvalidTermId) row[li] = rrow[rj];
      }
      for (int j : right_only) row.push_back(rrow[j]);
      out.rows_.push_back(std::move(row));
    }
    if (!matched) {
      std::vector<rdf::TermId> row = lrow;
      row.resize(row.size() + right_only.size(), rdf::kInvalidTermId);
      out.rows_.push_back(std::move(row));
    }
  }
  return out;
}

void BindingTable::UnionAll(const BindingTable& other) {
  for (const std::string& v : other.vars_) {
    if (VarIndex(v) < 0) {
      vars_.push_back(v);
      for (auto& row : rows_) row.push_back(rdf::kInvalidTermId);
    }
  }
  std::vector<int> src(vars_.size(), -1);  // our column -> other's column
  for (size_t i = 0; i < vars_.size(); ++i) {
    src[i] = other.VarIndex(vars_[i]);
  }
  for (const auto& orow : other.rows_) {
    std::vector<rdf::TermId> row(vars_.size(), rdf::kInvalidTermId);
    for (size_t i = 0; i < vars_.size(); ++i) {
      if (src[i] >= 0) row[i] = orow[src[i]];
    }
    rows_.push_back(std::move(row));
  }
}

StatusOr<BindingTable> BindingTable::Project(
    const std::vector<std::string>& vars) const {
  std::vector<int> idx;
  idx.reserve(vars.size());
  for (const std::string& v : vars) {
    int i = VarIndex(v);
    if (i < 0) {
      return Status::InvalidArgument("projection variable ?" + v +
                                     " not bound by pattern");
    }
    idx.push_back(i);
  }
  BindingTable out(vars);
  out.rows_.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<rdf::TermId> prow;
    prow.reserve(idx.size());
    for (int i : idx) prow.push_back(row[i]);
    out.rows_.push_back(std::move(prow));
  }
  return out;
}

void BindingTable::Distinct() {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

void BindingTable::SortRows() { std::sort(rows_.begin(), rows_.end()); }

std::vector<std::string> BindingTable::ToSortedStrings(
    const rdf::Dictionary& dict) const {
  // Canonical column order: sorted by variable name.
  std::vector<size_t> order(vars_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this](size_t a, size_t b) { return vars_[a] < vars_[b]; });

  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::string line;
    for (size_t k = 0; k < order.size(); ++k) {
      if (k > 0) line += " | ";
      size_t i = order[k];
      line += vars_[i];
      line += '=';
      if (row[i] == rdf::kInvalidTermId) {
        line += "<unbound>";
      } else {
        const rdf::Term& t = dict.Get(row[i]);
        // Numeric literals render canonically so "5" and "5.0" agree.
        auto num = dict.AsNumber(row[i]);
        if (t.is_literal() && num.has_value()) {
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%.10g", *num);
          line += buf;
        } else {
          line += t.ToNTriples();
        }
      }
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string BindingTable::ToString(const rdf::Dictionary& dict,
                                   size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (i > 0) os << "\t";
    os << "?" << vars_[i];
  }
  os << "\n";
  size_t n = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < vars_.size(); ++i) {
      if (i > 0) os << "\t";
      os << DisplayTerm(dict, rows_[r][i]);
    }
    os << "\n";
  }
  if (rows_.size() > n) {
    os << "... (" << rows_.size() << " rows total)\n";
  }
  return os.str();
}


void FilterRowsByExpr(BindingTable* table, const sparql::Expr& condition,
                      const rdf::Dictionary& dict) {
  BindingTable filtered(table->vars());
  for (const auto& row : table->rows()) {
    auto resolve = [table, &row](const std::string& v) {
      int i = table->VarIndex(v);
      return i < 0 ? rdf::kInvalidTermId : row[i];
    };
    if (sparql::EffectiveBool(
            sparql::EvaluateExpr(condition, resolve, dict))) {
      filtered.AddRow(row);
    }
  }
  *table = std::move(filtered);
}

void ApplyOrderLimit(BindingTable* table,
                     const std::vector<sparql::OrderKey>& order_by,
                     int64_t limit, int64_t offset,
                     const rdf::Dictionary& dict) {
  if (!order_by.empty()) {
    std::vector<int> cols;
    cols.reserve(order_by.size());
    for (const sparql::OrderKey& k : order_by) {
      cols.push_back(table->VarIndex(k.var));
    }
    auto& rows = table->mutable_rows();
    std::stable_sort(
        rows.begin(), rows.end(),
        [&](const std::vector<rdf::TermId>& a,
            const std::vector<rdf::TermId>& b) {
          for (size_t i = 0; i < order_by.size(); ++i) {
            rdf::TermId va = cols[i] < 0 ? rdf::kInvalidTermId : a[cols[i]];
            rdf::TermId vb = cols[i] < 0 ? rdf::kInvalidTermId : b[cols[i]];
            int c = CompareTerms(dict, va, vb);
            if (c != 0) return order_by[i].descending ? c > 0 : c < 0;
          }
          return false;
        });
  }
  auto& rows = table->mutable_rows();
  if (offset > 0) {
    if (static_cast<size_t>(offset) >= rows.size()) {
      rows.clear();
    } else {
      rows.erase(rows.begin(), rows.begin() + offset);
    }
  }
  if (limit >= 0 && rows.size() > static_cast<size_t>(limit)) {
    rows.resize(static_cast<size_t>(limit));
  }
}

}  // namespace rapida::analytics
