#include "analytics/value.h"

#include <cmath>
#include <cstdio>

namespace rapida::analytics {

rdf::TermId InternNumber(rdf::Dictionary* dict, double value) {
  if (std::floor(value) == value && std::fabs(value) < 9.0e15) {
    return dict->InternInt(static_cast<int64_t>(value));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return dict->InternLiteral(buf, rdf::kXsdDouble);
}

int CompareTerms(const rdf::Dictionary& dict, rdf::TermId a, rdf::TermId b) {
  if (a == b) return 0;
  if (a == rdf::kInvalidTermId) return -1;
  if (b == rdf::kInvalidTermId) return 1;
  auto na = dict.AsNumber(a);
  auto nb = dict.AsNumber(b);
  if (na.has_value() && nb.has_value()) {
    if (*na < *nb) return -1;
    if (*na > *nb) return 1;
    return 0;
  }
  const rdf::Term& ta = dict.Get(a);
  const rdf::Term& tb = dict.Get(b);
  if (ta.kind != tb.kind) {
    return static_cast<int>(ta.kind) < static_cast<int>(tb.kind) ? -1 : 1;
  }
  int c = ta.text.compare(tb.text);
  if (c != 0) return c;
  return ta.datatype.compare(tb.datatype);
}

std::string DisplayTerm(const rdf::Dictionary& dict, rdf::TermId id) {
  if (id == rdf::kInvalidTermId) return "∅";
  const rdf::Term& t = dict.Get(id);
  if (t.is_iri()) {
    size_t pos = t.text.find_last_of("/#");
    return pos == std::string::npos ? t.text : t.text.substr(pos + 1);
  }
  return t.text;
}

}  // namespace rapida::analytics
