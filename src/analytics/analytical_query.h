#ifndef RAPIDA_ANALYTICS_ANALYTICAL_QUERY_H_
#define RAPIDA_ANALYTICS_ANALYTICAL_QUERY_H_

#include <string>
#include <vector>

#include "analytics/binding.h"
#include "ntga/operators.h"
#include "ntga/star_pattern.h"
#include "sparql/ast.h"
#include "util/statusor.h"

namespace rapida::analytics {

/// One OPTIONAL tail of a grouping pattern: a single subject-rooted star
/// left-joined to the required pattern on its subject variable (the
/// acyclic left-join form — OPTIONAL as a left star-join). Object
/// variables are fresh (bound nowhere else), so unmatched subjects simply
/// carry unbound cells.
struct OptionalTail {
  ntga::StarPattern star;
  /// Optional-local FILTERs; they reference only this tail's variables and
  /// apply inside the optional (before the left join).
  std::vector<sparql::ExprPtr> filters;
  /// The shared variable — always star.subject_var, bound by the required
  /// pattern.
  std::string join_var;

  OptionalTail() = default;
  OptionalTail(OptionalTail&&) = default;
  OptionalTail& operator=(OptionalTail&&) = default;
};

/// One UNION branch in engine form. Join distribution over union has
/// already happened in the analyzer: the branch pattern merges the
/// grouping's required triples with the arm's triples, and the grouping's
/// OPTIONALs/FILTERs are distributed into every branch.
struct PatternBranch {
  ntga::StarGraph pattern;
  /// FILTERs over required-pattern variables (pushable before left joins).
  std::vector<sparql::ExprPtr> filters;
  std::vector<OptionalTail> optionals;
  /// FILTERs referencing OPTIONAL variables; they apply after the left
  /// joins (SPARQL group-filter semantics).
  std::vector<sparql::ExprPtr> post_filters;

  PatternBranch() = default;
  PatternBranch(PatternBranch&&) = default;
  PatternBranch& operator=(PatternBranch&&) = default;
};

/// One grouping-aggregation constraint of an analytical query: a graph
/// pattern (decomposed into stars), its filters, the grouping variables
/// (θ; empty = GROUP BY ALL) and the aggregation list (l). This is the
/// decoupled form of §3: grouping definition separated from the
/// aggregation computation.
///
/// Extended (non-conjunctive) shapes: `optionals` holds left star-join
/// tails over `pattern`, with `post_filters` applied after them. When the
/// grouping contains a UNION, `union_branches` (>= 2 entries) carries the
/// whole pattern side — one already-distributed branch per arm — and
/// `pattern`/`filters`/`optionals`/`post_filters` are empty and unused.
struct GroupingSubquery {
  ntga::StarGraph pattern;
  std::vector<sparql::ExprPtr> filters;
  std::vector<OptionalTail> optionals;
  std::vector<sparql::ExprPtr> post_filters;
  std::vector<PatternBranch> union_branches;
  std::vector<std::string> group_by;
  std::vector<ntga::AggSpec> aggs;
  /// HAVING condition over this grouping's output columns (group vars and
  /// aggregate aliases); null if absent.
  sparql::ExprPtr having;
  /// Output column names in SELECT order (group vars and agg names).
  std::vector<std::string> columns;

  /// True when the pattern side is a plain conjunctive star graph — the
  /// shape the MQO overlap machinery (shared scans, composite rewrites)
  /// understands. OPTIONAL/UNION groupings return false and make the
  /// rewrite engines fall back to their naive counterparts.
  bool IsConjunctive() const {
    return optionals.empty() && post_filters.empty() &&
           union_branches.empty();
  }

  GroupingSubquery() = default;
  GroupingSubquery(GroupingSubquery&&) = default;
  GroupingSubquery& operator=(GroupingSubquery&&) = default;
};

/// A SPARQL analytical query in engine form: one or more grouping
/// subqueries whose results are joined and projected by the top-level
/// SELECT (e.g. AQ1's price ratio).
struct AnalyticalQuery {
  std::vector<GroupingSubquery> groupings;
  /// Top-level select items over the union of grouping output columns
  /// (plain columns or arithmetic expressions — no aggregates here).
  std::vector<sparql::SelectItem> top_items;
  bool top_distinct = false;
  /// Top-level solution modifiers, applied after the final join.
  std::vector<sparql::OrderKey> order_by;
  int64_t limit = -1;
  int64_t offset = 0;

  AnalyticalQuery() = default;
  AnalyticalQuery(AnalyticalQuery&&) = default;
  AnalyticalQuery& operator=(AnalyticalQuery&&) = default;

  std::vector<std::string> TopColumnNames() const;
};

/// Applies the top-level solution modifiers (DISTINCT, ORDER BY,
/// OFFSET/LIMIT) to an engine's final result. Every engine calls this as
/// its last (driver-side) step.
void ApplySolutionModifiers(const AnalyticalQuery& query,
                            const rdf::Dictionary& dict,
                            BindingTable* table);

/// Converts a parsed SELECT query into engine form. Accepted shapes:
///  * a single grouping query — BGP + FILTERs with aggregates and
///    optional GROUP BY at the top level (paper's G1–G9), or
///  * a multi-grouping query — top level WHERE contains only sub-SELECTs
///    (each a single grouping query); top items project their columns
///    (paper's MG1–MG18, AQ1).
/// Grouping patterns may additionally carry OPTIONAL tails (each a single
/// fresh-variable star left-joined on its subject) and one level of UNION
/// (arms of required-plus-arm triples; join distribution happens here).
/// Anything else (deeper OPTIONAL/UNION nesting, unbound properties,
/// nested nesting) returns InvalidArgument with a message naming the
/// construct: those shapes fall outside the paper's optimization scope and
/// should be run on the reference evaluator.
StatusOr<AnalyticalQuery> AnalyzeQuery(const sparql::SelectQuery& query);

}  // namespace rapida::analytics

#endif  // RAPIDA_ANALYTICS_ANALYTICAL_QUERY_H_
