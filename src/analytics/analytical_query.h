#ifndef RAPIDA_ANALYTICS_ANALYTICAL_QUERY_H_
#define RAPIDA_ANALYTICS_ANALYTICAL_QUERY_H_

#include <string>
#include <vector>

#include "analytics/binding.h"
#include "ntga/operators.h"
#include "ntga/star_pattern.h"
#include "sparql/ast.h"
#include "util/statusor.h"

namespace rapida::analytics {

/// One grouping-aggregation constraint of an analytical query: a graph
/// pattern (decomposed into stars), its filters, the grouping variables
/// (θ; empty = GROUP BY ALL) and the aggregation list (l). This is the
/// decoupled form of §3: grouping definition separated from the
/// aggregation computation.
struct GroupingSubquery {
  ntga::StarGraph pattern;
  std::vector<sparql::ExprPtr> filters;
  std::vector<std::string> group_by;
  std::vector<ntga::AggSpec> aggs;
  /// HAVING condition over this grouping's output columns (group vars and
  /// aggregate aliases); null if absent.
  sparql::ExprPtr having;
  /// Output column names in SELECT order (group vars and agg names).
  std::vector<std::string> columns;

  GroupingSubquery() = default;
  GroupingSubquery(GroupingSubquery&&) = default;
  GroupingSubquery& operator=(GroupingSubquery&&) = default;
};

/// A SPARQL analytical query in engine form: one or more grouping
/// subqueries whose results are joined and projected by the top-level
/// SELECT (e.g. AQ1's price ratio).
struct AnalyticalQuery {
  std::vector<GroupingSubquery> groupings;
  /// Top-level select items over the union of grouping output columns
  /// (plain columns or arithmetic expressions — no aggregates here).
  std::vector<sparql::SelectItem> top_items;
  bool top_distinct = false;
  /// Top-level solution modifiers, applied after the final join.
  std::vector<sparql::OrderKey> order_by;
  int64_t limit = -1;
  int64_t offset = 0;

  AnalyticalQuery() = default;
  AnalyticalQuery(AnalyticalQuery&&) = default;
  AnalyticalQuery& operator=(AnalyticalQuery&&) = default;

  std::vector<std::string> TopColumnNames() const;
};

/// Applies the top-level solution modifiers (DISTINCT, ORDER BY,
/// OFFSET/LIMIT) to an engine's final result. Every engine calls this as
/// its last (driver-side) step.
void ApplySolutionModifiers(const AnalyticalQuery& query,
                            const rdf::Dictionary& dict,
                            BindingTable* table);

/// Converts a parsed SELECT query into engine form. Accepted shapes:
///  * a single grouping query — BGP + FILTERs with aggregates and
///    optional GROUP BY at the top level (paper's G1–G9), or
///  * a multi-grouping query — top level WHERE contains only sub-SELECTs
///    (each a single grouping query); top items project their columns
///    (paper's MG1–MG18, AQ1).
/// Anything else (OPTIONAL blocks, unbound properties, nested nesting)
/// returns InvalidArgument: those shapes fall outside the paper's
/// optimization scope and should be run on the reference evaluator.
StatusOr<AnalyticalQuery> AnalyzeQuery(const sparql::SelectQuery& query);

}  // namespace rapida::analytics

#endif  // RAPIDA_ANALYTICS_ANALYTICAL_QUERY_H_
