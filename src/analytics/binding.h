#ifndef RAPIDA_ANALYTICS_BINDING_H_
#define RAPIDA_ANALYTICS_BINDING_H_

#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "util/statusor.h"

namespace rapida::analytics {

/// A table of solution mappings: named columns of TermIds, one row per
/// solution. kInvalidTermId cells mean "unbound" (possible after OPTIONAL).
///
/// This is both the reference evaluator's working representation and the
/// final result type of every engine: computed values (aggregates,
/// arithmetic) are interned into the dictionary via InternNumber so rows
/// stay uniform TermId vectors and results compare exactly across engines.
class BindingTable {
 public:
  BindingTable() = default;
  explicit BindingTable(std::vector<std::string> vars)
      : vars_(std::move(vars)) {}

  const std::vector<std::string>& vars() const { return vars_; }
  const std::vector<std::vector<rdf::TermId>>& rows() const { return rows_; }
  std::vector<std::vector<rdf::TermId>>& mutable_rows() { return rows_; }
  size_t NumRows() const { return rows_.size(); }
  size_t NumCols() const { return vars_.size(); }

  /// Index of `var` or -1.
  int VarIndex(const std::string& var) const;

  /// Appends a row; must have vars().size() cells.
  void AddRow(std::vector<rdf::TermId> row);

  /// Natural (inner) hash join on all shared variable names; columns of
  /// `right` not in `this` are appended. With no shared vars this is a
  /// cross product (used when joining independent subquery results).
  BindingTable Join(const BindingTable& right) const;

  /// Left outer join on all shared variable names (SPARQL OPTIONAL):
  /// unmatched left rows keep their cells and get unbound right columns.
  /// Shared-var matching treats an unbound left cell as compatible.
  BindingTable LeftJoin(const BindingTable& right) const;

  /// SPARQL UNION concatenation: appends `other`'s rows, aligning columns
  /// by variable name. Columns present on only one side read as unbound in
  /// the other side's rows (schema is extended in place as needed).
  void UnionAll(const BindingTable& other);

  /// Projects to `vars` in order (vars must exist).
  StatusOr<BindingTable> Project(const std::vector<std::string>& vars) const;

  /// Removes duplicate rows.
  void Distinct();

  /// Deterministic row order (lexicographic by cell ids after rendering
  /// normalization is NOT applied — ids are engine-dependent, so use
  /// ToSortedStrings for cross-engine comparisons).
  void SortRows();

  /// Renders every row as a "v1=x | v2=y" string (columns in a canonical
  /// name order), sorted — the stable form used to compare engines.
  std::vector<std::string> ToSortedStrings(const rdf::Dictionary& dict) const;

  /// Pretty table for examples / debugging.
  std::string ToString(const rdf::Dictionary& dict, size_t max_rows = 20) const;

 private:
  std::vector<std::string> vars_;
  std::vector<std::vector<rdf::TermId>> rows_;
};

/// Keeps only rows for which `condition` is effectively true, resolving
/// variables against the table's columns (HAVING over output columns).
void FilterRowsByExpr(BindingTable* table, const sparql::Expr& condition,
                      const rdf::Dictionary& dict);

/// Applies ORDER BY (stable, CompareTerms semantics, missing key columns
/// sort as unbound), then OFFSET / LIMIT (-1 = unlimited).
void ApplyOrderLimit(BindingTable* table,
                     const std::vector<sparql::OrderKey>& order_by,
                     int64_t limit, int64_t offset,
                     const rdf::Dictionary& dict);

}  // namespace rapida::analytics

#endif  // RAPIDA_ANALYTICS_BINDING_H_
