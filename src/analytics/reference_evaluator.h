#ifndef RAPIDA_ANALYTICS_REFERENCE_EVALUATOR_H_
#define RAPIDA_ANALYTICS_REFERENCE_EVALUATOR_H_

#include "analytics/binding.h"
#include "rdf/graph.h"
#include "rdf/graph_index.h"
#include "sparql/ast.h"
#include "util/statusor.h"

namespace rapida::analytics {

/// Direct in-memory evaluator for the supported SPARQL subset. It is the
/// correctness oracle: every MapReduce engine's output must match it row for
/// row. It runs hash/index joins with no cost accounting; do not benchmark
/// it against the engines (it answers "what", the engines answer "how").
///
/// The graph is non-const because computed values (aggregates, arithmetic)
/// are interned into its dictionary.
class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(rdf::Graph* graph);

  ReferenceEvaluator(const ReferenceEvaluator&) = delete;
  ReferenceEvaluator& operator=(const ReferenceEvaluator&) = delete;

  /// Evaluates a full (possibly nested / aggregated) SELECT query.
  StatusOr<BindingTable> Evaluate(const sparql::SelectQuery& query);

  /// Evaluates just a group graph pattern to its solution mappings
  /// (exposed for tests of pattern semantics).
  StatusOr<BindingTable> EvaluatePattern(
      const sparql::GroupGraphPattern& pattern);

 private:
  StatusOr<BindingTable> EvaluateBgp(
      const std::vector<sparql::TriplePattern>& triples);
  Status ExtendByTriplePattern(const sparql::TriplePattern& tp,
                               BindingTable* table);

  /// Resolves a constant term to its dictionary id (kInvalidTermId if the
  /// term never occurs in the data — pattern can't match).
  rdf::TermId ResolveConst(const rdf::Term& term) const;

  StatusOr<BindingTable> ApplyGroupingAndSelect(
      const sparql::SelectQuery& query, const BindingTable& input);

  rdf::Graph* graph_;
  rdf::GraphIndex index_;
};

}  // namespace rapida::analytics

#endif  // RAPIDA_ANALYTICS_REFERENCE_EVALUATOR_H_
