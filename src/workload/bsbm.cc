#include "workload/bsbm.h"

#include <string>

#include "rdf/term.h"
#include "util/random.h"

namespace rapida::workload {

namespace {
std::string N(const std::string& local) { return kBsbmNs + local; }
}  // namespace

rdf::Graph GenerateBsbm(const BsbmConfig& config) {
  rdf::Graph g;
  Random rng(config.seed);

  const std::string type_p = rdf::kRdfType;
  const std::string label_p = N("label");
  const std::string feature_p = N("productFeature");
  const std::string product_p = N("product");
  const std::string price_p = N("price");
  const std::string vendor_p = N("vendor");
  const std::string country_p = N("country");
  const std::string valid_from_p = N("validFrom");
  const std::string valid_to_p = N("validTo");

  // Vendors.
  for (int v = 0; v < config.num_vendors; ++v) {
    std::string vendor = N("Vendor" + std::to_string(v + 1));
    uint64_t c = rng.Zipf(config.num_countries, 0.8);
    g.AddIri(vendor, country_p, N("Country" + std::to_string(c + 1)));
  }

  // Products with Zipf-popular types and 1-4 features.
  for (int p = 0; p < config.num_products; ++p) {
    std::string product = N("Product" + std::to_string(p + 1));
    uint64_t t = rng.Zipf(config.num_product_types, 1.1);
    g.AddIri(product, type_p, N("ProductType" + std::to_string(t + 1)));
    g.AddLit(product, label_p, "product label " + std::to_string(p + 1));
    int n_features = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < n_features; ++f) {
      uint64_t feat = rng.Zipf(config.num_features, 0.7);
      g.AddIri(product, feature_p,
               N("ProductFeature" + std::to_string(feat + 1)));
    }
  }

  // Offers.
  int64_t num_offers = static_cast<int64_t>(
      config.offers_per_product * config.num_products);
  for (int64_t o = 0; o < num_offers; ++o) {
    std::string offer = N("Offer" + std::to_string(o + 1));
    uint64_t p = rng.Uniform(config.num_products);
    g.AddIri(offer, product_p, N("Product" + std::to_string(p + 1)));
    g.AddInt(offer, price_p, 50 + static_cast<int64_t>(rng.Uniform(9950)));
    uint64_t v = rng.Uniform(config.num_vendors);
    g.AddIri(offer, vendor_p, N("Vendor" + std::to_string(v + 1)));
    if (rng.Bernoulli(config.optional_date_probability)) {
      g.AddInt(offer, valid_from_p,
               20140101 + static_cast<int64_t>(rng.Uniform(10000)));
    }
    if (rng.Bernoulli(config.optional_date_probability)) {
      g.AddInt(offer, valid_to_p,
               20150101 + static_cast<int64_t>(rng.Uniform(10000)));
    }
  }
  return g;
}

}  // namespace rapida::workload
