#include "workload/chem2bio.h"

#include <string>

#include "rdf/term.h"
#include "util/random.h"

namespace rapida::workload {

namespace {
std::string N(const std::string& local) { return kChemNs + local; }
}  // namespace

rdf::Graph GenerateChem2Bio(const ChemConfig& config) {
  rdf::Graph g;
  Random rng(config.seed);

  // --- gene entries: gi (literal id) + geneSymbol ---
  for (int i = 0; i < config.num_genes; ++i) {
    std::string u = N("GeneEntry" + std::to_string(i + 1));
    g.AddInt(u, N("gi"), 100000 + i);
    g.AddLit(u, N("geneSymbol"), "GENE" + std::to_string(i + 1));
  }

  // --- drugs: Generic_Name + CID (compound id) ---
  for (int i = 0; i < config.num_drugs; ++i) {
    std::string dr = N("Drug" + std::to_string(i + 1));
    std::string name =
        i == 0 ? "Dexamethasone" : "Drug-" + std::to_string(i + 1);
    g.AddLit(dr, N("Generic_Name"), name);
    g.AddInt(dr, N("CID"),
             1 + static_cast<int64_t>(rng.Uniform(config.num_compounds)));
  }

  // --- drug-gene interactions: gene (symbol literal) + DBID (drug) ---
  int num_interactions = config.num_drugs * 3;
  for (int i = 0; i < num_interactions; ++i) {
    std::string di = N("Interaction" + std::to_string(i + 1));
    uint64_t gene = rng.Zipf(config.num_genes, 0.8);
    g.AddLit(di, N("gene"), "GENE" + std::to_string(gene + 1));
    uint64_t drug = rng.Uniform(config.num_drugs);
    g.AddIri(di, N("DBID"), N("Drug" + std::to_string(drug + 1)));
  }

  // --- bioassays: CID + outcome + Score + gi ---
  for (int i = 0; i < config.num_assays; ++i) {
    std::string b = N("BioAssay" + std::to_string(i + 1));
    g.AddInt(b, N("CID"),
             1 + static_cast<int64_t>(rng.Zipf(config.num_compounds, 0.6)));
    g.AddLit(b, N("outcome"), rng.Bernoulli(0.6) ? "active" : "inactive");
    g.AddInt(b, N("Score"), static_cast<int64_t>(rng.Uniform(100)));
    uint64_t gene = rng.Zipf(config.num_genes, 0.7);
    g.AddInt(b, N("assay_gi"), 100000 + static_cast<int64_t>(gene));
  }

  // --- pathways: protein (gene entry) + Pathway_name + pathwayid ---
  const char* kPathwayNames[] = {
      "MAPK signaling pathway - human", "Apoptosis", "Cell cycle",
      "p53 signaling pathway", "Calcium signaling pathway"};
  int pathway_entry = 0;
  for (int i = 0; i < config.num_pathways; ++i) {
    // Each pathway contains several proteins; one entry per membership.
    int members = 2 + static_cast<int>(rng.Uniform(6));
    std::string name = kPathwayNames[i % 5];
    if (i >= 5) name += " variant " + std::to_string(i);
    for (int m = 0; m < members; ++m) {
      std::string pw = N("PathwayEntry" + std::to_string(++pathway_entry));
      uint64_t gene = rng.Uniform(config.num_genes);
      g.AddIri(pw, N("protein"), N("GeneEntry" + std::to_string(gene + 1)));
      g.AddLit(pw, N("Pathway_name"), name);
      g.AddInt(pw, N("pathwayid"), i + 1);
    }
  }

  // --- SIDER records: side_effect + cid ---
  const char* kEffects[] = {"hepatomegaly", "nausea", "headache",
                            "dizziness", "rash"};
  for (int i = 0; i < config.num_sider_records; ++i) {
    std::string s = N("Sider" + std::to_string(i + 1));
    uint64_t e = rng.Zipf(5, 0.5);
    std::string effect = std::string(kEffects[e]);
    if (rng.Bernoulli(0.3)) effect += " severe";
    g.AddLit(s, N("side_effect"), effect);
    g.AddInt(s, N("cid"),
             1 + static_cast<int64_t>(rng.Uniform(config.num_compounds)));
  }

  // --- targets: DBID (drug) + SwissProt_ID (gene entry) ---
  for (int i = 0; i < config.num_targets; ++i) {
    std::string t = N("Target" + std::to_string(i + 1));
    uint64_t drug = rng.Uniform(config.num_drugs);
    g.AddIri(t, N("DBID"), N("Drug" + std::to_string(drug + 1)));
    uint64_t gene = rng.Uniform(config.num_genes);
    g.AddIri(t, N("SwissProt_ID"),
             N("GeneEntry" + std::to_string(gene + 1)));
  }

  // --- Medline publications (LARGE): gene + side_effect + disease ---
  for (int i = 0; i < config.num_publications; ++i) {
    std::string pmid = N("PMID" + std::to_string(i + 1));
    uint64_t gene = rng.Zipf(config.num_genes, 0.9);
    g.AddIri(pmid, N("medline_gene"), N("GeneEntry" + std::to_string(gene + 1)));
    uint64_t e = rng.Uniform(5);
    g.AddLit(pmid, N("side_effect"), kEffects[e]);
    if (rng.Bernoulli(0.7)) {
      uint64_t d = rng.Zipf(config.num_diseases, 0.8);
      g.AddIri(pmid, N("disease"), N("Disease" + std::to_string(d + 1)));
    }
  }
  return g;
}

}  // namespace rapida::workload
