#include "workload/pubmed.h"

#include <string>

#include "rdf/term.h"
#include "util/random.h"

namespace rapida::workload {

namespace {
std::string N(const std::string& local) { return kPubmedNs + local; }

/// Draws a count with the given mean: floor(mean) plus a Bernoulli for the
/// fractional part, minimum 1.
int DrawCount(Random* rng, double mean) {
  int base = static_cast<int>(mean);
  int n = base + (rng->Bernoulli(mean - base) ? 1 : 0);
  return n < 1 ? 1 : n;
}
}  // namespace

rdf::Graph GeneratePubmed(const PubmedConfig& config) {
  rdf::Graph g;
  Random rng(config.seed);

  // Grants: agency + country.
  for (int i = 0; i < config.num_grants; ++i) {
    std::string grant = N("Grant" + std::to_string(i + 1));
    uint64_t a = rng.Zipf(config.num_agencies, 0.8);
    g.AddIri(grant, N("grant_agency"),
             N("Agency" + std::to_string(a + 1)));
    uint64_t c = rng.Zipf(config.num_countries, 0.7);
    g.AddLit(grant, N("grant_country"),
             "Country" + std::to_string(c + 1));
  }

  // Authors: last names (shared across some authors, as in real data).
  for (int i = 0; i < config.num_authors; ++i) {
    std::string author = N("Author" + std::to_string(i + 1));
    uint64_t ln = rng.Zipf(config.num_authors / 3 + 1, 0.9);
    g.AddLit(author, N("last_name"), "Name" + std::to_string(ln + 1));
  }

  // Publications.
  for (int i = 0; i < config.num_publications; ++i) {
    std::string pub = N("Pub" + std::to_string(i + 1));
    bool news = rng.Bernoulli(config.news_fraction);
    g.AddLit(pub, N("pub_type"), news ? "News" : "Journal Article");
    uint64_t j = rng.Zipf(config.num_journals, 0.9);
    g.AddIri(pub, N("journal"), N("Journal" + std::to_string(j + 1)));

    int n_grants = rng.Bernoulli(0.8)
                       ? DrawCount(&rng, config.grants_per_publication)
                       : 0;
    for (int k = 0; k < n_grants; ++k) {
      uint64_t gr = rng.Uniform(config.num_grants);
      g.AddIri(pub, N("grant"), N("Grant" + std::to_string(gr + 1)));
    }
    int n_authors = DrawCount(&rng, config.authors_per_publication);
    for (int k = 0; k < n_authors; ++k) {
      uint64_t a = rng.Zipf(config.num_authors, 0.6);
      g.AddIri(pub, N("author"), N("Author" + std::to_string(a + 1)));
    }
    int n_mesh = DrawCount(&rng, config.mesh_per_publication);
    for (int k = 0; k < n_mesh; ++k) {
      uint64_t m = rng.Zipf(config.num_mesh_terms, 0.8);
      g.AddIri(pub, N("mesh_heading"), N("Mesh" + std::to_string(m + 1)));
    }
    int n_chem = DrawCount(&rng, config.chemicals_per_publication);
    for (int k = 0; k < n_chem; ++k) {
      uint64_t c = rng.Zipf(config.num_chemicals, 0.8);
      g.AddIri(pub, N("chemical"), N("Chemical" + std::to_string(c + 1)));
    }
  }
  return g;
}

}  // namespace rapida::workload
