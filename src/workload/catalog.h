#ifndef RAPIDA_WORKLOAD_CATALOG_H_
#define RAPIDA_WORKLOAD_CATALOG_H_

#include <string>
#include <vector>

#include "util/statusor.h"

namespace rapida::workload {

/// One catalog query: the paper's G1–G9 (single grouping), MG1–MG18
/// (multi grouping) and AQ1 (the running ratio example), adapted to the
/// synthetic generators' schemas. `dataset` names the generator:
/// "bsbm", "chem", or "pubmed".
struct CatalogQuery {
  std::string id;
  std::string dataset;
  std::string description;
  std::string sparql;
};

/// All catalog queries in paper order.
const std::vector<CatalogQuery>& Catalog();

/// Lookup by id ("G1", "MG13", "AQ1", ...).
StatusOr<const CatalogQuery*> FindQuery(const std::string& id);

/// Ids of the queries belonging to one dataset, in catalog order.
std::vector<std::string> QueriesForDataset(const std::string& dataset);

}  // namespace rapida::workload

#endif  // RAPIDA_WORKLOAD_CATALOG_H_
