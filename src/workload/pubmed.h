#ifndef RAPIDA_WORKLOAD_PUBMED_H_
#define RAPIDA_WORKLOAD_PUBMED_H_

#include <cstdint>

#include "rdf/graph.h"

namespace rapida::workload {

/// Vocabulary namespace of the PubMed-like generator and queries.
inline constexpr char kPubmedNs[] = "http://pubmed.example/";

/// Synthetic publication warehouse modeled on the Bio2RDF PubMed release
/// (paper §5.1, 230 GB / 1.7 B triples, scaled down). Publications carry a
/// journal, a publication type ("Journal Article" common, "News" rare —
/// the MG15/MG16 selectivity pair), grants (agency + country), authors
/// (last names), and *heavily multi-valued* MeSH headings and chemicals —
/// the properties whose star-join blowup makes naive Hive materialize a
/// huge intermediate and run out of disk on MG13 (Table 4 footnote).
struct PubmedConfig {
  int num_publications = 2000;
  int num_journals = 40;
  int num_grants = 300;
  int num_agencies = 25;
  int num_countries = 12;
  int num_authors = 400;
  int num_mesh_terms = 200;
  int num_chemicals = 150;
  /// Mean multi-valued fanouts.
  double mesh_per_publication = 6.0;
  double chemicals_per_publication = 4.0;
  double authors_per_publication = 2.5;
  double grants_per_publication = 1.2;
  /// Fraction of publications typed "News" (the rest are Journal
  /// Articles).
  double news_fraction = 0.05;
  uint64_t seed = 20160317;
};

rdf::Graph GeneratePubmed(const PubmedConfig& config);

}  // namespace rapida::workload

#endif  // RAPIDA_WORKLOAD_PUBMED_H_
