#include "workload/catalog.h"

namespace rapida::workload {

namespace {

constexpr char kBsbmPrefix[] = "PREFIX : <http://bsbm.example/>\n";
constexpr char kChemPrefix[] = "PREFIX : <http://chem2bio2rdf.example/>\n";
constexpr char kPubPrefix[] = "PREFIX : <http://pubmed.example/>\n";

std::vector<CatalogQuery> BuildCatalog() {
  std::vector<CatalogQuery> q;

  // -------------------------------------------------------------------
  // BSBM single-grouping queries (Table 3 left).
  // G1/G3 use ProductType1 (low selectivity / many products), G2/G4 the
  // last type (high selectivity); G1/G2 GROUP BY ALL, G3/G4 BY feature.
  // -------------------------------------------------------------------
  auto bsbm_single = [](const std::string& type, bool by_feature) {
    std::string s = kBsbmPrefix;
    s += "SELECT ";
    if (by_feature) s += "?f ";
    s += "(COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {\n";
    s += "  ?p a :" + type + " . ?p :label ?l .\n";
    if (by_feature) s += "  ?p :productFeature ?f .\n";
    s += "  ?o :product ?p . ?o :price ?pr .\n}";
    if (by_feature) s += " GROUP BY ?f";
    return s;
  };
  q.push_back({"G1", "bsbm", "price stats, ProductType1 (lo), GROUP BY ALL",
               bsbm_single("ProductType1", false)});
  q.push_back({"G2", "bsbm", "price stats, ProductType10 (hi), GROUP BY ALL",
               bsbm_single("ProductType10", false)});
  q.push_back({"G3", "bsbm", "price stats, ProductType1 (lo), BY feature",
               bsbm_single("ProductType1", true)});
  q.push_back({"G4", "bsbm", "price stats, ProductType10 (hi), BY feature",
               bsbm_single("ProductType10", true)});

  // -------------------------------------------------------------------
  // BSBM multi-grouping queries MG1-MG4 (Fig. 8a/8b) + AQ1.
  // -------------------------------------------------------------------
  auto mg12 = [](const std::string& type) {
    std::string s = kBsbmPrefix;
    s += R"(SELECT ?f ?cntF ?sumF ?cntT ?sumT {
  { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF) {
      ?p2 a :)" + type + R"( . ?p2 :label ?l2 . ?p2 :productFeature ?f .
      ?off2 :product ?p2 . ?off2 :price ?pr2 .
    } GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT) {
      ?p1 a :)" + type + R"( . ?p1 :label ?l1 .
      ?off1 :product ?p1 . ?off1 :price ?pr .
    } }
})";
    return s;
  };
  q.push_back({"MG1", "bsbm",
               "avg price per feature vs across ALL features (lo)",
               mg12("ProductType1")});
  q.push_back({"MG2", "bsbm",
               "avg price per feature vs across ALL features (hi)",
               mg12("ProductType10")});

  auto mg34 = [](const std::string& type) {
    std::string s = kBsbmPrefix;
    s += R"(SELECT ?f ?c ?cntF ?sumF ?cntT ?sumT {
  { SELECT ?f ?c (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF) {
      ?p2 a :)" + type + R"( . ?p2 :label ?l2 . ?p2 :productFeature ?f .
      ?off2 :product ?p2 . ?off2 :price ?pr2 . ?off2 :vendor ?v2 .
      ?v2 :country ?c .
    } GROUP BY ?f ?c }
  { SELECT ?c (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT) {
      ?p1 a :)" + type + R"( . ?p1 :label ?l1 .
      ?off1 :product ?p1 . ?off1 :price ?pr . ?off1 :vendor ?v1 .
      ?v1 :country ?c .
    } GROUP BY ?c }
})";
    return s;
  };
  q.push_back({"MG3", "bsbm",
               "avg price per country-feature vs per country (lo)",
               mg34("ProductType1")});
  q.push_back({"MG4", "bsbm",
               "avg price per country-feature vs per country (hi)",
               mg34("ProductType10")});

  // MG1 variants exercising the OPTIONAL / UNION surface: MG-OPT groups
  // by the offers' sparse validFrom date via an OPTIONAL left star-join
  // (~60% of offers carry no date and group under the UNBOUND key — the
  // fixture pins that row), MG-UNION draws the detailed grouping's
  // products from a UNION of two types plus one pinned feature (join
  // distribution turns each arm into a branch).
  q.push_back({"MG-OPT", "bsbm",
               "price stats per (optional) validFrom date vs across ALL",
               std::string(kBsbmPrefix) + R"(SELECT ?vf ?cntF ?sumF ?cntT ?sumT {
  { SELECT ?vf (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF) {
      ?p2 a :ProductType1 . ?p2 :label ?l2 .
      ?off2 :product ?p2 . ?off2 :price ?pr2 .
      OPTIONAL { ?off2 :validFrom ?vf }
    } GROUP BY ?vf }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT) {
      ?p1 a :ProductType1 . ?p1 :label ?l1 .
      ?off1 :product ?p1 . ?off1 :price ?pr .
    } }
})"});

  q.push_back({"MG-UNION", "bsbm",
               "price stats per country, products from a 3-arm UNION",
               std::string(kBsbmPrefix) + R"(SELECT ?c ?cntC ?sumC ?cntT ?sumT {
  { SELECT ?c (COUNT(?pr2) AS ?cntC) (SUM(?pr2) AS ?sumC) {
      ?off2 :product ?p2 . ?off2 :price ?pr2 . ?off2 :vendor ?v2 .
      ?v2 :country ?c .
      { ?p2 a :ProductType1 }
      UNION { ?p2 a :ProductType10 }
      UNION { ?p2 :productFeature :ProductFeature1 }
    } GROUP BY ?c }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT) {
      ?off1 :product ?p1 . ?off1 :price ?pr . ?off1 :vendor ?v1 .
      ?v1 :country ?c1 .
    } }
})"});

  q.push_back(
      {"AQ1", "bsbm",
       "per country, feature price ratio vs price across features (Fig. 1)",
       std::string(kBsbmPrefix) + R"(SELECT ?f ?c ((?sumF / ?cntF) / (?sumT / ?cntT) AS ?ratio) {
  { SELECT ?f ?c (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF) {
      ?p2 a :ProductType2 . ?p2 :productFeature ?f .
      ?off2 :product ?p2 . ?off2 :price ?pr2 . ?off2 :vendor ?v2 .
      ?v2 :country ?c .
    } GROUP BY ?f ?c }
  { SELECT ?c (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT) {
      ?p1 a :ProductType2 .
      ?off1 :product ?p1 . ?off1 :price ?pr . ?off1 :vendor ?v1 .
      ?v1 :country ?c .
    } GROUP BY ?c }
})"});

  // -------------------------------------------------------------------
  // Chem2Bio2RDF single-grouping queries G5-G9 (Table 3 right).
  // -------------------------------------------------------------------
  q.push_back({"G5", "chem",
               "assays per compound sharing targets with Dexamethasone",
               std::string(kChemPrefix) + R"(SELECT ?cid (COUNT(?b) AS ?active_assays) {
  ?b :CID ?cid . ?b :outcome ?a . ?b :Score ?s1 . ?b :assay_gi ?gi .
  ?u :gi ?gi . ?u :geneSymbol ?g .
  ?di :gene ?g . ?di :DBID ?dr .
  ?dr :Generic_Name "Dexamethasone" .
} GROUP BY ?cid)"});

  q.push_back({"G6", "chem",
               "compounds active towards MAPK-pathway targets",
               std::string(kChemPrefix) + R"(SELECT ?cid (COUNT(?b) AS ?active_assays) {
  ?b :CID ?cid . ?b :outcome ?a . ?b :Score ?s1 . ?b :assay_gi ?gi .
  ?u :gi ?gi .
  ?pathway :protein ?u . ?pathway :Pathway_name ?pname .
  FILTER regex(?pname, "MAPK signaling pathway", "i")
} GROUP BY ?cid)"});

  q.push_back({"G7", "chem",
               "pathways with targets of hepatomegaly-associated drugs",
               std::string(kChemPrefix) + R"(SELECT ?pid (COUNT(?pathway) AS ?count) {
  ?sider :side_effect ?se . ?sider :cid ?cid .
  FILTER regex(?se, "hepatomegaly", "i")
  ?dr :CID ?cid .
  ?target :DBID ?dr . ?target :SwissProt_ID ?u .
  ?pathway :protein ?u . ?pathway :pathwayid ?pid .
} GROUP BY ?pid)"});

  q.push_back({"G8", "chem", "targets per drug with known gene symbols",
               std::string(kChemPrefix) + R"(SELECT ?dr (COUNT(?t) AS ?n) {
  ?t :DBID ?dr . ?t :SwissProt_ID ?u .
  ?u :geneSymbol ?g . ?u :gi ?gi .
} GROUP BY ?dr)"});

  q.push_back({"G9", "chem",
               "medline publications per gene symbol (large VP tables)",
               std::string(kChemPrefix) + R"(SELECT ?gs (COUNT(?pmid) AS ?n) {
  ?g :geneSymbol ?gs . ?g :gi ?gi .
  ?pmid :medline_gene ?g . ?pmid :side_effect ?se .
} GROUP BY ?gs)"});

  // -------------------------------------------------------------------
  // Chem2Bio2RDF multi-grouping queries MG6-MG10 (Fig. 8c).
  // -------------------------------------------------------------------
  q.push_back({"MG6", "chem",
               "targets per compound-gene vs per compound",
               std::string(kChemPrefix) + R"(SELECT ?cid ?g1 ?aPerCG ?aPerC {
  { SELECT ?cid ?g1 (COUNT(?b1) AS ?aPerCG) {
      ?b1 :CID ?cid . ?b1 :outcome ?a1 . ?b1 :Score ?s1 . ?b1 :assay_gi ?gi1 .
      ?u1 :gi ?gi1 . ?u1 :geneSymbol ?g1 .
      ?di1 :gene ?g1 . ?di1 :DBID ?dr1 .
    } GROUP BY ?cid ?g1 }
  { SELECT ?cid (COUNT(?b) AS ?aPerC) {
      ?b :CID ?cid . ?b :outcome ?a . ?b :Score ?s . ?b :assay_gi ?gi .
      ?u :gi ?gi . ?u :geneSymbol ?g .
      ?di :gene ?g . ?di :DBID ?dr .
    } GROUP BY ?cid }
})"});

  q.push_back({"MG7", "chem",
               "targets per compound-drug vs per compound",
               std::string(kChemPrefix) + R"(SELECT ?cid ?dr1 ?aPerCD ?aPerC {
  { SELECT ?cid ?dr1 (COUNT(?b1) AS ?aPerCD) {
      ?b1 :CID ?cid . ?b1 :outcome ?a1 . ?b1 :Score ?s1 . ?b1 :assay_gi ?gi1 .
      ?u1 :gi ?gi1 . ?u1 :geneSymbol ?g1 .
      ?di1 :gene ?g1 . ?di1 :DBID ?dr1 .
    } GROUP BY ?cid ?dr1 }
  { SELECT ?cid (COUNT(?b) AS ?aPerC) {
      ?b :CID ?cid . ?b :outcome ?a . ?b :Score ?s . ?b :assay_gi ?gi .
      ?u :gi ?gi . ?u :geneSymbol ?g .
      ?di :gene ?g . ?di :DBID ?dr .
    } GROUP BY ?cid }
})"});

  q.push_back({"MG8", "chem",
               "targets per compound-gene vs overall",
               std::string(kChemPrefix) + R"(SELECT ?cid ?g1 ?aPerCG ?aT {
  { SELECT ?cid ?g1 (COUNT(?b1) AS ?aPerCG) {
      ?b1 :CID ?cid . ?b1 :outcome ?a1 . ?b1 :Score ?s1 . ?b1 :assay_gi ?gi1 .
      ?u1 :gi ?gi1 . ?u1 :geneSymbol ?g1 .
      ?di1 :gene ?g1 . ?di1 :DBID ?dr1 .
    } GROUP BY ?cid ?g1 }
  { SELECT (COUNT(?b) AS ?aT) {
      ?b :CID ?cid2 . ?b :outcome ?a . ?b :Score ?s . ?b :assay_gi ?gi .
      ?u :gi ?gi . ?u :geneSymbol ?g .
      ?di :gene ?g . ?di :DBID ?dr .
    } }
})"});

  q.push_back({"MG9", "chem",
               "medline publications per gene vs total",
               std::string(kChemPrefix) + R"(SELECT ?gs ?pPerGene ?pT {
  { SELECT ?gs (COUNT(?pmid) AS ?pPerGene) {
      ?g :geneSymbol ?gs .
      ?pmid :medline_gene ?g . ?pmid :side_effect ?se .
    } GROUP BY ?gs }
  { SELECT (COUNT(?pmid1) AS ?pT) {
      ?g1 :geneSymbol ?gs1 .
      ?pmid1 :medline_gene ?g1 . ?pmid1 :side_effect ?se1 .
    } }
})"});

  q.push_back({"MG10", "chem",
               "publications per disease-gene vs per gene",
               std::string(kChemPrefix) + R"(SELECT ?d ?gs ?pPerDG ?pPerG {
  { SELECT ?d ?gs (COUNT(?pmid) AS ?pPerDG) {
      ?pmid :medline_gene ?g . ?pmid :side_effect ?se . ?pmid :disease ?d .
      ?g :geneSymbol ?gs .
    } GROUP BY ?d ?gs }
  { SELECT ?gs (COUNT(?pmid1) AS ?pPerG) {
      ?pmid1 :medline_gene ?g1 . ?pmid1 :side_effect ?se1 .
      ?g1 :geneSymbol ?gs .
    } GROUP BY ?gs }
})"});

  // -------------------------------------------------------------------
  // PubMed multi-grouping queries MG11-MG18 (Table 4).
  // -------------------------------------------------------------------
  q.push_back({"MG11", "pubmed",
               "grant-funded journals per country vs total",
               std::string(kPubPrefix) + R"(SELECT ?c ?cntC ?cntT {
  { SELECT ?c (COUNT(?g) AS ?cntC) {
      ?pub :journal ?j . ?pub :grant ?g .
      ?g :grant_agency ?ga . ?g :grant_country ?c .
    } GROUP BY ?c }
  { SELECT (COUNT(?g1) AS ?cntT) {
      ?pub1 :journal ?j1 . ?pub1 :grant ?g1 .
      ?g1 :grant_agency ?ga1 .
    } }
})"});

  q.push_back({"MG12", "pubmed",
               "grants per country-pubType vs per country",
               std::string(kPubPrefix) + R"(SELECT ?c ?pt ?perCT ?perC {
  { SELECT ?c ?pt (COUNT(?g) AS ?perCT) {
      ?pub :pub_type ?pt . ?pub :grant ?g .
      ?g :grant_agency ?ga . ?g :grant_country ?c .
    } GROUP BY ?c ?pt }
  { SELECT ?c (COUNT(?g1) AS ?perC) {
      ?pub1 :journal ?j1 . ?pub1 :grant ?g1 .
      ?g1 :grant_country ?c .
    } GROUP BY ?c }
})"});

  q.push_back({"MG13", "pubmed",
               "MeSH headings per author-pubType vs per pubType",
               std::string(kPubPrefix) + R"(SELECT ?a ?pty ?perAPT ?perPT {
  { SELECT ?a ?pty (COUNT(?m) AS ?perAPT) {
      ?p :pub_type ?pty . ?p :mesh_heading ?m . ?p :author ?a .
      ?a :last_name ?ln .
    } GROUP BY ?a ?pty }
  { SELECT ?pty (COUNT(?m1) AS ?perPT) {
      ?p1 :pub_type ?pty . ?p1 :mesh_heading ?m1 . ?p1 :author ?a1 .
      ?a1 :last_name ?ln1 .
    } GROUP BY ?pty }
})"});

  // MG13F: the Table 4 footnote fixture. One publication star carrying
  // THREE multi-valued predicates (mesh_heading x chemical x author) whose
  // flat star-join output is the per-subject cross product — the shape
  // whose materialization exhausted HDFS in the paper's naive-Hive MG13
  // run. Under d-representation the star join stores one group per
  // publication, so the same query survives a Dfs capacity limit the flat
  // path overflows (pinned in factorize_test.cc).
  q.push_back({"MG13F", "pubmed",
               "MG13 flat-overflow variant: MeSH x chemical x author star",
               std::string(kPubPrefix) + R"(SELECT ?pty ?perPT ?total {
  { SELECT ?pty (COUNT(?m) AS ?perPT) {
      ?p :pub_type ?pty . ?p :mesh_heading ?m . ?p :chemical ?ch .
      ?p :author ?a . ?a :last_name ?ln .
    } GROUP BY ?pty }
  { SELECT (COUNT(?m1) AS ?total) {
      ?p1 :pub_type ?pty1 . ?p1 :mesh_heading ?m1 . ?p1 :chemical ?ch1 .
      ?p1 :author ?a1 . ?a1 :last_name ?ln1 .
    } }
})"});

  q.push_back({"MG14", "pubmed",
               "chemicals per author-pubType vs per pubType",
               std::string(kPubPrefix) + R"(SELECT ?a ?pty ?perAPT ?perPT {
  { SELECT ?a ?pty (COUNT(?ch) AS ?perAPT) {
      ?p :pub_type ?pty . ?p :chemical ?ch . ?p :author ?a .
      ?a :last_name ?ln .
    } GROUP BY ?a ?pty }
  { SELECT ?pty (COUNT(?ch1) AS ?perPT) {
      ?p1 :pub_type ?pty . ?p1 :chemical ?ch1 . ?p1 :author ?a1 .
      ?a1 :last_name ?ln1 .
    } GROUP BY ?pty }
})"});

  auto mg1516 = [](const std::string& pub_type) {
    std::string s = kPubPrefix;
    s += R"(SELECT ?ln ?perA ?allA {
  { SELECT ?ln (COUNT(?ch) AS ?perA) {
      ?pub :pub_type ")" + pub_type + R"(" . ?pub :chemical ?ch . ?pub :author ?a .
      ?a :last_name ?ln .
    } GROUP BY ?ln }
  { SELECT (COUNT(?ch1) AS ?allA) {
      ?pub1 :pub_type ")" + pub_type + R"(" . ?pub1 :chemical ?ch1 . ?pub1 :author ?a1 .
      ?a1 :last_name ?ln1 .
    } }
})";
    return s;
  };
  q.push_back({"MG15", "pubmed",
               "chemicals per author last name, Journal Articles (lo)",
               mg1516("Journal Article")});
  q.push_back({"MG16", "pubmed",
               "chemicals per author last name, News (hi selectivity)",
               mg1516("News")});

  q.push_back({"MG17", "pubmed",
               "journal articles per grant country vs total",
               std::string(kPubPrefix) + R"(SELECT ?c ?perC ?total {
  { SELECT ?c (COUNT(?g) AS ?perC) {
      ?pub :pub_type "Journal Article" . ?pub :journal ?j . ?pub :grant ?g .
      ?g :grant_agency ?ga . ?g :grant_country ?c .
    } GROUP BY ?c }
  { SELECT (COUNT(?g1) AS ?total) {
      ?pub1 :pub_type "Journal Article" . ?pub1 :journal ?j1 . ?pub1 :grant ?g1 .
      ?g1 :grant_agency ?ga1 .
    } }
})"});

  q.push_back({"MG18", "pubmed",
               "journal articles per author-country vs per country",
               std::string(kPubPrefix) + R"(SELECT ?c ?a ?perAC ?perC {
  { SELECT ?c ?a (COUNT(?g) AS ?perAC) {
      ?p :pub_type "Journal Article" . ?p :author ?a . ?p :grant ?g .
      ?g :grant_agency ?ga . ?g :grant_country ?c .
    } GROUP BY ?c ?a }
  { SELECT ?c (COUNT(?g1) AS ?perC) {
      ?pub1 :pub_type "Journal Article" . ?pub1 :grant ?g1 .
      ?g1 :grant_agency ?ga1 . ?g1 :grant_country ?c .
    } GROUP BY ?c }
})"});

  // -------------------------------------------------------------------
  // ROLLUP-style extension queries (the paper's §6 future work): three
  // related groupings — the full ROLLUP lattice level-by-level —
  // evaluated by RAPIDAnalytics as ONE composite pattern + ONE parallel
  // Agg-Join cycle via the N-ary family rewriting.
  // -------------------------------------------------------------------
  q.push_back({"R1", "bsbm",
               "[extension] price rollup: (feature,country) / (country) / ()",
               std::string(kBsbmPrefix) + R"(SELECT ?f ?c ?sumFC ?sumC ?sumT {
  { SELECT ?f ?c (SUM(?pr2) AS ?sumFC) {
      ?p2 a :ProductType1 . ?p2 :label ?l2 . ?p2 :productFeature ?f .
      ?off2 :product ?p2 . ?off2 :price ?pr2 . ?off2 :vendor ?v2 .
      ?v2 :country ?c .
    } GROUP BY ?f ?c }
  { SELECT ?c (SUM(?pr1) AS ?sumC) {
      ?p1 a :ProductType1 . ?p1 :label ?l1 .
      ?off1 :product ?p1 . ?off1 :price ?pr1 . ?off1 :vendor ?v1 .
      ?v1 :country ?c .
    } GROUP BY ?c }
  { SELECT (SUM(?pr3) AS ?sumT) {
      ?p3 a :ProductType1 . ?p3 :label ?l3 .
      ?off3 :product ?p3 . ?off3 :price ?pr3 . ?off3 :vendor ?v3 .
      ?v3 :country ?c3 .
    } }
})"});

  q.push_back({"R2", "pubmed",
               "[extension] grant rollup: (country,agency) / (country) / ()",
               std::string(kPubPrefix) + R"(SELECT ?c ?ga ?perCA ?perC ?total {
  { SELECT ?c ?ga (COUNT(?g) AS ?perCA) {
      ?pub :journal ?j . ?pub :grant ?g .
      ?g :grant_agency ?ga . ?g :grant_country ?c .
    } GROUP BY ?c ?ga }
  { SELECT ?c (COUNT(?g1) AS ?perC) {
      ?pub1 :journal ?j1 . ?pub1 :grant ?g1 .
      ?g1 :grant_agency ?ga1 . ?g1 :grant_country ?c .
    } GROUP BY ?c }
  { SELECT (COUNT(?g2) AS ?total) {
      ?pub2 :journal ?j2 . ?pub2 :grant ?g2 .
      ?g2 :grant_agency ?ga2 . ?g2 :grant_country ?c2 .
    } }
})"});

  return q;
}

}  // namespace

const std::vector<CatalogQuery>& Catalog() {
  static const std::vector<CatalogQuery>* kCatalog =
      new std::vector<CatalogQuery>(BuildCatalog());
  return *kCatalog;
}

StatusOr<const CatalogQuery*> FindQuery(const std::string& id) {
  for (const CatalogQuery& q : Catalog()) {
    if (q.id == id) return &q;
  }
  return Status::NotFound("no catalog query with id '" + id + "'");
}

std::vector<std::string> QueriesForDataset(const std::string& dataset) {
  std::vector<std::string> out;
  for (const CatalogQuery& q : Catalog()) {
    if (q.dataset == dataset) out.push_back(q.id);
  }
  return out;
}

}  // namespace rapida::workload
