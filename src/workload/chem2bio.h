#ifndef RAPIDA_WORKLOAD_CHEM2BIO_H_
#define RAPIDA_WORKLOAD_CHEM2BIO_H_

#include <cstdint>

#include "rdf/graph.h"

namespace rapida::workload {

/// Vocabulary namespace of the Chem2Bio2RDF-like generator and queries.
inline constexpr char kChemNs[] = "http://chem2bio2rdf.example/";

/// Synthetic chemogenomics warehouse modeled on Chem2Bio2RDF (paper §5.1,
/// Chen et al., BMC Bioinformatics'10): PubChem bioassays linking
/// compounds to genes, gene entries, drug-gene interactions, DrugBank
/// drugs, KEGG pathways over proteins, SIDER side-effect records, drug
/// targets, and a *large* Medline publication table — the size skew behind
/// the paper's G5–G8 (small VP tables, map-join friendly) vs G9/MG9–MG10
/// (large VP tables) split.
struct ChemConfig {
  int num_compounds = 300;
  int num_genes = 120;
  int num_drugs = 60;
  int num_pathways = 25;
  int num_side_effects = 40;
  int num_diseases = 30;
  int num_assays = 1500;       // bioassay records
  int num_sider_records = 400;
  int num_targets = 150;
  int num_publications = 6000;  // Medline: the large relation
  uint64_t seed = 20160316;
};

rdf::Graph GenerateChem2Bio(const ChemConfig& config);

}  // namespace rapida::workload

#endif  // RAPIDA_WORKLOAD_CHEM2BIO_H_
