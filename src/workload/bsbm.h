#ifndef RAPIDA_WORKLOAD_BSBM_H_
#define RAPIDA_WORKLOAD_BSBM_H_

#include <cstdint>

#include "rdf/graph.h"

namespace rapida::workload {

/// Vocabulary namespace used by the BSBM-like generator and queries.
inline constexpr char kBsbmNs[] = "http://bsbm.example/";

/// Configuration of the BSBM-BI-like e-commerce generator (paper §5.1:
/// BSBM-500K and BSBM-2M, scaled down). Entity population mirrors the
/// benchmark: products with a type and 1–4 features, offers with price and
/// vendor, vendors with a country. Product types are Zipf-popular, so
/// ProductType1 is low-selectivity (many products) and the last type is
/// high-selectivity — the paper's lo/hi query variants.
struct BsbmConfig {
  int num_products = 1000;
  int num_product_types = 10;
  int num_features = 40;
  int num_vendors = 25;
  int num_countries = 8;
  double offers_per_product = 3.0;
  /// Probability that an offer carries the optional validFrom / validTo
  /// dates (structural irregularity typical of RDF).
  double optional_date_probability = 0.4;
  uint64_t seed = 20160315;
};

/// Generates the dataset deterministically from the config.
rdf::Graph GenerateBsbm(const BsbmConfig& config);

}  // namespace rapida::workload

#endif  // RAPIDA_WORKLOAD_BSBM_H_
