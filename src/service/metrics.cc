#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rapida::service {

namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(seconds);
  sum_ += seconds;
  max_ = std::max(max_, seconds);
}

uint64_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

double LatencyHistogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

double LatencyHistogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.empty() ? 0 : sum_ / static_cast<double>(samples_.size());
}

double LatencyHistogram::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

std::string LatencyHistogram::ToJson() const {
  uint64_t n = count();
  return "{\"count\":" + std::to_string(n) + ",\"mean\":" + Num(Mean()) +
         ",\"p50\":" + Num(Quantile(0.5)) + ",\"p90\":" + Num(Quantile(0.9)) +
         ",\"p99\":" + Num(Quantile(0.99)) + ",\"max\":" + Num(Max()) + "}";
}

void ServiceMetrics::Add(uint64_t* counter, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  *counter += n;
}

uint64_t ServiceMetrics::Get(const uint64_t* counter) const {
  std::lock_guard<std::mutex> lock(mu_);
  return *counter;
}

void ServiceMetrics::IncrBatches(uint64_t queries_in_batch) {
  std::lock_guard<std::mutex> lock(mu_);
  batches_++;
  batched_queries_ += queries_in_batch;
}

void ServiceMetrics::RecordInvalidation(uint64_t entries, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  invalidations_++;
  invalidated_entries_ += entries;
  invalidated_bytes_ += bytes;
}

void ServiceMetrics::RecordQueueDepth(int depth) {
  std::lock_guard<std::mutex> lock(mu_);
  max_queue_depth_ = std::max(max_queue_depth_, depth);
}

int ServiceMetrics::max_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_queue_depth_;
}

void ServiceMetrics::RecordShuffle(
    uint64_t local_bytes, uint64_t cross_bytes,
    const std::vector<uint64_t>& per_shard_output_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  shuffle_local_bytes_ += local_bytes;
  shuffle_cross_bytes_ += cross_bytes;
  if (shard_output_bytes_.size() < per_shard_output_bytes.size()) {
    shard_output_bytes_.resize(per_shard_output_bytes.size(), 0);
  }
  for (size_t s = 0; s < per_shard_output_bytes.size(); ++s) {
    shard_output_bytes_[s] += per_shard_output_bytes[s];
  }
}

std::vector<uint64_t> ServiceMetrics::shard_output_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shard_output_bytes_;
}

void ServiceMetrics::RecordFactorization(uint64_t groups,
                                         uint64_t flat_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  factorized_groups_ += groups;
  factorized_flat_rows_ += flat_rows;
}

double ServiceMetrics::factorization_factor() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (factorized_groups_ == 0) return 1.0;
  return static_cast<double>(factorized_flat_rows_) /
         static_cast<double>(factorized_groups_);
}

std::string ServiceMetrics::ToJson() const {
  std::string json = "{";
  {
    std::lock_guard<std::mutex> lock(mu_);
    json += "\"admitted\":" + std::to_string(admitted_);
    json += ",\"rejected\":" + std::to_string(rejected_);
    json += ",\"completed\":" + std::to_string(completed_);
    json += ",\"failed\":" + std::to_string(failed_);
    json += ",\"deadline_exceeded\":" + std::to_string(deadline_exceeded_);
    json += ",\"batches\":" + std::to_string(batches_);
    json += ",\"batched_queries\":" + std::to_string(batched_queries_);
    json += ",\"shared_scan_fallback\":" + std::to_string(shared_scan_fallback_);
    json += ",\"invalidations\":" + std::to_string(invalidations_);
    json += ",\"invalidated_entries\":" + std::to_string(invalidated_entries_);
    json += ",\"invalidated_bytes\":" + std::to_string(invalidated_bytes_);
    json += ",\"store_hits\":" + std::to_string(store_hits_);
    json += ",\"store_patched\":" + std::to_string(store_patched_);
    json += ",\"store_recomputes\":" + std::to_string(store_recomputes_);
    json += ",\"shuffle_local_bytes\":" + std::to_string(shuffle_local_bytes_);
    json += ",\"shuffle_cross_bytes\":" + std::to_string(shuffle_cross_bytes_);
    json += ",\"factorized_groups\":" + std::to_string(factorized_groups_);
    json +=
        ",\"factorized_flat_rows\":" + std::to_string(factorized_flat_rows_);
    json += ",\"factorization_factor\":" +
            Num(factorized_groups_ == 0
                    ? 1.0
                    : static_cast<double>(factorized_flat_rows_) /
                          static_cast<double>(factorized_groups_));
    json += ",\"shard_output_bytes\":[";
    for (size_t s = 0; s < shard_output_bytes_.size(); ++s) {
      if (s > 0) json += ",";
      json += std::to_string(shard_output_bytes_[s]);
    }
    json += "]";
    json += ",\"max_queue_depth\":" + std::to_string(max_queue_depth_);
  }
  json += ",\"latency\":" + latency_.ToJson();
  json += ",\"queue_wait\":" + queue_wait_.ToJson();
  json += "}";
  return json;
}

}  // namespace rapida::service
