#ifndef RAPIDA_SERVICE_METRICS_H_
#define RAPIDA_SERVICE_METRICS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rapida::service {

/// Fixed-boundary latency histogram (log-spaced buckets) with exact
/// streaming quantile support via the recorded sample list — the service
/// workloads are small enough (thousands of queries) that keeping the
/// samples beats approximating. Thread-safe.
class LatencyHistogram {
 public:
  void Record(double seconds);

  uint64_t count() const;
  double Quantile(double q) const;  // q in [0,1]; 0 when empty
  double Mean() const;
  double Max() const;

  /// {"count":N,"mean":..,"p50":..,"p90":..,"p99":..,"max":..}
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
  double sum_ = 0;
  double max_ = 0;
};

/// Monotonic counter / gauge set for the service, snapshot as JSON.
/// Thread-safe.
class ServiceMetrics {
 public:
  LatencyHistogram& latency() { return latency_; }
  LatencyHistogram& queue_wait() { return queue_wait_; }

  void IncrAdmitted() { Add(&admitted_); }
  void IncrRejected() { Add(&rejected_); }
  void IncrCompleted() { Add(&completed_); }
  void IncrFailed() { Add(&failed_); }
  void IncrDeadlineExceeded() { Add(&deadline_exceeded_); }
  void IncrBatches(uint64_t queries_in_batch);
  void IncrSharedScanFallback() { Add(&shared_scan_fallback_); }
  void RecordQueueDepth(int depth);
  /// One mutation's wholesale result-cache invalidation: how many cached
  /// entries (and bytes) it dropped.
  void RecordInvalidation(uint64_t entries, uint64_t bytes);
  /// Query answered from the materialization store (zero MapReduce jobs).
  void IncrStoreHit() { Add(&store_hits_); }
  /// Artifact patched algebraically from a mutation delta.
  void IncrStorePatched() { Add(&store_patched_); }
  /// Artifact dropped to recompute (non-incrementalizable or patch failed).
  void IncrStoreRecompute() { Add(&store_recomputes_); }
  /// Shuffle placement of one finished workflow: bytes that stayed on
  /// their shard vs bytes that crossed the shard channel, plus each
  /// shard's private output-segment bytes (per_shard index = shard id;
  /// shorter vectors extend the tracked width).
  void RecordShuffle(uint64_t local_bytes, uint64_t cross_bytes,
                     const std::vector<uint64_t>& per_shard_output_bytes);
  /// Factorized (d-representation) intermediates of one finished workflow:
  /// groups emitted and the flat rows those groups stand for
  /// (WorkflowStats::TotalFactorizedGroups/-FlatRows).
  void RecordFactorization(uint64_t groups, uint64_t flat_rows);

  uint64_t admitted() const { return Get(&admitted_); }
  uint64_t rejected() const { return Get(&rejected_); }
  uint64_t completed() const { return Get(&completed_); }
  uint64_t failed() const { return Get(&failed_); }
  uint64_t deadline_exceeded() const { return Get(&deadline_exceeded_); }
  uint64_t batches() const { return Get(&batches_); }
  uint64_t batched_queries() const { return Get(&batched_queries_); }
  uint64_t invalidations() const { return Get(&invalidations_); }
  uint64_t invalidated_entries() const { return Get(&invalidated_entries_); }
  uint64_t invalidated_bytes() const { return Get(&invalidated_bytes_); }
  uint64_t store_hits() const { return Get(&store_hits_); }
  uint64_t store_patched() const { return Get(&store_patched_); }
  uint64_t store_recomputes() const { return Get(&store_recomputes_); }
  uint64_t shuffle_local_bytes() const { return Get(&shuffle_local_bytes_); }
  uint64_t shuffle_cross_bytes() const { return Get(&shuffle_cross_bytes_); }
  uint64_t factorized_groups() const { return Get(&factorized_groups_); }
  uint64_t factorized_flat_rows() const {
    return Get(&factorized_flat_rows_);
  }
  /// flat rows / groups over everything recorded; 1.0 with no groups.
  double factorization_factor() const;
  std::vector<uint64_t> shard_output_bytes() const;
  int max_queue_depth() const;

  /// One JSON object with counters, queue stats, and both histograms
  /// (cache stats are appended by the service, which owns the caches).
  std::string ToJson() const;

 private:
  void Add(uint64_t* counter, uint64_t n = 1);
  uint64_t Get(const uint64_t* counter) const;

  mutable std::mutex mu_;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t deadline_exceeded_ = 0;
  uint64_t batches_ = 0;
  uint64_t batched_queries_ = 0;
  uint64_t shared_scan_fallback_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t invalidated_entries_ = 0;
  uint64_t invalidated_bytes_ = 0;
  uint64_t store_hits_ = 0;
  uint64_t store_patched_ = 0;
  uint64_t store_recomputes_ = 0;
  uint64_t shuffle_local_bytes_ = 0;
  uint64_t shuffle_cross_bytes_ = 0;
  uint64_t factorized_groups_ = 0;
  uint64_t factorized_flat_rows_ = 0;
  std::vector<uint64_t> shard_output_bytes_;
  int max_queue_depth_ = 0;
  LatencyHistogram latency_;
  LatencyHistogram queue_wait_;
};

}  // namespace rapida::service

#endif  // RAPIDA_SERVICE_METRICS_H_
