#include "service/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace rapida::service {

JobScheduler::JobScheduler(const mr::ClusterConfig& cluster_config)
    : map_slots_(cluster_config.map_slots()) {}

int JobScheduler::OpenSession(std::string name, double weight) {
  RAPIDA_CHECK(weight > 0) << "session weight must be positive";
  std::lock_guard<std::mutex> lock(mu_);
  SessionStats s;
  s.name = std::move(name);
  s.weight = weight;
  sessions_.push_back(std::move(s));
  return static_cast<int>(sessions_.size()) - 1;
}

double JobScheduler::ScheduleLocked(size_t s, double demand) {
  // Fluid GPS over simulated time. The session's work starts at its own
  // clock (its jobs are sequential) and progresses at rate
  // w_s / Σ{w_o : session o still busy}. Other sessions' busy_until
  // instants partition the timeline into intervals of constant rate;
  // integrate demand across them.
  SessionStats& self = sessions_[s];
  double t = self.busy_until_sim_s;
  double remaining = demand;

  while (remaining > 1e-12) {
    double active_weight = self.weight;
    double next_boundary = std::numeric_limits<double>::infinity();
    for (size_t o = 0; o < sessions_.size(); ++o) {
      if (o == s) continue;
      if (sessions_[o].busy_until_sim_s > t) {
        active_weight += sessions_[o].weight;
        next_boundary = std::min(next_boundary, sessions_[o].busy_until_sim_s);
      }
    }
    double rate = self.weight / active_weight;  // fraction of the cluster
    if (!std::isfinite(next_boundary)) {
      t += remaining / rate;
      remaining = 0;
      break;
    }
    double interval = next_boundary - t;
    double progress = interval * rate;
    if (progress >= remaining) {
      t += remaining / rate;
      remaining = 0;
    } else {
      remaining -= progress;
      t = next_boundary;
    }
  }

  double scheduled = t - self.busy_until_sim_s;
  self.busy_until_sim_s = t;
  return scheduled;
}

void JobScheduler::Account(int session, mr::JobStats* stats) {
  RAPIDA_CHECK(stats != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  RAPIDA_CHECK(session >= 0 &&
               static_cast<size_t>(session) < sessions_.size())
      << "unknown session " << session;
  SessionStats& self = sessions_[static_cast<size_t>(session)];
  double demand = stats->sim_seconds;
  double scheduled = ScheduleLocked(static_cast<size_t>(session), demand);
  stats->sched_sim_seconds = scheduled;
  stats->sched_stretch = demand > 0 ? scheduled / demand : 1.0;
  self.jobs++;
  self.demand_sim_s += demand;
  self.charged_sim_s += scheduled;
  // The cost model already caps a job's parallelism at the slot count, so
  // solo duration × slots bounds the slot·seconds it occupied.
  self.slot_seconds += demand * map_slots_;
}

double JobScheduler::AccountCost(int session, double sim_seconds,
                                 double slot_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  RAPIDA_CHECK(session >= 0 &&
               static_cast<size_t>(session) < sessions_.size())
      << "unknown session " << session;
  SessionStats& self = sessions_[static_cast<size_t>(session)];
  double scheduled = ScheduleLocked(static_cast<size_t>(session), sim_seconds);
  self.jobs++;
  self.demand_sim_s += sim_seconds;
  self.charged_sim_s += scheduled;
  self.slot_seconds += slot_seconds;
  return scheduled;
}

JobScheduler::SessionStats JobScheduler::Stats(int session) const {
  std::lock_guard<std::mutex> lock(mu_);
  RAPIDA_CHECK(session >= 0 &&
               static_cast<size_t>(session) < sessions_.size())
      << "unknown session " << session;
  return sessions_[static_cast<size_t>(session)];
}

int JobScheduler::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

std::vector<JobScheduler::SessionStats> JobScheduler::AllStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_;
}

double JobScheduler::MakespanSimSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double makespan = 0;
  for (const SessionStats& s : sessions_) {
    makespan = std::max(makespan, s.busy_until_sim_s);
  }
  return makespan;
}

double JobScheduler::TotalDemandSimSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0;
  for (const SessionStats& s : sessions_) total += s.demand_sim_s;
  return total;
}

}  // namespace rapida::service
