#include "service/cache.h"

#include <utility>

#include "plan/planner.h"
#include "sparql/parser.h"
#include "util/logging.h"

namespace rapida::service {

StatusOr<std::string> CanonicalFingerprint(const std::string& query_text) {
  RAPIDA_ASSIGN_OR_RETURN(std::unique_ptr<sparql::SelectQuery> parsed,
                          sparql::ParseQuery(query_text));
  return parsed->ToString();
}

StatusOr<PlanCache::Entry> PlanCache::GetOrAnalyze(
    const std::string& query_text) {
  RAPIDA_ASSIGN_OR_RETURN(std::unique_ptr<sparql::SelectQuery> parsed,
                          sparql::ParseQuery(query_text));
  std::string fingerprint = parsed->ToString();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_text_.find(fingerprint);
    if (it != by_text_.end()) {
      hits_++;
      return it->second;
    }
  }
  // Analyze and plan outside the lock; concurrent misses on the same
  // fingerprint do redundant work once but reach the same immutable
  // analysis.
  RAPIDA_ASSIGN_OR_RETURN(analytics::AnalyticalQuery analyzed,
                          analytics::AnalyzeQuery(*parsed));
  Entry entry;
  entry.fingerprint = fingerprint;
  StatusOr<plan::PhysicalPlan> canonical =
      plan::CanonicalOptimizedPlan(analyzed);
  entry.plan_fingerprint = canonical.ok()
                               ? canonical->FingerprintHash()
                               : plan::CanonicalPlanFingerprint(analyzed);
  entry.query = std::make_shared<const analytics::AnalyticalQuery>(
      std::move(analyzed));
  std::lock_guard<std::mutex> lock(mu_);
  misses_++;
  auto plan_it = by_plan_.find(entry.plan_fingerprint);
  if (plan_it != by_plan_.end()) {
    // New surface text, known optimized plan: share it.
    plan_hits_++;
    entry.optimized = plan_it->second;
  } else {
    if (canonical.ok()) {
      entry.optimized = std::make_shared<const plan::PhysicalPlan>(
          std::move(*canonical));
    }
    by_plan_.emplace(entry.plan_fingerprint, entry.optimized);
  }
  auto [it, inserted] = by_text_.emplace(fingerprint, entry);
  return it->second;
}

uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t PlanCache::plan_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_hits_;
}

uint64_t PlanCache::distinct_plans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_plan_.size();
}

std::string ResultCache::Key(const std::string& fingerprint,
                             const std::string& dataset, uint64_t version) {
  return dataset + "@v" + std::to_string(version) + "\n" + fingerprint;
}

uint64_t ResultCache::TableBytes(const analytics::BindingTable& table) {
  uint64_t bytes = 0;
  for (const std::string& v : table.vars()) bytes += v.size() + 16;
  bytes += table.NumRows() * table.NumCols() * sizeof(rdf::TermId);
  return bytes + 64;
}

std::shared_ptr<const analytics::BindingTable> ResultCache::Get(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_++;
    return nullptr;
  }
  hits_++;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->table;
}

void ResultCache::Put(const std::string& key, analytics::BindingTable table,
                      uint64_t serialized_bytes) {
  uint64_t bytes =
      serialized_bytes > 0 ? serialized_bytes + 64 : TableBytes(table);
  if (bytes > byte_budget_) return;
  // Key layout is "<dataset>@v<version>\n<fingerprint>".
  std::string dataset = key.substr(0, key.find('@'));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_used_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  Entry entry;
  entry.key = key;
  entry.dataset = std::move(dataset);
  entry.table =
      std::make_shared<const analytics::BindingTable>(std::move(table));
  entry.bytes = bytes;
  bytes_used_ += bytes;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  EvictToFitLocked();
}

void ResultCache::EvictToFitLocked() {
  while (bytes_used_ > byte_budget_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    bytes_used_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_++;
  }
}

ResultCache::Invalidated ResultCache::InvalidateDataset(
    const std::string& dataset) {
  Invalidated dropped;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->dataset == dataset) {
      dropped.entries++;
      dropped.bytes += it->bytes;
      bytes_used_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

uint64_t ResultCache::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_used_;
}

}  // namespace rapida::service
