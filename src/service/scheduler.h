#ifndef RAPIDA_SERVICE_SCHEDULER_H_
#define RAPIDA_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/counters.h"

namespace rapida::service {

/// Weighted fair-share accounting of the simulated cluster across
/// concurrent sessions.
///
/// The execution substrate is exact but *simulated*: every MR job reports
/// the solo simulated duration the cost model derives from its counters.
/// When several sessions' jobs are in flight, each query no longer owns
/// all map/reduce slots — the scheduler extends the cost model with slot
/// contention by running a generalized-processor-sharing fluid model over
/// simulated time: while k weighted sessions have backlogged work, session
/// s progresses at rate w_s / Σw, so a job's scheduled duration stretches
/// by the inverse of its session's share instead of waiting behind entire
/// foreign queries (FIFO). That is the fairness property: a light query
/// competing with a heavy one pays a proportional slowdown, never the
/// heavy query's full latency.
///
/// All methods are thread-safe; accounting order is the arrival order of
/// completed jobs.
class JobScheduler {
 public:
  struct SessionStats {
    std::string name;
    double weight = 1.0;
    uint64_t jobs = 0;
    /// Simulated instant the session's accounted work finishes.
    double busy_until_sim_s = 0;
    /// Σ solo simulated seconds of the session's jobs (its raw demand).
    double demand_sim_s = 0;
    /// Σ contention-adjusted simulated seconds actually charged.
    double charged_sim_s = 0;
    /// Σ slot·seconds the session occupied (solo duration × parallel
    /// slots the cost model granted the job).
    double slot_seconds = 0;
  };

  explicit JobScheduler(const mr::ClusterConfig& cluster_config);

  /// Registers a session; heavier weights get proportionally larger slot
  /// shares under contention. Returns the session id.
  int OpenSession(std::string name, double weight = 1.0);

  /// Accounts one completed MR job of `session`: computes the scheduled
  /// (contention-stretched) duration, fills stats->sched_stretch /
  /// sched_sim_seconds, and advances the session's simulated clock.
  void Account(int session, mr::JobStats* stats);

  /// Accounts `sim_seconds` of raw demand without per-job counters (a
  /// session's share of a batched shared scan). Returns the scheduled
  /// duration charged.
  double AccountCost(int session, double sim_seconds, double slot_seconds);

  SessionStats Stats(int session) const;
  std::vector<SessionStats> AllStats() const;
  int num_sessions() const;

  /// Simulated completion time of all accounted work (max over sessions)
  /// — the burst makespan the service bench reports.
  double MakespanSimSeconds() const;

  /// Σ raw demand over all sessions (what a serial, share-nothing replay
  /// of the same jobs would cost in simulated time).
  double TotalDemandSimSeconds() const;

 private:
  /// GPS fluid model: processes `demand` simulated seconds of session `s`
  /// work starting at its clock, sharing capacity with every other
  /// session whose accounted work extends past that instant. Returns the
  /// scheduled duration. Caller holds mu_.
  double ScheduleLocked(size_t s, double demand);

  const int map_slots_;
  mutable std::mutex mu_;
  std::vector<SessionStats> sessions_;
};

}  // namespace rapida::service

#endif  // RAPIDA_SERVICE_SCHEDULER_H_
