#include "service/query_service.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "analytics/analytical_query.h"
#include "engines/rapid_analytics.h"
#include "engines/shared_scan.h"
#include "plan/planner.h"
#include "rdf/graph_index.h"
#include "sparql/parser.h"
#include "storage/ivm.h"
#include "util/logging.h"

namespace rapida::service {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Books one finished workflow's shuffle placement (local vs cross-shard
/// bytes, per-shard output segments) and its factorized-intermediate
/// counters (d-representation groups vs the flat rows they stand for)
/// into the service counters.
void RecordWorkflowShuffle(ServiceMetrics* metrics,
                           const std::vector<mr::JobStats>& jobs) {
  uint64_t local = 0;
  uint64_t cross = 0;
  uint64_t fgroups = 0;
  uint64_t frows = 0;
  std::vector<uint64_t> per_shard;
  for (const mr::JobStats& j : jobs) {
    local += j.shuffle_local_bytes;
    cross += j.shuffle_cross_bytes;
    fgroups += j.factorized_groups;
    frows += j.factorized_flat_rows;
    if (per_shard.size() < j.shard_output_bytes.size()) {
      per_shard.resize(j.shard_output_bytes.size(), 0);
    }
    for (size_t s = 0; s < j.shard_output_bytes.size(); ++s) {
      per_shard[s] += j.shard_output_bytes[s];
    }
  }
  metrics->RecordShuffle(local, cross, per_shard);
  if (fgroups > 0) metrics->RecordFactorization(fgroups, frows);
}

/// Per-query cluster observer: cancels the workflow at the next phase
/// boundary once the wall deadline passes, and charges every completed
/// job to the session's fair share.
class QueryObserver : public mr::ClusterObserver {
 public:
  QueryObserver(JobScheduler* scheduler, int session,
                Clock::time_point deadline, bool has_deadline)
      : scheduler_(scheduler),
        session_(session),
        deadline_(deadline),
        has_deadline_(has_deadline) {}

  Status OnPhase(const std::string& job_name, const char* phase) override {
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("query deadline expired in job '" +
                                      job_name + "' at phase '" + phase +
                                      "'");
    }
    return Status::OK();
  }

  void OnJobComplete(mr::JobStats* stats) override {
    scheduler_->Account(session_, stats);
  }

 private:
  JobScheduler* scheduler_;
  int session_;
  Clock::time_point deadline_;
  bool has_deadline_;
};

}  // namespace

QueryService::QueryService(const ServiceOptions& options)
    : options_(options),
      scheduler_(options.cluster),
      result_cache_(options.result_cache_bytes) {
  if (!options_.store_dir.empty()) {
    storage::ArtifactStore::Options so;
    so.dir = options_.store_dir;
    so.byte_budget = options_.store_byte_budget;
    StatusOr<std::unique_ptr<storage::ArtifactStore>> opened =
        storage::ArtifactStore::Open(so);
    if (opened.ok()) {
      store_ = std::move(*opened);
    } else {
      // A broken store directory degrades to store-less serving; queries
      // still execute, they just never hit or publish artifacts.
      RAPIDA_LOG(Warning) << "materialization store disabled: "
                          << opened.status().ToString();
    }
  }
  int workers = std::max(1, options_.workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::RegisterDataset(const std::string& name,
                                   engine::Dataset* dataset) {
  RAPIDA_CHECK(dataset != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = datasets_[name];
  RAPIDA_CHECK(slot == nullptr) << "dataset registered twice: " << name;
  slot = std::make_unique<Registered>();
  slot->dataset = dataset;
}

int QueryService::OpenSession(const std::string& name, double weight) {
  return scheduler_.OpenSession(name, weight);
}

StatusOr<std::future<Response>> QueryService::Submit(int session,
                                                     const QuerySpec& spec) {
  if (session < 0 || session >= scheduler_.num_sessions()) {
    return Status::InvalidArgument("unknown session " +
                                   std::to_string(session));
  }

  auto pending = std::make_unique<Pending>();
  pending->session = session;
  pending->spec = spec;
  pending->submitted = Clock::now();
  if (spec.deadline_s > 0) {
    pending->has_deadline = true;
    pending->deadline =
        pending->submitted + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(spec.deadline_s));
  }

  // Parse / analyze up front (through the plan cache): a malformed query
  // is rejected synchronously and never occupies a queue slot.
  if (options_.enable_plan_cache) {
    RAPIDA_ASSIGN_OR_RETURN(PlanCache::Entry entry,
                            plan_cache_.GetOrAnalyze(spec.text));
    pending->fingerprint = std::move(entry.fingerprint);
    pending->plan_fingerprint = std::move(entry.plan_fingerprint);
    pending->plan = std::move(entry.query);
  } else {
    RAPIDA_ASSIGN_OR_RETURN(std::unique_ptr<sparql::SelectQuery> parsed,
                            sparql::ParseQuery(spec.text));
    pending->fingerprint = parsed->ToString();
    RAPIDA_ASSIGN_OR_RETURN(analytics::AnalyticalQuery analyzed,
                            analytics::AnalyzeQuery(*parsed));
    pending->plan_fingerprint = plan::CanonicalPlanFingerprint(analyzed);
    pending->plan = std::make_shared<const analytics::AnalyticalQuery>(
        std::move(analyzed));
  }

  std::future<Response> future = pending->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      metrics_.IncrRejected();
      return Status::Unavailable("service is shut down");
    }
    auto it = datasets_.find(spec.dataset);
    if (it == datasets_.end()) {
      metrics_.IncrRejected();
      return Status::NotFound("dataset not registered: " + spec.dataset);
    }
    if (queue_.size() >= options_.max_queue_depth) {
      metrics_.IncrRejected();
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_.size()) + "/" +
          std::to_string(options_.max_queue_depth) +
          " queries queued); retry later");
    }
    pending->dataset = it->second.get();
    pending->id = next_query_id_++;
    queue_.push_back(std::move(pending));
    metrics_.IncrAdmitted();
    metrics_.RecordQueueDepth(static_cast<int>(queue_.size()));
  }
  queue_cv_.notify_one();
  return future;
}

Response QueryService::Execute(int session, const QuerySpec& spec) {
  StatusOr<std::future<Response>> submitted = Submit(session, spec);
  if (!submitted.ok()) {
    Response r;
    r.result = submitted.status();
    return r;
  }
  return submitted->get();
}

Status QueryService::Mutate(
    const std::string& dataset,
    const std::vector<engine::Dataset::TripleUpdate>& triples) {
  Registered* reg = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(dataset);
    if (it == datasets_.end()) {
      return Status::NotFound("dataset not registered: " + dataset);
    }
    reg = it->second.get();
  }
  // Exclusive: waits out every running query on this dataset, and no new
  // one starts until the layouts are dropped and the version is bumped.
  std::unique_lock<std::shared_mutex> exclusive(reg->rw);
  uint64_t old_hash = store_ != nullptr ? reg->dataset->ContentHash() : 0;
  std::vector<rdf::Triple> added;
  RAPIDA_RETURN_IF_ERROR(reg->dataset->AddTriples(
      triples, store_ != nullptr ? &added : nullptr));
  ResultCache::Invalidated dropped = result_cache_.InvalidateDataset(dataset);
  metrics_.RecordInvalidation(dropped.entries, dropped.bytes);
  if (store_ != nullptr) {
    MaintainArtifacts(dataset, reg->dataset, old_hash, std::move(added));
  }
  return Status::OK();
}

void QueryService::MaintainArtifacts(const std::string& name,
                                     engine::Dataset* dataset,
                                     uint64_t old_hash,
                                     std::vector<rdf::Triple> added) {
  uint64_t new_hash = dataset->ContentHash();
  if (new_hash == old_hash) return;  // every triple was a duplicate
  std::vector<storage::ArtifactMeta> metas =
      store_->ListForDataset(name, old_hash);
  if (metas.empty()) return;

  storage::DeltaPartition delta =
      storage::DeltaPartition::FromAdded(std::move(added));
  // One index over the post-mutation graph serves every artifact patch.
  rdf::GraphIndex index(dataset->graph());

  for (const storage::ArtifactMeta& meta : metas) {
    storage::IvmClass cls = storage::IvmClassFromName(meta.ivm_class);
    bool patched = false;
    if (options_.enable_ivm && cls != storage::IvmClass::kNone) {
      // The canonical text round-trips through the parser, so a restarted
      // process can re-analyze an artifact it never planned itself.
      StatusOr<PlanCache::Entry> entry =
          plan_cache_.GetOrAnalyze(meta.canonical_query);
      StatusOr<storage::Artifact> art =
          entry.ok() ? store_->Get(meta.plan_fingerprint, old_hash)
                     : StatusOr<storage::Artifact>(entry.status());
      StatusOr<analytics::BindingTable> base =
          art.ok() ? storage::DeserializeArtifact(*art, &dataset->dict())
                   : StatusOr<analytics::BindingTable>(art.status());
      StatusOr<analytics::BindingTable> next =
          base.ok() ? storage::PatchResult(*entry->query, cls, *base, delta,
                                           index, &dataset->dict())
                    : std::move(base);
      if (next.ok()) {
        storage::Artifact updated;
        updated.meta = meta;
        updated.meta.content_hash = new_hash;
        // The patch may break (or create) the cross-product shape, so the
        // layout is re-decided from the patched rows, never inherited.
        updated.meta.factorization.clear();
        if (!storage::FactorizeTable(*next, dataset->dict(), &updated.rows,
                                     &updated.meta.factorization)) {
          updated.rows = storage::SerializeTable(*next, dataset->dict());
        }
        if (store_->Put(updated).ok()) {
          patched = true;
          metrics_.IncrStorePatched();
          if (options_.enable_result_cache) {
            // The patched table is also the freshest in-memory answer.
            result_cache_.Put(ResultCache::Key(entry->fingerprint, name,
                                               dataset->version()),
                              std::move(*next));
          }
        }
      }
    }
    if (!patched) metrics_.IncrStoreRecompute();
    // The old-generation artifact keys a dataset state that no longer
    // exists; drop it rather than letting it age out of the budget.
    store_->Remove(meta.plan_fingerprint, old_hash);
  }
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void QueryService::WorkerLoop() {
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch = NextBatch();
    if (batch.empty()) return;
    Serve(std::move(batch));
  }
}

std::vector<std::unique_ptr<QueryService::Pending>> QueryService::NextBatch() {
  std::vector<std::unique_ptr<Pending>> batch;
  std::unique_lock<std::mutex> lock(mu_);
  queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
  if (queue_.empty()) return batch;  // shutdown and drained

  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  Pending* head = batch[0].get();

  // A deadline makes a query un-batchable: the whole batch shares jobs,
  // so cancelling on one member's deadline would cancel the others too.
  if (!options_.enable_batching || head->has_deadline) return batch;

  auto collect = [&] {
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < options_.max_batch;) {
      Pending* q = it->get();
      if (q->dataset == head->dataset && !q->has_deadline) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  };
  collect();
  if (options_.batch_window_ms > 0 && batch.size() < options_.max_batch &&
      !shutdown_) {
    // Linger briefly for companions; wake early when anything arrives.
    queue_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(
                  options_.batch_window_ms),
        [this] { return shutdown_ || !queue_.empty(); });
    collect();
  }
  return batch;
}

bool QueryService::TryResultCache(Pending* p) {
  if (!options_.enable_result_cache) return false;
  std::string key = ResultCache::Key(p->fingerprint, p->spec.dataset,
                                     p->dataset->dataset->version());
  std::shared_ptr<const analytics::BindingTable> hit = result_cache_.Get(key);
  if (hit == nullptr) return false;
  Response r = MakeResponse(p, analytics::BindingTable(*hit), Clock::now(),
                            /*sim_seconds=*/0, /*sched_sim_seconds=*/0,
                            /*batch_size=*/1, /*cache_hit=*/true);
  p->promise.set_value(std::move(r));
  return true;
}

bool QueryService::TryStore(Pending* p) {
  if (store_ == nullptr) return false;
  engine::Dataset* dataset = p->dataset->dataset;
  uint64_t content_hash = dataset->ContentHash();
  StatusOr<storage::Artifact> art =
      store_->Get(p->plan_fingerprint, content_hash);
  // NotFound is a plain miss; DataLoss means the artifact was quarantined
  // and Unimplemented that it came from a future format — all three
  // degrade to recompute, never to a failed query.
  if (!art.ok()) return false;
  StatusOr<analytics::BindingTable> table =
      storage::DeserializeArtifact(*art, &dataset->dict());
  if (!table.ok()) return false;
  // Queries sharing a plan fingerprint differ only in variable names:
  // rename the stored canonical columns positionally to this query's own.
  std::vector<std::string> names = p->plan->TopColumnNames();
  if (names.size() != table->NumCols()) return false;
  analytics::BindingTable renamed(std::move(names));
  renamed.mutable_rows() = std::move(table->mutable_rows());

  if (options_.enable_result_cache) {
    // A factorized artifact's honest footprint is its serialized size;
    // charging the decompressed row count would evict the exact entries
    // factorization made cheap to keep.
    uint64_t serialized_bytes = 0;
    if (!art->meta.factorization.empty()) {
      for (const auto& store : art->rows.columns) {
        serialized_bytes += store->LogicalBytes();
      }
    }
    result_cache_.Put(
        ResultCache::Key(p->fingerprint, p->spec.dataset, dataset->version()),
        analytics::BindingTable(renamed), serialized_bytes);
  }
  metrics_.IncrStoreHit();
  // Zero MapReduce jobs: a store hit never touches the cluster, so its
  // simulated demand (and scheduler charge) is zero by construction.
  Response r = MakeResponse(p, std::move(renamed), Clock::now(),
                            /*sim_seconds=*/0, /*sched_sim_seconds=*/0,
                            /*batch_size=*/1, /*cache_hit=*/false);
  r.store_hit = true;
  p->promise.set_value(std::move(r));
  return true;
}

void QueryService::PublishArtifact(Pending* p,
                                   const analytics::BindingTable& table) {
  if (store_ == nullptr) return;
  engine::Dataset* dataset = p->dataset->dataset;
  storage::Artifact art;
  art.meta.plan_fingerprint = p->plan_fingerprint;
  art.meta.content_hash = dataset->ContentHash();
  art.meta.dataset = p->spec.dataset;
  art.meta.canonical_query = p->fingerprint;
  art.meta.ivm_class =
      storage::IvmClassName(storage::ClassifyMaintainability(*p->plan).cls);
  art.meta.columns = table.vars();
  if (!storage::FactorizeTable(table, dataset->dict(), &art.rows,
                               &art.meta.factorization)) {
    art.rows = storage::SerializeTable(table, dataset->dict());
  }
  Status st = store_->Put(art);
  if (!st.ok()) {
    RAPIDA_LOG(Warning) << "artifact publish failed for "
                        << art.meta.plan_fingerprint << ": " << st.ToString();
  }
}

Response QueryService::MakeResponse(Pending* p,
                                    StatusOr<analytics::BindingTable> result,
                                    Clock::time_point exec_start,
                                    double sim_seconds,
                                    double sched_sim_seconds,
                                    size_t batch_size, bool cache_hit) {
  Clock::time_point now = Clock::now();
  Response r;
  r.fingerprint = p->fingerprint;
  r.plan_fingerprint = p->plan_fingerprint;
  r.result_cache_hit = cache_hit;
  r.batch_size = batch_size;
  r.queue_wait_s = Seconds(p->submitted, exec_start);
  r.exec_wall_s = Seconds(exec_start, now);
  r.sim_seconds = sim_seconds;
  r.sched_sim_seconds = sched_sim_seconds;

  metrics_.queue_wait().Record(r.queue_wait_s);
  metrics_.latency().Record(Seconds(p->submitted, now));
  if (result.ok()) {
    metrics_.IncrCompleted();
  } else if (result.status().code() == Code::kDeadlineExceeded) {
    metrics_.IncrDeadlineExceeded();
  } else {
    metrics_.IncrFailed();
  }
  r.result = std::move(result);
  return r;
}

void QueryService::Serve(std::vector<std::unique_ptr<Pending>> batch) {
  // All members target the same dataset (NextBatch guarantees it); hold
  // its shared lock for the whole service step so Mutate cannot slide in
  // between the cache probe and execution.
  Registered* reg = batch[0]->dataset;
  std::shared_lock<std::shared_mutex> shared(reg->rw);

  // Result-cache probes under the now-stable version, then store probes
  // under the now-stable content hash (the cache is cheaper: no disk read,
  // no re-interning).
  std::vector<std::unique_ptr<Pending>> remaining;
  for (auto& p : batch) {
    if (!TryResultCache(p.get()) && !TryStore(p.get())) {
      remaining.push_back(std::move(p));
    }
  }
  if (remaining.empty()) return;
  if (remaining.size() == 1) {
    ServeSolo(remaining[0].get());
    return;
  }
  ServeBatch(&remaining);
}

void QueryService::ServeSolo(Pending* p) {
  Clock::time_point exec_start = Clock::now();
  engine::Dataset* dataset = p->dataset->dataset;
  uint64_t version = dataset->version();

  mr::Cluster cluster(options_.cluster, &dataset->dfs());
  QueryObserver observer(&scheduler_, p->session, p->deadline,
                         p->has_deadline);
  cluster.SetObserver(&observer);

  engine::EngineOptions eo = options_.engine;
  eo.tmp_namespace = "q" + std::to_string(p->id) + ":";
  // Engines must agree with the cluster on the shape of the data plane.
  eo.num_shards = options_.cluster.num_shards;
  eo.sharding_scheme = options_.cluster.sharding;
  engine::RapidAnalyticsEngine engine(eo);
  engine::ExecStats stats;
  StatusOr<analytics::BindingTable> result =
      engine.Execute(*p->plan, dataset, &cluster, &stats);

  if (result.ok()) {
    RecordWorkflowShuffle(&metrics_, stats.workflow.jobs);
    if (options_.enable_result_cache) {
      result_cache_.Put(
          ResultCache::Key(p->fingerprint, p->spec.dataset, version),
          analytics::BindingTable(*result));
    }
    PublishArtifact(p, *result);
  }
  Response r = MakeResponse(p, std::move(result), exec_start,
                            stats.workflow.TotalSimSeconds(),
                            stats.workflow.TotalScheduledSimSeconds(),
                            /*batch_size=*/1, /*cache_hit=*/false);
  p->promise.set_value(std::move(r));
}

void QueryService::ServeBatch(std::vector<std::unique_ptr<Pending>>* batch) {
  Clock::time_point exec_start = Clock::now();
  engine::Dataset* dataset = (*batch)[0]->dataset->dataset;
  uint64_t version = dataset->version();

  // In-batch dedup: identical fingerprints execute once; followers get a
  // copy of the leader's table (with the cost split among them) whether
  // or not the result cache is on — dedup is batching, not caching.
  std::vector<Pending*> leaders;
  std::map<std::string, size_t> leader_of;  // fingerprint -> leaders index
  std::vector<std::vector<Pending*>> followers;
  for (auto& p : *batch) {
    auto [it, inserted] = leader_of.emplace(p->fingerprint, leaders.size());
    if (inserted) {
      leaders.push_back(p.get());
      followers.emplace_back();
    } else {
      followers[it->second].push_back(p.get());
    }
  }

  // Greedy partition of the distinct queries into sharable groups: seed a
  // group with the first ungrouped leader, then admit each later leader
  // that keeps the whole group's pattern family overlapping. All-or-
  // nothing family overlap would forfeit sharing whenever one stranger
  // rides in the batch; greedy grouping shares what can be shared.
  std::vector<std::vector<size_t>> groups;
  std::vector<engine::SharedScanPlan> group_plans;
  std::vector<bool> grouped(leaders.size(), false);
  for (size_t i = 0; i < leaders.size(); ++i) {
    if (grouped[i]) continue;
    grouped[i] = true;
    std::vector<size_t> group{i};
    std::vector<const analytics::AnalyticalQuery*> queries{
        leaders[i]->plan.get()};
    StatusOr<engine::SharedScanPlan> plan = engine::PlanSharedScan(queries);
    for (size_t j = i + 1; j < leaders.size(); ++j) {
      if (grouped[j]) continue;
      // A group can only grow from a sharable core.
      if (!plan.ok() || !plan->sharable) break;
      std::vector<const analytics::AnalyticalQuery*> trial = queries;
      trial.push_back(leaders[j]->plan.get());
      StatusOr<engine::SharedScanPlan> trial_plan =
          engine::PlanSharedScan(trial);
      if (trial_plan.ok() && trial_plan->sharable) {
        plan = std::move(trial_plan);
        queries = std::move(trial);
        group.push_back(j);
        grouped[j] = true;
      }
    }
    groups.push_back(std::move(group));
    group_plans.push_back(plan.ok() && plan->sharable
                              ? std::move(*plan)
                              : engine::SharedScanPlan{});
  }
  if (groups.size() > 1) metrics_.IncrSharedScanFallback();

  for (size_t g = 0; g < groups.size(); ++g) {
    const std::vector<size_t>& group = groups[g];
    size_t members = 0;
    for (size_t i : group) members += 1 + followers[i].size();

    // A lone query with no duplicates takes the ordinary solo path
    // (per-job fair-share accounting, nothing to split).
    if (members == 1) {
      ServeSolo(leaders[group[0]]);
      continue;
    }

    engine::EngineOptions eo = options_.engine;
    eo.tmp_namespace =
        "b" + std::to_string(leaders[group[0]]->id) + ":";
    eo.num_shards = options_.cluster.num_shards;
    eo.sharding_scheme = options_.cluster.sharding;
    mr::Cluster cluster(options_.cluster, &dataset->dfs());

    // One result slot per group leader.
    std::vector<StatusOr<analytics::BindingTable>> results;
    if (group.size() > 1) {
      std::vector<const analytics::AnalyticalQuery*> queries;
      queries.reserve(group.size());
      for (size_t i : group) queries.push_back(leaders[i]->plan.get());
      Status shared_status = engine::ExecuteCompositeBatch(
          group_plans[g], queries, dataset, &cluster, eo, &results);
      if (!shared_status.ok()) {
        results.assign(group.size(), shared_status);
      }
    } else {
      // Duplicates of one query: run its workflow once through the
      // engine (which handles its own intra-query fallback).
      engine::RapidAnalyticsEngine engine(eo);
      results.push_back(engine.Execute(*leaders[group[0]]->plan, dataset,
                                       &cluster, nullptr));
    }

    RecordWorkflowShuffle(&metrics_, cluster.history());
    double total_sim = 0;
    for (const mr::JobStats& j : cluster.history()) {
      total_sim += j.sim_seconds;
    }
    // The shared cycles served every member at once: split the cost
    // evenly and charge each session its share.
    double sim_share = total_sim / static_cast<double>(members);
    double slot_share =
        sim_share * static_cast<double>(options_.cluster.map_slots());
    metrics_.IncrBatches(members);

    for (size_t k = 0; k < group.size(); ++k) {
      size_t i = group[k];
      StatusOr<analytics::BindingTable> leader_result = std::move(results[k]);
      if (leader_result.ok()) {
        if (options_.enable_result_cache) {
          result_cache_.Put(
              ResultCache::Key(leaders[i]->fingerprint,
                               leaders[i]->spec.dataset, version),
              analytics::BindingTable(*leader_result));
        }
        PublishArtifact(leaders[i], *leader_result);
      }
      for (Pending* f : followers[i]) {
        StatusOr<analytics::BindingTable> copy =
            leader_result.ok()
                ? StatusOr<analytics::BindingTable>(
                      analytics::BindingTable(*leader_result))
                : StatusOr<analytics::BindingTable>(leader_result.status());
        double sched =
            scheduler_.AccountCost(f->session, sim_share, slot_share);
        Response r = MakeResponse(f, std::move(copy), exec_start, sim_share,
                                  sched, members, /*cache_hit=*/false);
        f->promise.set_value(std::move(r));
      }
      double sched =
          scheduler_.AccountCost(leaders[i]->session, sim_share, slot_share);
      Response r =
          MakeResponse(leaders[i], std::move(leader_result), exec_start,
                       sim_share, sched, members, /*cache_hit=*/false);
      leaders[i]->promise.set_value(std::move(r));
    }
  }
}

std::string QueryService::MetricsJson() const {
  std::string json = "{\"service\":" + metrics_.ToJson();
  json += ",\"plan_cache\":{\"hits\":" + std::to_string(plan_cache_.hits()) +
          ",\"misses\":" + std::to_string(plan_cache_.misses()) +
          ",\"plan_hits\":" + std::to_string(plan_cache_.plan_hits()) +
          ",\"distinct_plans\":" +
          std::to_string(plan_cache_.distinct_plans()) + "}";
  json += ",\"result_cache\":{\"hits\":" +
          std::to_string(result_cache_.hits()) +
          ",\"misses\":" + std::to_string(result_cache_.misses()) +
          ",\"evictions\":" + std::to_string(result_cache_.evictions()) +
          ",\"bytes_used\":" + std::to_string(result_cache_.bytes_used()) +
          ",\"byte_budget\":" + std::to_string(result_cache_.byte_budget()) +
          "}";
  if (store_ != nullptr) {
    json += ",\"store\":" + store_->StatsJson();
  }
  json += ",\"sessions\":[";
  std::vector<JobScheduler::SessionStats> sessions = scheduler_.AllStats();
  for (size_t i = 0; i < sessions.size(); ++i) {
    const JobScheduler::SessionStats& s = sessions[i];
    if (i > 0) json += ",";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"weight\":%.6g,\"jobs\":%llu,"
                  "\"demand_sim_s\":%.6g,\"charged_sim_s\":%.6g,"
                  "\"slot_seconds\":%.6g}",
                  s.name.c_str(), s.weight,
                  static_cast<unsigned long long>(s.jobs), s.demand_sim_s,
                  s.charged_sim_s, s.slot_seconds);
    json += buf;
  }
  json += "]}";
  return json;
}

}  // namespace rapida::service
