#ifndef RAPIDA_SERVICE_QUERY_SERVICE_H_
#define RAPIDA_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analytics/binding.h"
#include "engines/dataset.h"
#include "engines/engine.h"
#include "mapreduce/cluster.h"
#include "service/cache.h"
#include "service/metrics.h"
#include "service/scheduler.h"
#include "storage/artifact_store.h"
#include "util/statusor.h"

namespace rapida::service {

/// Service-wide configuration.
struct ServiceOptions {
  /// Slot configuration of the one simulated cluster every query shares.
  /// Set cluster.num_shards > 1 (and cluster.sharding) to serve on the
  /// sharded data plane: the service syncs the engines' EngineOptions to
  /// the cluster shape per query, and surfaces shard-local vs cross-shard
  /// shuffle bytes plus per-shard output segments in MetricsJson.
  mr::ClusterConfig cluster;
  /// Base engine options; the service overrides tmp_namespace per query.
  engine::EngineOptions engine;
  /// Admission queue bound; a Submit beyond it is rejected with
  /// ResourceExhausted (backpressure — the client retries or sheds load).
  size_t max_queue_depth = 64;
  /// Worker threads draining the queue (concurrent query executions).
  int workers = 4;
  bool enable_plan_cache = true;
  bool enable_result_cache = true;
  uint64_t result_cache_bytes = 64ull * 1024 * 1024;
  /// Shared-scan batching: a worker serves every compatible queued query
  /// of the same dataset in one composite cycle (inter-query MQO).
  bool enable_batching = true;
  size_t max_batch = 8;
  /// How long a worker holding one query lingers for companions to arrive
  /// before executing solo. 0 = only batch what is already queued.
  double batch_window_ms = 0;
  /// Materialization-store directory; empty = no persistent store. With a
  /// store, every successful execution publishes its result as an artifact
  /// keyed on (plan fingerprint, dataset content hash), and queries probe
  /// the store before spinning up a cluster — a warm hit costs zero
  /// MapReduce jobs and survives process restarts.
  std::string store_dir;
  /// Artifact-store byte budget (0 = unlimited).
  uint64_t store_byte_budget = 256ull * 1024 * 1024;
  /// Incremental view maintenance: on Mutate, patch patchable artifacts
  /// (COUNT/SUM/MIN/MAX group-aggregates, DISTINCT extractions, append-
  /// able projections) from the delta instead of dropping them. When off,
  /// every artifact of the mutated dataset falls back to recompute.
  bool enable_ivm = true;
};

/// One query request.
struct QuerySpec {
  std::string text;     // SPARQL
  std::string dataset;  // registered dataset name
  /// Wall-clock budget in seconds from submission; 0 = none. Expiry is
  /// detected at job phase boundaries and cancels the query mid-workflow
  /// with DeadlineExceeded. Deadlined queries are never batched (a shared
  /// cancellation would take innocent bystanders down with them).
  double deadline_s = 0;
};

/// What the service returns per query.
struct Response {
  StatusOr<analytics::BindingTable> result;
  std::string fingerprint;      // canonical form (cache key component)
  /// Structural fingerprint of the canonical optimized plan; equal for
  /// queries that differ only in surface text (plan-cache level-2 key).
  std::string plan_fingerprint;
  bool result_cache_hit = false;
  /// Served from the persistent materialization store (zero MapReduce
  /// jobs; sim_seconds = 0).
  bool store_hit = false;
  size_t batch_size = 1;        // >1: served by a shared composite scan
  double queue_wait_s = 0;      // admission to execution start (wall)
  double exec_wall_s = 0;       // host execution time
  double sim_seconds = 0;       // solo simulated demand of the workflow
  double sched_sim_seconds = 0; // contention-adjusted simulated charge

  Response() : result(Status::Internal("unset")) {}
};

/// Serves SPARQL analytical queries from many concurrent sessions off one
/// shared execution substrate.
///
///   Submit ──► admission queue (bounded, typed rejections)
///                 │ workers dequeue; same-dataset compatible queries
///                 ▼ coalesce into a shared-scan batch
///          plan cache ──► result cache ──► composite pipeline on a
///          per-query Cluster over the dataset's shared Dfs
///                 │ per-job: deadline check (cancel) + fair-share
///                 ▼ accounting against the session's slot share
///              Response (result + cache/batch/scheduling telemetry)
///
/// Datasets are registered, not owned. Queries hold a dataset's shared
/// lock; Mutate takes the exclusive lock, applies Dataset::AddTriples
/// (bumping the version) and drops the dataset's result-cache entries.
///
/// Thread-safe: Submit/Execute/Mutate/MetricsJson may be called from any
/// number of threads.
class QueryService {
 public:
  explicit QueryService(const ServiceOptions& options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers `dataset` under `name`; not owned, must outlive the
  /// service.
  void RegisterDataset(const std::string& name, engine::Dataset* dataset);

  /// Opens a session with a fair-share weight; returns the session id
  /// all Submits must carry.
  int OpenSession(const std::string& name, double weight = 1.0);

  /// Admits a query. Synchronous rejections (typed): ResourceExhausted
  /// when the queue is full, NotFound for an unregistered dataset,
  /// InvalidArgument for a bad session, Unavailable after Shutdown. On
  /// admission returns a future carrying the Response.
  StatusOr<std::future<Response>> Submit(int session, const QuerySpec& spec);

  /// Submit + wait. Rejections surface in Response.result.
  Response Execute(int session, const QuerySpec& spec);

  /// Applies a mutation batch under the dataset's exclusive lock: waits
  /// for running queries on it, appends the triples, bumps the dataset
  /// version and invalidates its cached results.
  Status Mutate(const std::string& dataset,
                const std::vector<engine::Dataset::TripleUpdate>& triples);

  /// Drains the queue and joins the workers (idempotent; the destructor
  /// calls it). Queued queries still execute; new Submits are rejected.
  void Shutdown();

  /// Full service snapshot: counters, histograms, cache hit rates, and
  /// per-session scheduler accounting, as one JSON object.
  std::string MetricsJson() const;

  JobScheduler& scheduler() { return scheduler_; }
  ServiceMetrics& metrics() { return metrics_; }
  PlanCache& plan_cache() { return plan_cache_; }
  ResultCache& result_cache() { return result_cache_; }
  /// Null when ServiceOptions::store_dir is empty (or the open failed).
  storage::ArtifactStore* store() { return store_.get(); }
  const ServiceOptions& options() const { return options_; }

 private:
  struct Registered {
    engine::Dataset* dataset = nullptr;
    /// Queries share, Mutate is exclusive.
    std::shared_mutex rw;
  };

  /// A query sitting in the admission queue.
  struct Pending {
    int session = -1;
    QuerySpec spec;
    Registered* dataset = nullptr;
    std::shared_ptr<const analytics::AnalyticalQuery> plan;
    std::string fingerprint;
    std::string plan_fingerprint;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;  // max() = none
    bool has_deadline = false;
    std::promise<Response> promise;
    uint64_t id = 0;
  };

  void WorkerLoop();
  /// Pops a batch: the head plus every compatible queued query (same
  /// dataset, no deadline, batching enabled) up to max_batch, after an
  /// optional batch window. Returns empty at shutdown.
  std::vector<std::unique_ptr<Pending>> NextBatch();
  void Serve(std::vector<std::unique_ptr<Pending>> batch);
  /// Executes one query alone (deadline observer + per-job accounting).
  void ServeSolo(Pending* p);
  /// One shared composite scan for the whole batch; falls back to solo
  /// execution per member when the patterns do not overlap.
  void ServeBatch(std::vector<std::unique_ptr<Pending>>* batch);
  Response MakeResponse(Pending* p, StatusOr<analytics::BindingTable> result,
                        std::chrono::steady_clock::time_point exec_start,
                        double sim_seconds, double sched_sim_seconds,
                        size_t batch_size, bool cache_hit);
  /// Result-cache probe under the dataset's current version.
  bool TryResultCache(Pending* p);
  /// Materialization-store probe under the dataset's current content hash:
  /// on a hit the stored rows are deserialized, positionally renamed to
  /// the probing query's column names, and served with zero MapReduce
  /// jobs. Corrupt or version-skewed artifacts degrade to a miss.
  bool TryStore(Pending* p);
  /// Publishes a successful execution's result as a store artifact, with
  /// its maintainability classification frozen into the meta.
  void PublishArtifact(Pending* p, const analytics::BindingTable& table);
  /// Post-mutation artifact maintenance: patches every patchable artifact
  /// of the dataset from the delta (re-keying it under the new content
  /// hash) and drops the rest to recompute.
  void MaintainArtifacts(const std::string& name, engine::Dataset* dataset,
                         uint64_t old_hash, std::vector<rdf::Triple> added);

  const ServiceOptions options_;
  JobScheduler scheduler_;
  PlanCache plan_cache_;
  ResultCache result_cache_;
  ServiceMetrics metrics_;
  std::unique_ptr<storage::ArtifactStore> store_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  bool shutdown_ = false;
  uint64_t next_query_id_ = 0;
  std::unordered_map<std::string, std::unique_ptr<Registered>> datasets_;
  std::vector<std::thread> workers_;
};

}  // namespace rapida::service

#endif  // RAPIDA_SERVICE_QUERY_SERVICE_H_
