#ifndef RAPIDA_SERVICE_CACHE_H_
#define RAPIDA_SERVICE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "analytics/analytical_query.h"
#include "analytics/binding.h"
#include "plan/plan.h"
#include "util/statusor.h"

namespace rapida::service {

/// Normalizes a query text to its canonical fingerprint: parse, then
/// pretty-print the AST. The printer is a total function of the parsed
/// structure, so whitespace, comments, and prefix spelling differences
/// all map to one fingerprint while semantically different queries never
/// collide (the round-trip property ParseQuery(q.ToString()) == q).
StatusOr<std::string> CanonicalFingerprint(const std::string& query_text);

/// Two-level plan cache keyed on canonical *optimized plans*.
///
/// Level 1 (text): canonical text fingerprint → analyzed query. Catches
/// resubmissions that differ only in whitespace / comments / prefix
/// spelling.
/// Level 2 (structure): fingerprint of the canonical optimized plan
/// (variable names normalized, passes applied) → one shared
/// plan::PhysicalPlan. Queries whose surface text differs — different
/// variable names, reordered prefixes — but whose optimized operator DAGs
/// are identical share a single cached plan; a new text over a known
/// structure is a `plan_hit` (it still pays one parse + analysis, since
/// its SELECT column names are its own, but planning work is shared).
///
/// Entries are immutable and shared; analysis and planning are pure, so
/// the cache never needs invalidation and has no size budget (plans are
/// tiny next to results). Thread-safe.
class PlanCache {
 public:
  struct Entry {
    std::string fingerprint;       // canonical text form
    std::string plan_fingerprint;  // canonical optimized-plan hash
    std::shared_ptr<const analytics::AnalyticalQuery> query;
    /// The canonical optimized plan, shared by every structurally-equal
    /// text. Null when the query's shape defeats the structural planner
    /// (plan_fingerprint then hashes a canonical serialization instead).
    std::shared_ptr<const plan::PhysicalPlan> optimized;
  };

  /// Returns the cached analysis of `query_text`, parsing, analyzing and
  /// planning on miss. Parse/analysis failures are returned, not cached
  /// (a malformed query is cheap to re-reject).
  StatusOr<Entry> GetOrAnalyze(const std::string& query_text);

  uint64_t hits() const;
  uint64_t misses() const;
  /// Text misses that matched an already-cached optimized plan.
  uint64_t plan_hits() const;
  uint64_t distinct_plans() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> by_text_;
  std::unordered_map<std::string, std::shared_ptr<const plan::PhysicalPlan>>
      by_plan_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t plan_hits_ = 0;
};

/// Result cache: (canonical fingerprint, dataset name, dataset version) →
/// final BindingTable, LRU-evicted under a byte budget.
///
/// The dataset version in the key is what makes invalidation principled:
/// a mutation bumps engine::Dataset::version(), so every entry cached
/// against the old version simply stops being reachable (and ages out of
/// the LRU) — there is no explicit flush to forget. Cached tables store
/// TermIds; the dictionary is append-only under mutation, so ids in a
/// table cached at any version render identically forever.
/// Thread-safe.
class ResultCache {
 public:
  explicit ResultCache(uint64_t byte_budget) : byte_budget_(byte_budget) {}

  static std::string Key(const std::string& fingerprint,
                         const std::string& dataset, uint64_t version);

  /// Returns a copy of the cached table, or nullptr on miss.
  std::shared_ptr<const analytics::BindingTable> Get(const std::string& key);

  /// Inserts (or refreshes) `table` under `key`. A table larger than the
  /// whole budget is not cached. `serialized_bytes`, when non-zero, is the
  /// table's serialized (d-representation) footprint and replaces the flat
  /// NumRows x NumCols estimate in the LRU charge — tables served from
  /// factorized artifacts are billed at the size they actually cost to
  /// keep, not the row count they decompress to.
  void Put(const std::string& key, analytics::BindingTable table,
           uint64_t serialized_bytes = 0);

  /// What a wholesale invalidation actually dropped — surfaced in the
  /// service metrics so mutation cost is observable, not silent.
  struct Invalidated {
    uint64_t entries = 0;
    uint64_t bytes = 0;
  };

  /// Drops every entry of `dataset` regardless of version — used on
  /// mutation so stale bytes free immediately instead of aging out.
  /// Returns how many entries (and bytes) were dropped.
  Invalidated InvalidateDataset(const std::string& dataset);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  uint64_t bytes_used() const;
  uint64_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    std::string key;
    std::string dataset;
    std::shared_ptr<const analytics::BindingTable> table;
    uint64_t bytes = 0;
  };

  static uint64_t TableBytes(const analytics::BindingTable& table);
  void EvictToFitLocked();

  const uint64_t byte_budget_;
  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t bytes_used_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace rapida::service

#endif  // RAPIDA_SERVICE_CACHE_H_
