#include "mapreduce/dfs.h"

#include <algorithm>

#include "util/string_util.h"

namespace rapida::mr {

Status Dfs::Write(const std::string& name, RecordBatch batch,
                  const FileOptions& options) {
  // Batches built via Add() carry only columnar stores; materialize the
  // record views now that the stores are frozen. Producers that pre-built
  // views (the cluster's output path) pass them through unchanged.
  if (batch.records.empty()) {
    size_t total = 0;
    for (const auto& col : batch.columns) total += col->size();
    batch.records.reserve(total);
    for (const auto& col : batch.columns) {
      col->AppendRecordViews(&batch.records);
    }
  }
  uint64_t logical = 0;
  for (const Record& r : batch.records) logical += r.Bytes();
  uint64_t stored =
      options.compressed
          ? static_cast<uint64_t>(static_cast<double>(logical) *
                                  options.compression_ratio)
          : logical;

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t existing = 0;
  auto it = files_.find(name);
  if (it != files_.end()) existing = it->second.stored_bytes;

  if (capacity_limit_ > 0 &&
      total_stored_bytes_ - existing + stored > capacity_limit_) {
    return Status::ResourceExhausted(
        "DFS capacity exceeded writing '" + name + "': need " +
        FormatBytes(total_stored_bytes_ - existing + stored) + " of " +
        FormatBytes(capacity_limit_));
  }

  total_stored_bytes_ = total_stored_bytes_ - existing + stored;
  if (total_stored_bytes_ > peak_stored_bytes_) {
    peak_stored_bytes_ = total_stored_bytes_;
  }
  lifetime_bytes_written_ += stored;
  File& f = files_[name];
  f.records = std::move(batch.records);
  f.columns = std::move(batch.columns);
  f.logical_bytes = logical;
  f.stored_bytes = stored;
  f.options = options;
  return Status::OK();
}

StatusOr<const Dfs::File*> Dfs::Open(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("DFS file not found: " + name);
  }
  return &it->second;
}

bool Dfs::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) > 0;
}

Status Dfs::Delete(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("DFS file not found: " + name);
  }
  total_stored_bytes_ -= it->second.stored_bytes;
  files_.erase(it);
  return Status::OK();
}

uint64_t Dfs::TotalStoredBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_stored_bytes_;
}

uint64_t Dfs::PeakStoredBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_stored_bytes_;
}

void Dfs::ResetPeak() {
  std::lock_guard<std::mutex> lock(mu_);
  peak_stored_bytes_ = total_stored_bytes_;
}

void Dfs::SetCapacityLimit(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_limit_ = bytes;
}

uint64_t Dfs::capacity_limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_limit_;
}

uint64_t Dfs::LifetimeBytesWritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lifetime_bytes_written_;
}

std::vector<std::string> Dfs::ListFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [name, f] : files_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rapida::mr
