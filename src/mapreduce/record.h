#ifndef RAPIDA_MAPREDUCE_RECORD_H_
#define RAPIDA_MAPREDUCE_RECORD_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/arena.h"

namespace rapida::mr {

/// 64-bit FNV-1a over the key bytes. Computed once per record at emit time
/// and reused for shuffle partitioning, so the hot loops never rehash.
inline uint64_t HashKey(std::string_view key) {
  uint64_t h = 14695981039346656037ull;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// First 8 key bytes packed big-endian (shorter keys zero-padded on the
/// right). Numeric comparison of two prefixes equals lexicographic
/// comparison of the first 8 bytes, so sort/merge comparisons resolve on
/// one integer unless the keys share an 8-byte prefix.
inline uint64_t KeyPrefix(std::string_view key) {
  uint64_t p = 0;
  for (size_t i = 0; i < 8; ++i) {
    p = (p << 8) |
        (i < key.size() ? static_cast<unsigned char>(key[i]) : 0u);
  }
  return p;
}

/// One key/value record flowing through the simulated MapReduce runtime.
/// Keys and values are serialized byte strings so every byte that would
/// cross disk or network in a real deployment is measurable here — but the
/// bytes themselves live in a util::Arena owned by the producing map/reduce
/// context (or RecordBatch / Dfs::File), never in per-record heap strings.
/// `key_prefix` and `key_hash` are stamped once when the record is created.
struct Record {
  std::string_view key;
  std::string_view value;
  uint64_t key_prefix = 0;
  uint64_t key_hash = 0;

  /// Serialized footprint used for all byte accounting (key + value +
  /// separators). Representation-independent: identical to what the
  /// std::string-backed record reported, so sim_seconds and EXPLAIN
  /// estimates never see the arena refactor.
  uint64_t Bytes() const { return key.size() + value.size() + 2; }
};

/// Stamps prefix + hash for key/value views that are already arena-stable.
inline Record MakeRecord(std::string_view key, std::string_view value) {
  return Record{key, value, KeyPrefix(key), HashKey(key)};
}

/// Full sort order: prefix first (one integer compare), full key bytes only
/// on an 8-byte-prefix tie. Equivalent to `a.key < b.key`.
inline bool RecordKeyLess(const Record& a, const Record& b) {
  if (a.key_prefix != b.key_prefix) return a.key_prefix < b.key_prefix;
  return a.key < b.key;
}

inline bool RecordKeyEq(const Record& a, const Record& b) {
  return a.key_prefix == b.key_prefix && a.key == b.key;
}

/// Owning batch of records: the only way to hand record data to the Dfs
/// from outside a MapReduce job. Add() copies the bytes into the batch's
/// arena, so callers may pass temporaries; the arena rides along into
/// Dfs::File and keeps every view valid for the file's lifetime.
class RecordBatch {
 public:
  RecordBatch() = default;
  RecordBatch(RecordBatch&&) = default;
  RecordBatch& operator=(RecordBatch&&) = default;

  void Add(std::string_view key, std::string_view value) {
    if (arenas.empty()) {
      arenas.push_back(std::make_shared<util::Arena>());
    }
    util::Arena* a = arenas.back().get();
    records.push_back(MakeRecord(a->Copy(key), a->Copy(value)));
  }

  std::vector<Record> records;
  std::vector<std::shared_ptr<util::Arena>> arenas;
};

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_RECORD_H_
