#ifndef RAPIDA_MAPREDUCE_RECORD_H_
#define RAPIDA_MAPREDUCE_RECORD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rapida::mr {

/// 64-bit FNV-1a over the key bytes. Computed once per record at emit time
/// and reused for shuffle partitioning, so the hot loops never rehash.
inline uint64_t HashKey(std::string_view key) {
  uint64_t h = 14695981039346656037ull;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// First 8 key bytes packed big-endian (shorter keys zero-padded on the
/// right). Numeric comparison of two prefixes equals lexicographic
/// comparison of the first 8 bytes, so sort/merge comparisons resolve on
/// one integer unless the keys share an 8-byte prefix.
inline uint64_t KeyPrefix(std::string_view key) {
  uint64_t p = 0;
  for (size_t i = 0; i < 8; ++i) {
    p = (p << 8) |
        (i < key.size() ? static_cast<unsigned char>(key[i]) : 0u);
  }
  return p;
}

/// One key/value record flowing through the simulated MapReduce runtime.
/// Keys and values are serialized byte strings so every byte that would
/// cross disk or network in a real deployment is measurable here — but the
/// bytes themselves live in a ColumnarRecords store owned by the producing
/// map/reduce context (or RecordBatch / Dfs::File), never in per-record
/// heap strings. `key_prefix` and `key_hash` are stamped once when the
/// record is created.
struct Record {
  std::string_view key;
  std::string_view value;
  uint64_t key_prefix = 0;
  uint64_t key_hash = 0;

  /// Serialized footprint used for all byte accounting (key + value +
  /// separators). Representation-independent: identical to what the
  /// std::string-backed record reported, so sim_seconds and EXPLAIN
  /// estimates never see the columnar refactor.
  uint64_t Bytes() const { return key.size() + value.size() + 2; }
};

/// Stamps prefix + hash for key/value views that are already storage-stable.
inline Record MakeRecord(std::string_view key, std::string_view value) {
  return Record{key, value, KeyPrefix(key), HashKey(key)};
}

/// Full sort order: prefix first (one integer compare), full key bytes only
/// on an 8-byte-prefix tie. Equivalent to `a.key < b.key`.
inline bool RecordKeyLess(const Record& a, const Record& b) {
  if (a.key_prefix != b.key_prefix) return a.key_prefix < b.key_prefix;
  return a.key < b.key;
}

inline bool RecordKeyEq(const Record& a, const Record& b) {
  return a.key_prefix == b.key_prefix && a.key == b.key;
}

/// Columnar record storage: every appended key concatenated into one
/// contiguous byte buffer, every value into another, with per-record end
/// offsets plus parallel key_prefix / key_hash columns stamped once at
/// append time. This is the physical layout behind MapContext /
/// ReduceContext emission, the shuffle, and Dfs files — batch kernels scan
/// the hash column and the contiguous byte runs instead of chasing
/// per-record heap strings.
///
/// Appending may reallocate the byte buffers, so Record views are
/// materialized only after a producing phase is done (AppendRecordViews).
/// Views stay valid for the lifetime of the store's heap buffers; anything
/// that lets views escape holds the store behind shared_ptr so moves never
/// relocate small (SSO) buffers under them.
class ColumnarRecords {
 public:
  ColumnarRecords() = default;
  ColumnarRecords(const ColumnarRecords&) = delete;
  ColumnarRecords& operator=(const ColumnarRecords&) = delete;

  void Reserve(size_t records, size_t bytes) {
    key_end_.reserve(records);
    value_end_.reserve(records);
    key_prefix_.reserve(records);
    key_hash_.reserve(records);
    values_.reserve(bytes);
  }

  void Append(std::string_view key, std::string_view value) {
    keys_.append(key);
    values_.append(value);
    key_end_.push_back(keys_.size());
    value_end_.push_back(values_.size());
    key_prefix_.push_back(KeyPrefix(key));
    key_hash_.push_back(HashKey(key));
  }

  size_t size() const { return key_end_.size(); }
  bool empty() const { return key_end_.empty(); }

  std::string_view key(size_t i) const {
    size_t begin = i == 0 ? 0 : key_end_[i - 1];
    return std::string_view(keys_).substr(begin, key_end_[i] - begin);
  }
  std::string_view value(size_t i) const {
    size_t begin = i == 0 ? 0 : value_end_[i - 1];
    return std::string_view(values_).substr(begin, value_end_[i] - begin);
  }
  uint64_t key_prefix(size_t i) const { return key_prefix_[i]; }
  uint64_t key_hash(size_t i) const { return key_hash_[i]; }

  /// Sum of Record::Bytes() over all rows — O(1) from the buffer sizes.
  uint64_t LogicalBytes() const {
    return keys_.size() + values_.size() + 2 * key_end_.size();
  }

  /// Appends one Record view per row. Call only once appends are done;
  /// further Append calls may invalidate every returned view.
  void AppendRecordViews(std::vector<Record>* out) const {
    std::string_view keys(keys_);
    std::string_view values(values_);
    size_t kb = 0, vb = 0;
    for (size_t i = 0; i < key_end_.size(); ++i) {
      out->push_back(Record{keys.substr(kb, key_end_[i] - kb),
                            values.substr(vb, value_end_[i] - vb),
                            key_prefix_[i], key_hash_[i]});
      kb = key_end_[i];
      vb = value_end_[i];
    }
  }

 private:
  std::string keys_;
  std::string values_;
  std::vector<uint64_t> key_end_;    // cumulative key-byte offsets
  std::vector<uint64_t> value_end_;  // cumulative value-byte offsets
  std::vector<uint64_t> key_prefix_;
  std::vector<uint64_t> key_hash_;
};

/// Owning batch of records: the only way to hand record data to the Dfs
/// from outside a MapReduce job. Add() copies the bytes into the batch's
/// columnar store, so callers may pass temporaries; the store rides along
/// into Dfs::File (which materializes the Record views) and keeps every
/// view valid for the file's lifetime.
class RecordBatch {
 public:
  RecordBatch() = default;
  RecordBatch(RecordBatch&&) = default;
  RecordBatch& operator=(RecordBatch&&) = default;

  void Add(std::string_view key, std::string_view value) {
    if (columns.empty()) {
      columns.push_back(std::make_shared<ColumnarRecords>());
    }
    columns.back()->Append(key, value);
  }

  /// Pre-built record views (the cluster's output path fills these; views
  /// must point into `columns` stores). Left empty by Add() — Dfs::Write
  /// materializes the views once the stores are frozen.
  std::vector<Record> records;
  std::vector<std::shared_ptr<ColumnarRecords>> columns;
};

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_RECORD_H_
