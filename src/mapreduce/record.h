#ifndef RAPIDA_MAPREDUCE_RECORD_H_
#define RAPIDA_MAPREDUCE_RECORD_H_

#include <cstdint>
#include <string>

namespace rapida::mr {

/// One key/value record flowing through the simulated MapReduce runtime.
/// Keys and values are serialized strings so every byte that would cross
/// disk or network in a real deployment is measurable here.
struct Record {
  std::string key;
  std::string value;

  /// Serialized footprint used for all byte accounting (key + value +
  /// separators).
  uint64_t Bytes() const { return key.size() + value.size() + 2; }
};

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_RECORD_H_
