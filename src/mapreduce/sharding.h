#ifndef RAPIDA_MAPREDUCE_SHARDING_H_
#define RAPIDA_MAPREDUCE_SHARDING_H_

#include <cstdint>
#include <string_view>

namespace rapida::mr {

/// How base records (VP-table rows, triplegroups — both keyed by subject)
/// and derived shuffle keys are placed across shards. Placement is a pure
/// function of the record's key hash, so the same dataset under the same
/// scheme produces the same assignment in every process — the artifact
/// store's content hash stays placement-independent.
enum class ShardingScheme {
  /// Default: scatter by a finalized hash of the subject key. Statistically
  /// balanced, but deliberately misaligned with reducer key ownership, so
  /// almost every shuffle record crosses a shard boundary — the baseline a
  /// real hash-partitioned deployment pays.
  kHashSubject,
  /// Locality-aware: place a record on the shard that *owns its key's
  /// reducer range* (key_hash mod num_shards). Star joins re-emit the
  /// subject as the shuffle key, so every intra-star shuffle record lands
  /// on the shard it already lives on — zero cross-shard bytes for the
  /// shard-local phase of partial evaluation.
  kLocality,
};

/// splitmix64 finalizer: decorrelates placement from the reducer partition
/// residue (which is plain key_hash mod N).
inline uint64_t Splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Home shard of a record whose key hashes to `key_hash`. Deterministic,
/// process-independent, dataset-content-independent.
inline int AssignShard(uint64_t key_hash, ShardingScheme scheme,
                       int num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t h = scheme == ShardingScheme::kLocality ? key_hash
                                                   : Splitmix64(key_hash);
  return static_cast<int>(h % static_cast<uint64_t>(num_shards));
}

/// Owner of a shuffle key: the shard whose reducers handle this key range.
/// Scheme-independent — reducers are always placed by key residue; the
/// scheme only decides where the *data* lives relative to them.
inline int OwnerShard(uint64_t key_hash, int num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<int>(key_hash % static_cast<uint64_t>(num_shards));
}

const char* ShardingSchemeName(ShardingScheme scheme);
bool ParseShardingScheme(std::string_view name, ShardingScheme* out);

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_SHARDING_H_
