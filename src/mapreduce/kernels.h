#ifndef RAPIDA_MAPREDUCE_KERNELS_H_
#define RAPIDA_MAPREDUCE_KERNELS_H_

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mapreduce/job.h"
#include "mapreduce/record.h"

/// Batch-at-a-time kernel primitives for the hot MapReduce inner loops.
///
/// The operators built on these (star-join / map-join probing, grouped
/// aggregation, field tokenization) process one whole split per dispatch
/// instead of one record per std::function call, reuse the FNV-1a key
/// hashes the data plane stamps at emit time, and keep all scratch in
/// reused flat buffers. Kernels are a pure execution-layer substitution:
/// they must emit byte-identical records in identical order to their
/// scalar counterparts, so no logical counter (and hence no sim_seconds)
/// can move.
namespace rapida::mr::kernels {

/// splitmix64 finalizer: turns raw integer keys (term ids) into
/// well-distributed 64-bit hashes for HashIndex probing.
inline uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Open-addressing (linear-probe) hash index mapping precomputed 64-bit
/// hashes to dense uint32 ids assigned by the caller. The index stores
/// only (hash, id) slots; the caller owns the actual keys and resolves
/// same-hash collisions through the `eq(id)` callback, so one index works
/// for string keys, term-id keys, or composite keys without storing any
/// of them twice. Dense ids make the side tables plain vectors.
class HashIndex {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  HashIndex() { Init(16); }

  /// Pre-sizes for `n` distinct keys (amortizes growth rehashes away).
  void Reserve(size_t n);

  template <typename Eq>
  uint32_t Find(uint64_t hash, Eq&& eq) const {
    size_t i = hash & mask_;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.id == kNotFound) return kNotFound;
      if (s.hash == hash && eq(s.id)) return s.id;
      i = (i + 1) & mask_;
    }
  }

  /// Returns the existing id for `hash` (second = false), or claims a
  /// slot for `new_id` (second = true). The caller appends the key/value
  /// for `new_id` to its side tables on insertion.
  template <typename Eq>
  std::pair<uint32_t, bool> FindOrInsert(uint64_t hash, uint32_t new_id,
                                         Eq&& eq) {
    if ((count_ + 1) * 4 > slots_.size() * 3) Grow();
    size_t i = hash & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.id == kNotFound) {
        s.hash = hash;
        s.id = new_id;
        ++count_;
        return {new_id, true};
      }
      if (s.hash == hash && eq(s.id)) return {s.id, false};
      i = (i + 1) & mask_;
    }
  }

  size_t size() const { return count_; }

  /// Empties the index but keeps its capacity (per-task table reuse).
  void Clear();

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t id = kNotFound;
  };

  void Init(size_t capacity);  // capacity must be a power of two
  void Grow();

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t count_ = 0;
};

/// CSR field-offset columns for a batch of tokenized strings: every row's
/// fields appended to one flat vector, with cumulative row boundaries in
/// `row_end`. Materialized once per batch, then scanned without re-finding
/// separators or allocating per record.
struct FieldColumns {
  std::vector<std::string_view> fields;
  std::vector<uint32_t> row_end;

  void Clear() {
    fields.clear();
    row_end.clear();
  }
  size_t num_rows() const { return row_end.size(); }
  size_t row_begin(size_t row) const {
    return row == 0 ? 0 : row_end[row - 1];
  }
};

/// Appends one row of fields split on `sep`, with FieldTokenizer's exact
/// semantics: empty fields kept, "" yields one empty field, a trailing
/// separator yields a trailing empty field.
inline void TokenizeRow(std::string_view input, char sep,
                        FieldColumns* out) {
  size_t start = 0;
  for (;;) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out->fields.push_back(input.substr(start));
      break;
    }
    out->fields.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  out->row_end.push_back(static_cast<uint32_t>(out->fields.size()));
}

/// Batched FieldTokenizer: materializes the field offset columns for a
/// whole split's values in one pass. Views point into the input records.
void TokenizeValues(const TaggedRecord* records, size_t count, char sep,
                    FieldColumns* out);

/// Appends the decimal form of `v` — same bytes as std::to_string, without
/// the temporary string.
inline void AppendDecimal(std::string* out, uint64_t v) {
  char buf[20];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, static_cast<size_t>(res.ptr - buf));
}

}  // namespace rapida::mr::kernels

#endif  // RAPIDA_MAPREDUCE_KERNELS_H_
