#ifndef RAPIDA_MAPREDUCE_DFS_H_
#define RAPIDA_MAPREDUCE_DFS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mapreduce/record.h"
#include "util/status.h"
#include "util/statusor.h"

namespace rapida::mr {

/// Options controlling how a file is stored.
struct FileOptions {
  /// Columnar-compressed storage (models Hive's ORC): stored bytes are
  /// `compression_ratio` * logical bytes, and the cluster spawns mappers
  /// based on the *stored* size — the effect the paper observes ("less
  /// number of mappers based on compressed file sizes", §5.2).
  bool compressed = false;
  double compression_ratio = 0.15;
};

/// An HDFS-model distributed file system: named record files with byte
/// accounting and an optional capacity limit.
///
/// The capacity limit reproduces the paper's Table 4 footnote: naive Hive
/// on MG13 "eventually failed due to insufficient HDFS disk space" while
/// materializing a 190 GB star-join output twice. Engines surface the
/// ResourceExhausted status exactly like the paper's failed run.
///
/// Thread-safe for concurrent jobs: the namespace and byte accounting are
/// mutex-protected, and File nodes are stable (unordered_map node
/// stability), so a pointer returned by Open stays valid while other jobs
/// write *different* files. Concurrent queries must keep to disjoint
/// intermediate-file namespaces (EngineOptions::tmp_namespace) — replacing
/// or deleting a file another job is reading remains a logic error, just
/// as in HDFS.
class Dfs {
 public:
  struct File {
    std::vector<Record> records;
    /// Columnar stores owning the record bytes; records are string_views
    /// into these, so a File keeps its stores alive as long as readers
    /// hold the pointer Open() returned.
    std::vector<std::shared_ptr<ColumnarRecords>> columns;
    uint64_t logical_bytes = 0;  // sum of record footprints
    uint64_t stored_bytes = 0;   // after compression
    FileOptions options;
  };

  Dfs() = default;
  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  /// Writes (replaces) a file from an owning batch (columnar stores, plus
  /// pre-built record views when the producer already materialized them).
  /// Fails with ResourceExhausted if the write would push total stored
  /// bytes beyond the capacity limit.
  Status Write(const std::string& name, RecordBatch batch,
               const FileOptions& options = {});

  /// Opens an existing file for reading.
  StatusOr<const File*> Open(const std::string& name) const;

  bool Exists(const std::string& name) const;
  Status Delete(const std::string& name);

  /// Sum of stored bytes across all files.
  uint64_t TotalStoredBytes() const;

  /// High-water mark of TotalStoredBytes() — the workflow's peak disk
  /// demand (what decides whether a capacity-limited run survives).
  uint64_t PeakStoredBytes() const;
  void ResetPeak();

  /// 0 = unlimited.
  void SetCapacityLimit(uint64_t bytes);
  uint64_t capacity_limit() const;

  /// Lifetime write counter (includes overwritten/deleted data) — the
  /// "materialization volume" a workflow caused.
  uint64_t LifetimeBytesWritten() const;

  std::vector<std::string> ListFiles() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, File> files_;
  uint64_t total_stored_bytes_ = 0;
  uint64_t peak_stored_bytes_ = 0;
  uint64_t lifetime_bytes_written_ = 0;
  uint64_t capacity_limit_ = 0;
};

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_DFS_H_
