#include "mapreduce/counters.h"

#include <cstdio>
#include <sstream>

#include "util/string_util.h"

namespace rapida::mr {

std::string WorkflowStats::ToString() const {
  std::ostringstream os;
  os << "workflow: " << NumCycles() << " cycles ("
     << NumMapOnlyCycles() << " map-only), scan "
     << FormatBytes(TotalInputBytes()) << ", shuffle "
     << FormatBytes(TotalShuffleBytes()) << ", write "
     << FormatBytes(TotalOutputBytes());
  char buf[64];
  std::snprintf(buf, sizeof(buf), ", sim %.1fs (host %.3fs)",
                TotalSimSeconds(), TotalWallSeconds());
  os << buf;
  // Shard accounting only appears for sharded workflows, so unsharded
  // renderings stay byte-for-byte what they always were.
  bool sharded = false;
  for (const JobStats& j : jobs) sharded = sharded || j.num_shards > 1;
  if (sharded) {
    os << ", cross-shard " << FormatBytes(TotalCrossShardBytes())
       << " (local " << FormatBytes(TotalLocalShuffleBytes()) << ")";
  }
  os << "\n";
  for (const JobStats& j : jobs) {
    std::snprintf(buf, sizeof(buf), "%8.1fs", j.sim_seconds);
    os << "  " << (j.map_only ? "[map]    " : "[map+red]") << " " << j.name
       << ": in=" << FormatBytes(j.input_bytes)
       << " shuffle=" << FormatBytes(j.shuffle_bytes);
    if (j.num_shards > 1) {
      os << " (cross=" << FormatBytes(j.shuffle_cross_bytes) << ")";
    }
    os << " out=" << FormatBytes(j.output_bytes) << buf << "\n";
  }
  return os.str();
}

}  // namespace rapida::mr
