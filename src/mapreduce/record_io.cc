#include "mapreduce/record_io.h"

namespace rapida::mr {

void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

bool ReadU32(std::string_view data, size_t* offset, uint32_t* v) {
  if (*offset > data.size() || data.size() - *offset < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(
               static_cast<unsigned char>(data[*offset + i]))
           << (8 * i);
  }
  *offset += 4;
  *v = out;
  return true;
}

bool ReadU64(std::string_view data, size_t* offset, uint64_t* v) {
  if (*offset > data.size() || data.size() - *offset < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(
               static_cast<unsigned char>(data[*offset + i]))
           << (8 * i);
  }
  *offset += 8;
  *v = out;
  return true;
}

void AppendColumnarRecords(const ColumnarRecords& records, std::string* out) {
  uint64_t key_bytes = 0, value_bytes = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    key_bytes += records.key(i).size();
    value_bytes += records.value(i).size();
  }
  AppendU64(records.size(), out);
  AppendU64(key_bytes, out);
  AppendU64(value_bytes, out);
  for (size_t i = 0; i < records.size(); ++i) {
    std::string_view key = records.key(i);
    std::string_view value = records.value(i);
    AppendU32(static_cast<uint32_t>(key.size()), out);
    out->append(key);
    AppendU32(static_cast<uint32_t>(value.size()), out);
    out->append(value);
  }
}

namespace {

Status Truncated(const char* what) {
  return Status::DataLoss(std::string("record payload truncated at ") + what);
}

}  // namespace

Status ParseColumnarRecords(std::string_view data, ColumnarRecords* out) {
  size_t offset = 0;
  uint64_t count = 0, key_bytes = 0, value_bytes = 0;
  if (!ReadU64(data, &offset, &count)) return Truncated("record count");
  if (!ReadU64(data, &offset, &key_bytes)) return Truncated("key total");
  if (!ReadU64(data, &offset, &value_bytes)) return Truncated("value total");
  // Structural sanity before the decode loop: the declared payload cannot
  // exceed the buffer (each record adds 8 bytes of length framing).
  uint64_t remaining = data.size() - offset;
  if (key_bytes + value_bytes + 8 * count != remaining) {
    return Status::DataLoss(
        "record payload size mismatch: declared " +
        std::to_string(key_bytes + value_bytes + 8 * count) +
        " bytes of records, buffer has " + std::to_string(remaining));
  }
  out->Reserve(count, value_bytes);
  uint64_t seen_keys = 0, seen_values = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t key_len = 0, value_len = 0;
    if (!ReadU32(data, &offset, &key_len)) return Truncated("key length");
    if (data.size() - offset < key_len) return Truncated("key bytes");
    std::string_view key = data.substr(offset, key_len);
    offset += key_len;
    if (!ReadU32(data, &offset, &value_len)) return Truncated("value length");
    if (data.size() - offset < value_len) return Truncated("value bytes");
    std::string_view value = data.substr(offset, value_len);
    offset += value_len;
    out->Append(key, value);
    seen_keys += key_len;
    seen_values += value_len;
  }
  if (seen_keys != key_bytes || seen_values != value_bytes) {
    return Status::DataLoss("record payload totals do not match framing");
  }
  if (offset != data.size()) {
    return Status::DataLoss("record payload has trailing bytes");
  }
  return Status::OK();
}

void AppendRecordBatch(const RecordBatch& batch, std::string* out) {
  // Flatten the batch's stores into one record stream.
  uint64_t count = 0, key_bytes = 0, value_bytes = 0;
  for (const auto& store : batch.columns) {
    count += store->size();
    for (size_t i = 0; i < store->size(); ++i) {
      key_bytes += store->key(i).size();
      value_bytes += store->value(i).size();
    }
  }
  AppendU64(count, out);
  AppendU64(key_bytes, out);
  AppendU64(value_bytes, out);
  for (const auto& store : batch.columns) {
    for (size_t i = 0; i < store->size(); ++i) {
      std::string_view key = store->key(i);
      std::string_view value = store->value(i);
      AppendU32(static_cast<uint32_t>(key.size()), out);
      out->append(key);
      AppendU32(static_cast<uint32_t>(value.size()), out);
      out->append(value);
    }
  }
}

Status ParseRecordBatch(std::string_view data, RecordBatch* out) {
  auto store = std::make_shared<ColumnarRecords>();
  RAPIDA_RETURN_IF_ERROR(ParseColumnarRecords(data, store.get()));
  out->records.clear();
  out->columns.clear();
  out->columns.push_back(std::move(store));
  return Status::OK();
}

}  // namespace rapida::mr
