#ifndef RAPIDA_MAPREDUCE_SHARD_H_
#define RAPIDA_MAPREDUCE_SHARD_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "mapreduce/dfs.h"
#include "mapreduce/sharding.h"

namespace rapida::mr {

/// One worker shard of the sharded data plane. A shard owns
///  - a private Dfs namespace holding its segments of every job output
///    (the records whose home — for map-only outputs — or owned key range
///    — for reduce outputs — falls on this shard),
///  - a view of the dictionary segment it serves (the key-hash residue
///    class it owns; term interning itself stays coordinator-side, on the
///    serial reduce merge, so results are byte-identical to the unsharded
///    runtime),
///  - a map-task queue the coordinator dispatches into.
///
/// Counter methods are thread-safe (map tasks of one job run
/// concurrently); queue methods are thread-safe as well.
class Shard {
 public:
  /// The slice of the shared dictionary this shard serves: every key whose
  /// hash falls in the shard's residue class. A pure function of
  /// (residue, modulus), so two processes agree without coordination.
  struct DictSegmentView {
    int residue = 0;
    int modulus = 1;
    bool Owns(uint64_t key_hash) const {
      return OwnerShard(key_hash, modulus) == residue;
    }
  };

  Shard(int id, int num_shards, ShardingScheme scheme)
      : id_(id), num_shards_(num_shards), scheme_(scheme),
        dfs_(std::make_unique<Dfs>()) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  int id() const { return id_; }
  ShardingScheme scheme() const { return scheme_; }

  /// True iff this shard's reducers own the key (hash-residue ownership —
  /// the shard-side analogue of a dictionary/key segment).
  bool OwnsKey(uint64_t key_hash) const {
    return OwnerShard(key_hash, num_shards_) == id_;
  }
  DictSegmentView dict_segment() const {
    return DictSegmentView{id_, num_shards_};
  }

  /// This shard's private file namespace: per-job output segments are
  /// written here under the job's output name.
  Dfs* dfs() { return dfs_.get(); }
  const Dfs* dfs() const { return dfs_.get(); }

  // -- map-task queue (coordinator dispatch) --
  void EnqueueMapTask(size_t task_index) {
    std::lock_guard<std::mutex> lock(queue_mu_);
    task_queue_.push_back(task_index);
  }
  std::optional<size_t> DequeueMapTask() {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (task_queue_.empty()) return std::nullopt;
    size_t t = task_queue_.front();
    task_queue_.pop_front();
    return t;
  }
  size_t QueuedMapTasks() const {
    std::lock_guard<std::mutex> lock(queue_mu_);
    return task_queue_.size();
  }

  // -- cumulative counters (across jobs, cleared by Cluster::ResetHistory) --
  void CountMapTask() { map_tasks_.fetch_add(1, std::memory_order_relaxed); }
  void CountOutput(uint64_t records, uint64_t bytes) {
    output_records_.fetch_add(records, std::memory_order_relaxed);
    output_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  uint64_t map_tasks_run() const {
    return map_tasks_.load(std::memory_order_relaxed);
  }
  uint64_t output_records() const {
    return output_records_.load(std::memory_order_relaxed);
  }
  uint64_t output_bytes() const {
    return output_bytes_.load(std::memory_order_relaxed);
  }

  /// Drops all segments and counters (fresh workflow).
  void Reset() {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      task_queue_.clear();
    }
    map_tasks_.store(0, std::memory_order_relaxed);
    output_records_.store(0, std::memory_order_relaxed);
    output_bytes_.store(0, std::memory_order_relaxed);
    dfs_ = std::make_unique<Dfs>();
  }

 private:
  const int id_;
  const int num_shards_;
  const ShardingScheme scheme_;
  std::unique_ptr<Dfs> dfs_;
  mutable std::mutex queue_mu_;
  std::deque<size_t> task_queue_;
  std::atomic<uint64_t> map_tasks_{0};
  std::atomic<uint64_t> output_records_{0};
  std::atomic<uint64_t> output_bytes_{0};
};

/// The message-passing fabric between shards: the *only* transport for
/// shuffle data in a sharded cluster. Every mapper chunk destined to a
/// receiving shard goes through Deliver, which accounts the flow on each
/// (from -> to) edge — broken down by the home shard of the records'
/// producing inputs — and then runs the physical hand-off into the
/// receiver's reduce input under the channel. Edges where from == to are
/// shard-local (loopback, disk-priced); from != to crosses the network.
///
/// Thread-safe: concurrent mappers deliver simultaneously.
class ShardChannel {
 public:
  explicit ShardChannel(int num_shards)
      : num_shards_(num_shards),
        edges_(static_cast<size_t>(num_shards) * num_shards) {}

  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  int num_shards() const { return num_shards_; }

  /// Delivers one mapper chunk to shard `to`. `by_from_bytes` /
  /// `by_from_records` give the chunk's breakdown by producing home shard
  /// (num_shards entries each; entries may be zero). `handoff`, when
  /// non-null, physically appends the chunk to the receiver's input —
  /// invoked exactly once, inside the channel.
  void Deliver(int to, const uint64_t* by_from_bytes,
               const uint64_t* by_from_records,
               const std::function<void()>& handoff) {
    for (int from = 0; from < num_shards_; ++from) {
      if (by_from_records[from] == 0 && by_from_bytes[from] == 0) continue;
      Edge& e = edges_[static_cast<size_t>(from) * num_shards_ + to];
      e.bytes.fetch_add(by_from_bytes[from], std::memory_order_relaxed);
      e.records.fetch_add(by_from_records[from], std::memory_order_relaxed);
    }
    if (handoff) handoff();
  }

  uint64_t EdgeBytes(int from, int to) const {
    return edges_[static_cast<size_t>(from) * num_shards_ + to].bytes.load(
        std::memory_order_relaxed);
  }
  uint64_t EdgeRecords(int from, int to) const {
    return edges_[static_cast<size_t>(from) * num_shards_ + to].records.load(
        std::memory_order_relaxed);
  }

  /// Bytes that stayed on their shard (loopback edges).
  uint64_t TotalLocalBytes() const {
    uint64_t n = 0;
    for (int s = 0; s < num_shards_; ++s) n += EdgeBytes(s, s);
    return n;
  }
  /// Bytes that crossed a shard boundary.
  uint64_t TotalCrossBytes() const {
    uint64_t n = 0;
    for (int f = 0; f < num_shards_; ++f) {
      for (int t = 0; t < num_shards_; ++t) {
        if (f != t) n += EdgeBytes(f, t);
      }
    }
    return n;
  }

  void Reset() {
    for (Edge& e : edges_) {
      e.bytes.store(0, std::memory_order_relaxed);
      e.records.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Edge {
    std::atomic<uint64_t> bytes{0};
    std::atomic<uint64_t> records{0};
  };

  const int num_shards_;
  std::vector<Edge> edges_;
};

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_SHARD_H_
