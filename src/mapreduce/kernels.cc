#include "mapreduce/kernels.h"

namespace rapida::mr::kernels {

void HashIndex::Init(size_t capacity) {
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  count_ = 0;
}

void HashIndex::Reserve(size_t n) {
  size_t capacity = slots_.size();
  while (n * 4 > capacity * 3) capacity *= 2;
  if (capacity == slots_.size()) return;
  std::vector<Slot> old = std::move(slots_);
  Init(capacity);
  for (const Slot& s : old) {
    if (s.id == kNotFound) continue;
    size_t i = s.hash & mask_;
    while (slots_[i].id != kNotFound) i = (i + 1) & mask_;
    slots_[i] = s;
    ++count_;
  }
}

void HashIndex::Grow() {
  std::vector<Slot> old = std::move(slots_);
  Init(old.size() * 2);
  for (const Slot& s : old) {
    if (s.id == kNotFound) continue;
    size_t i = s.hash & mask_;
    while (slots_[i].id != kNotFound) i = (i + 1) & mask_;
    slots_[i] = s;
    ++count_;
  }
}

void HashIndex::Clear() {
  for (Slot& s : slots_) s = Slot{};
  count_ = 0;
}

void TokenizeValues(const TaggedRecord* records, size_t count, char sep,
                    FieldColumns* out) {
  out->Clear();
  for (size_t i = 0; i < count; ++i) {
    TokenizeRow(records[i].record->value, sep, out);
  }
}

}  // namespace rapida::mr::kernels
