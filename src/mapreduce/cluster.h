#ifndef RAPIDA_MAPREDUCE_CLUSTER_H_
#define RAPIDA_MAPREDUCE_CLUSTER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mapreduce/counters.h"
#include "mapreduce/dfs.h"
#include "mapreduce/job.h"
#include "mapreduce/shard.h"
#include "mapreduce/sharding.h"
#include "util/statusor.h"

namespace rapida::util {
class ThreadPool;
}  // namespace rapida::util

namespace rapida::mr {

/// Parameters of the simulated Hadoop cluster. Defaults model the paper's
/// 10-node VCL setup scaled down: what matters for reproducing the paper's
/// *shape* is the ratio between per-cycle overhead and per-byte costs, not
/// absolute magnitudes.
struct ClusterConfig {
  int num_nodes = 10;
  int map_slots_per_node = 2;
  int reduce_slots_per_node = 1;

  /// HDFS block size used by the *cost model* to derive the mapper count:
  /// effective mappers = ceil(stored_bytes * bytes_scale / block_size) —
  /// so compressed inputs get fewer mappers, as the paper observes for
  /// ORC.
  uint64_t block_size = 128 * 1024 * 1024;

  /// The in-process dataset is a 1/bytes_scale sample of the cluster-scale
  /// dataset being modeled: every byte and record count is multiplied by
  /// this factor in the cost model (execution itself runs on the real
  /// sample). 1.0 = no scaling.
  double bytes_scale = 1.0;

  /// Split size used to partition records across in-process mappers
  /// (affects per-mapper combiner/state granularity, not the cost model).
  uint64_t exec_split_bytes = 1024 * 1024;

  /// Host threads executing map/reduce tasks. 0 = hardware_concurrency;
  /// 1 = the serial path. Any value produces byte-identical outputs and
  /// identical counters/simulated seconds — this knob only changes real
  /// wall time, which Cluster::Run reports in JobStats::wall_seconds.
  int exec_threads = 0;

  /// Fixed per-job cost: JVM spin-up, scheduling, commit (seconds).
  double per_job_overhead_s = 20.0;

  /// Throughputs, MB/s per active task.
  double io_mb_per_s = 60.0;
  double net_mb_per_s = 25.0;

  /// Shuffle sort amplification (spill/merge passes).
  double sort_factor = 2.0;

  /// CPU cost per record through a map or reduce function (microseconds),
  /// amortized across active tasks.
  double cpu_us_per_record = 5.0;

  /// Shards of the data plane. <= 1 keeps the legacy single-address-space
  /// runtime bit-for-bit (one shared Dfs, every shuffle byte booked
  /// local). > 1 turns the cluster into a coordinator over num_shards
  /// Shard objects: map tasks are dispatched through per-shard queues, all
  /// shuffle data moves through the ShardChannel (with per-edge local vs
  /// cross-shard accounting), each shard keeps its private segment of
  /// every job output, and the cost model prices the shards as the
  /// cluster's nodes. Results are byte-identical to the unsharded path at
  /// any shard x thread combination — sharding changes placement,
  /// transport accounting and the cost model, never execution order.
  int num_shards = 0;
  /// How records are placed on shards (only meaningful when sharded).
  ShardingScheme sharding = ShardingScheme::kHashSubject;

  int map_slots() const {
    return (num_shards > 1 ? num_shards : num_nodes) * map_slots_per_node;
  }
  int reduce_slots() const {
    return (num_shards > 1 ? num_shards : num_nodes) * reduce_slots_per_node;
  }
};

/// Observation/interception points a job passes through, for the serving
/// layer: per-phase cancellation (deadlines) and post-job accounting
/// (fair-share slot contention). Methods may be called from the thread
/// driving Cluster::Run; one observer may serve concurrent jobs and must
/// be internally synchronized if it keeps state.
class ClusterObserver {
 public:
  virtual ~ClusterObserver() = default;

  /// Called when job `job_name` reaches `phase` ("setup" before the input
  /// scan, "reduce" at the map/reduce barrier). A non-OK return aborts the
  /// job with that status — the cancellation path for deadline-exceeded
  /// queries mid-job.
  virtual Status OnPhase(const std::string& job_name, const char* phase) {
    (void)job_name;
    (void)phase;
    return Status::OK();
  }

  /// Called with the job's final statistics before they are recorded; a
  /// scheduler fills the sched_* fields here.
  virtual void OnJobComplete(JobStats* stats) { (void)stats; }
};

/// Executes MapReduce jobs against a Dfs: real map/combine/reduce functions
/// over real records (so results are exact), plus an analytic cost model
/// that turns the measured byte/record counters into simulated wall time.
///
/// Run may be called from several threads at once (concurrent jobs of
/// concurrent queries): the job history and lazy worker-pool creation are
/// mutex-protected. history()/ResetHistory still assume a quiesced cluster
/// — engines satisfy this by running their workflow on a cluster no other
/// query shares (the service layer hands each query its own Cluster over
/// the shared Dfs and slot ledger).
class Cluster {
 public:
  Cluster(const ClusterConfig& config, Dfs* dfs);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Runs one job to completion. The output file is written to the Dfs
  /// (capacity limits enforced). Returns the job's statistics.
  StatusOr<JobStats> Run(const JobConfig& job);

  /// Simulated time for a job with the given counters (exposed so tests
  /// and ablations can probe the model directly).
  double EstimateSimSeconds(const JobStats& stats) const;

  const ClusterConfig& config() const { return config_; }
  Dfs* dfs() { return dfs_; }

  /// Sharded data plane (empty accessors when num_shards <= 1).
  int num_shards() const { return static_cast<int>(shards_.size()); }
  Shard* shard(int i) { return shards_[i].get(); }
  const Shard* shard(int i) const { return shards_[i].get(); }
  ShardChannel* channel() { return channel_.get(); }
  const ShardChannel* channel() const { return channel_.get(); }

  /// Attaches (or detaches, nullptr) the observer consulted by Run. Not
  /// owned; must outlive any in-flight job.
  void SetObserver(ClusterObserver* observer) { observer_ = observer; }

  /// All jobs run since construction / last reset, in order. Only
  /// meaningful while no job is in flight.
  const std::vector<JobStats>& history() const { return history_; }
  void ResetHistory();

 private:
  /// Worker threads beyond the calling thread (which always participates);
  /// created lazily on the first job that can use them.
  util::ThreadPool* pool();

  ClusterConfig config_;
  Dfs* dfs_;
  ClusterObserver* observer_ = nullptr;
  std::mutex mu_;  // guards history_ and lazy pool_ creation
  std::vector<JobStats> history_;
  std::unique_ptr<util::ThreadPool> pool_;
  /// Populated iff config_.num_shards > 1.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ShardChannel> channel_;
};

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_CLUSTER_H_
