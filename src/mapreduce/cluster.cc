#include "mapreduce/cluster.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <mutex>
#include <utility>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace rapida::mr {

namespace {

/// Map-side sink: appends key/value bytes to the task's columnar store
/// (contiguous buffers, no per-record heap strings), stamps the key
/// prefix and hash columns once, and accounts serialized bytes in the
/// emit loop (cheaper than a second pass over the buffer).
class ColumnarMapContext : public MapContext {
 public:
  explicit ColumnarMapContext(ColumnarRecords* out) : out_(out) {}
  void Emit(std::string_view key, std::string_view value) override {
    bytes_ += key.size() + value.size() + 2;  // == Record::Bytes()
    out_->Append(key, value);
  }
  uint64_t bytes() const { return bytes_; }

 private:
  ColumnarRecords* out_;
  uint64_t bytes_ = 0;
};

class ColumnarReduceContext : public ReduceContext {
 public:
  explicit ColumnarReduceContext(ColumnarRecords* out) : out_(out) {}
  void Emit(std::string_view key, std::string_view value) override {
    out_->Append(key, value);
  }

 private:
  ColumnarRecords* out_;
};

/// Half-open range of same-key records inside a sorted partition.
struct GroupSpan {
  size_t begin = 0;
  size_t end = 0;
};

/// Stable-sorts `records` by (prefix, key) in place and returns the group
/// spans in ascending key order. The precomputed 8-byte prefix resolves
/// the vast majority of comparisons on one uint64_t; ties fall back to the
/// full key bytes, so the order is exactly `a.key < b.key`. Stability
/// keeps each group's values in arrival order, so the result is exactly
/// what the old per-key grouping produced.
std::vector<GroupSpan> SortAndGroup(std::vector<Record>* records) {
  std::stable_sort(records->begin(), records->end(), RecordKeyLess);
  std::vector<GroupSpan> groups;
  size_t i = 0;
  while (i < records->size()) {
    size_t j = i + 1;
    while (j < records->size() &&
           RecordKeyEq((*records)[j], (*records)[i])) {
      ++j;
    }
    groups.push_back(GroupSpan{i, j});
    i = j;
  }
  return groups;
}

/// Zero-copy view of one group's values inside the sorted records.
ValueSpan SpanValues(const std::vector<Record>& records,
                     const GroupSpan& span) {
  return ValueSpan(records.data() + span.begin, records.data() + span.end);
}

/// One mapper's private results, merged into JobStats at the map barrier.
struct MapTaskResult {
  std::vector<Record> output;  // map-only jobs: this task's final records
  /// Sharded map-only jobs: home shard of each `output` record (parallel
  /// array), for per-shard output segments.
  std::vector<int> output_homes;
  /// Columnar stores backing every record this task still exposes (its
  /// shuffle chunks or, for map-only jobs, `output`). Kept alive until
  /// the job's output is written.
  std::vector<std::shared_ptr<ColumnarRecords>> stores;
  uint64_t map_output_records = 0;
  uint64_t map_output_bytes = 0;
  uint64_t shuffle_records = 0;  // post-combine
  uint64_t shuffle_bytes = 0;
  uint64_t shuffle_local_bytes = 0;  // sharded: stayed on home shard
  uint64_t shuffle_cross_bytes = 0;  // sharded: crossed a channel edge
  uint64_t factorized_groups = 0;     // groups emitted by map/map_finish
  uint64_t factorized_flat_rows = 0;  // flat rows those groups stand for
};

/// One shuffle partition while mappers are filling it: chunks of records
/// tagged with the producing task index, appended under the partition's
/// own mutex (mappers touching different partitions never contend).
struct ShufflePartition {
  std::mutex mu;
  std::vector<std::pair<size_t, std::vector<Record>>> chunks;
  uint64_t num_records = 0;
};

}  // namespace

Cluster::Cluster(const ClusterConfig& config, Dfs* dfs)
    : config_(config), dfs_(dfs) {
  if (config_.num_shards > 1) {
    shards_.reserve(static_cast<size_t>(config_.num_shards));
    for (int s = 0; s < config_.num_shards; ++s) {
      shards_.push_back(
          std::make_unique<Shard>(s, config_.num_shards, config_.sharding));
    }
    channel_ = std::make_unique<ShardChannel>(config_.num_shards);
  }
}

Cluster::~Cluster() = default;

util::ThreadPool* Cluster::pool() {
  int threads = config_.exec_threads;
  if (threads <= 0) threads = util::ThreadPool::HardwareThreads();
  if (threads <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr) {
    // The calling thread joins every ParallelFor, so exec_threads = N
    // means N-way concurrency from N-1 workers plus the caller.
    pool_ = std::make_unique<util::ThreadPool>(threads - 1);
  }
  return pool_.get();
}

void Cluster::ResetHistory() {
  std::lock_guard<std::mutex> lock(mu_);
  history_.clear();
  for (auto& shard : shards_) shard->Reset();
  if (channel_ != nullptr) channel_->Reset();
}

StatusOr<JobStats> Cluster::Run(const JobConfig& job) {
  RAPIDA_CHECK(job.map != nullptr || job.map_batch != nullptr)
      << "job '" << job.name << "' has no map fn";
  const int S = config_.num_shards > 1 ? config_.num_shards : 1;
  const bool sharded = S > 1;
  if (sharded && job.map == nullptr) {
    // Batch kernels emit in bulk, so per-input-record home attribution —
    // the basis of the channel's edge accounting — is impossible. The
    // scalar map path is byte-identical by the kernel contract; engines
    // disable vectorized kernels when sharded.
    return Status::InvalidArgument(
        "job '" + job.name +
        "' has only a batch map fn; sharded execution requires the scalar "
        "map path (run engines with vectorized_kernels off)");
  }
  if (observer_ != nullptr) {
    RAPIDA_RETURN_IF_ERROR(observer_->OnPhase(job.name, "setup"));
  }
  const auto wall_start = std::chrono::steady_clock::now();
  JobStats stats;
  stats.name = job.name;
  stats.map_only = job.reduce == nullptr;
  stats.num_shards = sharded ? S : 0;
  if (sharded) stats.shard_output_bytes.assign(static_cast<size_t>(S), 0);

  // ---- read inputs & form splits ----
  // Each input file contributes ceil(stored/block) splits; records are
  // assigned to splits as contiguous chunks of their file (record i goes
  // to split base + i / per_split), which matches the "many mappers scan
  // disjoint blocks" behaviour closely enough for cost purposes while
  // keeping execution deterministic. Sharding never changes split
  // formation — that is what keeps results byte-identical at any shard
  // count (per-task combiner state and emission order are untouched).
  struct Split {
    std::vector<TaggedRecord> records;
  };
  std::vector<Split> splits;
  for (size_t tag = 0; tag < job.inputs.size(); ++tag) {
    RAPIDA_ASSIGN_OR_RETURN(const Dfs::File* file, dfs_->Open(job.inputs[tag]));
    stats.input_records += file->records.size();
    stats.input_bytes += file->stored_bytes;
    int n_splits = static_cast<int>(
        (file->stored_bytes + config_.exec_split_bytes - 1) /
        config_.exec_split_bytes);
    n_splits = std::max(n_splits, 1);
    size_t base = splits.size();
    splits.resize(base + n_splits);
    size_t per_split =
        (file->records.size() + n_splits - 1) / std::max(n_splits, 1);
    per_split = std::max<size_t>(per_split, 1);
    for (size_t i = 0; i < file->records.size(); ++i) {
      splits[base + i / per_split].records.push_back(
          TaggedRecord{&file->records[i], static_cast<int>(tag)});
    }
  }
  if (splits.empty()) splits.resize(1);
  stats.num_mappers = static_cast<int>(splits.size());

  // ---- sharded dispatch: assign each map task to the shard that homes
  // the plurality of its records (lowest id wins ties), queue it there,
  // and drain the per-shard queues into the dispatch order. Execution
  // order of map tasks never affects results (each task's output is
  // indexed by task, and shuffle chunks re-sort by task), so shard-local
  // dispatch is free. ----
  std::vector<int> task_shard;
  std::vector<size_t> dispatch;
  if (sharded) {
    task_shard.resize(splits.size(), 0);
    std::vector<uint64_t> votes(static_cast<size_t>(S));
    for (size_t t = 0; t < splits.size(); ++t) {
      std::fill(votes.begin(), votes.end(), 0);
      for (const TaggedRecord& tr : splits[t].records) {
        votes[static_cast<size_t>(AssignShard(tr.record->key_hash,
                                              config_.sharding, S))]++;
      }
      int best = 0;
      for (int s = 1; s < S; ++s) {
        if (votes[static_cast<size_t>(s)] >
            votes[static_cast<size_t>(best)]) {
          best = s;
        }
      }
      task_shard[t] = best;
      shards_[static_cast<size_t>(best)]->EnqueueMapTask(t);
    }
    dispatch.reserve(splits.size());
    for (int s = 0; s < S; ++s) {
      while (auto t = shards_[static_cast<size_t>(s)]->DequeueMapTask()) {
        dispatch.push_back(*t);
      }
    }
  }

  util::ThreadPool* workers = pool();
  // Shuffle partition count. Unsharded: one per executor so the reduce
  // side can use the full pool. Sharded: one per shard — partition p IS
  // shard p's reduce input, fed exclusively through the channel.
  // hash(key) % R only decides which partition groups a key; outputs are
  // re-merged into global key order below, so R never affects results or
  // counters.
  const size_t num_partitions =
      stats.map_only
          ? 0
          : (sharded ? static_cast<size_t>(S)
                     : static_cast<size_t>(
                           workers ? workers->num_threads() + 1 : 1));

  // ---- map phase (+ optional combine, partitioning per mapper) ----
  // Mappers run concurrently. Each emits into a task-local buffer,
  // combines locally, then scatters its output into the shared shuffle
  // partitions; only that last append takes a (per-partition) lock.
  std::vector<MapTaskResult> task_results(splits.size());
  std::vector<ShufflePartition> partitions(num_partitions);
  auto run_tasks = [workers](size_t n,
                             const std::function<void(size_t)>& fn) {
    if (workers != nullptr && n > 1) {
      workers->ParallelFor(n, fn);
    } else {
      for (size_t i = 0; i < n; ++i) fn(i);
    }
  };

  auto map_body = [&](size_t task) {
    Split& split = splits[task];
    MapTaskResult& result = task_results[task];
    auto map_store = std::make_shared<ColumnarRecords>();
    map_store->Reserve(split.records.size(), 0);
    ColumnarMapContext ctx(map_store.get());
    // Sharded: home shard of each emitted record — the shard the producing
    // input record lives on under the sharding scheme (combiner flushes
    // belong to the task's shard: they are re-emissions of state that
    // already lives where the mapper runs).
    std::vector<int> emit_homes;
    if (sharded) {
      shards_[static_cast<size_t>(task_shard[task])]->CountMapTask();
      emit_homes.reserve(split.records.size());
      for (const TaggedRecord& tr : split.records) {
        size_t before = map_store->size();
        job.map(*tr.record, tr.tag, &ctx);
        if (map_store->size() != before) {
          emit_homes.resize(map_store->size(),
                            AssignShard(tr.record->key_hash, config_.sharding,
                                        S));
        }
      }
      if (job.map_finish) {
        job.map_finish(&ctx);
        emit_homes.resize(map_store->size(), task_shard[task]);
      }
    } else if (job.map_batch) {
      job.map_batch(split.records.data(), split.records.size(), &ctx);
      if (job.map_finish) job.map_finish(&ctx);
    } else {
      for (const TaggedRecord& tr : split.records) {
        job.map(*tr.record, tr.tag, &ctx);
      }
      if (job.map_finish) job.map_finish(&ctx);
    }
    result.map_output_records = map_store->size();
    result.map_output_bytes = ctx.bytes();
    result.factorized_groups = ctx.factorized_groups();
    result.factorized_flat_rows = ctx.factorized_flat_rows();
    // Emission is done: the store is frozen, so record views are stable.
    std::vector<Record> map_out;
    map_out.reserve(map_store->size());
    map_store->AppendRecordViews(&map_out);

    if (stats.map_only) {
      result.output = std::move(map_out);
      result.output_homes = std::move(emit_homes);
      result.stores.push_back(std::move(map_store));
      return;
    }

    if (job.combine) {
      // Combined output gets its own store so the raw-emission store (and
      // its pre-combine bytes) dies at the end of this scope.
      auto combine_store = std::make_shared<ColumnarRecords>();
      ColumnarReduceContext cctx(combine_store.get());
      std::vector<GroupSpan> groups = SortAndGroup(&map_out);
      for (const GroupSpan& span : groups) {
        job.combine(map_out[span.begin].key, SpanValues(map_out, span),
                    &cctx);
      }
      map_out.clear();
      map_out.reserve(combine_store->size());
      combine_store->AppendRecordViews(&map_out);
      map_store = std::move(combine_store);
      // Combined records are task-level re-aggregations: they live on the
      // mapper's shard.
      if (sharded) emit_homes.assign(map_out.size(), task_shard[task]);
    }
    result.stores.push_back(std::move(map_store));

    // Scatter into per-partition buckets, then one locked append each.
    // Partition choice reuses the hash stamped at Emit — no per-record
    // std::hash here — and never affects results or counters: outputs are
    // re-merged into global key order below.
    std::vector<std::vector<Record>> buckets(num_partitions);
    if (sharded) {
      // Each record flows from its home shard to the shard owning its
      // key's reducer range; the channel is the only path into a shard's
      // reduce input and accounts every (from -> to) edge.
      std::vector<uint64_t> edge_bytes(static_cast<size_t>(S) * S, 0);
      std::vector<uint64_t> edge_records(static_cast<size_t>(S) * S, 0);
      for (size_t i = 0; i < map_out.size(); ++i) {
        const Record& r = map_out[i];
        result.shuffle_records += 1;
        result.shuffle_bytes += r.Bytes();
        const int to = OwnerShard(r.key_hash, S);
        const int from = emit_homes[i];
        edge_bytes[static_cast<size_t>(from) * S + to] += r.Bytes();
        edge_records[static_cast<size_t>(from) * S + to] += 1;
        if (from == to) {
          result.shuffle_local_bytes += r.Bytes();
        } else {
          result.shuffle_cross_bytes += r.Bytes();
        }
        buckets[static_cast<size_t>(to)].push_back(r);
      }
      std::vector<uint64_t> by_from_bytes(static_cast<size_t>(S));
      std::vector<uint64_t> by_from_records(static_cast<size_t>(S));
      for (int to = 0; to < S; ++to) {
        std::vector<Record>& chunk = buckets[static_cast<size_t>(to)];
        if (chunk.empty()) continue;
        for (int from = 0; from < S; ++from) {
          by_from_bytes[static_cast<size_t>(from)] =
              edge_bytes[static_cast<size_t>(from) * S + to];
          by_from_records[static_cast<size_t>(from)] =
              edge_records[static_cast<size_t>(from) * S + to];
        }
        ShufflePartition& part = partitions[static_cast<size_t>(to)];
        channel_->Deliver(to, by_from_bytes.data(), by_from_records.data(),
                          [&part, task, &chunk] {
                            std::lock_guard<std::mutex> lock(part.mu);
                            part.num_records += chunk.size();
                            part.chunks.emplace_back(task, std::move(chunk));
                          });
      }
    } else {
      for (const Record& r : map_out) {
        result.shuffle_records += 1;
        result.shuffle_bytes += r.Bytes();
        size_t p = num_partitions == 1 ? 0 : r.key_hash % num_partitions;
        buckets[p].push_back(r);
      }
      for (size_t p = 0; p < num_partitions; ++p) {
        if (buckets[p].empty()) continue;
        std::lock_guard<std::mutex> lock(partitions[p].mu);
        partitions[p].num_records += buckets[p].size();
        partitions[p].chunks.emplace_back(task, std::move(buckets[p]));
      }
    }
  };

  run_tasks(splits.size(), [&](size_t i) {
    map_body(sharded ? dispatch[i] : i);
  });

  // ---- map barrier: merge per-task accumulators ----
  if (observer_ != nullptr && !stats.map_only) {
    RAPIDA_RETURN_IF_ERROR(observer_->OnPhase(job.name, "reduce"));
  }
  for (const MapTaskResult& r : task_results) {
    stats.map_output_records += r.map_output_records;
    stats.map_output_bytes += r.map_output_bytes;
    stats.shuffle_records += r.shuffle_records;
    stats.shuffle_bytes += r.shuffle_bytes;
    stats.shuffle_local_bytes += r.shuffle_local_bytes;
    stats.shuffle_cross_bytes += r.shuffle_cross_bytes;
    stats.factorized_groups += r.factorized_groups;
    stats.factorized_flat_rows += r.factorized_flat_rows;
  }
  if (!sharded) {
    // One address space: every shuffled byte is a local hand-off. (The
    // 10-node cost model still prices the simulated network; these
    // counters say what crosses *shard* boundaries, and there are none.)
    stats.shuffle_local_bytes = stats.shuffle_bytes;
    stats.shuffle_cross_bytes = 0;
  }

  std::vector<Record> output;
  std::vector<std::shared_ptr<ColumnarRecords>> output_stores;
  // Sharded: owner shard of every output record (parallel to `output`) —
  // map-only records stay on their home shard; reduce records belong to
  // the shard whose reducers own the group key.
  std::vector<int> output_owner;
  if (stats.map_only) {
    // Map-only job: mapper outputs concatenate in split order; the output
    // adopts every task's columnar store.
    stats.shuffle_records = 0;
    stats.shuffle_bytes = 0;
    stats.shuffle_local_bytes = 0;
    stats.shuffle_cross_bytes = 0;
    stats.num_reducers = 0;
    size_t total = 0;
    for (const MapTaskResult& r : task_results) total += r.output.size();
    output.reserve(total);
    if (sharded) output_owner.reserve(total);
    for (MapTaskResult& r : task_results) {
      output.insert(output.end(), r.output.begin(), r.output.end());
      if (sharded) {
        output_owner.insert(output_owner.end(), r.output_homes.begin(),
                            r.output_homes.end());
      }
      for (auto& store : r.stores) output_stores.push_back(std::move(store));
    }
  } else {
    // ---- group phase: per partition, flatten in task order, sort,
    // group-adjacent. Runs one task per partition. ----
    std::vector<std::vector<Record>> part_records(num_partitions);
    std::vector<std::vector<GroupSpan>> part_groups(num_partitions);
    run_tasks(num_partitions, [&](size_t p) {
      ShufflePartition& part = partitions[p];
      std::sort(part.chunks.begin(), part.chunks.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<Record>& flat = part_records[p];
      flat.reserve(part.num_records);
      for (auto& [task, chunk] : part.chunks) {
        for (Record& r : chunk) flat.push_back(std::move(r));
      }
      part.chunks.clear();
      part_groups[p] = SortAndGroup(&flat);
    });

    size_t distinct_keys = 0;
    for (const auto& groups : part_groups) distinct_keys += groups.size();
    stats.num_reducers =
        std::min<int>(config_.reduce_slots(),
                      std::max<int>(1, static_cast<int>(distinct_keys)));

    if (job.reduce_parallel_safe && workers != nullptr &&
        num_partitions > 1) {
      // ---- parallel reduce: each partition reduces its own key groups,
      // recording the output span per group; spans are then concatenated
      // in ascending input-key order, which reproduces the serial path's
      // output byte-for-byte. ----
      struct ReducedGroup {
        uint64_t key_prefix;   // input-key sort key, prefix first
        std::string_view key;  // view into part_records (stable)
        size_t part;
        size_t begin, end;  // span in part_out[part]
      };
      std::vector<std::vector<Record>> part_out(num_partitions);
      std::vector<std::shared_ptr<ColumnarRecords>> part_stores(
          num_partitions);
      std::vector<std::vector<ReducedGroup>> part_spans(num_partitions);
      std::vector<uint64_t> part_fgroups(num_partitions, 0);
      std::vector<uint64_t> part_frows(num_partitions, 0);
      run_tasks(num_partitions, [&](size_t p) {
        std::vector<Record>& records = part_records[p];
        part_stores[p] = std::make_shared<ColumnarRecords>();
        ColumnarRecords& store = *part_stores[p];
        ColumnarReduceContext rctx(&store);
        part_spans[p].reserve(part_groups[p].size());
        for (const GroupSpan& span : part_groups[p]) {
          size_t before = store.size();
          const Record& head = records[span.begin];
          job.reduce(head.key, SpanValues(records, span), &rctx);
          part_spans[p].push_back(ReducedGroup{head.key_prefix, head.key, p,
                                               before, store.size()});
        }
        part_fgroups[p] = rctx.factorized_groups();
        part_frows[p] = rctx.factorized_flat_rows();
        // This partition's emissions are done; materialize stable views.
        part_out[p].reserve(store.size());
        store.AppendRecordViews(&part_out[p]);
      });
      for (size_t p = 0; p < num_partitions; ++p) {
        stats.factorized_groups += part_fgroups[p];
        stats.factorized_flat_rows += part_frows[p];
      }
      std::vector<ReducedGroup> all_groups;
      all_groups.reserve(distinct_keys);
      for (const auto& spans : part_spans) {
        all_groups.insert(all_groups.end(), spans.begin(), spans.end());
      }
      std::sort(all_groups.begin(), all_groups.end(),
                [](const ReducedGroup& a, const ReducedGroup& b) {
                  if (a.key_prefix != b.key_prefix) {
                    return a.key_prefix < b.key_prefix;
                  }
                  return a.key < b.key;
                });
      size_t total = 0;
      for (const auto& out : part_out) total += out.size();
      output.reserve(total);
      if (sharded) output_owner.reserve(total);
      for (const ReducedGroup& g : all_groups) {
        output.insert(output.end(), part_out[g.part].begin() + g.begin,
                      part_out[g.part].begin() + g.end);
        // Sharded: partition index IS the owning shard.
        if (sharded) {
          output_owner.insert(output_owner.end(), g.end - g.begin,
                              static_cast<int>(g.part));
        }
      }
      output_stores = std::move(part_stores);
    } else {
      // ---- serial reduce: k-way merge of the sorted partitions invokes
      // the reduce fn once per key in *global* key order — identical to
      // the single-threaded runtime, so reduce fns that mutate shared
      // state (e.g. dictionary interning in aggregation finalizers) see
      // the exact same sequence of calls. ----
      auto reduce_store = std::make_shared<ColumnarRecords>();
      ColumnarReduceContext rctx(reduce_store.get());
      std::vector<size_t> next(num_partitions, 0);
      for (;;) {
        size_t best = num_partitions;
        const Record* best_head = nullptr;
        for (size_t p = 0; p < num_partitions; ++p) {
          if (next[p] >= part_groups[p].size()) continue;
          const Record& head =
              part_records[p][part_groups[p][next[p]].begin];
          if (best_head == nullptr || RecordKeyLess(head, *best_head)) {
            best = p;
            best_head = &head;
          }
        }
        if (best == num_partitions) break;
        const GroupSpan& span = part_groups[best][next[best]++];
        job.reduce(part_records[best][span.begin].key,
                   SpanValues(part_records[best], span), &rctx);
        // Sharded: everything this group emitted belongs to the owning
        // partition's shard.
        if (sharded) {
          output_owner.resize(reduce_store->size(),
                              static_cast<int>(best));
        }
      }
      stats.factorized_groups += rctx.factorized_groups();
      stats.factorized_flat_rows += rctx.factorized_flat_rows();
      output.reserve(reduce_store->size());
      reduce_store->AppendRecordViews(&output);
      output_stores.push_back(std::move(reduce_store));
    }
  }

  stats.output_records = output.size();
  for (const Record& r : output) stats.output_bytes += r.Bytes();
  if (job.output_options.compressed) {
    stats.output_bytes = static_cast<uint64_t>(
        static_cast<double>(stats.output_bytes) *
        job.output_options.compression_ratio);
  }

  if (!job.output.empty()) {
    // Sharded: before the coordinator write consumes `output`, carve the
    // per-shard segments — each shard's private Dfs gets the records it
    // owns, sharing the columnar stores (no byte copies).
    if (sharded) {
      for (int s = 0; s < S; ++s) {
        RecordBatch segment;
        uint64_t seg_bytes = 0;
        for (size_t i = 0; i < output.size(); ++i) {
          if (output_owner[i] != s) continue;
          segment.records.push_back(output[i]);
          seg_bytes += output[i].Bytes();
        }
        const uint64_t seg_records = segment.records.size();
        if (seg_records == 0) continue;
        segment.columns = output_stores;
        Shard* shard = shards_[static_cast<size_t>(s)].get();
        RAPIDA_RETURN_IF_ERROR(shard->dfs()->Write(
            job.output, std::move(segment), job.output_options));
        uint64_t stored = seg_bytes;
        if (job.output_options.compressed) {
          stored = static_cast<uint64_t>(
              static_cast<double>(stored) *
              job.output_options.compression_ratio);
        }
        stats.shard_output_bytes[static_cast<size_t>(s)] = stored;
        shard->CountOutput(seg_records, stored);
      }
    }
    RecordBatch batch;
    batch.records = std::move(output);
    batch.columns = std::move(output_stores);
    RAPIDA_RETURN_IF_ERROR(
        dfs_->Write(job.output, std::move(batch), job.output_options));
  }

  stats.sim_seconds = EstimateSimSeconds(stats);
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (observer_ != nullptr) observer_->OnJobComplete(&stats);
  {
    std::lock_guard<std::mutex> lock(mu_);
    history_.push_back(stats);
  }
  return stats;
}

double Cluster::EstimateSimSeconds(const JobStats& stats) const {
  const double mb = 1024.0 * 1024.0;
  const double scale = config_.bytes_scale;

  // Scaled quantities: the executed dataset is a 1/scale sample of the
  // modeled one.
  double input_bytes = static_cast<double>(stats.input_bytes) * scale;
  double input_records = static_cast<double>(stats.input_records) * scale;
  double shuffle_bytes = static_cast<double>(stats.shuffle_bytes) * scale;
  double shuffle_records = static_cast<double>(stats.shuffle_records) * scale;
  double output_bytes = static_cast<double>(stats.output_bytes) * scale;

  // Map phase: one mapper per (scaled) block; mappers run in waves over
  // the available slots. Compressed inputs produce fewer mappers — the
  // paper's ORC parallelism effect. Sharded clusters expose
  // num_shards * slots_per_node slots (the shards are the nodes).
  int eff_mappers = static_cast<int>(
      (input_bytes + static_cast<double>(config_.block_size) - 1) /
      static_cast<double>(config_.block_size));
  eff_mappers = std::max(eff_mappers, 1);
  int parallel_maps = std::max(std::min(eff_mappers, config_.map_slots()), 1);
  double map_read_s =
      (input_bytes / mb) / (config_.io_mb_per_s * parallel_maps);
  double map_cpu_s =
      input_records * config_.cpu_us_per_record * 1e-6 / parallel_maps;

  double shuffle_s = 0;
  double reduce_cpu_s = 0;
  int parallel_reds = 1;
  if (!stats.map_only) {
    // A single reduce group (GROUP BY ALL) cannot parallelize; otherwise
    // the scaled key space fills the reduce slots.
    parallel_reds = stats.num_reducers <= 1
                        ? 1
                        : std::max(config_.reduce_slots(), 1);
    if (config_.num_shards > 1) {
      // Shard-aware shuffle pricing: only bytes that cross a channel edge
      // pay the network rate; shard-local hand-offs move at disk speed.
      // Stats whose split doesn't reconcile (hand-built ablation stats)
      // conservatively price everything as crossing.
      double cross_bytes =
          static_cast<double>(stats.shuffle_cross_bytes) * scale;
      double local_bytes =
          static_cast<double>(stats.shuffle_local_bytes) * scale;
      if (stats.shuffle_local_bytes + stats.shuffle_cross_bytes !=
          stats.shuffle_bytes) {
        cross_bytes = shuffle_bytes;
        local_bytes = 0;
      }
      shuffle_s = (cross_bytes / mb) * config_.sort_factor /
                      (config_.net_mb_per_s * parallel_reds) +
                  (local_bytes / mb) * config_.sort_factor /
                      (config_.io_mb_per_s * parallel_reds);
    } else {
      shuffle_s = (shuffle_bytes / mb) * config_.sort_factor /
                  (config_.net_mb_per_s * parallel_reds);
    }
    reduce_cpu_s =
        shuffle_records * config_.cpu_us_per_record * 1e-6 / parallel_reds;
  }

  double write_s = (output_bytes / mb) / (config_.io_mb_per_s * parallel_reds);

  return config_.per_job_overhead_s + map_read_s + map_cpu_s + shuffle_s +
         reduce_cpu_s + write_s;
}

}  // namespace rapida::mr
