#include "mapreduce/cluster.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.h"

namespace rapida::mr {

namespace {

class VectorMapContext : public MapContext {
 public:
  explicit VectorMapContext(std::vector<Record>* out) : out_(out) {}
  void Emit(std::string key, std::string value) override {
    out_->push_back(Record{std::move(key), std::move(value)});
  }

 private:
  std::vector<Record>* out_;
};

class VectorReduceContext : public ReduceContext {
 public:
  explicit VectorReduceContext(std::vector<Record>* out) : out_(out) {}
  void Emit(std::string key, std::string value) override {
    out_->push_back(Record{std::move(key), std::move(value)});
  }

 private:
  std::vector<Record>* out_;
};

/// Groups records by key preserving a deterministic key order.
std::map<std::string, std::vector<std::string>> GroupByKey(
    std::vector<Record> records) {
  std::map<std::string, std::vector<std::string>> groups;
  for (Record& r : records) {
    groups[r.key].push_back(std::move(r.value));
  }
  return groups;
}

}  // namespace

StatusOr<JobStats> Cluster::Run(const JobConfig& job) {
  RAPIDA_CHECK(job.map != nullptr) << "job '" << job.name << "' has no map fn";
  JobStats stats;
  stats.name = job.name;
  stats.map_only = job.reduce == nullptr;

  // ---- read inputs & form splits ----
  // Each input file contributes ceil(stored/block) splits; records are
  // assigned to splits round-robin within their file, which matches the
  // "many mappers scan disjoint blocks" behaviour closely enough for cost
  // purposes while keeping execution deterministic.
  struct Split {
    std::vector<std::pair<const Record*, int>> records;  // (record, tag)
  };
  std::vector<Split> splits;
  for (size_t tag = 0; tag < job.inputs.size(); ++tag) {
    RAPIDA_ASSIGN_OR_RETURN(const Dfs::File* file, dfs_->Open(job.inputs[tag]));
    stats.input_records += file->records.size();
    stats.input_bytes += file->stored_bytes;
    int n_splits = static_cast<int>(
        (file->stored_bytes + config_.exec_split_bytes - 1) /
        config_.exec_split_bytes);
    n_splits = std::max(n_splits, 1);
    size_t base = splits.size();
    splits.resize(base + n_splits);
    size_t per_split =
        (file->records.size() + n_splits - 1) / std::max(n_splits, 1);
    per_split = std::max<size_t>(per_split, 1);
    for (size_t i = 0; i < file->records.size(); ++i) {
      splits[base + i / per_split].records.emplace_back(&file->records[i],
                                                        static_cast<int>(tag));
    }
  }
  if (splits.empty()) splits.resize(1);
  stats.num_mappers = static_cast<int>(splits.size());

  // ---- map phase (+ optional combine per mapper) ----
  std::vector<Record> shuffle_input;
  for (Split& split : splits) {
    std::vector<Record> map_out;
    VectorMapContext ctx(&map_out);
    for (const auto& [rec, tag] : split.records) {
      job.map(*rec, tag, &ctx);
    }
    if (job.map_finish) job.map_finish(&ctx);
    stats.map_output_records += map_out.size();
    for (const Record& r : map_out) stats.map_output_bytes += r.Bytes();

    if (job.combine && job.reduce) {
      std::vector<Record> combined;
      VectorReduceContext cctx(&combined);
      for (auto& [key, values] : GroupByKey(std::move(map_out))) {
        job.combine(key, values, &cctx);
      }
      map_out = std::move(combined);
    }
    for (Record& r : map_out) shuffle_input.push_back(std::move(r));
  }

  std::vector<Record> output;
  if (stats.map_only) {
    // Map-only job: mapper output goes straight to the output file.
    stats.shuffle_records = 0;
    stats.shuffle_bytes = 0;
    stats.num_reducers = 0;
    output = std::move(shuffle_input);
  } else {
    stats.shuffle_records = shuffle_input.size();
    for (const Record& r : shuffle_input) stats.shuffle_bytes += r.Bytes();

    auto groups = GroupByKey(std::move(shuffle_input));
    stats.num_reducers =
        std::min<int>(config_.reduce_slots(),
                      std::max<int>(1, static_cast<int>(groups.size())));
    VectorReduceContext rctx(&output);
    for (auto& [key, values] : groups) {
      job.reduce(key, values, &rctx);
    }
  }

  stats.output_records = output.size();
  for (const Record& r : output) stats.output_bytes += r.Bytes();
  if (job.output_options.compressed) {
    stats.output_bytes = static_cast<uint64_t>(
        static_cast<double>(stats.output_bytes) *
        job.output_options.compression_ratio);
  }

  if (!job.output.empty()) {
    RAPIDA_RETURN_IF_ERROR(
        dfs_->Write(job.output, std::move(output), job.output_options));
  }

  stats.sim_seconds = EstimateSimSeconds(stats);
  history_.push_back(stats);
  return stats;
}

double Cluster::EstimateSimSeconds(const JobStats& stats) const {
  const double mb = 1024.0 * 1024.0;
  const double scale = config_.bytes_scale;

  // Scaled quantities: the executed dataset is a 1/scale sample of the
  // modeled one.
  double input_bytes = static_cast<double>(stats.input_bytes) * scale;
  double input_records = static_cast<double>(stats.input_records) * scale;
  double shuffle_bytes = static_cast<double>(stats.shuffle_bytes) * scale;
  double shuffle_records = static_cast<double>(stats.shuffle_records) * scale;
  double output_bytes = static_cast<double>(stats.output_bytes) * scale;

  // Map phase: one mapper per (scaled) block; mappers run in waves over
  // the available slots. Compressed inputs produce fewer mappers — the
  // paper's ORC parallelism effect.
  int eff_mappers = static_cast<int>(
      (input_bytes + static_cast<double>(config_.block_size) - 1) /
      static_cast<double>(config_.block_size));
  eff_mappers = std::max(eff_mappers, 1);
  int parallel_maps = std::max(std::min(eff_mappers, config_.map_slots()), 1);
  double map_read_s =
      (input_bytes / mb) / (config_.io_mb_per_s * parallel_maps);
  double map_cpu_s =
      input_records * config_.cpu_us_per_record * 1e-6 / parallel_maps;

  double shuffle_s = 0;
  double reduce_cpu_s = 0;
  int parallel_reds = 1;
  if (!stats.map_only) {
    // A single reduce group (GROUP BY ALL) cannot parallelize; otherwise
    // the scaled key space fills the reduce slots.
    parallel_reds = stats.num_reducers <= 1
                        ? 1
                        : std::max(config_.reduce_slots(), 1);
    shuffle_s = (shuffle_bytes / mb) * config_.sort_factor /
                (config_.net_mb_per_s * parallel_reds);
    reduce_cpu_s =
        shuffle_records * config_.cpu_us_per_record * 1e-6 / parallel_reds;
  }

  double write_s = (output_bytes / mb) / (config_.io_mb_per_s * parallel_reds);

  return config_.per_job_overhead_s + map_read_s + map_cpu_s + shuffle_s +
         reduce_cpu_s + write_s;
}

}  // namespace rapida::mr
