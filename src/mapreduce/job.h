#ifndef RAPIDA_MAPREDUCE_JOB_H_
#define RAPIDA_MAPREDUCE_JOB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mapreduce/dfs.h"
#include "mapreduce/record.h"

namespace rapida::mr {

/// Sink for map-side emissions. Each map task (one input split) gets its
/// own context, and map tasks may run on different threads concurrently
/// (ClusterConfig::exec_threads). A map function must therefore keep any
/// cross-record mutable state in TaskState() — never in shared captures —
/// and may only read from shared captured structures.
class MapContext {
 public:
  virtual ~MapContext() = default;
  virtual void Emit(std::string key, std::string value) = 0;

  /// Lazily-created state scoped to this map task: the first call
  /// value-initializes a T, later calls return the same object, and it is
  /// destroyed after the task's map_finish. This is how per-mapper
  /// accumulators (e.g. the paper's multiAggMap hash pre-aggregation,
  /// Alg. 3) stay correct when map tasks run concurrently: capture the
  /// immutable specs in the lambda, keep the mutable table here.
  template <typename T>
  T* TaskState() {
    if (state_ == nullptr) state_ = std::make_unique<StateHolder<T>>();
    return &static_cast<StateHolder<T>*>(state_.get())->value;
  }

 private:
  struct StateHolderBase {
    virtual ~StateHolderBase() = default;
  };
  template <typename T>
  struct StateHolder : StateHolderBase {
    T value{};
  };
  std::unique_ptr<StateHolderBase> state_;
};

/// Sink for reduce-side emissions.
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;
  virtual void Emit(std::string key, std::string value) = 0;
};

/// Per-record map function. `input_tag` identifies which input file the
/// record came from (0-based index into JobConfig::inputs) so joins can
/// tag their sides — real MapReduce gets this from the input split path.
/// May run concurrently with other map tasks; see MapContext.
using MapFn =
    std::function<void(const Record& record, int input_tag, MapContext*)>;

/// Called once per mapper after its split is exhausted; used for map-side
/// state flush (e.g. the paper's `multiAggMap` hash pre-aggregation,
/// Alg. 3 Map.clean()). The default no-op is fine for stateless mappers.
using MapFinishFn = std::function<void(MapContext*)>;

/// Reduce (and combine) function: one distinct key with all its values.
using ReduceFn = std::function<void(const std::string& key,
                                    const std::vector<std::string>& values,
                                    ReduceContext*)>;

/// Declarative description of one MapReduce job.
struct JobConfig {
  std::string name;
  std::vector<std::string> inputs;  // DFS file names
  std::string output;               // DFS file name

  MapFn map;                 // required
  MapFinishFn map_finish;    // optional
  ReduceFn combine;          // optional (map-side, per mapper)
  ReduceFn reduce;           // null => map-only job (no shuffle)

  /// Whether `reduce` may be invoked from several threads at once (for
  /// different keys). Safe only for pure functions of (key, values) —
  /// joins, distinct-projections. Leave false (the default) when reduce
  /// touches shared mutable state; the runtime then calls it serially in
  /// global key order, exactly like the single-threaded path, which in
  /// particular keeps rdf::Dictionary interning deterministic for
  /// aggregation finalizers.
  bool reduce_parallel_safe = false;

  /// Storage options for the output file (e.g. Hive writes ORC-compressed
  /// intermediates).
  FileOptions output_options;
};

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_JOB_H_
