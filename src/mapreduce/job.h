#ifndef RAPIDA_MAPREDUCE_JOB_H_
#define RAPIDA_MAPREDUCE_JOB_H_

#include <cstddef>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mapreduce/dfs.h"
#include "mapreduce/record.h"

namespace rapida::mr {

/// Lazily-created state scoped to one map or reduce task (shared base of
/// MapContext / ReduceContext): the first call value-initializes a T,
/// later calls return the same object, and it dies with the context. A
/// context must use one consistent T for its lifetime.
class TaskStateBase {
 public:
  /// How per-task accumulators (e.g. the paper's multiAggMap hash
  /// pre-aggregation, Alg. 3) and batch-kernel scratch buffers stay
  /// correct when tasks run concurrently: capture the immutable specs in
  /// the lambda, keep the mutable state here.
  template <typename T>
  T* TaskState() {
    if (state_ == nullptr) state_ = std::make_unique<StateHolder<T>>();
    return &static_cast<StateHolder<T>*>(state_.get())->value;
  }

  /// Factorized-operator instrumentation: a producer calls this once per
  /// factorized group record it emits, with the flat row count the group
  /// stands for. The cluster folds the per-context totals into
  /// JobStats::factorized_groups / factorized_flat_rows at the same
  /// barriers as the byte counters; jobs that never call it report 0.
  void NoteFactorizedGroup(uint64_t flat_rows) {
    factorized_groups_ += 1;
    factorized_flat_rows_ += flat_rows;
  }
  uint64_t factorized_groups() const { return factorized_groups_; }
  uint64_t factorized_flat_rows() const { return factorized_flat_rows_; }

 private:
  uint64_t factorized_groups_ = 0;
  uint64_t factorized_flat_rows_ = 0;
  struct StateHolderBase {
    virtual ~StateHolderBase() = default;
  };
  template <typename T>
  struct StateHolder : StateHolderBase {
    T value{};
  };
  std::unique_ptr<StateHolderBase> state_;
};

/// Sink for map-side emissions. Each map task (one input split) gets its
/// own context, and map tasks may run on different threads concurrently
/// (ClusterConfig::exec_threads). A map function must therefore keep any
/// cross-record mutable state in TaskState() — never in shared captures —
/// and may only read from shared captured structures.
class MapContext : public TaskStateBase {
 public:
  virtual ~MapContext() = default;
  /// Appends both byte ranges to the task's columnar store, so
  /// temporaries are fine; no per-record heap allocation happens on this
  /// path.
  virtual void Emit(std::string_view key, std::string_view value) = 0;
};

/// Sink for reduce-side emissions. Emit appends to the reduce task's
/// columnar store, exactly like MapContext::Emit. TaskState() is scoped
/// to the reduce task (one shuffle partition, or the whole serial merge) —
/// it persists *across* the task's key groups, which is what lets batch
/// kernels reuse scratch buffers instead of reallocating per group.
class ReduceContext : public TaskStateBase {
 public:
  virtual ~ReduceContext() = default;
  virtual void Emit(std::string_view key, std::string_view value) = 0;
};

/// Zero-copy view of one key group's values: the group's records sit
/// contiguously in the sorted shuffle partition, and iterating a ValueSpan
/// yields each record's value as a string_view into that partition. Valid
/// only for the duration of the reduce/combine call it is passed to.
class ValueSpan {
 public:
  ValueSpan() = default;
  ValueSpan(const Record* begin, const Record* end)
      : begin_(begin), end_(end) {}

  size_t size() const { return static_cast<size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  std::string_view operator[](size_t i) const { return begin_[i].value; }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::string_view;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::string_view*;
    using reference = std::string_view;

    explicit iterator(const Record* r) : r_(r) {}
    std::string_view operator*() const { return r_->value; }
    iterator& operator++() {
      ++r_;
      return *this;
    }
    bool operator==(const iterator& o) const { return r_ == o.r_; }
    bool operator!=(const iterator& o) const { return r_ != o.r_; }

   private:
    const Record* r_;
  };

  iterator begin() const { return iterator(begin_); }
  iterator end() const { return iterator(end_); }

 private:
  const Record* begin_ = nullptr;
  const Record* end_ = nullptr;
};

/// Per-record map function. `input_tag` identifies which input file the
/// record came from (0-based index into JobConfig::inputs) so joins can
/// tag their sides — real MapReduce gets this from the input split path.
/// May run concurrently with other map tasks; see MapContext.
using MapFn =
    std::function<void(const Record& record, int input_tag, MapContext*)>;

/// One split row handed to a batch map kernel: the record (with its
/// pre-stamped key_hash / key_prefix columns) plus its input tag.
struct TaggedRecord {
  const Record* record = nullptr;
  int tag = 0;
};

/// Batch-at-a-time map kernel: called once per input split with the whole
/// split. Must emit exactly the records the per-record `map` would emit,
/// in the same order — the runtime treats it as pure dispatch/layout
/// optimization, and every counter (and therefore sim_seconds) is
/// computed from the emissions, which are identical either way.
using MapBatchFn =
    std::function<void(const TaggedRecord* records, size_t count,
                       MapContext*)>;

/// Called once per mapper after its split is exhausted; used for map-side
/// state flush (e.g. the paper's `multiAggMap` hash pre-aggregation,
/// Alg. 3 Map.clean()). The default no-op is fine for stateless mappers.
using MapFinishFn = std::function<void(MapContext*)>;

/// Reduce (and combine) function: one distinct key with all its values.
/// The key and the spanned values point into the sorted partition and stay
/// valid only for this call; copy anything that must outlive it.
using ReduceFn = std::function<void(std::string_view key,
                                    const ValueSpan& values, ReduceContext*)>;

/// Declarative description of one MapReduce job.
struct JobConfig {
  std::string name;
  std::vector<std::string> inputs;  // DFS file names
  std::string output;               // DFS file name

  MapFn map;                 // required unless map_batch is set
  /// Optional vectorized override of `map`: when set, the runtime hands
  /// each split to this kernel instead of dispatching per record. Planners
  /// install it only when the kernel path is enabled; the scalar `map`
  /// stays the fallback (and the semantic reference).
  MapBatchFn map_batch;
  MapFinishFn map_finish;    // optional
  ReduceFn combine;          // optional (map-side, per mapper)
  ReduceFn reduce;           // null => map-only job (no shuffle)

  /// Whether `reduce` may be invoked from several threads at once (for
  /// different keys). Safe only for pure functions of (key, values) —
  /// joins, distinct-projections. Leave false (the default) when reduce
  /// touches shared mutable state; the runtime then calls it serially in
  /// global key order, exactly like the single-threaded path, which in
  /// particular keeps rdf::Dictionary interning deterministic for
  /// aggregation finalizers.
  bool reduce_parallel_safe = false;

  /// Storage options for the output file (e.g. Hive writes ORC-compressed
  /// intermediates).
  FileOptions output_options;
};

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_JOB_H_
