#ifndef RAPIDA_MAPREDUCE_JOB_H_
#define RAPIDA_MAPREDUCE_JOB_H_

#include <functional>
#include <string>
#include <vector>

#include "mapreduce/dfs.h"
#include "mapreduce/record.h"

namespace rapida::mr {

/// Sink for map-side emissions.
class MapContext {
 public:
  virtual ~MapContext() = default;
  virtual void Emit(std::string key, std::string value) = 0;
};

/// Sink for reduce-side emissions.
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;
  virtual void Emit(std::string key, std::string value) = 0;
};

/// Per-record map function. `input_tag` identifies which input file the
/// record came from (0-based index into JobConfig::inputs) so joins can
/// tag their sides — real MapReduce gets this from the input split path.
using MapFn =
    std::function<void(const Record& record, int input_tag, MapContext*)>;

/// Called once per mapper after its split is exhausted; used for map-side
/// state flush (e.g. the paper's `multiAggMap` hash pre-aggregation,
/// Alg. 3 Map.clean()). The default no-op is fine for stateless mappers.
using MapFinishFn = std::function<void(MapContext*)>;

/// Reduce (and combine) function: one distinct key with all its values.
using ReduceFn = std::function<void(const std::string& key,
                                    const std::vector<std::string>& values,
                                    ReduceContext*)>;

/// Declarative description of one MapReduce job.
struct JobConfig {
  std::string name;
  std::vector<std::string> inputs;  // DFS file names
  std::string output;               // DFS file name

  MapFn map;                 // required
  MapFinishFn map_finish;    // optional
  ReduceFn combine;          // optional (map-side, per mapper)
  ReduceFn reduce;           // null => map-only job (no shuffle)

  /// Storage options for the output file (e.g. Hive writes ORC-compressed
  /// intermediates).
  FileOptions output_options;
};

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_JOB_H_
