#include "mapreduce/sharding.h"

namespace rapida::mr {

const char* ShardingSchemeName(ShardingScheme scheme) {
  switch (scheme) {
    case ShardingScheme::kHashSubject: return "hash-subject";
    case ShardingScheme::kLocality: return "locality";
  }
  return "unknown";
}

bool ParseShardingScheme(std::string_view name, ShardingScheme* out) {
  if (name == "hash" || name == "hash-subject") {
    *out = ShardingScheme::kHashSubject;
    return true;
  }
  if (name == "locality" || name == "locality-aware") {
    *out = ShardingScheme::kLocality;
    return true;
  }
  return false;
}

}  // namespace rapida::mr
