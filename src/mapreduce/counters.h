#ifndef RAPIDA_MAPREDUCE_COUNTERS_H_
#define RAPIDA_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rapida::mr {

/// Per-job execution statistics, filled by Cluster::Run. These are the
/// quantities the paper's evaluation reasons about: number of MR cycles,
/// bytes scanned / shuffled / materialized, and the derived simulated time.
struct JobStats {
  std::string name;
  bool map_only = false;

  uint64_t input_records = 0;
  uint64_t input_bytes = 0;         // stored bytes scanned (post-compression)
  uint64_t map_output_records = 0;  // before combine
  uint64_t map_output_bytes = 0;
  uint64_t shuffle_records = 0;     // after combine (map output to reducers)
  uint64_t shuffle_bytes = 0;
  /// Honest shuffle placement split (always: local + cross ==
  /// shuffle_bytes). Historically every post-combine byte was booked as if
  /// it crossed the network; in fact combiner-local re-emissions whose
  /// reducer lives on the producing shard never leave it. Unsharded runs
  /// are one address space: everything is local, nothing crosses.
  uint64_t shuffle_local_bytes = 0;  // stayed on the producing shard
  uint64_t shuffle_cross_bytes = 0;  // crossed a shard boundary
  uint64_t output_records = 0;
  uint64_t output_bytes = 0;        // stored bytes materialized

  /// Factorized-intermediate instrumentation: group records emitted by
  /// this job's operators and the flat rows they stand for (0/0 for jobs
  /// whose outputs are flat). factorization factor = flat rows / groups.
  uint64_t factorized_groups = 0;
  uint64_t factorized_flat_rows = 0;
  /// flat rows / factorized groups; 1 when the job emitted no groups.
  double FactorizationFactor() const {
    if (factorized_groups == 0) return 1.0;
    return static_cast<double>(factorized_flat_rows) /
           static_cast<double>(factorized_groups);
  }

  int num_mappers = 0;
  int num_reducers = 0;
  /// Shards the job executed across (0 = legacy unsharded data plane).
  int num_shards = 0;
  /// Per-shard output segment bytes (empty when unsharded): index s is the
  /// stored size of shard s's private segment of this job's output.
  std::vector<uint64_t> shard_output_bytes;

  double sim_seconds = 0;   // simulated wall time from the cost model
  double wall_seconds = 0;  // real host time spent in Cluster::Run

  /// Filled by a fair-share scheduler (service layer) when one is attached
  /// to the cluster; untouched (stretch 1, sched == sim) otherwise.
  /// `sched_stretch` is the slot-contention multiplier the job suffered
  /// from concurrent sessions, and `sched_sim_seconds` the contention-
  /// adjusted simulated duration (>= sim_seconds).
  double sched_stretch = 1.0;
  double sched_sim_seconds = 0;
};

/// Aggregate over a workflow (one engine executing one query).
struct WorkflowStats {
  std::vector<JobStats> jobs;

  int NumCycles() const { return static_cast<int>(jobs.size()); }
  int NumMapOnlyCycles() const {
    int n = 0;
    for (const JobStats& j : jobs) n += j.map_only ? 1 : 0;
    return n;
  }
  uint64_t TotalInputBytes() const {
    uint64_t n = 0;
    for (const JobStats& j : jobs) n += j.input_bytes;
    return n;
  }
  uint64_t TotalShuffleBytes() const {
    uint64_t n = 0;
    for (const JobStats& j : jobs) n += j.shuffle_bytes;
    return n;
  }
  uint64_t TotalLocalShuffleBytes() const {
    uint64_t n = 0;
    for (const JobStats& j : jobs) n += j.shuffle_local_bytes;
    return n;
  }
  uint64_t TotalCrossShardBytes() const {
    uint64_t n = 0;
    for (const JobStats& j : jobs) n += j.shuffle_cross_bytes;
    return n;
  }
  uint64_t TotalOutputBytes() const {
    uint64_t n = 0;
    for (const JobStats& j : jobs) n += j.output_bytes;
    return n;
  }
  uint64_t TotalFactorizedGroups() const {
    uint64_t n = 0;
    for (const JobStats& j : jobs) n += j.factorized_groups;
    return n;
  }
  uint64_t TotalFactorizedFlatRows() const {
    uint64_t n = 0;
    for (const JobStats& j : jobs) n += j.factorized_flat_rows;
    return n;
  }
  /// Workflow-level factorization factor (1 when nothing factorized).
  double FactorizationFactor() const {
    uint64_t g = TotalFactorizedGroups();
    if (g == 0) return 1.0;
    return static_cast<double>(TotalFactorizedFlatRows()) /
           static_cast<double>(g);
  }
  double TotalSimSeconds() const {
    double s = 0;
    for (const JobStats& j : jobs) s += j.sim_seconds;
    return s;
  }
  /// Contention-adjusted total; equals TotalSimSeconds when no fair-share
  /// scheduler was attached.
  double TotalScheduledSimSeconds() const {
    double s = 0;
    for (const JobStats& j : jobs) {
      s += j.sched_sim_seconds > 0 ? j.sched_sim_seconds : j.sim_seconds;
    }
    return s;
  }
  double TotalWallSeconds() const {
    double s = 0;
    for (const JobStats& j : jobs) s += j.wall_seconds;
    return s;
  }

  std::string ToString() const;
};

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_COUNTERS_H_
