#ifndef RAPIDA_MAPREDUCE_RECORD_IO_H_
#define RAPIDA_MAPREDUCE_RECORD_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "mapreduce/record.h"
#include "util/status.h"

namespace rapida::mr {

/// Compact binary serialization of columnar record stores — the payload
/// format of materialization-store artifacts.
///
/// Layout (all integers little-endian):
///
///   u64 record_count
///   u64 key_bytes_total      (redundant — cheap structural validation)
///   u64 value_bytes_total
///   repeat record_count times:
///     u32 key_len,   key bytes
///     u32 value_len, value bytes
///
/// key_prefix / key_hash columns are not stored: both are pure functions of
/// the key bytes and are re-stamped by ColumnarRecords::Append on decode,
/// so a decoded store is bit-identical to the one serialized.
///
/// Decoding validates every length against the remaining buffer and the
/// declared totals; any mismatch returns DataLoss (a truncated or
/// bit-flipped payload must never crash or silently mis-decode).
void AppendColumnarRecords(const ColumnarRecords& records, std::string* out);

Status ParseColumnarRecords(std::string_view data, ColumnarRecords* out);

/// RecordBatch payload: every store of the batch concatenated into one
/// logical record stream (per-store splits are an execution artifact, not
/// part of the data). Decoding yields a single-store batch with no
/// materialized views.
void AppendRecordBatch(const RecordBatch& batch, std::string* out);

Status ParseRecordBatch(std::string_view data, RecordBatch* out);

/// Little-endian scalar helpers shared with the artifact container format.
void AppendU32(uint32_t v, std::string* out);
void AppendU64(uint64_t v, std::string* out);
/// Reads a scalar at *offset, advancing it. False when the buffer is short.
bool ReadU32(std::string_view data, size_t* offset, uint32_t* v);
bool ReadU64(std::string_view data, size_t* offset, uint64_t* v);

}  // namespace rapida::mr

#endif  // RAPIDA_MAPREDUCE_RECORD_IO_H_
