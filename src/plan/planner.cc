#include "plan/planner.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "engines/var_translate.h"
#include "plan/planner_util.h"

namespace rapida::plan {

StatusOr<PhysicalPlan> PlanForEngine(const std::string& engine_name,
                                     const analytics::AnalyticalQuery& query,
                                     engine::Dataset* dataset,
                                     const engine::EngineOptions& options) {
  if (engine_name == "Hive (Naive)") {
    return PlanHiveNaive(query, dataset, options);
  }
  if (engine_name == "Hive (MQO)") {
    return PlanHiveMqo(query, dataset, options);
  }
  if (engine_name == "RAPID+ (Naive)") {
    return PlanRapidPlus(query, dataset, options);
  }
  if (engine_name == "RAPIDAnalytics") {
    return PlanRapidAnalytics(query, dataset, options);
  }
  return Status::InvalidArgument("unknown engine: " + engine_name);
}

namespace {

/// Deterministic global renaming: first sight in structural traversal
/// order assigns v0, v1, ... One namespace covers pattern variables,
/// grouping output columns and top-level aliases alike — that is exactly
/// how the engines treat them (grouping outputs are joined by name).
class VarInterner {
 public:
  void Intern(const std::string& name) {
    if (name.empty()) return;
    if (map_.count(name) == 0) {
      map_[name] = "v" + std::to_string(map_.size());
    }
  }
  void InternAll(const std::vector<std::string>& names) {
    for (const std::string& n : names) Intern(n);
  }
  void InternExpr(const sparql::Expr& e) {
    std::vector<std::string> vars;
    e.CollectVars(&vars);
    InternAll(vars);
  }

  std::string R(const std::string& name) const {
    auto it = map_.find(name);
    return it == map_.end() ? name : it->second;
  }
  std::vector<std::string> RAll(const std::vector<std::string>& names) const {
    std::vector<std::string> out;
    out.reserve(names.size());
    for (const std::string& n : names) out.push_back(R(n));
    return out;
  }
  const std::map<std::string, std::string>& map() const { return map_; }

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace

analytics::AnalyticalQuery CanonicalizeQueryVars(
    const analytics::AnalyticalQuery& query) {
  VarInterner vars;
  auto intern_graph = [&vars](const ntga::StarGraph& graph) {
    for (const ntga::StarPattern& star : graph.stars) {
      vars.Intern(star.subject_var);
      for (const ntga::StarTriple& t : star.triples) {
        if (t.object.is_var) vars.Intern(t.object.var);
      }
    }
    for (const ntga::JoinEdge& e : graph.joins) vars.Intern(e.var);
  };
  auto intern_optionals =
      [&vars](const std::vector<analytics::OptionalTail>& opts) {
        for (const analytics::OptionalTail& o : opts) {
          vars.Intern(o.join_var);
          vars.Intern(o.star.subject_var);
          for (const ntga::StarTriple& t : o.star.triples) {
            if (t.object.is_var) vars.Intern(t.object.var);
          }
          for (const sparql::ExprPtr& f : o.filters) vars.InternExpr(*f);
        }
      };
  // Phase 1: fix the renaming, walking the query in structural order.
  for (const analytics::GroupingSubquery& g : query.groupings) {
    intern_graph(g.pattern);
    for (const sparql::ExprPtr& f : g.filters) vars.InternExpr(*f);
    intern_optionals(g.optionals);
    for (const sparql::ExprPtr& f : g.post_filters) vars.InternExpr(*f);
    for (const analytics::PatternBranch& b : g.union_branches) {
      intern_graph(b.pattern);
      for (const sparql::ExprPtr& f : b.filters) vars.InternExpr(*f);
      intern_optionals(b.optionals);
      for (const sparql::ExprPtr& f : b.post_filters) vars.InternExpr(*f);
    }
    vars.InternAll(g.group_by);
    for (const ntga::AggSpec& a : g.aggs) {
      if (!a.count_star) vars.Intern(a.var);
      vars.Intern(a.output_name);
    }
    if (g.having != nullptr) vars.InternExpr(*g.having);
    vars.InternAll(g.columns);
  }
  for (const sparql::SelectItem& item : query.top_items) {
    vars.Intern(item.name);
    if (item.expr != nullptr) vars.InternExpr(*item.expr);
  }
  for (const sparql::OrderKey& k : query.order_by) vars.Intern(k.var);

  // Phase 2: rebuild the query through the renaming.
  auto rename_star = [&vars](const ntga::StarPattern& star) {
    ntga::StarPattern ns;
    ns.subject_var = vars.R(star.subject_var);
    for (const ntga::StarTriple& t : star.triples) {
      ntga::StarTriple nt = t;
      if (nt.object.is_var) nt.object.var = vars.R(nt.object.var);
      ns.triples.push_back(std::move(nt));
    }
    return ns;
  };
  auto rename_graph = [&vars, &rename_star](const ntga::StarGraph& graph) {
    ntga::StarGraph ng;
    for (const ntga::StarPattern& star : graph.stars) {
      ng.stars.push_back(rename_star(star));
    }
    for (const ntga::JoinEdge& e : graph.joins) {
      ntga::JoinEdge ne = e;
      ne.var = vars.R(ne.var);
      ng.joins.push_back(std::move(ne));
    }
    return ng;
  };
  auto rename_filters = [&vars](const std::vector<sparql::ExprPtr>& fs) {
    std::vector<sparql::ExprPtr> out;
    for (const sparql::ExprPtr& f : fs) {
      out.push_back(engine::MapExprVars(*f, vars.map()));
    }
    return out;
  };
  auto rename_optionals =
      [&vars, &rename_star,
       &rename_filters](const std::vector<analytics::OptionalTail>& opts) {
        std::vector<analytics::OptionalTail> out;
        for (const analytics::OptionalTail& o : opts) {
          analytics::OptionalTail no;
          no.star = rename_star(o.star);
          no.filters = rename_filters(o.filters);
          no.join_var = vars.R(o.join_var);
          out.push_back(std::move(no));
        }
        return out;
      };
  analytics::AnalyticalQuery out;
  for (const analytics::GroupingSubquery& g : query.groupings) {
    analytics::GroupingSubquery ng;
    ng.pattern = rename_graph(g.pattern);
    ng.filters = rename_filters(g.filters);
    ng.optionals = rename_optionals(g.optionals);
    ng.post_filters = rename_filters(g.post_filters);
    for (const analytics::PatternBranch& b : g.union_branches) {
      analytics::PatternBranch nb;
      nb.pattern = rename_graph(b.pattern);
      nb.filters = rename_filters(b.filters);
      nb.optionals = rename_optionals(b.optionals);
      nb.post_filters = rename_filters(b.post_filters);
      ng.union_branches.push_back(std::move(nb));
    }
    ng.group_by = vars.RAll(g.group_by);
    for (const ntga::AggSpec& a : g.aggs) {
      ntga::AggSpec na = a;
      if (!na.count_star) na.var = vars.R(na.var);
      na.output_name = vars.R(na.output_name);
      ng.aggs.push_back(std::move(na));
    }
    if (g.having != nullptr) {
      ng.having = engine::MapExprVars(*g.having, vars.map());
    }
    ng.columns = vars.RAll(g.columns);
    out.groupings.push_back(std::move(ng));
  }
  for (const sparql::SelectItem& item : query.top_items) {
    sparql::SelectItem ni;
    ni.name = vars.R(item.name);
    if (item.expr != nullptr) {
      ni.expr = engine::MapExprVars(*item.expr, vars.map());
    }
    out.top_items.push_back(std::move(ni));
  }
  out.top_distinct = query.top_distinct;
  for (const sparql::OrderKey& k : query.order_by) {
    out.order_by.push_back(sparql::OrderKey{vars.R(k.var), k.descending});
  }
  out.limit = query.limit;
  out.offset = query.offset;
  return out;
}

StatusOr<PhysicalPlan> CanonicalOptimizedPlan(
    const analytics::AnalyticalQuery& query) {
  analytics::AnalyticalQuery canon = CanonicalizeQueryVars(query);
  return PlanRapidAnalytics(canon, nullptr, engine::EngineOptions());
}

std::string CanonicalPlanFingerprint(
    const analytics::AnalyticalQuery& query) {
  analytics::AnalyticalQuery canon = CanonicalizeQueryVars(query);
  StatusOr<PhysicalPlan> plan =
      PlanRapidAnalytics(canon, nullptr, engine::EngineOptions());
  if (plan.ok()) return plan->FingerprintHash();

  // Planning can fail on shapes outside the NTGA subset; hash a canonical
  // serialization of the query instead so those still dedup structurally.
  std::string s = "planner-error\n";
  auto graph_sig = [](const ntga::StarGraph& graph) {
    std::string out;
    for (const ntga::StarPattern& star : graph.stars) {
      out += "star ?" + star.subject_var;
      for (const ntga::StarTriple& t : star.triples) {
        out += " " + detail::TripleSig(t);
      }
      out += "\n";
    }
    for (const ntga::JoinEdge& e : graph.joins) {
      out += "join " + e.ToString() + "\n";
    }
    return out;
  };
  auto branch_sig = [&graph_sig](const ntga::StarGraph& pattern,
                                 const std::vector<sparql::ExprPtr>& filters,
                                 const std::vector<analytics::OptionalTail>&
                                     optionals,
                                 const std::vector<sparql::ExprPtr>&
                                     post_filters) {
    std::string out = graph_sig(pattern);
    for (const sparql::ExprPtr& f : filters) {
      out += "filter " + f->ToString() + "\n";
    }
    for (const analytics::OptionalTail& o : optionals) {
      out += "optional ?" + o.join_var + "\n";
      ntga::StarGraph og;
      og.stars.push_back(o.star);
      out += graph_sig(og);
      for (const sparql::ExprPtr& f : o.filters) {
        out += "ofilter " + f->ToString() + "\n";
      }
    }
    for (const sparql::ExprPtr& f : post_filters) {
      out += "post_filter " + f->ToString() + "\n";
    }
    return out;
  };
  for (const analytics::GroupingSubquery& g : canon.groupings) {
    s += "grouping\n";
    s += branch_sig(g.pattern, g.filters, g.optionals, g.post_filters);
    for (const analytics::PatternBranch& b : g.union_branches) {
      s += "union_branch\n";
      s += branch_sig(b.pattern, b.filters, b.optionals, b.post_filters);
    }
    s += "group_by " + detail::Csv(g.group_by) + "\n";
    for (const ntga::AggSpec& a : g.aggs) {
      s += "agg " + detail::AggSig(a) + "\n";
    }
    if (g.having != nullptr) s += "having " + g.having->ToString() + "\n";
    s += "columns " + detail::Csv(g.columns) + "\n";
  }
  for (const sparql::SelectItem& item : canon.top_items) {
    s += "item " + item.name +
         (item.expr != nullptr ? "=" + item.expr->ToString() : "") + "\n";
  }
  if (canon.top_distinct) s += "distinct\n";
  for (const sparql::OrderKey& k : canon.order_by) {
    s += "order " + k.var + (k.descending ? " desc" : " asc") + "\n";
  }
  s += "limit " + std::to_string(canon.limit) + " offset " +
       std::to_string(canon.offset) + "\n";
  return Fnv1aHex(s);
}

}  // namespace rapida::plan
