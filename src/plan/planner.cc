#include "plan/planner.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "engines/var_translate.h"
#include "plan/planner_util.h"

namespace rapida::plan {

StatusOr<PhysicalPlan> PlanForEngine(const std::string& engine_name,
                                     const analytics::AnalyticalQuery& query,
                                     engine::Dataset* dataset,
                                     const engine::EngineOptions& options) {
  if (engine_name == "Hive (Naive)") {
    return PlanHiveNaive(query, dataset, options);
  }
  if (engine_name == "Hive (MQO)") {
    return PlanHiveMqo(query, dataset, options);
  }
  if (engine_name == "RAPID+ (Naive)") {
    return PlanRapidPlus(query, dataset, options);
  }
  if (engine_name == "RAPIDAnalytics") {
    return PlanRapidAnalytics(query, dataset, options);
  }
  return Status::InvalidArgument("unknown engine: " + engine_name);
}

namespace {

/// Deterministic global renaming: first sight in structural traversal
/// order assigns v0, v1, ... One namespace covers pattern variables,
/// grouping output columns and top-level aliases alike — that is exactly
/// how the engines treat them (grouping outputs are joined by name).
class VarInterner {
 public:
  void Intern(const std::string& name) {
    if (name.empty()) return;
    if (map_.count(name) == 0) {
      map_[name] = "v" + std::to_string(map_.size());
    }
  }
  void InternAll(const std::vector<std::string>& names) {
    for (const std::string& n : names) Intern(n);
  }
  void InternExpr(const sparql::Expr& e) {
    std::vector<std::string> vars;
    e.CollectVars(&vars);
    InternAll(vars);
  }

  std::string R(const std::string& name) const {
    auto it = map_.find(name);
    return it == map_.end() ? name : it->second;
  }
  std::vector<std::string> RAll(const std::vector<std::string>& names) const {
    std::vector<std::string> out;
    out.reserve(names.size());
    for (const std::string& n : names) out.push_back(R(n));
    return out;
  }
  const std::map<std::string, std::string>& map() const { return map_; }

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace

analytics::AnalyticalQuery CanonicalizeQueryVars(
    const analytics::AnalyticalQuery& query) {
  VarInterner vars;
  // Phase 1: fix the renaming, walking the query in structural order.
  for (const analytics::GroupingSubquery& g : query.groupings) {
    for (const ntga::StarPattern& star : g.pattern.stars) {
      vars.Intern(star.subject_var);
      for (const ntga::StarTriple& t : star.triples) {
        if (t.object.is_var) vars.Intern(t.object.var);
      }
    }
    for (const ntga::JoinEdge& e : g.pattern.joins) vars.Intern(e.var);
    for (const sparql::ExprPtr& f : g.filters) vars.InternExpr(*f);
    vars.InternAll(g.group_by);
    for (const ntga::AggSpec& a : g.aggs) {
      if (!a.count_star) vars.Intern(a.var);
      vars.Intern(a.output_name);
    }
    if (g.having != nullptr) vars.InternExpr(*g.having);
    vars.InternAll(g.columns);
  }
  for (const sparql::SelectItem& item : query.top_items) {
    vars.Intern(item.name);
    if (item.expr != nullptr) vars.InternExpr(*item.expr);
  }
  for (const sparql::OrderKey& k : query.order_by) vars.Intern(k.var);

  // Phase 2: rebuild the query through the renaming.
  analytics::AnalyticalQuery out;
  for (const analytics::GroupingSubquery& g : query.groupings) {
    analytics::GroupingSubquery ng;
    for (const ntga::StarPattern& star : g.pattern.stars) {
      ntga::StarPattern ns;
      ns.subject_var = vars.R(star.subject_var);
      for (const ntga::StarTriple& t : star.triples) {
        ntga::StarTriple nt = t;
        if (nt.object.is_var) nt.object.var = vars.R(nt.object.var);
        ns.triples.push_back(std::move(nt));
      }
      ng.pattern.stars.push_back(std::move(ns));
    }
    for (const ntga::JoinEdge& e : g.pattern.joins) {
      ntga::JoinEdge ne = e;
      ne.var = vars.R(ne.var);
      ng.pattern.joins.push_back(std::move(ne));
    }
    for (const sparql::ExprPtr& f : g.filters) {
      ng.filters.push_back(engine::MapExprVars(*f, vars.map()));
    }
    ng.group_by = vars.RAll(g.group_by);
    for (const ntga::AggSpec& a : g.aggs) {
      ntga::AggSpec na = a;
      if (!na.count_star) na.var = vars.R(na.var);
      na.output_name = vars.R(na.output_name);
      ng.aggs.push_back(std::move(na));
    }
    if (g.having != nullptr) {
      ng.having = engine::MapExprVars(*g.having, vars.map());
    }
    ng.columns = vars.RAll(g.columns);
    out.groupings.push_back(std::move(ng));
  }
  for (const sparql::SelectItem& item : query.top_items) {
    sparql::SelectItem ni;
    ni.name = vars.R(item.name);
    if (item.expr != nullptr) {
      ni.expr = engine::MapExprVars(*item.expr, vars.map());
    }
    out.top_items.push_back(std::move(ni));
  }
  out.top_distinct = query.top_distinct;
  for (const sparql::OrderKey& k : query.order_by) {
    out.order_by.push_back(sparql::OrderKey{vars.R(k.var), k.descending});
  }
  out.limit = query.limit;
  out.offset = query.offset;
  return out;
}

StatusOr<PhysicalPlan> CanonicalOptimizedPlan(
    const analytics::AnalyticalQuery& query) {
  analytics::AnalyticalQuery canon = CanonicalizeQueryVars(query);
  return PlanRapidAnalytics(canon, nullptr, engine::EngineOptions());
}

std::string CanonicalPlanFingerprint(
    const analytics::AnalyticalQuery& query) {
  analytics::AnalyticalQuery canon = CanonicalizeQueryVars(query);
  StatusOr<PhysicalPlan> plan =
      PlanRapidAnalytics(canon, nullptr, engine::EngineOptions());
  if (plan.ok()) return plan->FingerprintHash();

  // Planning can fail on shapes outside the NTGA subset; hash a canonical
  // serialization of the query instead so those still dedup structurally.
  std::string s = "planner-error\n";
  for (const analytics::GroupingSubquery& g : canon.groupings) {
    s += "grouping\n";
    for (const ntga::StarPattern& star : g.pattern.stars) {
      s += "star ?" + star.subject_var;
      for (const ntga::StarTriple& t : star.triples) {
        s += " " + detail::TripleSig(t);
      }
      s += "\n";
    }
    for (const ntga::JoinEdge& e : g.pattern.joins) {
      s += "join " + e.ToString() + "\n";
    }
    for (const sparql::ExprPtr& f : g.filters) {
      s += "filter " + f->ToString() + "\n";
    }
    s += "group_by " + detail::Csv(g.group_by) + "\n";
    for (const ntga::AggSpec& a : g.aggs) {
      s += "agg " + detail::AggSig(a) + "\n";
    }
    if (g.having != nullptr) s += "having " + g.having->ToString() + "\n";
    s += "columns " + detail::Csv(g.columns) + "\n";
  }
  for (const sparql::SelectItem& item : canon.top_items) {
    s += "item " + item.name +
         (item.expr != nullptr ? "=" + item.expr->ToString() : "") + "\n";
  }
  if (canon.top_distinct) s += "distinct\n";
  for (const sparql::OrderKey& k : canon.order_by) {
    s += "order " + k.var + (k.descending ? " desc" : " asc") + "\n";
  }
  s += "limit " + std::to_string(canon.limit) + " offset " +
       std::to_string(canon.offset) + "\n";
  return Fnv1aHex(s);
}

}  // namespace rapida::plan
