#ifndef RAPIDA_PLAN_PLANNER_UTIL_H_
#define RAPIDA_PLAN_PLANNER_UTIL_H_

/// Internal helpers shared by the per-engine planners. Everything here
/// feeds node *attrs* (identity, fingerprinted) or *info* (display-only);
/// execution never depends on it.

#include <string>
#include <vector>

#include "analytics/analytical_query.h"
#include "ntga/star_pattern.h"
#include "plan/plan.h"
#include "sparql/ast.h"

namespace rapida::plan::detail {

inline std::string Csv(const std::vector<std::string>& items) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += items[i];
  }
  return out;
}

inline std::vector<std::string> ExprVars(const sparql::Expr& e) {
  std::vector<std::string> vars;
  e.CollectVars(&vars);
  return vars;
}

/// One pattern branch of a grouping, viewed uniformly: a conjunctive (or
/// OPTIONAL-extended) grouping is a single branch over its own fields; a
/// UNION grouping exposes its already-distributed arms. Planners and exec
/// closures iterate branches so both shapes share one lowering.
struct BranchView {
  const ntga::StarGraph* pattern = nullptr;
  const std::vector<sparql::ExprPtr>* filters = nullptr;
  const std::vector<analytics::OptionalTail>* optionals = nullptr;
  const std::vector<sparql::ExprPtr>* post_filters = nullptr;
};

inline std::vector<BranchView> BranchesOf(
    const analytics::GroupingSubquery& g) {
  std::vector<BranchView> out;
  if (g.union_branches.empty()) {
    out.push_back(
        BranchView{&g.pattern, &g.filters, &g.optionals, &g.post_filters});
  } else {
    for (const analytics::PatternBranch& b : g.union_branches) {
      out.push_back(
          BranchView{&b.pattern, &b.filters, &b.optionals, &b.post_filters});
    }
  }
  return out;
}

/// The OPTIONAL tail as the one-star graph both engines compile it from.
inline ntga::StarGraph OptionalGraph(const analytics::OptionalTail& opt) {
  ntga::StarGraph graph;
  graph.stars.push_back(opt.star);
  return graph;
}

/// Identity signature of one triple pattern: property key plus object
/// (variable or constant). Constants MUST be part of the signature — two
/// plans differing only in a compared constant are different queries.
inline std::string TripleSig(const ntga::StarTriple& t) {
  std::string sig = t.prop.ToString();
  if (!t.prop.is_type()) {
    sig += t.object.is_var ? ("->?" + t.object.var)
                           : ("->" + sparql::ToSparqlText(t.object.term));
  }
  return sig;
}

inline std::string AggSig(const ntga::AggSpec& a) {
  std::string arg = a.count_star ? "*" : a.var;
  if (!a.separator.empty()) arg += ";sep=" + a.separator;
  return std::string(sparql::AggFuncName(a.func)) + "(" + arg + ")->" +
         a.output_name;
}

/// Records the query-level solution modifiers and SELECT list on the
/// plan's terminal node, completing the fingerprint's semantic coverage.
inline void AddModifierAttrs(PlanNode* node,
                             const analytics::AnalyticalQuery& query) {
  for (size_t i = 0; i < query.top_items.size(); ++i) {
    const sparql::SelectItem& item = query.top_items[i];
    node->Attr("item" + std::to_string(i),
               item.name + (item.expr != nullptr
                                ? "=" + item.expr->ToString()
                                : ""));
  }
  if (query.top_distinct) node->Attr("distinct", "1");
  for (size_t i = 0; i < query.order_by.size(); ++i) {
    node->Attr("order" + std::to_string(i),
               query.order_by[i].var +
                   (query.order_by[i].descending ? " desc" : " asc"));
  }
  if (query.limit >= 0) node->Attr("limit", std::to_string(query.limit));
  if (query.offset > 0) node->Attr("offset", std::to_string(query.offset));
}

/// Variables the final projection consumes (for dead-column liveness).
inline std::vector<std::string> ModifierUses(
    const analytics::AnalyticalQuery& query) {
  std::vector<std::string> uses;
  for (const sparql::SelectItem& item : query.top_items) {
    if (item.expr != nullptr) {
      for (const std::string& v : ExprVars(*item.expr)) uses.push_back(v);
    } else {
      uses.push_back(item.name);
    }
  }
  for (const sparql::OrderKey& k : query.order_by) uses.push_back(k.var);
  return uses;
}

/// Statically replays the non-greedy inter-star join-chain edge choice of
/// CompileHivePattern: anchor star 0, then always the textually first
/// pending edge that connects the joined set to a new star. Returns the
/// picked edge indices in cycle order; fewer than stars-1 entries means
/// the pattern is not connected (the runtime reports that error).
inline std::vector<size_t> SimulateHiveChain(
    size_t num_stars, const std::vector<ntga::JoinEdge>& joins) {
  std::vector<size_t> picks;
  if (num_stars < 2) return picks;
  std::vector<bool> joined(num_stars, false);
  std::vector<bool> done(joins.size(), false);
  joined[0] = true;
  size_t remaining = num_stars - 1;
  while (remaining > 0) {
    int pick = -1;
    int new_star = -1;
    for (size_t e = 0; e < joins.size(); ++e) {
      if (done[e]) continue;
      const ntga::JoinEdge& edge = joins[e];
      if (joined[edge.star_a] && !joined[edge.star_b]) {
        pick = static_cast<int>(e);
        new_star = edge.star_b;
      } else if (joined[edge.star_b] && !joined[edge.star_a]) {
        pick = static_cast<int>(e);
        new_star = edge.star_a;
      }
      if (pick >= 0) break;
    }
    if (pick < 0) break;  // disconnected
    done[pick] = true;
    joined[new_star] = true;
    picks.push_back(static_cast<size_t>(pick));
    --remaining;
  }
  return picks;
}

/// Same for NtgaExec::ComputePatternMatches: the first cycle takes the
/// textually first edge outright (anchoring both endpoints); later cycles
/// take the first pending edge with exactly one endpoint joined.
inline std::vector<size_t> SimulateNtgaChain(
    size_t num_stars, const std::vector<ntga::JoinEdge>& joins) {
  std::vector<size_t> picks;
  if (num_stars < 2) return picks;
  std::vector<bool> joined(num_stars, false);
  std::vector<bool> done(joins.size(), false);
  bool first_cycle = true;
  size_t remaining = num_stars;
  while (remaining > 0) {
    int pick = -1;
    for (size_t e = 0; e < joins.size(); ++e) {
      if (done[e]) continue;
      const ntga::JoinEdge& edge = joins[e];
      if (first_cycle || joined[edge.star_a] != joined[edge.star_b]) {
        pick = static_cast<int>(e);
        break;
      }
    }
    if (pick < 0) break;  // disconnected
    done[pick] = true;
    const ntga::JoinEdge& edge = joins[pick];
    if (first_cycle) {
      joined[edge.star_a] = true;
      --remaining;
      first_cycle = false;
    }
    int right = joined[edge.star_a] ? edge.star_b : edge.star_a;
    if (!joined[right]) {
      joined[right] = true;
      --remaining;
    }
    picks.push_back(static_cast<size_t>(pick));
  }
  return picks;
}

}  // namespace rapida::plan::detail

#endif  // RAPIDA_PLAN_PLANNER_UTIL_H_
