#include "plan/plan.h"

#include <sstream>

namespace rapida::plan {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kVpScan: return "VpScan";
    case OpKind::kTripleGroupLoad: return "TripleGroupLoad";
    case OpKind::kStarJoin: return "StarJoin";
    case OpKind::kMapJoin: return "MapJoin";
    case OpKind::kReduceJoin: return "ReduceJoin";
    case OpKind::kLeftMapJoin: return "LeftMapJoin";
    case OpKind::kLeftReduceJoin: return "LeftReduceJoin";
    case OpKind::kUnion: return "Union";
    case OpKind::kExpandBindings: return "ExpandBindings";
    case OpKind::kNSplitAlphaJoin: return "NSplitAlphaJoin";
    case OpKind::kAggJoin: return "AggJoin";
    case OpKind::kGroupAggregate: return "GroupAggregate";
    case OpKind::kDistinctExtract: return "DistinctExtract";
    case OpKind::kMaterialize: return "Materialize";
    case OpKind::kFinalJoin: return "FinalJoin";
    case OpKind::kParallelRegion: return "ParallelRegion";
    case OpKind::kDecompress: return "Decompress";
  }
  return "Unknown";
}

PlanNode& PhysicalPlan::AddNode(OpKind kind, std::string label,
                                std::string describe, int est_cycles) {
  PlanNode node;
  node.id = next_id_++;
  node.kind = kind;
  node.label = std::move(label);
  node.describe = std::move(describe);
  node.est_cycles = est_cycles;
  nodes.push_back(std::move(node));
  return nodes.back();
}

PlanNode* PhysicalPlan::FindByTag(const std::string& tag) {
  for (PlanNode& n : nodes) {
    if (n.bind_tag == tag) return &n;
  }
  return nullptr;
}

PlanNode* PhysicalPlan::FindById(int id) {
  for (PlanNode& n : nodes) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

const PlanNode* PhysicalPlan::FindById(int id) const {
  for (const PlanNode& n : nodes) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

int PhysicalPlan::EstimatedCycles() const {
  int total = 0;
  for (const PlanNode& n : nodes) total += n.est_cycles;
  return total;
}

uint64_t PhysicalPlan::EstimatedBytes() const {
  uint64_t total = 0;
  for (const PlanNode& n : nodes) total += n.est_bytes;
  return total;
}

namespace {

void AppendAttrList(const AttrList& attrs, const char* name,
                    std::ostringstream* os) {
  if (attrs.empty()) return;
  *os << "       " << name << ": ";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) *os << "; ";
    *os << attrs[i].first << "=" << attrs[i].second;
  }
  *os << "\n";
}

}  // namespace

std::string PhysicalPlan::ExplainText() const {
  std::ostringstream os;
  os << engine << ": " << EstimatedCycles()
     << " MR cycles (estimated), fingerprint " << FingerprintHash() << "\n";
  if (!passes.empty()) {
    os << "passes:";
    for (const std::string& p : passes) os << " " << p;
    os << "\n";
  }
  if (!fallback_reason.empty()) os << "fallback: " << fallback_reason << "\n";
  for (const std::string& n : notes) os << "note: " << n << "\n";
  for (const PlanNode& n : nodes) {
    os << "  #" << n.id << " " << OpKindName(n.kind) << " [" << n.est_cycles
       << (n.est_cycles == 1 ? " cycle" : " cycles");
    if (n.map_only) os << ", map-only";
    if (n.est_bytes > 0) os << ", ~" << n.est_bytes << " bytes in";
    if (n.est_shuffle_bytes > 0) {
      os << ", shuffle<=" << n.est_shuffle_bytes;
    }
    os << "] " << n.describe << "\n";
    if (!n.inputs.empty()) {
      os << "       inputs:";
      for (int in : n.inputs) os << " #" << in;
      os << "\n";
    }
    AppendAttrList(n.attrs, "attrs", &os);
    AppendAttrList(n.info, "info", &os);
  }
  return os.str();
}

namespace {

void JsonAttrObject(const AttrList& attrs, std::ostringstream* os) {
  *os << "{";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) *os << ",";
    *os << "\"" << JsonEscape(attrs[i].first) << "\":\""
        << JsonEscape(attrs[i].second) << "\"";
  }
  *os << "}";
}

}  // namespace

std::string PhysicalPlan::ExplainJson() const {
  std::ostringstream os;
  os << "{\"engine\":\"" << JsonEscape(engine) << "\",";
  os << "\"fingerprint\":\"" << FingerprintHash() << "\",";
  os << "\"est_cycles\":" << EstimatedCycles() << ",";
  os << "\"est_bytes\":" << EstimatedBytes() << ",";
  os << "\"fallback\":\"" << JsonEscape(fallback_reason) << "\",";
  os << "\"passes\":[";
  for (size_t i = 0; i < passes.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(passes[i]) << "\"";
  }
  os << "],\"notes\":[";
  for (size_t i = 0; i < notes.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(notes[i]) << "\"";
  }
  os << "],\"nodes\":[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const PlanNode& n = nodes[i];
    if (i > 0) os << ",";
    os << "{\"id\":" << n.id << ",\"kind\":\"" << OpKindName(n.kind)
       << "\",\"label\":\"" << JsonEscape(n.label) << "\",\"describe\":\""
       << JsonEscape(n.describe) << "\",\"est_cycles\":" << n.est_cycles
       << ",\"est_bytes\":" << n.est_bytes
       << ",\"est_shuffle_bytes\":" << n.est_shuffle_bytes
       << ",\"map_only\":" << (n.map_only ? "true" : "false")
       << ",\"inputs\":[";
    for (size_t j = 0; j < n.inputs.size(); ++j) {
      if (j > 0) os << ",";
      os << n.inputs[j];
    }
    os << "],\"attrs\":";
    JsonAttrObject(n.attrs, &os);
    os << ",\"info\":";
    JsonAttrObject(n.info, &os);
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string PhysicalPlan::Fingerprint() const {
  std::ostringstream os;
  os << "engine=" << engine << "\n";
  for (const PlanNode& n : nodes) {
    os << "node kind=" << OpKindName(n.kind) << " label=" << n.label
       << " cycles=" << n.est_cycles << " attrs=[";
    for (size_t i = 0; i < n.attrs.size(); ++i) {
      if (i > 0) os << ",";
      os << n.attrs[i].first << "=" << n.attrs[i].second;
    }
    os << "] inputs=[";
    for (size_t i = 0; i < n.inputs.size(); ++i) {
      if (i > 0) os << ",";
      os << n.inputs[i];
    }
    os << "]\n";
  }
  return os.str();
}

std::string PhysicalPlan::FingerprintHash() const {
  return Fnv1aHex(Fingerprint());
}

std::string Fnv1aHex(const std::string& data) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace rapida::plan
