#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engines/hive_mqo.h"
#include "engines/hive_naive.h"
#include "engines/relational_ops.h"
#include "engines/var_translate.h"
#include "plan/executor.h"
#include "plan/passes.h"
#include "plan/planner.h"
#include "plan/planner_util.h"

namespace rapida::plan {

namespace {

using analytics::AnalyticalQuery;
using analytics::GroupingSubquery;

/// Result of mirroring CompileHivePattern into plan nodes.
struct HivePatternMirror {
  int tail_id = -1;  // node producing the pattern table
  bool short_circuited = false;
};

/// Emits the node DAG CompileHivePattern will execute for one star graph:
/// per-triple VP scans (cost 0 — folded into the consuming join), one
/// star-join cycle per star with 2+ effective inputs, and stars-1
/// inter-star join cycles. The mirror replays the compiler exactly,
/// including single-variable filter pushdown order, synthetic column
/// naming, the inner-first input sort, and — when `dataset` is given — the
/// absent-partition rules (skipped optional scans, empty-table short
/// circuit for a missing required partition, i.e. zero pattern cycles).
HivePatternMirror EmitHivePattern(
    PhysicalPlan* plan, engine::Dataset* dataset,
    const ntga::StarGraph& pattern,
    const std::vector<const sparql::Expr*>& filters,
    const std::set<ntga::PropKey>* outer_secondary, const std::string& label) {
  HivePatternMirror out;
  const bool aware = dataset != nullptr;

  std::vector<bool> filter_used(filters.size(), false);
  auto single_var_sigs = [&](const std::string& var) {
    std::vector<std::string> sigs;
    for (size_t i = 0; i < filters.size(); ++i) {
      if (filter_used[i]) continue;
      std::vector<std::string> vars = detail::ExprVars(*filters[i]);
      if (vars.size() == 1 && vars[0] == var) {
        sigs.push_back(filters[i]->ToString());
        filter_used[i] = true;
      }
    }
    return sigs;
  };

  struct StarMirror {
    int tail = -1;
    bool materialized = false;  // false: single input, folds into next join
  };
  std::vector<StarMirror> stars;
  int synth = 0;
  for (size_t s = 0; s < pattern.stars.size(); ++s) {
    const ntga::StarPattern& star = pattern.stars[s];
    struct ScanRec {
      int id = 0;
      uint64_t bytes = 0;
      bool outer = false;
    };
    std::vector<ScanRec> scans;
    for (const ntga::StarTriple& t : star.triples) {
      bool outer =
          outer_secondary != nullptr && outer_secondary->count(t.prop) > 0;
      std::string object_col;
      if (!t.prop.is_type()) {
        object_col = t.ObjectVar();
        if (object_col.empty()) object_col = "_c" + std::to_string(synth++);
      }
      // The compiler consumes single-variable filters per triple *before*
      // checking partition presence — replay that order exactly so the
      // residual set matches.
      std::vector<std::string> pushed;
      if (!t.prop.is_type() && t.object.is_var) {
        pushed = single_var_sigs(t.object.var);
      }
      bool present = true;
      uint64_t bytes = 0;
      if (aware) {
        const rdf::Dictionary& dict = dataset->graph().dict();
        std::string file =
            t.prop.is_type()
                ? dataset->VpTypeFile(dict.LookupIri(t.prop.type_object))
                : dataset->VpFile(dict.LookupIri(t.prop.property));
        present = !file.empty();
        if (present) bytes = dataset->VpFileBytes(file);
      }
      if (!present && outer) continue;  // absent optional: all-NULL column
      if (!present) {
        PlanNode& empty = plan->AddNode(
            OpKind::kMaterialize, label,
            label + ": empty pattern table (required VP partition absent; "
                    "no cycles run)",
            0);
        empty.Attr("triple", detail::TripleSig(t));
        empty.Info("reason", "vp-partition-missing");
        out.tail_id = empty.id;
        out.short_circuited = true;
        return out;
      }
      PlanNode& scan = plan->AddNode(
          OpKind::kVpScan, label,
          label + ": VP scan [" + detail::TripleSig(t) + "]", 0);
      scan.Attr("prop", t.prop.ToString());
      scan.Attr("subject", star.subject_var);
      if (!t.prop.is_type()) {
        scan.Attr("object", t.object.is_var
                                ? "?" + t.object.var
                                : sparql::ToSparqlText(t.object.term));
      }
      if (outer) scan.Attr("outer", "1");
      for (const std::string& sig : pushed) scan.Attr("pushed_filter", sig);
      std::vector<std::string> binds{star.subject_var};
      if (!object_col.empty()) binds.push_back(object_col);
      scan.Attr("binds", detail::Csv(binds));
      if (aware) {
        scan.est_bytes = bytes;
        scan.Info("vp_bytes", std::to_string(bytes));
      }
      scans.push_back(ScanRec{scan.id, bytes, outer});
    }
    // Inner (primary) inputs first — the runtime join streams input 0.
    std::stable_sort(scans.begin(), scans.end(),
                     [](const ScanRec& a, const ScanRec& b) {
                       return !a.outer && b.outer;
                     });

    StarMirror sm;
    if (scans.size() == 1) {
      sm.tail = scans[0].id;  // scan folds into the consuming join cycle
    } else {
      PlanNode& join = plan->AddNode(
          OpKind::kStarJoin, label,
          label + ": star-join (" + std::to_string(scans.size()) +
              " VP tables, same subject key)",
          1);
      for (const ScanRec& r : scans) join.inputs.push_back(r.id);
      join.Attr("subject", star.subject_var);
      if (aware) {
        uint64_t total = 0;
        for (size_t i = 0; i < scans.size(); ++i) {
          join.Info("in" + std::to_string(i) + "_bytes",
                    std::to_string(scans[i].bytes));
          if (scans[i].outer) {
            join.Info("in" + std::to_string(i) + "_outer", "1");
          }
          total += scans[i].bytes;
        }
        join.est_bytes = total;
      }
      sm.tail = join.id;
      sm.materialized = true;
    }
    stars.push_back(sm);
  }

  if (pattern.stars.size() == 1) {
    if (!stars[0].materialized) {
      // The single-input star was never materialized; the compiler runs
      // one projection cycle so downstream stages have a table.
      PlanNode* scan = plan->FindById(stars[0].tail);
      scan->est_cycles = 1;
      scan->describe = label + ": VP scan (single triple pattern)";
    }
    out.tail_id = stars[0].tail;
    return out;
  }

  // Inter-star join chain: anchor star 0, textual edge order (the greedy
  // pass marks these order=greedy and defers the edge choice to runtime).
  std::vector<std::string> residual;
  for (size_t i = 0; i < filters.size(); ++i) {
    if (!filter_used[i]) residual.push_back(filters[i]->ToString());
  }
  std::vector<size_t> picks =
      detail::SimulateHiveChain(pattern.stars.size(), pattern.joins);
  std::vector<bool> joined(pattern.stars.size(), false);
  joined[0] = true;
  int acc = stars[0].tail;
  size_t total = pattern.stars.size() - 1;
  for (size_t c = 0; c < total; ++c) {
    PlanNode& jn = plan->AddNode(OpKind::kReduceJoin, label,
                                 label + ": inter-star join", 1);
    if (c < picks.size()) {
      const ntga::JoinEdge& edge = pattern.joins[picks[c]];
      int ns = joined[edge.star_a] ? edge.star_b : edge.star_a;
      joined[ns] = true;
      jn.Attr("edge", "?" + edge.var);
      jn.inputs = {acc, stars[ns].tail};
    } else {
      // Not connected by join variables; the runtime reports the error.
      jn.Attr("edge", "disconnected");
      jn.inputs = {acc};
    }
    if (c + 1 == total) {
      for (const std::string& sig : residual) jn.Attr("residual_filter", sig);
    }
    acc = jn.id;
  }
  out.tail_id = acc;
  return out;
}

/// Emits the pattern side of one grouping, OPTIONAL/UNION included: per
/// branch the required pattern (EmitHivePattern) followed by one left
/// star-join cycle per OPTIONAL tail (post-filters ride the last one as
/// its residual predicate), then a UNION ALL node when the grouping has
/// join-distributed arms. Conjunctive groupings emit exactly the nodes
/// the pre-OPTIONAL planner did.
int EmitHiveGroupingTail(PhysicalPlan* plan, engine::Dataset* dataset,
                         const GroupingSubquery& grouping,
                         const std::string& label) {
  std::vector<detail::BranchView> branches = detail::BranchesOf(grouping);
  std::vector<int> tails;
  for (size_t b = 0; b < branches.size(); ++b) {
    const detail::BranchView& bv = branches[b];
    std::string blabel =
        branches.size() > 1 ? label + ":b" + std::to_string(b) : label;
    std::vector<const sparql::Expr*> filters;
    for (const auto& f : *bv.filters) filters.push_back(f.get());
    HivePatternMirror pm =
        EmitHivePattern(plan, dataset, *bv.pattern, filters, nullptr, blabel);
    int tail = pm.tail_id;
    for (size_t j = 0; j < bv.optionals->size(); ++j) {
      const analytics::OptionalTail& opt = (*bv.optionals)[j];
      ntga::StarGraph og = detail::OptionalGraph(opt);
      std::vector<const sparql::Expr*> ofilters;
      for (const auto& f : opt.filters) ofilters.push_back(f.get());
      HivePatternMirror om =
          EmitHivePattern(plan, dataset, og, ofilters, nullptr,
                          blabel + ":opt" + std::to_string(j));
      PlanNode& jn = plan->AddNode(
          OpKind::kLeftReduceJoin, blabel,
          blabel + ": left star-join (OPTIONAL; unmatched rows keep NULLs)",
          1);
      jn.inputs = {tail, om.tail_id};
      jn.Attr("edge", "?" + opt.join_var);
      if (j + 1 == bv.optionals->size()) {
        for (const auto& f : *bv.post_filters) {
          jn.Attr("residual_filter", f->ToString());
        }
      }
      tail = jn.id;
    }
    tails.push_back(tail);
  }
  if (tails.size() == 1) return tails[0];
  PlanNode& un = plan->AddNode(
      OpKind::kUnion, label,
      label + ": UNION ALL (" + std::to_string(tails.size()) +
          " join-distributed branches)",
      1);
  un.map_only = true;
  un.inputs = tails;
  return un.id;
}

/// True when every aggregate of the grouping tolerates weighted
/// (factorized) accumulation: COUNT/MIN/MAX/SAMPLE/GROUP_CONCAT are order-
/// and partition-insensitive; SUM/AVG accumulate floating-point in data
/// order, so their pipelines stay flat (Aggregator::AddTermWeighted doc).
bool SafeFactorizeAggs(const GroupingSubquery& grouping) {
  for (const ntga::AggSpec& a : grouping.aggs) {
    if (a.func == sparql::AggFunc::kSum || a.func == sparql::AggFunc::kAvg) {
      return false;
    }
  }
  return true;
}

/// Compiles the pattern side of one grouping at exec time, mirroring
/// EmitHiveGroupingTail cycle for cycle: CompileHivePattern per branch and
/// per OPTIONAL star, a left outer Join per tail (post-filters compiled as
/// the last join's post-predicate), and one UNION ALL cycle across
/// branches. Single-branch groupings whose aggregates are weighted-safe
/// keep the join pipeline factorized (d-representation) end to end; the
/// GROUP BY consumes the groups directly. UNION branches stay flat — the
/// union cycle needs flat rows anyway.
StatusOr<engine::TableRef> CompileGroupingPattern(
    ExecContext* ctx, const GroupingSubquery& grouping,
    const std::string& label) {
  const rdf::Dictionary& dict = ctx->dataset->graph().dict();
  std::vector<detail::BranchView> branches = detail::BranchesOf(grouping);
  const bool fact = ctx->options.factorized_intermediates &&
                    branches.size() == 1 && SafeFactorizeAggs(grouping);
  std::vector<engine::TableRef> branch_tables;
  for (size_t b = 0; b < branches.size(); ++b) {
    const detail::BranchView& bv = branches[b];
    std::string blabel =
        branches.size() > 1 ? label + ":b" + std::to_string(b) : label;
    std::vector<const sparql::Expr*> filters;
    for (const auto& f : *bv.filters) filters.push_back(f.get());
    RAPIDA_ASSIGN_OR_RETURN(
        engine::TableRef cur,
        engine::CompileHivePattern(ctx->rel, ctx->dataset, *bv.pattern,
                                   filters, nullptr, blabel, fact));
    for (size_t j = 0; j < bv.optionals->size(); ++j) {
      const analytics::OptionalTail& opt = (*bv.optionals)[j];
      ntga::StarGraph og = detail::OptionalGraph(opt);
      std::vector<const sparql::Expr*> ofilters;
      for (const auto& f : opt.filters) ofilters.push_back(f.get());
      RAPIDA_ASSIGN_OR_RETURN(
          engine::TableRef opt_table,
          engine::CompileHivePattern(ctx->rel, ctx->dataset, og, ofilters,
                                     nullptr,
                                     blabel + ":opt" + std::to_string(j),
                                     fact));
      engine::JoinInput left;
      left.file = cur.file;
      left.columns = cur.columns;
      left.join_column = opt.join_var;
      left.factor = cur.factor;
      left.flat_bytes = cur.flat_bytes;
      engine::JoinInput right;
      right.file = opt_table.file;
      right.columns = opt_table.columns;
      right.join_column = opt.join_var;
      right.outer = true;
      right.factor = opt_table.factor;
      right.flat_bytes = opt_table.flat_bytes;
      engine::RowPredicate post;
      if (j + 1 == bv.optionals->size() && !bv.post_filters->empty()) {
        std::vector<std::string> post_cols = left.columns;
        for (const std::string& c : right.columns) {
          if (std::find(post_cols.begin(), post_cols.end(), c) ==
              post_cols.end()) {
            post_cols.push_back(c);
          }
        }
        std::vector<const sparql::Expr*> pfs;
        for (const auto& f : *bv.post_filters) pfs.push_back(f.get());
        post = engine::CompilePredicate(pfs, post_cols, &dict);
      }
      RAPIDA_ASSIGN_OR_RETURN(
          engine::TableRef joined,
          ctx->rel->Join(blabel + ":leftjoin" + std::to_string(j),
                         {left, right}, post, fact));
      cur = std::move(joined);
    }
    branch_tables.push_back(std::move(cur));
  }
  if (branch_tables.size() == 1) return branch_tables[0];
  return ctx->rel->UnionAll(label + ":union", branch_tables);
}

/// Emits one relational GROUP BY cycle node.
int EmitGroupAggregate(PhysicalPlan* plan, const std::string& label,
                       const std::string& describe,
                       const std::vector<std::string>& keys,
                       const std::vector<ntga::AggSpec>& aggs,
                       const sparql::Expr* having,
                       const std::vector<std::string>& output_columns,
                       int input_id) {
  PlanNode& n = plan->AddNode(OpKind::kGroupAggregate, label, describe, 1);
  if (input_id >= 0) n.inputs = {input_id};
  n.Attr("group_by", detail::Csv(keys));
  for (size_t i = 0; i < aggs.size(); ++i) {
    n.Attr("agg" + std::to_string(i), detail::AggSig(aggs[i]));
  }
  if (having != nullptr) n.Attr("having", having->ToString());
  std::vector<std::string> uses = keys;
  for (const ntga::AggSpec& a : aggs) {
    if (!a.count_star) uses.push_back(a.var);
  }
  n.Attr("uses", detail::Csv(uses));
  n.Attr("binds", detail::Csv(output_columns));
  n.bind_tag = label;
  return n.id;
}

/// Emits the query-level terminal: a map-only final join for multi-
/// grouping queries, a cost-0 driver-side projection otherwise. Carries
/// the SELECT list and solution modifiers (fingerprint completeness).
int EmitFinal(PhysicalPlan* plan, const AnalyticalQuery& query,
              const std::string& describe_join,
              const std::string& describe_driver,
              const std::vector<int>& grouping_ids, const std::string& tag) {
  PlanNode* fin = nullptr;
  if (query.groupings.size() > 1) {
    fin = &plan->AddNode(OpKind::kFinalJoin, "final", describe_join, 1);
    fin->map_only = true;
  } else {
    fin = &plan->AddNode(OpKind::kMaterialize, "final", describe_driver, 0);
  }
  fin->inputs = grouping_ids;
  detail::AddModifierAttrs(fin, query);
  fin->Attr("uses", detail::Csv(detail::ModifierUses(query)));
  fin->bind_tag = tag;
  return fin->id;
}

/// Materializes the final BindingTable exactly as the pre-IR engines did:
/// driver-side projection for a single grouping, FinalJoinProject +
/// ReadTable otherwise; then solution modifiers, into result slot 0.
Status FinishRelational(ExecContext* ctx, const AnalyticalQuery& query,
                        const std::vector<engine::TableRef>& tables) {
  StatusOr<analytics::BindingTable> result = Status::Internal("unset");
  if (query.groupings.size() == 1) {
    auto table = ctx->rel->ReadTable(tables[0]);
    if (!table.ok()) return table.status();
    rdf::Dictionary* dict = &ctx->dataset->dict();
    engine::ProjectedResult projected =
        engine::JoinAndProject({std::move(*table)}, query.top_items, dict);
    analytics::BindingTable out(projected.columns);
    for (const std::string& r : projected.rows) {
      std::vector<rdf::TermId> row = engine::DecodeRow(r);
      row.resize(projected.columns.size(), rdf::kInvalidTermId);
      out.AddRow(std::move(row));
    }
    result = std::move(out);
  } else {
    auto final_table =
        ctx->rel->FinalJoinProject("final", tables, query.top_items);
    if (!final_table.ok()) return final_table.status();
    auto table = ctx->rel->ReadTable(*final_table);
    if (!table.ok()) return table.status();
    result = std::move(*table);
  }
  analytics::ApplySolutionModifiers(query, ctx->dataset->dict(), &*result);
  (*ctx->results)[0] = std::move(result);
  return Status::OK();
}

void BindHiveNaive(PhysicalPlan* plan, const AnalyticalQuery& query) {
  auto tables = std::make_shared<std::vector<engine::TableRef>>();
  const AnalyticalQuery* q = &query;
  for (size_t g = 0; g < query.groupings.size(); ++g) {
    PlanNode* n = plan->FindByTag("g" + std::to_string(g));
    n->exec = [q, g, tables](ExecContext* ctx) -> Status {
      const GroupingSubquery& grouping = q->groupings[g];
      std::string label = "g" + std::to_string(g);
      auto pattern_table = CompileGroupingPattern(ctx, grouping, label);
      if (!pattern_table.ok()) return pattern_table.status();
      std::vector<engine::RelationalOps::AggColumn> aggs;
      for (const ntga::AggSpec& a : grouping.aggs) {
        aggs.push_back(engine::RelationalOps::AggColumn{
            a.func, a.var, a.count_star, a.output_name, a.separator});
      }
      std::vector<std::string> grouped_columns = grouping.group_by;
      for (const ntga::AggSpec& a : grouping.aggs) {
        grouped_columns.push_back(a.output_name);
      }
      engine::RowPredicate having;
      if (grouping.having != nullptr) {
        having =
            engine::CompilePredicate({grouping.having.get()}, grouped_columns,
                                     &ctx->dataset->graph().dict());
      }
      auto grouped = ctx->rel->GroupBy(label + ":groupby", *pattern_table,
                                       grouping.group_by, aggs, having);
      if (!grouped.ok()) return grouped.status();
      tables->push_back(std::move(*grouped));
      return Status::OK();
    };
  }
  plan->FindByTag("final")->exec = [q, tables](ExecContext* ctx) -> Status {
    return FinishRelational(ctx, *q, *tables);
  };
}

/// Everything the MQO rewrite derives from the composite before any job
/// runs, shared between the plan structure and the exec closures (the
/// closures must compile the exact graph/filters the nodes describe).
struct MqoState {
  ntga::CompositePattern comp;
  ntga::StarGraph composite_graph;
  std::set<ntga::PropKey> outer_props;
  std::vector<std::set<std::string>> pattern_sec_vars;
  std::vector<sparql::ExprPtr> composite_filters;
  std::vector<const sparql::Expr*> composite_filter_ptrs;
  std::vector<std::vector<sparql::ExprPtr>> extraction_filters;
  // Exec-time intermediates.
  engine::TableRef q_opt;
  std::vector<engine::TableRef> grouping_tables;
};

std::shared_ptr<MqoState> BuildMqoAnalysis(const AnalyticalQuery& query,
                                           ntga::CompositePattern comp) {
  auto st = std::make_shared<MqoState>();
  st->comp = std::move(comp);
  std::vector<std::vector<sparql::ExprPtr>> sec_const_filters(2);
  st->composite_graph =
      engine::CompositeToStarGraph(st->comp, &sec_const_filters);
  for (const ntga::CompositeStar& cs : st->comp.stars) {
    st->outer_props.insert(cs.secondary.begin(), cs.secondary.end());
  }
  st->pattern_sec_vars = {
      engine::SecondaryVars(st->comp, st->composite_graph, 0),
      engine::SecondaryVars(st->comp, st->composite_graph, 1)};

  // Filter classification, replayed from the engine: a filter runs on the
  // composite only when BOTH patterns carry the identical translated
  // filter and it touches no secondary variable; everything else waits for
  // its pattern's extraction (plus the constant-object marker equalities).
  std::vector<std::vector<sparql::ExprPtr>> translated_filters(2);
  std::vector<std::set<std::string>> filter_sigs(2);
  for (size_t p = 0; p < 2; ++p) {
    for (const auto& f : query.groupings[p].filters) {
      sparql::ExprPtr translated = engine::MapExprVars(*f, st->comp.var_map[p]);
      filter_sigs[p].insert(translated->ToString());
      translated_filters[p].push_back(std::move(translated));
    }
  }
  st->extraction_filters.resize(2);
  std::set<std::string> seen_composite;
  for (size_t p = 0; p < 2; ++p) {
    for (sparql::ExprPtr& translated : translated_filters[p]) {
      std::vector<std::string> vars = detail::ExprVars(*translated);
      bool touches_secondary = false;
      for (const std::string& v : vars) {
        if (st->pattern_sec_vars[p].count(v) > 0) touches_secondary = true;
      }
      std::string sig = translated->ToString();
      if (!touches_secondary && filter_sigs[1 - p].count(sig) > 0) {
        if (seen_composite.insert(sig).second) {
          st->composite_filters.push_back(std::move(translated));
        }
        continue;
      }
      st->extraction_filters[p].push_back(std::move(translated));
    }
    for (sparql::ExprPtr& eq : sec_const_filters[p]) {
      st->extraction_filters[p].push_back(std::move(eq));
    }
  }
  for (const auto& f : st->composite_filters) {
    st->composite_filter_ptrs.push_back(f.get());
  }
  return st;
}

void BindHiveMqo(PhysicalPlan* plan, const AnalyticalQuery& query,
                 std::shared_ptr<MqoState> st) {
  const AnalyticalQuery* q = &query;
  plan->FindByTag("qopt")->exec = [st](ExecContext* ctx) -> Status {
    // The materialized Q_OPT may stay factorized unconditionally: the
    // per-pattern DISTINCT extractions dedup to flat tables, so the
    // groupings' aggregates never see weighted input.
    auto q_opt = engine::CompileHivePattern(
        ctx->rel, ctx->dataset, st->composite_graph, st->composite_filter_ptrs,
        &st->outer_props, "qopt", ctx->options.factorized_intermediates);
    if (!q_opt.ok()) return q_opt.status();
    st->q_opt = std::move(*q_opt);
    return Status::OK();
  };
  for (size_t p = 0; p < 2; ++p) {
    PlanNode* n = plan->FindByTag("p" + std::to_string(p));
    n->exec = [q, p, st](ExecContext* ctx) -> Status {
      const GroupingSubquery& grouping = q->groupings[p];
      const rdf::Dictionary& dict = ctx->dataset->graph().dict();
      std::vector<std::string> pattern_vars;
      for (const auto& [orig, composite_var] : st->comp.var_map[p]) {
        if (std::find(pattern_vars.begin(), pattern_vars.end(),
                      composite_var) == pattern_vars.end()) {
          pattern_vars.push_back(composite_var);
        }
      }
      std::vector<std::string> sec_vars(st->pattern_sec_vars[p].begin(),
                                        st->pattern_sec_vars[p].end());
      std::vector<const sparql::Expr*> extr_filters;
      for (const auto& f : st->extraction_filters[p]) {
        extr_filters.push_back(f.get());
      }
      engine::RowPredicate filter_pred =
          engine::CompilePredicate(extr_filters, st->q_opt.columns, &dict);
      std::vector<int> sec_idx;
      for (const std::string& v : sec_vars) {
        int i = st->q_opt.ColumnIndex(v);
        if (i >= 0) sec_idx.push_back(i);
      }
      engine::RowPredicate keep =
          [sec_idx, filter_pred](const std::vector<rdf::TermId>& row) {
            for (int i : sec_idx) {
              if (row[i] == rdf::kInvalidTermId) return false;
            }
            return filter_pred == nullptr || filter_pred(row);
          };
      std::string label = "p" + std::to_string(p);
      auto extracted = ctx->rel->DistinctProject(label + ":extract",
                                                 st->q_opt, pattern_vars, keep);
      if (!extracted.ok()) return extracted.status();

      std::vector<std::string> translated_keys =
          engine::MapVars(grouping.group_by, st->comp.var_map[p]);
      std::vector<engine::RelationalOps::AggColumn> aggs;
      for (const ntga::AggSpec& a : grouping.aggs) {
        aggs.push_back(engine::RelationalOps::AggColumn{
            a.func, engine::MapVar(a.var, st->comp.var_map[p]), a.count_star,
            a.output_name, a.separator});
      }
      std::vector<std::string> grouped_columns = translated_keys;
      for (const ntga::AggSpec& a : grouping.aggs) {
        grouped_columns.push_back(a.output_name);
      }
      engine::RowPredicate having;
      sparql::ExprPtr translated_having;
      if (grouping.having != nullptr) {
        translated_having =
            engine::MapExprVars(*grouping.having, st->comp.var_map[p]);
        having = engine::CompilePredicate({translated_having.get()},
                                          grouped_columns, &dict);
      }
      auto grouped = ctx->rel->GroupBy(label + ":groupby", *extracted,
                                       translated_keys, aggs, having);
      if (!grouped.ok()) return grouped.status();
      engine::TableRef renamed = *grouped;
      for (size_t k = 0; k < grouping.group_by.size(); ++k) {
        renamed.columns[k] = grouping.group_by[k];
      }
      st->grouping_tables.push_back(std::move(renamed));
      return Status::OK();
    };
  }
  plan->FindByTag("final")->exec = [q, st](ExecContext* ctx) -> Status {
    return FinishRelational(ctx, *q, st->grouping_tables);
  };
}

}  // namespace

StatusOr<PhysicalPlan> PlanHiveNaive(const AnalyticalQuery& query,
                                     engine::Dataset* dataset,
                                     const engine::EngineOptions& options) {
  // Ensure the VP layout before inspecting it (same jobs, still before the
  // engine wrapper resets history — identical accounting to the old code).
  if (dataset != nullptr) RAPIDA_RETURN_IF_ERROR(dataset->EnsureVpTables());

  PhysicalPlan plan;
  plan.engine = "Hive (Naive)";
  plan.tmp_tag = "tmp:hive";
  plan.needs_vp = true;

  std::vector<int> grouping_ids;
  for (size_t g = 0; g < query.groupings.size(); ++g) {
    const GroupingSubquery& grouping = query.groupings[g];
    std::string label = "g" + std::to_string(g);
    int tail_id = EmitHiveGroupingTail(&plan, dataset, grouping, label);
    std::vector<std::string> output_columns = grouping.group_by;
    for (const ntga::AggSpec& a : grouping.aggs) {
      output_columns.push_back(a.output_name);
    }
    grouping_ids.push_back(EmitGroupAggregate(
        &plan, label,
        label + ": GROUP BY" + (grouping.group_by.empty() ? " ALL" : ""),
        grouping.group_by, grouping.aggs, grouping.having.get(),
        output_columns, tail_id));
  }
  EmitFinal(&plan, query, "final: map-only join of grouping results",
            "final: driver-side projection of the grouping result",
            grouping_ids, "final");

  PassManager::Default(options, &query).Run(&plan);
  if (dataset != nullptr) BindHiveNaive(&plan, query);
  return plan;
}

StatusOr<PhysicalPlan> PlanHiveMqo(const AnalyticalQuery& query,
                                   engine::Dataset* dataset,
                                   const engine::EngineOptions& options) {
  RAPIDA_ASSIGN_OR_RETURN(engine::CompositeApplicability check,
                          engine::CheckCompositeRewrite(query, false));
  if (!check.applies) {
    RAPIDA_ASSIGN_OR_RETURN(PhysicalPlan plan,
                            PlanHiveNaive(query, dataset, options));
    plan.engine = "Hive (MQO)";
    plan.fallback_reason = check.why;
    return plan;
  }
  if (dataset != nullptr) RAPIDA_RETURN_IF_ERROR(dataset->EnsureVpTables());

  auto st = BuildMqoAnalysis(query, std::move(check.comp));

  PhysicalPlan plan;
  plan.engine = "Hive (MQO)";
  plan.tmp_tag = "tmp:mqo";
  plan.needs_vp = true;
  plan.notes.push_back(
      "composite Q_OPT materialized, then per-pattern extraction (early "
      "projection / partial aggregation cannot cross the boundary)");

  HivePatternMirror pm =
      EmitHivePattern(&plan, dataset, st->composite_graph,
                      st->composite_filter_ptrs, &st->outer_props, "qopt");
  plan.FindById(pm.tail_id)->bind_tag = "qopt";

  std::vector<int> grouping_ids;
  for (size_t p = 0; p < 2; ++p) {
    const GroupingSubquery& grouping = query.groupings[p];
    std::string label = "p" + std::to_string(p);
    std::vector<std::string> pattern_vars;
    for (const auto& [orig, composite_var] : st->comp.var_map[p]) {
      if (std::find(pattern_vars.begin(), pattern_vars.end(),
                    composite_var) == pattern_vars.end()) {
        pattern_vars.push_back(composite_var);
      }
    }
    PlanNode& ex = plan.AddNode(
        OpKind::kDistinctExtract, label,
        label + ": DISTINCT extraction from materialized Q_OPT", 1);
    ex.inputs = {pm.tail_id};
    ex.Attr("project", detail::Csv(pattern_vars));
    for (const std::string& v : st->pattern_sec_vars[p]) {
      ex.Attr("require_bound", v);
    }
    for (const auto& f : st->extraction_filters[p]) {
      ex.Attr("filter", f->ToString());
    }
    ex.Attr("uses", detail::Csv(pattern_vars));
    ex.Attr("binds", detail::Csv(pattern_vars));

    std::vector<std::string> translated_keys =
        engine::MapVars(grouping.group_by, st->comp.var_map[p]);
    std::vector<ntga::AggSpec> translated_aggs;
    for (const ntga::AggSpec& a : grouping.aggs) {
      ntga::AggSpec ta = a;
      ta.var = engine::MapVar(a.var, st->comp.var_map[p]);
      translated_aggs.push_back(std::move(ta));
    }
    sparql::ExprPtr translated_having;
    if (grouping.having != nullptr) {
      translated_having =
          engine::MapExprVars(*grouping.having, st->comp.var_map[p]);
    }
    std::vector<std::string> output_columns = grouping.group_by;
    for (const ntga::AggSpec& a : grouping.aggs) {
      output_columns.push_back(a.output_name);
    }
    grouping_ids.push_back(EmitGroupAggregate(
        &plan, label, label + ": GROUP BY", translated_keys, translated_aggs,
        translated_having.get(), output_columns, ex.id));
  }
  EmitFinal(&plan, query, "final: map-only join of grouping results",
            "final: driver-side projection of the grouping result",
            grouping_ids, "final");

  PassManager::Default(options, &query).Run(&plan);
  if (dataset != nullptr) BindHiveMqo(&plan, query, st);
  return plan;
}

}  // namespace rapida::plan
