#include "plan/passes.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "storage/ivm.h"

namespace rapida::plan {

namespace {

const std::string* FindEntry(const AttrList& list, const std::string& key) {
  for (const auto& [k, v] : list) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream is(s);
  while (std::getline(is, cur, ',')) {
    if (!cur.empty()) out.push_back(cur);
  }
  return out;
}

std::string JoinCsv(const std::vector<std::string>& items) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += items[i];
  }
  return out;
}

}  // namespace

void PassManager::Run(PhysicalPlan* plan) const {
  for (const Pass& pass : passes_) {
    pass.run(plan, pass.enabled);
    plan->passes.push_back(pass.name + (pass.enabled ? "" : " (off)"));
  }
}

PassManager PassManager::Default(const engine::EngineOptions& options,
                                 const analytics::AnalyticalQuery* query) {
  PassManager pm;

  const uint64_t threshold = options.map_join_threshold_bytes;
  pm.Add(Pass{
      "map-join-selection", options.enable_map_joins,
      [threshold](PhysicalPlan* plan, bool enabled) {
        for (PlanNode& n : plan->nodes) {
          if (n.kind == OpKind::kReduceJoin) {
            n.Attr("join", enabled ? "auto" : "repartition");
            continue;
          }
          const bool left = n.kind == OpKind::kLeftReduceJoin;
          if (n.kind != OpKind::kStarJoin && !left) continue;
          if (!enabled) {
            n.Attr("join", "repartition");
            continue;
          }
          std::vector<uint64_t> sizes;
          std::vector<bool> outer;
          for (int i = 0;; ++i) {
            const std::string* b =
                FindEntry(n.info, "in" + std::to_string(i) + "_bytes");
            if (b == nullptr) break;
            sizes.push_back(std::stoull(*b));
            outer.push_back(FindEntry(n.info, "in" + std::to_string(i) +
                                                  "_outer") != nullptr);
          }
          if (sizes.size() < 2) {
            // Dataset-free plan (or degenerate star): runtime decides.
            // Left joins over intermediates have no static sizes either —
            // same conservative display as kReduceJoin, the runtime may
            // still broadcast.
            n.Attr("join", "auto");
            continue;
          }
          // Exact replica of RelationalOps::Join: the (first) largest
          // input streams; all others must fit the broadcast threshold
          // and the streamed input must not be outer.
          size_t big = 0;
          for (size_t i = 1; i < sizes.size(); ++i) {
            if (sizes[i] > sizes[big]) big = i;
          }
          bool map_join = !outer[big];
          for (size_t i = 0; i < sizes.size(); ++i) {
            if (i != big && sizes[i] > threshold) map_join = false;
          }
          if (map_join) {
            n.kind = left ? OpKind::kLeftMapJoin : OpKind::kMapJoin;
            n.map_only = true;
            n.Attr("join", "map");
          } else {
            n.Attr("join", "repartition");
          }
        }
      }});

  pm.Add(Pass{
      "greedy-join-order", options.greedy_join_order,
      [](PhysicalPlan* plan, bool enabled) {
        for (PlanNode& n : plan->nodes) {
          if (n.kind != OpKind::kReduceJoin &&
              n.kind != OpKind::kNSplitAlphaJoin) {
            continue;
          }
          if (enabled) {
            // The statically simulated (textual-order) edge choice no
            // longer holds: the runtime picks edges by stored sizes.
            n.attrs.erase(
                std::remove_if(n.attrs.begin(), n.attrs.end(),
                               [](const std::pair<std::string, std::string>&
                                      kv) { return kv.first == "edge"; }),
                n.attrs.end());
            n.Attr("order", "greedy");
            n.Attr("edge", "runtime");
          } else {
            n.Attr("order", "textual");
          }
        }
      }});

  pm.Add(Pass{
      "partial-aggregation", options.partial_aggregation,
      [](PhysicalPlan* plan, bool enabled) {
        for (PlanNode& n : plan->nodes) {
          if (n.kind == OpKind::kGroupAggregate ||
              n.kind == OpKind::kAggJoin) {
            n.Attr("map_side_agg", enabled ? "partial" : "off");
          }
        }
      }});

  pm.Add(Pass{
      "factorize", options.factorized_intermediates,
      [](PhysicalPlan* plan, bool enabled) {
        // Factorized (d-representation) intermediate results. Two halves:
        //
        // NTGA plans are *natively* factorized — a triplegroup is exactly
        // the grouped form, and kExpandBindings is the engine's built-in
        // decompress boundary. Those nodes get display-only annotations
        // (info, like vectorized-kernels) whether or not the pass is on,
        // because the representation is the engine's own, not a choice.
        for (PlanNode& n : plan->nodes) {
          switch (n.kind) {
            case OpKind::kTripleGroupLoad:
            case OpKind::kNSplitAlphaJoin:
              n.Info("factorized", "ntg-bindings");
              break;
            case OpKind::kExpandBindings:
              n.Info("decompress", "expand-bindings");
              break;
            default:
              break;
          }
        }
        if (!enabled) return;
        // Relational plans: walk up from every sink that can consume
        // d-representation groups directly — kDistinctExtract always
        // (dedup decompresses), kGroupAggregate when every aggregate is
        // weighted-safe (no SUM/AVG: Aggregator::AddTermWeighted) — and
        // mark the join pipeline above it `factorize=d-rep`. Joins that
        // carry a residual post-filter emit flat (predicates see flat
        // rows): `off:post-filter`, but their *inputs* may still be
        // factorized (FactJoin stream-decompresses). UNION arms stay flat
        // (the union cycle concatenates flat rows), so the walk stops
        // there — exactly the grouping-level rule the exec closures
        // apply. These are identity attrs (they change what the cycles
        // emit), so they are fingerprinted, unlike the NTGA info above.
        auto is_join = [](OpKind k) {
          return k == OpKind::kStarJoin || k == OpKind::kMapJoin ||
                 k == OpKind::kReduceJoin || k == OpKind::kLeftMapJoin ||
                 k == OpKind::kLeftReduceJoin;
        };
        std::set<int> visited;
        std::function<void(int)> mark_up = [&](int id) {
          if (!visited.insert(id).second) return;
          PlanNode* n = plan->FindById(id);
          if (n == nullptr || !is_join(n->kind)) return;  // union/scan: stop
          if (FindEntry(n->attrs, "factorize") == nullptr) {
            if (FindEntry(n->attrs, "residual_filter") != nullptr) {
              n->Attr("factorize", "off:post-filter");
            } else if (n->inputs.size() >= 2) {
              n->Attr("factorize", "d-rep");
            }
          }
          for (int in : n->inputs) mark_up(in);
        };
        for (PlanNode& n : plan->nodes) {
          const bool sink = n.kind == OpKind::kGroupAggregate ||
                            n.kind == OpKind::kDistinctExtract;
          if (!sink) continue;
          bool safe = true;
          if (n.kind == OpKind::kGroupAggregate) {
            for (const auto& [k, v] : n.attrs) {
              if (k.rfind("agg", 0) == 0 &&
                  (v.rfind("SUM(", 0) == 0 || v.rfind("AVG(", 0) == 0)) {
                safe = false;
              }
            }
          }
          bool joins_above = false;
          for (int in : n.inputs) {
            const PlanNode* p = plan->FindById(in);
            if (p != nullptr && is_join(p->kind)) joins_above = true;
          }
          if (!safe) {
            if (joins_above) n.Attr("factorize", "off:sum-avg");
            continue;
          }
          for (int in : n.inputs) mark_up(in);
          bool factorized_input = false;
          for (int in : n.inputs) {
            const PlanNode* p = plan->FindById(in);
            const std::string* f =
                p == nullptr ? nullptr : FindEntry(p->attrs, "factorize");
            if (f != nullptr && *f == "d-rep") factorized_input = true;
          }
          if (factorized_input) n.Attr("factorize", "fused-decompress");
        }
        // Flat-tuple boundaries: a consumer that genuinely needs flat
        // rows (final join, driver-side materialize, union concatenation,
        // SUM/AVG aggregation) over a d-rep producer gets an explicit
        // cost-0 Decompress node — the enumeration folds into the
        // consumer's reader, like VP scans fold into their join. Today's
        // planners never factorize past such a boundary, so this is a
        // structural guarantee, not a hot path.
        std::map<size_t, std::vector<int>> wanted;  // consumer pos -> inputs
        for (size_t i = 0; i < plan->nodes.size(); ++i) {
          PlanNode& n = plan->nodes[i];
          const std::string* own = FindEntry(n.attrs, "factorize");
          const bool handles_groups =
              is_join(n.kind) || n.kind == OpKind::kDistinctExtract ||
              (n.kind == OpKind::kGroupAggregate && own != nullptr &&
               *own == "fused-decompress") ||
              n.kind == OpKind::kDecompress;
          if (handles_groups) continue;
          for (int in : n.inputs) {
            const PlanNode* p = plan->FindById(in);
            const std::string* f =
                p == nullptr ? nullptr : FindEntry(p->attrs, "factorize");
            if (f != nullptr && *f == "d-rep") wanted[i].push_back(in);
          }
        }
        // Back to front so stored positions stay valid while inserting.
        for (auto it = wanted.rbegin(); it != wanted.rend(); ++it) {
          size_t pos = it->first;  // shifts right as nodes land before it
          for (int producer_id : it->second) {
            const std::string clabel = plan->nodes[pos].label;
            const std::string ckind = OpKindName(plan->nodes[pos].kind);
            PlanNode& dec = plan->AddNode(
                OpKind::kDecompress, clabel,
                clabel + ": decompress d-representation groups to flat "
                         "tuples (folded into the reader)",
                0);
            dec.map_only = true;
            dec.inputs = {producer_id};
            dec.Attr("boundary", ckind);
            const int dec_id = dec.id;
            PlanNode& c = plan->nodes[pos];
            for (int& in : c.inputs) {
              if (in == producer_id) in = dec_id;
            }
            // AddNode appended; rotate the new node to just before its
            // consumer to keep the stored order topological (the consumer
            // and later nodes shift one slot right).
            std::rotate(plan->nodes.begin() + static_cast<long>(pos),
                        plan->nodes.end() - 1, plan->nodes.end());
            ++pos;
          }
        }
      }});

  pm.Add(Pass{
      "parallel-agg-join", options.parallel_agg_join,
      [](PhysicalPlan* plan, bool enabled) {
        // Only shared-scan (RAPIDAnalytics) plans label their sibling
        // Agg-Joins "agg"; RAPID+ always runs its per-grouping Agg-Joins
        // sequentially, exactly as before.
        std::vector<size_t> agg_idx;
        for (size_t i = 0; i < plan->nodes.size(); ++i) {
          if (plan->nodes[i].kind == OpKind::kAggJoin &&
              plan->nodes[i].label == "agg") {
            agg_idx.push_back(i);
          }
        }
        if (agg_idx.empty() || !enabled) return;
        bool folded =
            FindEntry(plan->nodes[agg_idx[0]].attrs, "fold") != nullptr;
        std::vector<int> input_ids;
        std::string bind;
        for (size_t i : agg_idx) {
          PlanNode& n = plan->nodes[i];
          n.est_cycles = 0;  // evaluated inside the parallel region
          input_ids.push_back(n.id);
          if (!n.bind_tag.empty()) {
            bind = n.bind_tag;
            n.bind_tag.clear();
          }
        }
        size_t last = agg_idx.back();
        PlanNode& region = plan->AddNode(
            OpKind::kParallelRegion, "agg",
            "agg: parallel TG Agg-Join (" + std::to_string(agg_idx.size()) +
                " grouping-aggregations in one cycle)" +
                (folded ? " with star matching folded into map" : ""),
            1);
        region.inputs = input_ids;
        region.bind_tag = bind;
        // AddNode appended the region; move it to just after the last
        // Agg-Join so the stored order stays topological.
        std::rotate(plan->nodes.begin() + static_cast<long>(last) + 1,
                    plan->nodes.end() - 1, plan->nodes.end());
      }});

  pm.Add(Pass{
      "union-distribution", true,
      [](PhysicalPlan* plan, bool) {
        // Join distribution over UNION — (T ⋈ (A ∪ B)) = (T ⋈ A) ∪ (T ⋈ B)
        // — already happened when the analyzer built one distributed branch
        // per arm; this pass stamps the resulting Union nodes so the
        // rewrite is visible (and fingerprinted) in the plan. OPTIONAL
        // tails ride along: left-join distributes over its left input, so
        // per-branch left joins are equivalent to one post-union left join.
        for (PlanNode& n : plan->nodes) {
          if (n.kind != OpKind::kUnion) continue;
          n.Attr("distribution", "join-pushed-into-arms");
          n.Attr("arms", std::to_string(n.inputs.size()));
        }
      }});

  pm.Add(Pass{
      // Sharded runs force the scalar path (per-record shuffle
      // attribution); the annotation reflects what will actually execute.
      "vectorized-kernels",
      options.vectorized_kernels && options.num_shards <= 1,
      [](PhysicalPlan* plan, bool enabled) {
        // Dispatch annotation only: the batch kernels are byte-identical
        // to the scalar operators by contract, so the choice is
        // display-only `info` — fingerprints, cost estimates, and every
        // counter stay exactly where the scalar path put them.
        for (PlanNode& n : plan->nodes) {
          switch (n.kind) {
            case OpKind::kStarJoin:
            case OpKind::kMapJoin:
            case OpKind::kReduceJoin:
            case OpKind::kLeftMapJoin:
            case OpKind::kLeftReduceJoin:
            case OpKind::kUnion:
            case OpKind::kExpandBindings:
            case OpKind::kNSplitAlphaJoin:
            case OpKind::kAggJoin:
            case OpKind::kGroupAggregate:
            case OpKind::kDistinctExtract:
              n.Info("kernel", enabled ? "batch" : "scalar");
              break;
            default:
              break;
          }
        }
      }});

  pm.Add(Pass{
      "dead-column-prune", true,
      [](PhysicalPlan* plan, bool) {
        // Backward liveness: a column a node materializes is dead if no
        // later node consumes it. Advisory only — physically dropping the
        // column would change the byte counters the engines must keep
        // identical to their pre-IR selves.
        std::set<std::string> live;
        for (auto it = plan->nodes.rbegin(); it != plan->nodes.rend(); ++it) {
          PlanNode& n = *it;
          const std::string* binds = FindEntry(n.attrs, "binds");
          if (binds != nullptr) {
            std::vector<std::string> dead;
            for (const std::string& c : SplitCsv(*binds)) {
              if (live.count(c) == 0) dead.push_back(c);
            }
            if (!dead.empty()) n.Info("dead_cols", JoinCsv(dead));
          }
          const std::string* uses = FindEntry(n.attrs, "uses");
          if (uses != nullptr) {
            for (const std::string& c : SplitCsv(*uses)) live.insert(c);
          }
        }
      }});

  pm.Add(Pass{
      "common-subplan-dedup", true,
      [](PhysicalPlan* plan, bool) {
        // Structural hash per node (label excluded): kind + identity
        // attrs + input subtree hashes. Equal hashes mark work the
        // composite rewrites share (or could share).
        std::map<int, std::string> hash_of;
        std::map<std::string, int> first_with;
        for (PlanNode& n : plan->nodes) {
          std::string sig = OpKindName(n.kind);
          for (const auto& [k, v] : n.attrs) {
            sig += "|" + k + "=" + v;
          }
          for (int in : n.inputs) {
            auto it = hash_of.find(in);
            sig += "|<" + (it == hash_of.end() ? std::to_string(in)
                                               : it->second) + ">";
          }
          std::string h = Fnv1aHex(sig);
          hash_of[n.id] = h;
          auto [it, inserted] = first_with.emplace(h, n.id);
          if (!inserted && n.est_cycles > 0) {
            n.Info("shared_with", "#" + std::to_string(it->second));
          }
        }
      }});

  pm.Add(Pass{
      "ivm-classify", true,
      [query](PhysicalPlan* plan, bool) {
        // Advisory: records whether a materialized result of this plan
        // admits algebraic patching under insert-only deltas. Info-only
        // (like vectorized-kernels) so fingerprints stay put — the same
        // classification keys the materialization store's patch-vs-
        // recompute decision at mutation time.
        if (plan->nodes.empty()) return;
        PlanNode& final_node = plan->nodes.back();
        if (query == nullptr) {
          final_node.Info("ivm", "none");
          final_node.Info("ivm_detail",
                          "shared-scan batch (members classified per "
                          "artifact)");
          return;
        }
        storage::IvmDecision d = storage::ClassifyMaintainability(*query);
        final_node.Info("ivm", storage::IvmClassName(d.cls));
        final_node.Info("ivm_detail", d.detail);
      }});

  const int num_shards = options.num_shards;
  pm.Add(Pass{
      "partial-evaluation", options.partial_evaluation,
      [num_shards](PhysicalPlan* plan, bool enabled) {
        // Splits the plan into a shard-local phase and a cross-shard
        // residual (partial evaluation over the sharded data plane).
        // `peval=local` nodes are fully evaluable shard-by-shard without
        // communication: map-only stages shuffle nothing, and star joins
        // over base VP/triplegroup inputs repartition on the subject key
        // the storage layer already keyed those tables by — under the
        // locality scheme every such record's home shard IS its reducer's
        // shard, so est_shuffle_bytes is exactly 0 and the executor
        // fails any run where a local node moves a byte across the
        // channel. Everything else (inter-star joins, alpha-join n-splits,
        // aggregations over intermediates) keys its shuffle by values no
        // placement can anticipate: `peval=residual`, est_shuffle_bytes
        // is a display-only upper bound from the node's known input
        // bytes. Annotations are `info` + est_shuffle_bytes only, so
        // fingerprints and cycle counts stay put.
        if (!enabled) return;
        for (PlanNode& n : plan->nodes) {
          bool local = n.map_only || n.kind == OpKind::kVpScan ||
                       n.kind == OpKind::kTripleGroupLoad;
          if (!local && n.kind == OpKind::kStarJoin && !n.inputs.empty()) {
            local = true;
            for (int in : n.inputs) {
              const PlanNode* p = plan->FindById(in);
              if (p == nullptr || (p->kind != OpKind::kVpScan &&
                                   p->kind != OpKind::kTripleGroupLoad)) {
                local = false;
                break;
              }
            }
          }
          n.Info("peval", local ? "local" : "residual");
          n.est_shuffle_bytes = local ? 0 : n.est_bytes;
          if (n.kind == OpKind::kParallelRegion) {
            // Shard placement of the region's sibling branches: round-
            // robin over the shards (each branch's jobs are dispatched
            // with the region's shared scan, so placement is advisory).
            if (num_shards > 1) {
              std::string csv;
              for (size_t i = 0; i < n.inputs.size(); ++i) {
                if (i > 0) csv += ",";
                csv += std::to_string(static_cast<int>(i) % num_shards);
              }
              n.Info("shard_placement", csv);
            } else {
              n.Info("shard_placement", "coordinator");
            }
          }
        }
      }});

  return pm;
}

}  // namespace rapida::plan
