#include "plan/executor.h"

#include <chrono>
#include <memory>

namespace rapida::plan {

Status ExecutePlanMulti(
    const PhysicalPlan& plan, engine::Dataset* dataset, mr::Cluster* cluster,
    const engine::EngineOptions& options,
    std::vector<StatusOr<analytics::BindingTable>>* results) {
  if (plan.needs_vp) RAPIDA_RETURN_IF_ERROR(dataset->EnsureVpTables());
  if (plan.needs_tg) RAPIDA_RETURN_IF_ERROR(dataset->EnsureTripleGroups());

  ExecContext ctx;
  ctx.dataset = dataset;
  ctx.cluster = cluster;
  ctx.options = options;
  ctx.results = results;

  // The relational facade is always live (not just under needs_vp): the
  // NTGA engines' OPTIONAL/UNION groupings left-join, union and group
  // their expanded intermediates relationally without touching VP tables.
  std::unique_ptr<engine::RelationalOps> rel;
  std::unique_ptr<engine::NtgaExec> ntga;
  rel = std::make_unique<engine::RelationalOps>(
      cluster, dataset, options, options.tmp_namespace + plan.tmp_tag);
  ctx.rel = rel.get();
  if (plan.needs_tg) {
    ntga = std::make_unique<engine::NtgaExec>(
        cluster, dataset, options, options.tmp_namespace + plan.tmp_tag);
    ctx.ntga = ntga.get();
  }

  auto cleanup = [&] {
    if (rel != nullptr) rel->Cleanup();
    if (ntga != nullptr) ntga->Cleanup();
  };

  for (const PlanNode& node : plan.nodes) {
    if (!node.exec) continue;
    Status s = node.exec(&ctx);
    if (!s.ok()) {
      cleanup();
      return s;
    }
  }
  cleanup();
  return Status::OK();
}

StatusOr<analytics::BindingTable> ExecutePlan(
    const PhysicalPlan& plan, engine::Dataset* dataset, mr::Cluster* cluster,
    const engine::EngineOptions& options) {
  std::vector<StatusOr<analytics::BindingTable>> results;
  results.emplace_back(Status::Internal("unset"));
  RAPIDA_RETURN_IF_ERROR(
      ExecutePlanMulti(plan, dataset, cluster, options, &results));
  return std::move(results[0]);
}

StatusOr<analytics::BindingTable> RunPlanAsEngine(
    const PhysicalPlan& plan, engine::Dataset* dataset, mr::Cluster* cluster,
    const engine::EngineOptions& options, engine::ExecStats* stats) {
  auto start = std::chrono::steady_clock::now();
  if (plan.ensure_before_reset) {
    if (plan.needs_vp) RAPIDA_RETURN_IF_ERROR(dataset->EnsureVpTables());
    if (plan.needs_tg) RAPIDA_RETURN_IF_ERROR(dataset->EnsureTripleGroups());
  }
  cluster->ResetHistory();
  StatusOr<analytics::BindingTable> result =
      ExecutePlan(plan, dataset, cluster, options);
  if (result.ok() && stats != nullptr) {
    stats->engine = plan.engine;
    stats->workflow.jobs = cluster->history();
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return result;
}

}  // namespace rapida::plan
