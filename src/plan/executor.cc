#include "plan/executor.h"

#include <chrono>
#include <cstdio>
#include <memory>

namespace rapida::plan {

Status ExecutePlanMulti(
    const PhysicalPlan& plan, engine::Dataset* dataset, mr::Cluster* cluster,
    const engine::EngineOptions& options,
    std::vector<StatusOr<analytics::BindingTable>>* results) {
  if (plan.needs_vp) RAPIDA_RETURN_IF_ERROR(dataset->EnsureVpTables());
  if (plan.needs_tg) RAPIDA_RETURN_IF_ERROR(dataset->EnsureTripleGroups());

  // Sharded execution requires the scalar operator path: the cluster's
  // per-record emission attribution (channel edge accounting) cannot see
  // inside a batch kernel. Scalar and batch are byte-identical by
  // contract, so this only moves host wall time.
  engine::EngineOptions exec_options = options;
  if (exec_options.num_shards > 1) exec_options.vectorized_kernels = false;

  ExecContext ctx;
  ctx.dataset = dataset;
  ctx.cluster = cluster;
  ctx.options = exec_options;
  ctx.results = results;

  // The relational facade is always live (not just under needs_vp): the
  // NTGA engines' OPTIONAL/UNION groupings left-join, union and group
  // their expanded intermediates relationally without touching VP tables.
  std::unique_ptr<engine::RelationalOps> rel;
  std::unique_ptr<engine::NtgaExec> ntga;
  rel = std::make_unique<engine::RelationalOps>(
      cluster, dataset, exec_options,
      exec_options.tmp_namespace + plan.tmp_tag);
  ctx.rel = rel.get();
  if (plan.needs_tg) {
    ntga = std::make_unique<engine::NtgaExec>(
        cluster, dataset, exec_options,
        exec_options.tmp_namespace + plan.tmp_tag);
    ctx.ntga = ntga.get();
  }

  auto cleanup = [&] {
    if (rel != nullptr) rel->Cleanup();
    if (ntga != nullptr) ntga->Cleanup();
  };

  // Partial-evaluation contract: under the locality scheme, a node the
  // pass classified `peval=local` must run entirely shard-local — its
  // estimated cross-shard shuffle is exactly 0, and we hold the executed
  // counters to it. Only nodes that own their exec are checked (fused
  // chains and parallel-region members run under a neighbor's exec, so
  // their jobs cannot be attributed to one node).
  const bool enforce_peval =
      options.num_shards > 1 &&
      options.sharding_scheme == mr::ShardingScheme::kLocality;
  auto peval_of = [](const PlanNode& node) -> const std::string* {
    for (const auto& [k, v] : node.info) {
      if (k == "peval") return &v;
    }
    return nullptr;
  };

  for (const PlanNode& node : plan.nodes) {
    if (!node.exec) continue;
    const size_t jobs_before = cluster->history().size();
    Status s = node.exec(&ctx);
    if (!s.ok()) {
      cleanup();
      return s;
    }
    {
      // Post-exec EXPLAIN annotation: flat rows / d-representation groups
      // over the jobs this node's exec ran. Info is display-only and
      // excluded from Fingerprint, and plans are built per execution, so
      // mutating it through the const ref is safe (same contract as the
      // passes' dataset-dependent info).
      uint64_t fgroups = 0;
      uint64_t frows = 0;
      const auto& history = cluster->history();
      for (size_t j = jobs_before; j < history.size(); ++j) {
        fgroups += history[j].factorized_groups;
        frows += history[j].factorized_flat_rows;
      }
      if (fgroups > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f",
                      static_cast<double>(frows) /
                          static_cast<double>(fgroups));
        const_cast<PlanNode&>(node).Info("factorization_factor", buf);
      }
    }
    if (enforce_peval) {
      const std::string* peval = peval_of(node);
      if (peval != nullptr && *peval == "local") {
        const auto& history = cluster->history();
        for (size_t j = jobs_before; j < history.size(); ++j) {
          if (history[j].shuffle_cross_bytes != 0) {
            cleanup();
            return Status::Internal(
                "partial-evaluation contract violated: node #" +
                std::to_string(node.id) + " (" + OpKindName(node.kind) +
                ") is peval=local but job '" + history[j].name +
                "' shuffled " +
                std::to_string(history[j].shuffle_cross_bytes) +
                " bytes across shards");
          }
        }
      }
    }
  }
  cleanup();
  return Status::OK();
}

StatusOr<analytics::BindingTable> ExecutePlan(
    const PhysicalPlan& plan, engine::Dataset* dataset, mr::Cluster* cluster,
    const engine::EngineOptions& options) {
  std::vector<StatusOr<analytics::BindingTable>> results;
  results.emplace_back(Status::Internal("unset"));
  RAPIDA_RETURN_IF_ERROR(
      ExecutePlanMulti(plan, dataset, cluster, options, &results));
  return std::move(results[0]);
}

StatusOr<analytics::BindingTable> RunPlanAsEngine(
    const PhysicalPlan& plan, engine::Dataset* dataset, mr::Cluster* cluster,
    const engine::EngineOptions& options, engine::ExecStats* stats) {
  auto start = std::chrono::steady_clock::now();
  if (plan.ensure_before_reset) {
    if (plan.needs_vp) RAPIDA_RETURN_IF_ERROR(dataset->EnsureVpTables());
    if (plan.needs_tg) RAPIDA_RETURN_IF_ERROR(dataset->EnsureTripleGroups());
  }
  cluster->ResetHistory();
  StatusOr<analytics::BindingTable> result =
      ExecutePlan(plan, dataset, cluster, options);
  if (result.ok() && stats != nullptr) {
    stats->engine = plan.engine;
    stats->workflow.jobs = cluster->history();
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return result;
}

}  // namespace rapida::plan
