#ifndef RAPIDA_PLAN_EXECUTOR_H_
#define RAPIDA_PLAN_EXECUTOR_H_

#include <vector>

#include "analytics/binding.h"
#include "engines/dataset.h"
#include "engines/engine.h"
#include "engines/ntga_exec.h"
#include "engines/relational_ops.h"
#include "mapreduce/cluster.h"
#include "plan/plan.h"
#include "util/statusor.h"

namespace rapida::plan {

/// Execution-time context handed to every PlanNode::exec closure.
///
/// `rel` is always live (OPTIONAL/UNION groupings of the NTGA engines use
/// it without VP tables), `ntga` iff the plan declared needs_tg; both are
/// constructed with the plan's tmp tag under options.tmp_namespace so
/// intermediate-file naming matches the pre-IR engines exactly. `results`
/// has PhysicalPlan::num_results slots, pre-filled with
/// Status::Internal("unset"); terminal nodes fill their slot (per-query
/// failures also go into the slot — only shared-phase failures abort the
/// walk by returning non-OK).
struct ExecContext {
  engine::Dataset* dataset = nullptr;
  mr::Cluster* cluster = nullptr;
  engine::EngineOptions options;
  engine::RelationalOps* rel = nullptr;
  engine::NtgaExec* ntga = nullptr;
  std::vector<StatusOr<analytics::BindingTable>>* results = nullptr;
};

/// Walks `plan.nodes` front to back (the stored order is a topological
/// order) running every non-null exec closure. Ensures the storage layout
/// the plan declared (idempotent), builds the ops facades, and cleans up
/// intermediates whether or not the walk succeeds. Does NOT touch the
/// cluster's job history — the engine wrappers own the Ensure/ResetHistory
/// ordering (see PhysicalPlan::ensure_before_reset).
Status ExecutePlanMulti(const PhysicalPlan& plan, engine::Dataset* dataset,
                        mr::Cluster* cluster,
                        const engine::EngineOptions& options,
                        std::vector<StatusOr<analytics::BindingTable>>* results);

/// Single-result convenience over ExecutePlanMulti (num_results == 1).
StatusOr<analytics::BindingTable> ExecutePlan(
    const PhysicalPlan& plan, engine::Dataset* dataset, mr::Cluster* cluster,
    const engine::EngineOptions& options);

/// The full engine protocol around one plan: ensure the declared storage
/// layout (when ensure_before_reset — otherwise the build is measured),
/// reset job history, execute, and on success fill `stats` from the
/// cluster history under the plan's engine name. This is what the four
/// Engine::Execute implementations are.
StatusOr<analytics::BindingTable> RunPlanAsEngine(
    const PhysicalPlan& plan, engine::Dataset* dataset, mr::Cluster* cluster,
    const engine::EngineOptions& options, engine::ExecStats* stats);

}  // namespace rapida::plan

#endif  // RAPIDA_PLAN_EXECUTOR_H_
