#ifndef RAPIDA_PLAN_PLANNER_H_
#define RAPIDA_PLAN_PLANNER_H_

#include <string>
#include <vector>

#include "analytics/analytical_query.h"
#include "engines/dataset.h"
#include "engines/engine.h"
#include "engines/shared_scan.h"
#include "plan/plan.h"
#include "util/statusor.h"

namespace rapida::plan {

/// Per-engine planners: translate an AnalyticalQuery into the explicit
/// operator DAG the engine will run, mirroring the engine's compiler
/// exactly (same cycle structure, same labels, same fallback rules), then
/// run PassManager::Default(options) over it.
///
/// With `dataset == nullptr` the plan is *structural*: built for EXPLAIN,
/// previews and fingerprints, with every VP partition assumed present and
/// no exec closures bound. With a dataset, the plan is executable — the
/// Hive planners ensure the VP layout first (so plan-time partition checks
/// and stored sizes equal run-time ones; the build happens before the
/// engine resets job history, exactly as before), closures borrow `query`
/// and `dataset`, and the plan must be executed within their lifetime.
/// Plans are single-shot: engines re-plan on every Execute.
StatusOr<PhysicalPlan> PlanHiveNaive(const analytics::AnalyticalQuery& query,
                                     engine::Dataset* dataset,
                                     const engine::EngineOptions& options);

/// Falls back to the Hive (Naive) shape — renamed, with fallback_reason
/// and the naive tmp tag — when the MQO rewriting does not apply; a
/// composite-construction failure is an error (as in the engine).
StatusOr<PhysicalPlan> PlanHiveMqo(const analytics::AnalyticalQuery& query,
                                   engine::Dataset* dataset,
                                   const engine::EngineOptions& options);

StatusOr<PhysicalPlan> PlanRapidPlus(const analytics::AnalyticalQuery& query,
                                     engine::Dataset* dataset,
                                     const engine::EngineOptions& options);

/// Falls back to the RAPID+ shape when the composite rewriting does not
/// apply. On the sharable path the plan sets ensure_before_reset = false:
/// a cold triplegroup build stays part of the measured workflow.
StatusOr<PhysicalPlan> PlanRapidAnalytics(
    const analytics::AnalyticalQuery& query, engine::Dataset* dataset,
    const engine::EngineOptions& options);

/// The shared-scan batch plan over the flattened groupings of `queries`
/// (RAPIDAnalytics semantics; `shared` must be sharable). num_results ==
/// queries.size(); each query's terminal node fills its result slot.
StatusOr<PhysicalPlan> PlanCompositeBatch(
    const engine::SharedScanPlan& shared,
    const std::vector<const analytics::AnalyticalQuery*>& queries,
    engine::Dataset* dataset, const engine::EngineOptions& options);

/// Dispatch by engine display name ("Hive (Naive)", "Hive (MQO)",
/// "RAPID+ (Naive)", "RAPIDAnalytics" — anything else errors).
StatusOr<PhysicalPlan> PlanForEngine(const std::string& engine_name,
                                     const analytics::AnalyticalQuery& query,
                                     engine::Dataset* dataset,
                                     const engine::EngineOptions& options);

/// Deep copy of `query` with ONE deterministic global variable renaming
/// (v0, v1, ... in structural traversal order, output aliases included).
/// Two queries that differ only in variable names / surface text
/// canonicalize to identical queries.
analytics::AnalyticalQuery CanonicalizeQueryVars(
    const analytics::AnalyticalQuery& query);

/// The canonical optimized plan itself: the dataset-free, default-options
/// RAPIDAnalytics plan of the canonicalized query. Shared by the service's
/// PlanCache as the structural key/value; an error means the query is
/// outside the NTGA planner's subset (the fingerprint below still covers
/// it via a serialization hash).
StatusOr<PhysicalPlan> CanonicalOptimizedPlan(
    const analytics::AnalyticalQuery& query);

/// Fingerprint hash of the canonical optimized plan: the dataset-free,
/// default-options RAPIDAnalytics plan of the canonicalized query (every
/// constant, filter, aggregate and modifier is covered — structurally
/// equal queries collide, semantically different ones do not). Falls back
/// to a canonical-query serialization hash if planning fails.
std::string CanonicalPlanFingerprint(const analytics::AnalyticalQuery& query);

}  // namespace rapida::plan

#endif  // RAPIDA_PLAN_PLANNER_H_
