#ifndef RAPIDA_PLAN_PASSES_H_
#define RAPIDA_PLAN_PASSES_H_

#include <functional>
#include <string>
#include <vector>

#include "engines/engine.h"
#include "plan/plan.h"

namespace rapida::analytics {
struct AnalyticalQuery;
}  // namespace rapida::analytics

namespace rapida::plan {

/// One rewrite/annotation rule over a PhysicalPlan. `run` is always
/// invoked — with `enabled=false` it records the conservative shape (e.g.
/// map-join-selection forces every join to repartition), so the
/// EngineOptions booleans become pass toggles rather than scattered ifs.
struct Pass {
  std::string name;
  bool enabled = true;
  std::function<void(PhysicalPlan*, bool enabled)> run;
};

/// Runs a fixed sequence of passes over a plan, recording each pass name
/// in PhysicalPlan::passes ("(off)"-suffixed when its toggle is disabled).
class PassManager {
 public:
  void Add(Pass pass) { passes_.push_back(std::move(pass)); }
  void Run(PhysicalPlan* plan) const;

  /// The standard pipeline, in order:
  ///   map-join-selection   (EngineOptions::enable_map_joins)
  ///       statically resolves star joins whose inputs all have known
  ///       stored sizes to kMapJoin/repartition using the exact runtime
  ///       rule (largest input stays streamed; every other input must be
  ///       at or under map_join_threshold_bytes; broadcast never outer);
  ///       joins over runtime intermediates are marked join=auto
  ///   greedy-join-order    (EngineOptions::greedy_join_order)
  ///       marks join-chain nodes order=greedy and drops their statically
  ///       simulated edge choice (picked at runtime from stored sizes)
  ///   partial-aggregation  (EngineOptions::partial_aggregation)
  ///       annotates aggregation nodes with the map-side strategy
  ///   parallel-agg-join    (EngineOptions::parallel_agg_join)
  ///       structural: collapses the independent sibling Agg-Joins of a
  ///       shared-scan plan into one kParallelRegion cycle (Fig. 6b)
  ///   dead-column-prune    (always on, advisory)
  ///       backward liveness over binds=/uses= column sets; annotates
  ///       columns materialized but never consumed downstream
  ///   common-subplan-dedup (always on, advisory)
  ///       structural hashing; annotates nodes whose subtree duplicates an
  ///       earlier one (the composite rewrites realize the sharing)
  ///   ivm-classify         (always on, advisory)
  ///       annotates the plan's final node with the query's incremental-
  ///       maintenance class (storage::ClassifyMaintainability): whether a
  ///       materialized result of this plan can be patched from an
  ///       insert-only delta or must be recomputed. Display-only `info` —
  ///       fingerprints and cycle counts are untouched. `query` is null
  ///       for multi-query composite-batch plans (members are classified
  ///       individually when their artifacts are stored).
  ///   partial-evaluation   (EngineOptions::partial_evaluation)
  ///       splits the plan into a shard-local phase and a cross-shard
  ///       residual: map-only nodes and star joins over base VP/triple-
  ///       group inputs are `peval=local` (est_shuffle_bytes = 0, and the
  ///       executor enforces zero cross-shard bytes under the locality
  ///       scheme); every other node is `peval=residual` with an upper-
  ///       bound est_shuffle_bytes. Also stamps kParallelRegion nodes
  ///       with their branch->shard placement. Info + est_shuffle_bytes
  ///       only — fingerprints stay put.
  static PassManager Default(const engine::EngineOptions& options,
                             const analytics::AnalyticalQuery* query = nullptr);

 private:
  std::vector<Pass> passes_;
};

}  // namespace rapida::plan

#endif  // RAPIDA_PLAN_PASSES_H_
