#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "engines/ntga_exec.h"
#include "engines/rapid_plus.h"
#include "engines/relational_ops.h"
#include "engines/shared_scan.h"
#include "engines/var_translate.h"
#include "ntga/overlap.h"
#include "plan/executor.h"
#include "plan/passes.h"
#include "plan/planner.h"
#include "plan/planner_util.h"
#include "util/logging.h"

namespace rapida::plan {

namespace {

using analytics::AnalyticalQuery;
using analytics::GroupingSubquery;

struct NtgaEmit {
  int load_id = -1;
  int tail_id = -1;
};

/// Emits the NTGA pattern-matching chain for a composite: one cost-0
/// triplegroup load plus (k-1) α-join cycles (a one-star pattern folds
/// matching into the Agg-Join map — zero chain cycles, as in
/// NtgaExec::ComputePatternMatches).
NtgaEmit EmitNtgaPattern(PhysicalPlan* plan, const ntga::CompositePattern& comp,
                         const std::string& label, bool ra_style) {
  size_t k = comp.stars.size();
  PlanNode& load = plan->AddNode(
      OpKind::kTripleGroupLoad, label,
      label + ": triplegroup scan (" + std::to_string(k) +
          (ra_style ? " composite star" : " star") + (k == 1 ? "" : "s") + ")",
      0);
  for (size_t s = 0; s < k; ++s) {
    const ntga::CompositeStar& cs = comp.stars[s];
    std::string sig = cs.subject_var + "|";
    for (size_t t = 0; t < cs.triples.size(); ++t) {
      if (t > 0) sig += "&";
      if (cs.secondary.count(cs.triples[t].prop) > 0) sig += "opt:";
      sig += detail::TripleSig(cs.triples[t]);
    }
    load.Attr("star" + std::to_string(s), sig);
  }
  std::vector<std::string> binds;
  for (const ntga::CompositeStar& cs : comp.stars) {
    binds.push_back(cs.subject_var);
    for (const ntga::StarTriple& t : cs.triples) {
      std::string v = t.ObjectVar();
      if (!v.empty() &&
          std::find(binds.begin(), binds.end(), v) == binds.end()) {
        binds.push_back(v);
      }
    }
  }
  load.Attr("binds", detail::Csv(binds));

  // `load` is a reference into plan->nodes: the AddNode calls below may
  // reallocate, so keep only its id from here on.
  const int load_id = load.id;
  int tail = load_id;
  std::vector<size_t> picks = detail::SimulateNtgaChain(k, comp.joins);
  for (size_t c = 0; c + 1 < k; ++c) {
    bool last = c + 2 == k;
    PlanNode& jn = plan->AddNode(
        OpKind::kNSplitAlphaJoin, label,
        ra_style ? label + ": TG_OptGrpFilter + TG_AlphaJoin" +
                       (last ? " (α filtering)" : "")
                 : label + ": TG star-filter + join",
        1);
    jn.inputs = {tail};
    if (c < picks.size()) {
      jn.Attr("edge", "?" + comp.joins[picks[c]].var);
    } else {
      jn.Attr("edge", "disconnected");
    }
    tail = jn.id;
  }
  NtgaEmit out;
  out.load_id = load_id;
  out.tail_id = tail;
  return out;
}

void AddAggAttrs(PlanNode* agg, const std::vector<std::string>& group_vars,
                 const std::vector<ntga::AggSpec>& aggs,
                 const sparql::Expr* having,
                 const std::vector<std::string>& output_columns) {
  agg->Attr("group_by", detail::Csv(group_vars));
  for (size_t i = 0; i < aggs.size(); ++i) {
    agg->Attr("agg" + std::to_string(i), detail::AggSig(aggs[i]));
  }
  if (having != nullptr) agg->Attr("having", having->ToString());
  std::vector<std::string> uses = group_vars;
  for (const ntga::AggSpec& a : aggs) {
    if (!a.count_star) uses.push_back(a.var);
  }
  agg->Attr("uses", detail::Csv(uses));
  agg->Attr("binds", detail::Csv(output_columns));
}

/// Emits the pattern side of one extended (OPTIONAL/UNION) grouping on the
/// NTGA engine: per branch the α-join chain plus one map-only cycle
/// expanding the matched triplegroups to relational rows, per OPTIONAL
/// tail a folded star scan + expansion + left join cycle, then a UNION ALL
/// node across branches. Returns the node id feeding the relational GROUP
/// BY.
int EmitNtgaGroupingTail(PhysicalPlan* plan, const GroupingSubquery& grouping,
                         const std::string& label) {
  std::vector<detail::BranchView> branches = detail::BranchesOf(grouping);
  std::vector<int> tails;
  for (size_t b = 0; b < branches.size(); ++b) {
    const detail::BranchView& bv = branches[b];
    std::string blabel =
        branches.size() > 1 ? label + ":b" + std::to_string(b) : label;
    ntga::CompositePattern comp = ntga::SinglePatternComposite(*bv.pattern);
    size_t k = comp.stars.size();
    NtgaEmit chain = EmitNtgaPattern(plan, comp, blabel, /*ra_style=*/false);
    std::vector<std::string> pattern_vars;
    for (const auto& [orig, composite_var] : comp.var_map[0]) {
      pattern_vars.push_back(composite_var);
    }
    std::vector<std::string> residual_sigs;
    for (const auto& f : *bv.filters) {
      std::vector<std::string> vars = detail::ExprVars(*f);
      if (vars.size() == 1) {
        plan->FindById(chain.load_id)
            ->Attr("pushed_filter", vars[0] + "|" + f->ToString());
      } else {
        residual_sigs.push_back(f->ToString());
      }
    }
    PlanNode& ex = plan->AddNode(
        OpKind::kExpandBindings, blabel,
        blabel + ": TG bindings -> relational rows" +
            (k == 1 ? " (star matching folded into map)" : ""),
        1);
    ex.map_only = true;
    ex.inputs = {chain.tail_id};
    if (k == 1) ex.Attr("fold", "map");
    ex.Attr("binds", detail::Csv(pattern_vars));
    for (const std::string& sig : residual_sigs) {
      ex.Attr("residual_filter", sig);
    }
    int tail = ex.id;

    for (size_t j = 0; j < bv.optionals->size(); ++j) {
      const analytics::OptionalTail& opt = (*bv.optionals)[j];
      std::string olabel = blabel + ":opt" + std::to_string(j);
      ntga::CompositePattern ocomp =
          ntga::SinglePatternComposite(detail::OptionalGraph(opt));
      NtgaEmit ochain = EmitNtgaPattern(plan, ocomp, olabel,
                                       /*ra_style=*/false);
      std::vector<std::string> opattern_vars;
      for (const auto& [orig, composite_var] : ocomp.var_map[0]) {
        opattern_vars.push_back(composite_var);
      }
      std::vector<std::string> oresidual;
      for (const auto& f : opt.filters) {
        std::vector<std::string> vars = detail::ExprVars(*f);
        if (vars.size() == 1) {
          plan->FindById(ochain.load_id)
              ->Attr("pushed_filter", vars[0] + "|" + f->ToString());
        } else {
          oresidual.push_back(f->ToString());
        }
      }
      PlanNode& oex = plan->AddNode(
          OpKind::kExpandBindings, olabel,
          olabel +
              ": TG bindings -> relational rows (star matching folded into "
              "map)",
          1);
      oex.map_only = true;
      oex.inputs = {ochain.tail_id};
      oex.Attr("fold", "map");
      oex.Attr("binds", detail::Csv(opattern_vars));
      for (const std::string& sig : oresidual) {
        oex.Attr("residual_filter", sig);
      }
      // AddNode may reallocate the node vector; oex is dangling after it.
      const int oex_id = oex.id;
      PlanNode& jn = plan->AddNode(
          OpKind::kLeftReduceJoin, blabel,
          blabel + ": left star-join (OPTIONAL; unmatched rows keep NULLs)",
          1);
      jn.inputs = {tail, oex_id};
      jn.Attr("edge", "?" + opt.join_var);
      if (j + 1 == bv.optionals->size()) {
        for (const auto& f : *bv.post_filters) {
          jn.Attr("residual_filter", f->ToString());
        }
      }
      tail = jn.id;
    }
    tails.push_back(tail);
  }
  if (tails.size() == 1) return tails[0];
  PlanNode& un = plan->AddNode(
      OpKind::kUnion, label,
      label + ": UNION ALL (" + std::to_string(tails.size()) +
          " join-distributed branches)",
      1);
  un.map_only = true;
  un.inputs = tails;
  return un.id;
}

int EmitNtgaFinal(PhysicalPlan* plan, const AnalyticalQuery& query,
                  const std::string& suffix, const std::vector<int>& inputs,
                  const std::string& tag) {
  PlanNode* fin = nullptr;
  if (query.groupings.size() > 1) {
    fin = &plan->AddNode(OpKind::kFinalJoin, "final",
                         "final: map-only join of aggregated triplegroups" +
                             suffix,
                         1);
    fin->map_only = true;
  } else {
    fin = &plan->AddNode(
        OpKind::kMaterialize, "final",
        "final: driver-side projection of the aggregated triplegroup" +
            suffix,
        0);
  }
  fin->inputs = inputs;
  detail::AddModifierAttrs(fin, query);
  fin->Attr("uses", detail::Csv(detail::ModifierUses(query)));
  fin->bind_tag = tag;
  return fin->id;
}

struct RplusState {
  std::vector<analytics::BindingTable> agg_tables;
  std::vector<std::string> agg_files;
  std::vector<sparql::ExprPtr> owned_filters;
};

/// Exec-time mirror of EmitNtgaGroupingTail: computes the extended
/// grouping's pattern table — per branch the α-join chain, the expansion
/// cycle, one left join per OPTIONAL tail (post-filters as the last one's
/// post-predicate), and a UNION ALL across branches — cycle for cycle.
StatusOr<engine::TableRef> ComputeNtgaGroupingTable(
    ExecContext* ctx, const GroupingSubquery& grouping,
    const std::string& label, std::vector<sparql::ExprPtr>* owned_filters) {
  const rdf::Dictionary& dict = ctx->dataset->graph().dict();
  std::vector<detail::BranchView> branches = detail::BranchesOf(grouping);
  // Same factorization rule as the Hive grouping compiler: single-branch
  // patterns with weighted-safe aggregates keep the left-join tail in
  // d-representation (the expanded NTG bindings themselves stay flat —
  // triplegroups are the NTGA engines' own grouped form upstream of the
  // expansion cycle).
  bool safe_aggs = true;
  for (const ntga::AggSpec& a : grouping.aggs) {
    if (a.func == sparql::AggFunc::kSum || a.func == sparql::AggFunc::kAvg) {
      safe_aggs = false;
    }
  }
  const bool fact = ctx->options.factorized_intermediates &&
                    branches.size() == 1 && safe_aggs;
  std::vector<engine::TableRef> branch_tables;
  for (size_t b = 0; b < branches.size(); ++b) {
    const detail::BranchView& bv = branches[b];
    std::string blabel =
        branches.size() > 1 ? label + ":b" + std::to_string(b) : label;
    ntga::CompositePattern comp = ntga::SinglePatternComposite(*bv.pattern);
    ntga::ResolvedPattern resolved = ntga::ResolvePattern(comp, dict);
    std::vector<std::string> pattern_vars;
    for (const auto& [orig, composite_var] : comp.var_map[0]) {
      pattern_vars.push_back(composite_var);
    }
    engine::PushedFilters pushed;
    engine::RowPredicate mapping_pred;
    engine::SplitNtgaFilters(*bv.filters, comp.var_map[0], pattern_vars,
                             &dict, owned_filters, &pushed, &mapping_pred);
    RAPIDA_ASSIGN_OR_RETURN(
        engine::PatternMatches matches,
        ctx->ntga->ComputePatternMatches(resolved, {}, pushed, blabel));
    RAPIDA_ASSIGN_OR_RETURN(
        engine::TableRef cur,
        ctx->ntga->ExpandToTable(resolved, matches, pushed, pattern_vars,
                                 mapping_pred, blabel));
    for (size_t j = 0; j < bv.optionals->size(); ++j) {
      const analytics::OptionalTail& opt = (*bv.optionals)[j];
      std::string olabel = blabel + ":opt" + std::to_string(j);
      ntga::CompositePattern ocomp =
          ntga::SinglePatternComposite(detail::OptionalGraph(opt));
      ntga::ResolvedPattern oresolved = ntga::ResolvePattern(ocomp, dict);
      std::vector<std::string> opattern_vars;
      for (const auto& [orig, composite_var] : ocomp.var_map[0]) {
        opattern_vars.push_back(composite_var);
      }
      engine::PushedFilters opushed;
      engine::RowPredicate opred;
      engine::SplitNtgaFilters(opt.filters, ocomp.var_map[0], opattern_vars,
                               &dict, owned_filters, &opushed, &opred);
      RAPIDA_ASSIGN_OR_RETURN(
          engine::PatternMatches omatches,
          ctx->ntga->ComputePatternMatches(oresolved, {}, opushed, olabel));
      RAPIDA_ASSIGN_OR_RETURN(
          engine::TableRef opt_table,
          ctx->ntga->ExpandToTable(oresolved, omatches, opushed,
                                   opattern_vars, opred, olabel));
      engine::JoinInput left;
      left.file = cur.file;
      left.columns = cur.columns;
      left.join_column = opt.join_var;
      left.factor = cur.factor;
      left.flat_bytes = cur.flat_bytes;
      engine::JoinInput right;
      right.file = opt_table.file;
      right.columns = opt_table.columns;
      right.join_column = opt.join_var;
      right.outer = true;
      right.factor = opt_table.factor;
      right.flat_bytes = opt_table.flat_bytes;
      engine::RowPredicate post;
      if (j + 1 == bv.optionals->size() && !bv.post_filters->empty()) {
        std::vector<std::string> post_cols = left.columns;
        for (const std::string& c : right.columns) {
          if (std::find(post_cols.begin(), post_cols.end(), c) ==
              post_cols.end()) {
            post_cols.push_back(c);
          }
        }
        std::vector<const sparql::Expr*> pfs;
        for (const auto& f : *bv.post_filters) pfs.push_back(f.get());
        post = engine::CompilePredicate(pfs, post_cols, &dict);
      }
      RAPIDA_ASSIGN_OR_RETURN(
          engine::TableRef joined,
          ctx->rel->Join(blabel + ":leftjoin" + std::to_string(j),
                         {left, right}, post, fact));
      cur = std::move(joined);
    }
    branch_tables.push_back(std::move(cur));
  }
  if (branch_tables.size() == 1) return branch_tables[0];
  return ctx->rel->UnionAll(label + ":union", branch_tables);
}

void BindRapidPlus(PhysicalPlan* plan, const AnalyticalQuery& query) {
  auto st = std::make_shared<RplusState>();
  const AnalyticalQuery* q = &query;
  for (size_t g = 0; g < query.groupings.size(); ++g) {
    PlanNode* n = plan->FindByTag("g" + std::to_string(g));
    n->exec = [q, g, st](ExecContext* ctx) -> Status {
      const GroupingSubquery& grouping = q->groupings[g];
      const rdf::Dictionary& dict = ctx->dataset->graph().dict();
      std::string label = "g" + std::to_string(g);

      if (!grouping.IsConjunctive()) {
        auto table = ComputeNtgaGroupingTable(ctx, grouping, label,
                                              &st->owned_filters);
        if (!table.ok()) return table.status();
        std::vector<engine::RelationalOps::AggColumn> aggs;
        for (const ntga::AggSpec& a : grouping.aggs) {
          aggs.push_back(engine::RelationalOps::AggColumn{
              a.func, a.var, a.count_star, a.output_name, a.separator});
        }
        std::vector<std::string> grouped_columns = grouping.group_by;
        for (const ntga::AggSpec& a : grouping.aggs) {
          grouped_columns.push_back(a.output_name);
        }
        engine::RowPredicate having;
        if (grouping.having != nullptr) {
          having = engine::CompilePredicate({grouping.having.get()},
                                            grouped_columns, &dict);
        }
        auto grouped = ctx->rel->GroupBy(label + ":groupby", *table,
                                         grouping.group_by, aggs, having);
        if (!grouped.ok()) return grouped.status();
        st->agg_files.push_back(grouped->file);
        auto btable = ctx->rel->ReadTable(*grouped);
        if (!btable.ok()) return btable.status();
        st->agg_tables.push_back(std::move(*btable));
        return Status::OK();
      }

      ntga::CompositePattern comp =
          ntga::SinglePatternComposite(grouping.pattern);
      ntga::ResolvedPattern resolved = ntga::ResolvePattern(comp, dict);

      std::vector<std::string> pattern_vars;
      for (const auto& [orig, composite_var] : comp.var_map[0]) {
        pattern_vars.push_back(composite_var);
      }
      engine::PushedFilters pushed;
      engine::RowPredicate mapping_pred;
      engine::SplitNtgaFilters(grouping.filters, comp.var_map[0], pattern_vars,
                               &dict, &st->owned_filters, &pushed,
                               &mapping_pred);

      auto matches = ctx->ntga->ComputePatternMatches(resolved, {}, pushed,
                                                      label);
      if (!matches.ok()) return matches.status();

      engine::NtgaGrouping work;
      work.spec.group_vars = grouping.group_by;  // identity namespace
      work.spec.aggs = grouping.aggs;
      work.pattern_vars = pattern_vars;
      work.output_columns = grouping.group_by;
      for (const ntga::AggSpec& a : grouping.aggs) {
        work.output_columns.push_back(a.output_name);
      }
      work.mapping_predicate = mapping_pred;
      work.having = grouping.having.get();

      std::vector<std::string> files;
      auto tables = ctx->ntga->RunAggJoins(resolved, *matches, pushed, {work},
                                           /*parallel=*/false, label, &files);
      if (!tables.ok()) return tables.status();
      st->agg_tables.push_back(std::move((*tables)[0]));
      st->agg_files.push_back(files[0]);
      return Status::OK();
    };
  }
  plan->FindByTag("final")->exec = [q, st](ExecContext* ctx) -> Status {
    StatusOr<analytics::BindingTable> result = Status::Internal("unset");
    if (q->groupings.size() == 1) {
      rdf::Dictionary* mdict = &ctx->dataset->dict();
      engine::ProjectedResult projected = engine::JoinAndProject(
          std::move(st->agg_tables), q->top_items, mdict);
      analytics::BindingTable table(projected.columns);
      for (const std::string& r : projected.rows) {
        std::vector<rdf::TermId> row = engine::DecodeRow(r);
        row.resize(projected.columns.size(), rdf::kInvalidTermId);
        table.AddRow(std::move(row));
      }
      result = std::move(table);
    } else {
      result = ctx->ntga->FinalJoinProject(std::move(st->agg_tables),
                                           q->top_items, st->agg_files,
                                           "final");
    }
    if (!result.ok()) return result.status();
    analytics::ApplySolutionModifiers(*q, ctx->dataset->dict(), &*result);
    (*ctx->results)[0] = std::move(result);
    return Status::OK();
  };
}

struct RaState {
  ntga::CompositePattern comp;  // copied: must outlive the SharedScanPlan
  std::vector<const AnalyticalQuery*> queries;
  std::vector<const GroupingSubquery*> flat;
  std::vector<size_t> offsets;
  // Exec-time intermediates, produced along the chain.
  ntga::ResolvedPattern resolved;
  std::vector<ntga::AlphaCondition> alphas;
  engine::PushedFilters pushed;
  std::vector<sparql::ExprPtr> owned_filters;
  std::vector<engine::NtgaGrouping> work;
  engine::PatternMatches matches;
  std::vector<analytics::BindingTable> tables;
  std::vector<std::string> agg_files;
};

void BindCompositeBatch(PhysicalPlan* plan, std::shared_ptr<RaState> st) {
  plan->FindByTag("gp")->exec = [st](ExecContext* ctx) -> Status {
    const rdf::Dictionary& dict = ctx->dataset->graph().dict();
    st->resolved = ntga::ResolvePattern(st->comp, dict);

    st->alphas.clear();
    for (size_t p = 0; p < st->resolved.pattern_secondary.size(); ++p) {
      ntga::AlphaCondition cond;
      for (const auto& [star, keys] : st->resolved.pattern_secondary[p]) {
        for (const ntga::DataPropKey& k : keys) {
          cond.push_back(ntga::AlphaConstraint{star, k, true});
        }
      }
      st->alphas.push_back(std::move(cond));
    }

    struct TranslatedFilter {
      std::string var;
      std::string sig;
      const sparql::Expr* raw = nullptr;
    };
    std::vector<std::vector<TranslatedFilter>> grouping_filters(
        st->flat.size());
    std::vector<std::set<std::string>> grouping_sigs(st->flat.size());
    for (size_t g = 0; g < st->flat.size(); ++g) {
      for (const auto& f : st->flat[g]->filters) {
        sparql::ExprPtr translated =
            engine::MapExprVars(*f, st->comp.var_map[g]);
        std::vector<std::string> vars;
        translated->CollectVars(&vars);
        TranslatedFilter tf;
        tf.raw = translated.get();
        if (vars.size() == 1) {
          tf.var = vars[0];
          tf.sig = tf.var + "|" + translated->ToString();
          grouping_sigs[g].insert(tf.sig);
        }
        st->owned_filters.push_back(std::move(translated));
        grouping_filters[g].push_back(std::move(tf));
      }
    }

    st->work.resize(st->flat.size());
    std::set<std::string> pushed_signatures;
    for (size_t g = 0; g < st->flat.size(); ++g) {
      const GroupingSubquery& grouping = *st->flat[g];
      const auto& var_map = st->comp.var_map[g];

      std::vector<std::string> pattern_vars;
      for (const auto& [orig, composite_var] : var_map) {
        if (std::find(pattern_vars.begin(), pattern_vars.end(),
                      composite_var) == pattern_vars.end()) {
          pattern_vars.push_back(composite_var);
        }
      }

      std::vector<const sparql::Expr*> residual;
      for (const TranslatedFilter& tf : grouping_filters[g]) {
        bool shared_by_all = !tf.var.empty();
        for (size_t o = 0; shared_by_all && o < grouping_sigs.size(); ++o) {
          if (grouping_sigs[o].count(tf.sig) == 0) shared_by_all = false;
        }
        if (shared_by_all) {
          if (pushed_signatures.insert(tf.sig).second) {
            st->pushed[tf.var].push_back(tf.raw);
          }
        } else {
          residual.push_back(tf.raw);
        }
      }
      engine::RowPredicate mapping_pred =
          residual.empty()
              ? nullptr
              : engine::CompilePredicate(residual, pattern_vars, &dict);

      engine::NtgaGrouping& w = st->work[g];
      w.spec.group_vars = engine::MapVars(grouping.group_by, var_map);
      for (const ntga::AggSpec& a : grouping.aggs) {
        ntga::AggSpec translated = a;
        translated.var = engine::MapVar(a.var, var_map);
        w.spec.aggs.push_back(std::move(translated));
      }
      w.spec.alpha =
          st->alphas.size() > g ? st->alphas[g] : ntga::AlphaCondition{};
      w.pattern_vars = pattern_vars;
      w.output_columns = grouping.group_by;  // original names
      for (const ntga::AggSpec& a : grouping.aggs) {
        w.output_columns.push_back(a.output_name);
      }
      w.mapping_predicate = mapping_pred;
      w.having = grouping.having.get();
    }

    auto matches = ctx->ntga->ComputePatternMatches(st->resolved, st->alphas,
                                                    st->pushed, "gp");
    if (!matches.ok()) return matches.status();
    st->matches = std::move(*matches);
    return Status::OK();
  };

  plan->FindByTag("agg")->exec = [st](ExecContext* ctx) -> Status {
    auto tables = ctx->ntga->RunAggJoins(st->resolved, st->matches, st->pushed,
                                         st->work,
                                         ctx->options.parallel_agg_join, "agg",
                                         &st->agg_files);
    if (!tables.ok()) return tables.status();
    st->tables = std::move(*tables);
    return Status::OK();
  };

  for (size_t q = 0; q < st->queries.size(); ++q) {
    PlanNode* n = plan->FindByTag("final" + std::to_string(q));
    n->exec = [st, q](ExecContext* ctx) -> Status {
      const AnalyticalQuery& query = *st->queries[q];
      size_t offset = st->offsets[q];
      size_t n_groupings = query.groupings.size();
      std::vector<analytics::BindingTable> q_tables;
      q_tables.reserve(n_groupings);
      for (size_t i = 0; i < n_groupings; ++i) {
        q_tables.push_back(std::move(st->tables[offset + i]));
      }
      std::vector<std::string> q_files(
          st->agg_files.begin() + static_cast<long>(offset),
          st->agg_files.begin() +
              static_cast<long>(
                  std::min(offset + n_groupings, st->agg_files.size())));

      StatusOr<analytics::BindingTable> result = Status::Internal("unset");
      if (n_groupings == 1) {
        rdf::Dictionary* mdict = &ctx->dataset->dict();
        engine::ProjectedResult projected = engine::JoinAndProject(
            std::move(q_tables), query.top_items, mdict);
        analytics::BindingTable table(projected.columns);
        for (const std::string& r : projected.rows) {
          std::vector<rdf::TermId> row = engine::DecodeRow(r);
          row.resize(projected.columns.size(), rdf::kInvalidTermId);
          table.AddRow(std::move(row));
        }
        result = std::move(table);
      } else {
        result = ctx->ntga->FinalJoinProject(
            std::move(q_tables), query.top_items, q_files,
            st->queries.size() == 1 ? "final" : "final" + std::to_string(q));
      }
      if (result.ok()) {
        analytics::ApplySolutionModifiers(query, ctx->dataset->dict(),
                                          &*result);
      }
      // A per-query failure stays in its slot; the batch walk continues.
      (*ctx->results)[q] = std::move(result);
      return Status::OK();
    };
  }
}

}  // namespace

StatusOr<PhysicalPlan> PlanRapidPlus(const AnalyticalQuery& query,
                                     engine::Dataset* dataset,
                                     const engine::EngineOptions& options) {
  PhysicalPlan plan;
  plan.engine = "RAPID+ (Naive)";
  plan.tmp_tag = "tmp:rplus";
  plan.needs_tg = true;

  std::vector<int> agg_ids;
  for (size_t g = 0; g < query.groupings.size(); ++g) {
    const GroupingSubquery& grouping = query.groupings[g];
    std::string label = "g" + std::to_string(g);
    if (!grouping.IsConjunctive()) {
      // OPTIONAL/UNION grouping: NTGA pattern matching per branch, then a
      // relational left-join/union tail and a relational GROUP BY (the TG
      // Agg-Join only understands conjunctive star patterns).
      int tail_id = EmitNtgaGroupingTail(&plan, grouping, label);
      PlanNode& agg = plan.AddNode(
          OpKind::kGroupAggregate, label,
          label + ": GROUP BY" + (grouping.group_by.empty() ? " ALL" : "") +
              " (relational)",
          1);
      agg.inputs = {tail_id};
      std::vector<std::string> output_columns = grouping.group_by;
      for (const ntga::AggSpec& a : grouping.aggs) {
        output_columns.push_back(a.output_name);
      }
      AddAggAttrs(&agg, grouping.group_by, grouping.aggs,
                  grouping.having.get(), output_columns);
      agg.bind_tag = label;
      agg_ids.push_back(agg.id);
      continue;
    }
    ntga::CompositePattern comp =
        ntga::SinglePatternComposite(grouping.pattern);
    size_t k = comp.stars.size();
    NtgaEmit chain = EmitNtgaPattern(&plan, comp, label, /*ra_style=*/false);

    // Filter split (identity variable namespace): single-variable filters
    // are pushed into the triplegroup scan, the rest stay a mapping-level
    // predicate on the Agg-Join.
    std::vector<std::string> residual_sigs;
    for (const auto& f : grouping.filters) {
      std::vector<std::string> vars = detail::ExprVars(*f);
      if (vars.size() == 1) {
        plan.FindById(chain.load_id)
            ->Attr("pushed_filter", vars[0] + "|" + f->ToString());
      } else {
        residual_sigs.push_back(f->ToString());
      }
    }

    PlanNode& agg = plan.AddNode(
        OpKind::kAggJoin, label,
        label + ": TG Agg-Join" +
            (k == 1 ? " (star matching folded into map)" : ""),
        1);
    agg.inputs = {chain.tail_id};
    if (k == 1) agg.Attr("fold", "map");
    std::vector<std::string> output_columns = grouping.group_by;
    for (const ntga::AggSpec& a : grouping.aggs) {
      output_columns.push_back(a.output_name);
    }
    AddAggAttrs(&agg, grouping.group_by, grouping.aggs, grouping.having.get(),
                output_columns);
    for (const std::string& sig : residual_sigs) {
      agg.Attr("residual_filter", sig);
    }
    agg.bind_tag = label;
    agg_ids.push_back(agg.id);
  }
  EmitNtgaFinal(&plan, query, "", agg_ids, "final");

  PassManager::Default(options, &query).Run(&plan);
  if (dataset != nullptr) BindRapidPlus(&plan, query);
  return plan;
}

StatusOr<PhysicalPlan> PlanCompositeBatch(
    const engine::SharedScanPlan& shared,
    const std::vector<const AnalyticalQuery*>& queries,
    engine::Dataset* dataset, const engine::EngineOptions& options) {
  RAPIDA_CHECK(shared.sharable) << "PlanCompositeBatch on unsharable plan";
  const ntga::CompositePattern& comp = shared.comp;
  size_t k = comp.stars.size();

  std::vector<const GroupingSubquery*> flat;
  std::vector<size_t> offsets(queries.size(), 0);
  for (size_t q = 0; q < queries.size(); ++q) {
    offsets[q] = flat.size();
    for (const GroupingSubquery& g : queries[q]->groupings) {
      flat.push_back(&g);
    }
  }

  PhysicalPlan plan;
  plan.engine = "RAPIDAnalytics";
  plan.tmp_tag = "tmp:ra";
  plan.needs_tg = true;
  // A cold triplegroup build belongs to the measured workflow on this
  // path: the engine resets history BEFORE ensuring storage (as before).
  plan.ensure_before_reset = false;
  plan.num_results = static_cast<int>(queries.size());
  if (queries.size() > 1) {
    plan.notes.push_back(
        "shared scan batch: " + std::to_string(queries.size()) + " queries (" +
        std::to_string(flat.size()) + " groupings) share the composite "
        "pattern cycles");
  }

  NtgaEmit chain = EmitNtgaPattern(&plan, comp, "gp", /*ra_style=*/true);
  plan.FindById(chain.tail_id)->bind_tag = "gp";

  // Shared-scan filter pushdown rule, statically replayed for the plan
  // attrs: a single-variable filter is pushed into the composite scan only
  // when the identical translated filter appears in EVERY flattened
  // grouping; everything else stays that grouping's mapping predicate.
  std::vector<std::set<std::string>> grouping_sigs(flat.size());
  std::vector<std::vector<std::pair<std::string, std::string>>> translated(
      flat.size());  // (sig-or-empty, text) per filter
  for (size_t g = 0; g < flat.size(); ++g) {
    for (const auto& f : flat[g]->filters) {
      sparql::ExprPtr t = engine::MapExprVars(*f, comp.var_map[g]);
      std::vector<std::string> vars = detail::ExprVars(*t);
      std::string sig;
      if (vars.size() == 1) {
        sig = vars[0] + "|" + t->ToString();
        grouping_sigs[g].insert(sig);
      }
      translated[g].emplace_back(sig, t->ToString());
    }
  }
  std::set<std::string> pushed_signatures;
  std::vector<std::vector<std::string>> residual_sigs(flat.size());
  for (size_t g = 0; g < flat.size(); ++g) {
    for (const auto& [sig, text] : translated[g]) {
      bool shared_by_all = !sig.empty();
      for (size_t o = 0; shared_by_all && o < grouping_sigs.size(); ++o) {
        if (grouping_sigs[o].count(sig) == 0) shared_by_all = false;
      }
      if (shared_by_all) {
        if (pushed_signatures.insert(sig).second) {
          plan.FindById(chain.load_id)->Attr("pushed_filter", sig);
        }
      } else {
        residual_sigs[g].push_back(text);
      }
    }
  }

  std::vector<int> agg_ids;
  for (size_t g = 0; g < flat.size(); ++g) {
    const GroupingSubquery& grouping = *flat[g];
    PlanNode& agg = plan.AddNode(
        OpKind::kAggJoin, "agg",
        "agg: TG Agg-Join (grouping-aggregation " + std::to_string(g) + ")" +
            (k == 1 ? " with star matching folded into map" : ""),
        1);
    agg.inputs = {chain.tail_id};
    if (k == 1) agg.Attr("fold", "map");
    std::vector<ntga::AggSpec> translated_aggs;
    for (const ntga::AggSpec& a : grouping.aggs) {
      ntga::AggSpec ta = a;
      ta.var = engine::MapVar(a.var, comp.var_map[g]);
      translated_aggs.push_back(std::move(ta));
    }
    std::vector<std::string> output_columns = grouping.group_by;
    for (const ntga::AggSpec& a : grouping.aggs) {
      output_columns.push_back(a.output_name);
    }
    AddAggAttrs(&agg, engine::MapVars(grouping.group_by, comp.var_map[g]),
                translated_aggs, grouping.having.get(), output_columns);
    // The α condition restricting this grouping to its own pattern.
    std::string alpha;
    for (const auto& [star, props] : comp.pattern_secondary[g]) {
      for (const ntga::PropKey& p : props) {
        if (!alpha.empty()) alpha += "&";
        alpha += "s" + std::to_string(star) + ":" + p.ToString();
      }
    }
    if (!alpha.empty()) agg.Attr("alpha", alpha);
    for (const std::string& sig : residual_sigs[g]) {
      agg.Attr("residual_filter", sig);
    }
    if (g + 1 == flat.size()) agg.bind_tag = "agg";
    agg_ids.push_back(agg.id);
  }

  for (size_t q = 0; q < queries.size(); ++q) {
    const AnalyticalQuery& query = *queries[q];
    size_t n = query.groupings.size();
    std::vector<int> in_ids(
        agg_ids.begin() + static_cast<long>(offsets[q]),
        agg_ids.begin() + static_cast<long>(offsets[q] + n));
    EmitNtgaFinal(
        &plan, query,
        queries.size() > 1 ? " (query " + std::to_string(q) + ")" : "",
        in_ids, "final" + std::to_string(q));
  }

  PassManager::Default(options, queries.size() == 1 ? queries[0] : nullptr)
      .Run(&plan);
  if (dataset != nullptr) {
    auto st = std::make_shared<RaState>();
    st->comp = comp;
    st->queries = queries;
    st->flat = std::move(flat);
    st->offsets = std::move(offsets);
    BindCompositeBatch(&plan, st);
  }
  return plan;
}

StatusOr<PhysicalPlan> PlanRapidAnalytics(
    const AnalyticalQuery& query, engine::Dataset* dataset,
    const engine::EngineOptions& options) {
  RAPIDA_ASSIGN_OR_RETURN(engine::CompositeApplicability check,
                          engine::CheckCompositeRewrite(query, true));
  if (!check.applies) {
    RAPIDA_ASSIGN_OR_RETURN(PhysicalPlan plan,
                            PlanRapidPlus(query, dataset, options));
    plan.engine = "RAPIDAnalytics";
    plan.fallback_reason = check.why;
    return plan;
  }
  engine::SharedScanPlan shared;
  shared.sharable = true;
  shared.comp = std::move(check.comp);
  std::vector<const AnalyticalQuery*> batch{&query};
  return PlanCompositeBatch(shared, batch, dataset, options);
}

}  // namespace rapida::plan
