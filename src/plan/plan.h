#ifndef RAPIDA_PLAN_PLAN_H_
#define RAPIDA_PLAN_PLAN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace rapida::plan {

struct ExecContext;  // executor.h

/// Physical operator kinds of the plan IR. One node is one physical
/// operator instance; `est_cycles` says how many MR cycles it costs (0 for
/// operators folded into a neighboring cycle or executed driver-side).
enum class OpKind {
  kVpScan,          // scan of one vertically-partitioned property table
  kTripleGroupLoad, // scan of the triplegroup files covering a star
  kStarJoin,        // multi-way same-subject join of VP inputs (one star)
  kMapJoin,         // a join statically selected to broadcast (map-join)
  kReduceJoin,      // repartition join (inter-star join cycle)
  kLeftMapJoin,     // OPTIONAL left star-join selected to broadcast
  kLeftReduceJoin,  // OPTIONAL left star-join as a repartition cycle
  kUnion,           // UNION ALL concatenation of branch tables (map-only)
  kExpandBindings,  // NTGA bindings expanded to a relational table
  kNSplitAlphaJoin, // NTGA TG_OptGrpFilter + TG_AlphaJoin cycle
  kAggJoin,         // NTGA TG Agg-Join (one grouping-aggregation)
  kGroupAggregate,  // relational GROUP BY cycle
  kDistinctExtract, // MQO DISTINCT extraction from the materialized Q_OPT
  kMaterialize,     // driver-side step / empty-table short circuit
  kFinalJoin,       // final map-only join of grouping results
  kParallelRegion,  // independent siblings evaluated in one parallel cycle
  kDecompress,      // flat-tuple boundary: enumerate factorized groups
                    // (cost-0; folded into the consuming reader)
};

const char* OpKindName(OpKind kind);

using NodeExec = std::function<Status(ExecContext*)>;
using AttrList = std::vector<std::pair<std::string, std::string>>;

/// One operator of a physical plan.
///
/// `attrs` is the node's *identity*: everything that distinguishes this
/// operator structurally (properties scanned, join variables, aggregate
/// specs, pushed filters). It is covered by PhysicalPlan::Fingerprint.
/// `info` is display-only context (DFS file names, stored byte sizes) that
/// depends on the concrete dataset and is excluded from the fingerprint.
struct PlanNode {
  int id = 0;
  OpKind kind = OpKind::kMaterialize;
  std::string label;     // engine-local stage label, e.g. "g0" / "qopt"
  std::string describe;  // one-line human description of the cycle/step
  std::vector<int> inputs;  // producing node ids, in consumption order
  AttrList attrs;
  AttrList info;
  int est_cycles = 1;
  uint64_t est_bytes = 0;  // statically-known input bytes (0 = unknown)
  /// Planner's shuffle-placement estimate, set by the partial-evaluation
  /// pass. For nodes it classifies `peval=local` this is exactly 0 — no
  /// byte may cross a shard boundary, and the executor enforces that the
  /// executed cross-shard counters match under the locality scheme. For
  /// residual nodes it is a display-only upper bound (the node's known
  /// input bytes). Excluded from Fingerprint, like est_bytes.
  uint64_t est_shuffle_bytes = 0;
  bool map_only = false;
  /// Marker the planner's bind step uses to attach `exec` after the pass
  /// pipeline ran (passes may move a tag when they reshape the DAG).
  std::string bind_tag;
  /// Runs this node's share of the work. Null on cost-only nodes (their
  /// cycles are executed by a fused neighbor, e.g. a chain head or a
  /// parallel region) and on every node of a dataset-free plan.
  NodeExec exec;

  PlanNode& Attr(const std::string& key, const std::string& value) {
    attrs.emplace_back(key, value);
    return *this;
  }
  PlanNode& Info(const std::string& key, const std::string& value) {
    info.emplace_back(key, value);
    return *this;
  }
};

/// An explicit physical plan: the operator DAG one engine will run for one
/// AnalyticalQuery (or, for the shared-scan batch path, for a whole batch).
/// Nodes are stored in execution order (a valid topological order); the
/// generic executor walks them front to back.
struct PhysicalPlan {
  std::string engine;   // display name, e.g. "RAPIDAnalytics"
  std::string tmp_tag;  // intermediate-file tag, e.g. "tmp:hive"
  bool needs_vp = false;
  bool needs_tg = false;
  /// Old engine behavior, kept bit-for-bit: every engine ensures its
  /// storage layout *before* resetting job history — except the sharable
  /// RAPIDAnalytics path, which resets first (so a cold triplegroup build
  /// is part of its measured workflow, as before the refactor).
  bool ensure_before_reset = true;
  /// Non-empty when the planner fell back to the engine's baseline shape
  /// (MQO -> naive, RAPIDAnalytics -> RAPID+).
  std::string fallback_reason;
  std::vector<std::string> notes;
  std::vector<std::string> passes;  // pass names, "(off)"-suffixed if gated
  std::vector<PlanNode> nodes;
  /// Result slots the plan fills (1, or the batch size for shared scans).
  int num_results = 1;

  /// Appends a node (id assigned) and returns a reference valid until the
  /// next AddNode call.
  PlanNode& AddNode(OpKind kind, std::string label, std::string describe,
                    int est_cycles);

  PlanNode* FindByTag(const std::string& tag);
  PlanNode* FindById(int id);
  const PlanNode* FindById(int id) const;

  int EstimatedCycles() const;
  uint64_t EstimatedBytes() const;

  /// Deterministic human-readable rendering (EXPLAIN).
  std::string ExplainText() const;
  /// Deterministic JSON rendering (EXPLAIN FORMAT=JSON).
  std::string ExplainJson() const;

  /// Canonical structural serialization: engine, node kinds, labels,
  /// cycle counts, attrs and edges — no dataset-dependent info fields.
  std::string Fingerprint() const;
  /// 16-hex-digit FNV-1a hash of Fingerprint().
  std::string FingerprintHash() const;

 private:
  int next_id_ = 0;
};

/// FNV-1a 64-bit over a string, as 16 lowercase hex digits.
std::string Fnv1aHex(const std::string& data);

/// Minimal JSON string escaping (quotes, backslash, control chars).
std::string JsonEscape(const std::string& s);

}  // namespace rapida::plan

#endif  // RAPIDA_PLAN_PLAN_H_
