#include "rdf/term.h"

namespace rapida::rdf {

namespace {
// Escapes characters that N-Triples requires escaping inside literals.
std::string EscapeLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}
}  // namespace

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + text + ">";
    case TermKind::kBlank:
      return "_:" + text;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(text) + "\"";
      if (!datatype.empty()) out += "^^<" + datatype + ">";
      return out;
    }
  }
  return {};
}

}  // namespace rapida::rdf
