#ifndef RAPIDA_RDF_VP_STORE_H_
#define RAPIDA_RDF_VP_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"

namespace rapida::rdf {

/// A (subject, object) pair in a vertical partition.
struct VpRow {
  TermId subject;
  TermId object;
};

/// Vertically-partitioned layout of an RDF graph (Abadi et al., VLDB'07),
/// the physical organization the paper's Hive baselines query:
///
///  * one two-column table per property, and
///  * for rdf:type, one table per (type, object) pair — "property-object
///    partitions for rdf:type triples" (paper §5.1 Pre-processing) — so a
///    type-restriction triple pattern becomes a single small table scan.
///
/// Each partition records its estimated plain and ORC-compressed byte sizes
/// so the MapReduce cost model can size scans either way.
class VpStore {
 public:
  /// Builds the partitioning from `graph`. The graph must outlive the store
  /// (rows reference its dictionary ids).
  explicit VpStore(const Graph& graph);

  VpStore(const VpStore&) = delete;
  VpStore& operator=(const VpStore&) = delete;

  /// Table for property `p`, excluding rdf:type. Empty if absent.
  const std::vector<VpRow>& Table(TermId property) const;

  /// Table of subjects with triple (s, rdf:type, `type_object`).
  /// Objects in the returned rows are the type object itself.
  const std::vector<VpRow>& TypeTable(TermId type_object) const;

  /// Estimated on-disk bytes for a table, plain text encoding.
  uint64_t TableBytes(TermId property) const;
  uint64_t TypeTableBytes(TermId type_object) const;

  /// Distinct non-type properties present.
  std::vector<TermId> Properties() const;

  const Graph& graph() const { return *graph_; }

 private:
  const Graph* graph_;
  std::unordered_map<TermId, std::vector<VpRow>> tables_;
  std::unordered_map<TermId, std::vector<VpRow>> type_tables_;
  std::unordered_map<TermId, uint64_t> table_bytes_;
  std::unordered_map<TermId, uint64_t> type_table_bytes_;
  std::vector<VpRow> empty_;
};

}  // namespace rapida::rdf

#endif  // RAPIDA_RDF_VP_STORE_H_
