#include "rdf/vp_store.h"

namespace rapida::rdf {

VpStore::VpStore(const Graph& graph) : graph_(&graph) {
  const Dictionary& dict = graph.dict();
  TermId type_id = graph.TypeIdOrInvalid();
  for (const Triple& t : graph.triples()) {
    uint64_t row_bytes =
        dict.Get(t.s).text.size() + dict.Get(t.o).text.size() + 2;
    if (t.p == type_id) {
      type_tables_[t.o].push_back(VpRow{t.s, t.o});
      type_table_bytes_[t.o] += row_bytes;
    } else {
      tables_[t.p].push_back(VpRow{t.s, t.o});
      table_bytes_[t.p] += row_bytes;
    }
  }
}

const std::vector<VpRow>& VpStore::Table(TermId property) const {
  auto it = tables_.find(property);
  return it == tables_.end() ? empty_ : it->second;
}

const std::vector<VpRow>& VpStore::TypeTable(TermId type_object) const {
  auto it = type_tables_.find(type_object);
  return it == type_tables_.end() ? empty_ : it->second;
}

uint64_t VpStore::TableBytes(TermId property) const {
  auto it = table_bytes_.find(property);
  return it == table_bytes_.end() ? 0 : it->second;
}

uint64_t VpStore::TypeTableBytes(TermId type_object) const {
  auto it = type_table_bytes_.find(type_object);
  return it == type_table_bytes_.end() ? 0 : it->second;
}

std::vector<TermId> VpStore::Properties() const {
  std::vector<TermId> out;
  out.reserve(tables_.size());
  for (const auto& [p, rows] : tables_) out.push_back(p);
  return out;
}

}  // namespace rapida::rdf
