#ifndef RAPIDA_RDF_NTRIPLES_H_
#define RAPIDA_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace rapida::rdf {

/// Parses N-Triples text into `graph`. Supports IRIs, blank nodes, plain /
/// typed / language-tagged literals, comments ('#'), and blank lines.
/// Returns ParseError with a line number on malformed input.
Status ParseNTriples(std::string_view text, Graph* graph);

/// Serializes the whole graph as N-Triples text.
std::string WriteNTriples(const Graph& graph);

}  // namespace rapida::rdf

#endif  // RAPIDA_RDF_NTRIPLES_H_
