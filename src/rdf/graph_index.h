#ifndef RAPIDA_RDF_GRAPH_INDEX_H_
#define RAPIDA_RDF_GRAPH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"

namespace rapida::rdf {

/// Secondary access paths over a Graph used by the in-memory reference
/// evaluator: by property, by (property, subject) and by (property, object).
/// Build once per graph; lookups return id vectors by reference.
class GraphIndex {
 public:
  explicit GraphIndex(const Graph& graph);

  GraphIndex(const GraphIndex&) = delete;
  GraphIndex& operator=(const GraphIndex&) = delete;

  /// All (s, o) pairs with property p.
  const std::vector<std::pair<TermId, TermId>>& ByProperty(TermId p) const;
  /// Objects o with (s, p, o) present.
  const std::vector<TermId>& Objects(TermId p, TermId s) const;
  /// Subjects s with (s, p, o) present.
  const std::vector<TermId>& Subjects(TermId p, TermId o) const;
  /// True if the exact triple exists.
  bool Contains(TermId s, TermId p, TermId o) const;

  const Graph& graph() const { return *graph_; }

 private:
  static uint64_t PairKey(TermId a, TermId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  const Graph* graph_;
  std::unordered_map<TermId, std::vector<std::pair<TermId, TermId>>> by_p_;
  std::unordered_map<uint64_t, std::vector<TermId>> by_ps_;
  std::unordered_map<uint64_t, std::vector<TermId>> by_po_;
  std::vector<std::pair<TermId, TermId>> empty_pairs_;
  std::vector<TermId> empty_ids_;
};

}  // namespace rapida::rdf

#endif  // RAPIDA_RDF_GRAPH_INDEX_H_
