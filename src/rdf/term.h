#ifndef RAPIDA_RDF_TERM_H_
#define RAPIDA_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <utility>

namespace rapida::rdf {

/// Dictionary-encoded identifier for an RDF term. Id 0 is reserved as
/// "invalid / unbound".
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0;

enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// An RDF term: IRI, literal, or blank node.
///
/// IRIs are stored without angle brackets; literals store their lexical form
/// in `text` and an optional datatype IRI in `datatype` (empty for plain
/// literals). Blank node labels are stored without the "_:" prefix.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string text;
  std::string datatype;

  static Term Iri(std::string iri) {
    return Term{TermKind::kIri, std::move(iri), {}};
  }
  static Term Literal(std::string value, std::string datatype = {}) {
    return Term{TermKind::kLiteral, std::move(value), std::move(datatype)};
  }
  static Term Blank(std::string label) {
    return Term{TermKind::kBlank, std::move(label), {}};
  }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.text == b.text && a.datatype == b.datatype;
  }

  /// N-Triples surface form: <iri>, "literal"^^<dt>, or _:label.
  std::string ToNTriples() const;
};

/// Well-known IRIs.
inline constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kXsdInteger[] =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr char kXsdDouble[] = "http://www.w3.org/2001/XMLSchema#double";

}  // namespace rapida::rdf

#endif  // RAPIDA_RDF_TERM_H_
