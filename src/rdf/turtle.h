#ifndef RAPIDA_RDF_TURTLE_H_
#define RAPIDA_RDF_TURTLE_H_

#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace rapida::rdf {

/// Parses a Turtle document into `graph`. Supported subset (what real
/// analytical datasets use):
///   * `@prefix` / SPARQL-style `PREFIX` directives and prefixed names,
///   * `@base` / `BASE` (relative IRIs are concatenated to the base),
///   * predicate lists with ';' and object lists with ',',
///   * the `a` keyword for rdf:type,
///   * IRIs, blank node labels (`_:b`), string literals with `^^` datatype
///     or `@lang`, bare integers / decimals / doubles (typed as xsd), and
///     `true` / `false` (xsd:boolean),
///   * '#' comments.
/// Collections `( ... )` and anonymous blank-node property lists `[ ... ]`
/// return ParseError (they do not appear in the targeted datasets).
Status ParseTurtle(std::string_view text, Graph* graph);

}  // namespace rapida::rdf

#endif  // RAPIDA_RDF_TURTLE_H_
