#include "rdf/ntriples.h"

#include <cctype>
#include <string>

#include "util/string_util.h"

namespace rapida::rdf {

namespace {

/// Cursor over one N-Triples line.
class LineParser {
 public:
  LineParser(std::string_view line, int line_no)
      : line_(line), line_no_(line_no) {}

  Status ParseTriple(Term* s, Term* p, Term* o) {
    RAPIDA_RETURN_IF_ERROR(ParseTerm(s));
    if (s->is_literal()) return Error("subject must not be a literal");
    RAPIDA_RETURN_IF_ERROR(ParseTerm(p));
    if (!p->is_iri()) return Error("property must be an IRI");
    RAPIDA_RETURN_IF_ERROR(ParseTerm(o));
    SkipSpace();
    if (pos_ >= line_.size() || line_[pos_] != '.') {
      return Error("expected terminating '.'");
    }
    ++pos_;
    SkipSpace();
    if (pos_ != line_.size()) return Error("trailing characters after '.'");
    return Status::OK();
  }

 private:
  void SkipSpace() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t')) {
      ++pos_;
    }
  }

  Status Error(const std::string& what) {
    return Status::ParseError("N-Triples line " + std::to_string(line_no_) +
                              ": " + what);
  }

  Status ParseTerm(Term* out) {
    SkipSpace();
    if (pos_ >= line_.size()) return Error("unexpected end of line");
    char c = line_[pos_];
    if (c == '<') return ParseIri(out);
    if (c == '_') return ParseBlank(out);
    if (c == '"') return ParseLiteral(out);
    return Error(std::string("unexpected character '") + c + "'");
  }

  Status ParseIri(Term* out) {
    ++pos_;  // consume '<'
    size_t end = line_.find('>', pos_);
    if (end == std::string_view::npos) return Error("unterminated IRI");
    *out = Term::Iri(std::string(line_.substr(pos_, end - pos_)));
    pos_ = end + 1;
    return Status::OK();
  }

  Status ParseBlank(Term* out) {
    if (pos_ + 1 >= line_.size() || line_[pos_ + 1] != ':') {
      return Error("malformed blank node");
    }
    pos_ += 2;
    size_t start = pos_;
    while (pos_ < line_.size() && !std::isspace(static_cast<unsigned char>(
                                      line_[pos_]))) {
      ++pos_;
    }
    *out = Term::Blank(std::string(line_.substr(start, pos_ - start)));
    return Status::OK();
  }

  Status ParseLiteral(Term* out) {
    ++pos_;  // consume opening quote
    std::string value;
    while (pos_ < line_.size() && line_[pos_] != '"') {
      char c = line_[pos_];
      if (c == '\\') {
        if (pos_ + 1 >= line_.size()) return Error("dangling escape");
        char e = line_[pos_ + 1];
        switch (e) {
          case 'n':
            value += '\n';
            break;
          case 'r':
            value += '\r';
            break;
          case 't':
            value += '\t';
            break;
          case '"':
            value += '"';
            break;
          case '\\':
            value += '\\';
            break;
          default:
            return Error("unsupported escape");
        }
        pos_ += 2;
      } else {
        value += c;
        ++pos_;
      }
    }
    if (pos_ >= line_.size()) return Error("unterminated literal");
    ++pos_;  // closing quote
    std::string datatype;
    if (pos_ + 1 < line_.size() && line_[pos_] == '^' &&
        line_[pos_ + 1] == '^') {
      pos_ += 2;
      if (pos_ >= line_.size() || line_[pos_] != '<') {
        return Error("expected datatype IRI after '^^'");
      }
      Term dt;
      RAPIDA_RETURN_IF_ERROR(ParseIri(&dt));
      datatype = dt.text;
    } else if (pos_ < line_.size() && line_[pos_] == '@') {
      // Language tags are accepted and folded into the datatype slot with
      // an '@' marker so round-tripping keeps terms distinct.
      size_t start = pos_;
      ++pos_;
      while (pos_ < line_.size() &&
             (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
              line_[pos_] == '-')) {
        ++pos_;
      }
      datatype = std::string(line_.substr(start, pos_ - start));
    }
    *out = Term::Literal(std::move(value), std::move(datatype));
    return Status::OK();
  }

  std::string_view line_;
  int line_no_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseNTriples(std::string_view text, Graph* graph) {
  int line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    ++line_no;
    start = end + 1;
    std::string trimmed = TrimString(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      if (end == text.size()) break;
      continue;
    }
    Term s, p, o;
    LineParser parser(trimmed, line_no);
    RAPIDA_RETURN_IF_ERROR(parser.ParseTriple(&s, &p, &o));
    graph->Add(s, p, o);
    if (end == text.size()) break;
  }
  return Status::OK();
}

std::string WriteNTriples(const Graph& graph) {
  std::string out;
  const Dictionary& dict = graph.dict();
  for (const Triple& t : graph.triples()) {
    out += dict.Get(t.s).ToNTriples();
    out += ' ';
    out += dict.Get(t.p).ToNTriples();
    out += ' ';
    out += dict.Get(t.o).ToNTriples();
    out += " .\n";
  }
  return out;
}

}  // namespace rapida::rdf
