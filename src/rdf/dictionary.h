#ifndef RAPIDA_RDF_DICTIONARY_H_
#define RAPIDA_RDF_DICTIONARY_H_

#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rdf/term.h"

namespace rapida::rdf {

/// Bidirectional term <-> id mapping. All triples in a Graph reference terms
/// through TermIds; joins and grouping compare 32-bit ids instead of
/// strings.
///
/// Thread-safe: lookups take a shared lock, interning an exclusive one, so
/// concurrent queries served off one shared dataset may intern computed
/// values (aggregation finalizers) while other queries read. Terms live in
/// a deque, so the reference returned by Get stays valid across later
/// interns. Ids are append-only — a term, once interned, never moves or
/// disappears — which is what lets cached result tables (service layer)
/// stay valid across unrelated interning.
class Dictionary {
 public:
  Dictionary() = default;

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&& other) noexcept;
  Dictionary& operator=(Dictionary&& other) noexcept;

  /// Returns the id of `term`, interning it if new. Ids are dense and
  /// start at 1 (0 is kInvalidTermId).
  TermId Intern(const Term& term);

  /// Convenience interners.
  TermId InternIri(std::string_view iri);
  TermId InternLiteral(std::string_view value, std::string_view datatype = {});
  TermId InternInt(int64_t value);
  TermId InternDouble(double value);

  /// Returns the id of `term`, or kInvalidTermId if not present.
  TermId Lookup(const Term& term) const;
  TermId LookupIri(std::string_view iri) const;

  /// Term for a valid id. Id must be in [1, size()]. The reference stays
  /// valid for the dictionary's lifetime.
  const Term& Get(TermId id) const;

  /// Number of interned terms.
  size_t size() const;

  /// Parses the literal at `id` as a number. Returns nullopt for IRIs,
  /// blanks, and non-numeric literals.
  std::optional<double> AsNumber(TermId id) const;

 private:
  static std::string MakeKey(const Term& term);

  /// Numeric value of a term, parsed once at intern time so AsNumber — hot
  /// in every aggregation inner loop — is a cached lookup, not a re-parse.
  struct NumValue {
    double value = 0;
    bool is_number = false;
  };
  static NumValue ParseNumValue(const Term& term);

  mutable std::shared_mutex mu_;
  std::deque<Term> terms_;  // terms_[id-1] is the term for id.
  std::deque<NumValue> nums_;  // parallel to terms_
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace rapida::rdf

#endif  // RAPIDA_RDF_DICTIONARY_H_
