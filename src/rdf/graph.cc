#include "rdf/graph.h"

#include <algorithm>

namespace rapida::rdf {

void Graph::Add(TermId s, TermId p, TermId o) {
  Triple t{s, p, o};
  if (triple_set_.insert(t).second) triples_.push_back(t);
}

void Graph::Add(const Term& s, const Term& p, const Term& o) {
  Add(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

void Graph::AddIri(std::string_view s, std::string_view p,
                   std::string_view o) {
  Add(dict_.InternIri(s), dict_.InternIri(p), dict_.InternIri(o));
}

void Graph::AddLit(std::string_view s, std::string_view p,
                   std::string_view o) {
  Add(dict_.InternIri(s), dict_.InternIri(p), dict_.InternLiteral(o));
}

void Graph::AddInt(std::string_view s, std::string_view p, int64_t value) {
  Add(dict_.InternIri(s), dict_.InternIri(p), dict_.InternInt(value));
}

TermId Graph::TypeId() { return dict_.InternIri(kRdfType); }

TermId Graph::TypeIdOrInvalid() const { return dict_.LookupIri(kRdfType); }

std::unordered_map<TermId, uint64_t> Graph::PropertyCounts() const {
  std::unordered_map<TermId, uint64_t> counts;
  for (const Triple& t : triples_) ++counts[t.p];
  return counts;
}

const std::vector<Graph::SubjectGroup>& Graph::SubjectGroups() const {
  if (subject_groups_built_at_ == triples_.size()) return subject_groups_;
  std::vector<Triple> sorted = triples_;
  std::sort(sorted.begin(), sorted.end());
  subject_groups_.clear();
  for (const Triple& t : sorted) {
    if (subject_groups_.empty() || subject_groups_.back().subject != t.s) {
      subject_groups_.push_back(SubjectGroup{t.s, {}});
    }
    subject_groups_.back().triples.push_back(t);
  }
  subject_groups_built_at_ = triples_.size();
  return subject_groups_;
}

uint64_t Graph::EstimateSerializedBytes() const {
  uint64_t total = 0;
  for (const Triple& t : triples_) {
    total += dict_.Get(t.s).text.size() + dict_.Get(t.p).text.size() +
             dict_.Get(t.o).text.size() + 8;  // separators + " .\n"
  }
  return total;
}

}  // namespace rapida::rdf
