#include "rdf/dictionary.h"

#include <cstdio>
#include <mutex>

#include "util/logging.h"
#include "util/string_util.h"

namespace rapida::rdf {

Dictionary::Dictionary(Dictionary&& other) noexcept {
  // Moves are only legal while no other thread touches `other` (dataset
  // construction / test setup), so no lock on the source is needed beyond
  // making the transfer itself well-formed.
  std::unique_lock lock(other.mu_);
  terms_ = std::move(other.terms_);
  nums_ = std::move(other.nums_);
  index_ = std::move(other.index_);
}

Dictionary& Dictionary::operator=(Dictionary&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    terms_ = std::move(other.terms_);
    nums_ = std::move(other.nums_);
    index_ = std::move(other.index_);
  }
  return *this;
}

std::string Dictionary::MakeKey(const Term& term) {
  std::string key;
  key.reserve(term.text.size() + term.datatype.size() + 2);
  key.push_back(static_cast<char>('0' + static_cast<int>(term.kind)));
  key.append(term.text);
  if (!term.datatype.empty()) {
    key.push_back('\x01');
    key.append(term.datatype);
  }
  return key;
}

TermId Dictionary::Intern(const Term& term) {
  std::string key = MakeKey(term);
  {
    // Fast path: already interned (the common case on hot caches).
    std::shared_lock lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
  }
  NumValue num = ParseNumValue(term);
  std::unique_lock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  terms_.push_back(term);
  nums_.push_back(num);
  TermId id = static_cast<TermId>(terms_.size());
  index_.emplace(std::move(key), id);
  return id;
}

Dictionary::NumValue Dictionary::ParseNumValue(const Term& term) {
  NumValue num;
  if (term.is_literal()) {
    num.is_number = ParseDouble(term.text, &num.value);
  }
  return num;
}

TermId Dictionary::InternIri(std::string_view iri) {
  return Intern(Term::Iri(std::string(iri)));
}

TermId Dictionary::InternLiteral(std::string_view value,
                                 std::string_view datatype) {
  return Intern(Term::Literal(std::string(value), std::string(datatype)));
}

TermId Dictionary::InternInt(int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return InternLiteral(buf, kXsdInteger);
}

TermId Dictionary::InternDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return InternLiteral(buf, kXsdDouble);
}

TermId Dictionary::Lookup(const Term& term) const {
  std::shared_lock lock(mu_);
  auto it = index_.find(MakeKey(term));
  return it == index_.end() ? kInvalidTermId : it->second;
}

TermId Dictionary::LookupIri(std::string_view iri) const {
  return Lookup(Term::Iri(std::string(iri)));
}

const Term& Dictionary::Get(TermId id) const {
  std::shared_lock lock(mu_);
  RAPIDA_CHECK(id != kInvalidTermId && id <= terms_.size())
      << "bad term id " << id;
  return terms_[id - 1];
}

size_t Dictionary::size() const {
  std::shared_lock lock(mu_);
  return terms_.size();
}

std::optional<double> Dictionary::AsNumber(TermId id) const {
  std::shared_lock lock(mu_);
  if (id == kInvalidTermId || id > nums_.size()) return std::nullopt;
  const NumValue& num = nums_[id - 1];
  if (!num.is_number) return std::nullopt;
  return num.value;
}

}  // namespace rapida::rdf
