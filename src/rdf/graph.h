#ifndef RAPIDA_RDF_GRAPH_H_
#define RAPIDA_RDF_GRAPH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace rapida::rdf {

/// An in-memory RDF dataset: a dictionary plus a bag of encoded triples with
/// secondary indexes built on demand.
///
/// This is the substrate every engine reads from. The simulated DFS stores
/// *serialized* partitions derived from a Graph (vertical partitions for the
/// Hive engines, subject triplegroups for the NTGA engines); the Graph
/// itself is the loading/bookkeeping structure.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Adds a triple; duplicates are ignored (an RDF graph is a *set* of
  /// triples — duplicate insertions must not change query answers).
  void Add(TermId s, TermId p, TermId o);
  void Add(const Term& s, const Term& p, const Term& o);

  /// Convenience: subject/property as IRIs, object as IRI.
  void AddIri(std::string_view s, std::string_view p, std::string_view o);
  /// Convenience: subject/property as IRIs, object as plain literal.
  void AddLit(std::string_view s, std::string_view p, std::string_view o);
  /// Convenience: subject/property as IRIs, object as integer literal.
  void AddInt(std::string_view s, std::string_view p, int64_t value);

  const std::vector<Triple>& triples() const { return triples_; }
  size_t size() const { return triples_.size(); }

  /// Id of rdf:type in this graph's dictionary (interned on first use).
  TermId TypeId();
  /// Id of rdf:type if already interned, else kInvalidTermId.
  TermId TypeIdOrInvalid() const;

  /// All distinct property ids, with triple counts.
  std::unordered_map<TermId, uint64_t> PropertyCounts() const;

  /// Triples grouped by subject, each group's triples ordered by property.
  /// The subject order is ascending by id. Rebuilt on each call if the
  /// graph changed since the last build.
  struct SubjectGroup {
    TermId subject;
    std::vector<Triple> triples;
  };
  const std::vector<SubjectGroup>& SubjectGroups() const;

  /// Rough serialized size in bytes, as the DFS would store it in N-Triples
  /// text. Used by the cost model to size inputs.
  uint64_t EstimateSerializedBytes() const;

 private:
  Dictionary dict_;
  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> triple_set_;

  mutable std::vector<SubjectGroup> subject_groups_;
  mutable size_t subject_groups_built_at_ = static_cast<size_t>(-1);
};

}  // namespace rapida::rdf

#endif  // RAPIDA_RDF_GRAPH_H_
