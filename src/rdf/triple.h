#ifndef RAPIDA_RDF_TRIPLE_H_
#define RAPIDA_RDF_TRIPLE_H_

#include <cstddef>
#include <functional>

#include "rdf/term.h"

namespace rapida::rdf {

/// A dictionary-encoded RDF triple (subject, property, object).
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = t.s;
    h = h * 0x9e3779b97f4a7c15ULL + t.p;
    h = h * 0x9e3779b97f4a7c15ULL + t.o;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

}  // namespace rapida::rdf

#endif  // RAPIDA_RDF_TRIPLE_H_
