#include "rdf/graph_index.h"

#include <algorithm>

namespace rapida::rdf {

GraphIndex::GraphIndex(const Graph& graph) : graph_(&graph) {
  for (const Triple& t : graph.triples()) {
    by_p_[t.p].emplace_back(t.s, t.o);
    by_ps_[PairKey(t.p, t.s)].push_back(t.o);
    by_po_[PairKey(t.p, t.o)].push_back(t.s);
  }
}

const std::vector<std::pair<TermId, TermId>>& GraphIndex::ByProperty(
    TermId p) const {
  auto it = by_p_.find(p);
  return it == by_p_.end() ? empty_pairs_ : it->second;
}

const std::vector<TermId>& GraphIndex::Objects(TermId p, TermId s) const {
  auto it = by_ps_.find(PairKey(p, s));
  return it == by_ps_.end() ? empty_ids_ : it->second;
}

const std::vector<TermId>& GraphIndex::Subjects(TermId p, TermId o) const {
  auto it = by_po_.find(PairKey(p, o));
  return it == by_po_.end() ? empty_ids_ : it->second;
}

bool GraphIndex::Contains(TermId s, TermId p, TermId o) const {
  const std::vector<TermId>& objs = Objects(p, s);
  return std::find(objs.begin(), objs.end(), o) != objs.end();
}

}  // namespace rapida::rdf
