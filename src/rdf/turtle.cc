#include "rdf/turtle.h"

#include <cctype>
#include <cstring>
#include <string>
#include <unordered_map>

#include "util/string_util.h"

namespace rapida::rdf {

namespace {

/// Character-level parser over the whole document (Turtle is not
/// line-oriented).
class TurtleParser {
 public:
  TurtleParser(std::string_view text, Graph* graph)
      : text_(text), graph_(graph) {}

  Status Parse() {
    while (true) {
      SkipWs();
      if (AtEnd()) return Status::OK();
      if (PeekWord("@prefix") || PeekWordCi("PREFIX")) {
        RAPIDA_RETURN_IF_ERROR(ParsePrefixDirective());
        continue;
      }
      if (PeekWord("@base") || PeekWordCi("BASE")) {
        RAPIDA_RETURN_IF_ERROR(ParseBaseDirective());
        continue;
      }
      RAPIDA_RETURN_IF_ERROR(ParseTriples());
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }

  void SkipWs() {
    while (!AtEnd()) {
      char c = text_[pos_];
      if (c == '#') {
        while (!AtEnd() && text_[pos_] != '\n') ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        if (c == '\n') ++line_;
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool PeekWord(const char* word) const {
    std::string_view rest = text_.substr(pos_);
    return StartsWith(rest, word);
  }
  bool PeekWordCi(const char* word) const {
    std::string_view rest = text_.substr(pos_);
    size_t n = std::strlen(word);
    if (rest.size() < n) return false;
    for (size_t i = 0; i < n; ++i) {
      if (std::toupper(static_cast<unsigned char>(rest[i])) != word[i]) {
        return false;
      }
    }
    // Must be followed by whitespace (avoid matching a prefixed name).
    return rest.size() == n ||
           std::isspace(static_cast<unsigned char>(rest[n]));
  }

  Status Error(const std::string& what) const {
    return Status::ParseError("Turtle line " + std::to_string(line_) + ": " +
                              what);
  }

  Status Expect(char c) {
    SkipWs();
    if (Peek() != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  // --- directives ---

  Status ParsePrefixDirective() {
    bool at_form = Peek() == '@';
    pos_ += at_form ? 7 : 6;  // "@prefix" / "PREFIX"
    SkipWs();
    // Prefix label up to ':'.
    size_t start = pos_;
    while (!AtEnd() && text_[pos_] != ':') ++pos_;
    if (AtEnd()) return Error("unterminated prefix label");
    std::string label(text_.substr(start, pos_ - start));
    ++pos_;  // ':'
    SkipWs();
    Term iri;
    RAPIDA_RETURN_IF_ERROR(ParseIriRef(&iri));
    prefixes_[TrimString(label)] = iri.text;
    if (at_form) RAPIDA_RETURN_IF_ERROR(Expect('.'));
    return Status::OK();
  }

  Status ParseBaseDirective() {
    bool at_form = Peek() == '@';
    pos_ += at_form ? 5 : 4;  // "@base" / "BASE"
    SkipWs();
    Term iri;
    RAPIDA_RETURN_IF_ERROR(ParseIriRef(&iri));
    base_ = iri.text;
    if (at_form) RAPIDA_RETURN_IF_ERROR(Expect('.'));
    return Status::OK();
  }

  // --- triples ---

  Status ParseTriples() {
    Term subject;
    RAPIDA_RETURN_IF_ERROR(ParseTerm(&subject, /*as_object=*/false));
    if (subject.is_literal()) return Error("subject must not be a literal");
    while (true) {
      SkipWs();
      Term predicate;
      if (Peek() == 'a' &&
          (pos_ + 1 >= text_.size() ||
           std::isspace(static_cast<unsigned char>(text_[pos_ + 1])))) {
        ++pos_;
        predicate = Term::Iri(kRdfType);
      } else {
        RAPIDA_RETURN_IF_ERROR(ParseTerm(&predicate, /*as_object=*/false));
        if (!predicate.is_iri()) return Error("predicate must be an IRI");
      }
      while (true) {
        Term object;
        RAPIDA_RETURN_IF_ERROR(ParseTerm(&object, /*as_object=*/true));
        graph_->Add(subject, predicate, object);
        SkipWs();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipWs();
      if (Peek() == ';') {
        ++pos_;
        SkipWs();
        // Dangling ';' before '.' is legal.
        if (Peek() == '.') break;
        continue;
      }
      break;
    }
    return Expect('.');
  }

  // --- terms ---

  Status ParseIriRef(Term* out) {
    SkipWs();
    if (Peek() != '<') return Error("expected IRI");
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && text_[pos_] != '>' && text_[pos_] != '\n') ++pos_;
    if (Peek() != '>') return Error("unterminated IRI");
    std::string iri(text_.substr(start, pos_ - start));
    ++pos_;
    // Relative IRI resolution: simple concatenation to the base.
    if (!base_.empty() && iri.find("://") == std::string::npos &&
        !StartsWith(iri, "urn:") && !StartsWith(iri, "mailto:")) {
      iri = base_ + iri;
    }
    *out = Term::Iri(std::move(iri));
    return Status::OK();
  }

  Status ParseTerm(Term* out, bool as_object) {
    SkipWs();
    char c = Peek();
    if (c == '<') return ParseIriRef(out);
    if (c == '_') return ParseBlank(out);
    if (c == '"' || c == '\'') return ParseStringLiteral(out);
    if (c == '[' || c == '(') {
      return Error("blank-node property lists / collections are not "
                   "supported");
    }
    if (as_object &&
        (std::isdigit(static_cast<unsigned char>(c)) || c == '+' ||
         c == '-' ||
         (c == '.' && pos_ + 1 < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))))) {
      return ParseNumber(out);
    }
    if (as_object && (PeekWord("true") || PeekWord("false"))) {
      bool v = PeekWord("true");
      pos_ += v ? 4 : 5;
      *out = Term::Literal(v ? "true" : "false",
                           "http://www.w3.org/2001/XMLSchema#boolean");
      return Status::OK();
    }
    return ParsePrefixedName(out);
  }

  Status ParseBlank(Term* out) {
    if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != ':') {
      return Error("malformed blank node");
    }
    pos_ += 2;
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(
                            text_[pos_])) ||
                        text_[pos_] == '_' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("empty blank node label");
    *out = Term::Blank(std::string(text_.substr(start, pos_ - start)));
    return Status::OK();
  }

  Status ParseStringLiteral(Term* out) {
    char quote = Peek();
    // Long strings ("""...""" / '''...''').
    bool long_form = text_.substr(pos_).size() >= 3 &&
                     text_[pos_ + 1] == quote && text_[pos_ + 2] == quote;
    pos_ += long_form ? 3 : 1;
    std::string value;
    while (!AtEnd()) {
      char c = text_[pos_];
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Error("dangling escape");
        char e = text_[pos_ + 1];
        switch (e) {
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case 'r': value += '\r'; break;
          case '"': value += '"'; break;
          case '\'': value += '\''; break;
          case '\\': value += '\\'; break;
          default: return Error("unsupported escape");
        }
        pos_ += 2;
        continue;
      }
      if (c == quote) {
        if (!long_form) {
          ++pos_;
          break;
        }
        if (text_.substr(pos_).size() >= 3 && text_[pos_ + 1] == quote &&
            text_[pos_ + 2] == quote) {
          pos_ += 3;
          break;
        }
        value += c;
        ++pos_;
        continue;
      }
      if (c == '\n') {
        if (!long_form) return Error("newline in string literal");
        ++line_;
      }
      value += c;
      ++pos_;
      if (AtEnd()) return Error("unterminated string literal");
    }
    // Datatype or language tag.
    std::string datatype;
    if (!AtEnd() && Peek() == '^') {
      if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '^') {
        return Error("expected '^^'");
      }
      pos_ += 2;
      SkipWs();
      Term dt;
      if (Peek() == '<') {
        RAPIDA_RETURN_IF_ERROR(ParseIriRef(&dt));
      } else {
        RAPIDA_RETURN_IF_ERROR(ParsePrefixedName(&dt));
      }
      datatype = dt.text;
    } else if (!AtEnd() && Peek() == '@') {
      size_t start = pos_;
      ++pos_;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(
                              text_[pos_])) ||
                          text_[pos_] == '-')) {
        ++pos_;
      }
      datatype = std::string(text_.substr(start, pos_ - start));
    }
    *out = Term::Literal(std::move(value), std::move(datatype));
    return Status::OK();
  }

  Status ParseNumber(Term* out) {
    size_t start = pos_;
    if (Peek() == '+' || Peek() == '-') ++pos_;
    bool has_dot = false, has_exp = false;
    while (!AtEnd()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !has_dot && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        has_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !has_exp) {
        has_exp = true;
        ++pos_;
        if (!AtEnd() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      } else {
        break;
      }
    }
    std::string lex(text_.substr(start, pos_ - start));
    if (lex.empty() || lex == "+" || lex == "-") {
      return Error("malformed number");
    }
    const char* dt = has_exp
                         ? "http://www.w3.org/2001/XMLSchema#double"
                         : (has_dot ? "http://www.w3.org/2001/XMLSchema#decimal"
                                    : kXsdInteger);
    *out = Term::Literal(std::move(lex), dt);
    return Status::OK();
  }

  Status ParsePrefixedName(Term* out) {
    size_t start = pos_;
    while (!AtEnd()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.') {
        // A trailing '.' terminates the statement, not the name.
        if (c == '.' && (pos_ + 1 >= text_.size() ||
                         !(std::isalnum(static_cast<unsigned char>(
                               text_[pos_ + 1])) ||
                           text_[pos_ + 1] == '_'))) {
          break;
        }
        ++pos_;
      } else {
        break;
      }
    }
    std::string prefix(text_.substr(start, pos_ - start));
    if (AtEnd() || Peek() != ':') {
      return Error("expected a prefixed name near '" + prefix + "'");
    }
    ++pos_;
    size_t lstart = pos_;
    while (!AtEnd()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' ||
          (c == '.' && pos_ + 1 < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_ + 1])) ||
            text_[pos_ + 1] == '_'))) {
        ++pos_;
      } else {
        break;
      }
    }
    std::string local(text_.substr(lstart, pos_ - lstart));
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Error("undeclared prefix '" + prefix + ":'");
    }
    *out = Term::Iri(it->second + local);
    return Status::OK();
  }

  std::string_view text_;
  Graph* graph_;
  size_t pos_ = 0;
  int line_ = 1;
  std::string base_;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

Status ParseTurtle(std::string_view text, Graph* graph) {
  return TurtleParser(text, graph).Parse();
}

}  // namespace rapida::rdf
