#include "testing/differential.h"

#include <map>
#include <utility>

#include "analytics/analytical_query.h"
#include "analytics/reference_evaluator.h"
#include "engines/engines.h"
#include "plan/planner.h"
#include "service/query_service.h"
#include "testing/normalize.h"
#include "testing/query_gen.h"
#include "testing/vocab.h"
#include "util/random.h"

namespace rapida::difftest {

std::vector<TripleSpec> DecodeGraph(const rdf::Graph& graph) {
  std::vector<TripleSpec> out;
  out.reserve(graph.size());
  const rdf::Dictionary& dict = graph.dict();
  for (const rdf::Triple& t : graph.triples()) {
    out.push_back({dict.Get(t.s), dict.Get(t.p), dict.Get(t.o)});
  }
  return out;
}

rdf::Graph BuildGraph(const std::vector<TripleSpec>& triples) {
  rdf::Graph g;
  for (const TripleSpec& t : triples) g.Add(t[0], t[1], t[2]);
  return g;
}

FuzzCase MakeFuzzCase(uint64_t seed) {
  return MakeFuzzCase(seed, GenOptions{});
}

FuzzCase MakeFuzzCase(uint64_t seed, const GenOptions& gen) {
  FuzzCase c;
  c.seed = seed;
  Random root(seed);
  const std::vector<VocabSchema>& schemas = AllSchemas();
  c.dataset = schemas[root.Uniform(schemas.size())].dataset;
  Random data_rng = root.Split(1);
  Random query_rng = root.Split(2);
  rdf::Graph graph = GenerateFuzzGraph(c.dataset, &data_rng, gen.multival);
  c.triples = DecodeGraph(graph);
  c.query = GenerateQuery(SchemaFor(c.dataset), &query_rng, gen);
  return c;
}

namespace {

/// Decorator that corrupts an inner engine's results — the "known bug" the
/// shrinker acceptance test and --inject mode must be able to catch.
class FaultyEngine : public engine::Engine {
 public:
  FaultyEngine(std::unique_ptr<engine::Engine> inner, FaultKind fault)
      : inner_(std::move(inner)), fault_(fault) {}

  std::string name() const override { return inner_->name(); }

  StatusOr<analytics::BindingTable> Execute(
      const analytics::AnalyticalQuery& query, engine::Dataset* dataset,
      mr::Cluster* cluster, engine::ExecStats* stats) override {
    StatusOr<analytics::BindingTable> result =
        inner_->Execute(query, dataset, cluster, stats);
    if (!result.ok() || result.value().NumRows() == 0) return result;
    analytics::BindingTable table = std::move(result).value();
    bool perturbed = false;
    if (fault_ == FaultKind::kPerturbAggregate) {
      std::vector<rdf::TermId>& row = table.mutable_rows()[0];
      for (rdf::TermId& cell : row) {
        if (auto num = dataset->dict().AsNumber(cell)) {
          cell = dataset->dict().InternDouble(*num + 1);
          perturbed = true;
          break;
        }
      }
    }
    if (fault_ == FaultKind::kDropRow || !perturbed) {
      table.mutable_rows().pop_back();
    }
    return table;
  }

 private:
  std::unique_ptr<engine::Engine> inner_;
  FaultKind fault_;
};

DiffFailure Fail(std::string kind, std::string engine, int threads,
                 std::string detail) {
  DiffFailure f;
  f.failed = true;
  f.kind = std::move(kind);
  f.engine = std::move(engine);
  f.threads = threads;
  f.detail = std::move(detail);
  return f;
}

}  // namespace

std::string DiffFailure::ToString() const {
  if (!failed) return "ok";
  std::string out = kind;
  if (!engine.empty()) out += " [" + engine + "]";
  if (threads > 0) out += " (exec_threads=" + std::to_string(threads) + ")";
  if (!detail.empty()) out += ": " + detail;
  return out;
}

DiffFailure RunDifferential(const FuzzCase& c, const DiffOptions& opts) {
  StatusOr<analytics::AnalyticalQuery> analyzed =
      analytics::AnalyzeQuery(*c.query);
  if (!analyzed.ok()) {
    return Fail("analyze", "", 0, analyzed.status().ToString());
  }

  rdf::Graph ref_graph = BuildGraph(c.triples);
  analytics::ReferenceEvaluator reference(&ref_graph);
  StatusOr<analytics::BindingTable> ref_result = reference.Evaluate(*c.query);
  if (!ref_result.ok()) {
    return Fail("reference", "", 0, ref_result.status().ToString());
  }
  NormalizedTable expected =
      Normalize(ref_result.value(), ref_graph.dict());

  // engine name -> cycle count, to check cross-thread determinism and the
  // paper's cycle-count orderings once all runs are in.
  std::map<std::pair<std::string, int>, int> cycles;
  // Unsharded (engine, threads) baseline the sharded runs must match:
  // sharding changes placement and transport accounting, never the
  // workflow shape or the shuffled volume.
  struct Baseline {
    int cycles = 0;
    uint64_t shuffle_bytes = 0;
  };
  std::map<std::pair<std::string, int>, Baseline> baselines;

  // Run matrix: the legacy unsharded data plane first (it is the
  // reference the sharded runs are held to), then every requested shard
  // count under both placement schemes.
  struct ShardConfig {
    int shards = 0;
    mr::ShardingScheme scheme = mr::ShardingScheme::kHashSubject;
  };
  std::vector<ShardConfig> shard_configs{ShardConfig{}};
  for (int s : opts.shard_counts) {
    if (s <= 1) continue;  // <= 1 is the unsharded path, already covered
    shard_configs.push_back(ShardConfig{s, mr::ShardingScheme::kHashSubject});
    shard_configs.push_back(ShardConfig{s, mr::ShardingScheme::kLocality});
  }

  for (int threads : opts.thread_counts) {
    for (const ShardConfig& sc : shard_configs) {
      const std::string config_tag =
          sc.shards > 1 ? " [shards=" + std::to_string(sc.shards) + "," +
                              mr::ShardingSchemeName(sc.scheme) + "]"
                        : "";
      engine::Dataset dataset(BuildGraph(c.triples));
      mr::ClusterConfig cfg;
      cfg.exec_threads = threads;
      cfg.exec_split_bytes = opts.exec_split_bytes;
      cfg.num_shards = sc.shards;
      cfg.sharding = sc.scheme;
      mr::Cluster cluster(cfg, &dataset.dfs());
      engine::EngineOptions eopts = opts.engine_options;
      eopts.num_shards = sc.shards;
      eopts.sharding_scheme = sc.scheme;
      for (std::unique_ptr<engine::Engine>& eng :
           engine::MakeAllEngines(eopts)) {
        std::unique_ptr<engine::Engine> run = std::move(eng);
        if (opts.fault != FaultKind::kNone &&
            run->name() == opts.fault_engine) {
          run = std::make_unique<FaultyEngine>(std::move(run), opts.fault);
        }
        engine::ExecStats stats;
        StatusOr<analytics::BindingTable> result =
            run->Execute(analyzed.value(), &dataset, &cluster, &stats);
        if (!result.ok()) {
          return Fail("engine-error", run->name() + config_tag, threads,
                      result.status().ToString());
        }
        std::string diff =
            CompareNormalized(expected, Normalize(result.value(),
                                                  dataset.dict()));
        if (!diff.empty()) {
          return Fail("mismatch", run->name() + config_tag, threads, diff);
        }
        // Shuffle accounting must always reconcile: every shuffled byte is
        // either a shard-local hand-off or a channel crossing.
        for (const mr::JobStats& j : stats.workflow.jobs) {
          if (j.shuffle_local_bytes + j.shuffle_cross_bytes !=
              j.shuffle_bytes) {
            return Fail("shard-invariant", run->name() + config_tag, threads,
                        "job '" + j.name + "': local " +
                            std::to_string(j.shuffle_local_bytes) +
                            " + cross " +
                            std::to_string(j.shuffle_cross_bytes) +
                            " != shuffle " +
                            std::to_string(j.shuffle_bytes));
          }
        }
        if (sc.shards <= 1) {
          cycles[{run->name(), threads}] = stats.workflow.NumCycles();
          baselines[{run->name(), threads}] =
              Baseline{stats.workflow.NumCycles(),
                       stats.workflow.TotalShuffleBytes()};
        } else {
          const Baseline& base = baselines[{run->name(), threads}];
          if (stats.workflow.NumCycles() != base.cycles ||
              stats.workflow.TotalShuffleBytes() != base.shuffle_bytes) {
            return Fail(
                "shard-invariant", run->name() + config_tag, threads,
                "sharded workflow diverged from unsharded baseline: " +
                    std::to_string(stats.workflow.NumCycles()) + " cycles/" +
                    std::to_string(stats.workflow.TotalShuffleBytes()) +
                    " shuffle bytes vs " + std::to_string(base.cycles) +
                    "/" + std::to_string(base.shuffle_bytes));
          }
        }

        // Plan-IR invariant: the physical plan the engine just ran
        // promises its estimated cycle count, and a successful execution
        // must spend exactly that many MR cycles. (Skipped for a
        // fault-wrapped engine — injected faults change the executed
        // workflow by design.)
        if (opts.fault == FaultKind::kNone ||
            run->name() != opts.fault_engine) {
          StatusOr<plan::PhysicalPlan> physical = plan::PlanForEngine(
              run->name(), analyzed.value(), &dataset, eopts);
          if (!physical.ok()) {
            return Fail("plan-cycles", run->name() + config_tag, threads,
                        "planner failed after successful execution: " +
                            physical.status().ToString());
          }
          if (physical->EstimatedCycles() != stats.workflow.NumCycles()) {
            return Fail("plan-cycles", run->name() + config_tag, threads,
                        "plan estimated " +
                            std::to_string(physical->EstimatedCycles()) +
                            " cycles, engine executed " +
                            std::to_string(stats.workflow.NumCycles()));
          }
        }
      }
    }
  }

  if (opts.check_cost_invariants) {
    for (size_t i = 1; i < opts.thread_counts.size(); ++i) {
      int t0 = opts.thread_counts[0];
      int ti = opts.thread_counts[i];
      for (const char* name : {"Hive (Naive)", "Hive (MQO)",
                               "RAPID+ (Naive)", "RAPIDAnalytics"}) {
        if (cycles[{name, t0}] != cycles[{name, ti}]) {
          return Fail("cost-invariant", name, ti,
                      "cycle count changed with exec_threads: " +
                          std::to_string(cycles[{name, t0}]) + " at " +
                          std::to_string(t0) + " threads vs " +
                          std::to_string(cycles[{name, ti}]));
        }
      }
    }
    int t = opts.thread_counts[0];
    if (cycles[{"RAPIDAnalytics", t}] > cycles[{"RAPID+ (Naive)", t}]) {
      return Fail("cost-invariant", "RAPIDAnalytics", t,
                  "took more MR cycles (" +
                      std::to_string(cycles[{"RAPIDAnalytics", t}]) +
                      ") than RAPID+ (" +
                      std::to_string(cycles[{"RAPID+ (Naive)", t}]) + ")");
    }
    // No Hive MQO-vs-naive cycle assertion: sharing scans can legitimately
    // add a materialization cycle on trivial queries; MQO's win is bytes
    // and work, not unconditionally fewer cycles.
  }
  return DiffFailure{};
}

DiffFailure RunServiceDifferential(const FuzzCase& c) {
  rdf::Graph ref_graph = BuildGraph(c.triples);
  analytics::ReferenceEvaluator reference(&ref_graph);
  StatusOr<analytics::BindingTable> ref_result = reference.Evaluate(*c.query);
  if (!ref_result.ok()) {
    return Fail("reference", "", 0, ref_result.status().ToString());
  }
  NormalizedTable expected = Normalize(ref_result.value(), ref_graph.dict());

  engine::Dataset dataset(BuildGraph(c.triples));
  service::ServiceOptions opts;
  opts.workers = 2;
  opts.enable_batching = true;
  opts.batch_window_ms = 1;
  opts.cluster.exec_split_bytes = 4 * 1024;
  service::QueryService svc(opts);
  svc.RegisterDataset(c.dataset, &dataset);
  std::string text = c.query->ToString();

  // Burst: four sessions each submit the query twice, concurrently. The
  // service is free to dedup, batch, or serve from cache — every returned
  // table must still match the reference.
  std::vector<std::future<service::Response>> futures;
  for (int s = 0; s < 4; ++s) {
    int session = svc.OpenSession("fuzz" + std::to_string(s));
    for (int rep = 0; rep < 2; ++rep) {
      StatusOr<std::future<service::Response>> submitted =
          svc.Submit(session, service::QuerySpec{text, c.dataset});
      if (!submitted.ok()) {
        return Fail("service-admit", "", 0, submitted.status().ToString());
      }
      futures.push_back(std::move(*submitted));
    }
  }
  int i = 0;
  for (auto& f : futures) {
    service::Response r = f.get();
    if (!r.result.ok()) {
      return Fail("service-error", "QueryService", 0,
                  "burst query " + std::to_string(i) + ": " +
                      r.result.status().ToString());
    }
    std::string diff =
        CompareNormalized(expected, Normalize(*r.result, dataset.dict()));
    if (!diff.empty()) {
      return Fail("service-mismatch", "QueryService", 0,
                  "burst query " + std::to_string(i) + " (batch_size=" +
                      std::to_string(r.batch_size) +
                      ", cache_hit=" + (r.result_cache_hit ? "1" : "0") +
                      "): " + diff);
    }
    i++;
  }

  // Hot retry: must be a result-cache hit and still identical.
  int session = svc.OpenSession("fuzz-hot");
  service::Response hot =
      svc.Execute(session, service::QuerySpec{text, c.dataset});
  if (!hot.result.ok()) {
    return Fail("service-error", "QueryService", 0,
                "hot retry: " + hot.result.status().ToString());
  }
  std::string diff =
      CompareNormalized(expected, Normalize(*hot.result, dataset.dict()));
  if (!diff.empty()) {
    return Fail("service-mismatch", "QueryService", 0, "hot retry: " + diff);
  }
  if (!hot.result_cache_hit) {
    return Fail("service-cache", "QueryService", 0,
                "hot retry was not served from the result cache");
  }
  return DiffFailure{};
}

}  // namespace rapida::difftest
