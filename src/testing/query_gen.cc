#include "testing/query_gen.h"

#include <algorithm>
#include <set>
#include <utility>

#include "rdf/term.h"

namespace rapida::difftest {

namespace sparql = rapida::sparql;

namespace {

using sparql::AggFunc;
using sparql::Expr;
using sparql::ExprPtr;
using sparql::GroupGraphPattern;
using sparql::SelectItem;
using sparql::SelectQuery;
using sparql::TermOrVar;
using sparql::TriplePattern;

std::string LocalName(const std::string& iri) {
  size_t pos = iri.find_last_of('/');
  return pos == std::string::npos ? iri : iri.substr(pos + 1);
}

/// One property the backbone decided to instantiate on a star: either a
/// fresh object variable or an object pinned to a literal constant.
struct BProp {
  const SchemaProp* prop;
  std::string var;        // object variable base name (constant < 0)
  int constant = -1;      // index into prop->constants, or -1
};

struct BStar {
  int index;  // into schema.stars
  const StarTemplate* tmpl;
  std::string subj;
  int type_index = -1;  // into tmpl->types, or -1
  std::vector<BProp> props;
};

/// The backbone: one connected pattern all groupings are carved out of, so
/// the groupings overlap heavily (the sharing the paper's MQO layer and
/// RAPIDAnalytics exploit).
struct Backbone {
  std::vector<BStar> stars;
  std::vector<const JoinTemplate*> joins;
};

/// The variable both sides of a join bind. Empty prop on a side means the
/// shared node IS that star's subject.
std::string SharedVar(const JoinTemplate& j, const VocabSchema& schema) {
  if (j.prop_b.empty()) return schema.stars[j.star_b].hint;
  if (j.prop_a.empty()) return schema.stars[j.star_a].hint;
  return j.hint;
}

/// Biased low index in [0, n): min of two uniform draws, so constants like
/// ProductType1 (populated in every generated config) are favored over
/// high-index ones that a small config may not materialize.
uint64_t LowBiased(Random* rng, uint64_t n) {
  return std::min(rng->Uniform(n), rng->Uniform(n));
}

Backbone BuildBackbone(const VocabSchema& schema, Random* rng,
                       const GenOptions& opts) {
  Backbone bb;
  std::set<int> chosen;
  chosen.insert(static_cast<int>(rng->Uniform(schema.stars.size())));
  while (static_cast<int>(chosen.size()) < opts.max_stars) {
    std::vector<const JoinTemplate*> frontier;
    for (const JoinTemplate& j : schema.joins) {
      if (chosen.count(j.star_a) != chosen.count(j.star_b)) {
        frontier.push_back(&j);
      }
    }
    if (frontier.empty()) break;
    double grow_p = chosen.size() == 1 ? 0.85 : 0.55;
    if (rng->NextDouble() >= grow_p) break;
    const JoinTemplate* pick = frontier[rng->Uniform(frontier.size())];
    bb.joins.push_back(pick);
    chosen.insert(pick->star_a);
    chosen.insert(pick->star_b);
  }

  for (int idx : chosen) {
    const StarTemplate& tmpl = schema.stars[idx];
    BStar star;
    star.index = idx;
    star.tmpl = &tmpl;
    star.subj = tmpl.hint;
    if (!tmpl.types.empty() && rng->NextDouble() < 0.55) {
      star.type_index = static_cast<int>(LowBiased(rng, tmpl.types.size()));
    }
    for (const SchemaProp& prop : tmpl.props) {
      // A property consumed by a chosen join edge is already bound to the
      // join's shared variable; instantiating it again would just add a
      // duplicate triple under a second name.
      bool join_owned = false;
      for (const JoinTemplate* j : bb.joins) {
        if ((j->star_a == idx && j->prop_a == prop.iri) ||
            (j->star_b == idx && j->prop_b == prop.iri)) {
          join_owned = true;
        }
      }
      if (join_owned) continue;
      double keep_p = prop.kind == SchemaProp::Kind::kNumber ? 0.75 : 0.50;
      if (rng->NextDouble() >= keep_p) continue;
      BProp bp;
      bp.prop = &prop;
      if (prop.kind == SchemaProp::Kind::kDim && !prop.constants.empty() &&
          rng->NextDouble() < 0.30) {
        bp.constant = static_cast<int>(rng->Uniform(prop.constants.size()));
      } else {
        bp.var = LocalName(prop.iri);
      }
      star.props.push_back(bp);
    }
    bb.stars.push_back(std::move(star));
  }

  // A star that is entirely bare and unjoined would leave an empty WHERE.
  bool any_triple = !bb.joins.empty();
  for (const BStar& s : bb.stars) {
    if (s.type_index >= 0 || !s.props.empty()) any_triple = true;
  }
  if (!any_triple) {
    BStar& s = bb.stars[0];
    BProp bp;
    bp.prop = &s.tmpl->props[0];
    bp.var = LocalName(bp.prop->iri);
    s.props.push_back(bp);
  }
  return bb;
}

/// One grouping carved from the backbone: a subset of its stars/joins with
/// some properties dropped, private variables suffixed, plus aggregates.
struct GroupingPlan {
  std::vector<BStar> stars;
  std::vector<const JoinTemplate*> joins;
  std::vector<std::string> keys;  // base names, kept un-suffixed
  std::string suffix;             // "" for single-grouping queries
  std::string measure;            // base name, empty if none
  const SchemaProp* measure_prop = nullptr;
};

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// Drops backbone stars/props this grouping does not need, never touching
/// anything that binds a grouping key or the measure.
void PruneGrouping(const VocabSchema& schema, Random* rng, GroupingPlan* g) {
  const std::vector<std::string>& keys = g->keys;
  auto needed = [&](const std::string& v) {
    return Contains(keys, v) || v == g->measure;
  };
  for (int round = 0; round < 2; ++round) {
    for (size_t si = 0; si < g->stars.size() && g->stars.size() > 1; ++si) {
      const BStar& star = g->stars[si];
      std::vector<size_t> incident;
      for (size_t ji = 0; ji < g->joins.size(); ++ji) {
        if (g->joins[ji]->star_a == star.index ||
            g->joins[ji]->star_b == star.index) {
          incident.push_back(ji);
        }
      }
      if (incident.size() != 1) continue;  // only prune tree leaves
      bool blocked = needed(star.subj) ||
                     needed(SharedVar(*g->joins[incident[0]], schema));
      for (const BProp& p : star.props) {
        if (p.constant < 0 && needed(p.var)) blocked = true;
      }
      if (blocked || rng->NextDouble() >= 0.40) continue;
      g->joins.erase(g->joins.begin() + incident[0]);
      g->stars.erase(g->stars.begin() + si);
      --si;
    }
  }
  for (BStar& star : g->stars) {
    if (star.type_index >= 0 && rng->NextDouble() < 0.20) {
      star.type_index = -1;
    }
    for (size_t pi = 0; pi < star.props.size(); ++pi) {
      const BProp& p = star.props[pi];
      if (p.constant < 0 && needed(p.var)) continue;
      if (rng->NextDouble() < 0.35) {
        star.props.erase(star.props.begin() + pi);
        --pi;
      }
    }
  }
  // Guard: pruning must not leave an empty pattern.
  bool any = !g->joins.empty();
  for (const BStar& s : g->stars) {
    if (s.type_index >= 0 || !s.props.empty()) any = true;
  }
  if (!any) {
    BStar& s = g->stars[0];
    BProp bp;
    bp.prop = &s.tmpl->props[0];
    bp.var = LocalName(bp.prop->iri);
    s.props.push_back(bp);
  }
}

/// Assembles the grouping's WHERE pattern, renaming every variable that is
/// not a grouping key with the grouping's suffix so different groupings
/// share exactly their join keys (the paper's MG variable convention).
GroupGraphPattern AssemblePattern(const VocabSchema& schema,
                                 const GroupingPlan& g) {
  auto nm = [&](const std::string& base) {
    return Contains(g.keys, base) ? base : base + g.suffix;
  };
  GroupGraphPattern ggp;
  for (const BStar& star : g.stars) {
    if (star.type_index >= 0) {
      TriplePattern tp;
      tp.s = TermOrVar::Var(nm(star.subj));
      tp.p = TermOrVar::Const(rdf::Term::Iri(rdf::kRdfType));
      tp.o = TermOrVar::Const(rdf::Term::Iri(star.tmpl->types[star.type_index]));
      ggp.triples.push_back(std::move(tp));
    }
    for (const BProp& p : star.props) {
      TriplePattern tp;
      tp.s = TermOrVar::Var(nm(star.subj));
      tp.p = TermOrVar::Const(rdf::Term::Iri(p.prop->iri));
      if (p.constant >= 0) {
        tp.o = TermOrVar::Const(
            rdf::Term::Literal(p.prop->constants[p.constant]));
      } else {
        tp.o = TermOrVar::Var(nm(p.var));
      }
      ggp.triples.push_back(std::move(tp));
    }
  }
  for (const JoinTemplate* j : g.joins) {
    std::string shared = nm(SharedVar(*j, schema));
    if (!j->prop_a.empty()) {
      TriplePattern tp;
      tp.s = TermOrVar::Var(nm(schema.stars[j->star_a].hint));
      tp.p = TermOrVar::Const(rdf::Term::Iri(j->prop_a));
      tp.o = TermOrVar::Var(shared);
      ggp.triples.push_back(std::move(tp));
    }
    if (!j->prop_b.empty()) {
      TriplePattern tp;
      tp.s = TermOrVar::Var(nm(schema.stars[j->star_b].hint));
      tp.p = TermOrVar::Const(rdf::Term::Iri(j->prop_b));
      tp.o = TermOrVar::Var(shared);
      ggp.triples.push_back(std::move(tp));
    }
  }
  return ggp;
}

ExprPtr MakeAgg(AggFunc f, ExprPtr arg) {
  ExprPtr e = Expr::MakeAggregate(f, std::move(arg), /*distinct=*/false);
  e->regex_pattern = " ";  // parser default separator; keeps round-trip exact
  return e;
}

ExprPtr IntLiteral(int64_t v) {
  return Expr::MakeLiteral(
      rdf::Term::Literal(std::to_string(v), rdf::kXsdInteger));
}

const char* AggShortName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "cnt";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
    case AggFunc::kGroupConcat: return "gc";
    default: return "agg";
  }
}

/// Builds one grouping as a SelectQuery (the whole query when
/// single-grouping, a WHERE-subquery otherwise). Records which aliases are
/// COUNTs over keyed groupings (safe division denominators) in
/// `count_aliases` and all numeric aggregate aliases in `numeric_aliases`.
std::unique_ptr<SelectQuery> BuildGrouping(
    const VocabSchema& schema, Random* rng, const GroupingPlan& g,
    const GenOptions& opts, int ordinal,
    std::vector<std::string>* numeric_aliases,
    std::vector<std::string>* count_aliases) {
  auto q = std::make_unique<SelectQuery>();
  q->where = AssemblePattern(schema, g);

  std::string m = g.measure.empty() ? "" : g.measure + g.suffix;
  if (!m.empty() && rng->NextDouble() < 0.40) {
    static const char* kOps[] = {">", ">=", "<", "<="};
    const char* op = kOps[rng->Uniform(4)];
    int64_t k = rng->UniformRange(
        static_cast<int64_t>(g.measure_prop->lo),
        static_cast<int64_t>(g.measure_prop->hi));
    q->where.filters.push_back(
        Expr::MakeCompare(op, Expr::MakeVar(m), IntLiteral(k)));
    if (rng->NextDouble() < 0.15) {
      // Opposite-direction bound => a range predicate on the measure.
      const char* op2 = (op[0] == '<') ? ">=" : "<=";
      int64_t k2 = rng->UniformRange(
          static_cast<int64_t>(g.measure_prop->lo),
          static_cast<int64_t>(g.measure_prop->hi));
      q->where.filters.push_back(
          Expr::MakeCompare(op2, Expr::MakeVar(m), IntLiteral(k2)));
    }
  }

  // ---- OPTIONAL tails and UNION arms ----------------------------------
  // Anchor stars: those whose (renamed) subject actually appears in the
  // required pattern (a bare star contributes no triples, so its subject
  // would be unbound and the analyzer would reject the tail/arm).
  auto nm = [&g](const std::string& base) {
    return Contains(g.keys, base) ? base : base + g.suffix;
  };
  std::set<std::string> bound_subjects;
  for (const TriplePattern& tp : q->where.triples) {
    if (tp.s.is_var) bound_subjects.insert(tp.s.var);
  }
  std::vector<const BStar*> anchors;
  for (const BStar& star : g.stars) {
    if (bound_subjects.count(nm(star.subj)) > 0) anchors.push_back(&star);
  }
  std::vector<std::pair<std::string, const SchemaProp*>> opt_numeric;
  std::vector<std::string> opt_dims;
  if (!anchors.empty() && rng->NextDouble() < opts.optional_bias) {
    int num_opt = 1 + static_cast<int>(rng->NextDouble() < 0.25);
    for (int oi = 0; oi < num_opt; ++oi) {
      const BStar& star = *anchors[rng->Uniform(anchors.size())];
      std::vector<const SchemaProp*> pool;
      for (const SchemaProp& p : star.tmpl->props) pool.push_back(&p);
      for (size_t i = pool.size(); i > 1; --i) {
        std::swap(pool[i - 1], pool[rng->Uniform(i)]);
      }
      GroupGraphPattern opt;
      std::vector<std::pair<std::string, const SchemaProp*>> local_numeric;
      std::set<std::string> named;
      size_t want = 1 + static_cast<size_t>(rng->NextDouble() < 0.30);
      for (const SchemaProp* p : pool) {
        if (opt.triples.size() >= want) break;
        // The "_opt<i>" marker guarantees freshness against every pattern
        // variable and every other tail (the analyzer requires optional
        // object variables to be bound nowhere else).
        std::string v =
            LocalName(p->iri) + "_opt" + std::to_string(oi) + g.suffix;
        if (!named.insert(v).second) continue;
        TriplePattern tp;
        tp.s = TermOrVar::Var(nm(star.subj));
        tp.p = TermOrVar::Const(rdf::Term::Iri(p->iri));
        tp.o = TermOrVar::Var(v);
        opt.triples.push_back(std::move(tp));
        if (p->kind == SchemaProp::Kind::kNumber) {
          local_numeric.emplace_back(v, p);
          opt_numeric.emplace_back(v, p);
        } else {
          opt_dims.push_back(v);
        }
      }
      if (opt.triples.empty()) continue;
      if (!local_numeric.empty() && rng->NextDouble() < 0.35) {
        const auto& mp = local_numeric[rng->Uniform(local_numeric.size())];
        static const char* kOps[] = {">", ">=", "<", "<="};
        opt.filters.push_back(Expr::MakeCompare(
            kOps[rng->Uniform(4)], Expr::MakeVar(mp.first),
            IntLiteral(
                rng->UniformRange(static_cast<int64_t>(mp.second->lo),
                                  static_cast<int64_t>(mp.second->hi)))));
      }
      q->where.optionals.push_back(std::move(opt));
    }
    // A group-level FILTER over an optional variable: SPARQL evaluates it
    // after the left joins, so rows where the variable stayed unbound drop.
    if (!opt_numeric.empty() && rng->NextDouble() < 0.25) {
      const auto& mp = opt_numeric[rng->Uniform(opt_numeric.size())];
      static const char* kOps[] = {">", ">=", "<", "<="};
      q->where.filters.push_back(Expr::MakeCompare(
          kOps[rng->Uniform(4)], Expr::MakeVar(mp.first),
          IntLiteral(rng->UniformRange(static_cast<int64_t>(mp.second->lo),
                                       static_cast<int64_t>(mp.second->hi)))));
    }
  }
  if (!anchors.empty() && rng->NextDouble() < opts.union_bias) {
    int arms = 2 + static_cast<int>(rng->NextDouble() < 0.25);
    for (int ai = 0; ai < arms; ++ai) {
      const BStar& star = *anchors[rng->Uniform(anchors.size())];
      GroupGraphPattern arm;
      double pick = rng->NextDouble();
      std::vector<const SchemaProp*> dim_consts;
      for (const SchemaProp& p : star.tmpl->props) {
        if (p.kind == SchemaProp::Kind::kDim && !p.constants.empty()) {
          dim_consts.push_back(&p);
        }
      }
      if (pick < 0.50 && !dim_consts.empty()) {
        // Constant-pinned arm: restrict a dimension to one value.
        const SchemaProp* p = dim_consts[rng->Uniform(dim_consts.size())];
        TriplePattern tp;
        tp.s = TermOrVar::Var(nm(star.subj));
        tp.p = TermOrVar::Const(rdf::Term::Iri(p->iri));
        tp.o = TermOrVar::Const(rdf::Term::Literal(
            p->constants[LowBiased(rng, p->constants.size())]));
        arm.triples.push_back(std::move(tp));
      } else if (pick < 0.75 && !star.tmpl->types.empty()) {
        TriplePattern tp;
        tp.s = TermOrVar::Var(nm(star.subj));
        tp.p = TermOrVar::Const(rdf::Term::Iri(rdf::kRdfType));
        tp.o = TermOrVar::Const(rdf::Term::Iri(
            star.tmpl->types[LowBiased(rng, star.tmpl->types.size())]));
        arm.triples.push_back(std::move(tp));
      }
      if (arm.triples.empty()) {
        // Fresh-variable arm: require some property, optionally filtered.
        const SchemaProp& p =
            star.tmpl->props[rng->Uniform(star.tmpl->props.size())];
        std::string v =
            LocalName(p.iri) + "_u" + std::to_string(ai) + g.suffix;
        TriplePattern tp;
        tp.s = TermOrVar::Var(nm(star.subj));
        tp.p = TermOrVar::Const(rdf::Term::Iri(p.iri));
        tp.o = TermOrVar::Var(v);
        arm.triples.push_back(std::move(tp));
        if (p.kind == SchemaProp::Kind::kNumber && rng->NextDouble() < 0.50) {
          static const char* kOps[] = {">", ">=", "<", "<="};
          arm.filters.push_back(Expr::MakeCompare(
              kOps[rng->Uniform(4)], Expr::MakeVar(v),
              IntLiteral(rng->UniformRange(static_cast<int64_t>(p.lo),
                                           static_cast<int64_t>(p.hi)))));
        }
      }
      q->where.unions.push_back(std::move(arm));
    }
  }

  for (const std::string& k : g.keys) {
    q->items.emplace_back(k, nullptr);
    q->group_by.push_back(k);
  }
  // A NULL-capable group key: grouping by an optional dimension groups the
  // unmatched rows under the unbound key.
  if (!opt_dims.empty() && rng->NextDouble() < 0.35) {
    const std::string& v = opt_dims[rng->Uniform(opt_dims.size())];
    q->items.emplace_back(v, nullptr);
    q->group_by.push_back(v);
  }

  // Aggregate-argument pool: required-pattern and OPTIONAL variables only.
  // Union-arm fresh variables are bound in just their own branch, and the
  // analyzer (correctly) rejects aggregating over those.
  std::vector<std::string> pat_vars;
  auto collect_pattern_vars = [&pat_vars](
                                  const std::vector<TriplePattern>& ts) {
    for (const TriplePattern& tp : ts) {
      if (tp.s.is_var && !Contains(pat_vars, tp.s.var)) {
        pat_vars.push_back(tp.s.var);
      }
      if (tp.o.is_var && !Contains(pat_vars, tp.o.var)) {
        pat_vars.push_back(tp.o.var);
      }
    }
  };
  collect_pattern_vars(q->where.triples);
  for (const GroupGraphPattern& opt : q->where.optionals) {
    collect_pattern_vars(opt.triples);
  }
  std::string ord = std::to_string(ordinal);
  std::set<AggFunc> used_on_measure;
  std::string count_alias;
  int num_aggs = 1;
  if (rng->NextDouble() < 0.45) ++num_aggs;
  if (num_aggs == 2 && rng->NextDouble() < 0.25) ++num_aggs;
  for (int a = 0; a < num_aggs; ++a) {
    AggFunc func;
    ExprPtr arg;
    if (!m.empty()) {
      static const AggFunc kFuncs[] = {AggFunc::kCount, AggFunc::kSum,
                                       AggFunc::kAvg, AggFunc::kMin,
                                       AggFunc::kMax};
      func = kFuncs[rng->Uniform(5)];
      if (used_on_measure.count(func)) continue;
      used_on_measure.insert(func);
      // COUNT occasionally counts * or some other bound variable instead.
      if (func == AggFunc::kCount && rng->NextDouble() < 0.40) {
        arg = rng->NextDouble() < 0.5
                  ? nullptr
                  : Expr::MakeVar(pat_vars[rng->Uniform(pat_vars.size())]);
      } else {
        arg = Expr::MakeVar(m);
      }
    } else {
      func = AggFunc::kCount;
      if (used_on_measure.count(func)) continue;
      used_on_measure.insert(func);
      arg = rng->NextDouble() < 0.5
                ? nullptr
                : Expr::MakeVar(pat_vars[rng->Uniform(pat_vars.size())]);
    }
    std::string alias = std::string(AggShortName(func)) + ord;
    q->items.emplace_back(alias, MakeAgg(func, std::move(arg)));
    numeric_aliases->push_back(alias);
    if (func == AggFunc::kCount) {
      count_alias = alias;
      if (!g.keys.empty()) count_aliases->push_back(alias);
    }
  }
  // Rarely exercise the canonicalized GROUP_CONCAT path too.
  if (rng->NextDouble() < 0.08) {
    std::string alias = std::string("gc") + ord;
    q->items.emplace_back(
        alias, MakeAgg(AggFunc::kGroupConcat,
                       Expr::MakeVar(pat_vars[rng->Uniform(pat_vars.size())])));
  }
  // An aggregate over an optional variable: unbound cells are skipped, and
  // a group can be all-unbound. Not registered as a top-level arithmetic
  // operand (its value can be 0 or unbound).
  if (!opt_numeric.empty() && rng->NextDouble() < 0.40) {
    static const AggFunc kOptFuncs[] = {AggFunc::kCount, AggFunc::kSum,
                                        AggFunc::kMin, AggFunc::kMax};
    AggFunc f = kOptFuncs[rng->Uniform(4)];
    const auto& mp = opt_numeric[rng->Uniform(opt_numeric.size())];
    q->items.emplace_back(std::string("o") + AggShortName(f) + ord,
                          MakeAgg(f, Expr::MakeVar(mp.first)));
  }

  if (!count_alias.empty() && rng->NextDouble() < 0.15) {
    q->having = Expr::MakeCompare(">", Expr::MakeVar(count_alias),
                                  IntLiteral(1 + rng->Uniform(4)));
  }
  return q;
}

void AddModifiers(SelectQuery* q, Random* rng) {
  if (rng->NextDouble() < 0.08) q->distinct = true;
  std::vector<std::string> cols = q->ColumnNames();
  if (rng->NextDouble() < 0.18) {
    // LIMIT requires a total order: ORDER BY every output column, so the
    // cut is insensitive to each engine's (stable-sort) pre-order.
    std::vector<std::string> shuffled = cols;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng->Uniform(i)]);
    }
    for (const std::string& c : shuffled) {
      q->order_by.push_back({c, rng->NextDouble() < 0.35});
    }
    q->limit = 1 + static_cast<int64_t>(rng->Uniform(15));
    if (rng->NextDouble() < 0.30) {
      q->offset = 1 + static_cast<int64_t>(rng->Uniform(3));
    }
  } else if (rng->NextDouble() < 0.25) {
    size_t n = 1 + rng->Uniform(cols.size());
    std::vector<std::string> shuffled = cols;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng->Uniform(i)]);
    }
    for (size_t i = 0; i < n; ++i) {
      q->order_by.push_back({shuffled[i], rng->NextDouble() < 0.35});
    }
  }
}

}  // namespace

std::unique_ptr<SelectQuery> GenerateQuery(const VocabSchema& schema,
                                           Random* rng,
                                           const GenOptions& opts) {
  Backbone bb = BuildBackbone(schema, rng, opts);

  // Dimension pool: unpinned dim-property objects, object-object join
  // variables, and (rarely) star subjects.
  std::vector<std::string> dims;
  std::vector<std::pair<std::string, const SchemaProp*>> measures;
  for (const BStar& star : bb.stars) {
    for (const BProp& p : star.props) {
      if (p.constant >= 0) continue;
      if (p.prop->kind == SchemaProp::Kind::kNumber) {
        measures.emplace_back(p.var, p.prop);
      } else {
        dims.push_back(p.var);
      }
    }
    if (rng->NextDouble() < 0.20) dims.push_back(star.subj);
  }
  for (const JoinTemplate* j : bb.joins) {
    if (!j->prop_a.empty() && !j->prop_b.empty()) {
      dims.push_back(SharedVar(*j, schema));
    }
  }
  for (size_t i = dims.size(); i > 1; --i) {
    std::swap(dims[i - 1], dims[rng->Uniform(i)]);
  }
  size_t max_keys = std::min<size_t>(3, dims.size());
  std::vector<std::string> global_keys(
      dims.begin(),
      dims.begin() + (max_keys == 0 ? 0 : 1 + rng->Uniform(max_keys)));

  int num_groupings = 1;
  if (opts.max_groupings > 1 &&
      rng->NextDouble() < opts.multi_grouping_bias) {
    num_groupings = 2 + static_cast<int>(rng->Uniform(
                            std::max(1, opts.max_groupings - 1)));
    num_groupings = std::min(num_groupings, opts.max_groupings);
  }
  bool multi = num_groupings > 1;

  std::vector<std::string> numeric_aliases;
  std::vector<std::string> count_aliases;
  std::vector<std::unique_ptr<SelectQuery>> groupings;
  std::set<std::string> keys_used;  // base key vars used by >= 1 grouping
  for (int i = 0; i < num_groupings; ++i) {
    GroupingPlan g;
    g.stars = bb.stars;
    g.joins = bb.joins;
    g.suffix = multi ? std::to_string(i + 1) : "";
    for (size_t k = 0; k < global_keys.size(); ++k) {
      double keep_p = k == 0 ? 0.85 : 0.50;
      if (rng->NextDouble() < keep_p) g.keys.push_back(global_keys[k]);
    }
    if (!measures.empty() && rng->NextDouble() < 0.80) {
      const auto& mp = measures[rng->Uniform(measures.size())];
      g.measure = mp.first;
      g.measure_prop = mp.second;
    }
    PruneGrouping(schema, rng, &g);
    for (const std::string& k : g.keys) keys_used.insert(k);
    groupings.push_back(BuildGrouping(schema, rng, g, opts, i + 1,
                                      &numeric_aliases, &count_aliases));
  }

  if (!multi) {
    std::unique_ptr<SelectQuery> q = std::move(groupings[0]);
    AddModifiers(q.get(), rng);
    return q;
  }

  auto q = std::make_unique<SelectQuery>();
  std::set<std::string> picked;
  for (const std::string& k : global_keys) {
    if (keys_used.count(k) && rng->NextDouble() < 0.90) {
      q->items.emplace_back(k, nullptr);
      picked.insert(k);
    }
  }
  for (const auto& sub : groupings) {
    for (const SelectItem& item : sub->items) {
      if (item.expr == nullptr || picked.count(item.name)) continue;
      if (rng->NextDouble() < 0.75) {
        q->items.emplace_back(item.name, nullptr);
        picked.insert(item.name);
      }
    }
  }
  // The paper's MA shape: a top-level arithmetic expression over grouping
  // outputs. Division only with a keyed COUNT denominator (never zero).
  if (numeric_aliases.size() >= 2 && rng->NextDouble() < 0.30) {
    std::string a = numeric_aliases[rng->Uniform(numeric_aliases.size())];
    std::string b;
    const char* op;
    if (!count_aliases.empty() && rng->NextDouble() < 0.50) {
      b = count_aliases[rng->Uniform(count_aliases.size())];
      op = "/";
    } else {
      static const char* kOps[] = {"+", "-", "*"};
      op = kOps[rng->Uniform(3)];
      b = numeric_aliases[rng->Uniform(numeric_aliases.size())];
    }
    if (a != b || op[0] != '/') {
      q->items.emplace_back(
          "expr" + std::to_string(q->items.size()),
          Expr::MakeArith(op, Expr::MakeVar(a), Expr::MakeVar(b)));
    }
  }
  if (q->items.empty()) {
    // Every candidate lost its coin flip: keep the first aggregate so the
    // top level projects something.
    for (const SelectItem& item : groupings[0]->items) {
      if (item.expr != nullptr) {
        q->items.emplace_back(item.name, nullptr);
        break;
      }
    }
  }
  for (auto& sub : groupings) {
    q->where.subqueries.push_back(std::move(sub));
  }
  AddModifiers(q.get(), rng);
  return q;
}

std::unique_ptr<SelectQuery> GenerateAnyQuery(Random* rng,
                                              std::string* dataset_out,
                                              const GenOptions& opts) {
  const std::vector<VocabSchema>& schemas = AllSchemas();
  const VocabSchema& schema = schemas[rng->Uniform(schemas.size())];
  if (dataset_out != nullptr) *dataset_out = schema.dataset;
  return GenerateQuery(schema, rng, opts);
}

}  // namespace rapida::difftest
