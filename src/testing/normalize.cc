#include "testing/normalize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string_view>

#include "sparql/ast.h"
#include "util/string_util.h"

namespace rapida::difftest {

bool ApproxEqual(double a, double b, double rel_tol, double abs_tol) {
  if (a == b) return true;  // covers infinities and exact matches
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

namespace {

NormalizedCell DecodeCell(rdf::TermId id, const rdf::Dictionary& dict) {
  NormalizedCell cell;
  if (id == rdf::kInvalidTermId) {
    cell.is_unbound = true;
    return cell;
  }
  if (auto num = dict.AsNumber(id)) {
    cell.is_number = true;
    cell.number = *num;
    return cell;
  }
  cell.text = sparql::ToSparqlText(dict.Get(id));
  return cell;
}

/// Total order for canonical row sorting: unbound before everything, then
/// numbers before text, numeric by value, text lexically.
/// (Approximately-equal numbers sort adjacently, so the pairwise tolerant
/// comparison below still lines rows up.)
int CompareCell(const NormalizedCell& a, const NormalizedCell& b) {
  if (a.is_unbound != b.is_unbound) return a.is_unbound ? -1 : 1;
  if (a.is_unbound) return 0;
  if (a.is_number != b.is_number) return a.is_number ? -1 : 1;
  if (a.is_number) {
    if (a.number < b.number) return -1;
    if (a.number > b.number) return 1;
    return 0;
  }
  return a.text.compare(b.text);
}

int CompareRow(const std::vector<NormalizedCell>& a,
               const std::vector<NormalizedCell>& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    int c = CompareCell(a[i], b[i]);
    if (c != 0) return c;
  }
  return 0;
}

bool CellsMatch(const NormalizedCell& a, const NormalizedCell& b) {
  if (a.is_unbound != b.is_unbound) return false;
  if (a.is_unbound) return true;
  if (a.is_number != b.is_number) return false;
  if (a.is_number) return ApproxEqual(a.number, b.number);
  return a.text == b.text;
}

std::string CellToString(const NormalizedCell& c) {
  if (c.is_unbound) return "UNBOUND";
  if (!c.is_number) return c.text;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", c.number);
  return buf;
}

std::string RowToString(const std::vector<NormalizedCell>& row) {
  std::string out = "[";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += CellToString(row[i]);
  }
  return out + "]";
}

}  // namespace

NormalizedTable Normalize(const analytics::BindingTable& table,
                          const rdf::Dictionary& dict) {
  NormalizedTable out;
  std::vector<size_t> order(table.vars().size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return table.vars()[a] < table.vars()[b];
  });
  for (size_t i : order) out.columns.push_back(table.vars()[i]);
  out.rows.reserve(table.NumRows());
  for (const std::vector<rdf::TermId>& row : table.rows()) {
    std::vector<NormalizedCell> cells;
    cells.reserve(order.size());
    for (size_t i : order) cells.push_back(DecodeCell(row[i], dict));
    out.rows.push_back(std::move(cells));
  }
  std::sort(out.rows.begin(), out.rows.end(),
            [](const auto& a, const auto& b) { return CompareRow(a, b) < 0; });
  return out;
}

std::string CompareNormalized(const NormalizedTable& expected,
                              const NormalizedTable& actual) {
  if (expected.columns != actual.columns) {
    auto join = [](const std::vector<std::string>& v) {
      std::string s;
      for (const auto& c : v) s += (s.empty() ? "" : " ") + c;
      return s;
    };
    return "column mismatch: expected {" + join(expected.columns) +
           "} got {" + join(actual.columns) + "}";
  }
  if (expected.rows.size() != actual.rows.size()) {
    return "row count mismatch: expected " +
           std::to_string(expected.rows.size()) + " got " +
           std::to_string(actual.rows.size());
  }
  for (size_t r = 0; r < expected.rows.size(); ++r) {
    const auto& e = expected.rows[r];
    const auto& a = actual.rows[r];
    for (size_t c = 0; c < e.size(); ++c) {
      if (!CellsMatch(e[c], a[c])) {
        return "row " + std::to_string(r) + " column '" +
               expected.columns[c] + "' mismatch: expected " +
               RowToString(e) + " got " + RowToString(a);
      }
    }
  }
  return "";
}

std::string SerializeNormalized(const NormalizedTable& table) {
  std::string out = "columns";
  for (const std::string& c : table.columns) out += " " + c;
  out += "\n";
  for (const auto& row : table.rows) {
    out += "row";
    for (const NormalizedCell& cell : row) {
      out += "\t";
      if (cell.is_unbound) {
        out += "U";
      } else if (cell.is_number) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "N%.17g", cell.number);
        out += buf;
      } else {
        out += "T";
        for (char ch : cell.text) {
          switch (ch) {
            case '\t': out += "\\t"; break;
            case '\n': out += "\\n"; break;
            case '\\': out += "\\\\"; break;
            default: out += ch;
          }
        }
      }
    }
    out += "\n";
  }
  return out;
}

bool ParseNormalized(const std::string& text, NormalizedTable* out) {
  *out = NormalizedTable();
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line.rfind("columns", 0) != 0) return false;
  {
    std::istringstream cols(line.substr(7));
    std::string c;
    while (cols >> c) out->columns.push_back(c);
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Fields are tab-separated views into the line; nothing is copied until
    // a cell's decoded payload is built.
    FieldTokenizer fields(line, '\t');
    std::string_view field;
    if (!fields.Next(&field) || field != "row") return false;
    std::vector<NormalizedCell> row;
    while (fields.Next(&field)) {
      if (field.empty()) return false;
      NormalizedCell cell;
      if (field[0] == 'U' && field.size() == 1) {
        cell.is_unbound = true;
      } else if (field[0] == 'N') {
        cell.is_number = true;
        // strtod wants NUL termination; number fields are tiny, so one
        // short-string copy per numeric cell is the whole cost.
        cell.number = std::strtod(std::string(field.substr(1)).c_str(),
                                  nullptr);
      } else if (field[0] == 'T') {
        for (size_t i = 1; i < field.size(); ++i) {
          if (field[i] == '\\' && i + 1 < field.size()) {
            ++i;
            cell.text += field[i] == 't' ? '\t'
                         : field[i] == 'n' ? '\n'
                                           : field[i];
          } else {
            cell.text += field[i];
          }
        }
      } else {
        return false;
      }
      row.push_back(std::move(cell));
    }
    if (row.size() != out->columns.size()) return false;
    out->rows.push_back(std::move(row));
  }
  return true;
}

}  // namespace rapida::difftest
