#include "testing/vocab.h"

#include "util/logging.h"
#include "workload/bsbm.h"
#include "workload/chem2bio.h"
#include "workload/pubmed.h"

namespace rapida::difftest {

namespace {

std::string B(const std::string& local) {
  return std::string(workload::kBsbmNs) + local;
}
std::string C(const std::string& local) {
  return std::string(workload::kChemNs) + local;
}
std::string P(const std::string& local) {
  return std::string(workload::kPubmedNs) + local;
}

std::vector<VocabSchema> BuildSchemas() {
  std::vector<VocabSchema> out;

  // BSBM: offer -> product (typed, labeled, multi-valued features) and
  // offer -> vendor -> country. Price is the numeric measure (paper G1-G4,
  // MG1-MG4, AQ1 shapes).
  {
    VocabSchema s;
    s.dataset = "bsbm";
    StarTemplate offer;
    offer.hint = "off";
    offer.props.push_back({B("price"), SchemaProp::Kind::kNumber, {}, 50,
                           10000});
    StarTemplate product;
    product.hint = "p";
    for (int t = 1; t <= 6; ++t) {
      product.types.push_back(B("ProductType" + std::to_string(t)));
    }
    product.props.push_back({B("label"), SchemaProp::Kind::kDim, {}, 0, 0});
    product.props.push_back(
        {B("productFeature"), SchemaProp::Kind::kDim, {}, 0, 0});
    StarTemplate vendor;
    vendor.hint = "v";
    vendor.props.push_back({B("country"), SchemaProp::Kind::kDim, {}, 0, 0});
    s.stars = {offer, product, vendor};
    s.joins.push_back({0, B("product"), 1, "", "p"});
    s.joins.push_back({0, B("vendor"), 2, "", "v"});
    out.push_back(std::move(s));
  }

  // Chem2Bio2RDF: bioassays join genes on the gi value (object-object),
  // drug-gene interactions join genes on the symbol (object-object),
  // pathways and Medline publications point at the gene entry subject
  // (paper G5-G9, MG6-MG10 shapes). Score is the numeric measure.
  {
    VocabSchema s;
    s.dataset = "chem";
    StarTemplate assay;
    assay.hint = "b";
    assay.props.push_back({C("CID"), SchemaProp::Kind::kDim, {}, 0, 0});
    assay.props.push_back(
        {C("outcome"), SchemaProp::Kind::kDim, {"active", "inactive"}, 0, 0});
    assay.props.push_back({C("Score"), SchemaProp::Kind::kNumber, {}, 0, 99});
    StarTemplate gene;
    gene.hint = "u";
    gene.props.push_back({C("gi"), SchemaProp::Kind::kDim, {}, 0, 0});
    gene.props.push_back(
        {C("geneSymbol"), SchemaProp::Kind::kDim, {}, 0, 0});
    StarTemplate interaction;
    interaction.hint = "di";
    interaction.props.push_back({C("DBID"), SchemaProp::Kind::kDim, {}, 0, 0});
    StarTemplate pathway;
    pathway.hint = "pw";
    pathway.props.push_back(
        {C("Pathway_name"), SchemaProp::Kind::kDim, {}, 0, 0});
    pathway.props.push_back(
        {C("pathwayid"), SchemaProp::Kind::kDim, {}, 0, 0});
    StarTemplate publication;
    publication.hint = "pmid";
    publication.props.push_back(
        {C("side_effect"), SchemaProp::Kind::kDim, {}, 0, 0});
    publication.props.push_back(
        {C("disease"), SchemaProp::Kind::kDim, {}, 0, 0});
    s.stars = {assay, gene, interaction, pathway, publication};
    s.joins.push_back({0, C("assay_gi"), 1, C("gi"), "gi"});
    s.joins.push_back({2, C("gene"), 1, C("geneSymbol"), "g"});
    s.joins.push_back({3, C("protein"), 1, "", "u"});
    s.joins.push_back({4, C("medline_gene"), 1, "", "u"});
    out.push_back(std::move(s));
  }

  // PubMed: publications with heavily multi-valued mesh/chemical/author
  // properties, grants carrying agency + country (paper MG11-MG18 shapes).
  // No numeric measure — the catalog queries are all COUNTs here too.
  {
    VocabSchema s;
    s.dataset = "pubmed";
    StarTemplate pub;
    pub.hint = "pub";
    pub.props.push_back({P("pub_type"), SchemaProp::Kind::kDim,
                         {"Journal Article", "News"}, 0, 0});
    pub.props.push_back({P("journal"), SchemaProp::Kind::kDim, {}, 0, 0});
    pub.props.push_back(
        {P("mesh_heading"), SchemaProp::Kind::kDim, {}, 0, 0});
    pub.props.push_back({P("chemical"), SchemaProp::Kind::kDim, {}, 0, 0});
    StarTemplate grant;
    grant.hint = "g";
    grant.props.push_back(
        {P("grant_agency"), SchemaProp::Kind::kDim, {}, 0, 0});
    grant.props.push_back(
        {P("grant_country"), SchemaProp::Kind::kDim, {}, 0, 0});
    StarTemplate author;
    author.hint = "a";
    author.props.push_back({P("last_name"), SchemaProp::Kind::kDim, {}, 0, 0});
    s.stars = {pub, grant, author};
    s.joins.push_back({0, P("grant"), 1, "", "g"});
    s.joins.push_back({0, P("author"), 2, "", "a"});
    out.push_back(std::move(s));
  }

  return out;
}

}  // namespace

const std::vector<VocabSchema>& AllSchemas() {
  static const auto* kSchemas = new std::vector<VocabSchema>(BuildSchemas());
  return *kSchemas;
}

const VocabSchema& SchemaFor(const std::string& dataset) {
  for (const VocabSchema& s : AllSchemas()) {
    if (s.dataset == dataset) return s;
  }
  RAPIDA_LOG(Error) << "no fuzz schema for dataset '" << dataset
                    << "', using bsbm";
  return AllSchemas()[0];
}

rdf::Graph GenerateFuzzGraph(const std::string& dataset, Random* rng,
                             bool multival) {
  // [3, 10] objects per predicate-subject pair, drawn independently per
  // multi-valued predicate — the d-representation stress regime.
  auto fanout = [rng] { return 3.0 + rng->NextDouble() * 7.0; };
  if (dataset == "chem") {
    workload::ChemConfig cfg;
    cfg.num_compounds = 20 + static_cast<int>(rng->Uniform(40));
    cfg.num_genes = 8 + static_cast<int>(rng->Uniform(20));
    cfg.num_drugs = 6 + static_cast<int>(rng->Uniform(12));
    cfg.num_pathways = 3 + static_cast<int>(rng->Uniform(8));
    cfg.num_side_effects = 5 + static_cast<int>(rng->Uniform(10));
    cfg.num_diseases = 4 + static_cast<int>(rng->Uniform(8));
    cfg.num_assays = 50 + static_cast<int>(rng->Uniform(150));
    cfg.num_sider_records = 20 + static_cast<int>(rng->Uniform(60));
    cfg.num_targets = 10 + static_cast<int>(rng->Uniform(40));
    cfg.num_publications = 80 + static_cast<int>(rng->Uniform(250));
    if (multival) {
      // Chem's triples are single-valued per record; its fanout lives in
      // the reverse direction (Medline records per gene / side effect).
      // Pin 3-10 publications per gene.
      cfg.num_genes = 8 + static_cast<int>(rng->Uniform(12));
      cfg.num_publications =
          static_cast<int>(static_cast<double>(cfg.num_genes) * fanout());
    }
    cfg.seed = rng->Next();
    return workload::GenerateChem2Bio(cfg);
  }
  if (dataset == "pubmed") {
    workload::PubmedConfig cfg;
    cfg.num_publications = 40 + static_cast<int>(rng->Uniform(110));
    cfg.num_journals = 4 + static_cast<int>(rng->Uniform(10));
    cfg.num_grants = 15 + static_cast<int>(rng->Uniform(45));
    cfg.num_agencies = 3 + static_cast<int>(rng->Uniform(8));
    cfg.num_countries = 3 + static_cast<int>(rng->Uniform(6));
    cfg.num_authors = 15 + static_cast<int>(rng->Uniform(45));
    cfg.num_mesh_terms = 8 + static_cast<int>(rng->Uniform(30));
    cfg.num_chemicals = 6 + static_cast<int>(rng->Uniform(25));
    cfg.mesh_per_publication = 1.0 + rng->NextDouble() * 2.5;
    cfg.chemicals_per_publication = 1.0 + rng->NextDouble() * 2.0;
    cfg.authors_per_publication = 1.0 + rng->NextDouble() * 1.5;
    cfg.grants_per_publication = 0.5 + rng->NextDouble();
    cfg.news_fraction = 0.05 + rng->NextDouble() * 0.25;
    if (multival) {
      // Fewer subjects (a star over all four multi-valued predicates
      // flattens to fanout^4 rows per publication), each much wider.
      cfg.num_publications = 20 + static_cast<int>(rng->Uniform(30));
      cfg.mesh_per_publication = fanout();
      cfg.chemicals_per_publication = fanout();
      cfg.authors_per_publication = fanout();
      cfg.grants_per_publication = fanout();
    }
    cfg.seed = rng->Next();
    return workload::GeneratePubmed(cfg);
  }
  workload::BsbmConfig cfg;
  cfg.num_products = 20 + static_cast<int>(rng->Uniform(60));
  cfg.num_product_types = 4 + static_cast<int>(rng->Uniform(7));
  cfg.num_features = 5 + static_cast<int>(rng->Uniform(10));
  cfg.num_vendors = 4 + static_cast<int>(rng->Uniform(8));
  cfg.num_countries = 3 + static_cast<int>(rng->Uniform(4));
  cfg.offers_per_product = 1.0 + rng->NextDouble() * 2.0;
  cfg.optional_date_probability = rng->NextDouble() * 0.5;
  if (multival) {
    cfg.num_products = 15 + static_cast<int>(rng->Uniform(35));
    cfg.offers_per_product = fanout();
  }
  cfg.seed = rng->Next();
  return workload::GenerateBsbm(cfg);
}

}  // namespace rapida::difftest
